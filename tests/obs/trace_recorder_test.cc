// Tests for the scoped-span tracer: the disabled-by-default contract,
// nested spans, ring-buffer overwrite accounting, concurrent recording
// from a thread pool (the TSan job runs this binary), and a golden-file
// check of the Chrome trace-event export.
#include "obs/trace_recorder.h"

#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.h"

namespace uvd {
namespace obs {
namespace {

/// Global() is process-wide; every test using it restores the default
/// disabled state and clears the rings so tests stay order-independent.
class GlobalTraceGuard {
 public:
  ~GlobalTraceGuard() {
    TraceRecorder::SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

TEST(TraceRecorderTest, DisabledByDefaultRecordsNothing) {
  GlobalTraceGuard guard;
  ASSERT_FALSE(TraceRecorder::Enabled());
  const size_t before = TraceRecorder::Global().event_count();
  {
    UVD_TRACE_SPAN("test", "should_not_appear");
  }
  EXPECT_EQ(TraceRecorder::Global().event_count(), before);
}

TEST(TraceRecorderTest, SpanOpenedWhileDisabledNeverRecords) {
  GlobalTraceGuard guard;
  const size_t before = TraceRecorder::Global().event_count();
  {
    UVD_TRACE_SPAN("test", "opened_disabled");
    // Enabling mid-span must not retroactively record it (the span
    // captured no start time).
    TraceRecorder::SetEnabled(true);
  }
  EXPECT_EQ(TraceRecorder::Global().event_count(), before);
}

TEST(TraceRecorderTest, NestedSpansRecordInnerFirst) {
  GlobalTraceGuard guard;
  TraceRecorder::Global().Clear();
  TraceRecorder::SetEnabled(true);
  const size_t before = TraceRecorder::Global().event_count();
  {
    UVD_TRACE_SPAN("test", "outer");
    {
      UVD_TRACE_SPAN("test", "inner");
    }
  }
  TraceRecorder::SetEnabled(false);
  EXPECT_EQ(TraceRecorder::Global().event_count(), before + 2);
  // Destruction order records the inner span before the outer one.
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  const size_t inner_pos = json.find("\"inner\"");
  const size_t outer_pos = json.find("\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder recorder(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record("cat", i % 2 == 0 ? "even" : "odd", static_cast<uint64_t>(i),
                    1);
  }
  EXPECT_EQ(recorder.event_count(), 4u);  // capacity-bounded
  EXPECT_EQ(recorder.dropped(), 6u);
  // The survivors are the NEWEST four (ts 6..9), oldest-first in export.
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_EQ(json.find("\"ts\": 5,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 6,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 9,"), std::string::npos);
  EXPECT_LT(json.find("\"ts\": 6,"), json.find("\"ts\": 9,"));
}

TEST(TraceRecorderTest, ClearKeepsRingsAndResetsCounts) {
  TraceRecorder recorder;
  recorder.Record("cat", "a", 0, 1);
  ASSERT_EQ(recorder.event_count(), 1u);
  recorder.Clear();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.thread_count(), 1u);  // ring registration survives
}

TEST(TraceRecorderTest, ConcurrentSpansUnderThreadPool) {
  // Workers record concurrently through the macro path; every span must
  // land (per-thread rings, no cross-thread contention) and the export
  // must hold together. TSan covers the synchronization.
  GlobalTraceGuard guard;
  TraceRecorder::Global().Clear();
  TraceRecorder::SetEnabled(true);
  const size_t before = TraceRecorder::Global().event_count();

  constexpr int kWorkers = 4;
  constexpr int kSpansPerWorker = 500;
  {
    ThreadPool pool(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.Submit([] {
        for (int i = 0; i < kSpansPerWorker; ++i) {
          UVD_TRACE_SPAN("test", "pool_span");
          {
            UVD_TRACE_SPAN("test", "nested_pool_span");
          }
        }
      });
    }
    pool.Wait();
  }
  TraceRecorder::SetEnabled(false);
  EXPECT_EQ(TraceRecorder::Global().event_count() - before,
            static_cast<size_t>(2 * kWorkers * kSpansPerWorker));
  // The export parses structurally: balanced braces, one record per span.
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pool_span\""), std::string::npos);
  EXPECT_NE(json.find("\"nested_pool_span\""), std::string::npos);
}

TEST(TraceRecorderTest, ChromeTraceExportGolden) {
  // A private recorder fed explicit events from one thread exports a
  // deterministic document — the literal Chrome trace-event format
  // (Perfetto-loadable), pinned byte for byte.
  TraceRecorder recorder;
  recorder.Record("build", "stage1", 100, 40);
  recorder.Record("query", "locate \"leaf\"", 150, 7);
  const std::string expected =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "{\"name\": \"stage1\", \"cat\": \"build\", \"ph\": \"X\", \"ts\": 100, "
      "\"dur\": 40, \"pid\": 0, \"tid\": 0},\n"
      "{\"name\": \"locate \\\"leaf\\\"\", \"cat\": \"query\", \"ph\": \"X\", "
      "\"ts\": 150, \"dur\": 7, \"pid\": 0, \"tid\": 0}\n"
      "]}\n";
  EXPECT_EQ(recorder.ToChromeTraceJson(), expected);
}

TEST(TraceRecorderTest, EmptyExportIsValid) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.ToChromeTraceJson(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n]}\n");
}

TEST(TraceRecorderTest, WriteChromeTraceFailsOnBadPath) {
  TraceRecorder recorder;
  recorder.Record("cat", "a", 0, 1);
  const Status st =
      recorder.WriteChromeTrace("/nonexistent-dir-xyz/trace.json");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace obs
}  // namespace uvd
