# Self-test fixture: fast-math-class flags in a CMake file. Each marked
# line must be flagged `fast-math` — these flags license FP reassociation
# and contraction, which breaks the batch kernels' bitwise scalar-oracle
# contract. The commented-out flag must NOT be flagged.
add_compile_options(-Wall)
add_compile_options(-ffast-math)                 # BAD
target_compile_options(x PRIVATE -Ofast)         # BAD
add_compile_options(-funsafe-math-optimizations) # BAD
add_compile_options(-ffp-contract=fast)          # BAD
# add_compile_options(-ffast-math) is documented here but disabled: fine.
set(CMAKE_CXX_FLAGS "${CMAKE_CXX_FLAGS} -O2")
