#!/usr/bin/env python3
"""clang-tidy wall runner: lints every repo TU in compile_commands.json and
fails on any finding not present in the checked-in baseline
(tooling/clang_tidy_baseline.txt). See docs/STATIC_ANALYSIS.md.

Findings are normalized to `file:check` pairs — line numbers are dropped so
unrelated edits do not churn the baseline. A baseline entry that no longer
fires is reported as stale (non-fatal) so debt shrinks visibly.

Usage:
  run_clang_tidy.py --build-dir build            # check against baseline
  run_clang_tidy.py --build-dir build --update-baseline
Exit status: 0 clean (or all findings baselined), 1 new findings,
2 usage/environment error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import re
import shutil
import subprocess
import sys
from typing import List, Set

# clang-tidy emits: path:line:col: warning: message [check-name]
_FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):\d+:\s+(?:warning|error):\s+"
    r".*\[(?P<check>[\w.,-]+)\]\s*$")


def _normalize(path: str, check: str, root: pathlib.Path) -> str:
    p = pathlib.Path(path)
    try:
        rel = p.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = p.as_posix()  # outside the repo (system header): keep as-is
    return f"{rel}:{check}"


def _run_one(tidy: str, entry: dict, build_dir: pathlib.Path,
             root: pathlib.Path) -> Set[str]:
    cmd = [tidy, "-p", str(build_dir), "--quiet", entry["file"]]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    found: Set[str] = set()
    for line in proc.stdout.splitlines():
        m = _FINDING_RE.match(line)
        if not m:
            continue
        rel = _normalize(m.group("path"), m.group("check"), root)
        # Only findings inside the repo count; system headers are not ours.
        if not rel.startswith(".."):
            for check in m.group("check").split(","):
                found.add(_normalize(m.group("path"), check, root))
    return found


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=pathlib.Path, default="build",
                        help="CMake build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: first of "
                             "clang-tidy, clang-tidy-18..14 on PATH)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite tooling/clang_tidy_baseline.txt with "
                             "the current findings")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel clang-tidy processes (0 = cpu count)")
    args = parser.parse_args(argv)

    root = pathlib.Path(__file__).resolve().parent.parent
    baseline_path = root / "tooling" / "clang_tidy_baseline.txt"

    tidy = args.clang_tidy or next(
        (t for t in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                     "clang-tidy-16", "clang-tidy-15", "clang-tidy-14")
         if shutil.which(t)), None)
    if tidy is None:
        print("error: no clang-tidy binary on PATH", file=sys.stderr)
        return 2

    db_path = args.build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"error: {db_path} not found — configure with "
              "`cmake -B build -S .` first "
              "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)",
              file=sys.stderr)
        return 2

    entries = [e for e in json.loads(db_path.read_text())
               if "/src/" in pathlib.Path(e["file"]).as_posix()
               or pathlib.Path(e["file"]).as_posix().startswith("src/")]
    if not entries:
        print("error: no src/ TUs in compile_commands.json", file=sys.stderr)
        return 2

    jobs = args.jobs or None  # None => ThreadPoolExecutor default
    findings: Set[str] = set()
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(
                lambda e: _run_one(tidy, e, args.build_dir, root), entries):
            findings |= result

    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        header = ("# clang-tidy suppression baseline: one `file:check` per "
                  "line.\n# Regenerate: python3 scripts/run_clang_tidy.py "
                  "--build-dir build --update-baseline\n# Shrinking this "
                  "file is always welcome; growing it needs justification "
                  "in the PR.\n")
        baseline_path.write_text(
            header + "".join(f"{f}\n" for f in sorted(findings)))
        print(f"baseline updated: {len(findings)} entrie(s) -> "
              f"{baseline_path.relative_to(root)}")
        return 0

    baseline: Set[str] = set()
    if baseline_path.exists():
        baseline = {line.strip() for line in baseline_path.read_text().splitlines()
                    if line.strip() and not line.startswith("#")}

    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)
    for f in stale:
        print(f"stale baseline entry (no longer fires, consider removing): {f}")
    if new:
        for f in new:
            print(f"NEW finding: {f}")
        print(f"\nrun_clang_tidy: {len(new)} new finding(s) not in "
              f"{baseline_path.relative_to(root)}. Fix them, or (with "
              "justification in the PR) re-run with --update-baseline.",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean over {len(entries)} TU(s) "
          f"({len(baseline)} baselined, {len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
