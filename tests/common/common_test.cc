// Tests for the common substrate: Status, Result, Stats, Rng, Timer.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/timer.h"

namespace uvd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad radius");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad radius");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad radius");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted), "ResourceExhausted");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    UVD_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturn) {
  auto make = [](bool good) -> Result<int> {
    if (good) return 7;
    return Status::Internal("boom");
  };
  auto use = [&](bool good) -> Result<int> {
    UVD_ASSIGN_OR_RETURN(int v, make(good));
    return v * 2;
  };
  EXPECT_EQ(use(true).value(), 14);
  EXPECT_EQ(use(false).status().code(), StatusCode::kInternal);
}

TEST(StatsTest, AddAndGet) {
  Stats stats;
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 0u);
  stats.Add(Ticker::kPageReads);
  stats.Add(Ticker::kPageReads, 4);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 5u);
  stats.Reset();
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 0u);
}

TEST(StatsTest, ToStringListsNonZero) {
  Stats stats;
  stats.Add(Ticker::kRtreeLeafReads, 3);
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("rtree.leaf.reads = 3"), std::string::npos);
  EXPECT_EQ(s.find("page.writes"), std::string::npos);
}

TEST(StatsTest, TickerNamesAreUnique) {
  std::set<std::string> names;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    names.insert(TickerName(static_cast<Ticker>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(Ticker::kNumTickers));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms >= s numerically
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer st(&sink);
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  }
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace uvd
