// Fig. 7(e): IC construction time decomposition: I+C pruning vs indexing
// (no r-object generation at all). Paper shape: pruning dominates.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(e): components of IC's T_c (%)",
                     "pruning / indexing (IC never generates r-objects)");
  std::printf("%10s %14s %12s\n", "|O|", "I+C prune(%)", "indexing(%)");
  for (size_t n : bench::SizeSweep()) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = 42;
    Stats stats;
    auto d = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                 datagen::DomainFor(opts), {}, &stats);
    const auto& bs = d.build_stats();
    // Step-1 seed time belongs to Algorithm 2, so it is charged to the
    // pruning component (BuildStats keeps it separate since the
    // double-count fix).
    const double prune = bs.seed_seconds + bs.pruning_seconds;
    const double total = prune + bs.indexing_seconds;
    std::printf("%10zu %14.1f %12.1f\n", n, 100.0 * prune / total,
                100.0 * bs.indexing_seconds / total);
  }
  return 0;
}
