// Data-adaptive shard partitioning (ShardPartitioning::kMedian) and its
// RebalanceAdvisor loop, mirroring tests/core/stage2_partition_test.cc's
// determinism contract on the sharding axis: PNN/answer-id digests must be
// bitwise-identical to the unsharded baseline for every partitioning mode
// {grid, bisection, median} and K in {1, 4, 7} on uniform AND clustered
// (Fig. 7(g)-style) datasets — only the shard boxes may differ. On skewed
// data the median cuts must actually balance: per-shard object counts
// within +-1 of the ideal share for point extents, and the K = 8 clustered
// acceptance bound (median max/mean <= 1.25 where grid exceeds 2x).
// PartitionDomain's K = 1 contract — the closed global domain box, no cut
// computation — is pinned for all modes and both overloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/generators.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "shard/rebalance_advisor.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"

namespace uvd {
namespace shard {
namespace {

constexpr double kDomainSize = 10000.0;

/// The 10:1 two-cluster skew spec used throughout: a hot cluster in the
/// lower-left quadrant and a cold one in the upper-right.
std::vector<datagen::ClusterSpec> SkewSpec(double sigma) {
  return {{{2500.0, 2500.0}, sigma, 10.0}, {{7500.0, 7500.0}, sigma, 1.0}};
}

std::vector<uncertain::UncertainObject> MakeObjects(bool clustered, size_t n,
                                                    uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  return clustered ? datagen::GenerateClusters(opts, SkewSpec(600.0))
                   : datagen::GenerateUniform(opts);
}

geom::Box Domain() { return geom::Box({0, 0}, {kDomainSize, kDomainSize}); }

ShardedUVDiagram BuildSharded(const std::vector<uncertain::UncertainObject>& objects,
                              int num_shards, ShardPartitioning partitioning) {
  ShardedUVDiagramOptions options;
  options.num_shards = num_shards;
  options.partitioning = partitioning;
  return ShardedUVDiagram::Build(objects, Domain(), options).ValueOrDie();
}

double ObjectImbalance(const ShardedUVDiagram& d) {
  size_t total = 0, max_objects = 0;
  for (const auto& b : d.BalanceReport()) {
    total += b.objects;
    max_objects = std::max(max_objects, b.objects);
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(d.num_shards());
  return static_cast<double>(max_objects) / mean;
}

/// PNN + answer-id probes covering every shard's cut lines plus randoms.
query::QueryBatch ProbeBatch(const ShardedUVDiagram& sharded, uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> points;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const geom::Box& box = sharded.shard(s).box;
    for (const geom::Point& corner : box.Corners()) points.push_back(corner);
    points.push_back({box.lo.x, rng.Uniform(0.0, kDomainSize)});
    points.push_back({rng.Uniform(0.0, kDomainSize), box.hi.y});
  }
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.Uniform(0.0, kDomainSize), rng.Uniform(0.0, kDomainSize)});
  }
  points.push_back({kDomainSize, kDomainSize});  // closed max corner
  query::QueryBatch batch;
  batch.reserve(points.size() * 2);
  for (const auto& p : points) {
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return batch;
}

TEST(MedianPartitionTest, SingleShardIsClosedDomainBoxForEveryMode) {
  const geom::Box domain = Domain();
  std::vector<ObjectExtent> extents = {
      {{10, 10}, geom::Box({0, 0}, {20, 20})},
      {{400, 900}, geom::Box({350, 850}, {450, 950})},
  };
  for (const auto partitioning :
       {ShardPartitioning::kGrid, ShardPartitioning::kBisection,
        ShardPartitioning::kMedian}) {
    for (const int k : {1, 0, -3}) {  // non-positive clamps to 1
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(partitioning)) +
                   " k=" + std::to_string(k));
      for (const auto& boxes :
           {PartitionDomain(domain, k, partitioning),
            PartitionDomain(domain, k, partitioning, extents)}) {
        ASSERT_EQ(boxes.size(), 1u);
        // Bitwise the closed domain box: no half-open max-edge cut box.
        EXPECT_EQ(boxes[0].lo.x, domain.lo.x);
        EXPECT_EQ(boxes[0].lo.y, domain.lo.y);
        EXPECT_EQ(boxes[0].hi.x, domain.hi.x);
        EXPECT_EQ(boxes[0].hi.y, domain.hi.y);
      }
    }
  }
}

TEST(MedianPartitionTest, MedianPartitionTilesDomainExactly) {
  const geom::Box domain = Domain();
  Rng rng(7);
  std::vector<ObjectExtent> extents;
  for (int i = 0; i < 500; ++i) {
    const geom::Point c{rng.Uniform(0.0, kDomainSize), rng.Uniform(0.0, kDomainSize)};
    const double half = rng.Uniform(0.0, 120.0);
    extents.push_back({c, geom::Box({c.x - half, c.y - half},
                                    {c.x + half, c.y + half})});
  }
  for (const int k : {2, 3, 5, 7, 8, 9, 12, 16}) {
    const auto boxes =
        PartitionDomain(domain, k, ShardPartitioning::kMedian, extents);
    ASSERT_EQ(boxes.size(), static_cast<size_t>(k));
    double area = 0.0;
    for (const auto& b : boxes) {
      EXPECT_TRUE(domain.ContainsBox(b));
      EXPECT_GT(b.Area(), 0.0);
      area += b.Area();
    }
    EXPECT_NEAR(area, domain.Area(), 1e-6 * domain.Area());
  }
}

TEST(MedianPartitionTest, MedianCutsBoundCountsWithinOneOfIdealOnSkewedCloud) {
  // Point extents (zero-size bounds): no replication to anticipate, so the
  // recursive minimax split must recover the plain object-count median —
  // per-shard center counts within +-1 of the ideal n/K share, even though
  // 10/11ths of the mass sits in one quadrant.
  const size_t n = 1000;
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = 17;
  const auto objects = datagen::GenerateClusters(opts, SkewSpec(350.0));
  std::vector<ObjectExtent> extents;
  extents.reserve(n);
  for (const auto& o : objects) {
    extents.push_back({o.center(), geom::Box(o.center(), o.center())});
  }
  for (const int k : {4, 8}) {
    const auto boxes =
        PartitionDomain(Domain(), k, ShardPartitioning::kMedian, extents);
    ASSERT_EQ(boxes.size(), static_cast<size_t>(k));
    const double ideal = static_cast<double>(n) / k;
    size_t total = 0;
    for (const auto& box : boxes) {
      size_t count = 0;
      for (const auto& o : objects) {
        if (box.Contains(o.center())) ++count;
      }
      total += count;
      EXPECT_LE(std::abs(static_cast<double>(count) - ideal), 1.0)
          << "k=" << k << " count=" << count;
    }
    // Cuts fall at midpoints between distinct coordinates, so no center
    // lies on a cut and the closed counts sum to exactly n.
    EXPECT_EQ(total, n);
  }
}

TEST(MedianPartitionTest, DigestsIdenticalAcrossModesAndShardCounts) {
  const size_t n = 500;
  for (const bool clustered : {false, true}) {
    SCOPED_TRACE(clustered ? "clustered" : "uniform");
    const auto objects = MakeObjects(clustered, n, clustered ? 13 : 11);
    const auto baseline = core::UVDiagram::Build(objects, Domain()).ValueOrDie();
    query::QueryEngine baseline_engine(baseline, {});

    for (const auto partitioning :
         {ShardPartitioning::kGrid, ShardPartitioning::kBisection,
          ShardPartitioning::kMedian}) {
      for (const int k : {1, 4, 7}) {
        SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(partitioning)) +
                     " shards=" + std::to_string(k));
        const auto sharded = BuildSharded(objects, k, partitioning);
        ShardRouter router(sharded);
        const query::QueryBatch batch = ProbeBatch(sharded, 23);
        EXPECT_EQ(query::DigestPointAnswers(router.ExecuteBatch(batch)),
                  query::DigestPointAnswers(baseline_engine.ExecuteBatch(batch)));
      }
    }
  }
}

TEST(MedianPartitionTest, MedianBalancesClusteredCloudAtK8AndAdvisorClosesLoop) {
  // The acceptance bound: on a clustered dataset at K = 8, count-blind grid
  // cuts leave a hot shard past 2x the mean while median cuts stay within
  // 1.25x — and the advisor both predicts and (via rebuild) delivers it,
  // with answers bitwise-identical to the unsharded baseline throughout.
  const size_t n = 800;
  const auto objects = MakeObjects(/*clustered=*/true, n, 19);
  const auto baseline = core::UVDiagram::Build(objects, Domain()).ValueOrDie();
  query::QueryEngine baseline_engine(baseline, {});

  const auto grid = BuildSharded(objects, 8, ShardPartitioning::kGrid);
  const double grid_imbalance = ObjectImbalance(grid);
  EXPECT_GT(grid_imbalance, 2.0);

  const RebalanceAdvice advice = RebalanceAdvisor::Advise(grid);
  EXPECT_DOUBLE_EQ(advice.current_imbalance, grid_imbalance);
  EXPECT_TRUE(advice.rebalance_recommended);
  EXPECT_LT(advice.predicted_imbalance, advice.current_imbalance);
  ASSERT_EQ(advice.proposed_boxes.size(), 8u);
  ASSERT_EQ(advice.predicted_objects.size(), 8u);
  EXPECT_FALSE(advice.ToString().empty());

  auto rebalanced_result = RebalanceAdvisor::ApplyRebalance(grid);
  ASSERT_TRUE(rebalanced_result.ok()) << rebalanced_result.status().ToString();
  const ShardedUVDiagram rebalanced = std::move(rebalanced_result).ValueOrDie();
  ASSERT_EQ(rebalanced.num_shards(), 8u);
  EXPECT_EQ(rebalanced.options().partitioning, ShardPartitioning::kMedian);
  const double median_imbalance = ObjectImbalance(rebalanced);
  EXPECT_LE(median_imbalance, 1.25);
  EXPECT_LT(median_imbalance, grid_imbalance);

  // A healthy deployment does not get a rebuild recommendation.
  EXPECT_FALSE(RebalanceAdvisor::Advise(rebalanced).rebalance_recommended);

  // Same answers from the skewed grid, the rebalanced median deployment
  // and the unsharded baseline — cut-line probes of both box sets included.
  ShardRouter grid_router(grid);
  ShardRouter median_router(rebalanced);
  for (const auto* source : {&grid, &rebalanced}) {
    const query::QueryBatch batch = ProbeBatch(*source, 29);
    const uint64_t expected =
        query::DigestPointAnswers(baseline_engine.ExecuteBatch(batch));
    EXPECT_EQ(query::DigestPointAnswers(grid_router.ExecuteBatch(batch)), expected);
    EXPECT_EQ(query::DigestPointAnswers(median_router.ExecuteBatch(batch)), expected);
  }
}

bool SameBoxes(const std::vector<geom::Box>& a, const std::vector<geom::Box>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].lo.x != b[i].lo.x || a[i].lo.y != b[i].lo.y ||
        a[i].hi.x != b[i].hi.x || a[i].hi.y != b[i].hi.y) {
      return false;
    }
  }
  return true;
}

TEST(MedianPartitionTest, QueryWeightedAdviseRespondsToSkewedTraffic) {
  // Uniform data in a K = 4 grid: object counts are balanced, so the
  // count-based advisor is content — but when observed traffic hammers one
  // shard, the query-weighted overload must surface the imbalance in the
  // weighted currency, move the proposed cuts, and recommend a rebuild.
  const size_t n = 600;
  const auto objects = MakeObjects(/*clustered=*/false, n, 23);
  const auto grid = BuildSharded(objects, 4, ShardPartitioning::kGrid);
  const RebalanceAdvice by_count = RebalanceAdvisor::Advise(grid);
  EXPECT_FALSE(by_count.rebalance_recommended);

  std::vector<uint64_t> routed(4, 1);
  routed[0] = 97;  // ~97% of queries land on shard 0
  const RebalanceAdvice by_queries = RebalanceAdvisor::Advise(grid, routed);
  EXPECT_GT(by_queries.current_imbalance, 1.25);
  EXPECT_LT(by_queries.predicted_imbalance, by_queries.current_imbalance);
  EXPECT_TRUE(by_queries.rebalance_recommended);
  ASSERT_EQ(by_queries.proposed_boxes.size(), 4u);
  EXPECT_FALSE(SameBoxes(by_queries.proposed_boxes, by_count.proposed_boxes))
      << "query weights did not move the median cuts";

  // Determinism: the same observations produce the same advice.
  const RebalanceAdvice again = RebalanceAdvisor::Advise(grid, routed);
  EXPECT_TRUE(SameBoxes(again.proposed_boxes, by_queries.proposed_boxes));
  EXPECT_DOUBLE_EQ(again.predicted_imbalance, by_queries.predicted_imbalance);

  // Fallbacks reproduce the count-based advice exactly: lambda = 0 and
  // no observed queries.
  RebalanceAdvisorOptions lambda_off;
  lambda_off.query_weight_lambda = 0.0;
  const RebalanceAdvice no_lambda = RebalanceAdvisor::Advise(grid, routed, lambda_off);
  EXPECT_TRUE(SameBoxes(no_lambda.proposed_boxes, by_count.proposed_boxes));
  EXPECT_DOUBLE_EQ(no_lambda.current_imbalance, by_count.current_imbalance);
  const RebalanceAdvice no_traffic =
      RebalanceAdvisor::Advise(grid, std::vector<uint64_t>(4, 0));
  EXPECT_TRUE(SameBoxes(no_traffic.proposed_boxes, by_count.proposed_boxes));
}

}  // namespace
}  // namespace shard
}  // namespace uvd
