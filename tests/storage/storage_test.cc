// Tests for the simulated disk: page manager I/O accounting, buffer pool
// LRU behaviour, record encode/decode round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/timer.h"
#include "storage/buffer_pool.h"
#include "storage/file_page_manager.h"
#include "storage/page_manager.h"
#include "storage/record.h"

namespace uvd {
namespace storage {
namespace {

TEST(PageManagerTest, AllocateAndRoundTrip) {
  Stats stats;
  PageManager pm(4096, &stats);
  const PageId a = pm.Allocate();
  const PageId b = pm.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pm.num_pages(), 2u);
  EXPECT_EQ(pm.bytes_on_disk(), 2u * 4096u);

  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(pm.Write(a, data).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(pm.Read(a, &out).ok());
  ASSERT_EQ(out.size(), 4096u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[4], 5);
  EXPECT_EQ(out[5], 0);  // zero-padded
}

TEST(PageManagerTest, IoCounting) {
  Stats stats;
  PageManager pm(512, &stats);
  const PageId p = pm.Allocate();
  std::vector<uint8_t> buf(10, 7);
  ASSERT_TRUE(pm.Write(p, buf).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(pm.Read(p, &out).ok());
  ASSERT_TRUE(pm.Read(p, &out).ok());
  EXPECT_EQ(stats.Get(Ticker::kPageWrites), 1u);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 2u);
}

TEST(PageManagerTest, ErrorsOnBadPage) {
  PageManager pm(256);
  std::vector<uint8_t> out;
  EXPECT_EQ(pm.Read(42, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(pm.Write(42, out).code(), StatusCode::kNotFound);
}

TEST(PageManagerTest, RejectsOversizeWrite) {
  PageManager pm(16);
  const PageId p = pm.Allocate();
  std::vector<uint8_t> big(17, 1);
  EXPECT_EQ(pm.Write(p, big).code(), StatusCode::kInvalidArgument);
}

TEST(PageManagerTest, OverwriteClearsOldData) {
  PageManager pm(64);
  const PageId p = pm.Allocate();
  ASSERT_TRUE(pm.Write(p, std::vector<uint8_t>(64, 0xAB)).ok());
  ASSERT_TRUE(pm.Write(p, std::vector<uint8_t>{1}).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(pm.Read(p, &out).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[63], 0);
}

// Wires a pool's miss path to a PageManager (the arrangement
// FilePageManager uses with its file).
BufferPool MakePool(PageManager* pm, size_t capacity, Stats* stats,
                    double protected_fraction = 0.0) {
  BufferPoolOptions options;
  options.capacity_pages = capacity;
  options.protected_fraction = protected_fraction;
  return BufferPool(
      options, pm->page_size(),
      [pm](PageId id, std::vector<uint8_t>* out) { return pm->Read(id, out); },
      stats);
}

TEST(BufferPoolTest, HitsAndMisses) {
  Stats stats;
  PageManager pm(128, &stats);
  const PageId a = pm.Allocate();
  const PageId b = pm.Allocate();
  ASSERT_TRUE(pm.Write(a, {1}).ok());
  ASSERT_TRUE(pm.Write(b, {2}).ok());
  stats.Reset();

  BufferPool pool = MakePool(&pm, 2, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Read(a, &out).ok());  // miss
  ASSERT_TRUE(pool.Read(a, &out).ok());  // hit
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolMisses), 1u);
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolHits), 1u);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 1u);  // only the miss hit disk
}

TEST(BufferPoolTest, LruEviction) {
  Stats stats;
  PageManager pm(64, &stats);
  const PageId a = pm.Allocate();
  const PageId b = pm.Allocate();
  const PageId c = pm.Allocate();
  BufferPool pool = MakePool(&pm, 2, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Read(a, &out).ok());
  ASSERT_TRUE(pool.Read(b, &out).ok());
  ASSERT_TRUE(pool.Read(a, &out).ok());  // a becomes most recent
  ASSERT_TRUE(pool.Read(c, &out).ok());  // evicts b
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.evictions(), 1u);
  stats.Reset();
  ASSERT_TRUE(pool.Read(a, &out).ok());  // still cached
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolHits), 1u);
  ASSERT_TRUE(pool.Read(b, &out).ok());  // was evicted -> miss
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolMisses), 1u);
}

TEST(BufferPoolTest, InvalidateForcesReread) {
  Stats stats;
  PageManager pm(64, &stats);
  const PageId a = pm.Allocate();
  BufferPool pool = MakePool(&pm, 4, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Read(a, &out).ok());
  ASSERT_TRUE(pm.Write(a, {9}).ok());
  pool.Invalidate(a);
  EXPECT_EQ(pool.invalidations(), 1u);
  ASSERT_TRUE(pool.Read(a, &out).ok());
  EXPECT_EQ(out[0], 9);
}

TEST(BufferPoolTest, PutIsWriteThrough) {
  Stats stats;
  PageManager pm(64, &stats);
  const PageId a = pm.Allocate();
  BufferPool pool = MakePool(&pm, 4, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(pm.Write(a, std::vector<uint8_t>(64, 0xAB)).ok());
  ASSERT_TRUE(pool.Read(a, &out).ok());
  ASSERT_TRUE(pm.Write(a, {7}).ok());
  pool.Put(a, {7});  // what FilePageManager::Write does after the file write
  ASSERT_TRUE(pool.Read(a, &out).ok());
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 0);  // Put zero-pads like the page write did
  EXPECT_EQ(pool.misses(), 1u);  // second read was a (fresh) hit
}

TEST(BufferPoolTest, PinnedFramesSurviveEviction) {
  Stats stats;
  PageManager pm(64, &stats);
  const PageId a = pm.Allocate();
  const PageId b = pm.Allocate();
  const PageId c = pm.Allocate();
  ASSERT_TRUE(pm.Write(a, {1}).ok());
  BufferPool pool = MakePool(&pm, 1, &stats);
  auto pinned = pool.Pin(a);
  ASSERT_TRUE(pinned.ok());
  BufferPool::PageRef ref = std::move(pinned).value();
  std::vector<uint8_t> out;
  // Capacity is 1 and the only frame is pinned: these reads overflow
  // transiently but must not free a's frame.
  ASSERT_TRUE(pool.Read(b, &out).ok());
  ASSERT_TRUE(pool.Read(c, &out).ok());
  EXPECT_EQ(ref.data()[0], 1);  // still valid
  ref = BufferPool::PageRef();  // unpin
  ASSERT_TRUE(pool.Read(b, &out).ok());
  EXPECT_LE(pool.size(), 1u + 1u);  // back under control once unpinned
}

TEST(BufferPoolTest, ProtectedSegmentResistsScan) {
  Stats stats;
  PageManager pm(64, &stats);
  std::vector<PageId> pages;
  for (int i = 0; i < 12; ++i) pages.push_back(pm.Allocate());
  BufferPool pool = MakePool(&pm, 4, &stats, /*protected_fraction=*/0.5);
  std::vector<uint8_t> out;
  // Reference pages 0 and 1 twice: they join the protected segment.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(pool.Read(pages[0], &out).ok());
    ASSERT_TRUE(pool.Read(pages[1], &out).ok());
  }
  EXPECT_EQ(pool.protected_size(), 2u);
  // A one-pass scan over everything else churns probationary only.
  for (size_t i = 2; i < pages.size(); ++i) {
    ASSERT_TRUE(pool.Read(pages[i], &out).ok());
  }
  const uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Read(pages[0], &out).ok());
  ASSERT_TRUE(pool.Read(pages[1], &out).ok());
  EXPECT_EQ(pool.misses(), misses_before);  // working set survived the scan
}

TEST(RecordTest, RoundTripPrimitives) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI32(-42);
  enc.PutDouble(3.14159);

  Decoder dec(buf);
  EXPECT_EQ(dec.GetU16(), 0xBEEF);
  EXPECT_EQ(dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetI32(), -42);
  EXPECT_DOUBLE_EQ(dec.GetDouble(), 3.14159);
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(RecordTest, SkipAndPosition) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU32(1);
  enc.PutU32(2);
  Decoder dec(buf);
  dec.Skip(4);
  EXPECT_EQ(dec.position(), 4u);
  EXPECT_EQ(dec.GetU32(), 2u);
}

TEST(FilePageManagerTest, RoundTripAndAccounting) {
  const std::string path = ::testing::TempDir() + "/uvd_fpm_roundtrip";
  std::remove(path.c_str());
  Stats stats;
  FilePageManagerOptions options;
  options.buffer_pool_pages = 2;
  auto fpm = FilePageManager::Create(path, 256, options, &stats).ValueOrDie();
  const PageId a = fpm->Allocate();
  const PageId b = fpm->Allocate();
  ASSERT_NE(a, kInvalidPageId);
  ASSERT_NE(b, kInvalidPageId);
  UVD_CHECK_OK(fpm->io_status());

  std::vector<uint8_t> data(256, 0x5A);
  ASSERT_TRUE(fpm->Write(a, data).ok());
  std::vector<uint8_t> out;
  // Put has no admission policy (build writes must not flood the pool), so
  // the first read is a miss billed as one physical page read...
  stats.Reset();
  ASSERT_TRUE(fpm->Read(a, &out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 1u);
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolMisses), 1u);
  // ...and the second is a pool hit: no new physical read.
  ASSERT_TRUE(fpm->Read(a, &out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 1u);
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolHits), 1u);
  // Once resident, a write-through Put updates the frame in place: the
  // next read is a hit AND serves the new bytes.
  std::vector<uint8_t> updated(256, 0x6B);
  ASSERT_TRUE(fpm->Write(a, updated).ok());
  ASSERT_TRUE(fpm->Read(a, &out).ok());
  EXPECT_EQ(out, updated);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 1u);
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolHits), 2u);
  // A page never touched since creation misses and reads the file.
  ASSERT_TRUE(fpm->Read(b, &out).ok());
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 2u);
  UVD_CHECK_OK(fpm->Close());
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, RealReadsIgnoreTheSimulatedLatencySeam) {
  // The base PageManager models a 2010-era disk by SLEEPING per read;
  // FilePageManager does real I/O and must report MEASURED time instead —
  // reads must not inherit the simulation (the latency seam,
  // docs/STORAGE.md). 20 ms x 32 reads would be >600 ms if it did.
  const std::string path = ::testing::TempDir() + "/uvd_fpm_seam";
  std::remove(path.c_str());
  Stats stats;
  auto fpm = FilePageManager::Create(path, 256, {}, &stats).ValueOrDie();
  const PageId first = fpm->AllocateRun(32);
  ASSERT_NE(first, kInvalidPageId);

  PageManager::SetSimulatedReadLatencyUs(20000);
  Timer timer;
  std::vector<uint8_t> out;
  for (uint32_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(fpm->Read(first + i, &out).ok());
  }
  const double elapsed = timer.ElapsedSeconds();
  PageManager::SetSimulatedReadLatencyUs(0);
  EXPECT_LT(elapsed, 0.3) << "FilePageManager::Read slept the simulated "
                             "latency instead of measuring real I/O";

  // The base class keeps the simulation: same knob, in-RAM manager, one
  // read must take at least the configured 20 ms.
  PageManager ram(256, &stats);
  const PageId p = ram.Allocate();
  PageManager::SetSimulatedReadLatencyUs(20000);
  Timer ram_timer;
  ASSERT_TRUE(ram.Read(p, &out).ok());
  PageManager::SetSimulatedReadLatencyUs(0);
  EXPECT_GE(ram_timer.ElapsedSeconds(), 0.015);
  UVD_CHECK_OK(fpm->Close());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace uvd
