#include "geom/radial.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uvd {
namespace geom {

std::optional<std::pair<double, double>> RadialConstraint::FiniteDomain() const {
  const double wn = w.Norm();
  if (wn * wn <= s * s || wn == 0.0) return std::nullopt;
  const double phi = w.Angle();
  const double alpha = std::acos(std::clamp(s / wn, -1.0, 1.0));
  return std::make_pair(phi - alpha, phi + alpha);
}

RadialConstraint RadialConstraint::ForObjects(const Circle& anchor,
                                              const Circle& other, int owner_id) {
  RadialConstraint c;
  c.w = other.center - anchor.center;
  c.s = anchor.radius + other.radius;
  c.owner = owner_id;
  return c;
}

std::vector<RadialConstraint> RadialConstraint::ForDomainWalls(const Point& center,
                                                               const Box& domain) {
  UVD_DCHECK(domain.Contains(center)) << "anchor center must lie in the domain";
  // A wall is the perpendicular bisector between the center and its mirror
  // image across the wall: w = 2*d0*n_hat, s = 0. Clamp d0 away from zero so
  // centers sitting exactly on a wall stay representable.
  constexpr double kMinWallDist = 1e-9;
  auto wall = [&](double d0, Vec2 n_hat, int owner) {
    RadialConstraint c;
    c.w = n_hat * (2.0 * std::max(d0, kMinWallDist));
    c.s = 0.0;
    c.owner = owner;
    return c;
  };
  return {
      wall(center.x - domain.lo.x, {-1.0, 0.0}, kWallLeft),
      wall(domain.hi.x - center.x, {1.0, 0.0}, kWallRight),
      wall(center.y - domain.lo.y, {0.0, -1.0}, kWallBottom),
      wall(domain.hi.y - center.y, {0.0, 1.0}, kWallTop),
  };
}

int CrossingAngles(const RadialConstraint& c1, const RadialConstraint& c2,
                   double out[2]) {
  // rho_1(u) = rho_2(u)  with rho_k = K_k / (u.w_k - s_k) expands to
  //   u . (K1*w2 - K2*w1) = K1*s2 - K2*s1,
  // a linear trigonometric equation A*cos + B*sin = C.
  const double k1 = c1.K();
  const double k2 = c2.K();
  const Vec2 coeff = c2.w * k1 - c1.w * k2;
  const double a = coeff.x;
  const double b = coeff.y;
  const double c = k1 * c2.s - k2 * c1.s;
  const double r = std::hypot(a, b);
  if (r < 1e-15) {
    // Identical (or anti-parallel degenerate) curves: no isolated crossings.
    return 0;
  }
  const double ratio = c / r;
  if (ratio > 1.0 || ratio < -1.0) return 0;  // curves never meet
  const double phi0 = std::atan2(b, a);
  const double delta = std::acos(std::clamp(ratio, -1.0, 1.0));
  out[0] = NormalizeAngle(phi0 + delta);
  if (delta > 0.0 && delta < M_PI) {
    out[1] = NormalizeAngle(phi0 - delta);
    return 2;
  }
  return 1;
}

std::vector<double> CrossingAngles(const RadialConstraint& c1,
                                   const RadialConstraint& c2) {
  double buf[2];
  const int n = CrossingAngles(c1, c2, buf);
  return std::vector<double>(buf, buf + n);
}

}  // namespace geom
}  // namespace uvd
