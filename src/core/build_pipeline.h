// Staged UV-index construction pipeline (paper Sec. VI-B.3, parallelized).
//
// Construction decomposes into two stages per object:
//
//   Stage 1 — candidate generation: Algorithm 2 pruning (CrObjectFinder::
//             Find) and, for Basic/ICR, exact-cell refinement. Pure
//             function of the immutable dataset + R-tree: embarrassingly
//             parallel across objects.
//   Stage 2 — index insertion: Algorithm 3 (UVIndex::InsertObject).
//             Order-sensitive — split decisions depend on the resident
//             set — so naively it is serial.
//
// Stage-2 strategies (Stage2Mode):
//
//   * kInOrder (PR 1): stage-1 workers feed one consumer through a bounded
//     in-order ring buffer; the consumer inserts object i only after i-1,
//     so the index evolves exactly as in the serial build. Stage 1
//     overlaps stage 2, but stage 2 itself is the Amdahl remainder.
//   * kPartitioned (default when parallel): stage-1 results are
//     materialized, then stage 2 itself fans out per quad-tree subtree —
//     a short serial prefix grows the top-level scaffold, every object is
//     routed to each frontier subtree its UV-cell may overlap, subtrees
//     build independently in private node arenas, and a canonical stitch
//     renumbers the new nodes into the serial creation order (see
//     UVIndex::InsertObjectsPartitioned for the full contract). The
//     serialized index is bitwise-identical to the serial build for every
//     thread count and frontier depth.
//   * build_threads = 1 (or kAuto with one worker) runs the legacy
//     single-threaded loop (no pool, no queue); build_threads <= 0 uses
//     hardware concurrency.
//
// Stage-1 traversal strategies (rtree::TraversalMode):
//
//   * kShared (default): anchors are swept in Morton order in tiles of
//     traversal_tile_size; each worker reuses one rtree::TraversalSession
//     across its tiles (shared k-NN frontier, previous-anchor distance
//     bound, decoded-leaf memo). Candidate sets are byte-identical to
//     kPerAnchor for every tile size and thread count.
//   * kPerAnchor: the historical root-restart per object — the traversal
//     determinism oracle.
//
// Determinism guarantee, all modes: the quad-tree structure, leaf tuples,
// page layout and every non-timing BuildStats field are byte-identical to
// build_threads = 1, across Stage2Mode, KernelMode and TraversalMode.
// Stats tickers are exact for every stage-2 mode (the partitioned path
// replays the serial per-leaf pruner-hint evolution, so even the
// scan-order tickers kHyperbolaTests / kFourPointTests match — see
// uv_index.h). Along the traversal axis the work tickers
// kRtreeNodeVisits / kRtreeLeafReads / kLeafMemo* — and the page-I/O
// counters kPageReads / kBufferPool* that leaf decodes feed — are
// config-dependent under kShared (that saved work is the point); every
// decision-count ticker still matches kPerAnchor exactly.
//
// Timing fields (seed/pruning/robject seconds) are summed across workers,
// i.e. aggregate CPU seconds; with build_threads > 1 they can exceed
// total_seconds, which stays wall-clock. stage1_wall_seconds /
// stage2_wall_seconds report per-stage wall clock alongside those sums
// (for kInOrder the stages overlap, so their walls can sum past total).
#ifndef UVD_CORE_BUILD_PIPELINE_H_
#define UVD_CORE_BUILD_PIPELINE_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/cr_finder.h"
#include "core/uv_index.h"
#include "geom/box.h"
#include "rtree/rtree.h"
#include "rtree/traversal_session.h"
#include "uncertain/object_store.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace core {

// The three construction methods evaluated in the paper (Sec. VI-B.3):
//
//   Basic — Algorithm 1 per object: build the exact UV-cell against all
//           n-1 others, then index its r-objects. Exponential-flavored
//           cost; the paper reports 97 hours at 50K objects.
//   ICR   — I- and C-pruning (Algorithm 2) to get cr-objects, refine them
//           into exact r-objects by building the exact cell from the
//           candidates, then index the r-objects.
//   IC    — I- and C-pruning only; index the cr-objects directly. The
//           paper's winner (about 10% of ICR's time at 70K).
enum class BuildMethod {
  kBasic,
  kICR,
  kIC,
};

const char* BuildMethodName(BuildMethod m);

/// How stage 2 (quad-tree insertion) is executed. Every mode produces a
/// byte-identical serialized index; they differ in parallelism and in
/// which Stats tickers stay exactly equal to the serial build's.
enum class Stage2Mode {
  /// kPartitioned when more than one worker runs, else serial.
  kAuto,
  /// PR 1's bounded in-order ring: one consumer inserts in id order while
  /// stage-1 workers run ahead. Exact tickers; stage 2 stays serial.
  kInOrder,
  /// Domain-partitioned parallel insertion with a canonical stitch
  /// (UVIndex::InsertObjectsPartitioned). Parallel stage 2; scan-order
  /// tickers may differ from the serial build.
  kPartitioned,
};

const char* Stage2ModeName(Stage2Mode m);

/// Construction-time decomposition and pruning diagnostics
/// (Fig. 7(a)-(g)). With build_threads > 1 the per-stage timing fields are
/// aggregate CPU seconds across workers; every other non-wall field is
/// accumulated in id order and is bit-identical to the serial build.
struct BuildStats {
  double seed_seconds = 0.0;      ///< Initial possible regions (Step 1).
  double pruning_seconds = 0.0;   ///< I- + C-pruning (Steps 2-3).
  double robject_seconds = 0.0;   ///< Exact cell / r-object generation.
  double indexing_seconds = 0.0;  ///< Algorithm 3 insertions.
  double total_seconds = 0.0;     ///< Wall clock for the whole build.

  /// Wall clock per stage, reported alongside the per-worker CPU sums
  /// above (which overstate per-stage time whenever build_threads > 1 —
  /// the Fig. 7 breakdown caveat). Stage 1 is candidate generation; stage
  /// 2 is insertion + stitch + Finalize. Under Stage2Mode::kInOrder the
  /// stages overlap in time, so these walls can sum past total_seconds;
  /// under kPartitioned they are disjoint phases.
  double stage1_wall_seconds = 0.0;
  double stage2_wall_seconds = 0.0;

  /// Orthogonal split of stage-1 CPU seconds by where the cycles went
  /// (the bench's traversal-phase breakdown; aggregate across workers like
  /// the fields above). traversal covers both R-tree queries of Algorithm
  /// 2 end to end; decode is its leaf-page share (descent = traversal -
  /// decode); kernel is C-pruning + seed-widening kernel time. All zero
  /// for kBasic, which never runs Algorithm 2.
  double traversal_seconds = 0.0;
  double decode_seconds = 0.0;
  double kernel_seconds = 0.0;

  double i_pruning_ratio = 0.0;   ///< Avg fraction pruned by I-pruning.
  double c_pruning_ratio = 0.0;   ///< Avg fraction pruned after C-pruning.
  double avg_cr_objects = 0.0;    ///< Mean |C_i| (IC / ICR).
  double avg_r_objects = 0.0;     ///< Mean |F_i| (Basic / ICR).
};

/// Pipeline configuration.
struct BuildPipelineOptions {
  BuildMethod method = BuildMethod::kIC;
  CrFinderOptions cr;
  /// Worker count for both stages. <= 0: hardware concurrency; 1: the
  /// exact legacy serial loop. Any value yields a byte-identical index.
  int build_threads = 0;
  /// Bounded in-order queue window (max objects a worker may run ahead of
  /// the consumer; Stage2Mode::kInOrder only). <= 0: 2 * workers + 2.
  /// Must be >= the worker count to stay deadlock-free; smaller values
  /// are clamped.
  int queue_window = 0;
  /// Stage-2 strategy; see Stage2Mode.
  Stage2Mode stage2 = Stage2Mode::kAuto;
  /// Partition frontier depth cap for kPartitioned (clamped to [1, 3]).
  int stage2_max_depth = 2;
  /// Frontier size the serial prefix aims for. <= 0: 2 * workers,
  /// clamped to [4, 64].
  int stage2_target_subtrees = 0;
  /// Stage-1 candidate-kernel implementation (geom/batch/kernels.h),
  /// applied to C-pruning, seed-region widening and exact-cell refinement.
  /// Overrides cr.kernel_mode. Both modes build bitwise-identical indexes;
  /// kScalar is the determinism oracle, kBatch the SoA/SIMD block path.
  geom::KernelMode kernel_mode = geom::KernelMode::kBatch;
  /// Stage-1 R-tree traversal strategy (see the header comment). Both
  /// modes build bitwise-identical indexes; kPerAnchor is the traversal
  /// determinism oracle, kShared the tiled session-reuse path.
  rtree::TraversalMode traversal_mode = rtree::TraversalMode::kShared;
  /// Anchors per Morton tile under kShared (materialized stage 1 only).
  /// <= 0: 64. Any value yields byte-identical output; it only tunes how
  /// often workers touch the shared claim counter vs. how evenly tiles
  /// balance.
  int traversal_tile_size = 64;
  /// Decoded leaves each worker's session retains. <= 0: 256 (see
  /// rtree::TraversalSessionOptions).
  int leaf_memo_capacity = 256;
};

/// Runs the staged pipeline: stage-1 fan-out, in-order stage-2 insertion,
/// then UVIndex::Finalize(). `tree` is the R-tree over the same objects
/// (Algorithm 2's k-NN and range queries); `ptrs` are the ObjectStore
/// pointers stored in leaf tuples. Objects must be in id order
/// (objects[i].id() == i).
Status RunBuildPipeline(const std::vector<uncertain::UncertainObject>& objects,
                        const std::vector<uncertain::ObjectPtr>& ptrs,
                        const rtree::RTree& tree, const geom::Box& domain,
                        const BuildPipelineOptions& options, UVIndex* index,
                        BuildStats* build_stats = nullptr, Stats* stats = nullptr);

/// Stage 1 alone, materialized: index_ids->at(i) holds the ids whose
/// outside regions describe object i's UV-cell (cr-objects for IC,
/// r-objects for ICR/Basic) — exactly what RunBuildPipeline would feed
/// stage 2. Fans out over `build_threads` workers with per-worker Stats
/// shards; per-object results and the BuildStats aggregation are
/// accumulated in id order, so the output is bit-identical for every
/// thread count. Sharded construction (src/shard/) runs this once against
/// the global population, then replays the results into every sub-domain
/// index an object's cell overlaps — the per-subdomain build/merge split
/// of divide-and-conquer Voronoi construction. Timing semantics match
/// RunBuildPipeline (aggregate CPU seconds across workers);
/// indexing_seconds stays 0.
Status ComputeStage1Candidates(const std::vector<uncertain::UncertainObject>& objects,
                               const rtree::RTree& tree, const geom::Box& domain,
                               const BuildPipelineOptions& options,
                               std::vector<std::vector<int>>* index_ids,
                               BuildStats* build_stats = nullptr,
                               Stats* stats = nullptr);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_BUILD_PIPELINE_H_
