#include "rtree/traversal_session.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/timer.h"

namespace uvd {
namespace rtree {

const char* TraversalModeName(TraversalMode m) {
  switch (m) {
    case TraversalMode::kPerAnchor:
      return "per_anchor";
    case TraversalMode::kShared:
      return "shared";
  }
  return "unknown";
}

TraversalSession::TraversalSession(const RTree& tree,
                                   const TraversalSessionOptions& options,
                                   Stats* stats)
    : tree_(tree), options_(options), stats_(stats) {
  if (options_.leaf_memo_capacity == 0) options_.leaf_memo_capacity = 1;
  const double frac = std::min(1.0, std::max(0.0, options_.protected_fraction));
  protected_capacity_ =
      std::min(options_.leaf_memo_capacity - 1,
               static_cast<size_t>(frac * static_cast<double>(
                                              options_.leaf_memo_capacity)));
  Reset();
}

void TraversalSession::Reset() {
  cut_.clear();
  cut_.push_back({tree_.root(), kNode});
  cut_dead_ = 0;
  prev_valid_ = false;
  pool_radius_ = -1.0;
  last_window_ = 0.0;
}

void TraversalSession::CompactCut() {
  size_t w = 0;
  for (size_t p = 0; p < cut_.size(); ++p) {
    if (cut_[p].kind == kDead) continue;
    cut_[w++] = cut_[p];
  }
  cut_.resize(w);
  cut_dead_ = 0;
}

size_t TraversalSession::ExpandCutNode(size_t pos) {
  const uint32_t idx = cut_[pos].index;
  cut_[pos].kind = kDead;
  ++cut_dead_;
  if (stats_ != nullptr) stats_->Add(Ticker::kRtreeNodeVisits);
  const RTree::Node& node = tree_.nodes()[idx];
  const size_t first = cut_.size();
  const uint8_t child_kind = node.leaf_children ? kLeafPage : kNode;
  for (uint32_t c : node.children) cut_.push_back({c, child_kind});
  return first;
}

const std::vector<LeafEntry>& TraversalSession::GetLeaf(uint32_t leaf) {
  auto it = memo_map_.find(leaf);
  if (it != memo_map_.end()) {
    ++memo_hits_;
    if (stats_ != nullptr) stats_->Add(Ticker::kLeafMemoHits);
    MemoSlot& slot = it->second;
    if (slot.is_protected) {
      memo_protected_.splice(memo_protected_.begin(), memo_protected_,
                             slot.it);
    } else if (protected_capacity_ > 0) {
      // First re-reference promotes out of probation (scan resistance:
      // one-touch leaves never displace the tile's working set).
      memo_protected_.splice(memo_protected_.begin(), memo_probation_,
                             slot.it);
      slot.is_protected = true;
      if (memo_protected_.size() > protected_capacity_) {
        auto tail = std::prev(memo_protected_.end());
        MemoSlot& demoted = memo_map_.at(tail->leaf);
        memo_probation_.splice(memo_probation_.begin(), memo_protected_,
                               tail);
        demoted.is_protected = false;
      }
    } else {
      memo_probation_.splice(memo_probation_.begin(), memo_probation_,
                             slot.it);
    }
    return slot.it->entries;
  }

  ++memo_misses_;
  if (stats_ != nullptr) stats_->Add(Ticker::kLeafMemoMisses);
  {
    ScopedTimer t(&decode_seconds_);
    if (!tree_.ReadLeaf(tree_.leaf_pages()[leaf], &decode_buf_).ok()) {
      decode_buf_.clear();
    }
  }
  memo_probation_.push_front({leaf, std::move(decode_buf_)});
  decode_buf_ = {};
  memo_map_[leaf] = {memo_probation_.begin(), false};
  if (memo_map_.size() > options_.leaf_memo_capacity) {
    // Evict the probationary LRU tail; if the fresh insert is the only
    // probationary entry, trim the protected segment instead (it must be
    // non-empty for the map to exceed capacity >= 1).
    if (memo_probation_.size() > 1) {
      memo_map_.erase(memo_probation_.back().leaf);
      memo_probation_.pop_back();
    } else {
      memo_map_.erase(memo_protected_.back().leaf);
      memo_protected_.pop_back();
    }
  }
  return memo_probation_.front().entries;
}

bool TraversalSession::PoolCovers(const geom::Point& q, double needed) const {
  if (pool_radius_ < 0.0 || !std::isfinite(needed)) return false;
  // Transfer bound: dist_min(e, pool_center) <= dist_min(e, q) +
  // |q - pool_center| <= needed + |q - pool_center| for every entry a
  // radius-`needed` query around q can return. The 1e-9 relative guard
  // band dwarfs the few-ulp error of the floating-point evaluation, so a
  // "covered" verdict is always truly covered.
  return (needed + geom::Distance(q, pool_center_)) * (1.0 + 1e-9) <=
         pool_radius_;
}

void TraversalSession::RebuildPool(const geom::Point& center, double radius) {
  ++pool_rebuilds_;
  pool_.clear();
  pool_center_ = center;
  pool_radius_ = radius;
  if (cut_dead_ > cut_.size() / 2) CompactCut();
  const std::vector<RTree::Node>& nodes = tree_.nodes();
  const std::vector<geom::Box>& leaf_mbrs = tree_.leaf_mbrs();
  // Index loop: qualifying nodes expand in place (children appended past
  // the current end are visited later in this same sweep). MBRs bound the
  // full uncertainty circles, so MinDist(box) lower-bounds every contained
  // entry's dist_min — no qualifying entry can hide behind a pruned box.
  for (size_t p = 0; p < cut_.size(); ++p) {
    const CutElement e = cut_[p];  // copy: cut_ may reallocate below
    if (e.kind == kDead) continue;
    if (e.kind == kNode) {
      if (nodes[e.index].mbr.MinDist(center) > radius) continue;
      ExpandCutNode(p);
    } else {
      if (leaf_mbrs[e.index].MinDist(center) > radius) continue;
      const std::vector<LeafEntry>& entries = GetLeaf(e.index);
      for (const LeafEntry& le : entries) {
        // Squared-space dist_min(center) <= radius, with slack: the pool
        // may safely hold a few boundary extras (it is a superset
        // container; only the coverage LOWER bound matters), which buys
        // a sqrt-free rebuild.
        const double dx = center.x - le.mbc.center.x;
        const double dy = center.y - le.mbc.center.y;
        const double lim = radius + le.mbc.radius;
        if (dx * dx + dy * dy <= lim * lim * (1.0 + 1e-12)) {
          pool_.push_back(le);
        }
      }
    }
  }
}

bool TraversalSession::ServeFromPool(const geom::Point& q, int k, double bound,
                                     std::vector<LeafEntry>* out) {
  pool_cand_.clear();
  for (size_t i = 0; i < pool_.size(); ++i) {
    const LeafEntry& e = pool_[i];
    // Conservative square-space prefilter for dist_min <= bound (the
    // relative slack keeps borderline entries in past rounding); survivors
    // get the exact key so selection sees the same doubles the heap
    // traversal computes.
    const double dx = q.x - e.mbc.center.x;
    const double dy = q.y - e.mbc.center.y;
    const double lim = bound + e.mbc.radius;
    if (dx * dx + dy * dy > lim * lim * (1.0 + 1e-12)) continue;
    pool_cand_.push_back(
        {e.mbc.DistMin(q), e.id, static_cast<uint32_t>(i)});
  }
  if (pool_cand_.size() < static_cast<size_t>(k)) return false;
  // The k canonically smallest (key, id) — candidates are a superset of
  // every entry with key <= bound >= true k-th distance, so these are
  // exactly the entries the best-first traversal pops, in pop order.
  const auto canonical = [](const PoolCandidate& a, const PoolCandidate& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  };
  const auto kth = pool_cand_.begin() + (k - 1);
  std::nth_element(pool_cand_.begin(), kth, pool_cand_.end(), canonical);
  std::sort(pool_cand_.begin(), kth + 1, canonical);
  for (int i = 0; i < k; ++i) {
    out->push_back(pool_[pool_cand_[static_cast<size_t>(i)].pos]);
  }
  ++pool_serves_;
  prev_valid_ = true;
  prev_q_ = q;
  prev_k_ = k;
  prev_kth_ = kth->key;
  return true;
}

void TraversalSession::KNearest(const geom::Point& q, int k,
                                std::vector<LeafEntry>* out) {
  out->clear();
  if (k <= 0) return;

  // Previous-anchor bound: every dist_min moves by at most |q - prev_q|
  // (triangle inequality on the underlying point sets), so the k-th order
  // statistic does too; with k <= prev_k the current k-th distance is at
  // most B. Keys strictly above B rank after all k winners even under the
  // canonical tie-break, so neither the pool selection nor the heap ever
  // needs them.
  double bound = std::numeric_limits<double>::infinity();
  if (prev_valid_ && k <= prev_k_) {
    bound = prev_kth_ + geom::Distance(q, prev_q_);
  }
  if (std::isfinite(bound)) {
    // Shrink-rebuild when the ball is >2x oversized for current requests
    // (a one-off wide query must not leave every later scan paying its
    // 4x-area pool). `want` >= bound, so the shrunk ball still covers
    // this query. Right after a Morton jump `bound` is inflated, but then
    // coverage fails too and the heap path below re-sizes from the fresh
    // exact k-th distance instead.
    const double want =
        std::max(bound, last_window_) * (1.0 + options_.pool_margin);
    if (pool_radius_ > 2.0 * want) RebuildPool(q, want);
    if (PoolCovers(q, bound) && ServeFromPool(q, k, bound, out)) {
      last_window_ = std::max(last_window_ * 0.5, prev_kth_);
      return;
    }
    out->clear();  // pool miss (or defensive fallback): answer via the heap
  }
  HeapKNearest(q, k, out);
  if (prev_valid_) {
    // Full result: re-center the ball on the exact local k-th distance
    // (never the jump-inflated Lipschitz bound) so the following anchors
    // and this anchor's range query serve from flat scans again.
    RebuildPool(q, std::max(prev_kth_, last_window_) *
                       (1.0 + options_.pool_margin));
    last_window_ = std::max(last_window_ * 0.5, prev_kth_);
  }
}

void TraversalSession::HeapKNearest(const geom::Point& q, int k,
                                    std::vector<LeafEntry>* out) {
  if (cut_dead_ > cut_.size() / 2) CompactCut();
  double bound = std::numeric_limits<double>::infinity();
  if (prev_valid_ && k <= prev_k_) {
    bound = prev_kth_ + geom::Distance(q, prev_q_);
  }

  const std::greater<HeapItem> worse;
  const std::vector<RTree::Node>& nodes = tree_.nodes();
  const std::vector<geom::Box>& leaf_mbrs = tree_.leaf_mbrs();
  heap_.clear();
  for (size_t p = 0; p < cut_.size(); ++p) {
    const CutElement& e = cut_[p];
    if (e.kind == kDead) continue;
    const double key = e.kind == kNode ? nodes[e.index].mbr.MinDist(q)
                                       : leaf_mbrs[e.index].MinDist(q);
    if (key > bound) continue;
    heap_.push_back({key, e.index, -1, static_cast<uint32_t>(p), e.kind});
  }
  std::make_heap(heap_.begin(), heap_.end(), worse);

  double last_key = 0.0;
  while (!heap_.empty() && out->size() < static_cast<size_t>(k)) {
    std::pop_heap(heap_.begin(), heap_.end(), worse);
    const HeapItem item = heap_.back();
    heap_.pop_back();
    switch (item.kind) {
      case kNode: {
        const size_t first = ExpandCutNode(item.pos);
        for (size_t p = first; p < cut_.size(); ++p) {
          const CutElement& e = cut_[p];
          const double key = e.kind == kNode ? nodes[e.index].mbr.MinDist(q)
                                             : leaf_mbrs[e.index].MinDist(q);
          if (key > bound) continue;
          heap_.push_back(
              {key, e.index, -1, static_cast<uint32_t>(p), e.kind});
          std::push_heap(heap_.begin(), heap_.end(), worse);
        }
        break;
      }
      case kLeafPage: {
        const std::vector<LeafEntry>& entries = GetLeaf(item.index);
        for (size_t pos = 0; pos < entries.size(); ++pos) {
          const double key = entries[pos].mbc.DistMin(q);
          if (key > bound) continue;
          heap_.push_back({key, item.index, entries[pos].id,
                           static_cast<uint32_t>(pos), kEntry});
          std::push_heap(heap_.begin(), heap_.end(), worse);
        }
        break;
      }
      default: {  // kEntry: resolve through the memo (re-decodes if evicted)
        const std::vector<LeafEntry>& entries = GetLeaf(item.index);
        out->push_back(entries[item.pos]);
        last_key = item.key;
        break;
      }
    }
  }

  if (out->size() == static_cast<size_t>(k)) {
    prev_valid_ = true;
    prev_q_ = q;
    prev_k_ = k;
    prev_kth_ = last_key;
  } else {
    prev_valid_ = false;  // partial result: no bound to carry forward
  }
}

void TraversalSession::CentersInRange(const geom::Point& center, double radius,
                                      std::vector<LeafEntry>* out) {
  out->clear();
  // A center within `radius` implies dist_min <= radius (dist_min only
  // subtracts the entry's own radius), so the dist_min ball covers every
  // qualifying entry and a flat pool scan returns the exact oracle set.
  const double want =
      std::max(radius, last_window_) * (1.0 + options_.pool_margin);
  if (!PoolCovers(center, radius) || pool_radius_ > 2.0 * want) {
    RebuildPool(center, want);
  }
  last_window_ = std::max(last_window_ * 0.5, radius);
  ++pool_serves_;
  const double r2 = radius * radius * (1.0 + 1e-12);
  for (const LeafEntry& le : pool_) {
    // Conservative squared prefilter, then the oracle's exact comparison
    // for the borderline-included survivors — bit-identical keep set.
    const double dx = le.mbc.center.x - center.x;
    const double dy = le.mbc.center.y - center.y;
    if (dx * dx + dy * dy > r2) continue;
    if (geom::Distance(le.mbc.center, center) <= radius) {
      out->push_back(le);
    }
  }
}

}  // namespace rtree
}  // namespace uvd
