#include "obs/trace_recorder.h"

#include <cstdio>
#include <sstream>

#include "obs/latency_histogram.h"

namespace uvd {
namespace obs {

std::atomic<bool> TraceRecorder::enabled_{false};

namespace {
// Fast path for the GLOBAL recorder only: that instance is never
// destroyed, so the cached pointers cannot dangle. Private recorders
// (tests) resolve their ring by thread id under the registry mutex — a
// destroyed-and-reallocated private recorder must never match a stale
// thread-local.
thread_local void* tls_global_ring = nullptr;
}  // namespace

TraceRecorder::TraceRecorder(size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

uint64_t TraceSpan::NowMicrosForTrace() { return NowMicros(); }

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  const bool is_global = this == &Global();
  if (is_global && tls_global_ring != nullptr) {
    return static_cast<Ring*>(tls_global_ring);
  }
  MutexLock lock(registry_mu_);
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& existing : rings_) {
    if (existing->owner == me) {
      if (is_global) tls_global_ring = existing.get();
      return existing.get();
    }
  }
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<uint32_t>(rings_.size());
  ring->owner = me;
  {
    // The ring is not yet published, but `events` is guarded by `mu`:
    // taking the (uncontended) lock keeps the annotation exact.
    MutexLock init_lock(ring->mu);
    ring->events.resize(ring_capacity_);
  }
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  if (is_global) tls_global_ring = raw;
  return raw;
}

void TraceRecorder::Record(const char* category, const char* name,
                           uint64_t start_us, uint64_t duration_us) {
  Ring* ring = RingForThisThread();
  MutexLock lock(ring->mu);
  ring->events[ring->next] = TraceEvent{category, name, start_us, duration_us};
  ring->next = (ring->next + 1) % ring->events.size();
  if (ring->size < ring->events.size()) {
    ++ring->size;
  } else {
    ++ring->dropped;
  }
}

void TraceRecorder::Clear() {
  MutexLock lock(registry_mu_);
  for (auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

size_t TraceRecorder::event_count() const {
  MutexLock lock(registry_mu_);
  size_t total = 0;
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    total += ring->size;
  }
  return total;
}

uint64_t TraceRecorder::dropped() const {
  MutexLock lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

size_t TraceRecorder::thread_count() const {
  MutexLock lock(registry_mu_);
  return rings_.size();
}

namespace {
void AppendJsonEscaped(std::ostringstream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out << '\\';
    out << *s;
  }
}
}  // namespace

std::string TraceRecorder::ToChromeTraceJson() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  MutexLock lock(registry_mu_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    // Oldest event first: the ring holds `size` events ending at `next`.
    const size_t cap = ring->events.size();
    const size_t start = (ring->next + cap - ring->size) % cap;
    for (size_t k = 0; k < ring->size; ++k) {
      const TraceEvent& e = ring->events[(start + k) % cap];
      out << (first ? "\n" : ",\n");
      first = false;
      out << "{\"name\": \"";
      AppendJsonEscaped(out, e.name);
      out << "\", \"cat\": \"";
      AppendJsonEscaped(out, e.category);
      out << "\", \"ph\": \"X\", \"ts\": " << e.start_us
          << ", \"dur\": " << e.duration_us << ", \"pid\": 0, \"tid\": "
          << ring->tid << "}";
    }
  }
  out << "\n]}\n";
  return out.str();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  const std::string doc = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::IOError("short write to trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace uvd
