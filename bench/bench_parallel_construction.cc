// Staged build pipeline: construction time vs worker count and stage-1
// kernel implementation for Basic / ICR / IC on the Fig. 7(a) workload.
//
// Two axes:
//
//   threads      — stage 1 fans out per object; stage 2 (quad-tree
//                  insertion) runs domain-partitioned with a canonical
//                  stitch (core/uv_index.h).
//   kernel_mode  — scalar: the reference per-candidate loops;
//                  batch: the SoA kernels of geom/batch/ (envelope
//                  prefilter, squared-distance C-pruning, batched 4-point
//                  test), optionally SIMD (UVD_ENABLE_SIMD).
//
// Every cell builds a byte-identical index; `--determinism-check` proves
// it by building the example index across thread counts, stage-2 shapes
// AND kernel modes, diffing serialized digests against the serial build
// (the CI cross-check step and a ctest smoke run exactly that; exits
// non-zero on any mismatch).
//
// `--json <path>` additionally writes every measured cell as a flat JSON
// record (method, threads, kernel, stage wall clocks, speedups) for bench
// history tracking — see BENCH_stage1.json at the repo root.
#include "bench_common.h"

#include <cstring>

#include "common/thread_pool.h"

namespace {

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<uint8_t> SerializedIndex(const uvd::core::UVDiagram& d) {
  std::vector<uint8_t> bytes;
  UVD_CHECK_OK(d.index().SerializeStructure(&bytes));
  return bytes;
}

/// Builds the example dataset at every (threads, mode, depth, kernel)
/// combination and compares serialized digests against the serial build.
/// Returns the number of mismatches (0 = deterministic).
int RunDeterminismCheck() {
  using namespace uvd;
  datagen::DatasetOptions opts;
  opts.count = 800;
  opts.seed = 42;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);

  core::UVDiagramOptions serial_options;
  serial_options.build_threads = 1;
  serial_options.kernel_mode = geom::KernelMode::kScalar;
  const auto serial =
      core::UVDiagram::Build(objects, domain, serial_options).ValueOrDie();
  const uint64_t serial_digest = Fnv1a(SerializedIndex(serial));
  std::printf("serial scalar                             digest %016llx\n",
              static_cast<unsigned long long>(serial_digest));

  int mismatches = 0;
  const auto check = [&](int threads, core::Stage2Mode mode, int depth,
                         geom::KernelMode kernel) {
    core::UVDiagramOptions options;
    options.build_threads = threads;
    options.stage2 = mode;
    options.stage2_max_depth = depth;
    options.kernel_mode = kernel;
    const auto d = core::UVDiagram::Build(objects, domain, options).ValueOrDie();
    const uint64_t digest = Fnv1a(SerializedIndex(d));
    const bool ok = digest == serial_digest;
    std::printf("threads=%d %-11s depth=%d kernel=%-6s digest %016llx  %s\n",
                threads, core::Stage2ModeName(mode), depth,
                geom::KernelModeName(kernel),
                static_cast<unsigned long long>(digest), ok ? "OK" : "MISMATCH");
    if (!ok) ++mismatches;
  };
  for (int threads : {2, 4, 8}) {
    for (geom::KernelMode kernel :
         {geom::KernelMode::kScalar, geom::KernelMode::kBatch}) {
      check(threads, core::Stage2Mode::kInOrder, 2, kernel);
      check(threads, core::Stage2Mode::kPartitioned, 2, kernel);
    }
    for (int depth : {1, 3}) {
      check(threads, core::Stage2Mode::kPartitioned, depth,
            geom::KernelMode::kBatch);
    }
  }
  if (mismatches == 0) {
    std::printf("determinism check PASSED: every build serialized identically\n");
  } else {
    std::printf("determinism check FAILED: %d mismatching build(s)\n", mismatches);
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uvd;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--determinism-check") == 0) {
      bench::PrintBanner("Stage-2 + kernel determinism cross-check",
                         "serialized-index digest equality across builds");
      return RunDeterminismCheck() == 0 ? 0 : 1;
    }
  }
  const std::string json_path = bench::ParseJsonPath(argc, argv);
  bench::JsonReport report("parallel_construction_kernel_sweep");

  bench::PrintBanner("Parallel construction: T_c vs build_threads and kernel",
                     "staged pipeline over the Fig. 7(a) workload");
  std::printf("hardware concurrency: %d\n", ThreadPool::DefaultThreads());
  std::printf("batch kernels: %s (SIMD %s)\n\n", geom::batch::SimdIsa(),
              geom::batch::SimdEnabled() ? "on" : "off");

  const int thread_sweep[] = {1, 2, 4, 8};
  const core::BuildMethod methods[] = {core::BuildMethod::kBasic,
                                       core::BuildMethod::kICR,
                                       core::BuildMethod::kIC};

  for (core::BuildMethod method : methods) {
    datagen::DatasetOptions opts;
    // Basic is O(n) envelope insertions per object; run it on a reduced
    // size, the pruned methods on the scaled Fig. 7(a) size.
    opts.count = method == core::BuildMethod::kBasic
                     ? bench::ScaledCount(2000)
                     : bench::ScaledCount(10000);
    opts.seed = 42;
    std::printf("%s (|O| = %zu, partitioned stage 2)\n",
                core::BuildMethodName(method), opts.count);
    std::printf("%8s | %10s %10s %8s | %10s %10s %8s\n", "threads",
                "scal s1(s)", "batch s1(s)", "s1 spdup", "scal T_c(s)",
                "batch T_c(s)", "T_c spdup");
    for (int threads : thread_sweep) {
      double s1_wall[2] = {0.0, 0.0};
      double total[2] = {0.0, 0.0};
      const geom::KernelMode kernels[2] = {geom::KernelMode::kScalar,
                                           geom::KernelMode::kBatch};
      for (int k = 0; k < 2; ++k) {
        Stats stats;
        core::UVDiagramOptions options;
        options.method = method;
        options.build_threads = threads;
        options.kernel_mode = kernels[k];
        auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                           datagen::DomainFor(opts), options, &stats);
        const core::BuildStats& bs = diagram.build_stats();
        s1_wall[k] = bs.stage1_wall_seconds;
        total[k] = bs.total_seconds;
        report.BeginRecord();
        report.Add("method", core::BuildMethodName(method));
        report.Add("objects", static_cast<int64_t>(opts.count));
        report.Add("threads", static_cast<int64_t>(threads));
        report.Add("kernel", geom::KernelModeName(kernels[k]));
        report.Add("simd", geom::batch::SimdEnabled() &&
                                   kernels[k] == geom::KernelMode::kBatch
                               ? geom::batch::SimdIsa()
                               : "none");
        report.Add("stage1_wall_s", bs.stage1_wall_seconds);
        report.Add("stage2_wall_s", bs.stage2_wall_seconds);
        report.Add("total_s", bs.total_seconds);
      }
      std::printf("%8d | %10.2f %10.2f %7.2fx | %10.2f %11.2f %8.2fx\n",
                  threads, s1_wall[0], s1_wall[1], s1_wall[0] / s1_wall[1],
                  total[0], total[1], total[0] / total[1]);
    }
    std::printf("\n");
  }
  std::printf(
      "Every cell builds a byte-identical index (geom/batch/kernels.h);\n"
      "run with --determinism-check to verify digests across thread counts,\n"
      "stage-2 shapes and kernel modes. The batch columns run the SoA\n"
      "stage-1 kernels (envelope prefilter, squared-distance C-pruning,\n"
      "batched 4-point test) with the scalar columns as their oracle.\n");
  report.WriteTo(json_path);
  return 0;
}
