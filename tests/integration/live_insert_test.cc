// Tests for incremental insertion (paper Sec. VII future work): after any
// mix of bulk construction and live inserts, both query paths must answer
// exactly like brute force over the full population.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "datagen/workload.h"

namespace uvd {
namespace core {
namespace {

std::vector<int> BruteAnswers(const std::vector<uncertain::UncertainObject>& objs,
                              const geom::Point& q) {
  double d_minmax = std::numeric_limits<double>::infinity();
  for (const auto& o : objs) d_minmax = std::min(d_minmax, o.DistMax(q));
  std::vector<int> ids;
  for (const auto& o : objs) {
    if (o.DistMin(q) <= d_minmax) ids.push_back(o.id());
  }
  return ids;
}

TEST(LiveInsertTest, AnswersStayExactAfterInserts) {
  datagen::DatasetOptions opts;
  opts.count = 400;
  opts.seed = 3;
  auto diagram =
      UVDiagram::Build(datagen::GenerateUniform(opts), datagen::DomainFor(opts))
          .ValueOrDie();
  Rng rng(7);
  for (int k = 0; k < 40; ++k) {
    const int id = static_cast<int>(diagram.objects().size());
    ASSERT_TRUE(diagram
                    .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                        id, {{rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, 20}))
                    .ok());
  }
  EXPECT_EQ(diagram.objects().size(), 440u);
  for (const auto& q : datagen::UniformQueryPoints(40, diagram.domain(), 99)) {
    EXPECT_EQ(diagram.AnswerObjectIds(q).ValueOrDie(),
              BruteAnswers(diagram.objects(), q));
  }
}

TEST(LiveInsertTest, BothPathsAgreeAfterInserts) {
  datagen::DatasetOptions opts;
  opts.count = 300;
  opts.seed = 5;
  auto diagram =
      UVDiagram::Build(datagen::GenerateUniform(opts), datagen::DomainFor(opts))
          .ValueOrDie();
  Rng rng(9);
  for (int k = 0; k < 20; ++k) {
    const int id = static_cast<int>(diagram.objects().size());
    ASSERT_TRUE(diagram
                    .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                        id, {{rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, 30}))
                    .ok());
  }
  for (const auto& q : datagen::UniformQueryPoints(20, diagram.domain(), 11)) {
    const auto uv = diagram.QueryPnn(q).ValueOrDie();
    const auto rt = diagram.QueryPnnWithRtree(q).ValueOrDie();
    ASSERT_EQ(uv.size(), rt.size());
    for (size_t i = 0; i < uv.size(); ++i) {
      EXPECT_EQ(uv[i].id, rt[i].id);
      EXPECT_NEAR(uv[i].probability, rt[i].probability, 1e-12);
    }
  }
}

TEST(LiveInsertTest, InsertedObjectBecomesAnswerAtItsLocation) {
  datagen::DatasetOptions opts;
  opts.count = 200;
  opts.seed = 13;
  auto diagram =
      UVDiagram::Build(datagen::GenerateUniform(opts), datagen::DomainFor(opts))
          .ValueOrDie();
  const geom::Point spot{7777, 2222};
  ASSERT_TRUE(diagram
                  .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                      200, {spot, 25}))
                  .ok());
  const auto ids = diagram.AnswerObjectIds(spot).ValueOrDie();
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 200) != ids.end())
      << "a freshly inserted object must answer at its own center";
}

TEST(LiveInsertTest, RejectsBadIds) {
  datagen::DatasetOptions opts;
  opts.count = 50;
  auto diagram =
      UVDiagram::Build(datagen::GenerateUniform(opts), datagen::DomainFor(opts))
          .ValueOrDie();
  EXPECT_FALSE(diagram
                   .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                       7, {{100, 100}, 10}))
                   .ok());
  EXPECT_FALSE(diagram
                   .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                       50, {{-5, 100}, 10}))
                   .ok());
}

TEST(LiveInsertTest, PatternQueriesSeeInsertedObjects) {
  datagen::DatasetOptions opts;
  opts.count = 150;
  opts.seed = 17;
  auto diagram =
      UVDiagram::Build(datagen::GenerateUniform(opts), datagen::DomainFor(opts))
          .ValueOrDie();
  ASSERT_TRUE(diagram
                  .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                      150, {{5000, 5000}, 20}))
                  .ok());
  const auto summary = diagram.QueryUvCellSummary(150);
  ASSERT_TRUE(summary.ok());
  EXPECT_GE(summary.value().num_leaves, 1u);
}

TEST(LiveInsertTest, ManyInsertsLengthenLeafChains) {
  // The frozen grid absorbs inserts as page-chain growth, not splits.
  datagen::DatasetOptions opts;
  opts.count = 300;
  opts.seed = 19;
  auto diagram =
      UVDiagram::Build(datagen::GenerateUniform(opts), datagen::DomainFor(opts))
          .ValueOrDie();
  const int nonleaf_before = diagram.index().num_nonleaf();
  const size_t pages_before = diagram.index().total_leaf_pages();
  Rng rng(23);
  for (int k = 0; k < 150; ++k) {
    const int id = static_cast<int>(diagram.objects().size());
    ASSERT_TRUE(diagram
                    .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                        id, {{rng.Uniform(4000, 6000), rng.Uniform(4000, 6000)}, 20}))
                    .ok());
  }
  EXPECT_EQ(diagram.index().num_nonleaf(), nonleaf_before) << "no live splits";
  EXPECT_GE(diagram.index().total_leaf_pages(), pages_before);
}

}  // namespace
}  // namespace core
}  // namespace uvd
