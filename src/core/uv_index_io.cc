#include "core/uv_index_io.h"

#include <unordered_map>

#include "rtree/leaf_codec.h"
#include "storage/record.h"

namespace uvd {
namespace core {

namespace {

constexpr uint32_t kMagic = 0x55564431;  // "UVD1"
constexpr uint32_t kVersion = 1;

}  // namespace

Status UVIndex::SerializeStructure(std::vector<uint8_t>* out) const {
  if (!finalized_) {
    return Status::InvalidArgument("only finalized indexes can be saved");
  }
  out->clear();
  storage::Encoder enc(out);
  enc.PutU32(kMagic);
  enc.PutU32(kVersion);
  enc.PutDouble(domain_.lo.x);
  enc.PutDouble(domain_.lo.y);
  enc.PutDouble(domain_.hi.x);
  enc.PutDouble(domain_.hi.y);
  enc.PutI32(options_.max_nonleaf);
  enc.PutDouble(options_.split_threshold);
  enc.PutI32(options_.leaf_fanout);
  enc.PutU32(static_cast<uint32_t>(nodes_.size()));
  enc.PutI32(nonleaf_count_);
  for (const Node& node : nodes_) {
    enc.PutDouble(node.region.lo.x);
    enc.PutDouble(node.region.lo.y);
    enc.PutDouble(node.region.hi.x);
    enc.PutDouble(node.region.hi.y);
    enc.PutU16(node.is_leaf ? 1 : 0);
    if (node.is_leaf) {
      enc.PutU32(static_cast<uint32_t>(node.pages.size()));
      for (storage::PageId p : node.pages) enc.PutU32(p);
    } else {
      for (uint32_t c : node.children) enc.PutU32(c);
    }
  }
  return Status::OK();
}

Result<UVIndex> UVIndex::DeserializeStructure(const std::vector<uint8_t>& data,
                                              storage::PageManager* pm,
                                              Stats* stats) {
  storage::Decoder dec(data);
  if (dec.remaining() < 8 || dec.GetU32() != kMagic) {
    return Status::InvalidArgument("not a saved UV-index");
  }
  if (dec.GetU32() != kVersion) {
    return Status::InvalidArgument("unsupported UV-index version");
  }
  geom::Box domain;
  domain.lo.x = dec.GetDouble();
  domain.lo.y = dec.GetDouble();
  domain.hi.x = dec.GetDouble();
  domain.hi.y = dec.GetDouble();
  UVIndexOptions options;
  options.max_nonleaf = dec.GetI32();
  options.split_threshold = dec.GetDouble();
  options.leaf_fanout = dec.GetI32();

  UVIndex index(domain, pm, options, stats);
  const uint32_t node_count = dec.GetU32();
  index.nonleaf_count_ = dec.GetI32();
  index.nodes_.clear();
  index.nodes_.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    Node node;
    node.region.lo.x = dec.GetDouble();
    node.region.lo.y = dec.GetDouble();
    node.region.hi.x = dec.GetDouble();
    node.region.hi.y = dec.GetDouble();
    node.is_leaf = dec.GetU16() == 1;
    if (node.is_leaf) {
      const uint32_t pages = dec.GetU32();
      node.pages.reserve(pages);
      for (uint32_t p = 0; p < pages; ++p) node.pages.push_back(dec.GetU32());
      node.num_pages = pages;
    } else {
      for (auto& c : node.children) c = dec.GetU32();
      node.num_pages = 0;
    }
    index.nodes_.push_back(std::move(node));
  }

  // Restore per-leaf object lists (pattern queries, live insertion) from
  // the shared leaf tuple pages.
  std::unordered_map<int, uint32_t> slot_of;
  std::vector<uint8_t> buf;
  std::vector<rtree::LeafEntry> tuples;
  for (Node& node : index.nodes_) {
    if (!node.is_leaf) continue;
    tuples.clear();
    for (storage::PageId page : node.pages) {
      UVD_RETURN_NOT_OK(pm->Read(page, &buf));
      rtree::DecodeLeafEntries(buf, &tuples);
    }
    node.member_slots.reserve(tuples.size());
    for (const rtree::LeafEntry& e : tuples) {
      auto it = slot_of.find(e.id);
      if (it == slot_of.end()) {
        index.members_.push_back(Member{e.mbc, e.id, e.ptr, {}, nullptr, {}});
        it = slot_of.emplace(e.id, static_cast<uint32_t>(index.members_.size() - 1))
                 .first;
      }
      node.member_slots.push_back(it->second);
    }
  }
  index.finalized_ = true;
  return index;
}

Result<SavedIndexHandle> WriteStreamToPages(const std::vector<uint8_t>& stream,
                                            storage::PageManager* pm) {
  SavedIndexHandle handle;
  const size_t page_size = pm->page_size();
  handle.page_count =
      static_cast<uint32_t>((stream.size() + page_size - 1) / page_size);
  if (handle.page_count == 0) return handle;
  handle.first_page = pm->AllocateRun(handle.page_count);
  if (handle.first_page == storage::kInvalidPageId) {
    return Status::IOError("page allocation failed while saving a stream");
  }
  for (uint32_t i = 0; i < handle.page_count; ++i) {
    const size_t begin = static_cast<size_t>(i) * page_size;
    const size_t len = std::min(page_size, stream.size() - begin);
    std::vector<uint8_t> chunk(stream.begin() + static_cast<long>(begin),
                               stream.begin() + static_cast<long>(begin + len));
    UVD_RETURN_NOT_OK(pm->Write(handle.first_page + i, chunk));
  }
  return handle;
}

Status ReadPagesToStream(const storage::PageManager& pm,
                         const SavedIndexHandle& handle,
                         std::vector<uint8_t>* stream) {
  stream->clear();
  std::vector<uint8_t> buf;
  for (uint32_t i = 0; i < handle.page_count; ++i) {
    UVD_RETURN_NOT_OK(pm.Read(handle.first_page + i, &buf));
    stream->insert(stream->end(), buf.begin(), buf.end());
  }
  return Status::OK();
}

Result<SavedIndexHandle> SaveUvIndex(const UVIndex& index,
                                     storage::PageManager* pm) {
  std::vector<uint8_t> stream;
  UVD_RETURN_NOT_OK(index.SerializeStructure(&stream));
  return WriteStreamToPages(stream, pm);
}

Result<UVIndex> LoadUvIndex(storage::PageManager* pm, const SavedIndexHandle& handle,
                            Stats* stats) {
  if (handle.first_page == storage::kInvalidPageId || handle.page_count == 0) {
    return Status::InvalidArgument("empty index handle");
  }
  std::vector<uint8_t> stream;
  UVD_RETURN_NOT_OK(ReadPagesToStream(*pm, handle, &stream));
  return UVIndex::DeserializeStructure(stream, pm, stats);
}

}  // namespace core
}  // namespace uvd
