// Self-test fixture: determinism-clean code. Every pattern here is the
// approved counterpart of a bad_*.cc fixture; the linter must report
// nothing.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/thread_annotations.h"

namespace fixture {

struct Slot {
  int value = 0;
};

class Good {
 public:
  // Unordered LOOK-UPS are fine; only iteration is banned.
  int Find(uint32_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? -1 : it->second.value;
  }

  // Iterating an ordered, value-keyed container is deterministic.
  std::vector<uint32_t> SortedKeys() const {
    std::vector<uint32_t> keys;
    for (const auto& [key, slot] : ordered_) keys.push_back(key);
    return keys;
  }

  void Touch() {
    uvd::MutexLock lock(mu_);
    ++hits_;
  }

 private:
  std::unordered_map<uint32_t, Slot> map_;
  std::map<uint32_t, Slot> ordered_;  // keyed on a stable id, not an address
  uvd::Mutex mu_;
  uint64_t hits_ UVD_GUARDED_BY(mu_) = 0;
};

// Explicitly seeded RNG through the repo wrapper: deterministic.
inline double Draw(uvd::Rng& rng) { return rng.Uniform(0.0, 1.0); }

// A justified suppression is honored.
// uvd-lint: allow(raw-mutex) fixture proving justified suppressions pass
using RawForInterop = std::mutex;

}  // namespace fixture
