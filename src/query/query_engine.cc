#include "query/query_engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "core/pattern_queries.h"
#include "core/pnn.h"
#include "obs/trace_recorder.h"

namespace uvd {
namespace query {

namespace {

DiagramView ViewOf(const core::UVDiagram& diagram) {
  DiagramView view;
  view.index = &diagram.index();
  view.store = &diagram.store();
  view.qualification = diagram.options().qualification;
  view.stats = &diagram.stats();
  return view;
}

}  // namespace

QueryEngine::QueryEngine(const core::UVDiagram& diagram,
                         const QueryEngineOptions& options)
    : QueryEngine(ViewOf(diagram), options) {}

QueryEngine::QueryEngine(const DiagramView& view, const QueryEngineOptions& options)
    : view_(view), options_(options) {
  UVD_CHECK(view_.index != nullptr);
  UVD_CHECK(view_.store != nullptr);
  threads_ = options.threads > 0 ? options.threads : ThreadPool::DefaultThreads();
  if (options_.enable_cache) {
    cache_ = std::make_unique<QueryCache>(options_.cache);
  }
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
}

void QueryEngine::InvalidateCache() {
  if (cache_ != nullptr) cache_->Clear();
}

std::vector<Stats> QueryEngine::worker_stats() const {
  MutexLock lock(stats_mu_);
  return worker_stats_;
}

Result<std::vector<rtree::LeafEntry>> QueryEngine::CandidatesFor(
    const geom::Point& p, Stats* shard) const {
  const core::UVIndex& index = *view_.index;
  uint32_t leaf = 0;
  {
    UVD_TRACE_SPAN("query", "locate_leaf");
    UVD_ASSIGN_OR_RETURN(leaf, index.LocateLeafChecked(p));
  }
  if (cache_ != nullptr) {
    UVD_TRACE_SPAN("query", "cache_lookup");
    return cache_->GetOrLoad(
        leaf,
        [&index, leaf] {
          UVD_TRACE_SPAN("query", "read_leaf");
          return index.ReadLeafEntries(leaf);
        },
        shard);
  }
  UVD_TRACE_SPAN("query", "read_leaf");
  return index.ReadLeafEntries(leaf);
}

QueryResult QueryEngine::ExecuteOne(const Query& q, Stats* shard) const {
  QueryResult result;
  switch (q.kind) {
    case QueryKind::kPnn: {
      auto candidates = CandidatesFor(q.point, shard);
      if (!candidates.ok()) {
        result.status = candidates.status();
        break;
      }
      auto answers = [&] {
        UVD_TRACE_SPAN("query", "qualification");
        return core::EvaluatePnnFromCandidates(std::move(candidates).value(),
                                               *view_.store, q.point,
                                               view_.qualification, shard);
      }();
      if (!answers.ok()) {
        result.status = answers.status();
        break;
      }
      result.pnn = std::move(answers).value();
      break;
    }
    case QueryKind::kAnswerIds: {
      auto candidates = CandidatesFor(q.point, shard);
      if (!candidates.ok()) {
        result.status = candidates.status();
        break;
      }
      result.answer_ids =
          core::AnswerIdsFromCandidates(std::move(candidates).value(), q.point);
      break;
    }
    case QueryKind::kUvPartitions: {
      result.partitions = core::RetrieveUvPartitions(*view_.index, q.range, shard);
      if (options_.warm_cache_from_partitions && cache_ != nullptr) {
        // Seed the probationary segment with the leaves just enumerated;
        // point probes that follow the range scan into the same region hit
        // without the leaf page-chain read. Warm failures are ignored —
        // the cache is an optimization, not part of the answer.
        const core::UVIndex& index = *view_.index;
        for (const core::UvPartition& p : result.partitions) {
          const uint32_t leaf = p.leaf;
          const Status warm = cache_->WarmInsert(
              leaf, [&index, leaf] { return index.ReadLeafEntries(leaf); },
              shard);
          (void)warm;
        }
      }
      break;
    }
    case QueryKind::kCellSummary: {
      auto summary = core::RetrieveUvCellSummary(*view_.index, q.object_id,
                                                 /*use_offline_lists=*/true, shard);
      if (!summary.ok()) {
        result.status = summary.status();
        break;
      }
      result.cell_summary = summary.value();
      break;
    }
  }
  return result;
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(const QueryBatch& batch) {
  UVD_TRACE_SPAN("query", "execute_batch");
  std::vector<QueryResult> results(batch.size());
  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(threads_), batch.size()));

  // Every shard is call-local: concurrent ExecuteBatch callers on one
  // engine (e.g. two front-ends sharing a shard) never touch each other's
  // counters. The member copy below exists only for worker_stats()
  // observability and is the one cross-call write, hence the mutex.
  std::vector<Stats> shards;
  // Latency shards follow the same call-local story; merged into
  // kind_latency_ at the end (MergeFrom is atomic-safe for concurrent
  // callers). `timed` is sampled once so a mid-batch toggle cannot split
  // a query between recorded and unrecorded halves.
  const bool timed = obs::MetricsEnabled();
  using KindLatencyShard = std::array<obs::LatencyHistogram, kNumQueryKinds>;
  std::vector<KindLatencyShard> latency_shards;

  if (pool_ == nullptr || workers <= 1) {
    shards.assign(1, Stats());
    latency_shards.resize(1);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (timed) {
        const uint64_t t0 = obs::NowMicros();
        results[i] = ExecuteOne(batch[i], &shards[0]);
        latency_shards[0][static_cast<size_t>(batch[i].kind)].Record(
            obs::NowMicros() - t0);
      } else {
        results[i] = ExecuteOne(batch[i], &shards[0]);
      }
    }
  } else {
    // Fan-out: workers claim slots through the cursor; results are written
    // positionally, so submission order is preserved for free. Completion
    // is tracked per call (WaitGroup) — NOT via the pool's global Wait,
    // which would couple this caller's latency to every overlapping
    // batch's drain.
    shards.assign(static_cast<size_t>(workers), Stats());
    latency_shards.resize(static_cast<size_t>(workers));
    std::atomic<size_t> next{0};
    auto done = std::make_shared<WaitGroup>(workers);
    for (int w = 0; w < workers; ++w) {
      Stats* shard = &shards[static_cast<size_t>(w)];
      KindLatencyShard* latency = &latency_shards[static_cast<size_t>(w)];
      pool_->Submit([this, &batch, &results, &next, done, shard, latency, timed] {
        UVD_TRACE_SPAN("query", "batch_worker");
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= batch.size()) break;
          if (timed) {
            const uint64_t t0 = obs::NowMicros();
            results[i] = ExecuteOne(batch[i], shard);
            (*latency)[static_cast<size_t>(batch[i].kind)].Record(
                obs::NowMicros() - t0);
          } else {
            results[i] = ExecuteOne(batch[i], shard);
          }
        }
        done->Done();
      });
    }
    done->Wait();
  }

  if (view_.stats != nullptr) {
    for (const Stats& shard : shards) view_.stats->MergeFrom(shard);
  }
  if (timed) {
    for (const KindLatencyShard& shard : latency_shards) {
      for (size_t k = 0; k < static_cast<size_t>(kNumQueryKinds); ++k) {
        kind_latency_[k].MergeFrom(shard[k]);
      }
    }
  }
  {
    MutexLock lock(stats_mu_);
    worker_stats_ = std::move(shards);
  }
  return results;
}

void QueryEngine::ResetMetrics() {
  for (auto& h : kind_latency_) h.Reset();
}

void QueryEngine::RegisterMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) const {
  for (int k = 0; k < kNumQueryKinds; ++k) {
    const QueryKind kind = static_cast<QueryKind>(k);
    registry->RegisterHistogram(
        prefix + ".query." + QueryKindName(kind) + ".latency.us",
        &kind_latency_[static_cast<size_t>(k)]);
  }
  if (cache_ != nullptr) {
    const QueryCache* cache = cache_.get();
    registry->RegisterGauge(prefix + ".cache.size", [cache] {
      return static_cast<double>(cache->size());
    });
    registry->RegisterGauge(prefix + ".cache.protected_size", [cache] {
      return static_cast<double>(cache->protected_size());
    });
  }
  if (pool_ != nullptr) {
    const ThreadPool* pool = pool_.get();
    registry->RegisterGauge(prefix + ".pool.queue_depth", [pool] {
      return static_cast<double>(pool->QueueDepth());
    });
  }
  if (view_.stats != nullptr) {
    registry->RegisterStats(prefix, view_.stats);
  }
}

}  // namespace query
}  // namespace uvd
