// Ablation: R-tree PNN traversal variants. The paper characterizes the
// [14] baseline as paying "multiple traversals" (our kTwoPhase). Modern
// single-pass variants cut its I/O — this bench quantifies how much of the
// UV-index's advantage depends on the baseline's traversal discipline.
#include "bench_common.h"

#include "common/timer.h"
#include "rtree/pnn_baseline.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Ablation: R-tree baseline traversal",
                     "two-phase [14] vs best-first vs node-tightened best-first");
  datagen::DatasetOptions opts;
  opts.count = bench::ScaledCount(40000);
  opts.seed = 42;
  Stats stats;
  auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                     datagen::DomainFor(opts), {}, &stats);
  const auto queries =
      datagen::UniformQueryPoints(bench::kNumQueries * 4, diagram.domain(), 7);

  std::printf("%24s %12s %12s\n", "traversal", "leaf I/O", "T_index(ms)");
  const std::pair<const char*, rtree::BaselineTraversal> variants[] = {
      {"two-phase [14]", rtree::BaselineTraversal::kTwoPhase},
      {"best-first", rtree::BaselineTraversal::kBestFirst},
      {"best-first+maxdist", rtree::BaselineTraversal::kBestFirstNodeTightened},
  };
  for (const auto& [name, traversal] : variants) {
    stats.Reset();
    Timer t;
    for (const auto& q : queries) {
      rtree::PnnBaselineOptions options;
      options.traversal = traversal;
      UVD_CHECK(rtree::RetrievePnnCandidates(diagram.rtree(), q, &stats, options).ok());
    }
    std::printf("%24s %12.2f %12.4f\n", name,
                static_cast<double>(stats.Get(Ticker::kRtreeLeafReads)) /
                    queries.size(),
                t.ElapsedMillis() / queries.size());
  }

  // UV-index reference line.
  stats.Reset();
  Timer t;
  for (const auto& q : queries) {
    auto r = diagram.index().RetrieveCandidates(q);
    (void)r;
  }
  std::printf("%24s %12.2f %12.4f\n", "UV-index (reference)",
              static_cast<double>(stats.Get(Ticker::kUvIndexLeafReads)) /
                  queries.size(),
              t.ElapsedMillis() / queries.size());
  return 0;
}
