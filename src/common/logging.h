// Assertion / logging macros (UVD_CHECK aborts; UVD_DCHECK compiles away in
// release builds), following the arrow/rocksdb internal-check idiom.
#ifndef UVD_COMMON_LOGGING_H_
#define UVD_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace uvd {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr) {
    stream_ << "Check failed at " << file << ":" << line << " (" << expr << ") ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed arguments when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace uvd

#define UVD_CHECK(cond)                                               \
  if (!(cond))                                                        \
  ::uvd::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

#define UVD_CHECK_EQ(a, b) UVD_CHECK((a) == (b))
#define UVD_CHECK_NE(a, b) UVD_CHECK((a) != (b))
#define UVD_CHECK_LT(a, b) UVD_CHECK((a) < (b))
#define UVD_CHECK_LE(a, b) UVD_CHECK((a) <= (b))
#define UVD_CHECK_GT(a, b) UVD_CHECK((a) > (b))
#define UVD_CHECK_GE(a, b) UVD_CHECK((a) >= (b))

#ifdef NDEBUG
#define UVD_DCHECK(cond) \
  if (false) ::uvd::internal::NullStream()
#else
#define UVD_DCHECK(cond) UVD_CHECK(cond)
#endif

#define UVD_DCHECK_EQ(a, b) UVD_DCHECK((a) == (b))
#define UVD_DCHECK_LT(a, b) UVD_DCHECK((a) < (b))
#define UVD_DCHECK_LE(a, b) UVD_DCHECK((a) <= (b))
#define UVD_DCHECK_GT(a, b) UVD_DCHECK((a) > (b))
#define UVD_DCHECK_GE(a, b) UVD_DCHECK((a) >= (b))

#endif  // UVD_COMMON_LOGGING_H_
