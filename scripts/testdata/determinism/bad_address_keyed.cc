// Self-test fixture: containers keyed on pointers. Iteration order then
// follows allocation addresses (ASLR, allocator state), which differ run
// to run — the linter must flag every declaration as `address-keyed-map`.
#include <map>
#include <set>
#include <unordered_map>

namespace fixture {

struct Node {
  int id = 0;
};

struct Bad {
  std::map<Node*, int> rank_by_node;                 // BAD
  std::set<const Node*> visited;                     // BAD
  std::unordered_map<Node*, int> slots;              // BAD
};

}  // namespace fixture
