// Exact UV-cell U_i (paper Definition 1): the region where O_i has a
// non-zero probability of being the nearest neighbor. Built by Algorithm 1:
// start from the domain D and subtract the outside region of every other
// object. Internally the cell is the radial lower envelope around c_i
// (DESIGN.md Sec. 4), a circular sequence of hyperbolic arcs.
#ifndef UVD_CORE_UV_CELL_H_
#define UVD_CORE_UV_CELL_H_

#include <vector>

#include "common/stats.h"
#include "geom/batch/kernels.h"
#include "geom/box.h"
#include "geom/circle.h"
#include "geom/envelope.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace core {

/// \brief Exact UV-cell of one anchor object.
class UVCell {
 public:
  /// Fresh cell equals the whole domain (Algorithm 1 Step 2).
  UVCell(const geom::Circle& anchor_region, int anchor_id, const geom::Box& domain,
         Stats* stats = nullptr)
      : anchor_(anchor_region),
        anchor_id_(anchor_id),
        envelope_(anchor_region.center, domain, stats) {}

  /// Algorithm 1 Step 6: U_i <- U_i - X_i(j). Returns true iff the cell
  /// shrank (O_j now owns part of the boundary).
  bool SubtractOutsideRegion(const geom::Circle& other, int other_id) {
    return envelope_.Insert(geom::RadialConstraint::ForObjects(anchor_, other, other_id));
  }

  /// Batch form of the subtraction loop (KernelMode::kBatch): subtracts
  /// others[0..n) in order, precomputing a SoA prefilter over the whole
  /// block and skipping constraints that provably cannot shrink the
  /// envelope (batch::PrefilterSkips — RadialEnvelope::Insert would return
  /// false and leave the envelope bitwise unchanged). The resulting cell is
  /// bitwise-identical to calling SubtractOutsideRegion per element; only
  /// the kEnvelopeInsertions ticker (skipped calls) differs.
  void SubtractOutsideRegions(const geom::Circle* others, const int* ids, size_t n);

  int anchor_id() const { return anchor_id_; }
  const geom::Circle& anchor_region() const { return anchor_; }

  /// Membership: q has O_i among its PNN answer objects iff q is here.
  bool Contains(const geom::Point& q) const { return envelope_.Contains(q); }

  /// r-objects F_i: the objects owning at least one boundary arc. Exact
  /// when every other object was subtracted; a subset-estimate otherwise.
  std::vector<int> RObjects() const { return envelope_.OwnerObjects(); }

  /// Maximum distance d of the cell from c_i (Lemma 2's d).
  double MaxDistanceFromCenter() const { return envelope_.MaxVertexDistance(); }

  /// Boundary vertices; the cell is contained in their convex hull
  /// (Lemma 3's CH(P_i)).
  std::vector<geom::Point> Vertices() const { return envelope_.Vertices(); }

  double Area() const { return envelope_.Area(); }
  geom::Box BoundingBox() const { return envelope_.BoundingBox(); }
  std::vector<geom::Point> Boundary(int samples_per_arc = 16) const {
    return envelope_.ToPolyline(samples_per_arc);
  }

  const geom::RadialEnvelope& envelope() const { return envelope_; }

 private:
  geom::Circle anchor_;
  int anchor_id_;
  geom::RadialEnvelope envelope_;
};

/// Algorithm 1 in full: the exact UV-cell of objects[index] against every
/// other object. O(n) envelope insertions — the "Basic" construction cost.
/// The cell is bitwise-identical for both kernel modes (the scalar loop is
/// the oracle; kBatch only skips provably no-op insertions).
UVCell BuildExactUvCell(const std::vector<uncertain::UncertainObject>& objects,
                        size_t index, const geom::Box& domain, Stats* stats = nullptr,
                        geom::KernelMode kernel_mode = geom::KernelMode::kScalar);

/// The exact UV-cell built only from the given candidate ids (cr-objects):
/// used by ICR to refine cr-objects into exact r-objects.
UVCell BuildUvCellFromCandidates(const std::vector<uncertain::UncertainObject>& objects,
                                 size_t index, const std::vector<int>& candidate_ids,
                                 const geom::Box& domain, Stats* stats = nullptr,
                                 geom::KernelMode kernel_mode = geom::KernelMode::kScalar);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_UV_CELL_H_
