#include "geom/hyperbola.h"

#include <cmath>

namespace uvd {
namespace geom {

Result<Hyperbola> Hyperbola::FromObjects(const Circle& oi, const Circle& oj) {
  const double dist = Distance(oi.center, oj.center);
  const double s = oi.radius + oj.radius;
  if (dist <= s) {
    return Status::InvalidArgument(
        "uncertainty regions overlap; outside region is empty (paper Sec. III-C)");
  }
  if (s == 0.0) {
    return Status::InvalidArgument(
        "both radii are zero; UV-edge degenerates to the perpendicular bisector");
  }
  Hyperbola h;
  h.a_ = s / 2.0;
  h.c_ = dist / 2.0;
  h.b_ = std::sqrt(h.c_ * h.c_ - h.a_ * h.a_);
  h.focal_center_ = {(oi.center.x + oj.center.x) / 2.0,
                     (oi.center.y + oj.center.y) / 2.0};
  h.theta_ = std::atan2(oj.center.y - oi.center.y, oj.center.x - oi.center.x);
  h.cos_theta_ = std::cos(h.theta_);
  h.sin_theta_ = std::sin(h.theta_);
  h.focus_i_ = oi.center;
  h.focus_j_ = oj.center;
  return h;
}

Point Hyperbola::ToFocalFrame(const Point& p) const {
  const double cos_t = cos_theta_;
  const double sin_t = sin_theta_;
  const double dx = p.x - focal_center_.x;
  const double dy = p.y - focal_center_.y;
  // Matches Eq. 5: x_theta along the focal axis, y_theta perpendicular.
  return {dx * cos_t + dy * sin_t, -dx * sin_t + dy * cos_t};
}

double Hyperbola::ImplicitValue(const Point& p) const {
  const Point f = ToFocalFrame(p);
  return (f.x * f.x) / (a_ * a_) - (f.y * f.y) / (b_ * b_) - 1.0;
}

bool Hyperbola::InOutsideRegion(const Point& p) const {
  const Point f = ToFocalFrame(p);
  // Convex interior of the branch around c_j: positive focal-axis side and
  // inside the conic.
  return f.x > 0.0 && ImplicitValue(p) > 0.0;
}

Point Hyperbola::PointAt(double t) const {
  const double x_theta = a_ * std::cosh(t);
  const double y_theta = b_ * std::sinh(t);
  const double cos_t = cos_theta_;
  const double sin_t = sin_theta_;
  return {focal_center_.x + x_theta * cos_t - y_theta * sin_t,
          focal_center_.y + x_theta * sin_t + y_theta * cos_t};
}

std::vector<Point> Hyperbola::Sample(int num_points, double t_max) const {
  std::vector<Point> pts;
  if (num_points <= 1) {
    pts.push_back(PointAt(0.0));
    return pts;
  }
  pts.reserve(static_cast<size_t>(num_points));
  for (int i = 0; i < num_points; ++i) {
    const double t = -t_max + 2.0 * t_max * static_cast<double>(i) / (num_points - 1);
    pts.push_back(PointAt(t));
  }
  return pts;
}

}  // namespace geom
}  // namespace uvd
