// Sharded UV-index serving (ROADMAP "Sharded index serving"): the domain is
// partitioned into K sub-boxes, each backed by its own UV-index, object
// store and simulated disk, so a deployment can spread one diagram's leaf
// pages and pdf records across several stores and build them in parallel —
// the per-subdomain build/merge split of divide-and-conquer Voronoi
// construction (arXiv:0906.2760), extended to uncertain data.
//
// Construction = one global stage 1, K independent stage 2s:
//
//   1. Stage 1 (candidate generation) runs ONCE against the full
//      population, reusing the build pipeline's fan-out
//      (core::ComputeStage1Candidates with UVDiagramOptions::build_threads
//      workers). Every object's cell description (cr-/r-objects) is
//      therefore identical to what an unsharded build would index.
//   2. Border replication: an object is registered with EVERY shard whose
//      sub-box its UV-cell may overlap (core::UvCellMayOverlap — the
//      Algorithm 5 test against the shard box). An object whose
//      uncertainty region or cell straddles a cut line thus lives in all
//      touching shards; objects interior to one shard live in exactly one.
//   3. Each shard bulk-loads its registered objects into a private
//      ObjectStore (tuples keep GLOBAL ids) and inserts them — in global
//      id order, with their global cell descriptions — into a UVIndex
//      whose domain is the shard box. Shard builds fan out across the
//      worker pool; each shard's storage and stats are private, so the
//      builds share nothing but the read-only stage-1 output. When fewer
//      shards than build threads exist, each shard's own stage 2 runs the
//      domain-partitioned parallel insertion
//      (core::UVIndex::InsertObjectsPartitioned) with its share of the
//      leftover threads — the same bytes as the serial insertion loop,
//      faster wall clock.
//
// Border-correctness guarantee (the reason replication is by cell, not by
// position): for any query point q, the owning shard's leaf candidate list
// contains every object whose UV-cell contains q — exactly the objects an
// unsharded leaf guarantees (Lemma 4) — because registration uses the same
// conservative overlap test as leaf placement, and that test is monotone
// under box containment. The d_minmax verification then filters both lists
// to the same answer set in the same (id-ascending) order, so PNN answers
// and answer-id lists are BITWISE-IDENTICAL to the unsharded build, cut-line
// probes included (tests/shard/ asserts this by hash).
//
// Point ownership at cut lines is half-open [min, max) per axis (the
// upper/right shard owns the line; see UVIndex::OwnsPoint), except the
// domain's max edge, which clamps to the max-edge shard so boundary probes
// are never dropped. Every point of the closed domain is owned by exactly
// one shard: no drops, no double-answers.
//
// Shard boxes come from PartitionDomain in one of three modes: the
// count-blind kGrid / kBisection geometric cuts, or kMedian — a k-d-style
// recursive partitioner that splits the longest axis at the object-count
// median, weighted by each object's predicted UV-cell extent (ObjectExtent,
// derived from the same stage-1 output) so border replicas are anticipated
// when choosing cuts. Skewed datasets (the Fig. 7(g) Gaussian clouds) that
// leave hot shards under geometric cuts balance to near-uniform per-shard
// load under kMedian; BalanceReport() measures the result either way, and
// RebalanceAdvisor (rebalance_advisor.h) turns a report into a concrete
// re-cut proposal. Because only the boxes change — replication and the
// half-open ownership rule are partitioning-agnostic — PNN/answer-id
// results stay bitwise-identical to the unsharded build in every mode.
//
// See docs/ARCHITECTURE.md for the subsystem map, the determinism
// guarantees table and the sharded query data flow.
#ifndef UVD_SHARD_SHARDED_UV_DIAGRAM_H_
#define UVD_SHARD_SHARDED_UV_DIAGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/build_pipeline.h"
#include "core/uv_diagram.h"
#include "core/uv_index.h"
#include "geom/box.h"
#include "geom/point.h"
#include "query/query_engine.h"
#include "storage/page_manager.h"
#include "uncertain/object_store.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace shard {

/// How the domain is cut into shard boxes.
enum class ShardPartitioning {
  /// rows x cols grid, rows * cols == num_shards with the factor pair
  /// closest to square (a prime count degenerates to strips).
  kGrid,
  /// Recursive longest-axis bisection; shard counts need not be composite
  /// or powers of two (an odd count splits ceil/floor).
  kBisection,
  /// Data-adaptive k-d cuts: recursive longest-axis splits at the
  /// object-count median, weighted by predicted UV-cell extents so an
  /// object straddling a candidate cut is counted toward BOTH sides (the
  /// replica the cut would create). Requires the ObjectExtent overload of
  /// PartitionDomain (ShardedUVDiagram::Build supplies it from stage 1);
  /// the data-blind overload degrades to kBisection.
  kMedian,
};

/// Per-object input to the data-aware partitioner: the center plus a
/// conservative-in-spirit bounding box of where the object's UV-cell (and
/// hence border replication) is predicted to reach. ShardedUVDiagram::Build
/// derives it from the stage-1 candidate lists: the cell's reach toward its
/// nearest constraining cr-object is (dist + r_i + r_j) / 2 — where that
/// neighbor's UV-edge crosses the inter-center segment — applied
/// symmetrically and clamped to the domain. A load-prediction heuristic
/// only: shard registration still uses the exact conservative
/// core::UvCellMayOverlap test, so partition quality never affects
/// correctness.
struct ObjectExtent {
  geom::Point center;
  geom::Box bounds;
  /// Load weight of this object in the kMedian cut objective. 1.0 (the
  /// build-time default) balances registration COUNTS; RebalanceAdvisor's
  /// query-aware overload scales weights by the observed per-shard query
  /// share ((1 - lambda) + lambda * query_share / object_share of the
  /// shard owning `center`), so the proposed cuts balance queries per
  /// second instead of object counts. Weights never affect correctness —
  /// registration stays with UvCellMayOverlap.
  double weight = 1.0;
};

struct ShardedUVDiagramOptions {
  /// K: number of sub-domain indexes. 1 degenerates to an unsharded build.
  int num_shards = 4;
  ShardPartitioning partitioning = ShardPartitioning::kGrid;
  /// Per-shard build/query configuration. `build_threads` drives both the
  /// global stage-1 fan-out and the parallel shard builds; `index`,
  /// `page_size` and `qualification` apply to every shard.
  core::UVDiagramOptions diagram;
};

/// \brief K UV-indexes over a partitioned domain with border replication.
class ShardedUVDiagram {
 public:
  /// One sub-domain: its box, private storage, and UV-index. `object_ids`
  /// are the GLOBAL ids registered here (ascending); `ptrs[k]` locates
  /// object_ids[k] in this shard's store.
  struct Shard {
    geom::Box box;
    std::unique_ptr<Stats> stats;  // billed by pm/store/index/engine view
    std::unique_ptr<storage::PageManager> pm;
    /// pm downcast when the diagram is file-backed; null for in-RAM.
    storage::FilePageManager* fpm = nullptr;
    std::unique_ptr<uncertain::ObjectStore> store;
    std::vector<uncertain::ObjectPtr> ptrs;
    std::vector<int> object_ids;
    std::unique_ptr<core::UVIndex> index;
  };

  /// Builds every shard. Objects must have ids 0..n-1 in order and centers
  /// inside `domain` (the whole-diagram validation; individual shards
  /// accept border objects whose centers lie outside their sub-box). If
  /// `stats` is null an internal Stats receives the global-phase tickers.
  static Result<ShardedUVDiagram> Build(
      std::vector<uncertain::UncertainObject> objects, const geom::Box& domain,
      const ShardedUVDiagramOptions& options = {}, Stats* stats = nullptr);

  /// Reopens a sharded diagram checkpointed under `path_prefix` (shard k's
  /// file is "<path_prefix>.shard<k>"; the shard count comes from shard
  /// 0's manifest). Objects are merged back from the shard stores (border
  /// replicas re-read identically), every shard's UV-index is
  /// deserialized, and `options.diagram` pool/qualification knobs apply to
  /// serving. object_extents() is empty after a reopen (it is a build-time
  /// artifact). Damaged files surface the storage layer's typed errors.
  static Result<ShardedUVDiagram> Open(const std::string& path_prefix,
                                       const ShardedUVDiagramOptions& options = {},
                                       Stats* stats = nullptr);

  /// Durability point for a file-backed sharded diagram: checkpoints every
  /// shard's file with its manifest (box, registered ids, store directory,
  /// index handle). InvalidArgument without a storage_path.
  Status Checkpoint();

  /// Checkpoint + close every shard file. The diagram must not be used
  /// afterwards; reopen with Open(). No-op for in-RAM diagrams.
  Status CloseStorage();

  /// True when the shards are backed by paged files.
  bool persistent() const {
    return !shards_.empty() && shards_.front().fpm != nullptr;
  }

  /// The file path of shard `s` under `path_prefix` (exposed for tests and
  /// crash harnesses).
  static std::string ShardFilePath(const std::string& path_prefix, size_t s);

  size_t num_shards() const { return shards_.size(); }
  const Shard& shard(size_t s) const { return shards_[s]; }
  const geom::Box& domain() const { return domain_; }
  const std::vector<uncertain::UncertainObject>& objects() const { return objects_; }
  const ShardedUVDiagramOptions& options() const { return options_; }

  /// Per-object partitioning extents derived from the stage-1 pass (one
  /// entry per object, id order). Kept after the build so RebalanceAdvisor
  /// can propose data-aware re-cuts without re-running stage 1.
  const std::vector<ObjectExtent>& object_extents() const { return extents_; }

  /// The shard owning `p` exclusively: half-open [min, max) ownership at
  /// interior cut lines (upper/right shard wins), clamped to the max-edge
  /// shard on the domain's own max boundary. Points outside the closed
  /// domain clamp to the nearest edge shard, whose index rejects them with
  /// the same InvalidArgument an unsharded query would produce.
  int ShardIndexForPoint(const geom::Point& p) const;

  /// Shards whose (closed) boxes intersect `range`, ascending — every
  /// shard holding leaves a UV-partition query over `range` must visit.
  std::vector<int> ShardsForRange(const geom::Box& range) const;

  /// Shards the object is registered with (ascending); empty for ids never
  /// registered (e.g. out-of-range ids).
  std::vector<int> ShardsForObject(int object_id) const;

  /// QueryEngine view of one shard (its index/store/stats and the shared
  /// qualification options).
  query::DiagramView ViewOfShard(size_t s) const;

  /// Global-phase Stats (stage-1 pruning, scratch R-tree I/O) merged with
  /// every shard's private Stats — the whole deployment's counters.
  Stats AggregateStats() const;

  /// Per-shard load summary (ROADMAP data-adaptive-shards precursor):
  /// count-blind grid/bisection cuts leave skewed datasets (Fig. 7(g)
  /// clouds) with hot shards, and this is the report that shows them.
  struct ShardBalance {
    int shard = 0;
    size_t objects = 0;   ///< Registered here (border replicas included).
    size_t replicas = 0;  ///< Of those, also registered in another shard.
    size_t leaves = 0;    ///< UV-index leaf count.
    size_t leaf_pages = 0;
    int height = 0;
    uint64_t bytes_on_disk = 0;  ///< Private PageManager footprint.
  };

  /// One ShardBalance per shard, ascending.
  std::vector<ShardBalance> BalanceReport() const;

  /// The report as an aligned table with min/max/imbalance footer (the
  /// object-count max/mean ratio — 1.0 is perfectly balanced), for benches
  /// and ops tooling.
  std::string BalanceReportString() const;

  /// Stage-1 timing/pruning diagnostics plus aggregate per-shard indexing
  /// seconds; total_seconds is the wall clock of the whole sharded build.
  const core::BuildStats& build_stats() const { return build_stats_; }

 private:
  ShardedUVDiagram() = default;

  std::vector<uncertain::UncertainObject> objects_;
  geom::Box domain_;
  ShardedUVDiagramOptions options_;
  Stats* stats_ = nullptr;  // external or owned_stats_.get(); global phases
  std::unique_ptr<Stats> owned_stats_;
  std::vector<Shard> shards_;
  std::vector<ObjectExtent> extents_;
  core::BuildStats build_stats_;
};

/// Partitions `domain` into exactly `num_shards` boxes that tile it with
/// bitwise-shared cut coordinates (adjacent boxes reuse the same double for
/// their common edge, so half-open ownership tests are exact). Exposed for
/// tests and tooling. `num_shards <= 1` returns the closed domain box
/// itself, with no cut computation. kMedian needs object data and degrades
/// to kBisection here — use the ObjectExtent overload below for real
/// median cuts.
std::vector<geom::Box> PartitionDomain(const geom::Box& domain, int num_shards,
                                       ShardPartitioning partitioning);

/// Data-aware overload: for kMedian, recursive longest-axis cuts at the
/// extent-weighted object-count median. At every split of k shards into
/// ceil/floor halves (kl, kr), the cut c minimizing
/// max(w_lower(c)/kl, w_upper(c)/kr) is chosen, where w_lower/w_upper sum
/// ObjectExtent::weight over the objects whose extent box touches that
/// side — a straddler counts toward both, anticipating the border replica
/// the cut creates, and uniform weights reduce the sums to the original
/// object counts.
/// Candidate cuts are every distinct extent endpoint and the midpoints
/// between consecutive endpoints (the only places the counts change); ties
/// break toward the geometric proportional cut, then toward the smaller
/// coordinate, so cuts are deterministic for a fixed dataset. Grid and
/// bisection ignore `extents`; an empty `extents` degrades kMedian to
/// kBisection. `num_shards <= 1` returns the closed domain box unchanged.
std::vector<geom::Box> PartitionDomain(const geom::Box& domain, int num_shards,
                                       ShardPartitioning partitioning,
                                       const std::vector<ObjectExtent>& extents);

}  // namespace shard
}  // namespace uvd

#endif  // UVD_SHARD_SHARDED_UV_DIAGRAM_H_
