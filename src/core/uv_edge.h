// UV-edge E_i(j) (paper Sec. III-A): the locus where the minimum distance
// from O_i equals the maximum distance from O_j, and its convex outside
// region X_i(j) where O_j always dominates. Dominance tests are plain
// distance comparisons (cheap); the Eq. 5 conic and the radial form are
// exposed for cell construction and rendering.
#ifndef UVD_CORE_UV_EDGE_H_
#define UVD_CORE_UV_EDGE_H_

#include "common/result.h"
#include "common/stats.h"
#include "geom/box.h"
#include "geom/circle.h"
#include "geom/hyperbola.h"
#include "geom/radial.h"

namespace uvd {
namespace core {

/// The UV-edge of an anchor object O_i with respect to O_j.
class UVEdge {
 public:
  UVEdge(const geom::Circle& oi, const geom::Circle& oj, int j_id)
      : oi_(oi), oj_(oj), j_id_(j_id) {}

  int other_id() const { return j_id_; }
  const geom::Circle& anchor() const { return oi_; }
  const geom::Circle& other() const { return oj_; }

  /// True iff the outside region is empty (overlapping uncertainty
  /// regions; paper Sec. III-C treats X_i(j) as zero-area).
  bool OutsideRegionEmpty() const {
    return geom::Distance(oi_.center, oj_.center) <= oi_.radius + oj_.radius;
  }

  /// True iff p lies strictly in X_i(j): dist_min(O_i,p) > dist_max(O_j,p).
  bool InOutsideRegion(const geom::Point& p, Stats* stats = nullptr) const {
    if (stats != nullptr) stats->Add(Ticker::kHyperbolaTests);
    return oi_.DistMin(p) > oj_.DistMax(p);
  }

  /// The 4-point test of Algorithm 5: a square region r is contained in the
  /// convex X_i(j) iff all four corners are (paper Sec. V-B "Overlap
  /// Checking").
  bool RegionInOutside(const geom::Box& r, Stats* stats = nullptr) const {
    if (stats != nullptr) stats->Add(Ticker::kFourPointTests);
    for (const geom::Point& corner : r.Corners()) {
      if (!InOutsideRegion(corner, stats)) return false;
    }
    return true;
  }

  /// Radial-constraint view used by exact UV-cell construction.
  geom::RadialConstraint AsRadialConstraint() const {
    return geom::RadialConstraint::ForObjects(oi_, oj_, j_id_);
  }

  /// The rotated conic of Eq. 5 (fails for overlapping or point pairs).
  Result<geom::Hyperbola> AsHyperbola() const {
    return geom::Hyperbola::FromObjects(oi_, oj_);
  }

 private:
  geom::Circle oi_;
  geom::Circle oj_;
  int j_id_;
};

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_UV_EDGE_H_
