// Fig. 6(c): decomposition of T_q into index traversal, object (pdf)
// retrieval and qualification-probability calculation, for both indexes at
// the default dataset size. Paper shape: retrieval and QP calculation are
// similar for both; the R-tree pays much more index time.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 6(c): components of T_q",
                     "index / object retrieval / QP calculation, |O|=30K scaled");
  datagen::DatasetOptions opts;
  opts.count = bench::ScaledCount(30000);
  opts.seed = 42;
  Stats stats;
  auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                     datagen::DomainFor(opts), {}, &stats);
  const auto queries =
      datagen::UniformQueryPoints(bench::kNumQueries, diagram.domain(), 7);
  const auto r = bench::MeasurePnn(diagram, queries);
  const double n = bench::kNumQueries;

  std::printf("%12s %12s %16s %16s %12s\n", "index", "Index(ms)", "ObjRetrieval(ms)",
              "QPCalc(ms)", "Total(ms)");
  auto row = [&](const char* name, const rtree::PnnBreakdown& b) {
    std::printf("%12s %12.3f %16.3f %16.3f %12.3f\n", name,
                b.index_seconds * 1e3 / n, b.retrieval_seconds * 1e3 / n,
                b.computation_seconds * 1e3 / n, b.Total() * 1e3 / n);
  };
  row("UV-diagram", r.uv_breakdown);
  row("R-tree", r.rtree_breakdown);
  std::printf("\n(|O| = %zu, %d queries)\n", opts.count, bench::kNumQueries);
  return 0;
}
