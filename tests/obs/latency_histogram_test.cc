// Unit tests for the log-bucketed latency histogram: exact bucket
// boundaries (the HDR-style sub-bucket layout), percentile semantics, and
// the exact/associative MergeFrom contract the per-worker shard story
// rests on. Concurrent recording is exercised for the TSan job.
#include "obs/latency_histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace uvd {
namespace obs {
namespace {

TEST(LatencyHistogramTest, UnitBucketsAreExact) {
  for (uint64_t v = 0; v < LatencyHistogram::kSubBucketCount; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<uint32_t>(v)), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(static_cast<uint32_t>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketBoundariesRoundTrip) {
  // Every bucket's own bounds must map back to it, and each upper bound
  // must be exactly one less than the next bucket's lower bound — the
  // buckets tile [0, 2^64) with no gaps or overlaps.
  for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    const uint64_t hi = LatencyHistogram::BucketUpperBound(b);
    EXPECT_LE(lo, hi);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), b) << "bucket " << b;
    EXPECT_EQ(LatencyHistogram::BucketIndex(hi), b) << "bucket " << b;
    if (b + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_EQ(LatencyHistogram::BucketLowerBound(b + 1), hi + 1)
          << "gap after bucket " << b;
    } else {
      EXPECT_EQ(hi, ~0ull);  // the last bucket absorbs everything above
    }
  }
}

TEST(LatencyHistogramTest, KnownBoundaryValues) {
  // First sub-bucketed octave starts at 16 (bucket 16) and runs to 31 in
  // steps of 1; octave [32, 64) has width-2 sub-buckets.
  EXPECT_EQ(LatencyHistogram::BucketIndex(15), 15u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(16), 16u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(31), 31u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(32), 32u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(33), 32u);  // width-2 sub-bucket
  EXPECT_EQ(LatencyHistogram::BucketIndex(34), 33u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ull),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, RelativeErrorBoundedBySubBucketWidth) {
  // The reported (upper-bound) value overestimates by at most 1/16 — the
  // quantization guarantee the header advertises.
  for (uint64_t v : {17ull, 100ull, 999ull, 12345ull, 1ull << 20, 123456789ull}) {
    const uint32_t b = LatencyHistogram::BucketIndex(v);
    const uint64_t hi = LatencyHistogram::BucketUpperBound(b);
    EXPECT_GE(hi, v);
    EXPECT_LE(static_cast<double>(hi - v), static_cast<double>(v) / 16.0 + 1.0)
        << "value " << v;
  }
}

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.MinValue(), 0u);
  EXPECT_EQ(h.MaxValue(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
  EXPECT_EQ(h.ValueAtPercentile(99.9), 0u);
}

TEST(LatencyHistogramTest, SingleValueReportsExactly) {
  LatencyHistogram h;
  h.Record(12345);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.Sum(), 12345u);
  EXPECT_EQ(h.MinValue(), 12345u);
  EXPECT_EQ(h.MaxValue(), 12345u);
  // Percentiles clamp to [min, max]: a single-valued stream reports that
  // value at every percentile despite bucket quantization.
  EXPECT_EQ(h.ValueAtPercentile(0.1), 12345u);
  EXPECT_EQ(h.ValueAtPercentile(50), 12345u);
  EXPECT_EQ(h.ValueAtPercentile(99.9), 12345u);
}

TEST(LatencyHistogramTest, PercentilesOrderedAndConservative) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const uint64_t p50 = h.ValueAtPercentile(50);
  const uint64_t p90 = h.ValueAtPercentile(90);
  const uint64_t p99 = h.ValueAtPercentile(99);
  const uint64_t p999 = h.ValueAtPercentile(99.9);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
  // Conservative: never understates the true rank value, and overestimates
  // by at most one sub-bucket (1/16).
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 500u + 500u / 16 + 1);
  EXPECT_GE(p999, 999u);
  EXPECT_LE(h.ValueAtPercentile(100), 1000u);
}

TEST(LatencyHistogramTest, RecordManyMatchesRepeatedRecord) {
  LatencyHistogram a, b;
  a.RecordMany(77, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(77);
  EXPECT_EQ(a.TakeSnapshot(), b.TakeSnapshot());
}

TEST(LatencyHistogramTest, MergeIsExact) {
  // Merging shards must be indistinguishable from one histogram fed both
  // streams — counts, sum, min, max and every percentile.
  LatencyHistogram shard1, shard2, reference;
  for (uint64_t v = 0; v < 500; ++v) {
    shard1.Record(v * 3);
    reference.Record(v * 3);
  }
  for (uint64_t v = 0; v < 500; ++v) {
    shard2.Record(v * 7 + 1);
    reference.Record(v * 7 + 1);
  }
  LatencyHistogram merged;
  merged.MergeFrom(shard1);
  merged.MergeFrom(shard2);
  EXPECT_EQ(merged.TakeSnapshot(), reference.TakeSnapshot());
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  LatencyHistogram a, b, c;
  for (uint64_t v = 1; v < 300; ++v) a.Record(v);
  for (uint64_t v = 100; v < 5000; v += 13) b.Record(v);
  for (uint64_t v : {1ull << 20, 1ull << 30, 1ull << 40}) c.Record(v);

  LatencyHistogram ab_c;  // (a + b) + c
  ab_c.MergeFrom(a);
  ab_c.MergeFrom(b);
  ab_c.MergeFrom(c);
  LatencyHistogram bc;  // a + (b + c)
  bc.MergeFrom(b);
  bc.MergeFrom(c);
  LatencyHistogram a_bc;
  a_bc.MergeFrom(a);
  a_bc.MergeFrom(bc);
  LatencyHistogram cba;  // reversed order
  cba.MergeFrom(c);
  cba.MergeFrom(b);
  cba.MergeFrom(a);

  EXPECT_EQ(ab_c.TakeSnapshot(), a_bc.TakeSnapshot());
  EXPECT_EQ(ab_c.TakeSnapshot(), cba.TakeSnapshot());
}

TEST(LatencyHistogramTest, MergeEmptyIsIdentity) {
  LatencyHistogram a, empty;
  a.Record(42);
  const auto before = a.TakeSnapshot();
  a.MergeFrom(empty);
  EXPECT_EQ(a.TakeSnapshot(), before);
  // And min survives a merge INTO an empty histogram (the ~0 sentinel must
  // not leak).
  LatencyHistogram target;
  target.MergeFrom(a);
  EXPECT_EQ(target.MinValue(), 42u);
  EXPECT_EQ(target.MaxValue(), 42u);
}

TEST(LatencyHistogramTest, ResetEmpties) {
  LatencyHistogram h;
  h.Record(9);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.MinValue(), 0u);
  EXPECT_EQ(h.ValueAtPercentile(99), 0u);
  h.Record(5);  // usable after reset
  EXPECT_EQ(h.ValueAtPercentile(50), 5u);
}

TEST(LatencyHistogramTest, ConcurrentRecordersAreExact) {
  // Totals are exact under concurrent recording (relaxed atomics, no lost
  // updates) — the shared-histogram half of the concurrency contract;
  // runs under TSan in CI.
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + (i % 97));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.TotalCount(), kThreads * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace uvd
