// Parallel staged build pipeline: construction time vs worker count for
// Basic / ICR / IC on the Fig. 7(a) workload, comparing the two parallel
// stage-2 strategies:
//
//   in-order     — PR 1: stage 1 fans out, stage 2 (quad-tree insertion)
//                  stays on one consumer thread. Speedup is bounded by the
//                  stage-2 fraction (Amdahl).
//   partitioned  — stage 2 itself fans out per quad-tree subtree with a
//                  canonical stitch (core/uv_index.h), removing the serial
//                  remainder. Same bytes, better wall clock.
//
// Every row builds a byte-identical index; `--determinism-check` proves it
// by building the example index at several thread counts / frontier depths
// and diffing the serialized digests against the serial build (the CI
// cross-check step and a ctest smoke run exactly that; exits non-zero on
// any mismatch).
#include "bench_common.h"

#include <cstring>

#include "common/thread_pool.h"

namespace {

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<uint8_t> SerializedIndex(const uvd::core::UVDiagram& d) {
  std::vector<uint8_t> bytes;
  UVD_CHECK_OK(d.index().SerializeStructure(&bytes));
  return bytes;
}

/// Builds the example dataset at every (threads, mode, depth) combination
/// and compares serialized digests against the serial build. Returns the
/// number of mismatches (0 = deterministic).
int RunDeterminismCheck() {
  using namespace uvd;
  datagen::DatasetOptions opts;
  opts.count = 800;
  opts.seed = 42;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);

  core::UVDiagramOptions serial_options;
  serial_options.build_threads = 1;
  const auto serial =
      core::UVDiagram::Build(objects, domain, serial_options).ValueOrDie();
  const uint64_t serial_digest = Fnv1a(SerializedIndex(serial));
  std::printf("serial                      digest %016llx\n",
              static_cast<unsigned long long>(serial_digest));

  int mismatches = 0;
  const auto check = [&](int threads, core::Stage2Mode mode, int depth) {
    core::UVDiagramOptions options;
    options.build_threads = threads;
    options.stage2 = mode;
    options.stage2_max_depth = depth;
    const auto d = core::UVDiagram::Build(objects, domain, options).ValueOrDie();
    const uint64_t digest = Fnv1a(SerializedIndex(d));
    const bool ok = digest == serial_digest;
    std::printf("threads=%d %-11s depth=%d digest %016llx  %s\n", threads,
                core::Stage2ModeName(mode), depth,
                static_cast<unsigned long long>(digest), ok ? "OK" : "MISMATCH");
    if (!ok) ++mismatches;
  };
  for (int threads : {2, 4, 8}) {
    check(threads, core::Stage2Mode::kInOrder, 2);
    for (int depth : {1, 2, 3}) check(threads, core::Stage2Mode::kPartitioned, depth);
  }
  if (mismatches == 0) {
    std::printf("determinism check PASSED: every build serialized identically\n");
  } else {
    std::printf("determinism check FAILED: %d mismatching build(s)\n", mismatches);
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uvd;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--determinism-check") == 0) {
      bench::PrintBanner("Stage-2 determinism cross-check",
                         "serialized-index digest equality across builds");
      return RunDeterminismCheck() == 0 ? 0 : 1;
    }
  }

  bench::PrintBanner("Parallel construction: T_c vs build_threads",
                     "staged pipeline over the Fig. 7(a) workload");
  std::printf("hardware concurrency: %d\n\n", ThreadPool::DefaultThreads());

  const int thread_sweep[] = {1, 2, 4, 8};
  const core::BuildMethod methods[] = {core::BuildMethod::kBasic,
                                       core::BuildMethod::kICR,
                                       core::BuildMethod::kIC};

  for (core::BuildMethod method : methods) {
    datagen::DatasetOptions opts;
    // Basic is O(n) envelope insertions per object; run it on a reduced
    // size, the pruned methods on the scaled Fig. 7(a) size.
    opts.count = method == core::BuildMethod::kBasic
                     ? bench::ScaledCount(2000)
                     : bench::ScaledCount(10000);
    opts.seed = 42;
    std::printf("%s (|O| = %zu)\n", core::BuildMethodName(method), opts.count);
    std::printf("%8s | %12s %8s | %12s %8s %11s %11s\n", "threads",
                "in-order(s)", "speedup", "partit.(s)", "speedup", "s1 wall(s)",
                "s2 wall(s)");
    double serial_seconds = 0.0;
    for (int threads : thread_sweep) {
      double mode_seconds[2] = {0.0, 0.0};
      core::BuildStats part_stats;
      const core::Stage2Mode modes[2] = {core::Stage2Mode::kInOrder,
                                         core::Stage2Mode::kPartitioned};
      for (int m = 0; m < 2; ++m) {
        Stats stats;
        core::UVDiagramOptions options;
        options.method = method;
        options.build_threads = threads;
        options.stage2 = modes[m];
        auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                           datagen::DomainFor(opts), options, &stats);
        mode_seconds[m] = diagram.build_stats().total_seconds;
        if (m == 1) part_stats = diagram.build_stats();
        if (threads == 1 && m == 0) serial_seconds = mode_seconds[m];
      }
      std::printf("%8d | %12.2f %7.2fx | %12.2f %7.2fx %11.2f %11.2f\n", threads,
                  mode_seconds[0], serial_seconds / mode_seconds[0],
                  mode_seconds[1], serial_seconds / mode_seconds[1],
                  part_stats.stage1_wall_seconds, part_stats.stage2_wall_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "Every cell builds a byte-identical index (core/build_pipeline.h);\n"
      "run with --determinism-check to verify digests across thread counts\n"
      "and partition depths. The partitioned column removes the stage-2\n"
      "Amdahl remainder the in-order column is bounded by.\n");
  return 0;
}
