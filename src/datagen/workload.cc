#include "datagen/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace uvd {
namespace datagen {

std::vector<geom::Point> UniformQueryPoints(int count, const geom::Box& domain,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> points;
  points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    points.push_back(
        {rng.Uniform(domain.lo.x, domain.hi.x), rng.Uniform(domain.lo.y, domain.hi.y)});
  }
  return points;
}

std::vector<geom::Box> SquareQueryRegions(int count, const geom::Box& domain,
                                          double side, uint64_t seed) {
  UVD_CHECK_LE(side, std::min(domain.Width(), domain.Height()));
  Rng rng(seed);
  std::vector<geom::Box> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double x = rng.Uniform(domain.lo.x, domain.hi.x - side);
    const double y = rng.Uniform(domain.lo.y, domain.hi.y - side);
    regions.push_back(geom::Box({x, y}, {x + side, y + side}));
  }
  return regions;
}

std::vector<geom::Point> TrajectoryQueryPoints(int count, const geom::Box& domain,
                                               double step_length, uint64_t seed) {
  UVD_CHECK_GT(step_length, 0.0);
  Rng rng(seed);
  auto uniform_point = [&] {
    return geom::Point{rng.Uniform(domain.lo.x, domain.hi.x),
                       rng.Uniform(domain.lo.y, domain.hi.y)};
  };
  std::vector<geom::Point> points;
  points.reserve(static_cast<size_t>(count));
  geom::Point pos = uniform_point();
  geom::Point waypoint = uniform_point();
  for (int i = 0; i < count; ++i) {
    points.push_back(pos);
    const double dx = waypoint.x - pos.x;
    const double dy = waypoint.y - pos.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist <= step_length) {
      pos = waypoint;
      waypoint = uniform_point();
    } else {
      pos.x += dx / dist * step_length;
      pos.y += dy / dist * step_length;
    }
  }
  return points;
}

}  // namespace datagen
}  // namespace uvd
