// The attribute-uncertainty object model: a closed circular uncertainty
// region plus a pdf bounded inside it (paper Sec. I / III). Non-circular
// regions are supported by conversion to the minimal bounding circle
// (Sec. III-C "Non-circular uncertainty regions").
#ifndef UVD_UNCERTAIN_UNCERTAIN_OBJECT_H_
#define UVD_UNCERTAIN_UNCERTAIN_OBJECT_H_

#include <vector>

#include "geom/circle.h"
#include "geom/mec.h"
#include "geom/point.h"
#include "uncertain/pdf.h"

namespace uvd {
namespace uncertain {

/// One uncertain object O_i = (c_i, r_i, pdf).
class UncertainObject {
 public:
  UncertainObject(int id, geom::Circle region, RadialHistogramPdf pdf)
      : id_(id), region_(region), pdf_(std::move(pdf)) {}

  /// Convenience constructor with the paper's default Gaussian pdf.
  static UncertainObject WithGaussianPdf(int id, geom::Circle region,
                                         int num_bars = kDefaultNumBars) {
    return UncertainObject(id, region,
                           RadialHistogramPdf::Gaussian(region.radius, num_bars));
  }

  /// Converts a non-circular (polygonal) uncertainty region into the circle
  /// that minimally contains it, as prescribed by Sec. III-C. The resulting
  /// UV-cell is a superset of the exact one, so query answers remain a
  /// superset (no false negatives).
  static UncertainObject FromPolygonRegion(int id,
                                           const std::vector<geom::Point>& polygon,
                                           PdfKind kind = PdfKind::kGaussian,
                                           int num_bars = kDefaultNumBars);

  int id() const { return id_; }
  const geom::Circle& region() const { return region_; }
  const geom::Point& center() const { return region_.center; }
  double radius() const { return region_.radius; }
  const RadialHistogramPdf& pdf() const { return pdf_; }

  /// Minimum bounding circle stored in index leaf tuples (identical to the
  /// region for circular objects).
  const geom::Circle& Mbc() const { return region_; }

  /// dist_min(O_i, q) and dist_max(O_i, q) of paper Eq. 2-3.
  double DistMin(const geom::Point& q) const { return region_.DistMin(q); }
  double DistMax(const geom::Point& q) const { return region_.DistMax(q); }

 private:
  int id_;
  geom::Circle region_;
  RadialHistogramPdf pdf_;
};

}  // namespace uncertain
}  // namespace uvd

#endif  // UVD_UNCERTAIN_UNCERTAIN_OBJECT_H_
