// Tests for axis-aligned boxes: containment, quadrants, MINDIST/MAXDIST.
#include "geom/box.h"

#include <gtest/gtest.h>

namespace uvd {
namespace geom {
namespace {

TEST(BoxTest, BasicGeometry) {
  const Box b({0, 0}, {4, 2});
  EXPECT_DOUBLE_EQ(b.Width(), 4.0);
  EXPECT_DOUBLE_EQ(b.Height(), 2.0);
  EXPECT_DOUBLE_EQ(b.Area(), 8.0);
  EXPECT_EQ(b.Center(), (Point{2, 1}));
  EXPECT_FALSE(b.IsEmpty());
}

TEST(BoxTest, EmptyBox) {
  const Box e = Box::Empty();
  EXPECT_TRUE(e.IsEmpty());
  Box b = e;
  b.ExpandToInclude(Point{1, 2});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_EQ(b.lo, (Point{1, 2}));
  EXPECT_EQ(b.hi, (Point{1, 2}));
}

TEST(BoxTest, ContainsIsClosed) {
  const Box b({0, 0}, {1, 1});
  EXPECT_TRUE(b.Contains({0, 0}));
  EXPECT_TRUE(b.Contains({1, 1}));
  EXPECT_TRUE(b.Contains({0.5, 0.5}));
  EXPECT_FALSE(b.Contains({1.0001, 0.5}));
  EXPECT_FALSE(b.Contains({0.5, -0.0001}));
}

TEST(BoxTest, ContainsBoxAndIntersects) {
  const Box b({0, 0}, {10, 10});
  EXPECT_TRUE(b.ContainsBox(Box({1, 1}, {2, 2})));
  EXPECT_FALSE(b.ContainsBox(Box({9, 9}, {11, 11})));
  EXPECT_TRUE(b.Intersects(Box({9, 9}, {11, 11})));
  EXPECT_TRUE(b.Intersects(Box({10, 10}, {12, 12})));  // touching counts
  EXPECT_FALSE(b.Intersects(Box({10.5, 0}, {12, 1})));
}

TEST(BoxTest, CornersOrder) {
  const Box b({0, 0}, {2, 1});
  const auto c = b.Corners();
  EXPECT_EQ(c[0], (Point{0, 0}));
  EXPECT_EQ(c[1], (Point{2, 0}));
  EXPECT_EQ(c[2], (Point{2, 1}));
  EXPECT_EQ(c[3], (Point{0, 1}));
}

TEST(BoxTest, QuadrantsPartitionTheBox) {
  const Box b({0, 0}, {8, 8});
  double area = 0;
  for (int k = 0; k < 4; ++k) {
    const Box q = b.Quadrant(k);
    area += q.Area();
    EXPECT_TRUE(b.ContainsBox(q));
    EXPECT_DOUBLE_EQ(q.Area(), b.Area() / 4);
  }
  EXPECT_DOUBLE_EQ(area, b.Area());
  // SW quadrant holds lo, NE holds hi.
  EXPECT_TRUE(b.Quadrant(0).Contains({0, 0}));
  EXPECT_TRUE(b.Quadrant(1).Contains({8, 0}));
  EXPECT_TRUE(b.Quadrant(2).Contains({0, 8}));
  EXPECT_TRUE(b.Quadrant(3).Contains({8, 8}));
}

TEST(BoxTest, MinDist) {
  const Box b({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(b.MinDist({1, 1}), 0.0);    // inside
  EXPECT_DOUBLE_EQ(b.MinDist({2, 2}), 0.0);    // on corner
  EXPECT_DOUBLE_EQ(b.MinDist({4, 1}), 2.0);    // right of box
  EXPECT_DOUBLE_EQ(b.MinDist({5, 6}), 5.0);    // diagonal (3-4-5)
  EXPECT_DOUBLE_EQ(b.MinDist({-3, 1}), 3.0);   // left
  EXPECT_DOUBLE_EQ(b.MinDist({1, -1}), 1.0);   // below
}

TEST(BoxTest, MaxDist) {
  const Box b({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(b.MaxDist({0, 0}), std::sqrt(8.0));  // to opposite corner
  EXPECT_DOUBLE_EQ(b.MaxDist({1, 1}), std::sqrt(2.0));  // center to any corner
  EXPECT_DOUBLE_EQ(b.MaxDist({4, 1}), std::sqrt(17.0));
}

TEST(BoxTest, MinDistLeMaxDist) {
  const Box b({-3, 2}, {5, 9});
  for (double x = -10; x <= 10; x += 1.7) {
    for (double y = -10; y <= 10; y += 1.3) {
      EXPECT_LE(b.MinDist({x, y}), b.MaxDist({x, y}));
    }
  }
}

TEST(BoxTest, FromCenterHalf) {
  const Box b = Box::FromCenterHalf({5, 5}, 2);
  EXPECT_EQ(b.lo, (Point{3, 3}));
  EXPECT_EQ(b.hi, (Point{7, 7}));
}

TEST(BoxTest, ExpandToIncludeBox) {
  Box b({0, 0}, {1, 1});
  b.ExpandToInclude(Box({-1, 2}, {0.5, 3}));
  EXPECT_EQ(b.lo, (Point{-1, 0}));
  EXPECT_EQ(b.hi, (Point{1, 3}));
}

}  // namespace
}  // namespace geom
}  // namespace uvd
