#include "storage/file_page_manager.h"

#include <utility>

#include "obs/latency_histogram.h"

namespace uvd {
namespace storage {

FilePageManager::FilePageManager(std::unique_ptr<PagedFile> file,
                                 const FilePageManagerOptions& options,
                                 Stats* stats)
    : PageManager(file->page_size(), stats), file_(std::move(file)) {
  if (options.buffer_pool_pages > 0) {
    BufferPoolOptions pool_options;
    pool_options.capacity_pages = options.buffer_pool_pages;
    pool_options.protected_fraction = options.buffer_pool_protected_fraction;
    // The pool's miss path is the uncached file read, so kPageReads keeps
    // counting physical I/O only.
    pool_ = std::make_unique<BufferPool>(
        pool_options, page_size(),
        [this](PageId id, std::vector<uint8_t>* out) {
          return FileRead(id, out);
        },
        stats);
  }
}

Result<std::unique_ptr<FilePageManager>> FilePageManager::Create(
    const std::string& path, size_t page_size,
    const FilePageManagerOptions& options, Stats* stats) {
  auto file = PagedFile::Create(path, page_size);
  if (!file.ok()) return file.status();
  return std::unique_ptr<FilePageManager>(
      new FilePageManager(std::move(file).value(), options, stats));
}

Result<std::unique_ptr<FilePageManager>> FilePageManager::Open(
    const std::string& path, const FilePageManagerOptions& options,
    Stats* stats) {
  auto file = PagedFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<FilePageManager>(
      new FilePageManager(std::move(file).value(), options, stats));
}

void FilePageManager::ParkError(const Status& st) {
  MutexLock lock(io_mu_);
  if (io_status_.ok()) io_status_ = st;
}

Status FilePageManager::io_status() const {
  MutexLock lock(io_mu_);
  return io_status_;
}

PageId FilePageManager::Allocate() {
  auto first = file_->AllocatePages(1);
  if (!first.ok()) {
    ParkError(first.status());
    return kInvalidPageId;
  }
  return first.value();
}

PageId FilePageManager::AllocateRun(size_t count) {
  if (count == 0) return file_->page_count();
  auto first = file_->AllocatePages(static_cast<uint32_t>(count));
  if (!first.ok()) {
    // The interface cannot return Status; park the failure so the next
    // Read/Write/Checkpoint surfaces it as a typed error.
    ParkError(first.status());
    return kInvalidPageId;
  }
  return first.value();
}

Status FilePageManager::FileRead(PageId id, std::vector<uint8_t>* out) const {
  if (stats() != nullptr) stats()->Add(Ticker::kPageReads);
  return file_->ReadPage(id, out);
}

Status FilePageManager::Read(PageId id, std::vector<uint8_t>* out) const {
  UVD_RETURN_NOT_OK(io_status());
  const bool timed = obs::MetricsEnabled();
  const uint64_t start_us = timed ? obs::NowMicros() : 0;
  Status st = pool_ != nullptr ? pool_->Read(id, out) : FileRead(id, out);
  if (timed && st.ok()) {
    RecordReadLatencyUs(obs::NowMicros() - start_us);
  }
  return st;
}

Status FilePageManager::Write(PageId id, const std::vector<uint8_t>& data) {
  UVD_RETURN_NOT_OK(io_status());
  if (stats() != nullptr) stats()->Add(Ticker::kPageWrites);
  UVD_RETURN_NOT_OK(file_->WritePage(id, data.data(), data.size()));
  // Write-through: a resident frame must never serve stale bytes.
  if (pool_ != nullptr) pool_->Put(id, data);
  return Status::OK();
}

Status FilePageManager::Checkpoint() {
  UVD_RETURN_NOT_OK(io_status());
  return file_->Checkpoint();
}

Status FilePageManager::Close() {
  UVD_RETURN_NOT_OK(io_status());
  return file_->Close();
}

void FilePageManager::RegisterMetrics(obs::MetricsRegistry* registry,
                                      const std::string& prefix) const {
  registry->RegisterHistogram(prefix + ".page.read.latency.us",
                              &read_latency_histogram());
  if (pool_ == nullptr) return;
  const BufferPool* pool = pool_.get();
  registry->RegisterGauge(prefix + ".bufferpool.resident.pages",
                          [pool] { return static_cast<double>(pool->size()); });
  registry->RegisterCounter(prefix + ".bufferpool.hits",
                            [pool] { return pool->hits(); });
  registry->RegisterCounter(prefix + ".bufferpool.misses",
                            [pool] { return pool->misses(); });
  registry->RegisterCounter(prefix + ".bufferpool.evictions",
                            [pool] { return pool->evictions(); });
}

}  // namespace storage
}  // namespace uvd
