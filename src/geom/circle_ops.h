// Circle/annulus intersection areas. These feed the distance CDFs used by
// the qualification-probability integration (paper Section VI-A: radial
// histogram pdfs over circular uncertainty regions).
#ifndef UVD_GEOM_CIRCLE_OPS_H_
#define UVD_GEOM_CIRCLE_OPS_H_

#include "geom/circle.h"
#include "geom/point.h"

namespace uvd {
namespace geom {

/// Area of the intersection (lens) of two disks with radii r1, r2 whose
/// centers are d apart. Handles containment and disjoint cases exactly.
double LensArea(double d, double r1, double r2);

/// Area of the intersection of two disks.
double CircleIntersectionArea(const Circle& a, const Circle& b);

/// Area of the intersection of the disk Cir(q, d) with the annulus
/// {p : r_in <= |p - c| <= r_out}. Requires 0 <= r_in <= r_out.
double AnnulusCircleIntersectionArea(const Point& q, double d, const Point& c,
                                     double r_in, double r_out);

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_CIRCLE_OPS_H_
