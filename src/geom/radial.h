// Radial (polar) form of UV-edge constraints, the representation behind our
// exact UV-cells (DESIGN.md Section 4).
//
// For an anchor object O_i(c_i, r_i) and a constraining object O_j(c_j, r_j)
// put w = c_j - c_i and s = r_i + r_j. Along the ray p(t) = c_i + t*u the
// dominance margin f(t) = dist(p, c_i) - dist(p, c_j) is non-decreasing, so
// the ray crosses the UV-edge E_i(j) at most once, at
//
//     rho(u) = (|w|^2 - s^2) / (2 * (u.w - s)),   finite iff u.w > s.
//
// Domain walls use the mirror-image trick (w = 2*d0*n_hat, s = 0), and
// r_i = r_j = 0 reduces to the perpendicular bisector of the classic Voronoi
// diagram. The UV-cell of O_i is exactly the star-shaped region
// { c_i + t*u : 0 <= t <= min_j rho_j(u) }.
#ifndef UVD_GEOM_RADIAL_H_
#define UVD_GEOM_RADIAL_H_

#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "geom/box.h"
#include "geom/circle.h"
#include "geom/point.h"

namespace uvd {
namespace geom {

/// Owner ids for the four domain walls (negative so they never collide with
/// object ids, which are >= 0).
enum WallOwner : int {
  kWallLeft = -1,
  kWallRight = -2,
  kWallBottom = -3,
  kWallTop = -4,
};

/// One radial constraint on the UV-cell of an anchor object.
struct RadialConstraint {
  Vec2 w;          ///< c_j - c_i (objects) or 2*d0*n_hat (walls).
  double s = 0.0;  ///< r_i + r_j (objects) or 0 (walls).
  int owner = 0;   ///< Object id, or a WallOwner value.

  /// Half the constant numerator |w|^2 - s^2 of rho.
  double K() const { return 0.5 * (w.Norm2() - s * s); }

  /// True when the constraint imposes nothing (overlapping uncertainty
  /// regions: the paper treats X_i(j) as a zero-area region).
  bool IsVacuous() const { return w.Norm2() <= s * s; }

  /// Distance from the anchor center to the UV-edge along direction u
  /// (unit vector); +infinity when the ray never leaves the cell side.
  double Rho(const Vec2& u) const {
    const double denom = u.Dot(w) - s;
    if (denom <= 0.0) return std::numeric_limits<double>::infinity();
    return K() / denom;
  }

  double RhoAtAngle(double theta) const { return Rho(UnitVector(theta)); }

  /// Angular interval (phi - alpha, phi + alpha) on which rho is finite,
  /// where phi = angle of w and cos(alpha) = s / |w|. Empty for vacuous
  /// constraints. The interval length is at most pi.
  std::optional<std::pair<double, double>> FiniteDomain() const;

  /// Constraint of O_j on the UV-cell of O_i.
  static RadialConstraint ForObjects(const Circle& anchor, const Circle& other,
                                     int owner_id);

  /// The four domain-wall constraints for an anchor centered at `center`
  /// strictly inside `domain`.
  static std::vector<RadialConstraint> ForDomainWalls(const Point& center,
                                                      const Box& domain);
};

/// Angles (normalized to [0, 2*pi)) at which the radial curves of two
/// constraints intersect: solutions of A*cos(theta) + B*sin(theta) = C
/// derived from rho_1 = rho_2. At most two; tangency returns one. Spurious
/// solutions outside either finite domain are retained (callers re-validate
/// by evaluation; see RadialEnvelope::Insert).
std::vector<double> CrossingAngles(const RadialConstraint& c1,
                                   const RadialConstraint& c2);

/// Allocation-free form: writes the crossings (same values, same order)
/// into out[0..1] and returns their count. The hot path — envelope Insert
/// evaluates this for every (new constraint, boundary owner) pair.
int CrossingAngles(const RadialConstraint& c1, const RadialConstraint& c2,
                   double out[2]);

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_RADIAL_H_
