#include "common/stats.h"

#include <sstream>

namespace uvd {

const char* TickerName(Ticker t) {
  switch (t) {
    case Ticker::kPageReads:
      return "page.reads";
    case Ticker::kPageWrites:
      return "page.writes";
    case Ticker::kBufferPoolHits:
      return "bufferpool.hits";
    case Ticker::kBufferPoolMisses:
      return "bufferpool.misses";
    case Ticker::kBufferPoolEvictions:
      return "bufferpool.evictions";
    case Ticker::kRtreeNodeVisits:
      return "rtree.node.visits";
    case Ticker::kRtreeLeafReads:
      return "rtree.leaf.reads";
    case Ticker::kUvIndexNodeVisits:
      return "uvindex.node.visits";
    case Ticker::kUvIndexLeafReads:
      return "uvindex.leaf.reads";
    case Ticker::kHyperbolaTests:
      return "geom.hyperbola.tests";
    case Ticker::kEnvelopeInsertions:
      return "geom.envelope.insertions";
    case Ticker::kOverlapChecks:
      return "uvindex.overlap.checks";
    case Ticker::kFourPointTests:
      return "uvindex.fourpoint.tests";
    case Ticker::kQualificationIntegrations:
      return "pnn.qualification.integrations";
    case Ticker::kQueryCacheHits:
      return "query.cache.hits";
    case Ticker::kQueryCacheMisses:
      return "query.cache.misses";
    case Ticker::kQueryCachePromotions:
      return "query.cache.promotions";
    case Ticker::kQueryCacheDemotions:
      return "query.cache.demotions";
    case Ticker::kQueryCacheWarmInserts:
      return "query.cache.warm.inserts";
    case Ticker::kLeafMemoHits:
      return "rtree.leafmemo.hits";
    case Ticker::kLeafMemoMisses:
      return "rtree.leafmemo.misses";
    case Ticker::kNumTickers:
      break;
  }
  return "unknown";
}

std::string Stats::ToString(bool include_zeros) const {
  std::ostringstream out;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    const uint64_t value = Get(static_cast<Ticker>(i));
    if (value == 0 && !include_zeros) continue;
    out << TickerName(static_cast<Ticker>(i)) << " = " << value << "\n";
  }
  return out.str();
}

std::string Stats::ToJson(bool include_zeros) const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    const uint64_t value = Get(static_cast<Ticker>(i));
    if (value == 0 && !include_zeros) continue;
    out << (first ? "" : ", ") << "\"" << TickerName(static_cast<Ticker>(i))
        << "\": " << value;
    first = false;
  }
  out << "}";
  return out.str();
}

}  // namespace uvd
