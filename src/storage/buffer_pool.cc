#include "storage/buffer_pool.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace uvd {
namespace storage {

BufferPool::BufferPool(const BufferPoolOptions& options, size_t page_size,
                       Backing backing, Stats* stats)
    : capacity_(options.capacity_pages),
      // Unbounded pools never evict, so segmentation is moot; bounded ones
      // keep at least one probationary slot (same guard as QueryCache: a
      // fully-protected pool would evict each incoming page immediately).
      protected_capacity_(
          capacity_ == 0
              ? 0
              : std::min(capacity_ - 1,
                         static_cast<size_t>(
                             std::min(1.0, std::max(
                                               0.0, options.protected_fraction)) *
                             static_cast<double>(capacity_)))),
      page_size_(page_size),
      backing_(std::move(backing)),
      stats_(stats) {}

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& other) noexcept {
  if (this == &other) return *this;
  if (frame_ != nullptr) pool_->Unpin(frame_);
  pool_ = other.pool_;
  frame_ = other.frame_;
  other.pool_ = nullptr;
  other.frame_ = nullptr;
  return *this;
}

BufferPool::PageRef::~PageRef() {
  if (frame_ != nullptr) pool_->Unpin(frame_);
}

Result<BufferPool::PageRef> BufferPool::Pin(PageId id) {
  {
    MutexLock lock(mu_);
    auto it = map_.find(id);
    if (it != map_.end()) {
      ++hits_;
      if (stats_ != nullptr) stats_->Add(Ticker::kBufferPoolHits);
      auto frame_it = it->second;
      if (frame_it->is_protected) {
        protected_.splice(protected_.begin(), protected_, frame_it);
      } else if (protected_capacity_ > 0) {
        // First re-reference: promote. A full protected segment demotes
        // its LRU tail back to the probationary front (one more chance
        // before scan traffic can evict it).
        protected_.splice(protected_.begin(), probationary_, frame_it);
        frame_it->is_protected = true;
        if (protected_.size() > protected_capacity_) {
          auto demoted = std::prev(protected_.end());
          demoted->is_protected = false;
          probationary_.splice(probationary_.begin(), protected_, demoted);
        }
      } else {
        probationary_.splice(probationary_.begin(), probationary_, frame_it);
      }
      ++frame_it->pins;
      return PageRef(this, &*frame_it);
    }
  }

  // Miss: load outside the lock (QueryCache loader discipline — duplicate
  // reads of the same page beat serializing every miss behind one I/O).
  std::vector<uint8_t> data;
  UVD_RETURN_NOT_OK(backing_(id, &data));

  MutexLock lock(mu_);
  ++misses_;
  if (stats_ != nullptr) stats_->Add(Ticker::kBufferPoolMisses);
  auto it = map_.find(id);
  if (it != map_.end()) {
    // A concurrent miss won the insertion race; adopt its frame (the
    // bytes are identical — the backing is read-only under concurrency).
    auto frame_it = it->second;
    ++frame_it->pins;
    return PageRef(this, &*frame_it);
  }
  probationary_.push_front(BufferPoolFrame{});
  auto frame_it = probationary_.begin();
  frame_it->id = id;
  frame_it->data = std::move(data);
  frame_it->pins = 1;
  map_[id] = frame_it;
  EvictToCapacity();
  return PageRef(this, &*frame_it);
}

Status BufferPool::Read(PageId id, std::vector<uint8_t>* out) {
  auto pinned = Pin(id);
  if (!pinned.ok()) return pinned.status();
  PageRef ref = std::move(pinned).value();
  *out = ref.data();
  return Status::OK();
}

void BufferPool::Put(PageId id, const std::vector<uint8_t>& data) {
  MutexLock lock(mu_);
  auto it = map_.find(id);
  if (it == map_.end()) return;
  BufferPoolFrame& frame = *it->second;
  const size_t n = std::min(data.size(), frame.data.size());
  std::copy(data.begin(), data.begin() + static_cast<long>(n),
            frame.data.begin());
  std::fill(frame.data.begin() + static_cast<long>(n), frame.data.end(), 0);
}

void BufferPool::Invalidate(PageId id) {
  MutexLock lock(mu_);
  auto it = map_.find(id);
  if (it == map_.end()) return;
  auto frame_it = it->second;
  map_.erase(it);
  ++invalidations_;
  std::list<BufferPoolFrame>& src =
      frame_it->is_protected ? protected_ : probationary_;
  if (frame_it->pins == 0) {
    src.erase(frame_it);
  } else {
    frame_it->doomed = true;
    doomed_.splice(doomed_.begin(), src, frame_it);
  }
}

void BufferPool::Clear() {
  MutexLock lock(mu_);
  invalidations_ += map_.size();
  map_.clear();
  for (std::list<BufferPoolFrame>* list : {&probationary_, &protected_}) {
    for (auto it = list->begin(); it != list->end();) {
      auto next = std::next(it);
      if (it->pins == 0) {
        list->erase(it);
      } else {
        it->doomed = true;
        doomed_.splice(doomed_.begin(), *list, it);
      }
      it = next;
    }
  }
}

void BufferPool::Unpin(BufferPoolFrame* frame) {
  MutexLock lock(mu_);
  --frame->pins;
  if (frame->doomed && frame->pins == 0) {
    for (auto it = doomed_.begin(); it != doomed_.end(); ++it) {
      if (&*it == frame) {
        doomed_.erase(it);
        break;
      }
    }
  }
}

void BufferPool::EvictToCapacity() {
  if (capacity_ == 0) return;
  while (map_.size() > capacity_) {
    bool evicted = false;
    // Probationary LRU tail first (scan resistance), then the protected
    // tail; pinned frames are skipped — they cannot be freed.
    for (std::list<BufferPoolFrame>* list : {&probationary_, &protected_}) {
      for (auto it = list->rbegin(); it != list->rend(); ++it) {
        if (it->pins != 0) continue;
        auto victim = std::next(it).base();
        map_.erase(victim->id);
        list->erase(victim);
        ++evictions_;
        if (stats_ != nullptr) stats_->Add(Ticker::kBufferPoolEvictions);
        evicted = true;
        break;
      }
      if (evicted) break;
    }
    if (!evicted) break;  // every frame pinned: transient overflow
  }
}

size_t BufferPool::size() const {
  MutexLock lock(mu_);
  return map_.size();
}

size_t BufferPool::protected_size() const {
  MutexLock lock(mu_);
  return protected_.size();
}

uint64_t BufferPool::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

uint64_t BufferPool::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

uint64_t BufferPool::invalidations() const {
  MutexLock lock(mu_);
  return invalidations_;
}

}  // namespace storage
}  // namespace uvd
