#include "core/build_pipeline.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/uv_cell.h"
#include "obs/trace_recorder.h"

namespace uvd {
namespace core {

const char* BuildMethodName(BuildMethod m) {
  switch (m) {
    case BuildMethod::kBasic:
      return "Basic";
    case BuildMethod::kICR:
      return "ICR";
    case BuildMethod::kIC:
      return "IC";
  }
  return "unknown";
}

const char* Stage2ModeName(Stage2Mode m) {
  switch (m) {
    case Stage2Mode::kAuto:
      return "auto";
    case Stage2Mode::kInOrder:
      return "in-order";
    case Stage2Mode::kPartitioned:
      return "partitioned";
  }
  return "unknown";
}

namespace {

/// Finder options with the pipeline's kernel_mode knob applied.
CrFinderOptions FinderOptions(const BuildPipelineOptions& options) {
  CrFinderOptions cr = options.cr;
  cr.kernel_mode = options.kernel_mode;
  return cr;
}

/// Per-worker Algorithm 2 workspace: always carries reusable buffers; under
/// TraversalMode::kShared additionally owns the worker's TraversalSession
/// (billing memo/visit tickers to the worker's Stats shard).
CrFinderWorkspace MakeWorkspace(const rtree::RTree& tree,
                                const BuildPipelineOptions& options,
                                Stats* stats) {
  CrFinderWorkspace ws;
  if (options.traversal_mode == rtree::TraversalMode::kShared) {
    rtree::TraversalSessionOptions sopts;
    if (options.leaf_memo_capacity > 0) {
      sopts.leaf_memo_capacity = static_cast<size_t>(options.leaf_memo_capacity);
    }
    ws.session = std::make_unique<rtree::TraversalSession>(tree, sopts, stats);
  }
  return ws;
}

/// Interleaves the low 16 bits of `v` with zeros (Morton spreading).
uint64_t SpreadBits16(uint32_t v) {
  uint64_t x = v & 0xFFFFu;
  x = (x | (x << 8)) & 0x00FF00FFu;
  x = (x | (x << 4)) & 0x0F0F0F0Fu;
  x = (x | (x << 2)) & 0x33333333u;
  x = (x | (x << 1)) & 0x55555555u;
  return x;
}

/// Deterministic space-filling sweep order for the shared traversal:
/// object indices sorted by the Morton (Z-order) key of their centers on a
/// 2^16 grid over the domain, ties by id. Adjacent tiles of this order are
/// spatially adjacent, which is what makes the session's frontier bound
/// and leaf memo hit.
std::vector<uint32_t> MortonOrder(
    const std::vector<uncertain::UncertainObject>& objects,
    const geom::Box& domain) {
  const size_t n = objects.size();
  const double w = domain.Width() > 0.0 ? domain.Width() : 1.0;
  const double h = domain.Height() > 0.0 ? domain.Height() : 1.0;
  constexpr double kGrid = 65535.0;
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Point c = objects[i].center();
    const double nx = std::min(1.0, std::max(0.0, (c.x - domain.lo.x) / w));
    const double ny = std::min(1.0, std::max(0.0, (c.y - domain.lo.y) / h));
    keys[i] = (SpreadBits16(static_cast<uint32_t>(ny * kGrid)) << 1) |
              SpreadBits16(static_cast<uint32_t>(nx * kGrid));
  }
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  return order;
}

std::vector<geom::Circle> RegionsOf(const std::vector<uncertain::UncertainObject>& objects,
                                    const std::vector<int>& ids) {
  std::vector<geom::Circle> regions;
  regions.reserve(ids.size());
  for (int id : ids) {
    regions.push_back(objects[static_cast<size_t>(id)].region());
  }
  return regions;
}

/// Stage-1 output for one object: the ids to index plus the per-object
/// BuildStats deltas. The consumer accumulates the deltas in id order, so
/// the floating-point sums match the serial build bit for bit.
struct StageResult {
  std::vector<int> index_ids;      // ids whose outside regions describe U_i
  double seed_seconds = 0.0;
  double prune_seconds = 0.0;
  double robject_seconds = 0.0;
  double traversal_seconds = 0.0;
  double decode_seconds = 0.0;
  double kernel_seconds = 0.0;
  double i_prune_frac = 0.0;
  double c_prune_frac = 0.0;
  double cr_count = 0.0;
  double r_count = 0.0;
};

/// Stage 1 for objects[i]: pruning and/or exact-cell refinement. Pure
/// w.r.t. shared state — reads the dataset and the R-tree, bills only
/// `stats` (the calling worker's shard) — so any number of workers may run
/// it concurrently.
StageResult RunObjectStage(const std::vector<uncertain::UncertainObject>& objects,
                           const CrObjectFinder& finder, size_t i,
                           const geom::Box& domain, BuildMethod method,
                           double denom, geom::KernelMode kernel_mode,
                           Stats* stats, CrFinderWorkspace* ws) {
  StageResult r;
  switch (method) {
    case BuildMethod::kBasic: {
      ScopedTimer t(&r.robject_seconds);
      const UVCell cell = BuildExactUvCell(objects, i, domain, stats, kernel_mode);
      r.index_ids = cell.RObjects();
      r.r_count = static_cast<double>(r.index_ids.size());
      break;
    }
    case BuildMethod::kICR: {
      const CrResult cr = finder.Find(i, ws);
      r.seed_seconds = cr.seed_seconds;
      r.prune_seconds = cr.prune_seconds;
      r.traversal_seconds = cr.traversal_seconds;
      r.decode_seconds = cr.decode_seconds;
      r.kernel_seconds = cr.kernel_seconds;
      r.i_prune_frac = 1.0 - static_cast<double>(cr.after_i_pruning) / denom;
      r.c_prune_frac = 1.0 - static_cast<double>(cr.cr_objects.size()) / denom;
      r.cr_count = static_cast<double>(cr.cr_objects.size());
      {
        // Refinement: exact r-objects from the candidates.
        ScopedTimer t(&r.robject_seconds);
        const UVCell cell = BuildUvCellFromCandidates(objects, i, cr.cr_objects,
                                                      domain, stats, kernel_mode);
        r.index_ids = cell.RObjects();
      }
      r.r_count = static_cast<double>(r.index_ids.size());
      break;
    }
    case BuildMethod::kIC: {
      const CrResult cr = finder.Find(i, ws);
      r.seed_seconds = cr.seed_seconds;
      r.prune_seconds = cr.prune_seconds;
      r.traversal_seconds = cr.traversal_seconds;
      r.decode_seconds = cr.decode_seconds;
      r.kernel_seconds = cr.kernel_seconds;
      r.i_prune_frac = 1.0 - static_cast<double>(cr.after_i_pruning) / denom;
      r.c_prune_frac = 1.0 - static_cast<double>(cr.cr_objects.size()) / denom;
      r.cr_count = static_cast<double>(cr.cr_objects.size());
      r.index_ids = cr.cr_objects;
      break;
    }
  }
  return r;
}

void Accumulate(const StageResult& r, BuildStats* s) {
  s->seed_seconds += r.seed_seconds;
  s->pruning_seconds += r.prune_seconds;
  s->robject_seconds += r.robject_seconds;
  s->traversal_seconds += r.traversal_seconds;
  s->decode_seconds += r.decode_seconds;
  s->kernel_seconds += r.kernel_seconds;
  s->i_pruning_ratio += r.i_prune_frac;
  s->c_pruning_ratio += r.c_prune_frac;
  s->avg_cr_objects += r.cr_count;
  s->avg_r_objects += r.r_count;
}

/// Stage 2: ordered insertion of one stage-1 result.
Status InsertResult(const std::vector<uncertain::UncertainObject>& objects,
                    const std::vector<uncertain::ObjectPtr>& ptrs, size_t i,
                    const StageResult& r, UVIndex* index, BuildStats* local) {
  ScopedTimer t(&local->indexing_seconds);
  return index->InsertObject(objects[i].region(), objects[i].id(), ptrs[i],
                             RegionsOf(objects, r.index_ids));
}

void RunStage1Materialized(const std::vector<uncertain::UncertainObject>& objects,
                           const rtree::RTree& tree, const geom::Box& domain,
                           const BuildPipelineOptions& options, int workers,
                           ThreadPool* pool, std::vector<StageResult>* results,
                           Stats* stats);

/// The legacy serial loop: compute and insert one object at a time on the
/// calling thread.
Status RunSerial(const std::vector<uncertain::UncertainObject>& objects,
                 const std::vector<uncertain::ObjectPtr>& ptrs,
                 const rtree::RTree& tree, const geom::Box& domain,
                 const BuildPipelineOptions& options, UVIndex* index,
                 BuildStats* local, Stats* stats) {
  UVD_TRACE_SPAN("build", "serial_build");
  const size_t n = objects.size();
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  if (options.traversal_mode == rtree::TraversalMode::kShared) {
    // Materialize stage 1 in Morton order (where the session's pool/bound/
    // memo reuse lives), then insert in id order. Per-object results are
    // pure functions of the object, Accumulate still runs in id order, and
    // stage 2 sees the exact per-anchor sequence — digests are unchanged.
    std::vector<StageResult> results;
    RunStage1Materialized(objects, tree, domain, options, /*workers=*/1,
                          /*pool=*/nullptr, &results, stats);
    for (size_t i = 0; i < n; ++i) {
      Accumulate(results[i], local);
      UVD_RETURN_NOT_OK(InsertResult(objects, ptrs, i, results[i], index, local));
    }
    return Status::OK();
  }
  const CrObjectFinder finder(objects, tree, domain, FinderOptions(options), stats);
  CrFinderWorkspace ws = MakeWorkspace(tree, options, stats);
  for (size_t i = 0; i < n; ++i) {
    const StageResult r = RunObjectStage(objects, finder, i, domain, options.method,
                                         denom, options.kernel_mode, stats, &ws);
    Accumulate(r, local);
    UVD_RETURN_NOT_OK(InsertResult(objects, ptrs, i, r, index, local));
  }
  return Status::OK();
}

/// Stage 1 materialized across `workers` from `pool` (nullable when
/// workers <= 1): results land positionally, in any order — there is no
/// stage-2 consumer to keep in step — and per-worker Stats shards are
/// merged into `stats` before returning. Shared by ComputeStage1Candidates
/// and the partitioned stage-2 path.
void RunStage1Materialized(const std::vector<uncertain::UncertainObject>& objects,
                           const rtree::RTree& tree, const geom::Box& domain,
                           const BuildPipelineOptions& options, int workers,
                           ThreadPool* pool, std::vector<StageResult>* results,
                           Stats* stats) {
  const size_t n = objects.size();
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  results->resize(n);
  const bool tiled = options.traversal_mode == rtree::TraversalMode::kShared;
  if (workers <= 1 || pool == nullptr) {
    const CrObjectFinder finder(objects, tree, domain, FinderOptions(options), stats);
    CrFinderWorkspace ws = MakeWorkspace(tree, options, stats);
    // The Morton sweep matters even single-threaded: the session's pool /
    // bound / memo only pay off when consecutive anchors are spatially
    // adjacent, and ids are in dataset order (spatially random). Results
    // land positionally, so the sweep order never shows in the output.
    std::vector<uint32_t> order;
    if (tiled) order = MortonOrder(objects, domain);
    for (size_t j = 0; j < n; ++j) {
      const size_t i = tiled ? order[j] : j;
      (*results)[i] = RunObjectStage(objects, finder, i, domain, options.method,
                                     denom, options.kernel_mode, stats, &ws);
    }
    return;
  }
  // Tiled Morton sweep under kShared: workers claim contiguous tiles of
  // the space-filling order, so each session's frontier/bound/memo sees
  // spatially adjacent anchors back to back. Results land positionally
  // ((*results)[i]) and every per-object output is state-independent, so
  // the claim interleaving and tile size never show in the output.
  std::vector<uint32_t> order;
  size_t tile = 1;
  if (tiled) {
    order = MortonOrder(objects, domain);
    tile = options.traversal_tile_size > 0
               ? static_cast<size_t>(options.traversal_tile_size)
               : 64;
  }
  std::vector<Stats> shards(static_cast<size_t>(workers));
  std::atomic<size_t> next{0};
  auto done = std::make_shared<WaitGroup>(workers);
  for (int w = 0; w < workers; ++w) {
    pool->Submit([&, w, done] {
      UVD_TRACE_SPAN("build", "stage1_worker");
      Stats* shard = stats != nullptr ? &shards[static_cast<size_t>(w)] : nullptr;
      const CrObjectFinder finder(objects, tree, domain, FinderOptions(options), shard);
      CrFinderWorkspace ws = MakeWorkspace(tree, options, shard);
      for (;;) {
        const size_t claim = next.fetch_add(1, std::memory_order_relaxed);
        const size_t begin = claim * tile;
        if (begin >= n) break;
        const size_t end = std::min(n, begin + tile);
        for (size_t j = begin; j < end; ++j) {
          const size_t i = tiled ? order[j] : j;
          (*results)[i] = RunObjectStage(objects, finder, i, domain, options.method,
                                         denom, options.kernel_mode, shard, &ws);
        }
      }
      done->Done();
    });
  }
  done->Wait();
  if (stats != nullptr) {
    for (const Stats& shard : shards) stats->MergeFrom(shard);
  }
}

/// Partitioned path: stage 1 materialized, then stage 2 fanned out per
/// quad-tree subtree with the canonical stitch
/// (UVIndex::InsertObjectsPartitioned) and a parallel Finalize. The two
/// stages are disjoint phases here, so the per-stage walls are genuine.
Status RunPartitioned(const std::vector<uncertain::UncertainObject>& objects,
                      const std::vector<uncertain::ObjectPtr>& ptrs,
                      const rtree::RTree& tree, const geom::Box& domain,
                      const BuildPipelineOptions& options, int workers,
                      UVIndex* index, BuildStats* local, Stats* stats) {
  const size_t n = objects.size();
  ThreadPool pool(workers);

  std::vector<StageResult> results;
  {
    UVD_TRACE_SPAN("build", "stage1");
    Timer stage1_timer;
    RunStage1Materialized(objects, tree, domain, options, workers, &pool, &results,
                          stats);
    local->stage1_wall_seconds = stage1_timer.ElapsedSeconds();
  }
  // Accumulate the per-object BuildStats deltas in id order — the same
  // floating-point summation order as the serial build, bit for bit.
  for (size_t i = 0; i < n; ++i) Accumulate(results[i], local);

  Timer stage2_timer;
  std::vector<UVIndex::BulkInsertItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    items[i].region = objects[i].region();
    items[i].id = objects[i].id();
    items[i].ptr = ptrs[i];
    items[i].cr_regions = RegionsOf(objects, results[i].index_ids);
    results[i].index_ids.clear();
    results[i].index_ids.shrink_to_fit();
  }
  UVIndex::PartitionedInsertOptions popts;
  popts.threads = workers;
  popts.max_depth = options.stage2_max_depth;
  popts.target_subtrees = options.stage2_target_subtrees;
  {
    UVD_TRACE_SPAN("build", "stage2");
    ScopedTimer t(&local->indexing_seconds);
    UVD_RETURN_NOT_OK(index->InsertObjectsPartitioned(std::move(items), &pool, popts));
    UVD_RETURN_NOT_OK(index->FinalizeWith(&pool, workers));
  }
  local->stage2_wall_seconds = stage2_timer.ElapsedSeconds();
  return Status::OK();
}

/// Fan-out path: stage-1 workers feed the in-order consumer through a
/// bounded ring buffer.
Status RunParallel(const std::vector<uncertain::UncertainObject>& objects,
                   const std::vector<uncertain::ObjectPtr>& ptrs,
                   const rtree::RTree& tree, const geom::Box& domain,
                   const BuildPipelineOptions& options, int workers,
                   UVIndex* index, BuildStats* local, Stats* stats) {
  const size_t n = objects.size();
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  const size_t window =
      options.queue_window >= workers ? static_cast<size_t>(options.queue_window)
                                      : static_cast<size_t>(2 * workers + 2);

  struct Slot {
    StageResult result;
    bool ready = false;
  };
  // The ring's shared state lives in one annotated struct so the analysis
  // checks the stage-1-worker / consumer handoff: every guarded access in
  // the lambdas below must hold ring.mu.
  struct RingState {
    Mutex mu;
    CondVar cv_space;  // consumer advanced or abort
    CondVar cv_ready;  // a slot became ready
    std::vector<Slot> slots UVD_GUARDED_BY(mu);
    size_t consumed UVD_GUARDED_BY(mu) = 0;
    bool abort UVD_GUARDED_BY(mu) = false;
  };
  RingState ring;
  {
    MutexLock lock(ring.mu);
    ring.slots.resize(window);
  }
  std::atomic<size_t> next{0};

  // One Stats shard per worker keeps the hottest tickers (envelope
  // insertions, hyperbola tests) contention-free; shards are merged below.
  // R-tree / page tickers billed through the tree's own Stats pointer are
  // relaxed atomics, so sharing them across workers is exact too.
  std::vector<Stats> shards(static_cast<size_t>(workers));

  // The stages overlap in this mode; stage-1 wall = time until the LAST
  // worker drained its share (each worker records its exit under mu).
  Timer phase_timer;

  ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&, w] {
      UVD_TRACE_SPAN("build", "stage1_worker");
      Stats* shard = stats != nullptr ? &shards[static_cast<size_t>(w)] : nullptr;
      const CrObjectFinder finder(objects, tree, domain, FinderOptions(options), shard);
      // Claims stay in id order here (the bounded in-order ring needs
      // production near the consumption frontier), but the session's
      // frontier reuse and leaf memo still pay off under kShared.
      CrFinderWorkspace ws = MakeWorkspace(tree, options, shard);
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          MutexLock lock(ring.mu);
          local->stage1_wall_seconds =
              std::max(local->stage1_wall_seconds, phase_timer.ElapsedSeconds());
          return;
        }
        {
          // Bound how far stage 1 runs ahead of the consumer. The worker
          // holding the smallest unfilled index is always admitted
          // (window >= workers), so the claim-then-wait order cannot
          // deadlock.
          MutexLock lock(ring.mu);
          while (!ring.abort && i >= ring.consumed + window) {
            ring.cv_space.Wait(ring.mu);
          }
          if (ring.abort) return;
        }
        StageResult r = RunObjectStage(objects, finder, i, domain, options.method,
                                       denom, options.kernel_mode, shard, &ws);
        {
          MutexLock lock(ring.mu);
          Slot& slot = ring.slots[i % window];
          UVD_DCHECK(!slot.ready);
          slot.result = std::move(r);
          slot.ready = true;
        }
        ring.cv_ready.NotifyAll();
      }
    });
  }

  // In-order consumer: object i is inserted only after 0..i-1, so the
  // index evolves exactly as in the serial build.
  UVD_TRACE_SPAN("build", "stage2_consumer");
  Status status;
  for (size_t i = 0; i < n; ++i) {
    StageResult r;
    {
      MutexLock lock(ring.mu);
      while (!ring.slots[i % window].ready) ring.cv_ready.Wait(ring.mu);
      Slot& slot = ring.slots[i % window];
      r = std::move(slot.result);
      slot.ready = false;
      ring.consumed = i + 1;
    }
    ring.cv_space.NotifyAll();
    Accumulate(r, local);
    status = InsertResult(objects, ptrs, i, r, index, local);
    if (!status.ok()) {
      MutexLock lock(ring.mu);
      ring.abort = true;
      break;
    }
  }
  ring.cv_space.NotifyAll();
  pool.Wait();

  if (stats != nullptr) {
    for (const Stats& shard : shards) stats->MergeFrom(shard);
  }
  // Consumer wall: the in-order insertion ran alongside stage 1 from the
  // first result on, so this wall overlaps stage1_wall_seconds (the
  // header's caveat); Finalize is added by the caller.
  local->stage2_wall_seconds = phase_timer.ElapsedSeconds();
  return status;
}

Status ValidateIdOrder(const std::vector<uncertain::UncertainObject>& objects) {
  for (size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].id() != static_cast<int>(i)) {
      return Status::InvalidArgument("objects must be stored in id order");
    }
  }
  return Status::OK();
}

/// Turns the per-object sums accumulated by Accumulate into the
/// per-object means BuildStats reports.
void NormalizeBuildStats(size_t n, BuildStats* s) {
  if (n == 0) return;
  s->i_pruning_ratio /= static_cast<double>(n);
  s->c_pruning_ratio /= static_cast<double>(n);
  s->avg_cr_objects /= static_cast<double>(n);
  s->avg_r_objects /= static_cast<double>(n);
}

}  // namespace

Status RunBuildPipeline(const std::vector<uncertain::UncertainObject>& objects,
                        const std::vector<uncertain::ObjectPtr>& ptrs,
                        const rtree::RTree& tree, const geom::Box& domain,
                        const BuildPipelineOptions& options, UVIndex* index,
                        BuildStats* build_stats, Stats* stats) {
  if (objects.size() != ptrs.size()) {
    return Status::InvalidArgument("objects/ptrs size mismatch");
  }
  UVD_RETURN_NOT_OK(ValidateIdOrder(objects));

  const int workers =
      options.build_threads > 0 ? options.build_threads : ThreadPool::DefaultThreads();
  // Mode resolution: the partitioned stage 2 is the default whenever more
  // than one worker runs; kInOrder keeps PR 1's exact-ticker pipeline
  // selectable; a single worker always runs the legacy serial loop unless
  // the partitioned path is requested explicitly (it degrades to the same
  // serial insertion order).
  Stage2Mode mode = options.stage2;
  if (mode == Stage2Mode::kAuto) {
    mode = workers > 1 ? Stage2Mode::kPartitioned : Stage2Mode::kInOrder;
  }

  BuildStats local;
  Timer total_timer;
  Status status;
  if (mode == Stage2Mode::kPartitioned) {
    status = RunPartitioned(objects, ptrs, tree, domain, options, workers, index,
                            &local, stats);
  } else if (workers == 1) {
    status = RunSerial(objects, ptrs, tree, domain, options, index, &local, stats);
  } else {
    status =
        RunParallel(objects, ptrs, tree, domain, options, workers, index, &local, stats);
  }
  UVD_RETURN_NOT_OK(status);
  {
    // A no-op after RunPartitioned (which finalizes with its pool).
    ScopedTimer t(&local.indexing_seconds);
    ScopedTimer t2(&local.stage2_wall_seconds);
    UVD_RETURN_NOT_OK(index->Finalize());
  }
  if (mode != Stage2Mode::kPartitioned && workers == 1) {
    // Serial loop: per-stage CPU sums ARE the walls.
    local.stage1_wall_seconds =
        local.seed_seconds + local.pruning_seconds + local.robject_seconds;
    local.stage2_wall_seconds = local.indexing_seconds;
  }

  local.total_seconds = total_timer.ElapsedSeconds();
  NormalizeBuildStats(objects.size(), &local);
  if (build_stats != nullptr) *build_stats = local;
  return Status::OK();
}

Status ComputeStage1Candidates(const std::vector<uncertain::UncertainObject>& objects,
                               const rtree::RTree& tree, const geom::Box& domain,
                               const BuildPipelineOptions& options,
                               std::vector<std::vector<int>>* index_ids,
                               BuildStats* build_stats, Stats* stats) {
  UVD_RETURN_NOT_OK(ValidateIdOrder(objects));
  const size_t n = objects.size();
  const int workers = std::min<int>(
      options.build_threads > 0 ? options.build_threads : ThreadPool::DefaultThreads(),
      n > 0 ? static_cast<int>(n) : 1);

  BuildStats local;
  Timer total_timer;
  std::vector<StageResult> results;
  if (workers <= 1) {
    RunStage1Materialized(objects, tree, domain, options, 1, nullptr, &results, stats);
  } else {
    ThreadPool pool(workers);
    RunStage1Materialized(objects, tree, domain, options, workers, &pool, &results,
                          stats);
  }
  local.stage1_wall_seconds = total_timer.ElapsedSeconds();

  index_ids->clear();
  index_ids->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Accumulate(results[i], &local);
    index_ids->push_back(std::move(results[i].index_ids));
  }
  local.total_seconds = total_timer.ElapsedSeconds();
  NormalizeBuildStats(n, &local);
  if (build_stats != nullptr) *build_stats = local;
  return Status::OK();
}

}  // namespace core
}  // namespace uvd
