// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: calls a
// UVD_REQUIRES(mu_) method without holding the capability. The ctest
// thread_annotations_missing_requires_must_not_compile asserts the build
// of this file fails (WILL_FAIL).
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void IncrementLocked() UVD_REQUIRES(mu_) { ++value_; }

  // VIOLATION: IncrementLocked requires mu_, but the caller never takes it.
  void Increment() { IncrementLocked(); }

 private:
  uvd::Mutex mu_;
  int value_ UVD_GUARDED_BY(mu_) = 0;
};

}  // namespace

void TaMissingRequiresDriver() {
  Counter c;
  c.Increment();
}
