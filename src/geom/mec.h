// Minimal enclosing circle (Welzl). Supports the paper's extension to
// non-circular uncertainty regions (Sec. III-C): a region is converted to
// the circle that minimally contains it before UV-cell construction.
#ifndef UVD_GEOM_MEC_H_
#define UVD_GEOM_MEC_H_

#include <vector>

#include "geom/circle.h"
#include "geom/point.h"

namespace uvd {
namespace geom {

/// Smallest circle enclosing all points. Runs Welzl's algorithm with a
/// deterministic shuffle (seeded internally) for expected linear time.
/// Empty input yields a zero circle at the origin.
Circle MinimalEnclosingCircle(std::vector<Point> points);

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_MEC_H_
