// Tests for the packed R-tree: structure invariants, k-NN and range
// queries against brute force, I/O accounting.
#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace uvd {
namespace rtree {
namespace {

struct Fixture {
  Stats stats;
  storage::PageManager pm{4096, &stats};
  uncertain::ObjectStore store{&pm};
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<RTree> tree;

  void Build(int n, uint64_t seed = 3, int fanout = 100, double radius_max = 25) {
    Rng rng(seed);
    objects.clear();
    for (int i = 0; i < n; ++i) {
      objects.push_back(uncertain::UncertainObject::WithGaussianPdf(
          i, geom::Circle({rng.Uniform(0, 10000), rng.Uniform(0, 10000)},
                          rng.Uniform(0.5, radius_max))));
    }
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    auto t = RTree::BulkLoad(objects, ptrs, &pm, {fanout}, &stats);
    UVD_CHECK(t.ok()) << t.status().ToString();
    tree.emplace(std::move(t).value());
  }
};

TEST(RTreeTest, RejectsBadInput) {
  storage::PageManager pm;
  auto t1 = RTree::BulkLoad({}, {}, &pm, {}, nullptr);
  EXPECT_FALSE(t1.ok());
  const auto obj = uncertain::UncertainObject::WithGaussianPdf(0, {{1, 1}, 1});
  auto t2 = RTree::BulkLoad({obj}, {}, &pm, {}, nullptr);
  EXPECT_FALSE(t2.ok());  // size mismatch
  auto t3 = RTree::BulkLoad({obj}, {0}, &pm, {1}, nullptr);
  EXPECT_FALSE(t3.ok());  // fanout < 2
  auto t4 = RTree::BulkLoad({obj}, {0}, &pm, {10000}, nullptr);
  EXPECT_FALSE(t4.ok());  // fanout too large for the page
}

TEST(RTreeTest, StructureInvariants) {
  Fixture f;
  f.Build(1234);
  const RTree& tree = *f.tree;
  EXPECT_EQ(tree.num_objects(), 1234u);
  // Leaf pages hold at most fanout entries and at least 1.
  size_t total = 0;
  for (size_t i = 0; i < tree.num_leaf_pages(); ++i) {
    std::vector<LeafEntry> entries;
    ASSERT_TRUE(tree.ReadLeaf(tree.leaf_pages()[i], &entries).ok());
    EXPECT_GE(entries.size(), 1u);
    EXPECT_LE(entries.size(), 100u);
    total += entries.size();
    // Every entry's MBC box is inside the leaf MBR.
    for (const LeafEntry& e : entries) {
      EXPECT_TRUE(tree.leaf_mbrs()[i].ContainsBox(e.mbc.Mbr()));
    }
  }
  EXPECT_EQ(total, 1234u);
  // 1234 objects at 100 per page need at least 13 leaves; STR tiling may
  // leave a short page per slab, so allow a small surplus.
  EXPECT_GE(tree.num_leaf_pages(), 13u);
  EXPECT_LE(tree.num_leaf_pages(), 20u);
  EXPECT_EQ(tree.height(), 2);
  EXPECT_GT(tree.MemoryBytes(), 0u);
}

TEST(RTreeTest, NodeMbrsContainChildren) {
  Fixture f;
  f.Build(5000, 17, 10);  // small fanout -> several levels
  const RTree& tree = *f.tree;
  EXPECT_GE(tree.height(), 3);
  for (const RTree::Node& node : tree.nodes()) {
    for (uint32_t c : node.children) {
      const geom::Box& child =
          node.leaf_children ? tree.leaf_mbrs()[c] : tree.nodes()[c].mbr;
      EXPECT_TRUE(node.mbr.ContainsBox(child));
    }
  }
}

TEST(RTreeTest, KnnMatchesBruteForce) {
  Fixture f;
  f.Build(2000, 11);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const int k = 1 + static_cast<int>(rng.UniformInt(0, 30));
    const auto got = f.tree->KNearestByDistMin(q, k);
    ASSERT_EQ(got.size(), static_cast<size_t>(k));

    std::vector<double> brute;
    for (const auto& o : f.objects) brute.push_back(o.DistMin(q));
    std::sort(brute.begin(), brute.end());
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(got[static_cast<size_t>(i)].mbc.DistMin(q),
                  brute[static_cast<size_t>(i)], 1e-9)
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(RTreeTest, KnnWithKLargerThanN) {
  Fixture f;
  f.Build(50);
  const auto got = f.tree->KNearestByDistMin({5000, 5000}, 500);
  EXPECT_EQ(got.size(), 50u);
}

TEST(RTreeTest, CentersInRangeMatchesBruteForce) {
  Fixture f;
  f.Build(3000, 23);
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point c{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const double radius = rng.Uniform(50, 2000);
    auto got = f.tree->CentersInRange(c, radius);
    std::vector<int> got_ids;
    for (const auto& e : got) got_ids.push_back(e.id);
    std::sort(got_ids.begin(), got_ids.end());

    std::vector<int> want_ids;
    for (const auto& o : f.objects) {
      if (geom::Distance(o.center(), c) <= radius) want_ids.push_back(o.id());
    }
    EXPECT_EQ(got_ids, want_ids) << "trial " << trial;
  }
}

TEST(RTreeTest, LeafReadsCounted) {
  Fixture f;
  f.Build(500);
  f.stats.Reset();
  std::vector<LeafEntry> entries;
  ASSERT_TRUE(f.tree->ReadLeaf(f.tree->leaf_pages()[0], &entries).ok());
  EXPECT_EQ(f.stats.Get(Ticker::kRtreeLeafReads), 1u);
  EXPECT_EQ(f.stats.Get(Ticker::kPageReads), 1u);
}

TEST(RTreeTest, SingleObjectTree) {
  Fixture f;
  f.Build(1);
  EXPECT_EQ(f.tree->num_leaf_pages(), 1u);
  const auto got = f.tree->KNearestByDistMin({0, 0}, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 0);
}

}  // namespace
}  // namespace rtree
}  // namespace uvd
