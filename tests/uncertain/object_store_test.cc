// Tests for the disk-resident object store.
#include "uncertain/object_store.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace uvd {
namespace uncertain {
namespace {

std::vector<UncertainObject> MakeObjects(int n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<UncertainObject> objs;
  for (int i = 0; i < n; ++i) {
    objs.push_back(UncertainObject::WithGaussianPdf(
        i, geom::Circle({rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                        rng.Uniform(1, 30))));
  }
  return objs;
}

TEST(ObjectStoreTest, RoundTrip) {
  storage::PageManager pm;
  ObjectStore store(&pm);
  const auto objs = MakeObjects(100);
  std::vector<ObjectPtr> ptrs;
  ASSERT_TRUE(store.BulkLoad(objs, &ptrs).ok());
  ASSERT_EQ(ptrs.size(), 100u);

  for (int i : {0, 1, 42, 99}) {
    auto fetched = store.Fetch(ptrs[static_cast<size_t>(i)]);
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    const UncertainObject& o = fetched.value();
    EXPECT_EQ(o.id(), objs[static_cast<size_t>(i)].id());
    EXPECT_DOUBLE_EQ(o.center().x, objs[static_cast<size_t>(i)].center().x);
    EXPECT_DOUBLE_EQ(o.radius(), objs[static_cast<size_t>(i)].radius());
    EXPECT_EQ(o.pdf().num_bars(), objs[static_cast<size_t>(i)].pdf().num_bars());
    for (int b = 0; b < o.pdf().num_bars(); ++b) {
      EXPECT_DOUBLE_EQ(o.pdf().bars()[static_cast<size_t>(b)],
                       objs[static_cast<size_t>(i)].pdf().bars()[static_cast<size_t>(b)]);
    }
  }
}

TEST(ObjectStoreTest, PacksMultipleRecordsPerPage) {
  storage::PageManager pm(4096);
  ObjectStore store(&pm);
  const auto objs = MakeObjects(100);
  std::vector<ObjectPtr> ptrs;
  ASSERT_TRUE(store.BulkLoad(objs, &ptrs).ok());
  // Record = 192 bytes -> 21 per 4 KB page -> 5 pages for 100 objects.
  EXPECT_EQ(store.num_pages(), 5u);
}

TEST(ObjectStoreTest, FetchCostsOnePageRead) {
  Stats stats;
  storage::PageManager pm(4096, &stats);
  ObjectStore store(&pm);
  const auto objs = MakeObjects(50);
  std::vector<ObjectPtr> ptrs;
  ASSERT_TRUE(store.BulkLoad(objs, &ptrs).ok());
  stats.Reset();
  ASSERT_TRUE(store.Fetch(ptrs[30]).ok());
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 1u);
}

TEST(ObjectStoreTest, EmptyLoad) {
  storage::PageManager pm;
  ObjectStore store(&pm);
  std::vector<ObjectPtr> ptrs;
  ASSERT_TRUE(store.BulkLoad({}, &ptrs).ok());
  EXPECT_TRUE(ptrs.empty());
  EXPECT_EQ(store.Fetch(0).status().code(), StatusCode::kInternal);
}

TEST(ObjectStoreTest, BadSlotRejected) {
  storage::PageManager pm;
  ObjectStore store(&pm);
  const auto objs = MakeObjects(5);
  std::vector<ObjectPtr> ptrs;
  ASSERT_TRUE(store.BulkLoad(objs, &ptrs).ok());
  const ObjectPtr bad = ObjectStore::MakePtr(0, 9999);
  EXPECT_FALSE(store.Fetch(bad).ok());
}

TEST(ObjectStoreTest, AppendAfterBulkLoad) {
  storage::PageManager pm;
  ObjectStore store(&pm);
  const auto objs = MakeObjects(25);
  std::vector<ObjectPtr> ptrs;
  ASSERT_TRUE(store.BulkLoad(objs, &ptrs).ok());
  const size_t pages_before = store.num_pages();
  // 25 records on pages of 21: the tail page has room for 17 more.
  const auto extra = MakeObjects(5, 99);
  for (const auto& o : extra) {
    auto ptr = store.Append(o);
    ASSERT_TRUE(ptr.ok());
    auto fetched = store.Fetch(ptr.value());
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value().id(), o.id());
    EXPECT_DOUBLE_EQ(fetched.value().center().x, o.center().x);
  }
  EXPECT_EQ(store.num_pages(), pages_before);  // reused tail space
  // Earlier records still intact.
  auto first = store.Fetch(ptrs[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().id(), 0);
}

TEST(ObjectStoreTest, AppendIntoEmptyStore) {
  storage::PageManager pm;
  ObjectStore store(&pm);
  const auto objs = MakeObjects(1);
  auto ptr = store.Append(objs[0]);
  ASSERT_TRUE(ptr.ok());
  auto fetched = store.Fetch(ptr.value());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().id(), 0);
}

TEST(ObjectStoreTest, AppendGrowsPages) {
  storage::PageManager pm(4096);
  ObjectStore store(&pm);
  std::vector<ObjectPtr> ptrs;
  ASSERT_TRUE(store.BulkLoad(MakeObjects(21), &ptrs).ok());  // exactly 1 page
  EXPECT_EQ(store.num_pages(), 1u);
  auto ptr = store.Append(MakeObjects(1, 5)[0]);
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(store.num_pages(), 2u);
}

TEST(ObjectStoreTest, PtrPacking) {
  const ObjectPtr p = ObjectStore::MakePtr(7, 13);
  EXPECT_EQ(ObjectStore::PtrPage(p), 7u);
  EXPECT_EQ(ObjectStore::PtrSlot(p), 13u);
}

}  // namespace
}  // namespace uncertain
}  // namespace uvd
