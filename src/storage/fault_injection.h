// Fault-injecting page manager for failure testing (in the spirit of
// rocksdb's FaultInjectionTestFS): fail reads/writes on demand and verify
// that errors propagate through every query and construction path instead
// of silently corrupting answers.
#ifndef UVD_STORAGE_FAULT_INJECTION_H_
#define UVD_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <limits>

#include "storage/page_manager.h"

namespace uvd {
namespace storage {

/// PageManager that starts failing I/O after a configurable countdown.
class FaultInjectionPageManager : public PageManager {
 public:
  explicit FaultInjectionPageManager(size_t page_size = kDefaultPageSize,
                                     Stats* stats = nullptr)
      : PageManager(page_size, stats) {}

  /// Every read after the next `countdown` successful ones fails.
  void FailReadsAfter(uint64_t countdown) { reads_until_failure_ = countdown; }
  /// Every write after the next `countdown` successful ones fails.
  void FailWritesAfter(uint64_t countdown) { writes_until_failure_ = countdown; }
  /// Stops injecting faults.
  void Heal() {
    reads_until_failure_ = kNever;
    writes_until_failure_ = kNever;
  }

  uint64_t injected_read_faults() const { return injected_read_faults_; }
  uint64_t injected_write_faults() const { return injected_write_faults_; }

  Status Read(PageId id, std::vector<uint8_t>* out) const override {
    if (reads_until_failure_ == 0) {
      ++injected_read_faults_;
      return Status::IOError("injected read fault");
    }
    if (reads_until_failure_ != kNever) --reads_until_failure_;
    return PageManager::Read(id, out);
  }

  Status Write(PageId id, const std::vector<uint8_t>& data) override {
    if (writes_until_failure_ == 0) {
      ++injected_write_faults_;
      return Status::IOError("injected write fault");
    }
    if (writes_until_failure_ != kNever) --writes_until_failure_;
    return PageManager::Write(id, data);
  }

 private:
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  mutable uint64_t reads_until_failure_ = kNever;
  mutable uint64_t writes_until_failure_ = kNever;
  mutable uint64_t injected_read_faults_ = 0;
  mutable uint64_t injected_write_faults_ = 0;
};

}  // namespace storage
}  // namespace uvd

#endif  // UVD_STORAGE_FAULT_INJECTION_H_
