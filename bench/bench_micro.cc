// Micro-benchmarks (google-benchmark) for the primitive operations behind
// the system: UV-edge math, envelope insertion, lens areas, distance CDFs,
// qualification integration, page I/O, R-tree traversals, point location.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "datagen/workload.h"
#include "geom/circle_ops.h"
#include "geom/envelope.h"
#include "geom/hyperbola.h"
#include "uncertain/distance_dist.h"
#include "uncertain/qualification.h"

namespace {

using namespace uvd;

void BM_HyperbolaFromObjects(benchmark::State& state) {
  const geom::Circle oi({0, 0}, 10), oj({100, 35}, 15);
  for (auto _ : state) {
    auto h = geom::Hyperbola::FromObjects(oi, oj);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HyperbolaFromObjects);

void BM_OutsideRegionTest(benchmark::State& state) {
  const geom::Circle oi({0, 0}, 10), oj({100, 35}, 15);
  const geom::Point p{80, 20};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oi.DistMin(p) > oj.DistMax(p));
  }
}
BENCHMARK(BM_OutsideRegionTest);

void BM_EnvelopeInsert(benchmark::State& state) {
  const int num_constraints = static_cast<int>(state.range(0));
  Rng rng(7);
  const geom::Box domain({0, 0}, {10000, 10000});
  const geom::Circle anchor({5000, 5000}, 20);
  std::vector<geom::RadialConstraint> constraints;
  for (int j = 0; j < num_constraints; ++j) {
    constraints.push_back(geom::RadialConstraint::ForObjects(
        anchor,
        geom::Circle({rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, 20), j));
  }
  for (auto _ : state) {
    geom::RadialEnvelope env(anchor.center, domain);
    for (const auto& c : constraints) env.Insert(c);
    benchmark::DoNotOptimize(env.arcs().size());
  }
}
BENCHMARK(BM_EnvelopeInsert)->Arg(8)->Arg(64)->Arg(512);

void BM_LensArea(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::LensArea(1.3, 1.0, 1.6));
  }
}
BENCHMARK(BM_LensArea);

void BM_DistanceCdf(benchmark::State& state) {
  const auto obj = uncertain::UncertainObject::WithGaussianPdf(0, {{100, 0}, 20});
  const uncertain::DistanceDistribution dist(obj, {0, 0});
  double d = 80;
  for (auto _ : state) {
    d = 80 + (d > 120 ? -40 : 0.1);
    benchmark::DoNotOptimize(dist.Cdf(d));
  }
}
BENCHMARK(BM_DistanceCdf);

void BM_Qualification(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<uncertain::UncertainObject> objs;
  for (int i = 0; i < candidates; ++i) {
    objs.push_back(uncertain::UncertainObject::WithGaussianPdf(
        i, {{rng.Uniform(-80, 80), rng.Uniform(-80, 80)}, 40}));
  }
  std::vector<const uncertain::UncertainObject*> refs;
  for (const auto& o : objs) refs.push_back(&o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uncertain::ComputeQualificationProbabilities(refs, {0, 0}));
  }
}
BENCHMARK(BM_Qualification)->Arg(2)->Arg(8)->Arg(32);

void BM_PageReadWrite(benchmark::State& state) {
  storage::PageManager pm(4096);
  const storage::PageId p = pm.Allocate();
  std::vector<uint8_t> data(4096, 0xAB);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.Write(p, data));
    benchmark::DoNotOptimize(pm.Read(p, &out));
  }
}
BENCHMARK(BM_PageReadWrite);

struct IndexedFixture {
  Stats stats;
  std::unique_ptr<core::UVDiagram> diagram;
  std::vector<geom::Point> queries;

  static IndexedFixture& Get() {
    static IndexedFixture f = [] {
      IndexedFixture fx;
      datagen::DatasetOptions opts;
      opts.count = 10000;
      opts.seed = 42;
      fx.diagram = std::make_unique<core::UVDiagram>(
          core::UVDiagram::Build(datagen::GenerateUniform(opts),
                                 datagen::DomainFor(opts), {}, &fx.stats)
              .ValueOrDie());
      fx.queries = datagen::UniformQueryPoints(256, fx.diagram->domain(), 7);
      return fx;
    }();
    return f;
  }
};

void BM_RtreeKnn(benchmark::State& state) {
  auto& f = IndexedFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = f.queries[i++ % f.queries.size()];
    benchmark::DoNotOptimize(f.diagram->rtree().KNearestByDistMin(q, 300));
  }
}
BENCHMARK(BM_RtreeKnn);

void BM_UvIndexPointLocation(benchmark::State& state) {
  auto& f = IndexedFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = f.queries[i++ % f.queries.size()];
    benchmark::DoNotOptimize(f.diagram->index().LocateLeaf(q));
  }
}
BENCHMARK(BM_UvIndexPointLocation);

void BM_UvIndexFullPnn(benchmark::State& state) {
  auto& f = IndexedFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = f.queries[i++ % f.queries.size()];
    benchmark::DoNotOptimize(f.diagram->QueryPnn(q).ValueOrDie());
  }
}
BENCHMARK(BM_UvIndexFullPnn);

void BM_RtreeFullPnn(benchmark::State& state) {
  auto& f = IndexedFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = f.queries[i++ % f.queries.size()];
    benchmark::DoNotOptimize(f.diagram->QueryPnnWithRtree(q).ValueOrDie());
  }
}
BENCHMARK(BM_RtreeFullPnn);

}  // namespace

BENCHMARK_MAIN();
