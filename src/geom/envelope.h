// Lower envelope of radial constraints around an anchor center: the exact
// UV-cell (DESIGN.md Section 4). The boundary is a circular sequence of
// hyperbolic arcs (object constraints) and straight segments (domain walls),
// each arc described by the angular interval it owns.
//
// Inserting constraints one at a time is exactly the loop of the paper's
// Algorithm 1 (shrinking the possible region P_i by one outside region
// X_i(j) at a time); the envelope is the result of those subtractions.
#ifndef UVD_GEOM_ENVELOPE_H_
#define UVD_GEOM_ENVELOPE_H_

#include <vector>

#include "common/stats.h"
#include "geom/box.h"
#include "geom/point.h"
#include "geom/radial.h"

namespace uvd {
namespace geom {

/// One maximal angular interval [begin, end) of the envelope owned by a
/// single constraint. `cidx` indexes RadialEnvelope::constraints();
/// kUnbounded marks directions where no constraint bounds the cell (never
/// present once the domain walls are inserted).
struct EnvelopeArc {
  double begin = 0.0;
  double end = 0.0;
  int cidx = -1;

  static constexpr int kUnbounded = -1;
};

/// \brief Star-shaped region around `center`: { center + t*u : t <= rho(u) }
/// where rho is the pointwise minimum of all inserted constraints.
///
/// The constructor installs the four domain-wall constraints, so a fresh
/// envelope equals the whole domain D — matching Algorithm 1 Step 2
/// ("P_i <- D").
class RadialEnvelope {
 public:
  /// Creates the envelope of an anchor centered at `center` (must lie in
  /// `domain`). `stats`, if given, receives Ticker::kEnvelopeInsertions.
  RadialEnvelope(Point center, const Box& domain, Stats* stats = nullptr);

  /// Shrinks the envelope by one constraint (Algorithm 1 Step 6:
  /// P_i <- P_i - X_i(j)). Returns true iff the constraint now owns at
  /// least one boundary arc (i.e. it changed the region).
  bool Insert(const RadialConstraint& c);

  /// Boundary distance from the anchor center along angle theta.
  double RhoAt(double theta) const;

  /// Owner id of the boundary at angle theta (object id or WallOwner).
  int OwnerAt(double theta) const;

  /// True iff p belongs to the (closed) region.
  bool Contains(const Point& p) const;

  /// Sufficient containment test for a whole box: true implies every point
  /// of r lies in the region (compares the box's max distance from the
  /// anchor against the minimum boundary distance over the angular window
  /// the box subtends). May return false for boxes that are contained but
  /// hug the boundary; never returns true for a box that is not contained.
  bool ContainsBox(const Box& r) const;

  /// Minimum of rho over the (normalized) angular interval
  /// [begin, begin + extent], extent in [0, 2*pi].
  double MinRhoOverWindow(double begin, double extent) const;

  /// Maximum distance d of the region from the anchor center (paper
  /// Lemma 2). Attained at an arc endpoint because each arc's radial
  /// function is monotone in the angular distance from its axis.
  double MaxVertexDistance() const;

  /// Boundary vertices (arc endpoints) in angular order. The region is
  /// contained in the convex hull of these vertices because every
  /// hyperbolic arc bows toward the anchor (paper Lemma 3's CH(P_i)).
  std::vector<Point> Vertices() const;

  /// Distinct ids of objects owning at least one boundary arc: exactly the
  /// r-objects F_i of the paper when all n-1 constraints were inserted.
  /// Wall owners are excluded.
  std::vector<int> OwnerObjects() const;

  /// Region area via the polar formula integral 1/2 * rho(theta)^2 dtheta
  /// (composite Simpson per arc; the integrand is smooth inside each arc).
  double Area() const;

  /// Conservative bounding box from dense boundary sampling plus vertices.
  Box BoundingBox(int samples_per_arc = 32) const;

  /// Boundary polyline for rendering / export.
  std::vector<Point> ToPolyline(int samples_per_arc = 16) const;

  const Point& center() const { return center_; }
  const Box& domain() const { return domain_; }
  const std::vector<EnvelopeArc>& arcs() const { return arcs_; }
  const std::vector<RadialConstraint>& constraints() const { return constraints_; }

 private:
  int ArcIndexAt(double theta) const;
  double RhoOfArc(const EnvelopeArc& arc, double theta) const;

  Point center_;
  Box domain_;
  Stats* stats_;
  std::vector<RadialConstraint> constraints_;
  std::vector<EnvelopeArc> arcs_;
  // Insert scratch, reused across calls: an envelope takes dozens of
  // inserts and a build runs hundreds of thousands of envelopes, so
  // per-call vectors dominate the allocator otherwise.
  std::vector<double> cand_scratch_;
  std::vector<double> angle_scratch_;
  std::vector<int> owner_scratch_;
  std::vector<EnvelopeArc> arc_scratch_;
};

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_ENVELOPE_H_
