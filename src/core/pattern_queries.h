// Nearest-neighbor pattern analysis (paper Sec. V-C):
//   1. UV-cell retrieval — approximate area and extent of an object's
//      UV-cell from the leaf regions associated with it.
//   2. UV-partition retrieval — all leaf regions intersecting a query
//      rectangle R with their answer-object density (count / area).
#ifndef UVD_CORE_PATTERN_QUERIES_H_
#define UVD_CORE_PATTERN_QUERIES_H_

#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/uv_index.h"
#include "geom/box.h"

namespace uvd {
namespace core {

/// One grid partition returned by the UV-partition query.
struct UvPartition {
  geom::Box region;
  size_t object_count = 0;
  double density = 0.0;  ///< object_count / region area
  uint32_t leaf = 0;     ///< Index of the leaf node (for cache warm-up).
};

/// Sec. V-C query 2: leaf regions intersecting `range`, with densities
/// taken from the offline per-leaf counters (no page I/O).
std::vector<UvPartition> RetrieveUvPartitions(const UVIndex& index,
                                              const geom::Box& range,
                                              Stats* stats = nullptr);

/// Approximate UV-cell information assembled from the index.
struct UvCellSummary {
  double area = 0.0;      ///< Total area of the associated leaf regions.
  geom::Box extent;       ///< Union bounding box of those regions.
  size_t num_leaves = 0;  ///< Leaves whose lists contain the object.
};

/// Sec. V-C query 1: scan for leaves associated with `object_id`. With
/// `use_offline_lists` (the paper's sped-up variant) the in-memory lists
/// are used; otherwise every leaf's page chain is read (billed as I/O).
Result<UvCellSummary> RetrieveUvCellSummary(const UVIndex& index, int object_id,
                                            bool use_offline_lists = true,
                                            Stats* stats = nullptr);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_PATTERN_QUERIES_H_
