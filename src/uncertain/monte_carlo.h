// Sampling-based PNN evaluation (cf. [25] in the paper), used as an
// independent oracle to validate the numerical-integration probabilities.
#ifndef UVD_UNCERTAIN_MONTE_CARLO_H_
#define UVD_UNCERTAIN_MONTE_CARLO_H_

#include <vector>

#include "common/random.h"
#include "geom/point.h"
#include "uncertain/qualification.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace uncertain {

/// Draws a position for the object from its pdf.
geom::Point SamplePosition(const UncertainObject& obj, Rng* rng);

/// Estimates qualification probabilities by joint sampling: in each trial
/// every object takes a pdf-distributed position and the nearest one scores.
/// Returns answers for objects with at least one win, sorted by descending
/// probability.
std::vector<PnnAnswer> MonteCarloQualification(
    const std::vector<const UncertainObject*>& objects, const geom::Point& q,
    int trials, Rng* rng);

}  // namespace uncertain
}  // namespace uvd

#endif  // UVD_UNCERTAIN_MONTE_CARLO_H_
