// Query workloads: the paper evaluates 50 PNN queries with uniformly
// distributed query points (Sec. VI-A) and UV-partition queries over
// square regions of size 100-500 (Fig. 7(h)).
#ifndef UVD_DATAGEN_WORKLOAD_H_
#define UVD_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace uvd {
namespace datagen {

/// Uniform query points inside the domain.
std::vector<geom::Point> UniformQueryPoints(int count, const geom::Box& domain,
                                            uint64_t seed);

/// Square query regions with the given side length, fully inside the
/// domain.
std::vector<geom::Box> SquareQueryRegions(int count, const geom::Box& domain,
                                          double side, uint64_t seed);

/// Random-waypoint trajectory: a moving-NN query stream (Ali et al.,
/// probabilistic moving nearest-neighbor queries). Starts at a uniform
/// position, repeatedly picks a uniform waypoint and walks toward it in
/// steps of `step_length`, emitting every position; on arrival a new
/// waypoint is drawn. Consecutive probes are at most `step_length` apart,
/// so they tend to land in the same UV-cell — the workload the query
/// engine's cell cache is built for.
std::vector<geom::Point> TrajectoryQueryPoints(int count, const geom::Box& domain,
                                               double step_length, uint64_t seed);

}  // namespace datagen
}  // namespace uvd

#endif  // UVD_DATAGEN_WORKLOAD_H_
