#include "shard/shard_router.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace uvd {
namespace shard {

ShardRouter::ShardRouter(const ShardedUVDiagram& diagram,
                         const ShardRouterOptions& options)
    : diagram_(diagram), options_(options) {
  engines_.reserve(diagram.num_shards());
  for (size_t s = 0; s < diagram.num_shards(); ++s) {
    engines_.push_back(std::make_unique<query::QueryEngine>(diagram.ViewOfShard(s),
                                                            options_.engine));
  }
  // Default: one slot per shard, NOT capped at hardware concurrency — a
  // disk-bound shard spends its time blocked in page reads, so fanning all
  // shards even on few cores is what hides the latency (the sharding win).
  const int threads = options_.router_threads > 0
                          ? options_.router_threads
                          : static_cast<int>(diagram.num_shards());
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void ShardRouter::InvalidateCaches() {
  for (auto& engine : engines_) engine->InvalidateCache();
}

std::vector<query::QueryResult> ShardRouter::ExecuteBatch(
    const query::QueryBatch& batch) {
  const size_t num_shards = engines_.size();
  std::vector<query::QueryResult> results(batch.size());

  // Plan: per-shard sub-batches of (global index, query). Multi-shard
  // kinds appear in several plans and are merged below.
  struct Slot {
    size_t global;
    query::Query query;
  };
  std::vector<std::vector<Slot>> plan(num_shards);
  for (size_t i = 0; i < batch.size(); ++i) {
    const query::Query& q = batch[i];
    switch (q.kind) {
      case query::QueryKind::kPnn:
      case query::QueryKind::kAnswerIds: {
        const int s = diagram_.ShardIndexForPoint(q.point);
        plan[static_cast<size_t>(s)].push_back({i, q});
        break;
      }
      case query::QueryKind::kUvPartitions: {
        for (int s : diagram_.ShardsForRange(q.range)) {
          plan[static_cast<size_t>(s)].push_back({i, q});
        }
        // No intersecting shard: an unsharded index answers a disjoint
        // range with an empty list too, so the default result stands.
        break;
      }
      case query::QueryKind::kCellSummary: {
        std::vector<int> targets = diagram_.ShardsForObject(q.object_id);
        // Unregistered ids still need the canonical NotFound an unsharded
        // scan produces; any shard's scan yields it.
        if (targets.empty()) targets.push_back(0);
        for (int s : targets) {
          plan[static_cast<size_t>(s)].push_back({i, q});
        }
        break;
      }
    }
  }

  // Execute the non-empty sub-batches, concurrently across shards when the
  // router has a pool. Engines guarantee in-order sub-results, so each
  // shard's answers line up with its plan.
  std::vector<std::vector<query::QueryResult>> shard_results(num_shards);
  const auto run_shard = [&](size_t s) {
    query::QueryBatch sub;
    sub.reserve(plan[s].size());
    for (const Slot& slot : plan[s]) sub.push_back(slot.query);
    shard_results[s] = engines_[s]->ExecuteBatch(sub);
  };
  std::vector<size_t> active;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!plan[s].empty()) active.push_back(s);
  }
  if (pool_ == nullptr || active.size() <= 1) {
    for (size_t s : active) run_shard(s);
  } else {
    // Per-call completion tracking (WaitGroup, not the pool's global
    // Wait): two concurrent router batches share the pool without coupling
    // each other's latency to the slower batch's drain.
    std::atomic<size_t> next{0};
    const size_t tasks = std::min<size_t>(
        active.size(), static_cast<size_t>(pool_->num_threads()));
    auto done = std::make_shared<WaitGroup>(static_cast<int>(tasks));
    for (size_t t = 0; t < tasks; ++t) {
      pool_->Submit([&, done] {
        for (;;) {
          const size_t a = next.fetch_add(1, std::memory_order_relaxed);
          if (a >= active.size()) break;
          run_shard(active[a]);
        }
        done->Done();
      });
    }
    done->Wait();
  }

  // Reassemble positionally; ascending shard order makes multi-shard
  // merges deterministic for every thread configuration.
  std::vector<size_t> merged_so_far(batch.size(), 0);
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t k = 0; k < plan[s].size(); ++k) {
      const size_t i = plan[s][k].global;
      query::QueryResult& partial = shard_results[s][k];
      query::QueryResult& out = results[i];
      switch (batch[i].kind) {
        case query::QueryKind::kPnn:
        case query::QueryKind::kAnswerIds:
          out = std::move(partial);
          break;
        case query::QueryKind::kUvPartitions:
          out.partitions.insert(out.partitions.end(),
                                std::make_move_iterator(partial.partitions.begin()),
                                std::make_move_iterator(partial.partitions.end()));
          break;
        case query::QueryKind::kCellSummary: {
          // Merge found summaries (shard leaves are disjoint, so areas and
          // leaf counts add); keep NotFound only if every shard said so.
          const bool first = merged_so_far[i] == 0;
          if (first) out.status = partial.status;
          if (partial.status.ok()) {
            if (first || !out.status.ok()) {
              // First found shard (possibly after earlier NotFounds).
              out.status = Status::OK();
              out.cell_summary = core::UvCellSummary{};
              out.cell_summary.extent = geom::Box::Empty();
            }
            out.cell_summary.area += partial.cell_summary.area;
            out.cell_summary.num_leaves += partial.cell_summary.num_leaves;
            out.cell_summary.extent.ExpandToInclude(partial.cell_summary.extent);
          }
          ++merged_so_far[i];
          break;
        }
      }
    }
  }
  return results;
}

}  // namespace shard
}  // namespace uvd
