// Fixed-capacity page buffer pool with pin/unpin lifetimes and the same
// segmented-LRU (probationary/protected) admission policy QueryCache uses
// for decoded leaves — generalized down to raw pages so FilePageManager
// can keep a hot working set in RAM while the index itself lives in a
// checksummed paged file. New pages enter probationary on their first
// load; a re-reference promotes them to the protected segment; eviction
// always takes the probationary LRU tail first, so a one-pass scan (a
// cold-start bulk read, a full-index digest) cannot flush a query working
// set that has been referenced twice.
#ifndef UVD_STORAGE_BUFFER_POOL_H_
#define UVD_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page_manager.h"

namespace uvd {
namespace storage {

struct BufferPoolOptions {
  /// Maximum resident pages. 0 means UNBOUNDED — every page ever read
  /// stays resident (the "infinite pool" oracle configuration of
  /// tests/storage/buffer_pool_property_test.cc). Pinned frames are never
  /// evicted, so the pool can transiently exceed the capacity when more
  /// than `capacity_pages` frames are pinned at once.
  size_t capacity_pages = 0;
  /// Fraction of the capacity reserved for the protected (re-referenced)
  /// segment; 0 degenerates to plain LRU. Same knob and semantics as
  /// QueryCacheOptions::protected_fraction.
  double protected_fraction = 0.8;
};

/// One resident page. Lives in a list node so its address is stable across
/// LRU splices; BufferPool::PageRef holds a raw pointer to it.
struct BufferPoolFrame {
  PageId id = kInvalidPageId;
  std::vector<uint8_t> data;
  int pins = 0;
  bool is_protected = false;
  bool doomed = false;  // invalidated while pinned; freed at last unpin
};

/// \brief Pinnable segmented-LRU cache of page payloads over a backing
/// page reader.
///
/// The backing function is the miss path (typically PagedFile::ReadPage);
/// it runs OUTSIDE the pool lock, so two threads missing the same page may
/// both read it (duplicate I/O, identical bytes) rather than serializing
/// every miss behind one device read — the QueryCache loader discipline.
///
/// Accounting (billed to the Stats passed at construction, and mirrored in
/// exact local counters for tests): kBufferPoolHits for pins served from a
/// resident frame, kBufferPoolMisses for pins that went to the backing,
/// kBufferPoolEvictions for frames dropped to make room. Single-threaded,
/// the invariant  misses == size + evictions + invalidations  holds
/// exactly (every miss inserts a frame; every departure is an eviction or
/// an invalidation).
///
/// Thread safety: every method is safe for concurrent callers (one pool
/// mutex guards the frame table). Mutating a page (Put / Invalidate) while
/// another thread pins or reads THE SAME page is excluded by the
/// PageManager write contract, not by this lock — concurrent writers must
/// target distinct pages.
class BufferPool {
 public:
  using Backing = std::function<Status(PageId, std::vector<uint8_t>*)>;

  /// \brief Handle to a pinned frame. The payload reference stays valid —
  /// and the frame stays resident — until the ref is destroyed (frames
  /// live in list nodes, so pointers survive LRU splices).
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef();

    bool valid() const { return frame_ != nullptr; }
    /// Page payload, exactly page_size bytes. Safe to read without the
    /// pool lock: eviction skips pinned frames and same-page writes are
    /// excluded by contract.
    const std::vector<uint8_t>& data() const { return frame_->data; }

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, BufferPoolFrame* frame)
        : pool_(pool), frame_(frame) {}
    BufferPool* pool_ = nullptr;
    BufferPoolFrame* frame_ = nullptr;
  };

  BufferPool(const BufferPoolOptions& options, size_t page_size,
             Backing backing, Stats* stats = nullptr);

  /// Pins the page, loading it from the backing on a miss. The returned
  /// ref keeps the frame resident; drop it promptly — a pool whose every
  /// frame is pinned cannot evict and grows past its capacity.
  Result<PageRef> Pin(PageId id);

  /// Pin + copy + unpin: reads the page payload into *out.
  Status Read(PageId id, std::vector<uint8_t>* out);

  /// Write-through update: if the page is resident, its frame is
  /// overwritten with `data` zero-padded to page_size (recency state
  /// untouched). Absent pages are NOT admitted — the caller already has
  /// the bytes, and write traffic must not flush the read working set.
  void Put(PageId id, const std::vector<uint8_t>& data);

  /// Drops the page if resident. A pinned frame cannot be freed; it is
  /// unmapped immediately (future Pins miss) and reclaimed when the last
  /// ref drops.
  void Invalidate(PageId id);

  /// Invalidates every resident page.
  void Clear();

  size_t capacity_pages() const { return capacity_; }
  size_t size() const;            ///< Resident (mapped) frames.
  size_t protected_size() const;  ///< Frames in the protected segment.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  uint64_t invalidations() const;

 private:
  void Unpin(BufferPoolFrame* frame);
  /// Evicts unpinned frames (probationary tail first, then protected
  /// tail) until the mapped size fits the capacity. No-op when unbounded.
  void EvictToCapacity() UVD_REQUIRES(mu_);

  const size_t capacity_;            // 0 = unbounded
  const size_t protected_capacity_;  // <= capacity_ (0 when unbounded/plain)
  const size_t page_size_;
  const Backing backing_;
  Stats* const stats_;

  mutable Mutex mu_;
  // Both lists keep MRU at the front. The map is never iterated
  // (unordered iteration order is not deterministic —
  // scripts/check_determinism.py enforces this).
  std::list<BufferPoolFrame> probationary_ UVD_GUARDED_BY(mu_);
  std::list<BufferPoolFrame> protected_ UVD_GUARDED_BY(mu_);
  std::unordered_map<PageId, std::list<BufferPoolFrame>::iterator> map_
      UVD_GUARDED_BY(mu_);
  std::list<BufferPoolFrame> doomed_ UVD_GUARDED_BY(mu_);  // unmapped, pinned
  uint64_t hits_ UVD_GUARDED_BY(mu_) = 0;
  uint64_t misses_ UVD_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ UVD_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ UVD_GUARDED_BY(mu_) = 0;
};

}  // namespace storage
}  // namespace uvd

#endif  // UVD_STORAGE_BUFFER_POOL_H_
