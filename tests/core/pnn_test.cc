// Cross-path PNN tests: the UV-index path and the R-tree baseline must
// produce identical answer sets and probabilities; both must agree with
// Monte Carlo.
#include "core/pnn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "uncertain/monte_carlo.h"

namespace uvd {
namespace core {
namespace {

UVDiagram BuildDiagram(size_t n, uint64_t seed, double diameter = 40) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  opts.diameter = diameter;
  auto objects = datagen::GenerateUniform(opts);
  return UVDiagram::Build(std::move(objects), datagen::DomainFor(opts)).ValueOrDie();
}

TEST(PnnTest, UvIndexAndRtreeBaselineAgree) {
  const UVDiagram d = BuildDiagram(1200, 3);
  Rng rng(5);
  for (int t = 0; t < 30; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const auto via_uv = d.QueryPnn(q).ValueOrDie();
    const auto via_rtree = d.QueryPnnWithRtree(q).ValueOrDie();
    ASSERT_EQ(via_uv.size(), via_rtree.size()) << "t=" << t;
    for (size_t i = 0; i < via_uv.size(); ++i) {
      EXPECT_EQ(via_uv[i].id, via_rtree[i].id);
      EXPECT_NEAR(via_uv[i].probability, via_rtree[i].probability, 1e-12);
    }
  }
}

TEST(PnnTest, ProbabilitiesSumToOne) {
  const UVDiagram d = BuildDiagram(600, 7, /*diameter=*/80);
  Rng rng(9);
  for (int t = 0; t < 20; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const auto answers = d.QueryPnn(q).ValueOrDie();
    ASSERT_FALSE(answers.empty());
    double total = 0;
    for (const auto& a : answers) total += a.probability;
    EXPECT_NEAR(total, 1.0, 5e-3) << "t=" << t;
  }
}

TEST(PnnTest, AgreesWithMonteCarloOnDenseSpot) {
  // A dense cluster guarantees several answer objects.
  std::vector<uncertain::UncertainObject> objects;
  Rng gen(11);
  for (int i = 0; i < 12; ++i) {
    objects.push_back(uncertain::UncertainObject::WithGaussianPdf(
        i, {{5000 + gen.Uniform(-60, 60), 5000 + gen.Uniform(-60, 60)}, 40}));
  }
  const geom::Box domain({0, 0}, {10000, 10000});
  const UVDiagram d = UVDiagram::Build(objects, domain).ValueOrDie();
  const geom::Point q{5000, 5000};
  const auto answers = d.QueryPnn(q).ValueOrDie();
  ASSERT_GE(answers.size(), 2u);

  std::vector<const uncertain::UncertainObject*> refs;
  for (const auto& o : objects) refs.push_back(&o);
  Rng rng(13);
  const auto mc = uncertain::MonteCarloQualification(refs, q, 300000, &rng);
  for (const auto& a : answers) {
    double mc_p = 0;
    for (const auto& m : mc) {
      if (m.id == a.id) mc_p = m.probability;
    }
    EXPECT_NEAR(a.probability, mc_p, 0.015) << "object " << a.id;
  }
}

TEST(PnnTest, UvIndexReadsFewerLeafPagesThanRtree) {
  // The headline claim (Fig. 6(b)): point query on the UV-index touches one
  // leaf's short page chain; branch-and-prune touches many R-tree leaves.
  const UVDiagram d = BuildDiagram(4000, 17);
  const auto queries = std::vector<geom::Point>{
      {1234, 5678}, {8000, 2000}, {5000, 5000}, {300, 9700}, {6100, 4400}};
  d.stats().Reset();
  for (const auto& q : queries) ASSERT_TRUE(d.QueryPnn(q).ok());
  const uint64_t uv_reads = d.stats().Get(Ticker::kUvIndexLeafReads);
  d.stats().Reset();
  for (const auto& q : queries) ASSERT_TRUE(d.QueryPnnWithRtree(q).ok());
  const uint64_t rtree_reads = d.stats().Get(Ticker::kRtreeLeafReads);
  EXPECT_LT(uv_reads, rtree_reads);
}

TEST(PnnTest, BreakdownComponentsAccumulate) {
  const UVDiagram d = BuildDiagram(800, 19);
  rtree::PnnBreakdown uv_bd, rt_bd;
  Rng rng(21);
  for (int t = 0; t < 10; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    ASSERT_TRUE(d.QueryPnn(q, &uv_bd).ok());
    ASSERT_TRUE(d.QueryPnnWithRtree(q, &rt_bd).ok());
  }
  EXPECT_GT(uv_bd.Total(), 0.0);
  EXPECT_GT(rt_bd.Total(), 0.0);
  EXPECT_GT(uv_bd.computation_seconds, 0.0);
  EXPECT_GT(rt_bd.index_seconds, 0.0);
}

TEST(PnnTest, EveryAnswerHasPositiveProbability) {
  const UVDiagram d = BuildDiagram(700, 23, /*diameter=*/60);
  Rng rng(25);
  for (int t = 0; t < 20; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    for (const auto& a : d.QueryPnn(q).ValueOrDie()) {
      EXPECT_GT(a.probability, 0.0);
      EXPECT_LE(a.probability, 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace uvd
