// Fig. 6(b): PNN index I/O (leaf pages read per query) vs |O|. Paper
// shape: R-tree I/O grows with |O| (about 7x the UV-index at 70K); the
// UV-index stays nearly flat around one page chain per query.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 6(b): T_q (I/O) vs |O|",
                     "index leaf pages read per PNN query");
  std::printf("%10s %12s %12s %12s %12s\n", "|O|", "UV leaf I/O", "R-tree I/O",
              "UV obj I/O", "R-tree objIO");
  for (size_t n : bench::SizeSweep()) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = 42;
    Stats stats;
    auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                       datagen::DomainFor(opts), {}, &stats);
    const auto queries =
        datagen::UniformQueryPoints(bench::kNumQueries, diagram.domain(), 7);
    const auto r = bench::MeasurePnn(diagram, queries);
    std::printf("%10zu %12.2f %12.2f %12.2f %12.2f\n", n, r.uv_leaf_io,
                r.rtree_leaf_io, r.uv_object_io, r.rtree_object_io);
  }
  return 0;
}
