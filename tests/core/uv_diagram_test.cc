// Facade tests: build validation, option plumbing, end-to-end behaviour.
#include "core/uv_diagram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "datagen/generators.h"
#include "datagen/workload.h"

namespace uvd {
namespace core {
namespace {

TEST(UvDiagramTest, RejectsEmptyDataset) {
  auto d = UVDiagram::Build({}, geom::Box({0, 0}, {10, 10}));
  EXPECT_FALSE(d.ok());
}

TEST(UvDiagramTest, RejectsOutOfOrderIds) {
  std::vector<uncertain::UncertainObject> objs;
  objs.push_back(uncertain::UncertainObject::WithGaussianPdf(1, {{5, 5}, 1}));
  auto d = UVDiagram::Build(std::move(objs), geom::Box({0, 0}, {10, 10}));
  EXPECT_FALSE(d.ok());
}

TEST(UvDiagramTest, RejectsCentersOutsideDomain) {
  std::vector<uncertain::UncertainObject> objs;
  objs.push_back(uncertain::UncertainObject::WithGaussianPdf(0, {{50, 5}, 1}));
  auto d = UVDiagram::Build(std::move(objs), geom::Box({0, 0}, {10, 10}));
  EXPECT_FALSE(d.ok());
}

TEST(UvDiagramTest, BuildPopulatesEverything) {
  datagen::DatasetOptions opts;
  opts.count = 500;
  opts.seed = 3;
  auto objects = datagen::GenerateUniform(opts);
  const auto domain = datagen::DomainFor(opts);
  auto d = UVDiagram::Build(std::move(objects), domain).ValueOrDie();
  EXPECT_EQ(d.objects().size(), 500u);
  EXPECT_GT(d.index().num_leaves(), 0u);
  EXPECT_GT(d.rtree().num_leaf_pages(), 0u);
  EXPECT_GT(d.store().num_pages(), 0u);
  EXPECT_GT(d.build_stats().total_seconds, 0.0);
  EXPECT_EQ(d.options().method, BuildMethod::kIC);
}

TEST(UvDiagramTest, ExternalStatsAreUsed) {
  Stats stats;
  datagen::DatasetOptions opts;
  opts.count = 200;
  auto objects = datagen::GenerateUniform(opts);
  auto d = UVDiagram::Build(std::move(objects), datagen::DomainFor(opts), {}, &stats)
               .ValueOrDie();
  EXPECT_GT(stats.Get(Ticker::kEnvelopeInsertions), 0u);
  stats.Reset();
  ASSERT_TRUE(d.QueryPnn({5000, 5000}).ok());
  EXPECT_GT(stats.Get(Ticker::kUvIndexLeafReads), 0u);
}

TEST(UvDiagramTest, WorksWithAllBuildMethods) {
  datagen::DatasetOptions opts;
  opts.count = 150;
  opts.seed = 5;
  const auto domain = datagen::DomainFor(opts);
  const auto queries = datagen::UniformQueryPoints(10, domain, 99);
  std::vector<std::vector<int>> per_method;
  for (BuildMethod m : {BuildMethod::kBasic, BuildMethod::kICR, BuildMethod::kIC}) {
    UVDiagram::Options options;
    options.method = m;
    auto d = UVDiagram::Build(datagen::GenerateUniform(opts), domain, options)
                 .ValueOrDie();
    std::vector<int> all_ids;
    for (const auto& q : queries) {
      const auto ids = d.AnswerObjectIds(q).ValueOrDie();
      all_ids.insert(all_ids.end(), ids.begin(), ids.end());
    }
    per_method.push_back(std::move(all_ids));
  }
  EXPECT_EQ(per_method[0], per_method[1]);
  EXPECT_EQ(per_method[0], per_method[2]);
}

TEST(UvDiagramTest, MoveSemantics) {
  datagen::DatasetOptions opts;
  opts.count = 100;
  auto objects = datagen::GenerateUniform(opts);
  auto d = UVDiagram::Build(std::move(objects), datagen::DomainFor(opts)).ValueOrDie();
  UVDiagram moved = std::move(d);
  const auto answers = moved.QueryPnn({5000, 5000}).ValueOrDie();
  EXPECT_FALSE(answers.empty());
}

TEST(UvDiagramTest, ConcurrentRtreeQueriesAfterInsertDoNotRace) {
  // Regression: RefreshRtreeIfStale used to check and mutate rtree_ /
  // rtree_stale_ under `const` with no synchronization, so concurrent
  // QueryPnnWithRtree callers raced on the staleness flag (and, were the
  // tree ever left stale, on the rebuild itself). The check-and-rebuild is
  // now serialized behind rtree_mu_; this test drives the concurrent
  // refresh path after an insert and runs in the TSan CI job.
  datagen::DatasetOptions opts;
  opts.count = 250;
  opts.seed = 41;
  auto d = UVDiagram::Build(datagen::GenerateUniform(opts), datagen::DomainFor(opts))
               .ValueOrDie();
  const int new_id = static_cast<int>(d.objects().size());
  ASSERT_TRUE(d.InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                                 new_id, {{5000, 5000}, 30}))
                  .ok());  // marks the R-tree stale

  const auto queries = datagen::UniformQueryPoints(12, d.domain(), 43);
  std::vector<std::thread> threads;
  std::vector<int> answer_counts(4, 0);
  // Spin barrier: all threads hit their first (stale) query together, so
  // the racy interleaving actually materializes under TSan.
  std::atomic<int> ready{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&d, &queries, &answer_counts, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < 4) {
      }
      int count = 0;
      for (const auto& q : queries) {
        auto answers = d.QueryPnnWithRtree(q);
        ASSERT_TRUE(answers.ok());
        count += static_cast<int>(answers.value().size());
      }
      answer_counts[static_cast<size_t>(t)] = count;
    });
  }
  for (auto& t : threads) t.join();
  // Every thread saw the post-insert tree and identical answers.
  for (int t = 1; t < 4; ++t) EXPECT_EQ(answer_counts[0], answer_counts[t]);
  EXPECT_GT(answer_counts[0], 0);
}

TEST(UvDiagramTest, UniformPdfDatasets) {
  datagen::DatasetOptions opts;
  opts.count = 200;
  opts.pdf = uncertain::PdfKind::kUniform;
  auto objects = datagen::GenerateUniform(opts);
  auto d = UVDiagram::Build(std::move(objects), datagen::DomainFor(opts)).ValueOrDie();
  const auto answers = d.QueryPnn({5000, 5000}).ValueOrDie();
  ASSERT_FALSE(answers.empty());
  double total = 0;
  for (const auto& a : answers) total += a.probability;
  EXPECT_NEAR(total, 1.0, 5e-3);
}

}  // namespace
}  // namespace core
}  // namespace uvd
