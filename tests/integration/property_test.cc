// Parameterized property sweeps over the whole pipeline: for every
// (dataset kind, |O|, diameter, construction method, T_theta) combination
// the index must answer PNN queries exactly like brute force, and the
// paper's structural invariants must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/random.h"
#include "core/uv_cell.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "datagen/real_like.h"
#include "datagen/workload.h"

namespace uvd {
namespace core {
namespace {

enum class DataKind { kUniform, kGaussian, kUtility, kRoads, kRrlines };

const char* DataKindName(DataKind k) {
  switch (k) {
    case DataKind::kUniform:
      return "uniform";
    case DataKind::kGaussian:
      return "gaussian";
    case DataKind::kUtility:
      return "utility";
    case DataKind::kRoads:
      return "roads";
    case DataKind::kRrlines:
      return "rrlines";
  }
  return "?";
}

std::vector<uncertain::UncertainObject> MakeData(DataKind kind,
                                                 datagen::DatasetOptions opts) {
  switch (kind) {
    case DataKind::kUniform:
      return datagen::GenerateUniform(opts);
    case DataKind::kGaussian:
      return datagen::GenerateGaussianCloud(opts, /*sigma=*/opts.domain_size / 6);
    case DataKind::kUtility:
      return datagen::GenerateRealLike(datagen::RealDataset::kUtility, opts);
    case DataKind::kRoads:
      return datagen::GenerateRealLike(datagen::RealDataset::kRoads, opts);
    case DataKind::kRrlines:
      return datagen::GenerateRealLike(datagen::RealDataset::kRrlines, opts);
  }
  return {};
}

std::vector<int> BruteAnswers(const std::vector<uncertain::UncertainObject>& objs,
                              const geom::Point& q) {
  double d_minmax = std::numeric_limits<double>::infinity();
  for (const auto& o : objs) d_minmax = std::min(d_minmax, o.DistMax(q));
  std::vector<int> ids;
  for (const auto& o : objs) {
    if (o.DistMin(q) <= d_minmax) ids.push_back(o.id());
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Sweep 1: dataset kind x diameter, IC method (the default configuration).
// ---------------------------------------------------------------------------
using DataParam = std::tuple<DataKind, double>;

class DatasetPnnProperty : public ::testing::TestWithParam<DataParam> {};

TEST_P(DatasetPnnProperty, IndexAnswersEqualBruteForce) {
  const auto [kind, diameter] = GetParam();
  datagen::DatasetOptions opts;
  opts.count = 600;
  opts.diameter = diameter;
  opts.seed = 1234;
  auto objects = MakeData(kind, opts);
  const geom::Box domain = datagen::DomainFor(opts);
  auto diagram = UVDiagram::Build(objects, domain).ValueOrDie();
  for (const auto& q : datagen::UniformQueryPoints(25, domain, 99)) {
    EXPECT_EQ(diagram.AnswerObjectIds(q).ValueOrDie(), BruteAnswers(objects, q));
  }
}

TEST_P(DatasetPnnProperty, EveryObjectAppearsInSomeLeaf) {
  const auto [kind, diameter] = GetParam();
  datagen::DatasetOptions opts;
  opts.count = 400;
  opts.diameter = diameter;
  opts.seed = 77;
  auto objects = MakeData(kind, opts);
  auto diagram = UVDiagram::Build(objects, datagen::DomainFor(opts)).ValueOrDie();
  // Every object's cell contains its own uncertainty region, so every
  // object must be associated with at least one leaf.
  for (const auto& o : objects) {
    const auto summary = diagram.QueryUvCellSummary(o.id());
    EXPECT_TRUE(summary.ok()) << "object " << o.id();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetPnnProperty,
    ::testing::Combine(::testing::Values(DataKind::kUniform, DataKind::kGaussian,
                                         DataKind::kUtility, DataKind::kRoads,
                                         DataKind::kRrlines),
                       ::testing::Values(20.0, 40.0, 100.0)),
    [](const ::testing::TestParamInfo<DataParam>& info) {
      return std::string(DataKindName(std::get<0>(info.param))) + "_d" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Sweep 2: construction method x split threshold.
// ---------------------------------------------------------------------------
using ConfigParam = std::tuple<BuildMethod, double>;

class ConfigPnnProperty : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(ConfigPnnProperty, IndexAnswersEqualBruteForce) {
  const auto [method, t_theta] = GetParam();
  datagen::DatasetOptions opts;
  opts.count = 350;
  opts.seed = 555;
  auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);
  UVDiagram::Options options;
  options.method = method;
  options.index.split_threshold = t_theta;
  auto diagram = UVDiagram::Build(objects, domain, options).ValueOrDie();
  for (const auto& q : datagen::UniformQueryPoints(25, domain, 31)) {
    EXPECT_EQ(diagram.AnswerObjectIds(q).ValueOrDie(), BruteAnswers(objects, q));
  }
}

TEST_P(ConfigPnnProperty, NonleafBudgetHolds) {
  const auto [method, t_theta] = GetParam();
  datagen::DatasetOptions opts;
  opts.count = 350;
  opts.seed = 556;
  UVDiagram::Options options;
  options.method = method;
  options.index.split_threshold = t_theta;
  options.index.max_nonleaf = 20;
  auto diagram = UVDiagram::Build(datagen::GenerateUniform(opts),
                                  datagen::DomainFor(opts), options)
                     .ValueOrDie();
  EXPECT_LE(diagram.index().num_nonleaf(), 20);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndThresholds, ConfigPnnProperty,
    ::testing::Combine(::testing::Values(BuildMethod::kBasic, BuildMethod::kICR,
                                         BuildMethod::kIC),
                       ::testing::Values(0.0, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<ConfigParam>& info) {
      return std::string(BuildMethodName(std::get<0>(info.param))) + "_T" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

// ---------------------------------------------------------------------------
// Sweep 3: UV-cell properties across radii (including the Voronoi limit).
// ---------------------------------------------------------------------------
class CellRadiusProperty : public ::testing::TestWithParam<double> {};

TEST_P(CellRadiusProperty, CellsCoverTheDomain) {
  // Definition 1 consequence: every point of D lies in at least one
  // UV-cell; where cells overlap, brute force confirms multiple answers.
  const double radius = GetParam();
  Rng rng(42);
  std::vector<uncertain::UncertainObject> objects;
  for (int i = 0; i < 25; ++i) {
    objects.push_back(uncertain::UncertainObject::WithGaussianPdf(
        i, {{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, radius}));
  }
  const geom::Box domain({0, 0}, {1000, 1000});
  std::vector<UVCell> cells;
  for (size_t i = 0; i < objects.size(); ++i) {
    cells.push_back(BuildExactUvCell(objects, i, domain));
  }
  for (int t = 0; t < 1500; ++t) {
    const geom::Point q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    int covering = 0;
    for (const auto& c : cells) covering += c.Contains(q) ? 1 : 0;
    EXPECT_GE(covering, 1);
    EXPECT_EQ(static_cast<size_t>(covering), BruteAnswers(objects, q).size());
  }
}

TEST_P(CellRadiusProperty, CellAreasSumToAtLeastDomain) {
  // Cells cover D (with overlaps), so their areas sum to >= |D|.
  const double radius = GetParam();
  Rng rng(7);
  std::vector<uncertain::UncertainObject> objects;
  for (int i = 0; i < 20; ++i) {
    objects.push_back(uncertain::UncertainObject::WithGaussianPdf(
        i, {{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, radius}));
  }
  const geom::Box domain({0, 0}, {1000, 1000});
  double total = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    total += BuildExactUvCell(objects, i, domain).Area();
  }
  EXPECT_GE(total, domain.Area() * (1 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Radii, CellRadiusProperty,
                         ::testing::Values(0.0, 5.0, 25.0, 60.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "r" + std::to_string(
                                            static_cast<int>(info.param));
                         });

// ---------------------------------------------------------------------------
// Sweep 4: qualification probabilities across pdf kinds and densities.
// ---------------------------------------------------------------------------
using PdfParam = std::tuple<uncertain::PdfKind, int>;

class QualificationProperty : public ::testing::TestWithParam<PdfParam> {};

TEST_P(QualificationProperty, ProbabilitiesConserveMass) {
  const auto [kind, cluster_size] = GetParam();
  Rng rng(2718);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uncertain::UncertainObject> objs;
    for (int i = 0; i < cluster_size; ++i) {
      const geom::Circle region(
          {rng.Uniform(-50, 50), rng.Uniform(-50, 50)}, rng.Uniform(5, 30));
      objs.push_back(uncertain::UncertainObject(
          i, region,
          kind == uncertain::PdfKind::kGaussian
              ? uncertain::RadialHistogramPdf::Gaussian(region.radius)
              : uncertain::RadialHistogramPdf::Uniform(region.radius)));
    }
    std::vector<const uncertain::UncertainObject*> refs;
    for (const auto& o : objs) refs.push_back(&o);
    const auto answers = uncertain::ComputeQualificationProbabilities(refs, {0, 0});
    double total = 0;
    for (const auto& a : answers) {
      EXPECT_GT(a.probability, 0.0);
      total += a.probability;
    }
    EXPECT_NEAR(total, 1.0, 5e-3) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PdfKindsAndSizes, QualificationProperty,
    ::testing::Combine(::testing::Values(uncertain::PdfKind::kGaussian,
                                         uncertain::PdfKind::kUniform),
                       ::testing::Values(2, 5, 12)),
    [](const ::testing::TestParamInfo<PdfParam>& info) {
      return std::string(std::get<0>(info.param) == uncertain::PdfKind::kGaussian
                             ? "gaussian"
                             : "uniform") +
             "_c" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace core
}  // namespace uvd
