#include "shard/rebalance_advisor.h"

#include <algorithm>
#include <cstdio>

namespace uvd {
namespace shard {

namespace {

double Imbalance(const std::vector<size_t>& counts) {
  if (counts.empty()) return 1.0;
  size_t total = 0, max_count = 0;
  for (const size_t c : counts) {
    total += c;
    max_count = std::max(max_count, c);
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(counts.size());
  return mean > 0.0 ? static_cast<double>(max_count) / mean : 1.0;
}

double ImbalanceOf(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  double total = 0.0, max_load = 0.0;
  for (const double l : loads) {
    total += l;
    max_load = std::max(max_load, l);
  }
  const double mean = total / static_cast<double>(loads.size());
  return mean > 0.0 ? max_load / mean : 1.0;
}

}  // namespace

std::string RebalanceAdvice::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "imbalance (max/mean objects): current %.2f, predicted under "
                "median cuts %.2f\n",
                current_imbalance, predicted_imbalance);
  out += line;
  for (size_t s = 0; s < proposed_boxes.size(); ++s) {
    std::snprintf(line, sizeof(line),
                  "  proposed shard %zu: [%.1f, %.1f] x [%.1f, %.1f], ~%zu "
                  "objects\n",
                  s, proposed_boxes[s].lo.x, proposed_boxes[s].hi.x,
                  proposed_boxes[s].lo.y, proposed_boxes[s].hi.y,
                  s < predicted_objects.size() ? predicted_objects[s] : 0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "rebalance recommended: %s\n",
                rebalance_recommended ? "yes (rebuild with kMedian)" : "no");
  out += line;
  return out;
}

RebalanceAdvice RebalanceAdvisor::Advise(const ShardedUVDiagram& diagram,
                                         const RebalanceAdvisorOptions& options) {
  RebalanceAdvice advice;

  std::vector<size_t> current;
  current.reserve(diagram.num_shards());
  for (const auto& b : diagram.BalanceReport()) current.push_back(b.objects);
  advice.current_imbalance = Imbalance(current);

  advice.proposed_boxes =
      PartitionDomain(diagram.domain(), static_cast<int>(diagram.num_shards()),
                      ShardPartitioning::kMedian, diagram.object_extents());

  // Predicted registrations: extent-box vs shard-box intersection — the
  // same weighting the median cuts optimized, approximating the
  // conservative UvCellMayOverlap registration a rebuild would perform.
  advice.predicted_objects.assign(advice.proposed_boxes.size(), 0);
  for (const ObjectExtent& e : diagram.object_extents()) {
    for (size_t s = 0; s < advice.proposed_boxes.size(); ++s) {
      if (e.bounds.Intersects(advice.proposed_boxes[s])) {
        ++advice.predicted_objects[s];
      }
    }
  }
  advice.predicted_imbalance = Imbalance(advice.predicted_objects);

  advice.rebalance_recommended =
      advice.current_imbalance > options.imbalance_threshold &&
      advice.predicted_imbalance <
          advice.current_imbalance * (1.0 - options.min_relative_gain);
  return advice;
}

RebalanceAdvice RebalanceAdvisor::Advise(
    const ShardedUVDiagram& diagram,
    const std::vector<uint64_t>& routed_queries,
    const RebalanceAdvisorOptions& options) {
  const double lambda =
      std::min(1.0, std::max(0.0, options.query_weight_lambda));
  uint64_t total_q = 0;
  for (const uint64_t q : routed_queries) total_q += q;
  if (lambda <= 0.0 || total_q == 0 ||
      routed_queries.size() != diagram.num_shards()) {
    return Advise(diagram, options);
  }

  // Ownership by extent center: the shard a query at that point routes to,
  // which is the load the observed counters actually measured.
  const std::vector<ObjectExtent>& extents = diagram.object_extents();
  const size_t shards = diagram.num_shards();
  std::vector<size_t> owned(shards, 0);
  std::vector<int> owner(extents.size(), 0);
  for (size_t i = 0; i < extents.size(); ++i) {
    int s = diagram.ShardIndexForPoint(extents[i].center);
    if (s < 0 || static_cast<size_t>(s) >= shards) s = 0;
    owner[i] = s;
    ++owned[static_cast<size_t>(s)];
  }

  // Per-shard weight: relative query pressure, blended toward 1.0 by
  // (1 - lambda). A shard receiving twice its "fair" query share (Q-share
  // over N-share) counts its objects twice at lambda = 1.
  const double n_total = static_cast<double>(extents.size());
  std::vector<double> shard_weight(shards, 1.0);
  for (size_t s = 0; s < shards; ++s) {
    if (owned[s] == 0) continue;  // weight never applied: no owned objects
    const double q_share = static_cast<double>(routed_queries[s]) /
                           static_cast<double>(total_q);
    const double n_share = static_cast<double>(owned[s]) / n_total;
    shard_weight[s] = (1.0 - lambda) + lambda * (q_share / n_share);
  }

  std::vector<ObjectExtent> weighted = extents;
  for (size_t i = 0; i < weighted.size(); ++i) {
    weighted[i].weight = shard_weight[static_cast<size_t>(owner[i])];
  }

  RebalanceAdvice advice;
  // Current imbalance in the query-weighted currency: each shard's load is
  // the weighted sum of the objects it owns (equivalently, its observed
  // query pressure spread over its objects).
  std::vector<double> current_load(shards, 0.0);
  for (size_t i = 0; i < weighted.size(); ++i) {
    current_load[static_cast<size_t>(owner[i])] += weighted[i].weight;
  }
  advice.current_imbalance = ImbalanceOf(current_load);

  advice.proposed_boxes =
      PartitionDomain(diagram.domain(), static_cast<int>(shards),
                      ShardPartitioning::kMedian, weighted);

  advice.predicted_objects.assign(advice.proposed_boxes.size(), 0);
  std::vector<double> predicted_load(advice.proposed_boxes.size(), 0.0);
  for (size_t i = 0; i < weighted.size(); ++i) {
    for (size_t s = 0; s < advice.proposed_boxes.size(); ++s) {
      if (weighted[i].bounds.Intersects(advice.proposed_boxes[s])) {
        ++advice.predicted_objects[s];
        predicted_load[s] += weighted[i].weight;
      }
    }
  }
  advice.predicted_imbalance = ImbalanceOf(predicted_load);

  advice.rebalance_recommended =
      advice.current_imbalance > options.imbalance_threshold &&
      advice.predicted_imbalance <
          advice.current_imbalance * (1.0 - options.min_relative_gain);
  return advice;
}

Result<ShardedUVDiagram> RebalanceAdvisor::ApplyRebalance(
    const ShardedUVDiagram& diagram, Stats* stats) {
  ShardedUVDiagramOptions options = diagram.options();
  options.partitioning = ShardPartitioning::kMedian;
  return ShardedUVDiagram::Build(diagram.objects(), diagram.domain(), options,
                                 stats);
}

}  // namespace shard
}  // namespace uvd
