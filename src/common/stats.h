// Statistics registry in the spirit of rocksdb::Statistics: named tickers
// incremented on hot paths, snapshotted by benchmarks. Page I/O tickers are
// the unit reported in Fig. 6(b) of the paper.
#ifndef UVD_COMMON_STATS_H_
#define UVD_COMMON_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace uvd {

/// Ticker identifiers. Extend here and in TickerName() together.
enum class Ticker : uint32_t {
  kPageReads = 0,       ///< Simulated disk pages read.
  kPageWrites,          ///< Simulated disk pages written.
  kBufferPoolHits,      ///< Page reads served from the buffer pool.
  kBufferPoolMisses,    ///< Page reads that went to disk (real or simulated).
  kBufferPoolEvictions, ///< Frames evicted to admit a missed page.
  kRtreeNodeVisits,     ///< R-tree nodes popped during any traversal.
  kRtreeLeafReads,      ///< R-tree leaf pages fetched (I/O unit for R-tree).
  kUvIndexNodeVisits,   ///< UV-index non-leaf nodes visited.
  kUvIndexLeafReads,    ///< UV-index leaf pages fetched (I/O unit for UVD).
  kHyperbolaTests,      ///< Point-vs-outside-region dominance tests.
  kEnvelopeInsertions,  ///< Radial-envelope constraint insertions.
  kOverlapChecks,       ///< CheckOverlap (Algorithm 5) invocations.
  kFourPointTests,      ///< 4-point corner tests inside CheckOverlap.
  kQualificationIntegrations,  ///< Numerical integrations performed.
  kQueryCacheHits,      ///< Leaf page-list lookups served by the query cache.
  kQueryCacheMisses,    ///< Leaf page-list lookups that read through to disk.
  kQueryCachePromotions,  ///< Probationary entries promoted on re-reference.
  kQueryCacheDemotions,   ///< Protected entries demoted on segment overflow.
  kQueryCacheWarmInserts, ///< Leaves pre-populated from UV-partition results.
  kLeafMemoHits,        ///< Traversal-session leaf decodes served from the memo.
  kLeafMemoMisses,      ///< Traversal-session leaf decodes that read the page.
  kNumTickers,  // must be last
};

/// Returns the display name for a ticker.
const char* TickerName(Ticker t);

/// \brief Counter bundle. Tickers are relaxed atomics, so one Stats may be
/// shared by concurrent readers (e.g. the R-tree billing leaf I/O from
/// several build workers). Totals are exact; cross-ticker snapshots taken
/// while work is in flight are not. Hot loops should still prefer a
/// per-worker shard merged at the end (MergeFrom) over hammering a shared
/// instance — the parallel build pipeline does exactly that.
///
/// Deliberately lock-free: there is no mutex here for the thread-safety
/// analysis to check (common/thread_annotations.h), and none is needed —
/// every member is a std::atomic and no operation spans two counters
/// (docs/STATIC_ANALYSIS.md, "Atomics vs. guarded fields").
class Stats {
 public:
  Stats() = default;
  Stats(const Stats& other) { CopyFrom(other); }
  Stats& operator=(const Stats& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void Add(Ticker t, uint64_t delta = 1) {
    counters_[static_cast<uint32_t>(t)].fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Get(Ticker t) const {
    return counters_[static_cast<uint32_t>(t)].load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  }

  /// Adds every counter of `other` into this instance. Used to fold
  /// per-worker shards into the caller's Stats after a parallel phase.
  void MergeFrom(const Stats& other) {
    for (uint32_t i = 0; i < counters_.size(); ++i) {
      counters_[i].fetch_add(other.counters_[i].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    }
  }

  /// Multi-line human-readable dump in enum (declaration) order. By
  /// default only non-zero counters print; `include_zeros` emits every
  /// ticker so two dumps always share a key set and diff line-by-line.
  std::string ToString(bool include_zeros = false) const;

  /// One JSON object {"ticker.name": value, ...} in enum order. Zero
  /// counters are included by default for clean cross-run diffs; pass
  /// false for a sparse document.
  std::string ToJson(bool include_zeros = true) const;

 private:
  void CopyFrom(const Stats& other) {
    for (uint32_t i = 0; i < counters_.size(); ++i) {
      counters_[i].store(other.counters_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
  }

  std::array<std::atomic<uint64_t>, static_cast<uint32_t>(Ticker::kNumTickers)>
      counters_{};
};

}  // namespace uvd

#endif  // UVD_COMMON_STATS_H_
