// 2-D point/vector primitives.
#ifndef UVD_GEOM_POINT_H_
#define UVD_GEOM_POINT_H_

#include <cmath>

namespace uvd {
namespace geom {

/// Two-dimensional vector / point with double coordinates.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr Vec2 operator/(double k) const { return {x / k, y / k}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

  /// Dot product.
  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }

  /// Z-component of the 3-D cross product (signed parallelogram area).
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }

  constexpr double Norm2() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(Norm2()); }

  /// Unit vector in this direction; undefined for the zero vector.
  Vec2 Normalized() const {
    const double n = Norm();
    return {x / n, y / n};
  }

  /// Counter-clockwise perpendicular.
  constexpr Vec2 Perp() const { return {-y, x}; }

  /// Polar angle in [-pi, pi].
  double Angle() const { return std::atan2(y, x); }
};

using Point = Vec2;

constexpr Vec2 operator*(double k, const Vec2& v) { return v * k; }

inline double Distance(const Point& a, const Point& b) { return (a - b).Norm(); }
inline double DistanceSquared(const Point& a, const Point& b) {
  return (a - b).Norm2();
}

/// Unit direction vector for the polar angle theta.
inline Vec2 UnitVector(double theta) { return {std::cos(theta), std::sin(theta)}; }

/// Normalizes an angle into [0, 2*pi).
inline double NormalizeAngle(double theta) {
  const double two_pi = 2.0 * M_PI;
  double t = std::fmod(theta, two_pi);
  if (t < 0) t += two_pi;
  if (t >= two_pi) t = 0.0;
  return t;
}

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_POINT_H_
