// Tests for the branch-and-prune PNN baseline of [14]: correctness of the
// candidate set against brute force, pruning effectiveness, breakdown.
#include "rtree/pnn_baseline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common/random.h"

namespace uvd {
namespace rtree {
namespace {

struct Fixture {
  Stats stats;
  storage::PageManager pm{4096, &stats};
  uncertain::ObjectStore store{&pm};
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<RTree> tree;

  void Build(int n, uint64_t seed = 3, double radius = 20) {
    Rng rng(seed);
    objects.clear();
    for (int i = 0; i < n; ++i) {
      objects.push_back(uncertain::UncertainObject::WithGaussianPdf(
          i, geom::Circle({rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, radius)));
    }
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    auto t = RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats);
    UVD_CHECK(t.ok());
    tree.emplace(std::move(t).value());
  }

  /// Brute-force answer-object ids: dist_min <= min_j dist_max.
  std::vector<int> BruteAnswers(const geom::Point& q) const {
    double d_minmax = std::numeric_limits<double>::infinity();
    for (const auto& o : objects) d_minmax = std::min(d_minmax, o.DistMax(q));
    std::vector<int> ids;
    for (const auto& o : objects) {
      if (o.DistMin(q) <= d_minmax) ids.push_back(o.id());
    }
    return ids;
  }
};

TEST(PnnBaselineTest, CandidateSetMatchesBruteForce) {
  Fixture f;
  f.Build(2000, 101);
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const auto retrieval = RetrievePnnCandidates(*f.tree, q, &f.stats).ValueOrDie();
    std::vector<int> got;
    for (const auto& e : retrieval.candidates) got.push_back(e.id);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, f.BruteAnswers(q)) << "trial " << trial;
  }
}

TEST(PnnBaselineTest, DMinMaxIsCorrect) {
  Fixture f;
  f.Build(500, 7);
  const geom::Point q{5000, 5000};
  const auto retrieval = RetrievePnnCandidates(*f.tree, q, &f.stats).ValueOrDie();
  double want = std::numeric_limits<double>::infinity();
  for (const auto& o : f.objects) want = std::min(want, o.DistMax(q));
  EXPECT_NEAR(retrieval.d_minmax, want, 1e-9);
}

TEST(PnnBaselineTest, ReadsOnlyAFractionOfLeaves) {
  Fixture f;
  f.Build(5000, 13);
  f.stats.Reset();
  auto unused = RetrievePnnCandidates(*f.tree, {5000, 5000}, &f.stats);
  ASSERT_TRUE(unused.ok());
  const uint64_t reads = f.stats.Get(Ticker::kRtreeLeafReads);
  EXPECT_GT(reads, 0u);
  EXPECT_LT(reads, f.tree->num_leaf_pages() / 2)
      << "pruning should skip most leaves";
}

TEST(PnnBaselineTest, FullEvaluationProbabilitiesSumToOne) {
  Fixture f;
  f.Build(1000, 19);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    PnnBreakdown breakdown;
    const auto answers =
        EvaluatePnnWithRtree(*f.tree, f.store, q, {}, &f.stats, &breakdown)
            .ValueOrDie();
    ASSERT_FALSE(answers.empty());
    double total = 0;
    for (const auto& a : answers) total += a.probability;
    EXPECT_NEAR(total, 1.0, 5e-3);
    EXPECT_GT(breakdown.Total(), 0.0);
  }
}

TEST(PnnBaselineTest, AnswerSetMatchesBruteForceThroughFullPath) {
  Fixture f;
  f.Build(800, 23, 40);
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const auto answers = EvaluatePnnWithRtree(*f.tree, f.store, q).ValueOrDie();
    std::vector<int> got;
    for (const auto& a : answers) got.push_back(a.id);
    std::sort(got.begin(), got.end());
    // Numerical integration can assign (correctly) zero weight to marginal
    // candidates, so got must be a subset of brute answers that contains
    // every object with substantial probability. At minimum: nonempty and
    // subset.
    const auto want = f.BruteAnswers(q);
    ASSERT_FALSE(got.empty());
    for (int id : got) {
      EXPECT_TRUE(std::binary_search(want.begin(), want.end(), id));
    }
  }
}

TEST(PnnBaselineTest, BreakdownAccumulates) {
  PnnBreakdown acc;
  PnnBreakdown one{0.1, 0.2, 0.3};
  acc.Accumulate(one);
  acc.Accumulate(one);
  EXPECT_NEAR(acc.index_seconds, 0.2, 1e-12);
  EXPECT_NEAR(acc.retrieval_seconds, 0.4, 1e-12);
  EXPECT_NEAR(acc.computation_seconds, 0.6, 1e-12);
  EXPECT_NEAR(acc.Total(), 1.2, 1e-12);
}

TEST(PnnBaselineTest, DenseClusterManyAnswers) {
  // Objects piled together: many candidates survive; probabilities spread.
  Stats stats;
  storage::PageManager pm(4096, &stats);
  uncertain::ObjectStore store(&pm);
  std::vector<uncertain::UncertainObject> objects;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    objects.push_back(uncertain::UncertainObject::WithGaussianPdf(
        i, geom::Circle({5000 + rng.Uniform(-30, 30), 5000 + rng.Uniform(-30, 30)},
                        25)));
  }
  std::vector<uncertain::ObjectPtr> ptrs;
  UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
  auto tree = RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie();
  const auto answers =
      EvaluatePnnWithRtree(tree, store, {5000, 5000}).ValueOrDie();
  EXPECT_GT(answers.size(), 5u);
}

}  // namespace
}  // namespace rtree
}  // namespace uvd
