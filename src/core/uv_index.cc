#include "core/uv_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/trace_recorder.h"
#include "rtree/leaf_codec.h"

namespace uvd {
namespace core {

namespace {

/// Runs fn(0..workers-1) as tasks on `pool`, waiting for the caller's own
/// tasks only (WaitGroup, not the pool-global Wait — the pool may be shared
/// with other in-flight builds, e.g. sibling shards).
void RunWorkers(ThreadPool* pool, int workers, const std::function<void(int)>& fn) {
  if (pool == nullptr || workers <= 1) {
    fn(0);
    return;
  }
  auto done = std::make_shared<WaitGroup>(workers);
  for (int w = 0; w < workers; ++w) {
    pool->Submit([fn, w, done] {
      UVD_TRACE_SPAN("build", "stage2_worker");
      fn(w);
      done->Done();
    });
  }
  done->Wait();
}

}  // namespace

UVIndex::UVIndex(const geom::Box& domain, storage::PageManager* pm,
                 const UVIndexOptions& options, Stats* stats)
    : domain_(domain), pm_(pm), options_(options), stats_(stats) {
  UVD_CHECK_GT(options_.leaf_fanout, 0);
  UVD_CHECK_GE(options_.split_threshold, 0.0);
  UVD_CHECK_LE(options_.split_threshold, 1.0);
  UVD_CHECK(2 + static_cast<size_t>(options_.leaf_fanout) * rtree::kLeafEntryBytes <=
            pm_->page_size())
      << "leaf fanout too large for the page size";
  Node root;
  root.region = domain;
  nodes_.push_back(std::move(root));
  // The paper initializes nonleafnum to 1 (Sec. V-B "Framework").
  nonleaf_count_ = 1;
}

UVIndex::BuildArena UVIndex::MainArena() {
  BuildArena a;
  a.nodes = &nodes_;
  a.nonleaf_count = &nonleaf_count_;
  a.enforce_budget = true;
  a.events = nullptr;
  a.stats = stats_;
  return a;
}

bool UVIndex::CheckOverlapWith(const Member& m, const geom::Box& region,
                               Stats* stats, size_t* hint) const {
  if (stats != nullptr) stats->Add(Ticker::kOverlapChecks);
  // Algorithm 5: if any cr-object's outside region fully contains the grid
  // region, the UV-cell cannot overlap it (Lemma 4).
  const size_t n = m.cr_regions.size();
  if (n == 0) return true;
  // Interior fast path: if the region lies inside the cell bounded by the
  // cr-objects' edges, no single outside region can contain it, so the
  // scan below would certainly answer "overlap". Identical decision, O(1)
  // amortized instead of O(|C_i|).
  if (m.cell != nullptr && m.cell->ContainsBox(region)) return true;
  // Batch 4-point kernel: the per-lane comparisons are exactly the scalar
  // scan's dist_min > dist_max tests, and "some outside region contains the
  // box" does not depend on scan order, so the decision is bitwise
  // identical; only the scan-length tickers and the pruner memo differ.
  if (options_.kernel_mode == geom::KernelMode::kBatch && !m.cr_soa.empty()) {
    const auto corners = region.Corners();
    double cx[4], cy[4], cdmin[4];
    for (int c = 0; c < 4; ++c) {
      cx[c] = corners[static_cast<size_t>(c)].x;
      cy[c] = corners[static_cast<size_t>(c)].y;
      cdmin[c] = m.region.DistMin(corners[static_cast<size_t>(c)]);
    }
    size_t evaluated = 0;
    const ptrdiff_t hit = geom::batch::FindContainingOutsideRegion(
        m.cr_soa, cx, cy, cdmin, &evaluated);
    if (stats != nullptr) {
      stats->Add(Ticker::kFourPointTests, evaluated);
      stats->Add(Ticker::kHyperbolaTests, 4 * evaluated);
    }
    if (hit >= 0) {
      *hint = static_cast<size_t>(hit);
      return false;
    }
    return true;
  }
  // Scan, trying the cr-object that pruned last time first: consecutive
  // checks cover adjacent regions, so it usually prunes again.
  if (*hint < n) {
    const UVEdge edge(m.region, m.cr_regions[*hint], /*j_id=*/-1);
    if (edge.RegionInOutside(region, stats)) return false;
  }
  for (size_t k = 0; k < n; ++k) {
    if (k == *hint) continue;
    const UVEdge edge(m.region, m.cr_regions[k], /*j_id=*/-1);
    if (edge.RegionInOutside(region, stats)) {
      *hint = k;
      return false;
    }
  }
  return true;
}

bool UVIndex::CheckOverlap(const Member& m, const geom::Box& region) const {
  size_t hint = 0;
  return CheckOverlapWith(m, region, stats_, &hint);
}

bool UVIndex::CheckOverlapArena(const BuildArena& a, uint32_t member_slot,
                                const geom::Box& region, size_t* hint) const {
  return CheckOverlapWith(members_[member_slot], region, a.stats, hint);
}

void UVIndex::EnsureSplitCache(const BuildArena& a, uint32_t node_idx) {
  Node& node = (*a.nodes)[node_idx];
  if (node.split_cache_valid) return;
  for (auto& list : node.split_cache) list.clear();
  UVD_DCHECK_EQ(node.member_hints.size(), node.member_slots.size());
  for (uint32_t pos = 0; pos < node.member_slots.size(); ++pos) {
    size_t hint = node.member_hints[pos];
    for (int k = 0; k < 4; ++k) {
      if (CheckOverlapArena(a, node.member_slots[pos], node.region.Quadrant(k),
                            &hint)) {
        node.split_cache[static_cast<size_t>(k)].push_back(pos);
      }
    }
    node.member_hints[pos] = static_cast<uint32_t>(hint);
  }
  node.split_cache_valid = true;
}

void UVIndex::AddToSplitCache(const BuildArena& a, uint32_t node_idx, uint32_t pos,
                              size_t* hint) {
  Node& node = (*a.nodes)[node_idx];
  if (!node.split_cache_valid) return;  // rebuilt lazily when needed
  for (int k = 0; k < 4; ++k) {
    if (CheckOverlapArena(a, node.member_slots[pos], node.region.Quadrant(k),
                          hint)) {
      node.split_cache[static_cast<size_t>(k)].push_back(pos);
    }
  }
}

UVIndex::SplitDecision UVIndex::CheckSplit(
    const BuildArena& a, uint32_t node_idx, uint32_t incoming_slot,
    size_t* incoming_hint, std::array<std::vector<uint32_t>, 4>* child_lists,
    std::array<std::vector<uint32_t>, 4>* child_hints) {
  std::vector<Node>& nodes = *a.nodes;
  // Steps 1-3: room left on the allocated pages.
  if (nodes[node_idx].member_slots.size() < LeafCapacity(nodes[node_idx])) {
    return SplitDecision::kNormal;
  }
  // Steps 4-5: non-leaf budget exhausted. Optimistic subtree builds skip
  // this (enforce_budget false) and let the stitch's event replay decide;
  // if the budget would have bound, the whole build reruns serially.
  if (a.enforce_budget && *a.nonleaf_count + 1 > options_.max_nonleaf) {
    return SplitDecision::kOverflow;
  }

  // Steps 7-15: distribute A = O_i union g.list over the four quarters.
  // The resident part of the distribution is memoized (split_cache) and
  // maintained incrementally by the insertion paths, so only the incoming
  // object is tested here (threading its leaf-local hint).
  EnsureSplitCache(a, node_idx);
  Node& node = nodes[node_idx];
  std::array<bool, 4> incoming{};
  for (int k = 0; k < 4; ++k) {
    incoming[static_cast<size_t>(k)] = CheckOverlapArena(
        a, incoming_slot, node.region.Quadrant(k), incoming_hint);
  }

  // Step 16: split fraction theta (denominator is |g.list|, the resident
  // count before the insertion, as in the paper).
  size_t min_child = SIZE_MAX;
  for (int k = 0; k < 4; ++k) {
    min_child = std::min(min_child, node.split_cache[static_cast<size_t>(k)].size() +
                                        (incoming[static_cast<size_t>(k)] ? 1 : 0));
  }
  const double theta =
      static_cast<double>(min_child) / static_cast<double>(node.member_slots.size());
  if (theta >= options_.split_threshold) return SplitDecision::kOverflow;

  // SPLIT: translate the cached POSITION lists into (slot, hint) pairs —
  // each resident's current hint forks into every child it joins — append
  // the incoming object with its evolved hint, and drop the cache.
  for (int k = 0; k < 4; ++k) {
    const std::vector<uint32_t>& cached = node.split_cache[static_cast<size_t>(k)];
    std::vector<uint32_t>& slots = (*child_lists)[static_cast<size_t>(k)];
    std::vector<uint32_t>& hints = (*child_hints)[static_cast<size_t>(k)];
    slots.reserve(cached.size() + 1);
    hints.reserve(cached.size() + 1);
    for (uint32_t pos : cached) {
      slots.push_back(node.member_slots[pos]);
      hints.push_back(node.member_hints[pos]);
    }
    if (incoming[static_cast<size_t>(k)]) {
      slots.push_back(incoming_slot);
      hints.push_back(static_cast<uint32_t>(*incoming_hint));
    }
    node.split_cache[static_cast<size_t>(k)].clear();
  }
  node.split_cache_valid = false;
  return SplitDecision::kSplit;
}

void UVIndex::InsertInto(const BuildArena& a, uint32_t node_idx,
                         uint32_t member_slot) {
  std::vector<Node>& nodes = *a.nodes;
  // Algorithm 3 Step 1. A fresh hint per gate check: descent checks are
  // hint-independent, which is what lets routed parallel insertion replay
  // the serial scan lengths (see uv_index.h).
  {
    size_t gate_hint = 0;
    if (!CheckOverlapArena(a, member_slot, nodes[node_idx].region, &gate_hint)) {
      return;
    }
  }

  if (!nodes[node_idx].is_leaf) {
    // Steps 2-5: recurse into all four children.
    const std::array<uint32_t, 4> children = nodes[node_idx].children;
    for (uint32_t child : children) InsertInto(a, child, member_slot);
    return;
  }

  // Leaf operations thread one evolving hint for the incoming member —
  // from CheckSplit's quadrant tests through AddToSplitCache — and store
  // the final value as the member's residency hint in this leaf.
  size_t hint = 0;
  std::array<std::vector<uint32_t>, 4> child_lists;
  std::array<std::vector<uint32_t>, 4> child_hints;
  switch (CheckSplit(a, node_idx, member_slot, &hint, &child_lists, &child_hints)) {
    case SplitDecision::kNormal:
      nodes[node_idx].member_slots.push_back(member_slot);
      AddToSplitCache(a, node_idx,
                      static_cast<uint32_t>(nodes[node_idx].member_slots.size() - 1),
                      &hint);
      nodes[node_idx].member_hints.push_back(static_cast<uint32_t>(hint));
      break;
    case SplitDecision::kOverflow:
      nodes[node_idx].num_pages += 1;  // Step 13: allocate a new page
      nodes[node_idx].member_slots.push_back(member_slot);
      AddToSplitCache(a, node_idx,
                      static_cast<uint32_t>(nodes[node_idx].member_slots.size() - 1),
                      &hint);
      nodes[node_idx].member_hints.push_back(static_cast<uint32_t>(hint));
      break;
    case SplitDecision::kSplit: {
      // Steps 16-22: the node becomes a non-leaf; CheckSplit already
      // distributed the members (incoming one included) into the quarters.
      // The four quarters occupy consecutive arena slots — the stitch's
      // renumbering relies on that (SplitEvent::first_child).
      if (a.events != nullptr) {
        a.events->push_back(
            {a.order_key, static_cast<uint32_t>(nodes.size())});
      }
      std::array<uint32_t, 4> child_idx{};
      for (int k = 0; k < 4; ++k) {
        Node child;
        child.region = nodes[node_idx].region.Quadrant(k);
        child.member_slots = std::move(child_lists[static_cast<size_t>(k)]);
        child.member_hints = std::move(child_hints[static_cast<size_t>(k)]);
        child.num_pages = std::max<size_t>(
            1, (child.member_slots.size() + static_cast<size_t>(options_.leaf_fanout) - 1) /
                   static_cast<size_t>(options_.leaf_fanout));
        nodes.push_back(std::move(child));
        child_idx[static_cast<size_t>(k)] = static_cast<uint32_t>(nodes.size() - 1);
      }
      Node& parent = nodes[node_idx];  // re-fetch: vector may have grown
      parent.is_leaf = false;
      parent.children = child_idx;
      parent.member_slots.clear();
      parent.member_slots.shrink_to_fit();
      parent.member_hints.clear();
      parent.member_hints.shrink_to_fit();
      parent.num_pages = 0;
      ++*a.nonleaf_count;
      break;
    }
  }
}

Status UVIndex::InsertObject(const geom::Circle& region, int id,
                             uncertain::ObjectPtr ptr,
                             std::vector<geom::Circle> cr_regions) {
  if (finalized_) {
    return Status::InvalidArgument("index already finalized");
  }
  if (!options_.accept_border_objects && !domain_.Contains(region.center)) {
    return Status::InvalidArgument("object center outside the domain");
  }
  members_.push_back(MakeMember(region, id, ptr, std::move(cr_regions)));
  const BuildArena a = MainArena();
  InsertInto(a, root(), static_cast<uint32_t>(members_.size() - 1));
  return Status::OK();
}

UVIndex::Member UVIndex::MakeMember(const geom::Circle& region, int id,
                                    uncertain::ObjectPtr ptr,
                                    std::vector<geom::Circle> cr_regions) const {
  Member member{region, id, ptr, std::move(cr_regions), nullptr, {}};
  if (options_.kernel_mode == geom::KernelMode::kBatch) {
    member.cr_soa.Assign(member.cr_regions);
  }
  // The interior fast path (envelope containment) only pays off when the
  // cr-object scan it replaces is long; small sets are cheaper to scan
  // directly than to summarize. RadialEnvelope anchors must lie inside the
  // domain, so border-replicated members (center outside a shard's
  // sub-domain) skip the fast path — decisions are identical, just O(|C_i|).
  constexpr size_t kCellFastPathThreshold = 32;
  if (member.cr_regions.size() > kCellFastPathThreshold &&
      domain_.Contains(region.center)) {
    member.cell = std::make_unique<geom::RadialEnvelope>(region.center, domain_);
    for (size_t k = 0; k < member.cr_regions.size(); ++k) {
      member.cell->Insert(geom::RadialConstraint::ForObjects(
          region, member.cr_regions[k], static_cast<int>(k)));
    }
  }
  return member;
}

std::vector<uint32_t> UVIndex::ComputeFrontier(int max_depth) const {
  std::vector<uint32_t> frontier;
  // Pre-order, children 0..3 — the serial descent's visit order, so the
  // frontier index doubles as the event-merge tie-break rank.
  const std::function<void(uint32_t, int)> visit = [&](uint32_t idx, int depth) {
    const Node& node = nodes_[idx];
    if (node.is_leaf || depth >= max_depth) {
      frontier.push_back(idx);
      return;
    }
    for (uint32_t child : node.children) visit(child, depth + 1);
  };
  visit(root(), 0);
  return frontier;
}

Status UVIndex::InsertObjectsPartitioned(std::vector<BulkInsertItem> items,
                                         ThreadPool* pool,
                                         const PartitionedInsertOptions& options,
                                         PartitionedInsertReport* report) {
  if (finalized_) {
    return Status::InvalidArgument("index already finalized");
  }
  if (!members_.empty() || nodes_.size() != 1 || !nodes_[0].is_leaf) {
    return Status::InvalidArgument(
        "partitioned insertion requires a fresh (empty) index");
  }
  const size_t n = items.size();
  for (const BulkInsertItem& item : items) {
    if (!options_.accept_border_objects && !domain_.Contains(item.region.center)) {
      return Status::InvalidArgument("object center outside the domain");
    }
  }

  PartitionedInsertReport rep;
  rep.total_objects = n;
  // Snapshot for the budget-overflow fallback: the serial rebuild must
  // leave the tickers as if only it had run (the exactness contract
  // above), so the prefix/route/subtree ticks are unwound by restoring
  // this and never merging the discarded shards.
  Stats stats_before_build;
  if (stats_ != nullptr) stats_before_build = *stats_;
  const int workers = std::max(1, options.threads);
  const int max_depth = std::min(3, std::max(1, options.max_depth));
  // 4^max_depth caps what the frontier can ever reach; without the clamp a
  // shallow max_depth would chase an unreachable target and serialize the
  // whole build into the prefix.
  const int max_frontier = 1 << (2 * max_depth);
  const int target_subtrees = std::min(
      max_frontier, options.target_subtrees > 0 ? options.target_subtrees
                                                : std::max(4, 2 * workers));
  const size_t prefix_cap =
      options.prefix_cap > 0 ? options.prefix_cap
                             : 16u * static_cast<size_t>(options_.leaf_fanout);

  // Phase 0 — materialize every member record up front. MakeMember is a
  // pure function of the item (the envelope fast path never looks at the
  // resident set), so the fan-out is invisible in the result. Workers
  // share only the atomic claim cursor and write disjoint members_ slots;
  // no mutex, hence nothing for the thread-safety analysis to guard here
  // (docs/STATIC_ANALYSIS.md, "Phase-disciplined structures").
  {
    ScopedTimer t(&rep.member_seconds);
    members_.resize(n);
    std::atomic<size_t> next{0};
    constexpr size_t kBlock = 16;
    RunWorkers(pool, workers, [&](int) {
      for (;;) {
        const size_t begin = next.fetch_add(kBlock, std::memory_order_relaxed);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + kBlock);
        for (size_t i = begin; i < end; ++i) {
          members_[i] = MakeMember(items[i].region, items[i].id, items[i].ptr,
                                   std::move(items[i].cr_regions));
        }
      }
    });
  }

  // Phase 1 — serial prefix: the exact serial algorithm, one item at a
  // time, until the scaffold above the partition frontier exists (or the
  // input / prefix budget runs out). Identical to the serial build by
  // construction; with a single worker the "prefix" is simply the whole
  // build.
  BuildArena main_arena = MainArena();
  size_t p = 0;
  {
    ScopedTimer t(&rep.prefix_seconds);
    if (workers <= 1 || pool == nullptr) {
      for (; p < n; ++p) InsertInto(main_arena, root(), static_cast<uint32_t>(p));
    } else {
      int frontier_size = 1;
      int last_nonleaf = nonleaf_count_;
      while (p < n) {
        if (!nodes_[root()].is_leaf &&
            (frontier_size >= target_subtrees || p >= prefix_cap)) {
          break;
        }
        InsertInto(main_arena, root(), static_cast<uint32_t>(p));
        ++p;
        if (nonleaf_count_ != last_nonleaf) {
          last_nonleaf = nonleaf_count_;
          frontier_size = static_cast<int>(ComputeFrontier(max_depth).size());
        }
      }
    }
  }
  rep.prefix_objects = p;
  if (p >= n) {
    if (report != nullptr) *report = rep;
    return Status::OK();
  }

  // Phase 2 — route the remaining items through the scaffold: the same
  // CheckOverlap descent the serial insertion performs above the frontier,
  // emitting a frontier bitmask per item. Each item is routed by exactly
  // one worker with a fresh pruner memo, so the masks — and the tickers —
  // are independent of the worker count.
  const std::vector<uint32_t> frontier = ComputeFrontier(max_depth);
  const size_t num_subtrees = frontier.size();
  UVD_CHECK_LE(num_subtrees, 64u);
  rep.subtrees = static_cast<int>(num_subtrees);
  std::vector<int> rank_of(nodes_.size(), -1);
  for (size_t r = 0; r < num_subtrees; ++r) {
    rank_of[frontier[r]] = static_cast<int>(r);
  }
  std::vector<uint64_t> route(n - p, 0);
  std::vector<Stats> route_shards(static_cast<size_t>(workers));
  {
    ScopedTimer t(&rep.route_seconds);
    std::atomic<size_t> next{p};
    constexpr size_t kBlock = 16;
    RunWorkers(pool, workers, [&](int w) {
      Stats* shard = stats_ != nullptr ? &route_shards[static_cast<size_t>(w)] : nullptr;
      for (;;) {
        const size_t begin = next.fetch_add(kBlock, std::memory_order_relaxed);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + kBlock);
        for (size_t i = begin; i < end; ++i) {
          const Member& m = members_[i];
          uint64_t mask = 0;
          uint32_t stack[128];
          int top = 0;
          stack[top++] = root();
          while (top > 0) {
            const uint32_t idx = stack[--top];
            // Fresh hint per check, matching the serial gate discipline —
            // this is what makes the routed scan lengths (and tickers)
            // identical to the serial descent's.
            size_t hint = 0;
            if (!CheckOverlapWith(m, nodes_[idx].region, shard, &hint)) continue;
            for (uint32_t child : nodes_[idx].children) {
              const int r = rank_of[child];
              if (r >= 0) {
                mask |= uint64_t{1} << r;
              } else {
                UVD_DCHECK_LT(top, 128);
                stack[top++] = child;
              }
            }
          }
          route[i - p] = mask;
        }
      }
    });
  }

  // Phase 3 — independent subtree builds. Each frontier node and its
  // existing descendants are extracted into a private arena; routed items
  // are inserted in order with split events logged against their item
  // position. The max_nonleaf budget is ignored here (enforced post hoc by
  // the replay below).
  struct SubtreeBuild {
    std::vector<Node> nodes;
    std::vector<uint32_t> orig_ids;  // arena-local -> global, prefix nodes
    std::vector<uint32_t> slots;     // routed item positions, ascending
    std::vector<SplitEvent> events;
    Stats stats;
    int local_nonleaf = 0;
  };
  std::vector<SubtreeBuild> subs(num_subtrees);
  for (size_t i = p; i < n; ++i) {
    uint64_t mask = route[i - p];
    while (mask != 0) {
      const int r = __builtin_ctzll(mask);
      mask &= mask - 1;
      subs[static_cast<size_t>(r)].slots.push_back(static_cast<uint32_t>(i));
    }
  }
  {
    ScopedTimer t(&rep.subtree_seconds);
    for (size_t s = 0; s < num_subtrees; ++s) {
      SubtreeBuild& st = subs[s];
      const std::function<uint32_t(uint32_t)> extract = [&](uint32_t gid) -> uint32_t {
        const uint32_t local = static_cast<uint32_t>(st.nodes.size());
        st.nodes.push_back(nodes_[gid]);
        st.orig_ids.push_back(gid);
        if (!nodes_[gid].is_leaf) {
          const std::array<uint32_t, 4> children = nodes_[gid].children;
          for (int k = 0; k < 4; ++k) {
            const uint32_t child_local = extract(children[static_cast<size_t>(k)]);
            st.nodes[local].children[static_cast<size_t>(k)] = child_local;
          }
        }
        return local;
      };
      extract(frontier[s]);
    }
    // Longest-queue-first claim order for balance on skewed routes.
    std::vector<size_t> order(num_subtrees);
    for (size_t s = 0; s < num_subtrees; ++s) order[s] = s;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (subs[a].slots.size() != subs[b].slots.size()) {
        return subs[a].slots.size() > subs[b].slots.size();
      }
      return a < b;
    });
    std::atomic<size_t> next{0};
    RunWorkers(pool, workers, [&](int) {
      // No pruner-hint scratch: descent gates use a fresh hint per check
      // and residency hints travel inside the extracted nodes
      // (Node::member_hints), so each subtree replays the serial hint
      // evolution verbatim whichever worker builds it.
      for (;;) {
        const size_t oi = next.fetch_add(1, std::memory_order_relaxed);
        if (oi >= order.size()) return;
        SubtreeBuild& st = subs[order[oi]];
        BuildArena arena;
        arena.nodes = &st.nodes;
        arena.nonleaf_count = &st.local_nonleaf;
        arena.enforce_budget = false;
        arena.events = &st.events;
        arena.stats = stats_ != nullptr ? &st.stats : nullptr;
        for (uint32_t slot : st.slots) {
          arena.order_key = static_cast<int>(slot);
          InsertInto(arena, 0, slot);
        }
      }
    });
  }

  // Phase 4 — canonical stitch. Merging the per-subtree event logs by
  // (item position, frontier rank) reproduces the serial build's node
  // creation order exactly: within one item's insertion the serial descent
  // reaches subtrees in frontier (root-DFS) order, and within a subtree
  // the arena's log order IS the recursion order. New nodes are numbered
  // in that merged order, so the node vector — and therefore Finalize's
  // page assignment and SerializeStructure's bytes — matches the serial
  // build. The replay also re-applies the global max_nonleaf budget the
  // optimistic builds skipped; if it would have bound, partitioning
  // changed a split decision somewhere, so the result is discarded and the
  // build reruns serially (exact by definition).
  {
    ScopedTimer t(&rep.stitch_seconds);
    std::vector<std::vector<uint32_t>> remap(num_subtrees);
    for (size_t s = 0; s < num_subtrees; ++s) {
      remap[s].assign(subs[s].nodes.size(), 0);
      std::copy(subs[s].orig_ids.begin(), subs[s].orig_ids.end(), remap[s].begin());
    }
    std::vector<size_t> cursor(num_subtrees, 0);
    uint32_t next_global = static_cast<uint32_t>(nodes_.size());
    int running_nonleaf = nonleaf_count_;
    bool budget_overflow = false;
    size_t merged = 0;
    for (;;) {
      int best = -1;
      for (size_t s = 0; s < num_subtrees; ++s) {
        if (cursor[s] >= subs[s].events.size()) continue;
        if (best < 0 ||
            subs[s].events[cursor[s]].order_key <
                subs[static_cast<size_t>(best)].events[cursor[static_cast<size_t>(best)]]
                    .order_key) {
          best = static_cast<int>(s);
        }
      }
      if (best < 0) break;
      if (running_nonleaf + 1 > options_.max_nonleaf) {
        budget_overflow = true;
        break;
      }
      ++running_nonleaf;
      ++merged;
      const size_t bs = static_cast<size_t>(best);
      const SplitEvent& ev = subs[bs].events[cursor[bs]++];
      for (uint32_t j = 0; j < 4; ++j) {
        remap[bs][ev.first_child + j] = next_global++;
      }
    }
    rep.parallel_splits = merged;

    if (budget_overflow) {
      // The serial build would have denied a split the optimistic phase
      // performed; everything downstream of that point may diverge.
      // Rebuild serially — the members are already materialized, so this
      // costs one serial stage 2, the same as not partitioning at all.
      // The discarded phases' ticks are unwound first (and the per-phase
      // shards below are never merged) so the counters come out exactly
      // as a serial build's.
      if (stats_ != nullptr) *stats_ = stats_before_build;
      // No pruner-memo reset needed: residency hints live in the nodes
      // being discarded here, so the rebuild's scan lengths — and
      // therefore even kHyperbolaTests / kFourPointTests — replay a pure
      // serial build exactly.
      nodes_.clear();
      Node root_node;
      root_node.region = domain_;
      nodes_.push_back(std::move(root_node));
      nonleaf_count_ = 1;
      BuildArena retry = MainArena();
      for (size_t i = 0; i < n; ++i) {
        InsertInto(retry, root(), static_cast<uint32_t>(i));
      }
      rep.serial_fallback = true;
    } else {
      std::vector<Node> old = std::move(nodes_);
      nodes_.clear();
      nodes_.resize(static_cast<size_t>(next_global));
      std::vector<char> in_subtree(old.size(), 0);
      for (const SubtreeBuild& st : subs) {
        for (uint32_t gid : st.orig_ids) in_subtree[gid] = 1;
      }
      for (uint32_t id = 0; id < old.size(); ++id) {
        if (in_subtree[id] == 0) nodes_[id] = std::move(old[id]);
      }
      for (size_t s = 0; s < num_subtrees; ++s) {
        for (size_t l = 0; l < subs[s].nodes.size(); ++l) {
          Node node = std::move(subs[s].nodes[l]);
          if (!node.is_leaf) {
            for (auto& child : node.children) child = remap[s][child];
          }
          nodes_[remap[s][l]] = std::move(node);
        }
      }
      nonleaf_count_ = running_nonleaf;
    }
  }

  if (stats_ != nullptr && !rep.serial_fallback) {
    for (const Stats& shard : route_shards) stats_->MergeFrom(shard);
    for (const SubtreeBuild& st : subs) stats_->MergeFrom(st.stats);
  }
  if (report != nullptr) *report = rep;
  return Status::OK();
}

Status UVIndex::Finalize() { return FinalizeWith(nullptr, 1); }

Status UVIndex::FinalizeWith(ThreadPool* pool, int threads) {
  if (finalized_) return Status::OK();
  const size_t per_page = static_cast<size_t>(options_.leaf_fanout);

  // Encodes one leaf's resident tuples onto its (already assigned) pages.
  const auto write_leaf = [&](Node& node, std::vector<rtree::LeafEntry>* tuples,
                              std::vector<uint8_t>* buf) -> Status {
    tuples->clear();
    tuples->reserve(node.member_slots.size());
    for (uint32_t slot : node.member_slots) {
      const Member& m = members_[slot];
      tuples->push_back({m.id, m.region, m.ptr});
    }
    UVD_DCHECK_LE(tuples->size(), LeafCapacity(node));
    for (size_t p = 0; p < node.num_pages; ++p) {
      const size_t begin = p * per_page;
      const size_t count =
          begin >= tuples->size() ? 0 : std::min(per_page, tuples->size() - begin);
      buf->clear();
      rtree::EncodeLeafEntries(tuples->data() + begin, count, buf);
      UVD_RETURN_NOT_OK(pm_->Write(node.pages[p], *buf));
    }
    return Status::OK();
  };

  if (pool == nullptr || threads <= 1) {
    // Serial path: allocate-then-write one leaf at a time, in node order.
    std::vector<rtree::LeafEntry> tuples;
    std::vector<uint8_t> buf;
    for (Node& node : nodes_) {
      if (!node.is_leaf) continue;
      node.pages.reserve(node.num_pages);
      for (size_t p = 0; p < node.num_pages; ++p) node.pages.push_back(pm_->Allocate());
      UVD_RETURN_NOT_OK(write_leaf(node, &tuples, &buf));
    }
  } else {
    // Parallel path: pre-assign the exact page ids the serial loop's
    // per-leaf Allocate calls would produce (one contiguous run, handed
    // out in node order), then fan the encoding out. Writes target
    // distinct pre-allocated pages, which PageManager permits
    // concurrently; the resulting page layout is bitwise-identical to the
    // serial path for every thread count.
    std::vector<uint32_t> leaves;
    size_t total_pages = 0;
    for (uint32_t idx = 0; idx < nodes_.size(); ++idx) {
      if (!nodes_[idx].is_leaf) continue;
      leaves.push_back(idx);
      total_pages += nodes_[idx].num_pages;
    }
    storage::PageId next_page = pm_->AllocateRun(total_pages);
    for (uint32_t leaf : leaves) {
      Node& node = nodes_[leaf];
      node.pages.reserve(node.num_pages);
      for (size_t p = 0; p < node.num_pages; ++p) node.pages.push_back(next_page++);
    }
    std::atomic<size_t> cursor{0};
    std::vector<Status> worker_status(static_cast<size_t>(threads));
    RunWorkers(pool, threads, [&](int w) {
      std::vector<rtree::LeafEntry> tuples;
      std::vector<uint8_t> buf;
      for (;;) {
        const size_t li = cursor.fetch_add(1, std::memory_order_relaxed);
        if (li >= leaves.size()) return;
        const Status s = write_leaf(nodes_[leaves[li]], &tuples, &buf);
        if (!s.ok()) {
          worker_status[static_cast<size_t>(w)] = s;
          return;
        }
      }
    });
    for (const Status& s : worker_status) UVD_RETURN_NOT_OK(s);
  }

  // Drop the construction caches; ids/regions stay for pattern analysis.
  for (Member& m : members_) {
    m.cr_regions.clear();
    m.cr_regions.shrink_to_fit();
    m.cell.reset();
  }
  for (Node& node : nodes_) {
    for (auto& list : node.split_cache) {
      list.clear();
      list.shrink_to_fit();
    }
    node.split_cache_valid = false;
    node.member_hints.clear();
    node.member_hints.shrink_to_fit();
  }
  finalized_ = true;
  return Status::OK();
}

Status UVIndex::InsertObjectLive(const geom::Circle& region, int id,
                                 uncertain::ObjectPtr ptr,
                                 std::vector<geom::Circle> cr_regions) {
  if (!finalized_) {
    return Status::InvalidArgument(
        "live insertion requires a finalized index; use InsertObject");
  }
  if (!options_.accept_border_objects && !domain_.Contains(region.center)) {
    return Status::InvalidArgument("object center outside the domain");
  }
  members_.push_back(MakeMember(region, id, ptr, std::move(cr_regions)));
  const uint32_t slot = static_cast<uint32_t>(members_.size() - 1);

  // Collect the overlapped leaves (no splits in live mode).
  std::vector<uint32_t> leaves;
  std::vector<uint32_t> stack = {root()};
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    if (!CheckOverlap(members_[slot], nodes_[idx].region)) continue;
    if (nodes_[idx].is_leaf) {
      leaves.push_back(idx);
    } else {
      for (uint32_t c : nodes_[idx].children) stack.push_back(c);
    }
  }

  // Append the tuple to each leaf's page chain, rewriting only the tail
  // page (allocating a fresh one on overflow).
  const size_t per_page = static_cast<size_t>(options_.leaf_fanout);
  std::vector<uint8_t> buf;
  std::vector<rtree::LeafEntry> tail;
  for (uint32_t leaf : leaves) {
    Node& node = nodes_[leaf];
    const size_t count = node.member_slots.size();
    if (count == LeafCapacity(node)) {
      node.num_pages += 1;
      node.pages.push_back(pm_->Allocate());
    }
    node.member_slots.push_back(slot);
    // Rebuild the tail page from its resident slots plus the new tuple.
    const size_t tail_index = count / per_page;
    tail.clear();
    for (size_t i = tail_index * per_page; i < node.member_slots.size(); ++i) {
      const Member& m = members_[node.member_slots[i]];
      tail.push_back({m.id, m.region, m.ptr});
    }
    buf.clear();
    rtree::EncodeLeafEntries(tail.data(), tail.size(), &buf);
    UVD_RETURN_NOT_OK(pm_->Write(node.pages[tail_index], buf));
  }

  // Match Finalize(): drop the construction caches for the new member.
  members_[slot].cr_regions.clear();
  members_[slot].cr_regions.shrink_to_fit();
  members_[slot].cell.reset();
  return Status::OK();
}

uint32_t UVIndex::LocateLeaf(const geom::Point& q) const {
  uint32_t idx = root();
  while (!nodes_[idx].is_leaf) {
    if (stats_ != nullptr) stats_->Add(Ticker::kUvIndexNodeVisits);
    const Node& node = nodes_[idx];
    const geom::Point c = node.region.Center();
    const int k = (q.x >= c.x ? 1 : 0) + (q.y >= c.y ? 2 : 0);
    idx = node.children[static_cast<size_t>(k)];
  }
  return idx;
}

bool UVIndex::OwnsPoint(const geom::Point& q) const {
  return domain_.ContainsHalfOpen(q);
}

Result<uint32_t> UVIndex::LocateLeafChecked(const geom::Point& q) const {
  if (!finalized_) {
    return Status::Internal("index must be finalized before queries");
  }
  // Acceptance is the closed domain: ownership at interior boundaries is
  // half-open [min, max) — a cut-line point between two indexes tiling a
  // larger domain belongs to the upper/right index alone (OwnsPoint; the
  // >= descent in LocateLeaf treats interior leaf boundaries the same
  // way) — but the domain's own max edge has no upper neighbor, so it
  // stays closed and a probe exactly on it is answered by the max-edge
  // leaves instead of being dropped. Routers combine OwnsPoint with a
  // max-edge clamp, so cut-line routing yields no drops and no
  // double-answers (ShardedUVDiagram::ShardIndexForPoint).
  if (!domain_.Contains(q)) {
    return Status::InvalidArgument("query point outside the domain");
  }
  return LocateLeaf(q);
}

Result<std::vector<rtree::LeafEntry>> UVIndex::ReadLeafEntries(uint32_t leaf) const {
  std::vector<rtree::LeafEntry> out;
  std::vector<uint8_t> buf;
  for (storage::PageId page : nodes_[leaf].pages) {
    if (stats_ != nullptr) stats_->Add(Ticker::kUvIndexLeafReads);
    UVD_RETURN_NOT_OK(pm_->Read(page, &buf));
    rtree::DecodeLeafEntries(buf, &out);
  }
  return out;
}

Result<std::vector<rtree::LeafEntry>> UVIndex::RetrieveCandidates(
    const geom::Point& q) const {
  UVD_ASSIGN_OR_RETURN(const uint32_t leaf, LocateLeafChecked(q));
  return ReadLeafEntries(leaf);
}

size_t UVIndex::num_leaves() const {
  size_t n = 0;
  for (const Node& node : nodes_) n += node.is_leaf ? 1 : 0;
  return n;
}

size_t UVIndex::total_leaf_pages() const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) n += node.num_pages;
  }
  return n;
}

int UVIndex::height() const {
  // Depth from the root region: each level halves the extent.
  int max_depth = 1;
  struct Item {
    uint32_t idx;
    int depth;
  };
  std::vector<Item> stack = {{root(), 1}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, item.depth);
    const Node& node = nodes_[item.idx];
    if (!node.is_leaf) {
      for (uint32_t c : node.children) stack.push_back({c, item.depth + 1});
    }
  }
  return max_depth;
}

size_t UVIndex::LeafObjectCount(uint32_t node_index) const {
  UVD_DCHECK(nodes_[node_index].is_leaf);
  return nodes_[node_index].member_slots.size();
}

bool UvCellMayOverlap(const geom::Circle& region,
                      const std::vector<geom::Circle>& cr_regions,
                      const geom::Box& box, Stats* stats) {
  if (stats != nullptr) stats->Add(Ticker::kOverlapChecks);
  // Same Algorithm 5 logic as UVIndex::CheckOverlap, minus the per-member
  // memoization: the cell cannot overlap `box` iff some cr-object's convex
  // outside region contains it (4-point corner test). Monotone under box
  // containment — if it reports "no overlap" for a shard box, it would for
  // every leaf inside that box too — which is what makes shard-border
  // registration by this test conservative (Lemma 4 end to end).
  for (const geom::Circle& cr : cr_regions) {
    if (UVEdge(region, cr, /*j_id=*/-1).RegionInOutside(box, stats)) return false;
  }
  return true;
}

std::vector<int> UVIndex::LeafObjectIds(uint32_t node_index) const {
  UVD_DCHECK(nodes_[node_index].is_leaf);
  std::vector<int> ids;
  ids.reserve(nodes_[node_index].member_slots.size());
  for (uint32_t slot : nodes_[node_index].member_slots) {
    ids.push_back(members_[slot].id);
  }
  return ids;
}

}  // namespace core
}  // namespace uvd
