// Lightweight scoped-span tracing exported as Chrome trace-event JSON
// (viewable in Perfetto / chrome://tracing). The paper's Figs. 6(c) and
// 7(d)/(e) are phase breakdowns; UVD_TRACE_SPAN generalizes them to a real
// timeline — per-worker stage-1/stage-2 spans during construction, and
// locate-leaf / cache-lookup / read-leaf / qualification phases per query.
//
// Cost model:
//   * Tracing is DISABLED by default. The macro's fast path is one relaxed
//     atomic load and a branch; no clock is read and nothing is written.
//   * Enabled, a span is two steady_clock reads plus one ring-buffer push
//     under the calling thread's own (uncontended) ring mutex.
//   * Defining UVD_DISABLE_TRACING at compile time removes the spans from
//     the binary entirely — the hot path is untouched by construction.
//
// Every thread records into its own fixed-capacity ring (registered on
// first use; the ring overwrites its oldest events when full and counts
// the drops), so recording never blocks on another thread. Export walks
// the rings in registration order. Tracing is purely observational:
// serialized indexes and query answers are bitwise-identical with tracing
// on or off (digest-asserted in tests/obs/obs_determinism_test.cc).
#ifndef UVD_OBS_TRACE_RECORDER_H_
#define UVD_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace uvd {
namespace obs {

/// One completed span ("ph": "X" in the Chrome trace format). `name` and
/// `category` must be string literals (stored by pointer, never copied).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  uint64_t start_us = 0;     ///< NowMicros() at span entry.
  uint64_t duration_us = 0;  ///< Span wall time.
};

/// \brief Per-thread ring buffers of spans with Chrome trace-event export.
///
/// The process-global instance (Global()) is what UVD_TRACE_SPAN records
/// into; tests may construct private recorders. Thread ids in the export
/// are assigned in ring-registration order (0, 1, ...), so single-threaded
/// recordings export deterministically.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 15;  // events/thread

  explicit TraceRecorder(size_t ring_capacity = kDefaultRingCapacity);

  /// The recorder UVD_TRACE_SPAN writes to.
  static TraceRecorder& Global();

  /// Master switch for the span macro (relaxed atomic; off by default).
  /// Spans opened while disabled record nothing even if tracing is
  /// re-enabled before they close.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends a completed span to the calling thread's ring (registering
  /// the ring on first use). Safe for concurrent callers; when the ring is
  /// full the oldest event is overwritten and `dropped()` grows.
  void Record(const char* category, const char* name, uint64_t start_us,
              uint64_t duration_us);

  /// Drops every recorded event (rings stay registered and keep their
  /// thread ids; the drop counter resets).
  void Clear();

  /// Events currently held across all rings.
  size_t event_count() const;
  /// Events overwritten because a ring was full.
  uint64_t dropped() const;
  /// Rings registered so far (one per recording thread).
  size_t thread_count() const;

  /// The Chrome trace-event document: {"traceEvents": [...]} with one
  /// "ph":"X" entry per span (ts/dur in microseconds), ordered by thread
  /// registration then record order. Loadable directly in Perfetto.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Ring {
    mutable Mutex mu;
    // tid and owner are written once at registration (under the
    // recorder's registry_mu_, before the ring is published) and
    // immutable afterwards; the analysis cannot name an outer-instance
    // mutex from a nested struct, so they stay unannotated by design.
    uint32_t tid = 0;
    std::thread::id owner;  // registering thread (lookup key)
    std::vector<TraceEvent> events UVD_GUARDED_BY(mu);  // capacity-bounded
    size_t next UVD_GUARDED_BY(mu) = 0;     // write cursor
    size_t size UVD_GUARDED_BY(mu) = 0;     // events held (<= capacity)
    uint64_t dropped UVD_GUARDED_BY(mu) = 0;
  };

  Ring* RingForThisThread() UVD_EXCLUDES(registry_mu_);

  static std::atomic<bool> enabled_;

  size_t ring_capacity_;
  mutable Mutex registry_mu_;  // guards rings_ growth
  std::vector<std::unique_ptr<Ring>> rings_ UVD_GUARDED_BY(registry_mu_);
};

/// RAII span: captures the clock at construction (when tracing is enabled)
/// and records a TraceEvent at destruction. Nest freely; concurrent spans
/// on different threads record into different rings.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (TraceRecorder::Enabled()) {
      category_ = category;
      name_ = name;
      start_us_ = NowMicrosForTrace();
    }
  }
  ~TraceSpan() {
    if (category_ != nullptr) {
      TraceRecorder::Global().Record(category_, name_, start_us_,
                                     NowMicrosForTrace() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static uint64_t NowMicrosForTrace();

  const char* category_ = nullptr;  // null: span inactive (tracing was off)
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace uvd

#define UVD_OBS_CONCAT_IMPL(a, b) a##b
#define UVD_OBS_CONCAT(a, b) UVD_OBS_CONCAT_IMPL(a, b)

/// Scoped span macro. `category` and `name` must be string literals.
/// Compiles to nothing under UVD_DISABLE_TRACING; otherwise costs one
/// relaxed load when tracing is disabled at runtime (the default).
#if defined(UVD_DISABLE_TRACING)
#define UVD_TRACE_SPAN(category, name) \
  do {                                 \
  } while (false)
#else
#define UVD_TRACE_SPAN(category, name) \
  ::uvd::obs::TraceSpan UVD_OBS_CONCAT(uvd_trace_span_, __LINE__)(category, name)
#endif

#endif  // UVD_OBS_TRACE_RECORDER_H_
