// Positive control for the negative-compile suite: the same shapes as the
// ta_fail_* cases with the lock discipline FOLLOWED. If this target ever
// fails to build, the suite's failures would be meaningless (any compile
// error — a broken include, a syntax slip — would "pass" a WILL_FAIL
// test), so it compiles on every toolchain as part of the normal build.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() UVD_EXCLUDES(mu_) {
    uvd::MutexLock lock(mu_);
    ++value_;
  }

  void IncrementLocked() UVD_REQUIRES(mu_) { ++value_; }

  int Get() UVD_EXCLUDES(mu_) {
    uvd::MutexLock lock(mu_);
    return value_;
  }

  uvd::Mutex& mu() UVD_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  uvd::Mutex mu_;
  int value_ UVD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int TaCompilePassDriver() {
  Counter c;
  c.Increment();
  {
    uvd::MutexLock lock(c.mu());
    c.IncrementLocked();
  }
  return c.Get();
}
