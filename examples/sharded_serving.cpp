// Sharded UV-index serving: partition the domain into K sub-indexes, route
// a query batch through the ShardRouter, and show border correctness at a
// cut line (src/shard/).
//
//   $ ./sharded_serving [--rebalance] [--metrics] [--trace-out <file>]
//                       [--prom-out <file>]
//
// --metrics prints the deployment's unified MetricsRegistry snapshot
// (JSON) after serving; --trace-out records the batch with phase tracing
// enabled and writes a Chrome trace-event file (open in Perfetto or
// chrome://tracing); --prom-out writes the same snapshot in Prometheus
// text exposition format. All three are passive: answers are identical
// with or without them.
//
// Act one shows the three sharding ideas: per-shard builds from one global
// pruning pass, border-object replication (an object whose UV-cell
// straddles a cut line lives in every touching shard), and half-open
// cut-line ownership so every point is answered by exactly one shard —
// bitwise-identically to an unsharded build.
//
// Act two shows the data-adaptive loop on a skewed 10:1 clustered dataset:
// count-blind grid cuts leave a hot shard, BalanceReport() measures it,
// RebalanceAdvisor proposes extent-weighted median cuts, and --rebalance
// applies them via a kMedian rebuild (answers stay bitwise-identical
// either way; without the flag the proposal is only printed).
#include <cstdio>
#include <cstring>
#include <string>

#include "datagen/generators.h"
#include "datagen/workload.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "query/query_engine.h"
#include "shard/rebalance_advisor.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"

int main(int argc, char** argv) {
  using namespace uvd;
  bool apply_rebalance = false;
  bool print_metrics = false;
  std::string trace_out, prom_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rebalance") == 0) apply_rebalance = true;
    if (std::strcmp(argv[i], "--metrics") == 0) print_metrics = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
    if (std::strcmp(argv[i], "--prom-out") == 0 && i + 1 < argc) {
      prom_out = argv[++i];
    }
  }
  if (!trace_out.empty()) obs::TraceRecorder::SetEnabled(true);

  // The same synthetic city, served from a 2 x 2 shard grid.
  datagen::DatasetOptions data;
  data.count = 1500;
  data.seed = 4;
  const geom::Box domain = datagen::DomainFor(data);
  const auto objects = datagen::GenerateUniform(data);

  shard::ShardedUVDiagramOptions options;
  options.num_shards = 4;
  auto sharded = shard::ShardedUVDiagram::Build(objects, domain, options).ValueOrDie();

  size_t replicas = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const auto& sh = sharded.shard(s);
    std::printf("shard %zu: box [%.0f, %.0f] x [%.0f, %.0f], %zu objects, "
                "%zu leaves\n",
                s, sh.box.lo.x, sh.box.hi.x, sh.box.lo.y, sh.box.hi.y,
                sh.object_ids.size(), sh.index->num_leaves());
    replicas += sh.object_ids.size();
  }
  std::printf("border replication: %zu registrations for %zu objects "
              "(factor %.2fx)\n\n",
              replicas, objects.size(),
              static_cast<double>(replicas) / static_cast<double>(objects.size()));
  std::printf("per-shard balance (hot shards show up in the imbalance line):\n%s\n",
              sharded.BalanceReportString().c_str());

  // Route a trajectory batch; compare one cut-line probe to an unsharded
  // build to see the border-correctness guarantee in action.
  shard::ShardRouter router(sharded);
  query::QueryBatch batch;
  for (const auto& p : datagen::TrajectoryQueryPoints(300, domain, 20.0, 9)) {
    batch.push_back(query::Query::Pnn(p));
  }
  const geom::Point cut_probe{sharded.shard(1).box.lo.x, domain.Center().y};
  batch.push_back(query::Query::Pnn(cut_probe));  // exactly on the cut line
  const auto results = router.ExecuteBatch(batch);
  std::printf("routed %zu PNN probes across %zu shards\n", results.size(),
              router.num_shards());
  std::printf("cut-line probe (%.0f, %.0f) owned by shard %d alone\n",
              cut_probe.x, cut_probe.y, sharded.ShardIndexForPoint(cut_probe));

  auto baseline = core::UVDiagram::Build(objects, domain).ValueOrDie();
  const auto reference = baseline.QueryPnn(cut_probe).ValueOrDie();
  const auto& got = results.back().pnn;
  bool identical = got.size() == reference.size();
  for (size_t k = 0; identical && k < got.size(); ++k) {
    identical = got[k].id == reference[k].id &&
                got[k].probability == reference[k].probability;
  }
  std::printf("answers match the unsharded build bitwise: %s "
              "(%zu answer objects)\n\n",
              identical ? "yes" : "NO", got.size());

  // Observability exports: one registry covers the whole deployment.
  if (print_metrics || !prom_out.empty()) {
    obs::MetricsRegistry registry;
    router.RegisterMetrics(&registry, "serving");
    const obs::MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
    if (print_metrics) {
      std::printf("unified metrics snapshot (JSON):\n%s\n",
                  snapshot.ToJson().c_str());
    }
    if (!prom_out.empty()) {
      std::FILE* f = std::fopen(prom_out.c_str(), "w");
      if (f != nullptr) {
        const std::string text = snapshot.ToPrometheus();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("Prometheus metrics written to %s\n", prom_out.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", prom_out.c_str());
      }
    }
  }
  if (!trace_out.empty()) {
    obs::TraceRecorder::SetEnabled(false);
    const Status st = obs::TraceRecorder::Global().WriteChromeTrace(trace_out);
    if (st.ok()) {
      std::printf("Chrome trace (%zu events) written to %s — open in "
                  "Perfetto or chrome://tracing\n",
                  obs::TraceRecorder::Global().event_count(), trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
    }
  }

  // Act two: the data-adaptive loop. A 10:1 clustered city under the same
  // grid cuts has a hot shard; the advisor measures it, proposes
  // extent-weighted median cuts, and (with --rebalance) rebuilds.
  datagen::DatasetOptions skewed_data;
  skewed_data.count = 1200;
  skewed_data.seed = 8;
  const auto skewed_objects = datagen::GenerateClusters(
      skewed_data, {{{2500.0, 2500.0}, 600.0, 10.0},
                    {{7500.0, 7500.0}, 600.0, 1.0}});
  shard::ShardedUVDiagramOptions skewed_options;
  skewed_options.num_shards = 4;  // still count-blind kGrid
  auto skewed = shard::ShardedUVDiagram::Build(skewed_objects, domain,
                                               skewed_options)
                    .ValueOrDie();
  std::printf("the same grid over a 10:1 clustered city leaves hot shards:\n%s\n",
              skewed.BalanceReportString().c_str());
  const shard::RebalanceAdvice advice = shard::RebalanceAdvisor::Advise(skewed);
  std::printf("%s", advice.ToString().c_str());
  if (advice.rebalance_recommended && apply_rebalance) {
    skewed = shard::RebalanceAdvisor::ApplyRebalance(skewed).ValueOrDie();
    std::printf("\nafter the kMedian rebuild:\n%s",
                skewed.BalanceReportString().c_str());
  } else if (advice.rebalance_recommended) {
    std::printf("(run with --rebalance to apply the proposal via rebuild)\n");
  }
  return identical ? 0 : 1;
}
