// Tests for the radial-constraint formulation: agreement with distance
// dominance, finite domains, wall constraints, and crossing angles.
#include "geom/radial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/hyperbola.h"

namespace uvd {
namespace geom {
namespace {

TEST(RadialConstraintTest, VacuousWhenOverlapping) {
  const Circle oi({0, 0}, 2), oj({3, 0}, 2);
  const auto c = RadialConstraint::ForObjects(oi, oj, 1);
  EXPECT_TRUE(c.IsVacuous());
  EXPECT_FALSE(c.FiniteDomain().has_value());
}

TEST(RadialConstraintTest, RhoMatchesUvEdgeCrossing) {
  // rho(u) must land exactly on the UV-edge: the point p = c_i + rho*u
  // satisfies dist(p, c_i) - dist(p, c_j) = r_i + r_j.
  const Circle oi({1, 2}, 0.7), oj({9, -3}, 1.1);
  const auto c = RadialConstraint::ForObjects(oi, oj, 1);
  for (double theta = 0; theta < 2 * M_PI; theta += 0.05) {
    const double rho = c.RhoAtAngle(theta);
    if (!std::isfinite(rho)) continue;
    EXPECT_GE(rho, 0.0);
    const Point p = oi.center + UnitVector(theta) * rho;
    EXPECT_NEAR(Distance(p, oi.center) - Distance(p, oj.center),
                oi.radius + oj.radius, 1e-8)
        << "theta=" << theta;
  }
}

TEST(RadialConstraintTest, DominanceMonotoneAlongRay) {
  // Inside rho: O_i still possible. Beyond rho: O_j strictly dominates.
  const Circle oi({0, 0}, 1), oj({10, 0}, 2);
  const auto c = RadialConstraint::ForObjects(oi, oj, 1);
  for (double theta = 0; theta < 2 * M_PI; theta += 0.1) {
    const double rho = c.RhoAtAngle(theta);
    const Vec2 u = UnitVector(theta);
    if (std::isfinite(rho)) {
      const Point before = oi.center + u * (rho * 0.95);
      const Point after = oi.center + u * (rho * 1.05);
      EXPECT_LE(oi.DistMin(before), oj.DistMax(before) + 1e-9);
      EXPECT_GT(oi.DistMin(after), oj.DistMax(after) - 1e-9);
    } else {
      // Ray never leaves the cell side: even far out O_i stays possible.
      const Point far = oi.center + u * 1e6;
      EXPECT_LE(oi.DistMin(far), oj.DistMax(far) + 1e-3);
    }
  }
}

TEST(RadialConstraintTest, FiniteDomainWidthBelowPi) {
  const Circle oi({0, 0}, 1), oj({6, 3}, 0.5);
  const auto c = RadialConstraint::ForObjects(oi, oj, 1);
  const auto dom = c.FiniteDomain();
  ASSERT_TRUE(dom.has_value());
  const double width = dom->second - dom->first;
  EXPECT_GT(width, 0.0);
  EXPECT_LE(width, M_PI + 1e-12);
  // Axis direction phi (toward O_j) is inside the domain and has minimal rho
  // = (|w| + s) / 2, the midpoint between the two boundaries.
  const double phi = (oj.center - oi.center).Angle();
  const double w = Distance(oi.center, oj.center);
  const double s = oi.radius + oj.radius;
  EXPECT_NEAR(c.RhoAtAngle(phi), (w + s) / 2.0, 1e-9);
}

TEST(RadialConstraintTest, RhoInfiniteOutsideDomain) {
  const Circle oi({0, 0}, 1), oj({6, 0}, 1);
  const auto c = RadialConstraint::ForObjects(oi, oj, 1);
  const auto dom = c.FiniteDomain();
  ASSERT_TRUE(dom.has_value());
  const double outside = dom->second + 0.01;
  EXPECT_FALSE(std::isfinite(c.RhoAtAngle(outside)));
  const double inside = 0.5 * (dom->first + dom->second);
  EXPECT_TRUE(std::isfinite(c.RhoAtAngle(inside)));
}

TEST(RadialConstraintTest, ZeroRadiusGivesBisector) {
  // Classic Voronoi special case: rho along the center axis is half the
  // center distance.
  const Circle oi({0, 0}, 0), oj({4, 0}, 0);
  const auto c = RadialConstraint::ForObjects(oi, oj, 1);
  EXPECT_NEAR(c.RhoAtAngle(0.0), 2.0, 1e-12);
  // At 60 degrees the bisector x=2 is at distance 2/cos(60) = 4.
  EXPECT_NEAR(c.RhoAtAngle(M_PI / 3), 4.0, 1e-9);
  EXPECT_FALSE(std::isfinite(c.RhoAtAngle(M_PI)));  // away from O_j
}

TEST(RadialConstraintTest, WallConstraints) {
  const Box domain({0, 0}, {10, 10});
  const Point center{3, 4};
  const auto walls = RadialConstraint::ForDomainWalls(center, domain);
  ASSERT_EQ(walls.size(), 4u);
  // Left wall at distance 3: rho straight left = 3.
  EXPECT_NEAR(walls[0].RhoAtAngle(M_PI), 3.0, 1e-9);
  // Right wall at distance 7.
  EXPECT_NEAR(walls[1].RhoAtAngle(0.0), 7.0, 1e-9);
  // Bottom wall at distance 4.
  EXPECT_NEAR(walls[2].RhoAtAngle(-M_PI / 2), 4.0, 1e-9);
  // Top wall at distance 6.
  EXPECT_NEAR(walls[3].RhoAtAngle(M_PI / 2), 6.0, 1e-9);
  // Oblique ray to the right wall: 7 / cos(theta).
  EXPECT_NEAR(walls[1].RhoAtAngle(0.4), 7.0 / std::cos(0.4), 1e-9);
  // Owners are the wall ids.
  EXPECT_EQ(walls[0].owner, kWallLeft);
  EXPECT_EQ(walls[3].owner, kWallTop);
}

TEST(CrossingAnglesTest, CrossingsSatisfyEquality) {
  const Circle anchor({0, 0}, 1);
  const auto c1 = RadialConstraint::ForObjects(anchor, Circle({8, 1}, 1), 1);
  const auto c2 = RadialConstraint::ForObjects(anchor, Circle({5, 6}, 2), 2);
  const auto angles = CrossingAngles(c1, c2);
  for (double a : angles) {
    const double r1 = c1.RhoAtAngle(a);
    const double r2 = c2.RhoAtAngle(a);
    if (std::isfinite(r1) && std::isfinite(r2)) {
      EXPECT_NEAR(r1, r2, 1e-6 * std::max(1.0, std::abs(r1)));
    }
  }
}

TEST(CrossingAnglesTest, IdenticalConstraintsNoIsolatedCrossings) {
  const Circle anchor({0, 0}, 1);
  const auto c1 = RadialConstraint::ForObjects(anchor, Circle({8, 1}, 1), 1);
  const auto c2 = RadialConstraint::ForObjects(anchor, Circle({8, 1}, 1), 2);
  EXPECT_TRUE(CrossingAngles(c1, c2).empty());
}

TEST(CrossingAnglesTest, AtMostTwo) {
  Rng rng(5);
  const Circle anchor({0, 0}, 1);
  for (int i = 0; i < 200; ++i) {
    const auto c1 = RadialConstraint::ForObjects(
        anchor, Circle({rng.Uniform(-20, 20), rng.Uniform(-20, 20)}, rng.Uniform(0, 2)),
        1);
    const auto c2 = RadialConstraint::ForObjects(
        anchor, Circle({rng.Uniform(-20, 20), rng.Uniform(-20, 20)}, rng.Uniform(0, 2)),
        2);
    if (c1.IsVacuous() || c2.IsVacuous()) continue;
    EXPECT_LE(CrossingAngles(c1, c2).size(), 2u);
  }
}

TEST(RadialConstraintTest, AgreesWithHyperbolaOutsideRegion) {
  // The radial form and the Eq. 5 conic describe the same outside region.
  const Circle oi({2, 3}, 0.6), oj({11, -2}, 1.4);
  const auto c = RadialConstraint::ForObjects(oi, oj, 1);
  auto h = Hyperbola::FromObjects(oi, oj).ValueOrDie();
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const Point p{rng.Uniform(-15, 30), rng.Uniform(-20, 20)};
    const Vec2 d = p - oi.center;
    const double r = d.Norm();
    const double rho = c.Rho(d.Normalized());
    const bool radial_outside = r > rho;  // strictly beyond the edge
    EXPECT_EQ(radial_outside, h.InOutsideRegion(p)) << i;
  }
}

}  // namespace
}  // namespace geom
}  // namespace uvd
