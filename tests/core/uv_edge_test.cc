// Direct tests for UVEdge: outside-region semantics and the 4-point test
// of Algorithm 5.
#include "core/uv_edge.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace uvd {
namespace core {
namespace {

TEST(UvEdgeTest, OutsideRegionEmptyForOverlap) {
  const UVEdge overlapping({{0, 0}, 5}, {{8, 0}, 5}, 1);
  EXPECT_TRUE(overlapping.OutsideRegionEmpty());
  const UVEdge separated({{0, 0}, 5}, {{20, 0}, 5}, 1);
  EXPECT_FALSE(separated.OutsideRegionEmpty());
  // Tangent circles: boundary case counts as empty (b would be 0).
  const UVEdge tangent({{0, 0}, 5}, {{10, 0}, 5}, 1);
  EXPECT_TRUE(tangent.OutsideRegionEmpty());
}

TEST(UvEdgeTest, InOutsideRegionIsDistanceDominance) {
  const geom::Circle oi({0, 0}, 2), oj({20, 0}, 3);
  const UVEdge edge(oi, oj, 7);
  EXPECT_EQ(edge.other_id(), 7);
  Rng rng(3);
  for (int t = 0; t < 3000; ++t) {
    const geom::Point p{rng.Uniform(-30, 50), rng.Uniform(-40, 40)};
    EXPECT_EQ(edge.InOutsideRegion(p), oi.DistMin(p) > oj.DistMax(p));
  }
}

TEST(UvEdgeTest, FourPointTestExactForBoxes) {
  // The outside region is convex, so "all four corners in X" must imply
  // "every box point in X". Verify with interior sampling.
  const geom::Circle oi({0, 0}, 2), oj({25, 5}, 3);
  const UVEdge edge(oi, oj, 1);
  Rng rng(5);
  int positives = 0;
  for (int t = 0; t < 2000; ++t) {
    const geom::Point lo{rng.Uniform(-10, 60), rng.Uniform(-40, 40)};
    const geom::Box box(lo, lo + geom::Vec2{rng.Uniform(1, 15), rng.Uniform(1, 15)});
    if (!edge.RegionInOutside(box)) continue;
    ++positives;
    for (int s = 0; s < 10; ++s) {
      const geom::Point p{rng.Uniform(box.lo.x, box.hi.x),
                          rng.Uniform(box.lo.y, box.hi.y)};
      EXPECT_TRUE(edge.InOutsideRegion(p));
    }
  }
  EXPECT_GT(positives, 0);
}

TEST(UvEdgeTest, StatsTickers) {
  Stats stats;
  const UVEdge edge({{0, 0}, 2}, {{20, 0}, 3}, 1);
  edge.InOutsideRegion({30, 0}, &stats);
  EXPECT_EQ(stats.Get(Ticker::kHyperbolaTests), 1u);
  stats.Reset();
  edge.RegionInOutside(geom::Box({28, -1}, {32, 1}), &stats);
  EXPECT_EQ(stats.Get(Ticker::kFourPointTests), 1u);
  EXPECT_GE(stats.Get(Ticker::kHyperbolaTests), 1u);
}

TEST(UvEdgeTest, ConversionsAgree) {
  const geom::Circle oi({3, 1}, 1.5), oj({18, -6}, 2.5);
  const UVEdge edge(oi, oj, 2);
  const auto constraint = edge.AsRadialConstraint();
  EXPECT_EQ(constraint.owner, 2);
  EXPECT_DOUBLE_EQ(constraint.s, 4.0);
  auto hyperbola = edge.AsHyperbola();
  ASSERT_TRUE(hyperbola.ok());
  EXPECT_DOUBLE_EQ(hyperbola.value().a(), 2.0);
}

}  // namespace
}  // namespace core
}  // namespace uvd
