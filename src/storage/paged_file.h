// Single-file page store: the durable backend behind FilePageManager.
//
// On-disk layout (all integers little-endian, encoded via storage/record.h):
//
//   offset 0                   kMetaBlockSize-byte metapage block
//   offset kMetaBlockSize      frame of page 0
//   offset kMetaBlockSize + i * frame_size
//                              frame of page i
//
// where frame_size = kPageFrameHeaderSize + page_size. The metapage holds
// magic, format version, page size, the DURABLE page count, a small
// bootstrap blob (the superblock root pointer: callers stash a manifest
// locator there, see uv_diagram.cc), and a checksum over all of it — the
// metapage/version/magic discipline of the PostgreSQL-style access methods
// (SNIPPETS.md mtree). Every data page frame carries a checksum over
// (page id || payload) plus the page id itself, so a torn write, a bit
// flip at rest, or a misdirected write is detected at read time and
// reported as a typed Status::Corruption instead of served as data.
//
// Durability contract: WritePage goes straight to the file (pwrite at the
// page's offset), but the METAPAGE — and with it the durable page count
// and bootstrap — is rewritten only by Checkpoint(), which fsyncs the data
// first, then writes the metapage, then fsyncs again. A crash at any point
// therefore leaves either (a) the previous checkpoint's metapage over a
// superset of its pages — Open recovers exactly the checkpointed state and
// ignores later orphan writes — or (b) a torn/corrupt metapage, which Open
// rejects with a typed error. Never a silently wrong page.
// tests/storage/crash_recovery_test.cc proves this at every enumerated
// write via SetWriteHook.
#ifndef UVD_STORAGE_PAGED_FILE_H_
#define UVD_STORAGE_PAGED_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace uvd {
namespace storage {

/// FNV-1a 64-bit over a byte range — the same mix the digest contracts
/// use; deterministic across platforms, no dependencies.
inline uint64_t Fnv64(const uint8_t* data, size_t n,
                      uint64_t h = 1469598103934665603ull) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixed metapage block size. Independent of page_size so Open can read
/// the metapage before knowing the page size it declares.
constexpr size_t kMetaBlockSize = 512;
/// Per-data-page frame header: checksum(u64) + page id(u32) + reserved(u32).
constexpr size_t kPageFrameHeaderSize = 16;
/// Bytes of caller data the metapage can carry (manifest locators etc.).
constexpr size_t kBootstrapCapacity = 256;

constexpr uint32_t kPagedFileMagic = 0x55565046;  // "UVPF"
constexpr uint32_t kPagedFileVersion = 1;

/// Fault decision returned by a write hook (crash-point harness).
enum class WriteFault {
  kNone,   ///< Write proceeds normally.
  kCrash,  ///< Nothing reaches the file; the handle is dead afterwards.
  kTorn,   ///< Only a prefix of the frame reaches the file, then dead.
};

/// Test-only hook: consulted before every physical write (data frames and
/// metapage alike) with a running write index. After a kCrash/kTorn fault
/// the file handle is DEAD — every later write, sync or checkpoint fails
/// with IOError, modeling a process that lost its device. Reopen the path
/// with PagedFile::Open to model the post-crash restart.
using WriteHook = std::function<WriteFault(uint64_t write_index)>;

/// \brief Checksummed single-file page store.
///
/// Thread safety: concurrent ReadPage calls are safe (pread, no shared
/// offset). Concurrent WritePage calls are safe iff they target distinct,
/// already-allocated pages (disjoint pwrite offsets). Allocate/AllocateRun/
/// Checkpoint/Close must not overlap any other call — the same
/// allocate-then-share phase discipline as PageManager (the crash-hook
/// counter uses a relaxed atomic so hooked builds stay safe too).
class PagedFile {
 public:
  ~PagedFile();
  PagedFile(PagedFile&&) noexcept;
  PagedFile& operator=(PagedFile&&) noexcept;
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Creates (truncating any existing file) and checkpoints an empty store.
  static Result<std::unique_ptr<PagedFile>> Create(const std::string& path,
                                                   size_t page_size);

  /// Opens an existing store, validating the metapage. Distinct failures
  /// map to distinct codes (tests/storage/storage_format_test.cc pins
  /// them): unreadable/short-of-a-metapage file -> IOError, bad magic ->
  /// InvalidArgument, future format version -> NotImplemented, metapage
  /// checksum mismatch or a file shorter than the durable page count
  /// requires -> Corruption.
  static Result<std::unique_ptr<PagedFile>> Open(const std::string& path);

  size_t page_size() const { return page_size_; }
  /// Pages allocated through this handle (>= the durable count until the
  /// next Checkpoint persists it).
  uint32_t page_count() const { return page_count_; }
  /// Pages recorded by the last completed Checkpoint.
  uint32_t durable_page_count() const { return durable_page_count_; }
  const std::string& path() const { return path_; }

  /// Extends the file with `count` zero pages (valid zero frames are
  /// written so the pages read back as zeros, like the in-RAM store).
  /// Returns the first new id.
  Result<uint32_t> AllocatePages(uint32_t count);

  /// Reads one page's payload into *out (resized to page_size). Verifies
  /// the frame checksum and stored page id; Corruption on mismatch,
  /// NotFound past page_count().
  Status ReadPage(uint32_t id, std::vector<uint8_t>* out) const;

  /// Writes one page's payload (shorter data is zero-padded to page_size;
  /// longer is InvalidArgument). The page must be allocated.
  Status WritePage(uint32_t id, const uint8_t* data, size_t size);

  /// Caller blob stored in the metapage at the next Checkpoint (at most
  /// kBootstrapCapacity bytes).
  Status SetBootstrap(const std::vector<uint8_t>& blob);
  const std::vector<uint8_t>& bootstrap() const { return bootstrap_; }

  /// fsyncs outstanding data writes.
  Status Sync();

  /// Durability point: fsync data, write the metapage (page count +
  /// bootstrap), fsync again. Open() recovers exactly the state of the
  /// last completed Checkpoint.
  Status Checkpoint();

  /// Checkpoint + close. Safe to call twice; the destructor closes
  /// WITHOUT checkpointing (a destructor cannot report failure — and the
  /// crash harness relies on "drop the handle" modeling a crash).
  Status Close();

  /// Installs the crash-point hook (tests only; see WriteHook).
  void SetWriteHook(WriteHook hook) { write_hook_ = std::move(hook); }
  /// Physical writes attempted so far (frames + metapages), for
  /// enumerating crash points.
  uint64_t write_count() const {
    return write_count_.load(std::memory_order_relaxed);
  }
  /// fsyncs issued so far.
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  /// True once an injected fault killed the handle.
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

 private:
  PagedFile() = default;

  uint64_t FrameOffset(uint32_t id) const {
    return kMetaBlockSize +
           static_cast<uint64_t>(id) * (kPageFrameHeaderSize + page_size_);
  }

  /// Hook consultation + pwrite of `n` bytes at `offset` (prefix-only for
  /// kTorn). All physical writes funnel through here.
  Status PhysicalWrite(const uint8_t* data, size_t n, uint64_t offset);
  Status WriteMetapage();
  Status WriteZeroFrames(uint32_t first, uint32_t count);

  std::string path_;
  int fd_ = -1;
  size_t page_size_ = 0;
  uint32_t page_count_ = 0;
  uint32_t durable_page_count_ = 0;
  std::vector<uint8_t> bootstrap_;
  WriteHook write_hook_;
  // Relaxed atomics: concurrent WritePage calls to distinct pages are part
  // of the contract, and each bumps the write counter / may trip a fault.
  std::atomic<uint64_t> write_count_{0};
  std::atomic<uint64_t> sync_count_{0};
  std::atomic<bool> dead_{false};
};

}  // namespace storage
}  // namespace uvd

#endif  // UVD_STORAGE_PAGED_FILE_H_
