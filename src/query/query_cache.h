// Cell-level result cache for the query engine: memoizes the UV-index
// point-location + page-list phase (the decoded leaf tuples) keyed by leaf
// node index. Moving-NN style workloads probe dense sequences of nearby
// points that land in the same UV-cell (Ali et al., probabilistic moving
// nearest-neighbor queries), so consecutive probes skip the leaf's page
// chain entirely. Because the cached value is byte-for-byte the output of
// UVIndex::ReadLeafEntries, every downstream phase (d_minmax verification,
// object retrieval, integration) sees identical input and the engine's
// answers are bitwise-equal with the cache on or off.
#ifndef UVD_QUERY_QUERY_CACHE_H_
#define UVD_QUERY_QUERY_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "rtree/leaf_codec.h"

namespace uvd {
namespace query {

/// Cache sizing. The entry unit is one leaf's full tuple list (typically
/// one short page chain), so even small capacities cover a trajectory's
/// working set.
struct QueryCacheOptions {
  size_t capacity = 1024;  ///< Max cached leaves across all shards.
  int shards = 8;          ///< Lock shards; <= 1 means one global lock.
};

/// \brief Bounded, sharded LRU map from leaf index to decoded leaf tuples.
///
/// Thread safety: every method is safe for concurrent callers. Each shard
/// has its own mutex + LRU list; a leaf's shard is fixed (leaf % shards),
/// so two workers only contend when their leaves collide on a shard. The
/// loader runs outside the shard lock — two workers missing the same leaf
/// simultaneously may both read it (duplicate I/O, identical bytes) rather
/// than serializing every miss in the shard behind one page-chain read.
class QueryCache {
 public:
  using Loader = std::function<Result<std::vector<rtree::LeafEntry>>()>;

  explicit QueryCache(const QueryCacheOptions& options = {});

  /// Returns the tuples for `leaf`, invoking `loader` on a miss and
  /// caching its value. Hits/misses are billed to `stats` (the calling
  /// worker's shard) as kQueryCacheHits / kQueryCacheMisses.
  Result<std::vector<rtree::LeafEntry>> GetOrLoad(uint32_t leaf,
                                                  const Loader& loader,
                                                  Stats* stats = nullptr);

  /// Drops every entry (e.g. after UVDiagram::InsertObject extends leaf
  /// page chains).
  void Clear();

  /// Current number of cached leaves (sums shard sizes; approximate while
  /// writers are in flight).
  size_t size() const;

  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    uint32_t leaf;
    std::vector<rtree::LeafEntry> tuples;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint32_t, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(uint32_t leaf) { return *shards_[leaf % shards_.size()]; }

  size_t capacity_;            // total, across shards
  size_t shard_capacity_;      // per shard
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace query
}  // namespace uvd

#endif  // UVD_QUERY_QUERY_CACHE_H_
