// Query workloads: the paper evaluates 50 PNN queries with uniformly
// distributed query points (Sec. VI-A) and UV-partition queries over
// square regions of size 100-500 (Fig. 7(h)).
#ifndef UVD_DATAGEN_WORKLOAD_H_
#define UVD_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace uvd {
namespace datagen {

/// Uniform query points inside the domain.
std::vector<geom::Point> UniformQueryPoints(int count, const geom::Box& domain,
                                            uint64_t seed);

/// Square query regions with the given side length, fully inside the
/// domain.
std::vector<geom::Box> SquareQueryRegions(int count, const geom::Box& domain,
                                          double side, uint64_t seed);

}  // namespace datagen
}  // namespace uvd

#endif  // UVD_DATAGEN_WORKLOAD_H_
