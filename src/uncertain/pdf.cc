#include "uncertain/pdf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uvd {
namespace uncertain {

RadialHistogramPdf::RadialHistogramPdf(PdfKind kind, double radius,
                                       std::vector<double> bars)
    : kind_(kind), radius_(radius), bars_(std::move(bars)) {
  UVD_CHECK_GE(radius_, 0.0);
  UVD_CHECK(!bars_.empty());
}

RadialHistogramPdf RadialHistogramPdf::Gaussian(double radius, int num_bars) {
  UVD_CHECK_GT(num_bars, 0);
  std::vector<double> bars(static_cast<size_t>(num_bars), 0.0);
  if (radius <= 0.0) {
    bars[0] = 1.0;  // point object: all mass at the center
    return RadialHistogramPdf(PdfKind::kGaussian, std::max(radius, 0.0),
                              std::move(bars));
  }
  const double sigma = (2.0 * radius) / 6.0;  // diameter / 6
  auto rayleigh_cdf = [&](double r) {
    return 1.0 - std::exp(-(r * r) / (2.0 * sigma * sigma));
  };
  const double total = rayleigh_cdf(radius);
  for (int b = 0; b < num_bars; ++b) {
    const double r_in = radius * b / num_bars;
    const double r_out = radius * (b + 1) / num_bars;
    bars[static_cast<size_t>(b)] = (rayleigh_cdf(r_out) - rayleigh_cdf(r_in)) / total;
  }
  return RadialHistogramPdf(PdfKind::kGaussian, radius, std::move(bars));
}

RadialHistogramPdf RadialHistogramPdf::Uniform(double radius, int num_bars) {
  UVD_CHECK_GT(num_bars, 0);
  std::vector<double> bars(static_cast<size_t>(num_bars), 0.0);
  if (radius <= 0.0) {
    bars[0] = 1.0;
    return RadialHistogramPdf(PdfKind::kUniform, std::max(radius, 0.0),
                              std::move(bars));
  }
  for (int b = 0; b < num_bars; ++b) {
    const double r_in = radius * b / num_bars;
    const double r_out = radius * (b + 1) / num_bars;
    bars[static_cast<size_t>(b)] = (r_out * r_out - r_in * r_in) / (radius * radius);
  }
  return RadialHistogramPdf(PdfKind::kUniform, radius, std::move(bars));
}

double RadialHistogramPdf::RadialCdf(double r) const {
  if (radius_ <= 0.0) return r >= 0.0 ? 1.0 : 0.0;
  if (r <= 0.0) return 0.0;
  if (r >= radius_) return 1.0;
  double acc = 0.0;
  for (int b = 0; b < num_bars(); ++b) {
    const double r_in = RingInner(b);
    const double r_out = RingOuter(b);
    if (r >= r_out) {
      acc += bars_[static_cast<size_t>(b)];
      continue;
    }
    if (r > r_in) {
      // Uniform over the annulus: fraction of ring area within radius r.
      const double frac = (r * r - r_in * r_in) / (r_out * r_out - r_in * r_in);
      acc += bars_[static_cast<size_t>(b)] * frac;
    }
    break;
  }
  return acc;
}

geom::Vec2 RadialHistogramPdf::SampleOffset(Rng* rng) const {
  if (radius_ <= 0.0) return {0.0, 0.0};
  // Pick a ring by mass.
  const double u = rng->Uniform(0.0, 1.0);
  double acc = 0.0;
  int ring = num_bars() - 1;
  for (int b = 0; b < num_bars(); ++b) {
    acc += bars_[static_cast<size_t>(b)];
    if (u <= acc) {
      ring = b;
      break;
    }
  }
  // Uniform position within the annulus: area-weighted radius.
  const double r_in = RingInner(ring);
  const double r_out = RingOuter(ring);
  const double v = rng->Uniform(0.0, 1.0);
  const double r = std::sqrt(r_in * r_in + v * (r_out * r_out - r_in * r_in));
  const double theta = rng->Uniform(0.0, 2.0 * M_PI);
  return {r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace uncertain
}  // namespace uvd
