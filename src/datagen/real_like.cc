#include "datagen/real_like.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace uvd {
namespace datagen {

namespace {

geom::Point Clamp(const geom::Point& p, double size) {
  return {std::clamp(p.x, 0.0, size), std::clamp(p.y, 0.0, size)};
}

/// Clustered point process: cluster centers uniform, members Gaussian
/// around them, plus a sprinkle of background noise.
std::vector<geom::Point> ClusteredCenters(size_t count, double size, Rng* rng,
                                          int num_clusters, double cluster_sigma,
                                          double noise_fraction) {
  std::vector<geom::Point> hubs;
  hubs.reserve(static_cast<size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    hubs.push_back({rng->Uniform(0, size), rng->Uniform(0, size)});
  }
  std::vector<geom::Point> centers;
  centers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (rng->Bernoulli(noise_fraction)) {
      centers.push_back({rng->Uniform(0, size), rng->Uniform(0, size)});
      continue;
    }
    const geom::Point& hub = hubs[static_cast<size_t>(
        rng->UniformInt(0, num_clusters - 1))];
    centers.push_back(Clamp({rng->Gaussian(hub.x, cluster_sigma),
                             rng->Gaussian(hub.y, cluster_sigma)},
                            size));
  }
  return centers;
}

/// Random meandering polyline with the given segment count/length and
/// heading volatility (radians per step).
std::vector<geom::Point> RandomPolyline(double size, Rng* rng, int segments,
                                        double step, double wiggle) {
  std::vector<geom::Point> pts;
  geom::Point p{rng->Uniform(0, size), rng->Uniform(0, size)};
  double heading = rng->Uniform(0, 2 * M_PI);
  pts.push_back(p);
  for (int s = 0; s < segments; ++s) {
    heading += rng->Gaussian(0.0, wiggle);
    p = Clamp(p + geom::UnitVector(heading) * step, size);
    pts.push_back(p);
  }
  return pts;
}

/// Points placed along polylines with lateral jitter.
std::vector<geom::Point> LineFollowingCenters(size_t count, double size, Rng* rng,
                                              int num_lines, int segments, double step,
                                              double wiggle, double jitter) {
  std::vector<std::vector<geom::Point>> lines;
  lines.reserve(static_cast<size_t>(num_lines));
  for (int l = 0; l < num_lines; ++l) {
    lines.push_back(RandomPolyline(size, rng, segments, step, wiggle));
  }
  std::vector<geom::Point> centers;
  centers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto& line = lines[static_cast<size_t>(rng->UniformInt(0, num_lines - 1))];
    const size_t seg = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(line.size()) - 2));
    const double t = rng->Uniform(0, 1);
    const geom::Point on_line = line[seg] + (line[seg + 1] - line[seg]) * t;
    centers.push_back(Clamp({rng->Gaussian(on_line.x, jitter),
                             rng->Gaussian(on_line.y, jitter)},
                            size));
  }
  return centers;
}

}  // namespace

const char* RealDatasetName(RealDataset d) {
  switch (d) {
    case RealDataset::kUtility:
      return "utility";
    case RealDataset::kRoads:
      return "roads";
    case RealDataset::kRrlines:
      return "rrlines";
  }
  return "unknown";
}

size_t RealDatasetDefaultCount(RealDataset d) {
  switch (d) {
    case RealDataset::kUtility:
      return 17000;
    case RealDataset::kRoads:
      return 30000;
    case RealDataset::kRrlines:
      return 36000;
  }
  return 0;
}

std::vector<uncertain::UncertainObject> GenerateRealLike(RealDataset which,
                                                         DatasetOptions options) {
  if (options.count == 0) options.count = RealDatasetDefaultCount(which);
  Rng rng(options.seed ^ (static_cast<uint64_t>(which) + 1));
  const double size = options.domain_size;
  std::vector<geom::Point> centers;
  switch (which) {
    case RealDataset::kUtility:
      centers = ClusteredCenters(options.count, size, &rng, /*num_clusters=*/60,
                                 /*cluster_sigma=*/size / 80.0,
                                 /*noise_fraction=*/0.05);
      break;
    case RealDataset::kRoads:
      centers = LineFollowingCenters(options.count, size, &rng, /*num_lines=*/80,
                                     /*segments=*/40, /*step=*/size / 40.0,
                                     /*wiggle=*/0.5, /*jitter=*/size / 500.0);
      break;
    case RealDataset::kRrlines:
      centers = LineFollowingCenters(options.count, size, &rng, /*num_lines=*/25,
                                     /*segments=*/20, /*step=*/size / 12.0,
                                     /*wiggle=*/0.15, /*jitter=*/size / 800.0);
      break;
  }
  return ObjectsFromCenters(centers, options);
}

}  // namespace datagen
}  // namespace uvd
