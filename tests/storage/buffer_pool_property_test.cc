// Randomized buffer-pool property test: for every pool capacity (1, 2, 16
// and unbounded), a seeded stream of reads, write-throughs, invalidations,
// pin-holds and clears runs against a BufferPool whose backing is a plain
// in-RAM PageManager — the oracle. Every page the pool serves must be
// byte-identical to the oracle at all times, the resident set must respect
// capacity whenever no pins are outstanding, and the eviction accounting
// must be EXACT: misses == resident + evictions + invalidations+ clears'
// share (the single-threaded conservation law from buffer_pool.h). A final
// multi-threaded torture phase hammers one pool from several readers under
// TSan: contents stay correct and the hit/miss split stays conservative.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"

namespace uvd {
namespace storage {
namespace {

constexpr size_t kPageSize = 64;
constexpr size_t kNumPages = 48;

std::vector<uint8_t> Fill(uint32_t page, uint32_t version) {
  std::vector<uint8_t> data(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>((page * 37 + version * 101 + i) & 0xff);
  }
  return data;
}

struct Harness {
  Stats stats;
  PageManager oracle{kPageSize, &stats};
  std::vector<uint32_t> versions;

  Harness() {
    oracle.AllocateRun(kNumPages);
    versions.assign(kNumPages, 0);
    for (uint32_t p = 0; p < kNumPages; ++p) {
      UVD_CHECK_OK(oracle.Write(p, Fill(p, 0)));
    }
  }

  BufferPool MakePool(size_t capacity) {
    BufferPoolOptions options;
    options.capacity_pages = capacity;
    options.protected_fraction = 0.5;
    return BufferPool(options, kPageSize,
                      [this](PageId id, std::vector<uint8_t>* out) {
                        return oracle.Read(id, out);
                      });
  }
};

TEST(BufferPoolPropertyTest, RandomOpsMatchOracleAtEveryCapacity) {
  for (size_t capacity : {size_t{1}, size_t{2}, size_t{16}, size_t{0}}) {
    for (uint64_t seed : {7ull, 99ull, 20260808ull}) {
      SCOPED_TRACE("capacity=" + std::to_string(capacity) +
                   " seed=" + std::to_string(seed));
      Harness h;
      BufferPool pool = h.MakePool(capacity);
      Rng rng(seed);
      std::vector<BufferPool::PageRef> held;
      uint64_t clear_invalidations = 0;

      for (int op = 0; op < 4000; ++op) {
        const auto page =
            static_cast<PageId>(rng.UniformInt(0, kNumPages - 1));
        const int kind = static_cast<int>(rng.UniformInt(0, 99));
        if (kind < 55) {
          // Read through the pool; compare with the oracle byte-for-byte.
          std::vector<uint8_t> got, want;
          UVD_CHECK_OK(pool.Read(page, &got));
          UVD_CHECK_OK(h.oracle.Read(page, &want));
          ASSERT_EQ(got, want) << "page " << page;
        } else if (kind < 75) {
          // Write-through: oracle first, then Put (the FilePageManager
          // ordering). The pool must never serve the stale version.
          const auto data = Fill(page, ++h.versions[page]);
          UVD_CHECK_OK(h.oracle.Write(page, data));
          pool.Put(page, data);
        } else if (kind < 85) {
          pool.Invalidate(page);
        } else if (kind < 93) {
          // Pin and hold: the frame must survive any eviction pressure.
          auto pinned = pool.Pin(page);
          UVD_CHECK_OK(pinned.status());
          held.push_back(std::move(pinned).value());
        } else if (kind < 97) {
          if (!held.empty()) {
            held.erase(held.begin() +
                       static_cast<long>(rng.UniformInt(
                           0, static_cast<int64_t>(held.size()) - 1)));
          }
        } else {
          // Clear bills an invalidation per resident frame.
          clear_invalidations += pool.size();
          pool.Clear();
        }
        // Pinned data stays valid and current-at-pin-or-newer is not
        // required — but it must never be garbage: still a full page.
        for (const auto& ref : held) {
          ASSERT_EQ(ref.data().size(), kPageSize);
        }
      }
      held.clear();

      // Full sweep: the steady state serves the oracle bytes everywhere.
      // (Its misses also drain any transient pin-overflow, so the capacity
      // bound below is checked at a quiescent point.)
      for (uint32_t p = 0; p < kNumPages; ++p) {
        std::vector<uint8_t> got, want;
        UVD_CHECK_OK(pool.Read(p, &got));
        UVD_CHECK_OK(h.oracle.Read(p, &want));
        ASSERT_EQ(got, want) << "page " << p;
      }

      // Exact conservation: every miss either is still resident, was
      // evicted, or was invalidated (individually or via Clear).
      EXPECT_EQ(pool.misses(),
                pool.size() + pool.evictions() + pool.invalidations());
      EXPECT_GE(pool.invalidations(), clear_invalidations);
      if (capacity != 0) {
        EXPECT_LE(pool.size(), capacity);
      } else {
        EXPECT_EQ(pool.evictions(), 0u);
      }
    }
  }
}

TEST(BufferPoolPropertyTest, UnboundedPoolNeverRefetches) {
  Harness h;
  BufferPool pool = h.MakePool(0);
  for (int round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < kNumPages; ++p) {
      std::vector<uint8_t> got;
      UVD_CHECK_OK(pool.Read(p, &got));
    }
  }
  EXPECT_EQ(pool.misses(), kNumPages);
  EXPECT_EQ(pool.hits(), 2u * kNumPages);
  EXPECT_EQ(pool.size(), kNumPages);
}

TEST(BufferPoolPropertyTest, ConcurrentReadersStayCorrect) {
  for (size_t capacity : {size_t{2}, size_t{16}, size_t{0}}) {
    SCOPED_TRACE("capacity=" + std::to_string(capacity));
    Harness h;
    BufferPool pool = h.MakePool(capacity);
    constexpr int kThreads = 6;
    constexpr int kReadsPerThread = 1500;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&pool, &failures, t] {
        Rng rng(1000 + static_cast<uint64_t>(t));
        std::vector<uint8_t> got;
        for (int i = 0; i < kReadsPerThread; ++i) {
          const auto page =
              static_cast<PageId>(rng.UniformInt(0, kNumPages - 1));
          if (!pool.Read(page, &got).ok() || got != Fill(page, 0)) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (i % 7 == 0) {
            auto pinned = pool.Pin(page);
            if (!pinned.ok() ||
                pinned.value().data() != Fill(page, 0)) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    // Conservation relaxes to an inequality under concurrency (racing
    // misses may double-load), but hits+misses covers every read and the
    // capacity bound still holds with no pins outstanding.
    const uint64_t reads =
        static_cast<uint64_t>(kThreads) * kReadsPerThread;
    EXPECT_GE(pool.hits() + pool.misses(), reads);
    if (capacity != 0) EXPECT_LE(pool.size(), capacity);
  }
}

}  // namespace
}  // namespace storage
}  // namespace uvd
