// Throughput of the batched query engine (src/query/): queries/sec for a
// moving-NN style PNN stream, swept over worker threads x cache on/off.
//
// Unlike the per-figure benches (which charge UVD_SIM_IO_MS per page read
// post hoc), this bench puts the system into the paper's disk-bound regime
// for real: PageManager::SetSimulatedReadLatencyUs makes every page read
// block, so worker threads demonstrably hide I/O latency instead of just
// being billed for it. The engine's answers are checked bitwise-identical
// across every configuration (thread count and cache setting).
//
// Flags (see bench_common.h): --query_threads=N --batch_size=N --smoke
// plus --sim_io_us=N (default 500) for the simulated per-read latency,
// --json <path> to persist the sweep with an embedded MetricsRegistry
// snapshot, and --overhead-check to assert the observability layer costs
// < 5% throughput (obs fully on vs fully off, answers digest-checked
// identical) instead of running the sweep.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "query/query_engine.h"
#include "query/result_digest.h"

namespace uvd {
namespace bench {
namespace {

struct RunResult {
  double qps = 0;
  double leaf_io_per_query = 0;
  double hit_rate = 0;
  uint64_t hash = 0;
};

RunResult RunBatch(const core::UVDiagram& diagram, const query::QueryBatch& batch,
                   int threads, bool cache) {
  query::QueryEngineOptions opts;
  opts.threads = threads;
  opts.enable_cache = cache;
  query::QueryEngine engine(diagram, opts);

  diagram.stats().Reset();
  Timer timer;
  const auto results = engine.ExecuteBatch(batch);
  const double seconds = timer.ElapsedSeconds();

  RunResult r;
  const double n = static_cast<double>(batch.size());
  r.qps = n / seconds;
  r.leaf_io_per_query =
      static_cast<double>(diagram.stats().Get(Ticker::kUvIndexLeafReads)) / n;
  const double hits = static_cast<double>(diagram.stats().Get(Ticker::kQueryCacheHits));
  const double misses =
      static_cast<double>(diagram.stats().Get(Ticker::kQueryCacheMisses));
  r.hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
  r.hash = query::DigestPointAnswers(results);
  return r;
}

/// Observability overhead smoke: the same engine/batch with obs fully off
/// (metrics + tracing disabled) vs fully on, interleaved min-of-N reps so
/// thermal/scheduler noise hits both legs alike. Pure CPU (no simulated
/// I/O — sleeps would mask any overhead). Asserts the on/off ratio stays
/// under the contract's 5% and that answers are digest-identical.
int RunOverheadCheck(const core::UVDiagram& diagram, const query::QueryBatch& batch,
                     int threads) {
  storage::PageManager::SetSimulatedReadLatencyUs(0);
  query::QueryEngineOptions opts;
  opts.threads = threads;
  query::QueryEngine engine(diagram, opts);

  const auto time_batch = [&] {
    Timer timer;
    const auto results = engine.ExecuteBatch(batch);
    const double seconds = timer.ElapsedSeconds();
    return std::make_pair(seconds, query::DigestPointAnswers(results));
  };

  // Warm-up: populate the leaf cache and fault in every page so both legs
  // measure steady-state serving.
  (void)time_batch();

  constexpr int kReps = 7;
  double off_min = 1e300, on_min = 1e300;
  uint64_t off_hash = 0, on_hash = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::SetMetricsEnabled(false);
    obs::TraceRecorder::SetEnabled(false);
    const auto off = time_batch();
    off_min = std::min(off_min, off.first);
    off_hash = off.second;

    obs::SetMetricsEnabled(true);
    obs::TraceRecorder::SetEnabled(true);
    const auto on = time_batch();
    on_min = std::min(on_min, on.first);
    on_hash = on.second;
  }
  obs::SetMetricsEnabled(true);
  obs::TraceRecorder::SetEnabled(false);
  obs::TraceRecorder::Global().Clear();

  const double ratio = off_min > 0 ? on_min / off_min : 1.0;
  std::printf("overhead check: obs-off min %.3f ms, obs-on min %.3f ms, "
              "ratio %.4f (budget 1.05)\n",
              off_min * 1e3, on_min * 1e3, ratio);
  std::printf("answers identical with obs on/off: %s\n",
              off_hash == on_hash ? "yes" : "NO — DETERMINISM VIOLATION");
  UVD_CHECK(off_hash == on_hash) << "obs toggling changed answers";
  UVD_CHECK(ratio <= 1.05) << "observability overhead above 5%: ratio = " << ratio;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uvd

int main(int argc, char** argv) {
  using namespace uvd;
  using namespace uvd::bench;

  const QueryBenchFlags flags = ParseQueryBenchFlags(argc, argv);

  PrintBanner("bench_batched_queries — concurrent batched query engine",
              "throughput extension (ROADMAP): moving-NN PNN streams, "
              "cf. Ali et al. probabilistic moving NN queries");

  datagen::DatasetOptions data;
  data.count = flags.smoke ? 600 : ScaledCount(10000);
  data.seed = 42;
  const geom::Box domain = datagen::DomainFor(data);
  auto objects = datagen::GenerateUniform(data);

  Stats stats;
  core::UVDiagramOptions options;
  options.build_threads = ThreadPool::DefaultThreads();
  const core::UVDiagram diagram =
      BuildDiagram(std::move(objects), domain, options, &stats);

  const int batch_size = flags.smoke ? 200 : flags.batch_size;
  const query::QueryBatch batch = [&] {
    query::QueryBatch b;
    const auto points = datagen::TrajectoryQueryPoints(
        batch_size, domain, /*step_length=*/domain.Width() / 400.0, /*seed=*/7);
    b.reserve(points.size());
    for (const auto& p : points) b.push_back(query::Query::Pnn(p));
    return b;
  }();

  const bool overhead_check = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--overhead-check") return true;
    }
    return false;
  }();
  if (overhead_check) {
    const int threads =
        flags.query_threads > 0 ? flags.query_threads : ThreadPool::DefaultThreads();
    return RunOverheadCheck(diagram, batch, threads);
  }

  std::printf("|O| = %zu, batch = %d trajectory PNN queries, sim read latency "
              "= %d us\n\n",
              data.count, batch_size, flags.sim_io_us);
  storage::PageManager::SetSimulatedReadLatencyUs(
      static_cast<uint32_t>(flags.sim_io_us));

  std::vector<int> thread_sweep =
      flags.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  if (flags.query_threads > 0) thread_sweep = {1, flags.query_threads};

  const std::string json_path = ParseJsonPath(argc, argv);
  JsonReport report("bench_batched_queries");

  std::printf("%8s %7s %12s %14s %10s\n", "threads", "cache", "queries/s",
              "leaf IO/query", "hit rate");
  uint64_t reference_hash = 0;
  bool first = true;
  bool all_identical = true;
  double qps_1t = 0, qps_max_t = 0;
  for (const bool cache : {false, true}) {
    for (const int threads : thread_sweep) {
      const RunResult r = RunBatch(diagram, batch, threads, cache);
      std::printf("%8d %7s %12.1f %14.2f %9.1f%%\n", threads,
                  cache ? "on" : "off", r.qps, r.leaf_io_per_query,
                  100.0 * r.hit_rate);
      if (!json_path.empty()) {
        report.BeginRecord();
        report.Add("threads", static_cast<int64_t>(threads));
        report.Add("cache", std::string(cache ? "on" : "off"));
        report.Add("qps", r.qps);
        report.Add("leaf_io_per_query", r.leaf_io_per_query);
        report.Add("hit_rate", r.hit_rate);
      }
      if (first) {
        reference_hash = r.hash;
        first = false;
      } else if (r.hash != reference_hash) {
        all_identical = false;
      }
      if (!cache) {
        if (threads == 1) qps_1t = r.qps;
        if (threads == thread_sweep.back()) qps_max_t = r.qps;
      }
    }
  }

  if (!json_path.empty()) {
    // One more instrumented run with everything registered, so the report
    // embeds the unified MetricsRegistry snapshot (per-kind latency
    // histograms, cache occupancy, page-read latency, tickers).
    query::QueryEngineOptions opts;
    opts.threads = thread_sweep.back();
    query::QueryEngine engine(diagram, opts);
    diagram.stats().Reset();
    (void)engine.ExecuteBatch(batch);
    obs::MetricsRegistry registry;
    engine.RegisterMetrics(&registry, "engine");
    registry.RegisterHistogram("storage.page.read.latency.us",
                               &diagram.page_manager().read_latency_histogram());
    report.BeginRecord();
    report.Add("record", std::string("metrics_snapshot"));
    report.AddRaw("metrics", registry.TakeSnapshot().ToJson());
    report.WriteTo(json_path);
  }
  storage::PageManager::SetSimulatedReadLatencyUs(0);

  std::printf("\nspeedup (%d threads vs 1, cache off) = %.2fx (target > 2.0)\n",
              thread_sweep.back(), qps_1t > 0 ? qps_max_t / qps_1t : 0.0);
  std::printf("answers bitwise-identical across configs: %s\n",
              all_identical ? "yes" : "NO — DETERMINISM VIOLATION");
  UVD_CHECK(all_identical) << "batch answers differ across thread/cache configs";
  return 0;
}
