// Self-test fixture: nondeterministic randomness sources. Each marked
// line must be flagged `nondeterministic-rng` when linted as library code
// (outside src/datagen/).
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline int BadRand() {
  return std::rand();  // BAD: process-global seeded state
}

inline void BadSeed() {
  srand(42);  // BAD: srand
}

inline unsigned BadDevice() {
  std::random_device rd;  // BAD: hardware entropy
  return rd();
}

inline std::mt19937 BadTimeSeed() {
  return std::mt19937(static_cast<unsigned>(time(nullptr)));  // BAD: time-seeded
}

inline std::mt19937_64 BadClockSeed() {
  // BAD: clock-seeded
  return std::mt19937_64(std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fixture
