// Tests for the radial lower envelope (exact UV-cell). The key property:
// a point is inside the envelope iff no constraining object strictly
// dominates the anchor there (the paper's Definition 1 via brute force).
#include "geom/envelope.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/circle.h"

namespace uvd {
namespace geom {
namespace {

constexpr double kDomainSize = 1000.0;

Box Domain() { return Box({0, 0}, {kDomainSize, kDomainSize}); }

/// Brute-force UV-cell membership: q in U_i iff for all j,
/// dist_min(O_i, q) <= dist_max(O_j, q).
bool BruteForceInCell(const Circle& anchor, const std::vector<Circle>& others,
                      const Point& q) {
  for (const Circle& o : others) {
    if (anchor.DistMin(q) > o.DistMax(q)) return false;
  }
  return true;
}

TEST(EnvelopeTest, FreshEnvelopeEqualsDomain) {
  const Point c{400, 300};
  RadialEnvelope env(c, Domain());
  // Area equals the domain area (Algorithm 1 Step 2: P_i <- D).
  EXPECT_NEAR(env.Area(), Domain().Area(), 1e-6 * Domain().Area());
  // All four walls own boundary.
  EXPECT_EQ(env.arcs().size(), 4u);
  EXPECT_TRUE(env.OwnerObjects().empty());
  // Rho hits the walls exactly.
  EXPECT_NEAR(env.RhoAt(0.0), kDomainSize - c.x, 1e-9);
  EXPECT_NEAR(env.RhoAt(M_PI), c.x, 1e-9);
  EXPECT_NEAR(env.RhoAt(M_PI / 2), kDomainSize - c.y, 1e-9);
  EXPECT_NEAR(env.RhoAt(-M_PI / 2), c.y, 1e-9);
}

TEST(EnvelopeTest, DomainCornersOnBoundary) {
  const Point c{500, 500};
  RadialEnvelope env(c, Domain());
  for (const Point& corner : Domain().Corners()) {
    EXPECT_TRUE(env.Contains(corner));
    const Vec2 d = corner - c;
    EXPECT_NEAR(env.RhoAt(d.Angle()), d.Norm(), 1e-6);
  }
  EXPECT_FALSE(env.Contains({kDomainSize + 1, 500}));
}

TEST(EnvelopeTest, VacuousConstraintIgnored) {
  const Circle anchor({500, 500}, 50);
  RadialEnvelope env(anchor.center, Domain());
  const Circle overlapping({520, 500}, 50);
  EXPECT_FALSE(env.Insert(RadialConstraint::ForObjects(anchor, overlapping, 7)));
  EXPECT_NEAR(env.Area(), Domain().Area(), 1e-6 * Domain().Area());
}

TEST(EnvelopeTest, SingleConstraintHalvesPointCell) {
  // Two points, symmetric: the cell is the half domain up to the bisector.
  const Circle anchor({250, 500}, 0);
  const Circle other({750, 500}, 0);
  RadialEnvelope env(anchor.center, Domain());
  EXPECT_TRUE(env.Insert(RadialConstraint::ForObjects(anchor, other, 1)));
  EXPECT_NEAR(env.Area(), Domain().Area() / 2, 1e-6 * Domain().Area());
  EXPECT_TRUE(env.Contains({499, 500}));
  EXPECT_FALSE(env.Contains({501, 500}));
  EXPECT_EQ(env.OwnerObjects(), std::vector<int>{1});
}

TEST(EnvelopeTest, InsertReportsWhetherRegionChanged) {
  const Circle anchor({200, 200}, 10);
  RadialEnvelope env(anchor.center, Domain());
  // A far object whose edge lies outside the domain does not change P_i.
  const Circle far_away({205, 200}, 10);  // overlapping -> vacuous
  EXPECT_FALSE(env.Insert(RadialConstraint::ForObjects(anchor, far_away, 3)));
  // A meaningful neighbor does.
  const Circle near_obj({400, 200}, 10);
  EXPECT_TRUE(env.Insert(RadialConstraint::ForObjects(anchor, near_obj, 4)));
}

TEST(EnvelopeTest, ContainmentMatchesBruteForceUniform) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const Circle anchor({rng.Uniform(100, 900), rng.Uniform(100, 900)},
                        rng.Uniform(0, 20));
    std::vector<Circle> others;
    RadialEnvelope env(anchor.center, Domain());
    for (int j = 0; j < 30; ++j) {
      const Circle o({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)},
                     rng.Uniform(0, 20));
      others.push_back(o);
      env.Insert(RadialConstraint::ForObjects(anchor, o, j));
    }
    for (int k = 0; k < 500; ++k) {
      const Point q{rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)};
      const bool expect = BruteForceInCell(anchor, others, q);
      // Skip points within a hair of the boundary to avoid tie flakiness.
      const Vec2 d = q - anchor.center;
      const double rho = env.RhoAt(d.Angle());
      if (std::isfinite(rho) && std::abs(d.Norm() - rho) < 1e-6) continue;
      EXPECT_EQ(env.Contains(q), expect)
          << "trial=" << trial << " q=(" << q.x << "," << q.y << ")";
    }
  }
}

TEST(EnvelopeTest, OwnerObjectsAreExactlyTheBindingConstraints) {
  // Construct a case with a known redundant object: far behind a closer one
  // in the same direction.
  const Circle anchor({500, 500}, 10);
  RadialEnvelope env(anchor.center, Domain());
  env.Insert(RadialConstraint::ForObjects(anchor, Circle({600, 500}, 10), 1));
  env.Insert(RadialConstraint::ForObjects(anchor, Circle({990, 500}, 10), 2));
  const auto owners = env.OwnerObjects();
  EXPECT_EQ(owners, std::vector<int>{1});  // object 2's edge is occluded
}

TEST(EnvelopeTest, MaxVertexDistanceBoundsSampledBoundary) {
  Rng rng(77);
  const Circle anchor({300, 600}, 15);
  RadialEnvelope env(anchor.center, Domain());
  for (int j = 0; j < 25; ++j) {
    env.Insert(RadialConstraint::ForObjects(
        anchor,
        Circle({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)},
               rng.Uniform(0, 25)),
        j));
  }
  const double d = env.MaxVertexDistance();
  ASSERT_TRUE(std::isfinite(d));
  for (double theta = 0; theta < 2 * M_PI; theta += 1e-3) {
    EXPECT_LE(env.RhoAt(theta), d + 1e-6) << "theta=" << theta;
  }
}

TEST(EnvelopeTest, VerticesLieOnBoundary) {
  Rng rng(88);
  const Circle anchor({500, 400}, 10);
  RadialEnvelope env(anchor.center, Domain());
  for (int j = 0; j < 15; ++j) {
    env.Insert(RadialConstraint::ForObjects(
        anchor,
        Circle({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)}, 10.0), j));
  }
  for (const Point& v : env.Vertices()) {
    const Vec2 d = v - anchor.center;
    EXPECT_NEAR(env.RhoAt(d.Angle()), d.Norm(), 1e-5);
  }
}

TEST(EnvelopeTest, AreaMatchesMonteCarlo) {
  Rng rng(4242);
  const Circle anchor({400, 400}, 20);
  std::vector<Circle> others;
  RadialEnvelope env(anchor.center, Domain());
  for (int j = 0; j < 12; ++j) {
    const Circle o({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)}, 20.0);
    others.push_back(o);
    env.Insert(RadialConstraint::ForObjects(anchor, o, j));
  }
  const double area = env.Area();
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Point q{rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)};
    if (BruteForceInCell(anchor, others, q)) ++hits;
  }
  const double mc = Domain().Area() * hits / n;
  EXPECT_NEAR(area, mc, 0.02 * Domain().Area());
}

TEST(EnvelopeTest, ClassicVoronoiSpecialCase) {
  // All radii zero: the envelope is the Voronoi cell; point-in-cell equals
  // nearest-center checks.
  Rng rng(2020);
  const Point anchor{450, 450};
  std::vector<Point> sites;
  RadialEnvelope env(anchor, Domain());
  for (int j = 0; j < 20; ++j) {
    const Point s{rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)};
    sites.push_back(s);
    env.Insert(RadialConstraint::ForObjects(Circle(anchor, 0), Circle(s, 0), j));
  }
  for (int k = 0; k < 2000; ++k) {
    const Point q{rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)};
    double best = Distance(q, anchor);
    for (const Point& s : sites) best = std::min(best, Distance(q, s));
    const bool voronoi = Distance(q, anchor) <= best + 1e-9;
    if (std::abs(Distance(q, anchor) - best) < 1e-6) continue;  // tie region
    EXPECT_EQ(env.Contains(q), voronoi) << k;
  }
}

TEST(EnvelopeTest, StarShapedContainsAnchorSegments) {
  // Star-shapedness around the anchor center: if p is in the cell, so is
  // every point between the center and p.
  Rng rng(555);
  const Circle anchor({600, 300}, 12);
  RadialEnvelope env(anchor.center, Domain());
  for (int j = 0; j < 18; ++j) {
    env.Insert(RadialConstraint::ForObjects(
        anchor,
        Circle({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)}, 12.0), j));
  }
  for (int k = 0; k < 3000; ++k) {
    const Point q{rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)};
    if (!env.Contains(q)) continue;
    const double t = rng.Uniform(0, 1);
    const Point mid = anchor.center + (q - anchor.center) * t;
    EXPECT_TRUE(env.Contains(mid));
  }
}

TEST(EnvelopeTest, BoundingBoxCoversPolyline) {
  Rng rng(31337);
  const Circle anchor({500, 500}, 10);
  RadialEnvelope env(anchor.center, Domain());
  for (int j = 0; j < 10; ++j) {
    env.Insert(RadialConstraint::ForObjects(
        anchor,
        Circle({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)}, 10.0), j));
  }
  const Box bb = env.BoundingBox();
  for (const Point& p : env.ToPolyline(64)) {
    EXPECT_TRUE(bb.Contains(p) ||
                (std::abs(bb.MinDist(p)) < 1e-6));  // tolerance on edges
  }
}

TEST(EnvelopeTest, InsertionOrderIrrelevant) {
  // Paper Sec. III-B: the order of refining P_i does not matter.
  Rng rng(909);
  const Circle a({350, 650}, 10);
  std::vector<Circle> objs;
  for (int j = 0; j < 12; ++j) {
    objs.push_back(Circle({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)},
                          rng.Uniform(0, 15)));
  }
  RadialEnvelope fwd(a.center, Domain());
  for (size_t j = 0; j < objs.size(); ++j) {
    fwd.Insert(RadialConstraint::ForObjects(a, objs[j], static_cast<int>(j)));
  }
  RadialEnvelope bwd(a.center, Domain());
  for (size_t j = objs.size(); j-- > 0;) {
    bwd.Insert(RadialConstraint::ForObjects(a, objs[j], static_cast<int>(j)));
  }
  EXPECT_EQ(fwd.OwnerObjects(), bwd.OwnerObjects());
  EXPECT_NEAR(fwd.Area(), bwd.Area(), 1e-6 * Domain().Area());
  for (double theta = 0.01; theta < 2 * M_PI; theta += 0.037) {
    EXPECT_NEAR(fwd.RhoAt(theta), bwd.RhoAt(theta), 1e-6)
        << "theta=" << theta;
  }
}

TEST(EnvelopeTest, ContainsBoxNeverFalsePositive) {
  // ContainsBox(r) == true must imply every point of r is in the region.
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    const Circle anchor({rng.Uniform(200, 800), rng.Uniform(200, 800)}, 10);
    RadialEnvelope env(anchor.center, Domain());
    for (int j = 0; j < 12; ++j) {
      env.Insert(RadialConstraint::ForObjects(
          anchor,
          Circle({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)}, 10.0),
          j));
    }
    for (int t = 0; t < 400; ++t) {
      const Point lo{rng.Uniform(0, kDomainSize - 60), rng.Uniform(0, kDomainSize - 60)};
      const Box r(lo, lo + Vec2{rng.Uniform(1, 60), rng.Uniform(1, 60)});
      if (!env.ContainsBox(r)) continue;
      for (const Point& c : r.Corners()) {
        EXPECT_TRUE(env.Contains(c)) << "trial=" << trial;
      }
      // Interior samples too (star-shaped regions can dent between corners).
      for (int s = 0; s < 8; ++s) {
        const Point p{rng.Uniform(r.lo.x, r.hi.x), rng.Uniform(r.lo.y, r.hi.y)};
        EXPECT_TRUE(env.Contains(p));
      }
    }
  }
}

TEST(EnvelopeTest, ContainsBoxDetectsInteriorBoxes) {
  // Small boxes around the anchor center must be recognized as contained.
  const Circle anchor({500, 500}, 10);
  RadialEnvelope env(anchor.center, Domain());
  env.Insert(RadialConstraint::ForObjects(anchor, Circle({700, 500}, 10), 1));
  env.Insert(RadialConstraint::ForObjects(anchor, Circle({300, 480}, 10), 2));
  EXPECT_TRUE(env.ContainsBox(Box({490, 490}, {510, 510})));  // contains anchor
  EXPECT_TRUE(env.ContainsBox(Box({520, 520}, {540, 540})));  // off-center
  EXPECT_FALSE(env.ContainsBox(Box({0, 0}, {1000, 1000})));   // way too big
  EXPECT_FALSE(env.ContainsBox(Box({900, 500}, {950, 550})))
      << "beyond object 1's UV-edge";
}

TEST(EnvelopeTest, MinRhoOverWindowMatchesSampling) {
  Rng rng(31415);
  const Circle anchor({400, 600}, 12);
  RadialEnvelope env(anchor.center, Domain());
  for (int j = 0; j < 10; ++j) {
    env.Insert(RadialConstraint::ForObjects(
        anchor,
        Circle({rng.Uniform(0, kDomainSize), rng.Uniform(0, kDomainSize)}, 12.0), j));
  }
  for (int t = 0; t < 50; ++t) {
    const double begin = rng.Uniform(0, 2 * M_PI);
    const double extent = rng.Uniform(0.01, 2 * M_PI);
    const double fast = env.MinRhoOverWindow(begin, extent);
    double sampled = std::numeric_limits<double>::infinity();
    const int steps = 2000;
    for (int s = 0; s <= steps; ++s) {
      sampled = std::min(sampled, env.RhoAt(begin + extent * s / steps));
    }
    // Closed form is a true minimum: never above the sampled one, and the
    // sampled one approaches it.
    EXPECT_LE(fast, sampled + 1e-9) << t;
    EXPECT_NEAR(fast, sampled, 0.02 * sampled) << t;
  }
}

TEST(EnvelopeTest, StatsCountsInsertions) {
  Stats stats;
  RadialEnvelope env({500, 500}, Domain(), &stats);
  EXPECT_EQ(stats.Get(Ticker::kEnvelopeInsertions), 4u);  // four walls
  env.Insert(RadialConstraint::ForObjects(Circle({500, 500}, 5),
                                          Circle({700, 500}, 5), 1));
  EXPECT_EQ(stats.Get(Ticker::kEnvelopeInsertions), 5u);
}

}  // namespace
}  // namespace geom
}  // namespace uvd
