#include "uncertain/qualification.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "uncertain/distance_dist.h"

namespace uvd {
namespace uncertain {

std::vector<const UncertainObject*> FilterByDMinMax(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q) {
  double d_minmax = std::numeric_limits<double>::infinity();
  for (const UncertainObject* o : candidates) {
    d_minmax = std::min(d_minmax, o->DistMax(q));
  }
  std::vector<const UncertainObject*> out;
  out.reserve(candidates.size());
  for (const UncertainObject* o : candidates) {
    if (o->DistMin(q) <= d_minmax) out.push_back(o);
  }
  return out;
}

std::vector<PnnAnswer> ComputeQualificationProbabilities(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q,
    const QualificationOptions& options, Stats* stats) {
  std::vector<PnnAnswer> answers;
  const std::vector<const UncertainObject*> objs = FilterByDMinMax(candidates, q);
  if (objs.empty()) return answers;
  if (stats != nullptr) stats->Add(Ticker::kQualificationIntegrations);
  if (objs.size() == 1) {
    answers.push_back({objs[0]->id(), 1.0});
    return answers;
  }

  // Integration domain: from the smallest possible NN distance to d_minmax
  // (beyond which some candidate is certainly closer).
  double lo = std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (const UncertainObject* o : objs) {
    lo = std::min(lo, o->DistMin(q));
    hi = std::min(hi, o->DistMax(q));
  }
  const int m = std::max(2, options.integration_steps);
  UVD_DCHECK_LE(lo, hi);

  // Distance CDFs on a shared grid.
  const size_t c = objs.size();
  std::vector<DistanceDistribution> dists;
  dists.reserve(c);
  for (const UncertainObject* o : objs) dists.emplace_back(*o, q);

  std::vector<std::vector<double>> cdf(c, std::vector<double>(m + 1));
  for (size_t i = 0; i < c; ++i) {
    for (int k = 0; k <= m; ++k) {
      const double r = lo + (hi - lo) * static_cast<double>(k) / m;
      cdf[i][static_cast<size_t>(k)] = dists[i].Cdf(r);
    }
  }

  // P_i = sum over grid cells of dF_i * prod_{j != i} (1 - F_j(midpoint)).
  answers.reserve(c);
  for (size_t i = 0; i < c; ++i) {
    double p = 0.0;
    for (int k = 0; k < m; ++k) {
      const double df = cdf[i][static_cast<size_t>(k) + 1] - cdf[i][static_cast<size_t>(k)];
      if (df <= 0.0) continue;
      double survive = 1.0;
      for (size_t j = 0; j < c; ++j) {
        if (j == i) continue;
        const double fj = 0.5 * (cdf[j][static_cast<size_t>(k)] +
                                 cdf[j][static_cast<size_t>(k) + 1]);
        survive *= (1.0 - fj);
        if (survive == 0.0) break;
      }
      p += df * survive;
    }
    if (p > 0.0) answers.push_back({objs[i]->id(), p});
  }

  std::sort(answers.begin(), answers.end(), [](const PnnAnswer& a, const PnnAnswer& b) {
    return a.probability > b.probability || (a.probability == b.probability && a.id < b.id);
  });
  return answers;
}

}  // namespace uncertain
}  // namespace uvd
