// UVEdge is header-only; this translation unit keeps the library layout
// uniform and anchors the header's compilation.
#include "core/uv_edge.h"
