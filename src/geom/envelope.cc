#include "geom/envelope.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace uvd {
namespace geom {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;
// Angular resolution below which two breakpoints are considered identical.
constexpr double kAngleEps = 1e-12;

}  // namespace

RadialEnvelope::RadialEnvelope(Point center, const Box& domain, Stats* stats)
    : center_(center), domain_(domain), stats_(stats) {
  UVD_CHECK(domain.Contains(center)) << "anchor center outside the domain";
  arcs_.push_back({0.0, kTwoPi, EnvelopeArc::kUnbounded});
  for (const RadialConstraint& wall : RadialConstraint::ForDomainWalls(center, domain)) {
    Insert(wall);
  }
}

int RadialEnvelope::ArcIndexAt(double theta) const {
  UVD_DCHECK(!arcs_.empty());
  const double t = NormalizeAngle(theta);
  // Arcs are sorted by begin and cover [begin_0, begin_0 + 2*pi). An angle
  // before the first begin wraps around into the last arc.
  if (t < arcs_.front().begin) return static_cast<int>(arcs_.size()) - 1;
  int lo = 0;
  int hi = static_cast<int>(arcs_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (arcs_[static_cast<size_t>(mid)].begin <= t) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double RadialEnvelope::RhoOfArc(const EnvelopeArc& arc, double theta) const {
  if (arc.cidx == EnvelopeArc::kUnbounded) {
    return std::numeric_limits<double>::infinity();
  }
  return constraints_[static_cast<size_t>(arc.cidx)].RhoAtAngle(theta);
}

bool RadialEnvelope::Insert(const RadialConstraint& c) {
  if (stats_ != nullptr) stats_->Add(Ticker::kEnvelopeInsertions);
  if (c.IsVacuous()) return false;

  // Candidate breakpoints: existing arc boundaries, the finite-domain
  // endpoints of the new constraint, and its crossings with every owner
  // currently on the envelope. Between consecutive candidates the winner of
  // "new vs current envelope" cannot change, so midpoint evaluation decides
  // ownership exactly.
  std::vector<double>& cand = cand_scratch_;
  cand.clear();
  cand.reserve(arcs_.size() + 8);
  for (const EnvelopeArc& arc : arcs_) cand.push_back(NormalizeAngle(arc.begin));

  const auto dom = c.FiniteDomain();
  UVD_DCHECK(dom.has_value());
  cand.push_back(NormalizeAngle(dom->first));
  cand.push_back(NormalizeAngle(dom->second));

  std::vector<int>& owners = owner_scratch_;
  owners.clear();
  owners.reserve(arcs_.size());
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx != EnvelopeArc::kUnbounded) owners.push_back(arc.cidx);
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  for (int cidx : owners) {
    double cross[2];
    const int nc = CrossingAngles(c, constraints_[static_cast<size_t>(cidx)], cross);
    for (int j = 0; j < nc; ++j) cand.push_back(cross[j]);
  }

  // The arc-begin prefix of cand is already ascending (the arcs_ invariant
  // ArcIndexAt's binary search relies on), so sort only the appended tail
  // and merge — the merged value sequence is exactly sort(cand)'s.
  const size_t prefix = arcs_.size();
  std::sort(cand.begin() + static_cast<long>(prefix), cand.end());
  // Deduplicate near-identical angles (also across the 0/2*pi seam) while
  // merging the two sorted runs.
  std::vector<double>& angles = angle_scratch_;
  angles.clear();
  angles.reserve(cand.size());
  {
    const size_t total = cand.size();
    size_t a = 0;
    size_t b = prefix;
    while (a < prefix || b < total) {
      const double v = (b >= total || (a < prefix && cand[a] <= cand[b]))
                           ? cand[a++]
                           : cand[b++];
      if (angles.empty() || v - angles.back() > kAngleEps) angles.push_back(v);
    }
  }
  if (angles.size() > 1 && (angles.front() + kTwoPi) - angles.back() <= kAngleEps) {
    angles.pop_back();
  }
  UVD_DCHECK(!angles.empty());

  constraints_.push_back(c);
  const int new_idx = static_cast<int>(constraints_.size()) - 1;

  std::vector<EnvelopeArc>& result = arc_scratch_;
  result.clear();
  result.reserve(angles.size());
  bool used = false;
  const size_t m = angles.size();
  // The sweep's midpoints ascend (one possible wrap past 2*pi at the end),
  // so the owning arc advances monotonically: walk forward from the last
  // hit instead of binary-searching every interval. The walk computes the
  // same "last arc with begin <= t" the binary search does, so ownership
  // decisions are bit-identical.
  const size_t n_arcs = arcs_.size();
  int arc_hint = -1;
  for (size_t i = 0; i < m; ++i) {
    const double begin = angles[i];
    const double end = (i + 1 < m) ? angles[i + 1] : angles[0] + kTwoPi;
    const double mid = 0.5 * (begin + end);
    const double t = NormalizeAngle(mid);
    int ai;
    if (arc_hint >= 0 && arcs_[static_cast<size_t>(arc_hint)].begin <= t) {
      ai = arc_hint;
      while (ai + 1 < static_cast<int>(n_arcs) &&
             arcs_[static_cast<size_t>(ai) + 1].begin <= t) {
        ++ai;
      }
    } else {
      ai = ArcIndexAt(t);
    }
    arc_hint = ai;
    const EnvelopeArc& old_arc = arcs_[static_cast<size_t>(ai)];
    // One sincos per midpoint: both rho evaluations share the direction.
    const Vec2 u = UnitVector(mid);
    const double rho_old =
        old_arc.cidx == EnvelopeArc::kUnbounded
            ? std::numeric_limits<double>::infinity()
            : constraints_[static_cast<size_t>(old_arc.cidx)].Rho(u);
    const double rho_new = c.Rho(u);
    // Strict comparison keeps the incumbent on exact ties (e.g. duplicate
    // objects), which makes ownership deterministic.
    const int winner = (rho_new < rho_old) ? new_idx : old_arc.cidx;
    if (winner == new_idx) used = true;
    if (!result.empty() && result.back().cidx == winner) {
      result.back().end = end;
    } else {
      result.push_back({begin, end, winner});
    }
  }
  // Circular merge: first and last arc may share an owner across the seam.
  if (result.size() > 1 && result.front().cidx == result.back().cidx) {
    result.front().begin = result.back().begin - kTwoPi;
    result.pop_back();
    // Keep begins sorted: rotate so that the (possibly negative) begin stays
    // first; ArcIndexAt works on the covered interval [begin_0, begin_0+2pi).
    std::sort(result.begin(), result.end(),
              [](const EnvelopeArc& a, const EnvelopeArc& b) { return a.begin < b.begin; });
    // Renormalize so all begins are in [0, 2*pi): shift the first arc.
    if (result.front().begin < 0.0) {
      EnvelopeArc wrapped = result.front();
      result.erase(result.begin());
      wrapped.begin = NormalizeAngle(wrapped.begin);
      // wrapped.end also moves by +2pi to stay > begin.
      wrapped.end += kTwoPi;
      result.push_back(wrapped);
    }
  }

  if (!used) {
    constraints_.pop_back();  // keep the constraint store compact
    return false;
  }
  // Swap (not move): the outgoing arcs_ buffer becomes next call's scratch.
  arcs_.swap(arc_scratch_);
  return true;
}

double RadialEnvelope::RhoAt(double theta) const {
  const EnvelopeArc& arc = arcs_[static_cast<size_t>(ArcIndexAt(theta))];
  return RhoOfArc(arc, theta);
}

int RadialEnvelope::OwnerAt(double theta) const {
  const EnvelopeArc& arc = arcs_[static_cast<size_t>(ArcIndexAt(theta))];
  if (arc.cidx == EnvelopeArc::kUnbounded) return EnvelopeArc::kUnbounded;
  return constraints_[static_cast<size_t>(arc.cidx)].owner;
}

bool RadialEnvelope::Contains(const Point& p) const {
  const Vec2 d = p - center_;
  const double r = d.Norm();
  if (r == 0.0) return true;
  return r <= RhoAt(d.Angle());
}

double RadialEnvelope::MinRhoOverWindow(double begin, double extent) const {
  UVD_DCHECK_GE(extent, 0.0);
  extent = std::min(extent, kTwoPi);
  double best = std::numeric_limits<double>::infinity();
  // Visit every arc that intersects [begin, begin + extent] (the arc list
  // covers [front.begin, front.begin + 2*pi)).
  const double window_lo = NormalizeAngle(begin);
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx == EnvelopeArc::kUnbounded) return 0.0;  // treat as open
    const RadialConstraint& c = constraints_[static_cast<size_t>(arc.cidx)];
    const double phi = c.w.Angle();
    // Intersect the window with this arc. Arcs live in [0, 4*pi) (the last
    // one may wrap past 2*pi) and the window may cross the seam, so test
    // the window's three unwrapped images.
    for (double shift : {-kTwoPi, 0.0, kTwoPi}) {
      const double lo = std::max(arc.begin, window_lo + shift);
      const double hi = std::min(arc.end, window_lo + shift + extent);
      if (lo > hi) continue;
      // rho grows with the angular distance from phi, so the minimum over
      // [lo, hi] is at the angle closest to phi (mod 2*pi).
      double theta_min;
      const double phi_shifted = phi + std::round((0.5 * (lo + hi) - phi) / kTwoPi) * kTwoPi;
      theta_min = std::clamp(phi_shifted, lo, hi);
      best = std::min(best, c.RhoAtAngle(theta_min));
      best = std::min(best, std::min(c.RhoAtAngle(lo), c.RhoAtAngle(hi)));
    }
  }
  return best;
}

bool RadialEnvelope::ContainsBox(const Box& r) const {
  const double max_dist = r.MaxDist(center_);
  if (r.Contains(center_)) {
    return max_dist <= MinRhoOverWindow(0.0, kTwoPi);
  }
  // Angular window subtended by the box: corner angles relative to a
  // reference corner, all within (-pi, pi) of it since the box does not
  // contain the anchor.
  const auto corners = r.Corners();
  const double a0 = (corners[0] - center_).Angle();
  double lo = 0.0, hi = 0.0;
  for (int i = 1; i < 4; ++i) {
    const double a = (corners[static_cast<size_t>(i)] - center_).Angle();
    double delta = a - a0;
    while (delta > M_PI) delta -= kTwoPi;
    while (delta < -M_PI) delta += kTwoPi;
    lo = std::min(lo, delta);
    hi = std::max(hi, delta);
  }
  return max_dist <= MinRhoOverWindow(a0 + lo, hi - lo);
}

double RadialEnvelope::MaxVertexDistance() const {
  double best = 0.0;
  // Adjacent arcs share their boundary angle bitwise (arc.end is assigned
  // from the next arc's begin), so one sincos serves both evaluations.
  double cached_angle = std::numeric_limits<double>::quiet_NaN();
  Vec2 cached_u{0.0, 0.0};
  const auto unit = [&](double a) {
    if (a != cached_angle) {
      cached_u = UnitVector(a);
      cached_angle = a;
    }
    return cached_u;
  };
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx == EnvelopeArc::kUnbounded) {
      return std::numeric_limits<double>::infinity();
    }
    const RadialConstraint& c = constraints_[static_cast<size_t>(arc.cidx)];
    best = std::max(best, c.Rho(unit(arc.begin)));
    best = std::max(best, c.Rho(unit(arc.end)));
  }
  return best;
}

std::vector<Point> RadialEnvelope::Vertices() const {
  std::vector<Point> out;
  out.reserve(arcs_.size());
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx == EnvelopeArc::kUnbounded) continue;
    const double rho = RhoOfArc(arc, arc.begin);
    if (!std::isfinite(rho)) continue;
    out.push_back(center_ + UnitVector(arc.begin) * rho);
  }
  return out;
}

std::vector<int> RadialEnvelope::OwnerObjects() const {
  std::vector<int> out;
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx == EnvelopeArc::kUnbounded) continue;
    const int owner = constraints_[static_cast<size_t>(arc.cidx)].owner;
    if (owner >= 0) out.push_back(owner);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double RadialEnvelope::Area() const {
  double area = 0.0;
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx == EnvelopeArc::kUnbounded) {
      return std::numeric_limits<double>::infinity();
    }
    const double len = arc.end - arc.begin;
    if (len <= 0.0) continue;
    // Composite Simpson; even interval count scaled with arc length.
    int n = static_cast<int>(std::ceil(len / 0.002));
    n = std::clamp(n, 8, 8192);
    if (n % 2 == 1) ++n;
    const double h = len / n;
    double sum = 0.0;
    for (int k = 0; k <= n; ++k) {
      const double theta = arc.begin + h * k;
      const double rho = RhoOfArc(arc, theta);
      const double f = 0.5 * rho * rho;
      if (k == 0 || k == n) {
        sum += f;
      } else if (k % 2 == 1) {
        sum += 4.0 * f;
      } else {
        sum += 2.0 * f;
      }
    }
    area += sum * h / 3.0;
  }
  return area;
}

Box RadialEnvelope::BoundingBox(int samples_per_arc) const {
  Box box = Box::Empty();
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx == EnvelopeArc::kUnbounded) continue;
    for (int k = 0; k <= samples_per_arc; ++k) {
      const double theta =
          arc.begin + (arc.end - arc.begin) * static_cast<double>(k) / samples_per_arc;
      const double rho = RhoOfArc(arc, theta);
      if (!std::isfinite(rho)) continue;
      box.ExpandToInclude(center_ + UnitVector(theta) * rho);
    }
  }
  return box;
}

std::vector<Point> RadialEnvelope::ToPolyline(int samples_per_arc) const {
  std::vector<Point> out;
  out.reserve(arcs_.size() * static_cast<size_t>(samples_per_arc));
  for (const EnvelopeArc& arc : arcs_) {
    if (arc.cidx == EnvelopeArc::kUnbounded) continue;
    for (int k = 0; k < samples_per_arc; ++k) {
      const double theta =
          arc.begin + (arc.end - arc.begin) * static_cast<double>(k) / samples_per_arc;
      const double rho = RhoOfArc(arc, theta);
      if (!std::isfinite(rho)) continue;
      out.push_back(center_ + UnitVector(theta) * rho);
    }
  }
  return out;
}

}  // namespace geom
}  // namespace uvd
