#include "common/status.h"

namespace uvd {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace uvd
