// Batch request/response types for the concurrent query engine. A batch is
// an ordered list of heterogeneous queries (the four public query kinds of
// UVDiagram); the engine answers them in submission order regardless of
// worker count, so results[i] always corresponds to batch[i].
#ifndef UVD_QUERY_QUERY_BATCH_H_
#define UVD_QUERY_QUERY_BATCH_H_

#include <vector>

#include "common/status.h"
#include "core/pattern_queries.h"
#include "geom/box.h"
#include "geom/point.h"
#include "uncertain/qualification.h"

namespace uvd {
namespace query {

/// The query kinds the engine executes (one per UVDiagram query method).
enum class QueryKind {
  kPnn,          ///< UVDiagram::QueryPnn (answer objects + probabilities)
  kAnswerIds,    ///< UVDiagram::AnswerObjectIds (ids only, no integration)
  kUvPartitions, ///< UVDiagram::QueryUvPartitions (pattern query, Sec. V-C)
  kCellSummary,  ///< UVDiagram::QueryUvCellSummary (pattern query, Sec. V-C)
};

constexpr int kNumQueryKinds = 4;

/// Stable lower_snake name for metrics ("query.<kind>.latency.us") and
/// trace categories.
inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPnn:
      return "pnn";
    case QueryKind::kAnswerIds:
      return "answer_ids";
    case QueryKind::kUvPartitions:
      return "uv_partitions";
    case QueryKind::kCellSummary:
      return "cell_summary";
  }
  return "unknown";
}

/// One query of any kind. Use the factory helpers; only the fields of the
/// active kind are meaningful.
struct Query {
  QueryKind kind = QueryKind::kPnn;
  geom::Point point;   ///< kPnn / kAnswerIds
  geom::Box range;     ///< kUvPartitions
  int object_id = -1;  ///< kCellSummary

  static Query Pnn(const geom::Point& q) { return {QueryKind::kPnn, q, {}, -1}; }
  static Query AnswerIds(const geom::Point& q) {
    return {QueryKind::kAnswerIds, q, {}, -1};
  }
  static Query UvPartitions(const geom::Box& range) {
    return {QueryKind::kUvPartitions, {}, range, -1};
  }
  static Query CellSummary(int object_id) {
    return {QueryKind::kCellSummary, {}, {}, object_id};
  }
};

/// Result of one query: `status` plus the payload of the query's kind.
/// Error statuses (e.g. a point outside the domain) are per-result — one
/// bad query does not fail the batch.
struct QueryResult {
  Status status;
  std::vector<uncertain::PnnAnswer> pnn;          ///< kPnn
  std::vector<int> answer_ids;                    ///< kAnswerIds
  std::vector<core::UvPartition> partitions;      ///< kUvPartitions
  core::UvCellSummary cell_summary;               ///< kCellSummary
};

using QueryBatch = std::vector<Query>;

}  // namespace query
}  // namespace uvd

#endif  // UVD_QUERY_QUERY_BATCH_H_
