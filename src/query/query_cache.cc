#include "query/query_cache.h"

#include <algorithm>

namespace uvd {
namespace query {

QueryCache::QueryCache(const QueryCacheOptions& options) {
  capacity_ = std::max<size_t>(1, options.capacity);
  const size_t shards =
      std::min<size_t>(std::max(1, options.shards), capacity_);
  shard_capacity_ = std::max<size_t>(1, capacity_ / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Result<std::vector<rtree::LeafEntry>> QueryCache::GetOrLoad(uint32_t leaf,
                                                            const Loader& loader,
                                                            Stats* stats) {
  Shard& shard = ShardFor(leaf);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(leaf);
    if (it != shard.map.end()) {
      if (stats != nullptr) stats->Add(Ticker::kQueryCacheHits);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->tuples;  // copy: the caller consumes it
    }
  }

  if (stats != nullptr) stats->Add(Ticker::kQueryCacheMisses);
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();
  std::vector<rtree::LeafEntry> tuples = std::move(loaded).value();

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(leaf);
    if (it == shard.map.end()) {  // a concurrent miss may have won the race
      shard.lru.push_front(Entry{leaf, tuples});
      shard.map[leaf] = shard.lru.begin();
      if (shard.map.size() > shard_capacity_) {
        shard.map.erase(shard.lru.back().leaf);
        shard.lru.pop_back();
      }
    }
  }
  return tuples;
}

void QueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
  }
}

size_t QueryCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

}  // namespace query
}  // namespace uvd
