// The observability layer's core contract, digest-asserted: flipping
// metrics and tracing on or off changes NOTHING observable — serialized
// indexes are bitwise-identical and query answers digest-equal — while
// the instrumentation itself only fills when enabled. Runs under TSan in
// CI (spans + histograms recorded from pool workers).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/uv_diagram.h"
#include "core/uv_index_io.h"
#include "datagen/generators.h"
#include "datagen/workload.h"
#include "obs/latency_histogram.h"
#include "obs/trace_recorder.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"

namespace uvd {
namespace {

/// Restores the default observability state (metrics on, tracing off).
class ObsStateGuard {
 public:
  ~ObsStateGuard() {
    obs::SetMetricsEnabled(true);
    obs::TraceRecorder::SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
  }
};

struct LegResult {
  uint64_t answer_digest = 0;
  std::vector<uint8_t> serialized_index;
  uint64_t pnn_latency_count = 0;
};

query::QueryBatch MixedBatch(const geom::Box& domain) {
  query::QueryBatch batch;
  for (const auto& p : datagen::TrajectoryQueryPoints(
           120, domain, /*step_length=*/domain.Width() / 200.0, /*seed=*/11)) {
    batch.push_back(query::Query::Pnn(p));
  }
  batch.push_back(query::Query::UvPartitions(domain));
  batch.push_back(query::Query::CellSummary(3));
  return batch;
}

/// Builds with the full parallel pipeline, queries through a pooled
/// engine, and serializes the index — with observability fully on or
/// fully off.
LegResult RunLeg(bool obs_on) {
  obs::SetMetricsEnabled(obs_on);
  obs::TraceRecorder::SetEnabled(obs_on);

  datagen::DatasetOptions data;
  data.count = 400;
  data.seed = 21;
  const geom::Box domain = datagen::DomainFor(data);
  auto objects = datagen::GenerateUniform(data);

  core::UVDiagramOptions options;
  options.build_threads = 4;  // spans fire in stage-1/stage-2 workers
  auto diagram =
      core::UVDiagram::Build(std::move(objects), domain, options).ValueOrDie();

  query::QueryEngineOptions engine_options;
  engine_options.threads = 4;
  query::QueryEngine engine(diagram, engine_options);
  const auto results = engine.ExecuteBatch(MixedBatch(domain));

  LegResult leg;
  leg.answer_digest = query::DigestPointAnswers(results);
  leg.pnn_latency_count =
      engine.kind_latency(query::QueryKind::kPnn).TotalCount();

  // Serialize into a fresh page manager and capture the raw pages.
  storage::PageManager save_pm;
  const auto handle = core::SaveUvIndex(diagram.index(), &save_pm).ValueOrDie();
  std::vector<uint8_t> page;
  for (uint32_t p = 0; p < handle.page_count; ++p) {
    EXPECT_TRUE(save_pm.Read(handle.first_page + p, &page).ok());
    leg.serialized_index.insert(leg.serialized_index.end(), page.begin(),
                                page.end());
  }

  obs::SetMetricsEnabled(true);
  obs::TraceRecorder::SetEnabled(false);
  return leg;
}

TEST(ObsDeterminismTest, ObsOnAndOffAreBitwiseIdentical) {
  ObsStateGuard guard;
  const LegResult off = RunLeg(/*obs_on=*/false);
  const LegResult on = RunLeg(/*obs_on=*/true);

  // The passive contract: identical answers, identical serialized bytes.
  EXPECT_EQ(off.answer_digest, on.answer_digest);
  ASSERT_EQ(off.serialized_index.size(), on.serialized_index.size());
  EXPECT_EQ(off.serialized_index, on.serialized_index);

  // And the instrumentation itself honors the switch: histograms fill
  // only while metrics are enabled.
  EXPECT_EQ(off.pnn_latency_count, 0u);
  EXPECT_EQ(on.pnn_latency_count, 120u);
  // Tracing recorded build + query spans during the on-leg.
  EXPECT_GT(obs::TraceRecorder::Global().event_count(), 0u);
}

TEST(ObsDeterminismTest, ShardedAnswersIdenticalAcrossObsToggle) {
  ObsStateGuard guard;
  datagen::DatasetOptions data;
  data.count = 400;
  data.seed = 33;
  const geom::Box domain = datagen::DomainFor(data);
  const auto objects = datagen::GenerateUniform(data);

  shard::ShardedUVDiagramOptions options;
  options.num_shards = 4;
  const query::QueryBatch batch = MixedBatch(domain);

  uint64_t digests[2] = {0, 0};
  for (const bool obs_on : {false, true}) {
    obs::SetMetricsEnabled(obs_on);
    obs::TraceRecorder::SetEnabled(obs_on);
    auto sharded =
        shard::ShardedUVDiagram::Build(objects, domain, options).ValueOrDie();
    shard::ShardRouter router(sharded);
    digests[obs_on ? 1 : 0] = query::DigestPointAnswers(router.ExecuteBatch(batch));
    if (obs_on) {
      // The router-side surfaces filled during the on-leg.
      EXPECT_GT(router.MergedKindLatency(query::QueryKind::kPnn).TotalCount(), 0u);
      EXPECT_GT(router.routed_queries(0) + router.routed_queries(1) +
                    router.routed_queries(2) + router.routed_queries(3),
                0u);
    }
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(ObsDeterminismTest, MetricsToggleMidStreamIsSafe) {
  // Toggling while batches run concurrently must stay race-free (TSan) and
  // keep answers stable; counts are simply whatever the sampled-at-batch-
  // start flag admitted.
  ObsStateGuard guard;
  datagen::DatasetOptions data;
  data.count = 300;
  data.seed = 5;
  const geom::Box domain = datagen::DomainFor(data);
  auto diagram =
      core::UVDiagram::Build(datagen::GenerateUniform(data), domain).ValueOrDie();
  query::QueryEngineOptions engine_options;
  engine_options.threads = 4;
  query::QueryEngine engine(diagram, engine_options);
  const query::QueryBatch batch = MixedBatch(domain);

  const uint64_t reference = query::DigestPointAnswers(engine.ExecuteBatch(batch));
  for (int i = 0; i < 6; ++i) {
    obs::SetMetricsEnabled(i % 2 == 0);
    obs::TraceRecorder::SetEnabled(i % 3 == 0);
    EXPECT_EQ(query::DigestPointAnswers(engine.ExecuteBatch(batch)), reference);
  }
}

}  // namespace
}  // namespace uvd
