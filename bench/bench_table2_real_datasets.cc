// Table II: real datasets (Germany utility / roads / rrlines; here the
// real-like substitutes of DESIGN.md Sec. 5 at the paper cardinalities,
// scaled). Reports T_q for both indexes, construction time T_c and the
// pruning ratio p_c. Paper shape: UVD consistently beats the R-tree;
// p_c = 86-89%.
#include "bench_common.h"

#include "datagen/real_like.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Table II: real-like datasets",
                     "utility(17K) / roads(30K) / rrlines(36K), scaled");
  std::printf("%10s %8s %14s %14s %10s %8s\n", "dataset", "|O|", "Tq(UVD)(ms)",
              "Tq(R-tree)(ms)", "Tc(s)", "pc(%)");
  for (datagen::RealDataset which :
       {datagen::RealDataset::kUtility, datagen::RealDataset::kRoads,
        datagen::RealDataset::kRrlines}) {
    datagen::DatasetOptions opts;
    opts.count = bench::ScaledCount(datagen::RealDatasetDefaultCount(which));
    opts.seed = 42;
    Stats stats;
    auto diagram = bench::BuildDiagram(datagen::GenerateRealLike(which, opts),
                                       datagen::DomainFor(opts), {}, &stats);
    const auto queries =
        datagen::UniformQueryPoints(bench::kNumQueries, diagram.domain(), 7);
    const auto r = bench::MeasurePnn(diagram, queries);
    std::printf("%10s %8zu %14.3f %14.3f %10.2f %8.1f\n",
                datagen::RealDatasetName(which), opts.count, r.uv_ms, r.rtree_ms,
                diagram.build_stats().total_seconds,
                100.0 * diagram.build_stats().c_pruning_ratio);
  }
  return 0;
}
