// Batched query serving: run a moving-NN trajectory and a heterogeneous
// query batch through the concurrent QueryEngine (src/query/).
//
//   $ ./batched_queries
//
// Shows the three engine ideas: fan-out over a worker pool with in-order
// results, the cell-level cache absorbing co-located probes, and
// per-worker stats shards merged into the diagram's Stats.
#include <cstdio>

#include "datagen/generators.h"
#include "datagen/workload.h"
#include "query/query_engine.h"

int main() {
  using namespace uvd;

  // A synthetic city: 1500 uncertain objects over a 10000 x 10000 domain.
  datagen::DatasetOptions data;
  data.count = 1500;
  data.seed = 4;
  const geom::Box domain = datagen::DomainFor(data);
  auto diagram =
      core::UVDiagram::Build(datagen::GenerateUniform(data), domain).ValueOrDie();
  std::printf("built UV-index over %zu objects (%zu leaves)\n\n",
              diagram.objects().size(), diagram.index().num_leaves());

  // A user driving through the city issues a dense stream of PNN probes.
  query::QueryEngineOptions options;
  options.threads = 4;
  query::QueryEngine engine(diagram, options);

  query::QueryBatch trajectory;
  for (const auto& p : datagen::TrajectoryQueryPoints(400, domain, 20.0, 9)) {
    trajectory.push_back(query::Query::Pnn(p));
  }
  diagram.stats().Reset();
  const auto answers = engine.ExecuteBatch(trajectory);
  const uint64_t hits = diagram.stats().Get(Ticker::kQueryCacheHits);
  const uint64_t misses = diagram.stats().Get(Ticker::kQueryCacheMisses);
  std::printf("trajectory: %zu PNN probes on %d workers\n", answers.size(),
              engine.num_threads());
  std::printf("cell cache: %llu hits / %llu misses (%.0f%% of probes reused a "
              "cached leaf)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses));
  std::printf("first probe: %zu candidate NNs, top p = %.3f\n\n",
              answers.front().pnn.size(),
              answers.front().pnn.empty() ? 0.0 : answers.front().pnn[0].probability);

  // Heterogeneous batch: mixed query kinds, answered in submission order.
  query::QueryBatch mixed;
  mixed.push_back(query::Query::Pnn({5000, 5000}));
  mixed.push_back(query::Query::AnswerIds({2500, 7500}));
  mixed.push_back(
      query::Query::UvPartitions(geom::Box({4000, 4000}, {4400, 4400})));
  mixed.push_back(query::Query::CellSummary(7));
  const auto results = engine.ExecuteBatch(mixed);
  std::printf("mixed batch of %zu queries:\n", results.size());
  std::printf("  [0] PNN            -> %zu answers\n", results[0].pnn.size());
  std::printf("  [1] answer ids     -> %zu ids\n", results[1].answer_ids.size());
  std::printf("  [2] UV partitions  -> %zu leaf regions\n",
              results[2].partitions.size());
  std::printf("  [3] cell summary   -> area %.0f over %zu leaves\n",
              results[3].cell_summary.area, results[3].cell_summary.num_leaves);

  // Per-worker shards (merged into diagram.stats() already).
  std::printf("\nper-worker integrations (last batch):");
  for (const Stats& shard : engine.worker_stats()) {
    std::printf(" %llu", static_cast<unsigned long long>(
                             shard.Get(Ticker::kQualificationIntegrations)));
  }
  std::printf("\n");
  return 0;
}
