// Parallel-vs-serial determinism of the staged build pipeline: for every
// BuildMethod, build_threads = 1 and build_threads = N must produce a
// byte-identical UV-index (structure, leaf tuples, page layout), identical
// non-timing BuildStats, identical Stats ticker totals, and identical PNN
// answers. Also covers the queue/abort machinery.
#include "core/build_pipeline.h"

#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "core/pnn.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"

namespace uvd {
namespace core {
namespace {

UVDiagram BuildDiagram(BuildMethod method, int threads, size_t n, uint64_t seed,
                       Stats* stats, Stage2Mode stage2 = Stage2Mode::kAuto) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  UVDiagramOptions options;
  options.method = method;
  options.build_threads = threads;
  options.stage2 = stage2;
  auto diagram = UVDiagram::Build(datagen::GenerateUniform(opts),
                                  datagen::DomainFor(opts), options, stats);
  UVD_CHECK(diagram.ok()) << diagram.status().ToString();
  return std::move(diagram).ValueOrDie();
}

std::vector<uint8_t> Serialized(const UVDiagram& d) {
  std::vector<uint8_t> bytes;
  UVD_CHECK_OK(d.index().SerializeStructure(&bytes));
  return bytes;
}

void ExpectSameNonTimingStats(const BuildStats& a, const BuildStats& b) {
  // Accumulated by the in-order consumer in both modes, so the sums must
  // match bit for bit — not just approximately.
  EXPECT_EQ(a.i_pruning_ratio, b.i_pruning_ratio);
  EXPECT_EQ(a.c_pruning_ratio, b.c_pruning_ratio);
  EXPECT_EQ(a.avg_cr_objects, b.avg_cr_objects);
  EXPECT_EQ(a.avg_r_objects, b.avg_r_objects);
}

void ExpectSameTickers(const Stats& a, const Stats& b) {
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    const Ticker t = static_cast<Ticker>(i);
    // Traversal WORK tickers are per-session state under the default
    // TraversalMode::kShared — more workers means more sessions, each
    // paying its own warm-up descents and leaf decodes — so they vary
    // with the thread count by design (build_pipeline.h). Every
    // decision-count ticker must still match exactly;
    // traversal_mode_digest_test asserts full-ticker equality under the
    // kPerAnchor oracle.
    if (t == Ticker::kRtreeNodeVisits || t == Ticker::kRtreeLeafReads ||
        t == Ticker::kLeafMemoHits || t == Ticker::kLeafMemoMisses ||
        t == Ticker::kPageReads || t == Ticker::kBufferPoolHits ||
        t == Ticker::kBufferPoolMisses) {
      continue;  // leaf decodes reach the PageManager, so I/O counts too
    }
    EXPECT_EQ(a.Get(t), b.Get(t)) << TickerName(t);
  }
}

class BuildPipelineDeterminismTest : public ::testing::TestWithParam<BuildMethod> {};

TEST_P(BuildPipelineDeterminismTest, ParallelMatchesSerial) {
  const BuildMethod method = GetParam();
  // Basic is O(n) envelope insertions per object; keep it small.
  const size_t n = method == BuildMethod::kBasic ? 250 : 700;
  const uint64_t seed = 23;

  // The in-order mode is the one whose contract covers EVERY ticker
  // (stage 2 replays the serial scan order exactly); the partitioned
  // mode's digest + ticker-subset contract is covered by
  // stage2_partition_test.
  Stats serial_stats;
  Stats parallel_stats;
  const UVDiagram serial = BuildDiagram(method, 1, n, seed, &serial_stats);
  const UVDiagram parallel =
      BuildDiagram(method, 4, n, seed, &parallel_stats, Stage2Mode::kInOrder);

  // Byte-identical index: same quad-tree, same leaf tuples, same pages.
  EXPECT_EQ(Serialized(serial), Serialized(parallel));
  EXPECT_EQ(serial.index().num_nonleaf(), parallel.index().num_nonleaf());
  EXPECT_EQ(serial.index().total_leaf_pages(), parallel.index().total_leaf_pages());

  ExpectSameNonTimingStats(serial.build_stats(), parallel.build_stats());
  ExpectSameTickers(serial_stats, parallel_stats);

  // Identical PNN answers, probabilities included.
  Rng rng(5);
  for (int t = 0; t < 25; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const auto a = serial.QueryPnn(q).ValueOrDie();
    const auto b = parallel.QueryPnn(q).ValueOrDie();
    ASSERT_EQ(a.size(), b.size()) << "t=" << t;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].id, b[k].id) << "t=" << t;
      EXPECT_EQ(a[k].probability, b[k].probability) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BuildPipelineDeterminismTest,
                         ::testing::Values(BuildMethod::kBasic, BuildMethod::kICR,
                                           BuildMethod::kIC),
                         [](const ::testing::TestParamInfo<BuildMethod>& info) {
                           return BuildMethodName(info.param);
                         });

TEST(BuildPipelineTest, DefaultThreadsMatchesSerial) {
  // build_threads = 0 (hardware concurrency, whatever it is here) must
  // also reproduce the serial index.
  const UVDiagram serial = BuildDiagram(BuildMethod::kIC, 1, 500, 31, nullptr);
  const UVDiagram parallel = BuildDiagram(BuildMethod::kIC, 0, 500, 31, nullptr);
  EXPECT_EQ(Serialized(serial), Serialized(parallel));
}

TEST(BuildPipelineTest, TinyQueueWindowIsClampedAndDeterministic) {
  datagen::DatasetOptions opts;
  opts.count = 400;
  opts.seed = 37;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);

  auto build = [&](int threads, int window, std::vector<uint8_t>* bytes) {
    Stats stats;
    storage::PageManager pm(4096, &stats);
    uncertain::ObjectStore store(&pm);
    std::vector<uncertain::ObjectPtr> ptrs;
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    auto tree = rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie();
    UVIndex index(domain, &pm, {}, &stats);
    BuildPipelineOptions options;
    options.method = BuildMethod::kIC;
    options.build_threads = threads;
    options.stage2 = Stage2Mode::kInOrder;  // the mode with a queue to clamp
    options.queue_window = window;  // below the worker count: clamped
    UVD_CHECK_OK(
        RunBuildPipeline(objects, ptrs, tree, domain, options, &index, nullptr, &stats));
    UVD_CHECK_OK(index.SerializeStructure(bytes));
  };

  std::vector<uint8_t> serial, parallel;
  build(1, 0, &serial);
  build(8, 1, &parallel);
  EXPECT_EQ(serial, parallel);
}

TEST(BuildPipelineTest, InsertionErrorAbortsCleanly) {
  // An object whose center lies outside the *index* domain makes stage-2
  // insertion fail mid-stream; the pipeline must propagate the error and
  // shut its workers down without hanging.
  datagen::DatasetOptions opts;
  opts.count = 120;
  opts.seed = 41;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);

  Stats stats;
  storage::PageManager pm(4096, &stats);
  uncertain::ObjectStore store(&pm);
  std::vector<uncertain::ObjectPtr> ptrs;
  UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
  auto tree = rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie();
  // Shrunken index domain: objects near the far edge fall outside.
  UVIndex index(geom::Box({0, 0}, {5000, 5000}), &pm, {}, &stats);
  BuildPipelineOptions options;
  options.method = BuildMethod::kIC;
  options.build_threads = 4;
  const Status status =
      RunBuildPipeline(objects, ptrs, tree, domain, options, &index, nullptr, &stats);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(BuildPipelineTest, RejectsMismatchedInputBeforeSpawningWorkers) {
  datagen::DatasetOptions opts;
  opts.count = 20;
  opts.seed = 43;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);
  Stats stats;
  storage::PageManager pm(4096, &stats);
  uncertain::ObjectStore store(&pm);
  std::vector<uncertain::ObjectPtr> ptrs;
  UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
  auto tree = rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie();
  UVIndex index(domain, &pm, {}, &stats);
  std::vector<uncertain::ObjectPtr> short_ptrs(ptrs.begin(), ptrs.end() - 1);
  BuildPipelineOptions options;
  options.build_threads = 4;
  EXPECT_FALSE(
      RunBuildPipeline(objects, short_ptrs, tree, domain, options, &index, nullptr, &stats)
          .ok());
}

}  // namespace
}  // namespace core
}  // namespace uvd
