#include "storage/paged_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/record.h"

namespace uvd {
namespace storage {

namespace {

// Metapage byte layout (within the kMetaBlockSize block):
//   [0,4)    magic
//   [4,8)    version
//   [8,12)   page size
//   [12,16)  durable page count
//   [16,20)  bootstrap length
//   [20,276) bootstrap bytes (kBootstrapCapacity, zero-padded)
//   [276,284) FNV-1a checksum over bytes [0,276)
constexpr size_t kMetaChecksumOffset = 20 + kBootstrapCapacity;

uint64_t FrameChecksum(uint32_t id, const uint8_t* payload, size_t n) {
  uint8_t id_le[4];
  std::memcpy(id_le, &id, 4);  // little-endian on every supported target
  return Fnv64(payload, n, Fnv64(id_le, 4));
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

PagedFile::PagedFile(PagedFile&& other) noexcept { *this = std::move(other); }

PagedFile& PagedFile::operator=(PagedFile&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) ::close(fd_);
  path_ = std::move(other.path_);
  fd_ = other.fd_;
  other.fd_ = -1;
  page_size_ = other.page_size_;
  page_count_ = other.page_count_;
  durable_page_count_ = other.durable_page_count_;
  bootstrap_ = std::move(other.bootstrap_);
  write_hook_ = std::move(other.write_hook_);
  write_count_.store(other.write_count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  sync_count_.store(other.sync_count_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  dead_.store(other.dead_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  return *this;
}

Result<std::unique_ptr<PagedFile>> PagedFile::Create(const std::string& path,
                                                     size_t page_size) {
  if (page_size < 64 || page_size > (1u << 24)) {
    return Status::InvalidArgument("page size out of range [64, 16M]");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return ErrnoStatus("cannot create paged file", path);
  }
  auto file = std::unique_ptr<PagedFile>(new PagedFile());
  file->path_ = path;
  file->fd_ = fd;
  file->page_size_ = page_size;
  UVD_RETURN_NOT_OK(file->Checkpoint());  // durable empty store
  return file;
}

Result<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) {
    return ErrnoStatus("cannot open paged file", path);
  }
  auto file = std::unique_ptr<PagedFile>(new PagedFile());
  file->path_ = path;
  file->fd_ = fd;

  std::vector<uint8_t> meta(kMetaBlockSize);
  const ssize_t n = ::pread(fd, meta.data(), meta.size(), 0);
  if (n < 0) {
    return ErrnoStatus("cannot read metapage of", path);
  }
  if (static_cast<size_t>(n) < kMetaBlockSize) {
    return Status::IOError("paged file " + path +
                           " shorter than a metapage (not a page store)");
  }
  Decoder dec(meta.data(), kMetaBlockSize);
  const uint32_t magic = dec.GetU32();
  if (magic != kPagedFileMagic) {
    return Status::InvalidArgument("bad magic in " + path +
                                   ": not a uvd paged file");
  }
  const uint32_t version = dec.GetU32();
  if (version > kPagedFileVersion) {
    return Status::NotImplemented("paged file " + path + " has format version " +
                                  std::to_string(version) +
                                  " from the future (newest known: " +
                                  std::to_string(kPagedFileVersion) + ")");
  }
  const uint64_t expected = Fnv64(meta.data(), kMetaChecksumOffset);
  uint64_t stored = 0;
  std::memcpy(&stored, meta.data() + kMetaChecksumOffset, 8);
  if (stored != expected) {
    return Status::Corruption("metapage checksum mismatch in " + path +
                              " (torn or corrupt checkpoint)");
  }
  file->page_size_ = dec.GetU32();
  file->page_count_ = dec.GetU32();
  file->durable_page_count_ = file->page_count_;
  const uint32_t bootstrap_len = dec.GetU32();
  if (bootstrap_len > kBootstrapCapacity) {
    return Status::Corruption("metapage bootstrap length out of range in " + path);
  }
  file->bootstrap_.assign(meta.begin() + 20, meta.begin() + 20 + bootstrap_len);

  // The durable page count must fit in the file; a shorter file lost data
  // after its checkpoint (truncation, partial copy).
  const off_t size = ::lseek(fd, 0, SEEK_END);
  const uint64_t needed = file->FrameOffset(file->page_count_);
  if (size < 0 || static_cast<uint64_t>(size) < needed) {
    return Status::Corruption("paged file " + path + " truncated: needs " +
                              std::to_string(needed) + " bytes for " +
                              std::to_string(file->page_count_) +
                              " pages, has " + std::to_string(size));
  }
  return file;
}

Status PagedFile::PhysicalWrite(const uint8_t* data, size_t n, uint64_t offset) {
  if (dead_.load(std::memory_order_relaxed)) {
    return Status::IOError("paged file handle is dead (simulated crash)");
  }
  const uint64_t index = write_count_.fetch_add(1, std::memory_order_relaxed);
  size_t to_write = n;
  if (write_hook_) {
    const WriteFault fault = write_hook_(index);
    if (fault == WriteFault::kCrash) {
      dead_.store(true, std::memory_order_relaxed);
      return Status::IOError("injected crash before write");
    }
    if (fault == WriteFault::kTorn) {
      to_write = n / 2;  // the sector prefix that "made it"
    }
  }
  size_t done = 0;
  while (done < to_write) {
    const ssize_t w = ::pwrite(fd_, data + done, to_write - done,
                               static_cast<off_t>(offset + done));
    if (w < 0) {
      return ErrnoStatus("write failed on", path_);
    }
    done += static_cast<size_t>(w);
  }
  if (to_write != n) {
    dead_.store(true, std::memory_order_relaxed);
    return Status::IOError("injected torn write (partial frame persisted)");
  }
  return Status::OK();
}

Status PagedFile::WriteMetapage() {
  std::vector<uint8_t> meta;
  meta.reserve(kMetaBlockSize);
  Encoder enc(&meta);
  enc.PutU32(kPagedFileMagic);
  enc.PutU32(kPagedFileVersion);
  enc.PutU32(static_cast<uint32_t>(page_size_));
  enc.PutU32(page_count_);
  enc.PutU32(static_cast<uint32_t>(bootstrap_.size()));
  meta.insert(meta.end(), bootstrap_.begin(), bootstrap_.end());
  meta.resize(kMetaChecksumOffset, 0);
  const uint64_t checksum = Fnv64(meta.data(), kMetaChecksumOffset);
  enc.PutU64(checksum);
  meta.resize(kMetaBlockSize, 0);
  UVD_RETURN_NOT_OK(PhysicalWrite(meta.data(), meta.size(), 0));
  durable_page_count_ = page_count_;
  return Status::OK();
}

Status PagedFile::WriteZeroFrames(uint32_t first, uint32_t count) {
  // One reusable zero frame; the checksum differs per page id (it covers
  // the id), so patch the header per page.
  std::vector<uint8_t> frame(kPageFrameHeaderSize + page_size_, 0);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t id = first + i;
    const uint64_t checksum =
        FrameChecksum(id, frame.data() + kPageFrameHeaderSize, page_size_);
    std::memcpy(frame.data(), &checksum, 8);
    std::memcpy(frame.data() + 8, &id, 4);
    UVD_RETURN_NOT_OK(PhysicalWrite(frame.data(), frame.size(), FrameOffset(id)));
  }
  return Status::OK();
}

Result<uint32_t> PagedFile::AllocatePages(uint32_t count) {
  const uint32_t first = page_count_;
  UVD_RETURN_NOT_OK(WriteZeroFrames(first, count));
  page_count_ += count;
  return first;
}

Status PagedFile::ReadPage(uint32_t id, std::vector<uint8_t>* out) const {
  if (id >= page_count_) {
    return Status::NotFound("page id out of range");
  }
  std::vector<uint8_t> frame(kPageFrameHeaderSize + page_size_);
  const ssize_t n =
      ::pread(fd_, frame.data(), frame.size(), static_cast<off_t>(FrameOffset(id)));
  if (n < 0) {
    return ErrnoStatus("read failed on", path_);
  }
  if (static_cast<size_t>(n) != frame.size()) {
    return Status::Corruption("short read of page " + std::to_string(id) + " in " +
                              path_ + " (file truncated)");
  }
  uint64_t stored_checksum = 0;
  uint32_t stored_id = 0;
  std::memcpy(&stored_checksum, frame.data(), 8);
  std::memcpy(&stored_id, frame.data() + 8, 4);
  const uint64_t expected =
      FrameChecksum(id, frame.data() + kPageFrameHeaderSize, page_size_);
  if (stored_id != id || stored_checksum != expected) {
    return Status::Corruption("page " + std::to_string(id) + " in " + path_ +
                              " fails checksum (torn or corrupt write)");
  }
  out->assign(frame.begin() + kPageFrameHeaderSize, frame.end());
  return Status::OK();
}

Status PagedFile::WritePage(uint32_t id, const uint8_t* data, size_t size) {
  if (id >= page_count_) {
    return Status::NotFound("page id out of range");
  }
  if (size > page_size_) {
    return Status::InvalidArgument("record larger than page size");
  }
  std::vector<uint8_t> frame(kPageFrameHeaderSize + page_size_, 0);
  std::memcpy(frame.data() + kPageFrameHeaderSize, data, size);
  const uint64_t checksum =
      FrameChecksum(id, frame.data() + kPageFrameHeaderSize, page_size_);
  std::memcpy(frame.data(), &checksum, 8);
  std::memcpy(frame.data() + 8, &id, 4);
  return PhysicalWrite(frame.data(), frame.size(), FrameOffset(id));
}

Status PagedFile::SetBootstrap(const std::vector<uint8_t>& blob) {
  if (blob.size() > kBootstrapCapacity) {
    return Status::InvalidArgument("bootstrap blob larger than " +
                                   std::to_string(kBootstrapCapacity) + " bytes");
  }
  bootstrap_ = blob;
  return Status::OK();
}

Status PagedFile::Sync() {
  if (dead_.load(std::memory_order_relaxed)) {
    return Status::IOError("paged file handle is dead (simulated crash)");
  }
  if (::fsync(fd_) != 0) {
    return ErrnoStatus("fsync failed on", path_);
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PagedFile::Checkpoint() {
  UVD_RETURN_NOT_OK(Sync());        // data reaches the device first
  UVD_RETURN_NOT_OK(WriteMetapage());
  return Sync();                    // then the metapage that names it
}

Status PagedFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status st = dead() ? Status::OK() : Checkpoint();
  if (::close(fd_) != 0 && st.ok()) {
    st = ErrnoStatus("close failed on", path_);
  }
  fd_ = -1;
  return st;
}

}  // namespace storage
}  // namespace uvd
