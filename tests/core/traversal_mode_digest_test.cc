// Determinism contract of the shared-traversal layer (rtree/
// traversal_session.h): for every build method, dataset shape, thread
// count and tile size, TraversalMode::kShared must produce a serialized
// UV-index BITWISE-identical to TraversalMode::kPerAnchor (the oracle
// that restarts every query from the root), and PNN / answer-id digests
// must match. Mirrors kernel_mode_digest_test for the traversal axis.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/build_pipeline.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "rtree/traversal_session.h"

namespace uvd {
namespace core {
namespace {

enum class Shape { kUniform, kClustered };

std::vector<uncertain::UncertainObject> MakeObjects(Shape shape, size_t n,
                                                    uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  if (shape == Shape::kUniform) return datagen::GenerateUniform(opts);
  return datagen::GenerateGaussianCloud(opts, 700.0);
}

geom::Box Domain(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  return datagen::DomainFor(opts);
}

UVDiagram BuildWith(Shape shape, size_t n, uint64_t seed,
                    const UVDiagramOptions& options, Stats* stats = nullptr) {
  auto diagram =
      UVDiagram::Build(MakeObjects(shape, n, seed), Domain(n, seed), options, stats);
  UVD_CHECK(diagram.ok()) << diagram.status().ToString();
  return std::move(diagram).ValueOrDie();
}

std::vector<uint8_t> Serialized(const UVDiagram& d) {
  std::vector<uint8_t> bytes;
  UVD_CHECK_OK(d.index().SerializeStructure(&bytes));
  return bytes;
}

uint64_t PnnDigest(const UVDiagram& d, uint64_t seed) {
  query::QueryEngine engine(d, {});
  Rng rng(seed);
  query::QueryBatch batch;
  for (int t = 0; t < 40; ++t) {
    const geom::Point p{rng.Uniform(d.domain().lo.x, d.domain().hi.x),
                        rng.Uniform(d.domain().lo.y, d.domain().hi.y)};
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return query::DigestPointAnswers(engine.ExecuteBatch(batch));
}

struct ModeCase {
  Shape shape;
  BuildMethod method;
  const char* name;
};

class TraversalModeDigestTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(TraversalModeDigestTest, SharedMatchesPerAnchorAcrossThreadsAndTiles) {
  const ModeCase mc = GetParam();
  const size_t n = 600;
  const uint64_t seed = 97;

  UVDiagramOptions oracle_options;
  oracle_options.method = mc.method;
  oracle_options.build_threads = 1;
  oracle_options.traversal_mode = rtree::TraversalMode::kPerAnchor;
  const UVDiagram oracle = BuildWith(mc.shape, n, seed, oracle_options);
  const std::vector<uint8_t> oracle_bytes = Serialized(oracle);
  const uint64_t oracle_digest = PnnDigest(oracle, 11);

  for (int threads : {1, 8}) {
    // kPerAnchor across threads, then kShared across tile sizes (1 makes
    // every session single-anchor, 7 exercises ragged tails, 256 > n/8
    // starves some workers entirely).
    {
      SCOPED_TRACE(std::string("threads=") + std::to_string(threads) +
                   " traversal=per_anchor");
      UVDiagramOptions options = oracle_options;
      options.build_threads = threads;
      const UVDiagram built = BuildWith(mc.shape, n, seed, options);
      EXPECT_EQ(oracle_bytes, Serialized(built));
      EXPECT_EQ(oracle_digest, PnnDigest(built, 11));
    }
    for (int tile : {1, 7, 256}) {
      SCOPED_TRACE(std::string("threads=") + std::to_string(threads) +
                   " traversal=shared tile=" + std::to_string(tile));
      UVDiagramOptions options;
      options.method = mc.method;
      options.build_threads = threads;
      options.traversal_mode = rtree::TraversalMode::kShared;
      options.traversal_tile_size = tile;
      const UVDiagram built = BuildWith(mc.shape, n, seed, options);
      EXPECT_EQ(oracle_bytes, Serialized(built));
      EXPECT_EQ(oracle_digest, PnnDigest(built, 11));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndShapes, TraversalModeDigestTest,
    ::testing::Values(ModeCase{Shape::kUniform, BuildMethod::kIC, "UniformIC"},
                      ModeCase{Shape::kClustered, BuildMethod::kIC, "ClusteredIC"},
                      ModeCase{Shape::kUniform, BuildMethod::kICR, "UniformICR"},
                      ModeCase{Shape::kClustered, BuildMethod::kICR,
                               "ClusteredICR"}),
    [](const ::testing::TestParamInfo<ModeCase>& info) { return info.param.name; });

TEST(TraversalModeDigestTest, BasicMethodMatchesToo) {
  // Basic skips the R-tree-driven pruning almost entirely, so this mostly
  // pins the seed-region k-NN path through the session.
  const size_t n = 220;
  UVDiagramOptions oracle_options;
  oracle_options.method = BuildMethod::kBasic;
  oracle_options.build_threads = 1;
  oracle_options.traversal_mode = rtree::TraversalMode::kPerAnchor;
  const UVDiagram oracle = BuildWith(Shape::kUniform, n, 13, oracle_options);
  UVDiagramOptions options = oracle_options;
  options.traversal_mode = rtree::TraversalMode::kShared;
  options.build_threads = 8;
  const UVDiagram shared = BuildWith(Shape::kUniform, n, 13, options);
  EXPECT_EQ(Serialized(oracle), Serialized(shared));
  EXPECT_EQ(PnnDigest(oracle, 3), PnnDigest(shared, 3));
}

TEST(TraversalModeDigestTest, TinyMemoStillExact) {
  // A 2-leaf memo forces constant eviction; results must not change.
  const size_t n = 500;
  UVDiagramOptions oracle_options;
  oracle_options.method = BuildMethod::kICR;
  oracle_options.build_threads = 1;
  oracle_options.traversal_mode = rtree::TraversalMode::kPerAnchor;
  const UVDiagram oracle = BuildWith(Shape::kClustered, n, 53, oracle_options);
  UVDiagramOptions options = oracle_options;
  options.traversal_mode = rtree::TraversalMode::kShared;
  options.leaf_memo_capacity = 2;
  const UVDiagram shared = BuildWith(Shape::kClustered, n, 53, options);
  EXPECT_EQ(Serialized(oracle), Serialized(shared));
  EXPECT_EQ(PnnDigest(oracle, 7), PnnDigest(shared, 7));
}

TEST(TraversalModeDigestTest, DecisionTickersMatchTraversalTickersMayNot) {
  // The shared traversal must make the same pruning DECISIONS — candidate
  // counts, envelope insertions, overlap checks — while its traversal
  // EFFORT (node visits, leaf reads, page I/O, memo counters) is
  // config-dependent by design (see core/build_pipeline.h).
  const size_t n = 500;
  Stats per_anchor_stats, shared_stats;
  UVDiagramOptions options;
  options.method = BuildMethod::kICR;
  options.build_threads = 1;
  options.traversal_mode = rtree::TraversalMode::kPerAnchor;
  BuildWith(Shape::kUniform, n, 29, options, &per_anchor_stats);
  options.traversal_mode = rtree::TraversalMode::kShared;
  BuildWith(Shape::kUniform, n, 29, options, &shared_stats);
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    const Ticker t = static_cast<Ticker>(i);
    if (t == Ticker::kRtreeNodeVisits || t == Ticker::kRtreeLeafReads ||
        t == Ticker::kLeafMemoHits || t == Ticker::kLeafMemoMisses ||
        t == Ticker::kPageReads || t == Ticker::kBufferPoolHits ||
        t == Ticker::kBufferPoolMisses) {
      continue;  // traversal-effort tickers; see core/build_pipeline.h
    }
    EXPECT_EQ(per_anchor_stats.Get(t), shared_stats.Get(t)) << TickerName(t);
  }
  // The session must actually reuse work on this workload, or the shared
  // path has silently degraded to per-anchor restarts.
  EXPECT_LT(shared_stats.Get(Ticker::kRtreeNodeVisits),
            per_anchor_stats.Get(Ticker::kRtreeNodeVisits));
}

}  // namespace
}  // namespace core
}  // namespace uvd
