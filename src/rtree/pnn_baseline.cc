#include "rtree/pnn_baseline.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/timer.h"

namespace uvd {
namespace rtree {

namespace {

/// Single best-first traversal (kBestFirst / kBestFirstNodeTightened).
Result<PnnRetrieval> BestFirstRetrieve(const RTree& tree, const geom::Point& q,
                                       Stats* stats, bool tighten_with_node_maxdist) {
  enum class Kind { kNode, kLeafPage };
  struct Item {
    double key;  // MINDIST lower bound
    Kind kind;
    uint32_t index;
    bool operator>(const Item& o) const { return key > o.key; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0.0, Kind::kNode, tree.root()});

  PnnRetrieval out;
  double d_minmax = std::numeric_limits<double>::infinity();
  std::vector<LeafEntry> page_entries;
  while (!pq.empty()) {
    const Item item = pq.top();
    pq.pop();
    // Best-first: keys are non-decreasing, so the first unpromising item
    // ends the search.
    if (item.key > d_minmax) break;
    if (item.kind == Kind::kNode) {
      if (stats != nullptr) stats->Add(Ticker::kRtreeNodeVisits);
      const RTree::Node& node = tree.nodes()[item.index];
      for (uint32_t c : node.children) {
        const geom::Box& mbr =
            node.leaf_children ? tree.leaf_mbrs()[c] : tree.nodes()[c].mbr;
        if (tighten_with_node_maxdist) {
          // Every object in the subtree has dist_max <= MAXDIST(mbr), so
          // the bound can be tightened before descending.
          d_minmax = std::min(d_minmax, mbr.MaxDist(q));
        }
        const double mindist = mbr.MinDist(q);
        if (mindist <= d_minmax) {
          pq.push({mindist, node.leaf_children ? Kind::kLeafPage : Kind::kNode, c});
        }
      }
    } else {
      UVD_RETURN_NOT_OK(tree.ReadLeaf(tree.leaf_pages()[item.index], &page_entries));
      for (const LeafEntry& e : page_entries) {
        d_minmax = std::min(d_minmax, e.mbc.DistMax(q));
        if (e.mbc.DistMin(q) <= d_minmax) out.candidates.push_back(e);
      }
    }
  }
  // Final verification pass: the bound kept shrinking while candidates were
  // collected.
  out.d_minmax = d_minmax;
  out.candidates.erase(
      std::remove_if(out.candidates.begin(), out.candidates.end(),
                     [&](const LeafEntry& e) { return e.mbc.DistMin(q) > d_minmax; }),
      out.candidates.end());
  return out;
}

/// Faithful [14]-style evaluation: traversal 1 establishes the bound
/// d_minmax = min over objects of dist_max(O, q); traversal 2 re-walks the
/// tree and reads every leaf that may hold an object with
/// dist_min <= d_minmax. The double leaf touch is exactly the I/O overhead
/// the paper attributes to the R-tree (Sec. I, Sec. II).
Result<PnnRetrieval> TwoPhaseRetrieve(const RTree& tree, const geom::Point& q,
                                      Stats* stats) {
  // Phase 1: best-first by MINDIST until the next node cannot contain an
  // object beating the current bound.
  enum class Kind { kNode, kLeafPage };
  struct Item {
    double key;
    Kind kind;
    uint32_t index;
    bool operator>(const Item& o) const { return key > o.key; }
  };
  double d_minmax = std::numeric_limits<double>::infinity();
  std::vector<LeafEntry> page_entries;
  {
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0.0, Kind::kNode, tree.root()});
    while (!pq.empty()) {
      const Item item = pq.top();
      pq.pop();
      if (item.key > d_minmax) break;
      if (item.kind == Kind::kNode) {
        if (stats != nullptr) stats->Add(Ticker::kRtreeNodeVisits);
        const RTree::Node& node = tree.nodes()[item.index];
        for (uint32_t c : node.children) {
          const geom::Box& mbr =
              node.leaf_children ? tree.leaf_mbrs()[c] : tree.nodes()[c].mbr;
          const double mindist = mbr.MinDist(q);
          if (mindist <= d_minmax) {
            pq.push({mindist, node.leaf_children ? Kind::kLeafPage : Kind::kNode, c});
          }
        }
      } else {
        UVD_RETURN_NOT_OK(tree.ReadLeaf(tree.leaf_pages()[item.index], &page_entries));
        for (const LeafEntry& e : page_entries) {
          d_minmax = std::min(d_minmax, e.mbc.DistMax(q));
        }
      }
    }
  }

  // Phase 2: range traversal collecting objects with dist_min <= d_minmax.
  PnnRetrieval out;
  out.d_minmax = d_minmax;
  std::vector<uint32_t> stack = {tree.root()};
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    if (stats != nullptr) stats->Add(Ticker::kRtreeNodeVisits);
    const RTree::Node& node = tree.nodes()[idx];
    for (uint32_t c : node.children) {
      const geom::Box& mbr =
          node.leaf_children ? tree.leaf_mbrs()[c] : tree.nodes()[c].mbr;
      if (mbr.MinDist(q) > d_minmax) continue;
      if (node.leaf_children) {
        UVD_RETURN_NOT_OK(tree.ReadLeaf(tree.leaf_pages()[c], &page_entries));
        for (const LeafEntry& e : page_entries) {
          if (e.mbc.DistMin(q) <= d_minmax) out.candidates.push_back(e);
        }
      } else {
        stack.push_back(c);
      }
    }
  }
  return out;
}

}  // namespace

Result<PnnRetrieval> RetrievePnnCandidates(const RTree& tree, const geom::Point& q,
                                           Stats* stats,
                                           const PnnBaselineOptions& options) {
  switch (options.traversal) {
    case BaselineTraversal::kTwoPhase:
      return TwoPhaseRetrieve(tree, q, stats);
    case BaselineTraversal::kBestFirst:
      return BestFirstRetrieve(tree, q, stats, /*tighten_with_node_maxdist=*/false);
    case BaselineTraversal::kBestFirstNodeTightened:
      return BestFirstRetrieve(tree, q, stats, /*tighten_with_node_maxdist=*/true);
  }
  return BestFirstRetrieve(tree, q, stats, false);
}

Result<std::vector<uncertain::PnnAnswer>> EvaluatePnnWithRtree(
    const RTree& tree, const uncertain::ObjectStore& store, const geom::Point& q,
    const uncertain::QualificationOptions& options, Stats* stats,
    PnnBreakdown* breakdown, const PnnBaselineOptions& baseline) {
  PnnBreakdown local;
  PnnRetrieval retrieval;
  {
    ScopedTimer t(&local.index_seconds);
    auto r = RetrievePnnCandidates(tree, q, stats, baseline);
    if (!r.ok()) return r.status();
    retrieval = std::move(r).value();
  }

  std::vector<uncertain::UncertainObject> objects;
  {
    ScopedTimer t(&local.retrieval_seconds);
    objects.reserve(retrieval.candidates.size());
    for (const LeafEntry& e : retrieval.candidates) {
      auto obj = store.Fetch(e.ptr);
      if (!obj.ok()) return obj.status();
      objects.push_back(std::move(obj).value());
    }
  }

  std::vector<uncertain::PnnAnswer> answers;
  {
    ScopedTimer t(&local.computation_seconds);
    std::vector<const uncertain::UncertainObject*> refs;
    refs.reserve(objects.size());
    for (const auto& o : objects) refs.push_back(&o);
    answers = uncertain::ComputeQualificationProbabilities(refs, q, options, stats);
  }
  if (breakdown != nullptr) breakdown->Accumulate(local);
  return answers;
}

}  // namespace rtree
}  // namespace uvd
