#include "core/uv_cell.h"

#include "common/logging.h"

namespace uvd {
namespace core {

UVCell BuildExactUvCell(const std::vector<uncertain::UncertainObject>& objects,
                        size_t index, const geom::Box& domain, Stats* stats) {
  UVD_CHECK_LT(index, objects.size());
  const uncertain::UncertainObject& anchor = objects[index];
  UVCell cell(anchor.region(), anchor.id(), domain, stats);
  for (size_t j = 0; j < objects.size(); ++j) {
    if (j == index) continue;
    cell.SubtractOutsideRegion(objects[j].region(), objects[j].id());
  }
  return cell;
}

UVCell BuildUvCellFromCandidates(const std::vector<uncertain::UncertainObject>& objects,
                                 size_t index, const std::vector<int>& candidate_ids,
                                 const geom::Box& domain, Stats* stats) {
  UVD_CHECK_LT(index, objects.size());
  const uncertain::UncertainObject& anchor = objects[index];
  UVCell cell(anchor.region(), anchor.id(), domain, stats);
  for (int id : candidate_ids) {
    if (id == anchor.id()) continue;
    UVD_DCHECK_GE(id, 0);
    UVD_DCHECK_LT(static_cast<size_t>(id), objects.size());
    const uncertain::UncertainObject& other = objects[static_cast<size_t>(id)];
    UVD_DCHECK_EQ(other.id(), id) << "objects must be stored in id order";
    cell.SubtractOutsideRegion(other.region(), other.id());
  }
  return cell;
}

}  // namespace core
}  // namespace uvd
