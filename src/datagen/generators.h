// Synthetic dataset generators reproducing the paper's setup (Sec. VI-A):
// uniform objects in a 10k x 10k domain with diameter-40 circular
// uncertainty regions and Gaussian pdfs (sigma = diameter/6, 20 histogram
// bars), plus the Gaussian-cloud skew datasets of Fig. 7(g).
//
// The paper used Theodoridis et al.'s generator from rtreeportal.org;
// this module is the offline substitute documented in DESIGN.md Sec. 5.
#ifndef UVD_DATAGEN_GENERATORS_H_
#define UVD_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace datagen {

/// Common dataset parameters (paper defaults).
struct DatasetOptions {
  size_t count = 30000;        ///< |O|
  double domain_size = 10000;  ///< Square domain side length.
  double diameter = 40;        ///< Uncertainty region diameter.
  uncertain::PdfKind pdf = uncertain::PdfKind::kGaussian;
  int num_bars = uncertain::kDefaultNumBars;
  uint64_t seed = 42;
};

/// The square domain D for the given options.
geom::Box DomainFor(const DatasetOptions& options);

/// Uniformly distributed object centers (the paper's synthetic data).
std::vector<uncertain::UncertainObject> GenerateUniform(const DatasetOptions& options);

/// Centers drawn from an isotropic Gaussian at the domain center with the
/// given sigma, clamped inside the domain — the skew datasets of
/// Fig. 7(g) (sigma = 1500 ... 3500; smaller sigma = more skew).
std::vector<uncertain::UncertainObject> GenerateGaussianCloud(
    const DatasetOptions& options, double sigma);

/// Helper shared by all generators: wraps centers into uncertain objects
/// with ids 0..n-1 and the configured pdf.
std::vector<uncertain::UncertainObject> ObjectsFromCenters(
    const std::vector<geom::Point>& centers, const DatasetOptions& options);

}  // namespace datagen
}  // namespace uvd

#endif  // UVD_DATAGEN_GENERATORS_H_
