// Cell-level result cache for the query engine: memoizes the UV-index
// point-location + page-list phase (the decoded leaf tuples) keyed by leaf
// node index. Moving-NN style workloads probe dense sequences of nearby
// points that land in the same UV-cell (Ali et al., probabilistic moving
// nearest-neighbor queries), so consecutive probes skip the leaf's page
// chain entirely. Because the cached value is byte-for-byte the output of
// UVIndex::ReadLeafEntries, every downstream phase (d_minmax verification,
// object retrieval, integration) sees identical input and the engine's
// answers are bitwise-equal with the cache on or off.
#ifndef UVD_QUERY_QUERY_CACHE_H_
#define UVD_QUERY_QUERY_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "rtree/leaf_codec.h"

namespace uvd {
namespace query {

/// Cache sizing. The entry unit is one leaf's full tuple list (typically
/// one short page chain), so even small capacities cover a trajectory's
/// working set.
struct QueryCacheOptions {
  size_t capacity = 1024;  ///< Max cached leaves across all shards.
  int shards = 8;          ///< Lock shards; <= 1 means one global lock.
  /// Segmented-LRU admission (ROADMAP "cross-batch cache reuse"): the
  /// fraction of each lock shard's capacity reserved for the PROTECTED
  /// segment. New leaves enter probationary and are promoted on their
  /// first re-reference; eviction always takes the probationary LRU tail
  /// first, so a one-pass adversarial scan — whose leaves are never
  /// re-referenced — can only churn the probationary segment and a hot
  /// trajectory working set survives it. 0 disables the protected segment
  /// (plain LRU). Promotions/demotions are billed as
  /// kQueryCachePromotions / kQueryCacheDemotions.
  double protected_fraction = 0.8;
};

/// \brief Bounded, sharded segmented-LRU map from leaf index to decoded
/// leaf tuples.
///
/// Admission policy (per lock shard): two LRU lists, probationary and
/// protected. Misses insert at the probationary front; a hit on a
/// probationary entry promotes it to the protected front; a hit on a
/// protected entry refreshes it in place. When the protected segment
/// outgrows its reservation its LRU tail is demoted back to the
/// probationary front (one more chance), and when the shard outgrows its
/// capacity the probationary LRU tail is evicted — so untouched-once scan
/// traffic can never displace the protected set. With no re-references at
/// all every entry sits in probationary and the policy degenerates to the
/// plain LRU it replaced.
///
/// Thread safety: every method is safe for concurrent callers. Each shard
/// has its own mutex + LRU lists; a leaf's shard is fixed (leaf % shards),
/// so two workers only contend when their leaves collide on a shard. The
/// loader runs outside the shard lock — two workers missing the same leaf
/// simultaneously may both read it (duplicate I/O, identical bytes) rather
/// than serializing every miss in the shard behind one page-chain read.
class QueryCache {
 public:
  using Loader = std::function<Result<std::vector<rtree::LeafEntry>>()>;

  explicit QueryCache(const QueryCacheOptions& options = {});

  /// Returns the tuples for `leaf`, invoking `loader` on a miss and
  /// caching its value. Hits/misses are billed to `stats` (the calling
  /// worker's shard) as kQueryCacheHits / kQueryCacheMisses.
  Result<std::vector<rtree::LeafEntry>> GetOrLoad(uint32_t leaf,
                                                  const Loader& loader,
                                                  Stats* stats = nullptr);

  /// Pre-populates `leaf` from `loader` WITHOUT touching recency state:
  /// if the leaf is already cached (either segment) this is a no-op — no
  /// refresh, no promotion — and the loader never runs. New entries join
  /// the probationary front exactly like a miss, so warmed leaves that are
  /// never probed age out before any re-referenced working set. Billed to
  /// `stats` as kQueryCacheWarmInserts (loads only). Used by the query
  /// engine to seed the cache from UV-partition results.
  Status WarmInsert(uint32_t leaf, const Loader& loader, Stats* stats = nullptr);

  /// Drops every entry (e.g. after UVDiagram::InsertObject extends leaf
  /// page chains).
  void Clear();

  /// Current number of cached leaves (sums shard sizes; approximate while
  /// writers are in flight).
  size_t size() const;

  /// Current number of protected (re-referenced) leaves across shards.
  size_t protected_size() const;

  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    uint32_t leaf;
    std::vector<rtree::LeafEntry> tuples;
  };
  struct Slot {
    std::list<Entry>::iterator it;
    bool is_protected;
  };
  struct Shard {
    mutable Mutex mu;
    // Both LRU lists keep most-recently-used at the front. The map is
    // never iterated (iteration order of an unordered container is not
    // deterministic — scripts/check_determinism.py enforces this).
    std::list<Entry> probationary UVD_GUARDED_BY(mu);
    std::list<Entry> protected_ UVD_GUARDED_BY(mu);
    std::unordered_map<uint32_t, Slot> map UVD_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint32_t leaf) { return *shards_[leaf % shards_.size()]; }

  size_t capacity_;            // total, across shards
  size_t shard_capacity_;      // per shard
  size_t protected_capacity_;  // per shard, <= shard_capacity_
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace query
}  // namespace uvd

#endif  // UVD_QUERY_QUERY_CACHE_H_
