// Concurrent batched query execution over a built UVDiagram.
//
// PR 1 parallelized construction; this subsystem does the same for the
// serving side. A QueryEngine owns a worker pool (common/thread_pool.h, the
// same pool type the build pipeline uses) and executes batches of
// heterogeneous queries — PNN, answer-ids-only, UV-partition range and
// cell-summary — against an immutable diagram:
//
//   * Fan-out: workers claim batch slots through an atomic cursor; every
//     query path is const over the diagram (leaf pages and object records
//     are only read, and PageManager reads are safe for concurrent
//     callers), so any number of workers may serve one batch.
//   * Per-worker stats: each worker bills the hot computation tickers
//     (integrations, hyperbola tests, cache hits/misses) to a private
//     Stats shard, merged into the diagram's Stats via Stats::MergeFrom
//     after the batch — mirroring the build pipeline's story. Index/page
//     tickers billed through the index's own Stats pointer are relaxed
//     atomics and stay exact under sharing.
//   * In-order results: results[i] answers batch[i] for every worker
//     count; per-query errors land in results[i].status.
//   * Cell cache: a bounded sharded LRU (query_cache.h) memoizes the
//     point-location + page-list phase per UV-index leaf, so co-located
//     probes (moving-NN trajectories) skip redundant leaf I/O.
//
// Determinism guarantee: for a fixed diagram, the results of ExecuteBatch
// are bitwise-identical across thread counts and cache settings — the
// cache stores the exact ReadLeafEntries output and the per-query
// computation never depends on scheduling.
//
// Concurrency: ExecuteBatch is safe to call from several threads on one
// engine (per-shard front-ends funneling to the same index); each call
// uses private Stats shards, and publication of the observability snapshot
// (worker_stats()) is mutex-guarded. The engine must not run concurrently
// with diagram mutation (UVDiagram::InsertObject); after an insert, call
// InvalidateCache() before the next batch.
//
// In a sharded deployment (src/shard/) one engine serves each shard's
// DiagramView behind the ShardRouter — whatever the shard boxes came from
// (grid, bisection, or the data-adaptive median cuts), the engine is
// partitioning-agnostic. docs/ARCHITECTURE.md has the subsystem map, the
// batch data flow through the sharded path, and the determinism
// guarantees table; docs/TUNING.md covers the knobs (threads,
// protected_fraction, cache sizing) with measured trade-offs.
#ifndef UVD_QUERY_QUERY_ENGINE_H_
#define UVD_QUERY_QUERY_ENGINE_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/uv_diagram.h"
#include "obs/latency_histogram.h"
#include "obs/metrics_registry.h"
#include "query/query_batch.h"
#include "query/query_cache.h"

namespace uvd {
namespace query {

/// Engine configuration.
struct QueryEngineOptions {
  /// Worker count. <= 0: hardware concurrency; 1: serial execution on the
  /// calling thread (no pool). Results are identical for every setting.
  int threads = 0;
  /// Cell-level result caching of the leaf page-list phase. Answers are
  /// bitwise-identical with the cache on or off; disable to measure raw
  /// I/O or when leaves are mutated between batches.
  bool enable_cache = true;
  /// Pre-populate the cache's probationary segment with every leaf a
  /// UV-partition query returns (QueryCache::WarmInsert): a dashboard-style
  /// range scan then pre-pays the leaf I/O for the point probes that
  /// typically follow it into the same region. Off by default — warming
  /// reads pages during a query kind that is otherwise I/O-free, and a
  /// huge range can churn the probationary segment. Answers are unaffected
  /// either way; billed as kQueryCacheWarmInserts.
  bool warm_cache_from_partitions = false;
  QueryCacheOptions cache;
};

/// The slice of a diagram the engine actually queries. UVDiagram is one
/// source of such a view; a shard of a ShardedUVDiagram (its own UVIndex +
/// ObjectStore over a sub-domain, src/shard/) is another. All pointers must
/// outlive the engine; `stats` (optional) receives the merged per-worker
/// shards after each batch.
struct DiagramView {
  const core::UVIndex* index = nullptr;
  const uncertain::ObjectStore* store = nullptr;
  uncertain::QualificationOptions qualification;
  Stats* stats = nullptr;
};

/// \brief Executes query batches against a built UVDiagram (or any
/// DiagramView, e.g. one shard of a sharded deployment).
class QueryEngine {
 public:
  explicit QueryEngine(const core::UVDiagram& diagram,
                       const QueryEngineOptions& options = {});
  explicit QueryEngine(const DiagramView& view, const QueryEngineOptions& options = {});

  /// Answers every query in the batch; results[i] corresponds to batch[i].
  /// Per-query failures (e.g. a point outside the domain) are reported in
  /// results[i].status without failing the rest of the batch. Worker
  /// shards are merged into the view's Stats before returning. Safe for
  /// concurrent callers: each call owns its shards (no cross-call state).
  std::vector<QueryResult> ExecuteBatch(const QueryBatch& batch);

  /// Per-worker Stats shards from the most recent ExecuteBatch (already
  /// merged into the view's Stats; kept for observability — e.g. cache
  /// hit rates or integration counts per worker). Returns a snapshot by
  /// value: with concurrent ExecuteBatch callers the member is updated
  /// under a mutex, so a reference would race with the next publication.
  std::vector<Stats> worker_stats() const;

  /// Drops every cached leaf; required after UVDiagram::InsertObject.
  void InvalidateCache();

  /// Per-query-kind latency distribution in microseconds, accumulated
  /// across every ExecuteBatch on this engine. Recorded into call-local
  /// per-worker shards and merged (exact MergeFrom) after each batch, the
  /// same story as the Stats shards; empty while obs::MetricsEnabled() is
  /// off. Purely observational — answers are identical either way.
  const obs::LatencyHistogram& kind_latency(QueryKind kind) const {
    return kind_latency_[static_cast<size_t>(kind)];
  }

  /// Zeroes the per-kind latency histograms (e.g. between bench phases).
  void ResetMetrics();

  /// Registers this engine's observables on `registry` under `prefix`:
  /// "<prefix>.query.<kind>.latency.us" histograms, cache occupancy
  /// gauges ("<prefix>.cache.size" / ".cache.protected_size"), the pool
  /// queue depth ("<prefix>.pool.queue_depth") and — when the view carries
  /// a Stats — every ticker as "<prefix>.<ticker>". The engine must
  /// outlive the registry's last snapshot.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

  /// Null when the cache is disabled.
  QueryCache* cache() { return cache_.get(); }

  int num_threads() const { return threads_; }
  const QueryEngineOptions& options() const { return options_; }
  const DiagramView& view() const { return view_; }

 private:
  QueryResult ExecuteOne(const Query& q, Stats* shard) const;

  /// The cacheable index phase: point location + leaf page list.
  Result<std::vector<rtree::LeafEntry>> CandidatesFor(const geom::Point& p,
                                                      Stats* shard) const;

  DiagramView view_;
  QueryEngineOptions options_;
  int threads_;
  std::unique_ptr<QueryCache> cache_;    // null if disabled
  std::unique_ptr<ThreadPool> pool_;     // null if threads_ == 1
  mutable Mutex stats_mu_;
  // Last batch's shards (observability snapshot, republished per batch).
  std::vector<Stats> worker_stats_ UVD_GUARDED_BY(stats_mu_);
  // Cumulative per-kind query latency (us); merged from call-local worker
  // shards after each batch, so concurrent callers never contend on it
  // mid-batch.
  std::array<obs::LatencyHistogram, kNumQueryKinds> kind_latency_;
};

}  // namespace query
}  // namespace uvd

#endif  // UVD_QUERY_QUERY_ENGINE_H_
