// Tests for the radial histogram pdfs (paper Sec. VI-A: 20 bars, Gaussian
// with sigma = diameter/6).
#include "uncertain/pdf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace uvd {
namespace uncertain {
namespace {

TEST(PdfTest, GaussianBarsSumToOne) {
  const auto pdf = RadialHistogramPdf::Gaussian(20.0);
  EXPECT_EQ(pdf.num_bars(), kDefaultNumBars);
  const double sum = std::accumulate(pdf.bars().begin(), pdf.bars().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PdfTest, UniformBarsSumToOne) {
  const auto pdf = RadialHistogramPdf::Uniform(20.0);
  const double sum = std::accumulate(pdf.bars().begin(), pdf.bars().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PdfTest, GaussianMassConcentratedNearCenter) {
  const auto pdf = RadialHistogramPdf::Gaussian(30.0);
  // sigma = 10. The first 6 of 20 rings cover r <= 9 = 0.9 sigma; the
  // truncated Rayleigh CDF there is (1 - e^{-0.405}) / (1 - e^{-4.5}).
  double inner = 0.0;
  for (int b = 0; b < 6; ++b) inner += pdf.bars()[b];
  const double expected =
      (1.0 - std::exp(-0.405)) / (1.0 - std::exp(-4.5));
  EXPECT_NEAR(inner, expected, 1e-9);
  // Far more concentrated than a uniform pdf, whose inner share would be
  // (9/30)^2 = 0.09.
  EXPECT_GT(inner, 0.3);
}

TEST(PdfTest, UniformMassProportionalToRingArea) {
  const auto pdf = RadialHistogramPdf::Uniform(10.0, 10);
  // Ring b has area proportional to (b+1)^2 - b^2 = 2b + 1.
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(pdf.bars()[b], (2.0 * b + 1.0) / 100.0, 1e-12);
  }
}

TEST(PdfTest, RingBounds) {
  const auto pdf = RadialHistogramPdf::Uniform(20.0, 20);
  EXPECT_DOUBLE_EQ(pdf.RingInner(0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.RingOuter(0), 1.0);
  EXPECT_DOUBLE_EQ(pdf.RingInner(19), 19.0);
  EXPECT_DOUBLE_EQ(pdf.RingOuter(19), 20.0);
}

TEST(PdfTest, RadialCdfMonotoneAndBounded) {
  for (const auto& pdf : {RadialHistogramPdf::Gaussian(15.0),
                          RadialHistogramPdf::Uniform(15.0)}) {
    EXPECT_DOUBLE_EQ(pdf.RadialCdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(pdf.RadialCdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(pdf.RadialCdf(15.0), 1.0);
    EXPECT_DOUBLE_EQ(pdf.RadialCdf(100.0), 1.0);
    double prev = 0.0;
    for (double r = 0.0; r <= 15.0; r += 0.1) {
      const double c = pdf.RadialCdf(r);
      EXPECT_GE(c, prev - 1e-12);
      prev = c;
    }
  }
}

TEST(PdfTest, UniformRadialCdfClosedForm) {
  const auto pdf = RadialHistogramPdf::Uniform(10.0, 20);
  // Uniform over the disk: P(|X| <= r) = (r/R)^2 exactly (the histogram is
  // lossless for uniform).
  for (double r = 0.5; r < 10.0; r += 0.5) {
    EXPECT_NEAR(pdf.RadialCdf(r), (r * r) / 100.0, 1e-12) << r;
  }
}

TEST(PdfTest, ZeroRadiusIsPointMass) {
  const auto pdf = RadialHistogramPdf::Gaussian(0.0);
  EXPECT_DOUBLE_EQ(pdf.RadialCdf(0.0), 1.0);
  Rng rng(1);
  const auto off = pdf.SampleOffset(&rng);
  EXPECT_EQ(off.x, 0.0);
  EXPECT_EQ(off.y, 0.0);
}

TEST(PdfTest, SampleOffsetsWithinRadius) {
  Rng rng(2);
  const auto pdf = RadialHistogramPdf::Gaussian(25.0);
  for (int i = 0; i < 5000; ++i) {
    const auto off = pdf.SampleOffset(&rng);
    EXPECT_LE(off.Norm(), 25.0 + 1e-9);
  }
}

TEST(PdfTest, SampleMatchesRadialCdf) {
  Rng rng(3);
  const auto pdf = RadialHistogramPdf::Gaussian(10.0);
  const int n = 200000;
  int within5 = 0;
  for (int i = 0; i < n; ++i) {
    if (pdf.SampleOffset(&rng).Norm() <= 5.0) ++within5;
  }
  EXPECT_NEAR(static_cast<double>(within5) / n, pdf.RadialCdf(5.0), 0.01);
}

TEST(PdfTest, ExplicitBarsConstructor) {
  RadialHistogramPdf pdf(PdfKind::kUniform, 4.0, {0.25, 0.25, 0.25, 0.25});
  EXPECT_EQ(pdf.num_bars(), 4);
  EXPECT_DOUBLE_EQ(pdf.RingOuter(3), 4.0);
  EXPECT_EQ(pdf.kind(), PdfKind::kUniform);
}

}  // namespace
}  // namespace uncertain
}  // namespace uvd
