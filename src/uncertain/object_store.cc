#include "uncertain/object_store.h"

#include "storage/record.h"

namespace uvd {
namespace uncertain {

namespace {

// Record layout: id(i32) cx(f64) cy(f64) radius(f64) kind(u16) bars(u16)
// then bars * f64 masses.
size_t RecordSize(int num_bars) {
  return 4 + 8 + 8 + 8 + 2 + 2 + static_cast<size_t>(num_bars) * 8;
}

void EncodeObject(const UncertainObject& o, std::vector<uint8_t>* buf) {
  storage::Encoder enc(buf);
  enc.PutI32(o.id());
  enc.PutDouble(o.center().x);
  enc.PutDouble(o.center().y);
  enc.PutDouble(o.radius());
  enc.PutU16(static_cast<uint16_t>(o.pdf().kind()));
  enc.PutU16(static_cast<uint16_t>(o.pdf().num_bars()));
  for (double mass : o.pdf().bars()) enc.PutDouble(mass);
}

UncertainObject DecodeObject(storage::Decoder* dec) {
  const int32_t id = dec->GetI32();
  const double cx = dec->GetDouble();
  const double cy = dec->GetDouble();
  const double radius = dec->GetDouble();
  const auto kind = static_cast<PdfKind>(dec->GetU16());
  const int num_bars = dec->GetU16();
  std::vector<double> bars(static_cast<size_t>(num_bars));
  for (double& mass : bars) mass = dec->GetDouble();
  return UncertainObject(id, geom::Circle({cx, cy}, radius),
                         RadialHistogramPdf(kind, radius, std::move(bars)));
}

}  // namespace

Status ObjectStore::BulkLoad(const std::vector<UncertainObject>& objects,
                             std::vector<ObjectPtr>* ptrs) {
  if (objects.empty()) {
    ptrs->clear();
    return Status::OK();
  }
  const int num_bars = objects.front().pdf().num_bars();
  record_size_ = RecordSize(num_bars);
  records_per_page_ = pm_->page_size() / record_size_;
  if (records_per_page_ == 0) {
    return Status::InvalidArgument("object record larger than page size");
  }
  ptrs->clear();
  ptrs->reserve(objects.size());

  std::vector<uint8_t> page_buf;
  storage::PageId current = storage::kInvalidPageId;
  uint32_t slot = 0;
  for (const UncertainObject& o : objects) {
    if (o.pdf().num_bars() != num_bars) {
      return Status::InvalidArgument("all objects must use the same bar count");
    }
    if (current == storage::kInvalidPageId || slot == records_per_page_) {
      if (current != storage::kInvalidPageId) {
        UVD_RETURN_NOT_OK(pm_->Write(current, page_buf));
      }
      current = pm_->Allocate();
      data_pages_.push_back(current);
      page_buf.clear();
      slot = 0;
    }
    EncodeObject(o, &page_buf);
    ptrs->push_back(MakePtr(current, slot));
    ++slot;
  }
  UVD_RETURN_NOT_OK(pm_->Write(current, page_buf));
  tail_count_ = slot;
  return Status::OK();
}

Result<ObjectPtr> ObjectStore::Append(const UncertainObject& object) {
  if (record_size_ == 0) {
    // Empty store: adopt this object's layout.
    record_size_ = RecordSize(object.pdf().num_bars());
    records_per_page_ = pm_->page_size() / record_size_;
    if (records_per_page_ == 0) {
      return Status::InvalidArgument("object record larger than page size");
    }
  } else if (RecordSize(object.pdf().num_bars()) != record_size_) {
    return Status::InvalidArgument("all objects must use the same bar count");
  }
  if (data_pages_.empty() || tail_count_ == records_per_page_) {
    data_pages_.push_back(pm_->Allocate());
    tail_count_ = 0;
  }
  const storage::PageId page = data_pages_.back();
  // Read-modify-write the tail page.
  std::vector<uint8_t> buf;
  UVD_RETURN_NOT_OK(pm_->Read(page, &buf));
  std::vector<uint8_t> record;
  EncodeObject(object, &record);
  std::copy(record.begin(), record.end(),
            buf.begin() + static_cast<long>(tail_count_ * record_size_));
  UVD_RETURN_NOT_OK(pm_->Write(page, buf));
  const ObjectPtr ptr = MakePtr(page, tail_count_);
  ++tail_count_;
  return ptr;
}

void ObjectStore::EncodeState(storage::Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(record_size_));
  enc->PutU32(static_cast<uint32_t>(records_per_page_));
  enc->PutU32(tail_count_);
  enc->PutU32(static_cast<uint32_t>(data_pages_.size()));
  for (storage::PageId p : data_pages_) enc->PutU32(p);
}

Status ObjectStore::RestoreState(storage::Decoder* dec) {
  record_size_ = dec->GetU32();
  records_per_page_ = dec->GetU32();
  tail_count_ = dec->GetU32();
  const uint32_t num_pages = dec->GetU32();
  data_pages_.clear();
  data_pages_.reserve(num_pages);
  for (uint32_t i = 0; i < num_pages; ++i) data_pages_.push_back(dec->GetU32());
  if (!data_pages_.empty() &&
      (record_size_ == 0 || records_per_page_ == 0 ||
       tail_count_ > records_per_page_)) {
    return Status::Corruption("object store manifest state is inconsistent");
  }
  return Status::OK();
}

Status ObjectStore::LoadAll(std::vector<UncertainObject>* objects,
                            std::vector<ObjectPtr>* ptrs) const {
  objects->clear();
  ptrs->clear();
  std::vector<uint8_t> buf;
  for (size_t i = 0; i < data_pages_.size(); ++i) {
    const storage::PageId page = data_pages_[i];
    UVD_RETURN_NOT_OK(pm_->Read(page, &buf));
    const uint32_t count = (i + 1 == data_pages_.size())
                               ? tail_count_
                               : static_cast<uint32_t>(records_per_page_);
    for (uint32_t slot = 0; slot < count; ++slot) {
      storage::Decoder dec(buf.data() + slot * record_size_, record_size_);
      objects->push_back(DecodeObject(&dec));
      ptrs->push_back(MakePtr(page, slot));
    }
  }
  return Status::OK();
}

Result<UncertainObject> ObjectStore::Fetch(ObjectPtr ptr) const {
  const storage::PageId page = PtrPage(ptr);
  const uint32_t slot = PtrSlot(ptr);
  if (record_size_ == 0) {
    return Status::Internal("object store not loaded");
  }
  if (slot >= records_per_page_) {
    return Status::InvalidArgument("slot out of range");
  }
  std::vector<uint8_t> buf;
  UVD_RETURN_NOT_OK(pm_->Read(page, &buf));
  storage::Decoder dec(buf.data() + slot * record_size_,
                       record_size_);
  return DecodeObject(&dec);
}

}  // namespace uncertain
}  // namespace uvd
