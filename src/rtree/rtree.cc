#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/timer.h"
#include "storage/record.h"

namespace uvd {
namespace rtree {

namespace {

// Sort-Tile-Recursive grouping of items (by their box centers) into groups
// of at most `capacity`, preserving spatial locality.
template <typename Item, typename GetBox>
std::vector<std::vector<Item>> StrPack(std::vector<Item> items, int capacity,
                                       const GetBox& get_box) {
  const size_t n = items.size();
  const size_t num_groups = (n + capacity - 1) / static_cast<size_t>(capacity);
  const size_t num_slabs =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_groups))));
  const size_t slab_items = (n + num_slabs - 1) / num_slabs;

  std::sort(items.begin(), items.end(), [&](const Item& a, const Item& b) {
    return get_box(a).Center().x < get_box(b).Center().x;
  });

  std::vector<std::vector<Item>> groups;
  groups.reserve(num_groups);
  for (size_t s = 0; s * slab_items < n; ++s) {
    const size_t begin = s * slab_items;
    const size_t end = std::min(n, begin + slab_items);
    std::sort(items.begin() + static_cast<long>(begin),
              items.begin() + static_cast<long>(end),
              [&](const Item& a, const Item& b) {
                return get_box(a).Center().y < get_box(b).Center().y;
              });
    for (size_t i = begin; i < end; i += static_cast<size_t>(capacity)) {
      const size_t stop = std::min(end, i + static_cast<size_t>(capacity));
      groups.emplace_back(items.begin() + static_cast<long>(i),
                          items.begin() + static_cast<long>(stop));
    }
  }
  return groups;
}

}  // namespace

Result<RTree> RTree::BulkLoad(const std::vector<uncertain::UncertainObject>& objects,
                              const std::vector<uncertain::ObjectPtr>& ptrs,
                              storage::PageManager* pm, const RTreeOptions& options,
                              Stats* stats) {
  if (objects.size() != ptrs.size()) {
    return Status::InvalidArgument("objects/ptrs size mismatch");
  }
  if (objects.empty()) {
    return Status::InvalidArgument("cannot bulk load an empty tree");
  }
  if (options.fanout < 2) {
    return Status::InvalidArgument("fanout must be at least 2");
  }
  const size_t needed = 2 + static_cast<size_t>(options.fanout) * kLeafEntryBytes;
  if (needed > pm->page_size()) {
    return Status::InvalidArgument("fanout too large for the page size");
  }

  RTree tree;
  tree.pm_ = pm;
  tree.stats_ = stats;
  tree.num_objects_ = objects.size();

  // Level 0: pack leaf entries into disk pages.
  std::vector<LeafEntry> entries;
  entries.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    entries.push_back({objects[i].id(), objects[i].Mbc(), ptrs[i]});
  }
  auto leaf_groups = StrPack(std::move(entries), options.fanout,
                             [](const LeafEntry& e) { return e.mbc.Mbr(); });
  for (const auto& group : leaf_groups) {
    geom::Box mbr = geom::Box::Empty();
    for (const LeafEntry& e : group) mbr.ExpandToInclude(e.mbc.Mbr());
    std::vector<uint8_t> buf;
    EncodeLeafEntries(group.data(), group.size(), &buf);
    const storage::PageId page = pm->Allocate();
    UVD_RETURN_NOT_OK(pm->Write(page, buf));
    tree.leaf_pages_.push_back(page);
    tree.leaf_mbrs_.push_back(mbr);
  }

  // Upper levels: STR over child boxes until one root remains.
  struct ChildRef {
    geom::Box mbr;
    uint32_t index;
  };
  std::vector<ChildRef> level;
  level.reserve(tree.leaf_pages_.size());
  for (uint32_t i = 0; i < tree.leaf_pages_.size(); ++i) {
    level.push_back({tree.leaf_mbrs_[i], i});
  }
  bool children_are_leaves = true;
  tree.height_ = 1;
  while (level.size() > 1 || children_are_leaves) {
    auto groups = StrPack(std::move(level), options.fanout,
                          [](const ChildRef& c) { return c.mbr; });
    std::vector<ChildRef> next;
    next.reserve(groups.size());
    for (const auto& group : groups) {
      Node node;
      node.leaf_children = children_are_leaves;
      geom::Box mbr = geom::Box::Empty();
      for (const ChildRef& c : group) {
        mbr.ExpandToInclude(c.mbr);
        node.children.push_back(c.index);
      }
      node.mbr = mbr;
      tree.nodes_.push_back(std::move(node));
      next.push_back({mbr, static_cast<uint32_t>(tree.nodes_.size() - 1)});
    }
    level = std::move(next);
    children_are_leaves = false;
    ++tree.height_;
    if (level.size() == 1) break;
  }
  tree.root_ = level.front().index;
  return tree;
}

Status RTree::ReadLeaf(storage::PageId page, std::vector<LeafEntry>* out) const {
  if (stats_ != nullptr) stats_->Add(Ticker::kRtreeLeafReads);
  std::vector<uint8_t> buf;
  UVD_RETURN_NOT_OK(pm_->Read(page, &buf));
  out->clear();
  DecodeLeafEntries(buf, out);
  return Status::OK();
}

std::vector<LeafEntry> RTree::KNearestByDistMin(const geom::Point& q, int k) const {
  TraversalScratch scratch;
  std::vector<LeafEntry> result;
  KNearestByDistMin(q, k, &scratch, &result);
  return result;
}

void RTree::KNearestByDistMin(const geom::Point& q, int k,
                              TraversalScratch* scratch,
                              std::vector<LeafEntry>* out) const {
  // Best-first search: min-heap keyed by a lower bound on dist_min with
  // the canonical tie-break (see KnnHeapItem). std::greater over
  // operator>, push_heap/pop_heap on the caller's reusable vector.
  out->clear();
  std::vector<KnnHeapItem>& heap = scratch->heap;
  heap.clear();
  const std::greater<KnnHeapItem> worse;
  heap.push_back({0.0, root_, -1, 0, {}});

  std::vector<LeafEntry>& page_entries = scratch->page_entries;
  while (!heap.empty() && out->size() < static_cast<size_t>(k)) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    const KnnHeapItem item = std::move(heap.back());
    heap.pop_back();
    switch (item.kind) {
      case 0: {  // node
        if (stats_ != nullptr) stats_->Add(Ticker::kRtreeNodeVisits);
        const Node& node = nodes_[item.index];
        for (uint32_t c : node.children) {
          if (node.leaf_children) {
            heap.push_back({leaf_mbrs_[c].MinDist(q), c, -1, 1, {}});
          } else {
            heap.push_back({nodes_[c].mbr.MinDist(q), c, -1, 0, {}});
          }
          std::push_heap(heap.begin(), heap.end(), worse);
        }
        break;
      }
      case 1: {  // leaf page
        {
          ScopedTimer t(&scratch->decode_seconds);
          if (!ReadLeaf(leaf_pages_[item.index], &page_entries).ok()) break;
        }
        for (const LeafEntry& e : page_entries) {
          heap.push_back({e.mbc.DistMin(q), item.index, e.id, 2, e});
          std::push_heap(heap.begin(), heap.end(), worse);
        }
        break;
      }
      default:  // entry
        out->push_back(item.entry);
        break;
    }
  }
}

std::vector<LeafEntry> RTree::CentersInRange(const geom::Point& center,
                                             double radius) const {
  TraversalScratch scratch;
  std::vector<LeafEntry> result;
  CentersInRange(center, radius, &scratch, &result);
  return result;
}

void RTree::CentersInRange(const geom::Point& center, double radius,
                           TraversalScratch* scratch,
                           std::vector<LeafEntry>* out) const {
  out->clear();
  std::vector<LeafEntry>& page_entries = scratch->page_entries;
  std::vector<uint32_t>& stack = scratch->stack;
  stack.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    if (stats_ != nullptr) stats_->Add(Ticker::kRtreeNodeVisits);
    const Node& node = nodes_[idx];
    for (uint32_t c : node.children) {
      if (node.leaf_children) {
        if (leaf_mbrs_[c].MinDist(center) > radius) continue;
        {
          ScopedTimer t(&scratch->decode_seconds);
          if (!ReadLeaf(leaf_pages_[c], &page_entries).ok()) continue;
        }
        for (const LeafEntry& e : page_entries) {
          if (geom::Distance(e.mbc.center, center) <= radius) {
            out->push_back(e);
          }
        }
      } else if (nodes_[c].mbr.MinDist(center) <= radius) {
        stack.push_back(c);
      }
    }
  }
}

size_t RTree::MemoryBytes() const {
  size_t bytes = sizeof(RTree) + leaf_pages_.size() * sizeof(storage::PageId) +
                 leaf_mbrs_.size() * sizeof(geom::Box);
  for (const Node& n : nodes_) {
    bytes += sizeof(Node) + n.children.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace rtree
}  // namespace uvd
