// Wall-clock timing utilities used by the benchmark harness and the
// construction-time breakdowns (Fig. 6(c), Fig. 7(d)/(e)).
#ifndef UVD_COMMON_TIMER_H_
#define UVD_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace uvd {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed wall time into *sink (seconds) on destruction.
/// Used to attribute time to phases without restructuring control flow.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace uvd

#endif  // UVD_COMMON_TIMER_H_
