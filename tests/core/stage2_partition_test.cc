// Determinism contract of the domain-partitioned parallel stage 2: for
// every tested thread count, frontier depth and dataset shape (uniform and
// the Fig. 7(g) skewed Gaussian clouds), the serialized UV-index from
// Stage2Mode::kPartitioned must be BITWISE-identical to the serial build —
// structure, leaf tuples and page layout — and EVERY Stats ticker must
// match exactly, the pruner-scan-order pair (kHyperbolaTests /
// kFourPointTests) included: residency hints live per (leaf, member)
// (UVIndex::Node::member_hints) and descent gates use a fresh hint per
// check, so the partitioned subtrees replay the serial scan lengths
// verbatim. PNN answers are cross-checked through QueryEngine and
// ShardRouter, the max_nonleaf budget fallback is exercised directly
// through UVIndex::InsertObjectsPartitioned, and the per-shard balance
// report is validated on a skewed cloud.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/build_pipeline.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"

namespace uvd {
namespace core {
namespace {

enum class Shape { kUniform, kCloud };

std::vector<uncertain::UncertainObject> MakeObjects(Shape shape, size_t n,
                                                    uint64_t seed, double sigma) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  return shape == Shape::kUniform ? datagen::GenerateUniform(opts)
                                  : datagen::GenerateGaussianCloud(opts, sigma);
}

geom::Box Domain(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  return datagen::DomainFor(opts);
}

UVDiagram BuildWith(Shape shape, size_t n, uint64_t seed, double sigma,
                    const UVDiagramOptions& options, Stats* stats = nullptr) {
  auto diagram = UVDiagram::Build(MakeObjects(shape, n, seed, sigma),
                                  Domain(n, seed), options, stats);
  UVD_CHECK(diagram.ok()) << diagram.status().ToString();
  return std::move(diagram).ValueOrDie();
}

std::vector<uint8_t> Serialized(const UVDiagram& d) {
  std::vector<uint8_t> bytes;
  UVD_CHECK_OK(d.index().SerializeStructure(&bytes));
  return bytes;
}

uint64_t PnnDigest(const UVDiagram& d, int threads, uint64_t seed) {
  query::QueryEngineOptions options;
  options.threads = threads;
  query::QueryEngine engine(d, options);
  Rng rng(seed);
  query::QueryBatch batch;
  for (int t = 0; t < 40; ++t) {
    const geom::Point p{rng.Uniform(d.domain().lo.x, d.domain().hi.x),
                        rng.Uniform(d.domain().lo.y, d.domain().hi.y)};
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return query::DigestPointAnswers(engine.ExecuteBatch(batch));
}

struct ShapeCase {
  Shape shape;
  double sigma;
  const char* name;
};

class PartitionedDeterminismTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(PartitionedDeterminismTest, MatchesSerialAcrossThreadsAndDepths) {
  const ShapeCase sc = GetParam();
  const size_t n = 700;
  const uint64_t seed = 23;

  UVDiagramOptions serial_options;
  serial_options.build_threads = 1;
  const UVDiagram serial = BuildWith(sc.shape, n, seed, sc.sigma, serial_options);
  const std::vector<uint8_t> serial_bytes = Serialized(serial);
  const uint64_t serial_digest = PnnDigest(serial, 1, 7);

  for (int threads : {1, 2, 4, 8}) {
    for (int depth : {1, 2, 3}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " depth=" + std::to_string(depth));
      UVDiagramOptions options;
      options.build_threads = threads;
      options.stage2 = Stage2Mode::kPartitioned;
      options.stage2_max_depth = depth;
      const UVDiagram partitioned = BuildWith(sc.shape, n, seed, sc.sigma, options);
      // Byte-identical index: same quad-tree, same leaf tuples, same pages.
      EXPECT_EQ(serial_bytes, Serialized(partitioned));
      EXPECT_EQ(serial.index().num_nonleaf(), partitioned.index().num_nonleaf());
      EXPECT_EQ(serial.index().total_leaf_pages(),
                partitioned.index().total_leaf_pages());
      EXPECT_EQ(serial_digest, PnnDigest(partitioned, threads, 7));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionedDeterminismTest,
    ::testing::Values(ShapeCase{Shape::kUniform, 0.0, "Uniform"},
                      ShapeCase{Shape::kCloud, 700.0, "SkewedCloud"},
                      ShapeCase{Shape::kCloud, 1500.0, "MildCloud"}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.name;
    });

TEST(Stage2PartitionTest, IcrPartitionedMatchesSerial) {
  const size_t n = 400;
  UVDiagramOptions serial_options;
  serial_options.method = BuildMethod::kICR;
  serial_options.build_threads = 1;
  const UVDiagram serial = BuildWith(Shape::kUniform, n, 31, 0.0, serial_options);
  UVDiagramOptions options = serial_options;
  options.build_threads = 4;
  options.stage2 = Stage2Mode::kPartitioned;
  const UVDiagram partitioned = BuildWith(Shape::kUniform, n, 31, 0.0, options);
  EXPECT_EQ(Serialized(serial), Serialized(partitioned));
}

TEST(Stage2PartitionTest, EveryTickerMatchesSerial) {
  // Every ticker is exact, the pruner-scan-order pair included: the
  // partitioned build performs the same CheckOverlap tests with the same
  // per-(leaf, member) hint evolution as the serial build, just
  // distributed differently (see uv_index.h). Stage 1 is pinned to the
  // kPerAnchor traversal oracle so its work tickers don't vary with the
  // worker count (build_pipeline.h documents that kShared's do).
  const size_t n = 700;
  Stats serial_stats;
  Stats partitioned_stats;
  UVDiagramOptions serial_options;
  serial_options.build_threads = 1;
  serial_options.traversal_mode = rtree::TraversalMode::kPerAnchor;
  BuildWith(Shape::kUniform, n, 23, 0.0, serial_options, &serial_stats);
  UVDiagramOptions options;
  options.build_threads = 4;
  options.stage2 = Stage2Mode::kPartitioned;
  options.traversal_mode = rtree::TraversalMode::kPerAnchor;
  BuildWith(Shape::kUniform, n, 23, 0.0, options, &partitioned_stats);
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    const Ticker t = static_cast<Ticker>(i);
    EXPECT_EQ(serial_stats.Get(t), partitioned_stats.Get(t)) << TickerName(t);
  }
  EXPECT_GT(partitioned_stats.Get(Ticker::kHyperbolaTests), 0u);
}

/// Direct UVIndex-level harness: stage 1 once, then serial InsertObject
/// loop vs InsertObjectsPartitioned on twin indexes over twin page
/// managers, so the serialized structures AND the fallback report can be
/// compared without the diagram facade in the way.
struct TwinBuild {
  std::vector<uint8_t> serial_bytes;
  std::vector<uint8_t> partitioned_bytes;
  Stats serial_stats;
  Stats partitioned_stats;
  UVIndex::PartitionedInsertReport report;
};

TwinBuild BuildTwins(size_t n, const UVIndexOptions& index_options, int threads,
                     int max_depth) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = 59;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);

  storage::PageManager scratch_pm(4096);
  uncertain::ObjectStore scratch_store(&scratch_pm);
  std::vector<uncertain::ObjectPtr> ptrs;
  UVD_CHECK_OK(scratch_store.BulkLoad(objects, &ptrs));
  auto tree = rtree::RTree::BulkLoad(objects, ptrs, &scratch_pm, {100}, nullptr)
                  .ValueOrDie();
  std::vector<std::vector<int>> index_ids;
  BuildPipelineOptions pipeline;
  UVD_CHECK_OK(ComputeStage1Candidates(objects, tree, domain, pipeline, &index_ids));

  const auto regions_of = [&](size_t i) {
    std::vector<geom::Circle> regions;
    regions.reserve(index_ids[i].size());
    for (int id : index_ids[i]) regions.push_back(objects[static_cast<size_t>(id)].region());
    return regions;
  };

  TwinBuild twins;
  {
    storage::PageManager pm(4096);
    UVIndex index(domain, &pm, index_options, &twins.serial_stats);
    for (size_t i = 0; i < n; ++i) {
      UVD_CHECK_OK(index.InsertObject(objects[i].region(), objects[i].id(), ptrs[i],
                                      regions_of(i)));
    }
    UVD_CHECK_OK(index.Finalize());
    UVD_CHECK_OK(index.SerializeStructure(&twins.serial_bytes));
  }
  {
    storage::PageManager pm(4096);
    UVIndex index(domain, &pm, index_options, &twins.partitioned_stats);
    std::vector<UVIndex::BulkInsertItem> items(n);
    for (size_t i = 0; i < n; ++i) {
      items[i] = {objects[i].region(), objects[i].id(), ptrs[i], regions_of(i)};
    }
    ThreadPool pool(threads);
    UVIndex::PartitionedInsertOptions popts;
    popts.threads = threads;
    popts.max_depth = max_depth;
    UVD_CHECK_OK(
        index.InsertObjectsPartitioned(std::move(items), &pool, popts, &twins.report));
    UVD_CHECK_OK(index.FinalizeWith(&pool, threads));
    UVD_CHECK_OK(index.SerializeStructure(&twins.partitioned_bytes));
  }
  return twins;
}

TEST(Stage2PartitionTest, SubtreesActuallyFanOut) {
  const TwinBuild twins = BuildTwins(900, UVIndexOptions{}, 4, 2);
  EXPECT_EQ(twins.serial_bytes, twins.partitioned_bytes);
  EXPECT_FALSE(twins.report.serial_fallback);
  EXPECT_GE(twins.report.subtrees, 4);
  EXPECT_GT(twins.report.parallel_splits, 0u);
  EXPECT_LT(twins.report.prefix_objects, twins.report.total_objects);
}

TEST(Stage2PartitionTest, BudgetBoundFallsBackIdentically) {
  // A max_nonleaf small enough that the optimistic subtree phase splits
  // past it: the stitch's replay must detect the divergence and rebuild
  // serially — same bytes, fallback reported.
  UVIndexOptions index_options;
  index_options.max_nonleaf = 6;  // room for the root scaffold, little more
  const TwinBuild twins = BuildTwins(900, index_options, 4, 1);
  EXPECT_EQ(twins.serial_bytes, twins.partitioned_bytes);
  EXPECT_TRUE(twins.report.serial_fallback);
  // The discarded optimistic phases must not leak into the counters: the
  // fallback unwinds the tickers, and the pruner hints die with the
  // discarded nodes (Node::member_hints), so EVERY ticker — scan-order
  // pair included — replays the serial build exactly.
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    const Ticker t = static_cast<Ticker>(i);
    EXPECT_EQ(twins.serial_stats.Get(t), twins.partitioned_stats.Get(t))
        << TickerName(t);
  }
}

TEST(Stage2PartitionTest, RequiresFreshIndex) {
  storage::PageManager pm(4096);
  UVIndex index(geom::Box({0, 0}, {100, 100}), &pm, {});
  UVD_CHECK_OK(index.InsertObject({{10, 10}, 1.0}, 0, 0, {}));
  std::vector<UVIndex::BulkInsertItem> items(1);
  items[0] = {{{20, 20}, 1.0}, 1, 0, {}};
  UVIndex::PartitionedInsertOptions popts;
  const Status status = index.InsertObjectsPartitioned(std::move(items), nullptr, popts);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Stage2PartitionTest, RejectsOutOfDomainCenters) {
  storage::PageManager pm(4096);
  UVIndex index(geom::Box({0, 0}, {100, 100}), &pm, {});
  std::vector<UVIndex::BulkInsertItem> items(1);
  items[0] = {{{200, 200}, 1.0}, 0, 0, {}};
  UVIndex::PartitionedInsertOptions popts;
  const Status status = index.InsertObjectsPartitioned(std::move(items), nullptr, popts);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Stage2PartitionTest, ShardRouterDigestMatchesUnshardedSerial) {
  // K=2 shards on 8 build threads: each shard's stage 2 runs partitioned
  // with 4 workers (the inherited path), and router answers must stay
  // bitwise-identical to the serial unsharded baseline.
  const size_t n = 600;
  const uint64_t seed = 77;
  UVDiagramOptions serial_options;
  serial_options.build_threads = 1;
  const UVDiagram baseline = BuildWith(Shape::kUniform, n, seed, 0.0, serial_options);

  shard::ShardedUVDiagramOptions sharded_options;
  sharded_options.num_shards = 2;
  sharded_options.diagram.build_threads = 8;
  auto sharded_result =
      shard::ShardedUVDiagram::Build(MakeObjects(Shape::kUniform, n, seed, 0.0),
                                     Domain(n, seed), sharded_options);
  UVD_CHECK(sharded_result.ok()) << sharded_result.status().ToString();
  const shard::ShardedUVDiagram sharded = std::move(sharded_result).ValueOrDie();
  shard::ShardRouter router(sharded);

  query::QueryEngine engine(baseline, {});
  Rng rng(5);
  query::QueryBatch batch;
  for (int t = 0; t < 50; ++t) {
    const geom::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  EXPECT_EQ(query::DigestPointAnswers(engine.ExecuteBatch(batch)),
            query::DigestPointAnswers(router.ExecuteBatch(batch)));
}

TEST(Stage2PartitionTest, BalanceReportShowsSkew) {
  const size_t n = 500;
  shard::ShardedUVDiagramOptions options;
  options.num_shards = 4;
  options.diagram.build_threads = 4;
  auto sharded_result = shard::ShardedUVDiagram::Build(
      MakeObjects(Shape::kCloud, n, 41, 600.0), Domain(n, 41), options);
  UVD_CHECK(sharded_result.ok()) << sharded_result.status().ToString();
  const shard::ShardedUVDiagram d = std::move(sharded_result).ValueOrDie();
  const auto report = d.BalanceReport();
  ASSERT_EQ(report.size(), 4u);
  size_t total_registrations = 0;
  size_t max_objects = 0;
  for (const auto& b : report) {
    total_registrations += b.objects;
    max_objects = std::max(max_objects, b.objects);
    EXPECT_GE(b.objects, b.replicas);
    EXPECT_GE(b.leaves, 1u);
    EXPECT_GE(b.leaf_pages, b.leaves);
    EXPECT_GE(b.height, 1);
    EXPECT_GT(b.bytes_on_disk, 0u);
    // Replica consistency with the routing tables.
    for (int id : {0, static_cast<int>(n) - 1}) {
      const auto shards = d.ShardsForObject(id);
      EXPECT_GE(shards.size(), 1u);
    }
  }
  // Every object is registered somewhere; border replicas push the total
  // past n.
  EXPECT_GE(total_registrations, n);
  // A sigma=600 cloud at the domain center is heavily skewed relative to a
  // 2x2 grid mean.
  const double mean = static_cast<double>(total_registrations) / 4.0;
  EXPECT_GT(static_cast<double>(max_objects) / mean, 1.0);
  EXPECT_FALSE(d.BalanceReportString().empty());
}

}  // namespace
}  // namespace core
}  // namespace uvd
