// Statistics registry in the spirit of rocksdb::Statistics: named tickers
// incremented on hot paths, snapshotted by benchmarks. Page I/O tickers are
// the unit reported in Fig. 6(b) of the paper.
#ifndef UVD_COMMON_STATS_H_
#define UVD_COMMON_STATS_H_

#include <array>
#include <cstdint>
#include <string>

namespace uvd {

/// Ticker identifiers. Extend here and in TickerName() together.
enum class Ticker : uint32_t {
  kPageReads = 0,       ///< Simulated disk pages read.
  kPageWrites,          ///< Simulated disk pages written.
  kBufferPoolHits,      ///< Page reads served from the buffer pool.
  kBufferPoolMisses,    ///< Page reads that went to "disk".
  kRtreeNodeVisits,     ///< R-tree nodes popped during any traversal.
  kRtreeLeafReads,      ///< R-tree leaf pages fetched (I/O unit for R-tree).
  kUvIndexNodeVisits,   ///< UV-index non-leaf nodes visited.
  kUvIndexLeafReads,    ///< UV-index leaf pages fetched (I/O unit for UVD).
  kHyperbolaTests,      ///< Point-vs-outside-region dominance tests.
  kEnvelopeInsertions,  ///< Radial-envelope constraint insertions.
  kOverlapChecks,       ///< CheckOverlap (Algorithm 5) invocations.
  kFourPointTests,      ///< 4-point corner tests inside CheckOverlap.
  kQualificationIntegrations,  ///< Numerical integrations performed.
  kNumTickers,  // must be last
};

/// Returns the display name for a ticker.
const char* TickerName(Ticker t);

/// \brief Counter bundle. Not thread-safe by design: the paper's system and
/// this reproduction are single-threaded per operation, matching a
/// Core2-Duo-era evaluation; benches own one Stats each.
class Stats {
 public:
  void Add(Ticker t, uint64_t delta = 1) {
    counters_[static_cast<uint32_t>(t)] += delta;
  }

  uint64_t Get(Ticker t) const { return counters_[static_cast<uint32_t>(t)]; }

  void Reset() { counters_.fill(0); }

  /// Multi-line human-readable dump of all non-zero counters.
  std::string ToString() const;

 private:
  std::array<uint64_t, static_cast<uint32_t>(Ticker::kNumTickers)> counters_{};
};

}  // namespace uvd

#endif  // UVD_COMMON_STATS_H_
