#!/usr/bin/env python3
"""Self-test for the determinism linter (scripts/check_determinism.py):
each bad_* fixture must trip exactly its rule, the good fixture must pass
clean, and the suppression grammar must behave. Registered as the
`determinism_lint_selftest` ctest — the linter gate is only trustworthy
while this proves it still rejects every banned pattern."""

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import check_determinism as lint  # noqa: E402

FIXTURES = pathlib.Path(__file__).resolve().parent / "testdata" / "determinism"


def lint_fixture(name, **kwargs):
    path = FIXTURES / name
    return lint.lint_cc_source(name, path.read_text(encoding="utf-8"), **kwargs)


class GoodFixtureTest(unittest.TestCase):
    def test_clean_code_has_no_findings(self):
        self.assertEqual(lint_fixture("good.cc"), [])


class UnorderedIterationTest(unittest.TestCase):
    def test_flags_range_for_and_iterator_loop(self):
        findings = lint_fixture("bad_unordered_iteration.cc")
        rules = [f.rule for f in findings]
        self.assertEqual(rules, ["unordered-iteration"] * 2,
                         msg=f"findings: {findings}")

    def test_ordered_iteration_is_fine(self):
        src = "std::map<int, int> m;\nfor (const auto& [k, v] : m) {}\n"
        self.assertEqual(lint.lint_cc_source("x.cc", src), [])


class RngTest(unittest.TestCase):
    def test_flags_every_nondeterministic_source(self):
        findings = lint_fixture("bad_rng.cc")
        self.assertEqual({f.rule for f in findings}, {"nondeterministic-rng"})
        # rand, srand, random_device, time-seed, clock-seed
        self.assertGreaterEqual(len(findings), 5, msg=f"findings: {findings}")

    def test_datagen_may_roll_seeds(self):
        self.assertEqual(lint_fixture("bad_rng.cc", allow_rng=True), [])

    def test_constant_seed_is_fine(self):
        src = "std::mt19937_64 gen(0x5eed);\n"
        self.assertEqual(lint.lint_cc_source("x.cc", src), [])


class AddressKeyedTest(unittest.TestCase):
    def test_flags_pointer_keys(self):
        findings = lint_fixture("bad_address_keyed.cc")
        self.assertEqual([f.rule for f in findings], ["address-keyed-map"] * 3,
                         msg=f"findings: {findings}")

    def test_pointer_values_are_fine(self):
        src = "std::map<int, Node*> by_id;\n"
        self.assertEqual(lint.lint_cc_source("x.cc", src), [])


class RawMutexTest(unittest.TestCase):
    def test_flags_raw_primitives_and_unjustified_suppression(self):
        findings = lint_fixture("bad_raw_mutex.cc")
        self.assertEqual({f.rule for f in findings}, {"raw-mutex"})
        # include, lock_guard line, mutex member, cond var, bare suppression
        self.assertGreaterEqual(len(findings), 5, msg=f"findings: {findings}")
        self.assertTrue(any("justification" in f.message for f in findings),
                        msg=f"findings: {findings}")

    def test_wrapper_header_is_exempt(self):
        src = "#include <mutex>\nstd::mutex mu_;\n"
        self.assertEqual(
            lint.lint_cc_source("src/common/thread_annotations.h", src,
                                allow_raw_mutex=True), [])

    def test_justified_suppression_passes(self):
        src = ("// uvd-lint: allow(raw-mutex) pthread interop at the ABI edge\n"
               "std::mutex mu_;\n")
        self.assertEqual(lint.lint_cc_source("x.cc", src), [])


class FastMathTest(unittest.TestCase):
    def test_flags_each_flag_once(self):
        path = FIXTURES / "bad_fast_math.cmake"
        findings = lint.lint_cmake("bad_fast_math.cmake",
                                   path.read_text(encoding="utf-8"))
        self.assertEqual([f.rule for f in findings], ["fast-math"] * 4,
                         msg=f"findings: {findings}")


class TreeTest(unittest.TestCase):
    def test_repo_is_clean(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        self.assertEqual([str(f) for f in lint.lint_tree(root)], [])

    def test_rule_catalog_matches_docs(self):
        doc = (pathlib.Path(__file__).resolve().parent.parent /
               "docs" / "STATIC_ANALYSIS.md").read_text(encoding="utf-8")
        for rule in lint.RULES:
            self.assertIn(rule, doc,
                          msg=f"rule `{rule}` missing from docs/STATIC_ANALYSIS.md")


if __name__ == "__main__":
    unittest.main()
