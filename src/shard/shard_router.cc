#include "shard/shard_router.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "obs/trace_recorder.h"

namespace uvd {
namespace shard {

ShardRouter::ShardRouter(const ShardedUVDiagram& diagram,
                         const ShardRouterOptions& options)
    : diagram_(diagram), options_(options) {
  engines_.reserve(diagram.num_shards());
  shard_obs_.reserve(diagram.num_shards());
  for (size_t s = 0; s < diagram.num_shards(); ++s) {
    engines_.push_back(std::make_unique<query::QueryEngine>(diagram.ViewOfShard(s),
                                                            options_.engine));
    shard_obs_.push_back(std::make_unique<ShardObs>());
  }
  // Default: one slot per shard, NOT capped at hardware concurrency — a
  // disk-bound shard spends its time blocked in page reads, so fanning all
  // shards even on few cores is what hides the latency (the sharding win).
  const int threads = options_.router_threads > 0
                          ? options_.router_threads
                          : static_cast<int>(diagram.num_shards());
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void ShardRouter::InvalidateCaches() {
  for (auto& engine : engines_) engine->InvalidateCache();
}

obs::LatencyHistogram ShardRouter::MergedKindLatency(
    query::QueryKind kind) const {
  obs::LatencyHistogram merged;
  for (const auto& engine : engines_) {
    merged.MergeFrom(engine->kind_latency(kind));
  }
  return merged;
}

void ShardRouter::ResetMetrics() {
  for (auto& engine : engines_) engine->ResetMetrics();
  for (auto& so : shard_obs_) {
    so->routed_latency_us.Reset();
    so->routed_queries.store(0, std::memory_order_relaxed);
  }
  fanout_total_.store(0, std::memory_order_relaxed);
  multi_shard_queries_.store(0, std::memory_order_relaxed);
}

void ShardRouter::RegisterMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) const {
  for (size_t s = 0; s < engines_.size(); ++s) {
    const std::string shard_prefix = prefix + ".shard" + std::to_string(s);
    engines_[s]->RegisterMetrics(registry, shard_prefix);
    const ShardObs* so = shard_obs_[s].get();
    registry->RegisterHistogram(shard_prefix + ".routed.latency.us",
                                &so->routed_latency_us);
    registry->RegisterCounter(shard_prefix + ".routed.queries", [so] {
      return so->routed_queries.load(std::memory_order_relaxed);
    });
    registry->RegisterHistogram(shard_prefix + ".storage.page.read.latency.us",
                                &diagram_.shard(s).pm->read_latency_histogram());
  }
  registry->RegisterCounter(prefix + ".router.fanout.total", [this] {
    return fanout_total_.load(std::memory_order_relaxed);
  });
  registry->RegisterCounter(prefix + ".router.multi_shard_queries", [this] {
    return multi_shard_queries_.load(std::memory_order_relaxed);
  });
  registry->RegisterGauge(prefix + ".router.shard_imbalance", [this] {
    // Object-count max/mean across shards, the BalanceReportString footer
    // ratio (1.0 = perfectly balanced). Snapshot-time evaluation keeps the
    // gauge current after inserts.
    const auto report = diagram_.BalanceReport();
    if (report.empty()) return 1.0;
    size_t max_objects = 0, total = 0;
    for (const auto& b : report) {
      max_objects = std::max(max_objects, b.objects);
      total += b.objects;
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(report.size());
    return mean > 0.0 ? static_cast<double>(max_objects) / mean : 1.0;
  });
}

std::vector<query::QueryResult> ShardRouter::ExecuteBatch(
    const query::QueryBatch& batch) {
  UVD_TRACE_SPAN("router", "execute_batch");
  const size_t num_shards = engines_.size();
  std::vector<query::QueryResult> results(batch.size());

  // Plan: per-shard sub-batches of (global index, query). Multi-shard
  // kinds appear in several plans and are merged below.
  struct Slot {
    size_t global;
    query::Query query;
  };
  // `timed` is sampled once per batch (same story as the engine) so the
  // fan-out counters and routed-latency records agree within a batch.
  const bool timed = obs::MetricsEnabled();
  uint64_t multi_shard = 0;
  std::vector<std::vector<Slot>> plan(num_shards);
  for (size_t i = 0; i < batch.size(); ++i) {
    const query::Query& q = batch[i];
    switch (q.kind) {
      case query::QueryKind::kPnn:
      case query::QueryKind::kAnswerIds: {
        const int s = diagram_.ShardIndexForPoint(q.point);
        plan[static_cast<size_t>(s)].push_back({i, q});
        break;
      }
      case query::QueryKind::kUvPartitions: {
        const std::vector<int> targets = diagram_.ShardsForRange(q.range);
        if (targets.size() > 1) ++multi_shard;
        for (int s : targets) {
          plan[static_cast<size_t>(s)].push_back({i, q});
        }
        // No intersecting shard: an unsharded index answers a disjoint
        // range with an empty list too, so the default result stands.
        break;
      }
      case query::QueryKind::kCellSummary: {
        std::vector<int> targets = diagram_.ShardsForObject(q.object_id);
        // Unregistered ids still need the canonical NotFound an unsharded
        // scan produces; any shard's scan yields it.
        if (targets.empty()) targets.push_back(0);
        if (targets.size() > 1) ++multi_shard;
        for (int s : targets) {
          plan[static_cast<size_t>(s)].push_back({i, q});
        }
        break;
      }
    }
  }
  if (timed) {
    uint64_t slots = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      slots += plan[s].size();
      if (!plan[s].empty()) {
        shard_obs_[s]->routed_queries.fetch_add(plan[s].size(),
                                                std::memory_order_relaxed);
      }
    }
    fanout_total_.fetch_add(slots, std::memory_order_relaxed);
    multi_shard_queries_.fetch_add(multi_shard, std::memory_order_relaxed);
  }

  // Execute the non-empty sub-batches, concurrently across shards when the
  // router has a pool. Engines guarantee in-order sub-results, so each
  // shard's answers line up with its plan.
  std::vector<std::vector<query::QueryResult>> shard_results(num_shards);
  const auto run_shard = [&](size_t s) {
    UVD_TRACE_SPAN("router", "route_shard");
    query::QueryBatch sub;
    sub.reserve(plan[s].size());
    for (const Slot& slot : plan[s]) sub.push_back(slot.query);
    if (timed) {
      const uint64_t t0 = obs::NowMicros();
      shard_results[s] = engines_[s]->ExecuteBatch(sub);
      shard_obs_[s]->routed_latency_us.Record(obs::NowMicros() - t0);
    } else {
      shard_results[s] = engines_[s]->ExecuteBatch(sub);
    }
  };
  std::vector<size_t> active;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!plan[s].empty()) active.push_back(s);
  }
  if (pool_ == nullptr || active.size() <= 1) {
    for (size_t s : active) run_shard(s);
  } else {
    // Per-call completion tracking (WaitGroup, not the pool's global
    // Wait): two concurrent router batches share the pool without coupling
    // each other's latency to the slower batch's drain. WaitGroup's
    // counter is UVD_GUARDED_BY its mutex, so the Done/Wait handshake is
    // checked at compile time under -Wthread-safety.
    std::atomic<size_t> next{0};
    const size_t tasks = std::min<size_t>(
        active.size(), static_cast<size_t>(pool_->num_threads()));
    auto done = std::make_shared<WaitGroup>(static_cast<int>(tasks));
    for (size_t t = 0; t < tasks; ++t) {
      pool_->Submit([&, done] {
        for (;;) {
          const size_t a = next.fetch_add(1, std::memory_order_relaxed);
          if (a >= active.size()) break;
          run_shard(active[a]);
        }
        done->Done();
      });
    }
    done->Wait();
  }

  // Reassemble positionally; ascending shard order makes multi-shard
  // merges deterministic for every thread configuration.
  std::vector<size_t> merged_so_far(batch.size(), 0);
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t k = 0; k < plan[s].size(); ++k) {
      const size_t i = plan[s][k].global;
      query::QueryResult& partial = shard_results[s][k];
      query::QueryResult& out = results[i];
      switch (batch[i].kind) {
        case query::QueryKind::kPnn:
        case query::QueryKind::kAnswerIds:
          out = std::move(partial);
          break;
        case query::QueryKind::kUvPartitions:
          out.partitions.insert(out.partitions.end(),
                                std::make_move_iterator(partial.partitions.begin()),
                                std::make_move_iterator(partial.partitions.end()));
          break;
        case query::QueryKind::kCellSummary: {
          // Merge found summaries (shard leaves are disjoint, so areas and
          // leaf counts add); keep NotFound only if every shard said so.
          const bool first = merged_so_far[i] == 0;
          if (first) out.status = partial.status;
          if (partial.status.ok()) {
            if (first || !out.status.ok()) {
              // First found shard (possibly after earlier NotFounds).
              out.status = Status::OK();
              out.cell_summary = core::UvCellSummary{};
              out.cell_summary.extent = geom::Box::Empty();
            }
            out.cell_summary.area += partial.cell_summary.area;
            out.cell_summary.num_leaves += partial.cell_summary.num_leaves;
            out.cell_summary.extent.ExpandToInclude(partial.cell_summary.extent);
          }
          ++merged_so_far[i];
          break;
        }
      }
    }
  }
  return results;
}

}  // namespace shard
}  // namespace uvd
