// Synthetic dataset generators reproducing the paper's setup (Sec. VI-A):
// uniform objects in a 10k x 10k domain with diameter-40 circular
// uncertainty regions and Gaussian pdfs (sigma = diameter/6, 20 histogram
// bars), plus the Gaussian-cloud skew datasets of Fig. 7(g).
//
// The paper used Theodoridis et al.'s generator from rtreeportal.org;
// this module is the offline substitute documented in DESIGN.md Sec. 5.
#ifndef UVD_DATAGEN_GENERATORS_H_
#define UVD_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace datagen {

/// Common dataset parameters (paper defaults).
struct DatasetOptions {
  size_t count = 30000;        ///< |O|
  double domain_size = 10000;  ///< Square domain side length.
  double diameter = 40;        ///< Uncertainty region diameter.
  uncertain::PdfKind pdf = uncertain::PdfKind::kGaussian;
  int num_bars = uncertain::kDefaultNumBars;
  uint64_t seed = 42;
};

/// The square domain D for the given options.
geom::Box DomainFor(const DatasetOptions& options);

/// Uniformly distributed object centers (the paper's synthetic data).
std::vector<uncertain::UncertainObject> GenerateUniform(const DatasetOptions& options);

/// Centers drawn from an isotropic Gaussian at the domain center with the
/// given sigma, clamped inside the domain — the skew datasets of
/// Fig. 7(g) (sigma = 1500 ... 3500; smaller sigma = more skew).
std::vector<uncertain::UncertainObject> GenerateGaussianCloud(
    const DatasetOptions& options, double sigma);

/// One component of a Gaussian-mixture skew dataset.
struct ClusterSpec {
  geom::Point center;    ///< Cluster mean.
  double sigma = 500.0;  ///< Isotropic standard deviation.
  double weight = 1.0;   ///< Relative share of the objects (any positive scale).
};

/// Mixture-of-Gaussians skew generator: Fig. 7(g)'s single central cloud
/// generalized to multiple clusters with unequal weights, the
/// hot-shard-inducing workloads data-adaptive partitioning targets (e.g. a
/// 10:1 two-cluster spec). Per-cluster counts are assigned
/// deterministically by largest remainder (ties to the earlier cluster)
/// and centers are drawn cluster by cluster from one seeded rng, clamped
/// to the domain; ids are 0..n-1 in draw order.
std::vector<uncertain::UncertainObject> GenerateClusters(
    const DatasetOptions& options, const std::vector<ClusterSpec>& clusters);

/// Helper shared by all generators: wraps centers into uncertain objects
/// with ids 0..n-1 and the configured pdf.
std::vector<uncertain::UncertainObject> ObjectsFromCenters(
    const std::vector<geom::Point>& centers, const DatasetOptions& options);

}  // namespace datagen
}  // namespace uvd

#endif  // UVD_DATAGEN_GENERATORS_H_
