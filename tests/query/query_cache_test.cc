// Unit tests for the sharded LRU cell cache: hit/miss accounting, bounded
// capacity with LRU eviction, Clear, error pass-through, and concurrent
// access (the TSan job runs this binary).
#include "query/query_cache.h"

#include <gtest/gtest.h>

#include <thread>

namespace uvd {
namespace query {
namespace {

rtree::LeafEntry MakeEntry(int id) {
  rtree::LeafEntry e;
  e.id = id;
  e.mbc = {{static_cast<double>(id), 0.0}, 1.0};
  e.ptr = static_cast<uncertain::ObjectPtr>(id);
  return e;
}

QueryCache::Loader LoaderFor(int id, int* calls = nullptr) {
  return [id, calls]() -> Result<std::vector<rtree::LeafEntry>> {
    if (calls != nullptr) ++*calls;
    return std::vector<rtree::LeafEntry>{MakeEntry(id)};
  };
}

TEST(QueryCacheTest, HitSkipsTheLoader) {
  QueryCache cache;
  Stats stats;
  int calls = 0;
  auto first = cache.GetOrLoad(7, LoaderFor(7, &calls), &stats);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrLoad(7, LoaderFor(7, &calls), &stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.Get(Ticker::kQueryCacheMisses), 1u);
  EXPECT_EQ(stats.Get(Ticker::kQueryCacheHits), 1u);
  ASSERT_EQ(second.value().size(), 1u);
  EXPECT_EQ(second.value()[0].id, 7);
}

TEST(QueryCacheTest, CapacityBoundWithLruEviction) {
  QueryCacheOptions opts;
  opts.capacity = 4;
  opts.shards = 1;  // deterministic eviction order
  QueryCache cache(opts);
  Stats stats;
  for (uint32_t leaf = 0; leaf < 8; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
  }
  EXPECT_EQ(cache.size(), 4u);
  // Leaves 4..7 are resident; leaf 0 was evicted and must re-load.
  int calls = 0;
  ASSERT_TRUE(cache.GetOrLoad(7, LoaderFor(7, &calls), &stats).ok());
  EXPECT_EQ(calls, 0);
  ASSERT_TRUE(cache.GetOrLoad(0, LoaderFor(0, &calls), &stats).ok());
  EXPECT_EQ(calls, 1);
}

TEST(QueryCacheTest, ClearDropsEverything) {
  QueryCache cache;
  Stats stats;
  ASSERT_TRUE(cache.GetOrLoad(1, LoaderFor(1), &stats).ok());
  ASSERT_TRUE(cache.GetOrLoad(2, LoaderFor(2), &stats).ok());
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  int calls = 0;
  ASSERT_TRUE(cache.GetOrLoad(1, LoaderFor(1, &calls), &stats).ok());
  EXPECT_EQ(calls, 1);
}

TEST(QueryCacheTest, LoaderErrorsAreNotCached) {
  QueryCache cache;
  Stats stats;
  int calls = 0;
  const auto failing = [&calls]() -> Result<std::vector<rtree::LeafEntry>> {
    ++calls;
    return Status::Internal("disk on fire");
  };
  EXPECT_FALSE(cache.GetOrLoad(3, failing, &stats).ok());
  EXPECT_EQ(cache.size(), 0u);
  // The next lookup retries the loader instead of serving the failure.
  ASSERT_TRUE(cache.GetOrLoad(3, LoaderFor(3, &calls), &stats).ok());
  EXPECT_EQ(calls, 2);
}

TEST(QueryCacheTest, ScanCannotEvictProtectedWorkingSet) {
  // Segmented-LRU admission: a hot set that has been re-referenced lives
  // in the protected segment, and a one-pass adversarial scan — all
  // misses, never re-referenced — can only churn probationary slots.
  QueryCacheOptions opts;
  opts.capacity = 8;
  opts.shards = 1;
  opts.protected_fraction = 0.5;
  QueryCache cache(opts);
  Stats stats;
  for (uint32_t leaf = 0; leaf < 4; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
  }
  EXPECT_EQ(cache.protected_size(), 4u);
  EXPECT_EQ(stats.Get(Ticker::kQueryCachePromotions), 4u);

  // 64 distinct cold leaves sweep through: 8x the capacity.
  for (uint32_t leaf = 100; leaf < 164; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
  }

  // The hot set is still resident — no loader call on re-access.
  int calls = 0;
  for (uint32_t leaf = 0; leaf < 4; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf), &calls), &stats)
                    .ok());
  }
  EXPECT_EQ(calls, 0);
  EXPECT_LE(cache.size(), 8u);
}

TEST(QueryCacheTest, ProtectedOverflowDemotesLru) {
  QueryCacheOptions opts;
  opts.capacity = 8;
  opts.shards = 1;
  opts.protected_fraction = 0.25;  // protected segment holds 2
  QueryCache cache(opts);
  Stats stats;
  for (uint32_t leaf = 0; leaf < 3; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
  }
  // Third promotion overflowed the 2-slot protected segment: leaf 0 (the
  // protected LRU) went back to probationary with its entry intact.
  EXPECT_EQ(stats.Get(Ticker::kQueryCachePromotions), 3u);
  EXPECT_EQ(stats.Get(Ticker::kQueryCacheDemotions), 1u);
  EXPECT_EQ(cache.protected_size(), 2u);
  int calls = 0;
  ASSERT_TRUE(cache.GetOrLoad(0, LoaderFor(0, &calls), &stats).ok());
  EXPECT_EQ(calls, 0);
}

TEST(QueryCacheTest, FullProtectedFractionKeepsOneProbationarySlot) {
  // protected_fraction = 1.0 must not freeze the cache: a probationary
  // slot always survives, so new leaves can still be admitted and
  // promoted after the first working set fills the protected segment.
  QueryCacheOptions opts;
  opts.capacity = 4;
  opts.shards = 1;
  opts.protected_fraction = 1.0;
  QueryCache cache(opts);
  Stats stats;
  for (uint32_t leaf = 0; leaf < 4; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
  }
  EXPECT_LE(cache.protected_size(), 3u);
  // A shifted working set can still be admitted and promoted.
  int calls = 0;
  ASSERT_TRUE(cache.GetOrLoad(99, LoaderFor(99, &calls), &stats).ok());
  ASSERT_TRUE(cache.GetOrLoad(99, LoaderFor(99, &calls), &stats).ok());
  EXPECT_EQ(calls, 1);  // second access is a hit, not a self-evicted miss
}

TEST(QueryCacheTest, ZeroProtectedFractionIsPlainLru) {
  QueryCacheOptions opts;
  opts.capacity = 4;
  opts.shards = 1;
  opts.protected_fraction = 0.0;
  QueryCache cache(opts);
  Stats stats;
  for (uint32_t leaf = 0; leaf < 4; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
  }
  EXPECT_EQ(stats.Get(Ticker::kQueryCachePromotions), 0u);
  EXPECT_EQ(cache.protected_size(), 0u);
  // Plain LRU: a scan now evicts the re-referenced set too.
  for (uint32_t leaf = 100; leaf < 104; ++leaf) {
    ASSERT_TRUE(cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)), &stats).ok());
  }
  int calls = 0;
  ASSERT_TRUE(cache.GetOrLoad(0, LoaderFor(0, &calls), &stats).ok());
  EXPECT_EQ(calls, 1);
}

TEST(QueryCacheTest, ConcurrentMixedLookupsAreSafe) {
  QueryCacheOptions opts;
  opts.capacity = 64;
  opts.shards = 4;
  QueryCache cache(opts);
  std::vector<Stats> shards(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &shards, t] {
      for (int round = 0; round < 200; ++round) {
        const uint32_t leaf = static_cast<uint32_t>((round * (t + 1)) % 96);
        auto r = cache.GetOrLoad(leaf, LoaderFor(static_cast<int>(leaf)),
                                 &shards[static_cast<size_t>(t)]);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r.value().size(), 1u);
        ASSERT_EQ(r.value()[0].id, static_cast<int>(leaf));
      }
    });
  }
  for (auto& t : threads) t.join();
  Stats total;
  for (const Stats& s : shards) total.MergeFrom(s);
  EXPECT_EQ(total.Get(Ticker::kQueryCacheHits) + total.Get(Ticker::kQueryCacheMisses),
            4u * 200u);
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace query
}  // namespace uvd
