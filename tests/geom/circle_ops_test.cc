// Tests for circle/annulus intersection areas against closed forms and
// Monte-Carlo estimates.
#include "geom/circle_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace uvd {
namespace geom {
namespace {

TEST(LensAreaTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(LensArea(5.0, 2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(LensArea(4.0, 2.0, 2.0), 0.0);  // externally tangent
}

TEST(LensAreaTest, ContainedIsSmallerDisk) {
  EXPECT_DOUBLE_EQ(LensArea(0.0, 3.0, 1.0), M_PI);
  EXPECT_DOUBLE_EQ(LensArea(1.0, 3.0, 1.0), M_PI);   // internal, not touching
  EXPECT_DOUBLE_EQ(LensArea(2.0, 3.0, 1.0), M_PI);   // internally tangent
  EXPECT_DOUBLE_EQ(LensArea(0.0, 2.0, 2.0), 4 * M_PI);  // identical disks
}

TEST(LensAreaTest, ZeroRadius) {
  EXPECT_DOUBLE_EQ(LensArea(1.0, 0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(LensArea(0.0, 0.0, 0.0), 0.0);
}

TEST(LensAreaTest, SymmetricHalfOverlap) {
  // Two unit circles whose centers are 1 apart: classic vesica-piscis-like
  // lens with closed form 2*acos(1/2) - sqrt(3)/2 per the segment formula.
  const double expected = 2.0 * std::acos(0.5) - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(LensArea(1.0, 1.0, 1.0), expected, 1e-12);
}

TEST(LensAreaTest, SymmetryInRadii) {
  for (double d = 0.1; d < 6.0; d += 0.37) {
    EXPECT_NEAR(LensArea(d, 1.7, 2.9), LensArea(d, 2.9, 1.7), 1e-12) << "d=" << d;
  }
}

TEST(LensAreaTest, MonotoneInDistance) {
  double prev = LensArea(0.0, 2.0, 3.0);
  for (double d = 0.1; d < 6.0; d += 0.1) {
    const double cur = LensArea(d, 2.0, 3.0);
    EXPECT_LE(cur, prev + 1e-12) << "d=" << d;
    prev = cur;
  }
}

TEST(LensAreaTest, MatchesMonteCarlo) {
  Rng rng(42);
  const double d = 1.3, r1 = 1.0, r2 = 1.6;
  const Point c1{0, 0}, c2{d, 0};
  int hits = 0;
  const int n = 400000;
  // Sample within the first disk; the lens fraction times disk area.
  for (int i = 0; i < n; ++i) {
    const double rad = r1 * std::sqrt(rng.Uniform(0, 1));
    const double ang = rng.Uniform(0, 2 * M_PI);
    const Point p{c1.x + rad * std::cos(ang), c1.y + rad * std::sin(ang)};
    if (Distance(p, c2) <= r2) ++hits;
  }
  const double mc = M_PI * r1 * r1 * hits / n;
  EXPECT_NEAR(LensArea(d, r1, r2), mc, 0.01);
}

TEST(CircleIntersectionAreaTest, MatchesLensArea) {
  const Circle a({0, 0}, 2), b({1, 1}, 1.5);
  EXPECT_DOUBLE_EQ(CircleIntersectionArea(a, b),
                   LensArea(std::sqrt(2.0), 2.0, 1.5));
}

TEST(AnnulusTest, FullAnnulusWhenCircleCoversIt) {
  // Query disk big enough to contain the whole annulus.
  const double area =
      AnnulusCircleIntersectionArea({0, 0}, 100.0, {1, 1}, 1.0, 2.0);
  EXPECT_NEAR(area, M_PI * (4.0 - 1.0), 1e-9);
}

TEST(AnnulusTest, ZeroWhenDisjoint) {
  EXPECT_DOUBLE_EQ(AnnulusCircleIntersectionArea({0, 0}, 1.0, {10, 0}, 0.5, 2.0),
                   0.0);
}

TEST(AnnulusTest, DegenerateRingIsZero) {
  EXPECT_DOUBLE_EQ(AnnulusCircleIntersectionArea({0, 0}, 5.0, {1, 0}, 1.5, 1.5),
                   0.0);
}

TEST(AnnulusTest, RingsPartitionDisk) {
  // Splitting a disk into rings and summing intersection areas with a query
  // disk must reproduce the full lens area.
  const Point q{0.4, -0.2}, c{1.5, 0.7};
  const double d = 1.9, r = 1.2;
  const int bars = 20;
  double sum = 0.0;
  for (int b = 0; b < bars; ++b) {
    const double r_in = r * b / bars;
    const double r_out = r * (b + 1) / bars;
    sum += AnnulusCircleIntersectionArea(q, d, c, r_in, r_out);
  }
  EXPECT_NEAR(sum, LensArea(Distance(q, c), d, r), 1e-9);
}

}  // namespace
}  // namespace geom
}  // namespace uvd
