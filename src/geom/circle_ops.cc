#include "geom/circle_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uvd {
namespace geom {

double LensArea(double d, double r1, double r2) {
  UVD_DCHECK_GE(r1, 0.0);
  UVD_DCHECK_GE(r2, 0.0);
  UVD_DCHECK_GE(d, 0.0);
  if (r1 == 0.0 || r2 == 0.0) return 0.0;
  if (d >= r1 + r2) return 0.0;  // disjoint
  const double rmin = std::min(r1, r2);
  if (d <= std::abs(r1 - r2)) {
    return M_PI * rmin * rmin;  // smaller disk fully contained
  }
  // Two circular segments. Clamp acos arguments against roundoff.
  auto clamped_acos = [](double v) { return std::acos(std::clamp(v, -1.0, 1.0)); };
  const double d2 = d * d;
  const double alpha1 = clamped_acos((d2 + r1 * r1 - r2 * r2) / (2.0 * d * r1));
  const double alpha2 = clamped_acos((d2 + r2 * r2 - r1 * r1) / (2.0 * d * r2));
  const double tri = 0.5 * std::sqrt(std::max(
                               0.0, (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) *
                                        (d + r1 + r2)));
  // Clamp: near tangency the two terms cancel and roundoff can go
  // fractionally negative.
  return std::max(0.0, r1 * r1 * alpha1 + r2 * r2 * alpha2 - tri);
}

double CircleIntersectionArea(const Circle& a, const Circle& b) {
  return LensArea(Distance(a.center, b.center), a.radius, b.radius);
}

double AnnulusCircleIntersectionArea(const Point& q, double d, const Point& c,
                                     double r_in, double r_out) {
  UVD_DCHECK_GE(r_in, 0.0);
  UVD_DCHECK_LE(r_in, r_out);
  const double dist = Distance(q, c);
  return LensArea(dist, d, r_out) - LensArea(dist, d, r_in);
}

}  // namespace geom
}  // namespace uvd
