// Tests for the monotone-chain convex hull used by C-pruning (Lemma 3).
#include "geom/convex_hull.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace uvd {
namespace geom {
namespace {

TEST(ConvexHullTest, Square) {
  std::vector<Point> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHullTest, CollinearPointsDropped) {
  std::vector<Point> pts = {{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 2}};
  const auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHullTest, DegenerateInputs) {
  EXPECT_TRUE(ConvexHull({}).empty());
  EXPECT_EQ(ConvexHull({{1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{1, 1}, {2, 2}}).size(), 2u);
  EXPECT_EQ(ConvexHull({{1, 1}, {1, 1}, {1, 1}}).size(), 1u);  // duplicates
}

TEST(ConvexHullTest, OutputIsCounterClockwise) {
  std::vector<Point> pts = {{0, 0}, {4, 0}, {4, 3}, {0, 3}, {2, 1}, {1, 2}};
  const auto hull = ConvexHull(pts);
  ASSERT_GE(hull.size(), 3u);
  double area2 = 0;
  for (size_t i = 0; i < hull.size(); ++i) {
    area2 += hull[i].Cross(hull[(i + 1) % hull.size()]);
  }
  EXPECT_GT(area2, 0.0);  // positive signed area = CCW
  EXPECT_DOUBLE_EQ(area2, 2.0 * 12.0);
}

TEST(ConvexHullTest, AllInputPointsInsideHull) {
  Rng rng(17);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
  }
  const auto hull = ConvexHull(pts);
  for (const Point& p : pts) {
    EXPECT_TRUE(ConvexContains(hull, p));
  }
}

TEST(ConvexHullTest, HullVerticesAreInputPoints) {
  Rng rng(23);
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto hull = ConvexHull(pts);
  for (const Point& v : hull) {
    EXPECT_TRUE(std::any_of(pts.begin(), pts.end(),
                            [&](const Point& p) { return p == v; }));
  }
}

TEST(ConvexContainsTest, InsideOutsideBoundary) {
  const std::vector<Point> hull = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_TRUE(ConvexContains(hull, {1, 1}));
  EXPECT_TRUE(ConvexContains(hull, {0, 0}));
  EXPECT_TRUE(ConvexContains(hull, {1, 0}));  // on edge
  EXPECT_FALSE(ConvexContains(hull, {3, 1}));
  EXPECT_FALSE(ConvexContains(hull, {-0.1, 1}));
}

TEST(ConvexContainsTest, SegmentHull) {
  const std::vector<Point> hull = {{0, 0}, {2, 0}};
  EXPECT_TRUE(ConvexContains(hull, {1, 0}));
  EXPECT_TRUE(ConvexContains(hull, {2, 0}));
  EXPECT_FALSE(ConvexContains(hull, {3, 0}));
  EXPECT_FALSE(ConvexContains(hull, {1, 0.5}));
}

TEST(ConvexContainsTest, PointHull) {
  const std::vector<Point> hull = {{1, 1}};
  EXPECT_TRUE(ConvexContains(hull, {1, 1}));
  EXPECT_FALSE(ConvexContains(hull, {1, 1.1}));
}

}  // namespace
}  // namespace geom
}  // namespace uvd
