// "Real-like" geographic datasets substituting the paper's Germany maps
// (utility 17K, roads 30K, rrlines 36K from rtreeportal.org, unavailable
// offline — see DESIGN.md Sec. 5). The experiments exercise only the
// non-uniformity of the real data, so we synthesize sets with the same
// cardinalities and matching spatial character:
//   utility — clustered point process (facility clusters around towns)
//   roads   — dense jittered points along many meandering polylines
//   rrlines — sparse points along fewer, longer, straighter polylines
#ifndef UVD_DATAGEN_REAL_LIKE_H_
#define UVD_DATAGEN_REAL_LIKE_H_

#include "datagen/generators.h"

namespace uvd {
namespace datagen {

enum class RealDataset {
  kUtility,
  kRoads,
  kRrlines,
};

const char* RealDatasetName(RealDataset d);

/// Paper cardinality of the dataset (17K / 30K / 36K).
size_t RealDatasetDefaultCount(RealDataset d);

/// Generates the dataset. options.count == 0 selects the paper
/// cardinality; other fields (domain, diameter, pdf, seed) apply as usual.
std::vector<uncertain::UncertainObject> GenerateRealLike(RealDataset which,
                                                         DatasetOptions options);

}  // namespace datagen
}  // namespace uvd

#endif  // UVD_DATAGEN_REAL_LIKE_H_
