#include "datagen/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace uvd {
namespace datagen {

std::vector<geom::Point> UniformQueryPoints(int count, const geom::Box& domain,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> points;
  points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    points.push_back(
        {rng.Uniform(domain.lo.x, domain.hi.x), rng.Uniform(domain.lo.y, domain.hi.y)});
  }
  return points;
}

std::vector<geom::Box> SquareQueryRegions(int count, const geom::Box& domain,
                                          double side, uint64_t seed) {
  UVD_CHECK_LE(side, std::min(domain.Width(), domain.Height()));
  Rng rng(seed);
  std::vector<geom::Box> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double x = rng.Uniform(domain.lo.x, domain.hi.x - side);
    const double y = rng.Uniform(domain.lo.y, domain.hi.y - side);
    regions.push_back(geom::Box({x, y}, {x + side, y + side}));
  }
  return regions;
}

}  // namespace datagen
}  // namespace uvd
