// Qualification-probability computation for PNN queries via numerical
// integration, following [14] (Cheng, Kalashnikov, Prabhakar, TKDE'04) as
// the paper's Sec. VI-A prescribes:
//
//   P_i = Integral f_i(r) * Prod_{j != i} (1 - F_j(r)) dr
//
// over r in [dist_min(O_i, q), d_minmax], where F_j is the distance CDF of
// candidate j and d_minmax = min_j dist_max(O_j, q) is the verification
// bound of [14]: objects with dist_min > d_minmax can never be the NN.
#ifndef UVD_UNCERTAIN_QUALIFICATION_H_
#define UVD_UNCERTAIN_QUALIFICATION_H_

#include <vector>

#include "common/stats.h"
#include "geom/point.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace uncertain {

/// One PNN answer object with its qualification probability.
struct PnnAnswer {
  int id = -1;
  double probability = 0.0;
};

/// Options for the numerical integration.
struct QualificationOptions {
  int integration_steps = 240;  ///< Grid resolution over [lo, d_minmax].
};

/// Applies the d_minmax verification filter of [14]: keeps exactly the
/// candidates with dist_min(O, q) <= min_j dist_max(O_j, q). The survivors
/// are the answer objects (all have non-zero probability).
std::vector<const UncertainObject*> FilterByDMinMax(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q);

/// Computes qualification probabilities for the given candidate set.
/// `candidates` must contain every object with dist_min <= d_minmax for the
/// probabilities to sum to 1 (the filter is applied internally as well).
/// Answers are sorted by descending probability; all probabilities > 0.
std::vector<PnnAnswer> ComputeQualificationProbabilities(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q,
    const QualificationOptions& options = {}, Stats* stats = nullptr);

}  // namespace uncertain
}  // namespace uvd

#endif  // UVD_UNCERTAIN_QUALIFICATION_H_
