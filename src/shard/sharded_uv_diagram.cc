#include "shard/sharded_uv_diagram.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/uv_index_io.h"
#include "rtree/rtree.h"
#include "storage/record.h"

namespace uvd {
namespace shard {

namespace {

/// Longest-axis recursive bisection; the lower/left half gets the extra
/// shard of an odd count. The cut coordinate is computed once and shared by
/// both halves, so adjacent boxes agree bitwise on their common edge.
void Bisect(const geom::Box& box, int k, std::vector<geom::Box>* out) {
  if (k <= 1) {
    out->push_back(box);
    return;
  }
  const int kl = (k + 1) / 2;
  const double frac = static_cast<double>(kl) / static_cast<double>(k);
  if (box.Width() >= box.Height()) {
    const double cut = box.lo.x + (box.hi.x - box.lo.x) * frac;
    Bisect(geom::Box(box.lo, {cut, box.hi.y}), kl, out);
    Bisect(geom::Box({cut, box.lo.y}, box.hi), k - kl, out);
  } else {
    const double cut = box.lo.y + (box.hi.y - box.lo.y) * frac;
    Bisect(geom::Box(box.lo, {box.hi.x, cut}), kl, out);
    Bisect(geom::Box({box.lo.x, cut}, box.hi), k - kl, out);
  }
}

// Per-shard paged-file manifest (see ShardedUVDiagram::Checkpoint): each
// shard file is self-describing — it knows its index in the fleet, the
// fleet size, the global domain and object count — so Open can bootstrap
// the whole deployment from shard 0 and cross-check every other file.
constexpr uint32_t kShardBootstrapMagic = 0x55565342;   // "UVSB"
constexpr uint32_t kShardBootstrapVersion = 1;
constexpr uint32_t kShardManifestMagic = 0x5556534D;    // "UVSM"
constexpr uint32_t kShardManifestVersion = 1;

/// Clamped half-open ownership along one axis: [lo, hi), closed at hi only
/// where hi is the domain's own max edge (no upper neighbor exists there).
bool OwnsAxis(double v, double lo, double hi, double domain_hi) {
  if (v < lo) return false;
  if (v < hi) return true;
  return v == hi && hi == domain_hi;
}

/// Per-object extent interval along the cut axis plus its load weight
/// (ObjectExtent::weight), already clamped to [axis_lo, axis_hi].
struct AxisSpan {
  double lo = 0.0;
  double hi = 0.0;
  double weight = 1.0;
};

/// One split of the extent-weighted median partitioner: the cut along
/// [axis_lo, axis_hi] minimizing the predicted worst per-shard share
/// max(w_lower/kl, w_upper/kr), where w_lower(c) sums the weights of
/// spans with lo <= c and w_upper(c) those with hi >= c — an extent
/// straddling c counts toward both sides, exactly the replica the cut
/// would create, and unit weights reduce the sums to object counts. Both
/// sums change only at span endpoints, so the candidates are every
/// distinct endpoint plus the midpoints between consecutive distinct
/// endpoints (weights shift WHERE the optimum lands, never where the step
/// points are); ties break toward the geometric proportional cut, then
/// toward the smaller coordinate (deterministic). Falls back to the
/// geometric cut when no candidate is strictly interior.
double MedianCut(const std::vector<AxisSpan>& spans, int kl, int kr,
                 double axis_lo, double axis_hi) {
  const double geometric =
      axis_lo + (axis_hi - axis_lo) *
                    (static_cast<double>(kl) / static_cast<double>(kl + kr));
  // (coordinate, weight) pairs sorted by coordinate, with weight prefix
  // sums so each candidate's w_lower / w_upper is two binary searches.
  std::vector<std::pair<double, double>> los, his;
  std::vector<double> endpoints;
  los.reserve(spans.size());
  his.reserve(spans.size());
  endpoints.reserve(spans.size() * 2);
  for (const AxisSpan& span : spans) {
    los.emplace_back(span.lo, span.weight);
    his.emplace_back(span.hi, span.weight);
    endpoints.push_back(span.lo);
    endpoints.push_back(span.hi);
  }
  // Sort by coordinate only: equal-coordinate weights land in one prefix
  // bucket regardless of their relative order, so the sums — and the cut
  // — stay deterministic for a fixed dataset.
  const auto by_coord = [](const std::pair<double, double>& a,
                           const std::pair<double, double>& b) {
    return a.first < b.first;
  };
  std::sort(los.begin(), los.end(), by_coord);
  std::sort(his.begin(), his.end(), by_coord);
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()), endpoints.end());

  // prefix[i] = total weight of the first i sorted spans.
  std::vector<double> lo_prefix(los.size() + 1, 0.0);
  std::vector<double> hi_prefix(his.size() + 1, 0.0);
  for (size_t i = 0; i < los.size(); ++i) {
    lo_prefix[i + 1] = lo_prefix[i] + los[i].second;
  }
  for (size_t i = 0; i < his.size(); ++i) {
    hi_prefix[i + 1] = hi_prefix[i] + his[i].second;
  }
  const double total_weight = hi_prefix[his.size()];

  std::vector<double> candidates;
  candidates.reserve(endpoints.size() * 2);
  for (size_t i = 0; i < endpoints.size(); ++i) {
    candidates.push_back(endpoints[i]);
    if (i + 1 < endpoints.size()) {
      candidates.push_back(0.5 * (endpoints[i] + endpoints[i + 1]));
    }
  }

  double best_cut = geometric;
  double best_share = std::numeric_limits<double>::infinity();
  double best_geo_dist = std::numeric_limits<double>::infinity();
  for (const double c : candidates) {
    if (!(c > axis_lo && c < axis_hi)) continue;  // sub-boxes must have area
    const size_t lo_idx = static_cast<size_t>(
        std::upper_bound(los.begin(), los.end(), std::make_pair(c, 0.0), by_coord) -
        los.begin());
    const size_t hi_idx = static_cast<size_t>(
        std::lower_bound(his.begin(), his.end(), std::make_pair(c, 0.0), by_coord) -
        his.begin());
    const double w_lower = lo_prefix[lo_idx];
    const double w_upper = total_weight - hi_prefix[hi_idx];
    const double share = std::max(w_lower / kl, w_upper / kr);
    const double geo_dist = std::abs(c - geometric);
    if (share < best_share ||
        (share == best_share &&
         (geo_dist < best_geo_dist || (geo_dist == best_geo_dist && c < best_cut)))) {
      best_cut = c;
      best_share = share;
      best_geo_dist = geo_dist;
    }
  }
  return best_cut;
}

/// Recursive kMedian partitioner. `ids` are the objects whose extent boxes
/// touch `box` (straddlers of an ancestor cut appear on both sides, so the
/// recursion sees the same replica-inflated loads the shards will carry).
/// The cut double is computed once and shared by both halves — adjacent
/// boxes agree bitwise on their common edge, as the half-open router
/// requires.
void MedianSplit(const geom::Box& box, int k,
                 const std::vector<ObjectExtent>& extents,
                 const std::vector<uint32_t>& ids, std::vector<geom::Box>* out) {
  if (k <= 1) {
    out->push_back(box);
    return;
  }
  const int kl = (k + 1) / 2;
  const int kr = k - kl;
  const bool cut_x = box.Width() >= box.Height();
  const double axis_lo = cut_x ? box.lo.x : box.lo.y;
  const double axis_hi = cut_x ? box.hi.x : box.hi.y;

  std::vector<AxisSpan> spans;
  spans.reserve(ids.size());
  for (const uint32_t id : ids) {
    const geom::Box& b = extents[id].bounds;
    spans.push_back({std::max(cut_x ? b.lo.x : b.lo.y, axis_lo),
                     std::min(cut_x ? b.hi.x : b.hi.y, axis_hi),
                     extents[id].weight});
  }
  const double cut = MedianCut(spans, kl, kr, axis_lo, axis_hi);

  std::vector<uint32_t> lower_ids, upper_ids;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (spans[i].lo <= cut) lower_ids.push_back(ids[i]);
    if (spans[i].hi >= cut) upper_ids.push_back(ids[i]);
  }
  if (cut_x) {
    MedianSplit(geom::Box(box.lo, {cut, box.hi.y}), kl, extents, lower_ids, out);
    MedianSplit(geom::Box({cut, box.lo.y}, box.hi), kr, extents, upper_ids, out);
  } else {
    MedianSplit(geom::Box(box.lo, {box.hi.x, cut}), kl, extents, lower_ids, out);
    MedianSplit(geom::Box({box.lo.x, cut}, box.hi), kr, extents, upper_ids, out);
  }
}

}  // namespace

std::vector<geom::Box> PartitionDomain(const geom::Box& domain, int num_shards,
                                       ShardPartitioning partitioning) {
  const int k = std::max(1, num_shards);
  // K = 1: no cuts to compute — the single shard is the closed global
  // domain box itself (computing a degenerate "cut" here would hand the
  // sole shard a half-open max edge and drop boundary probes).
  if (k == 1) return {domain};
  std::vector<geom::Box> boxes;
  boxes.reserve(static_cast<size_t>(k));
  if (partitioning != ShardPartitioning::kGrid) {
    // kBisection, and kMedian's data-blind degradation (no extents to
    // weight the cuts with — see the ObjectExtent overload).
    Bisect(domain, k, &boxes);
    return boxes;
  }
  // Grid: the divisor pair closest to square (strips for a prime count).
  int rows = 1;
  for (int d = 1; d * d <= k; ++d) {
    if (k % d == 0) rows = d;
  }
  const int cols = k / rows;
  // One cut array per axis: adjacent boxes share the exact double.
  std::vector<double> cuts_x(static_cast<size_t>(cols) + 1);
  std::vector<double> cuts_y(static_cast<size_t>(rows) + 1);
  for (int i = 0; i <= cols; ++i) {
    cuts_x[static_cast<size_t>(i)] =
        i == cols ? domain.hi.x
                  : domain.lo.x + domain.Width() * static_cast<double>(i) /
                                      static_cast<double>(cols);
  }
  for (int j = 0; j <= rows; ++j) {
    cuts_y[static_cast<size_t>(j)] =
        j == rows ? domain.hi.y
                  : domain.lo.y + domain.Height() * static_cast<double>(j) /
                                      static_cast<double>(rows);
  }
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      boxes.emplace_back(
          geom::Point{cuts_x[static_cast<size_t>(i)], cuts_y[static_cast<size_t>(j)]},
          geom::Point{cuts_x[static_cast<size_t>(i) + 1],
                      cuts_y[static_cast<size_t>(j) + 1]});
    }
  }
  return boxes;
}

std::vector<geom::Box> PartitionDomain(const geom::Box& domain, int num_shards,
                                       ShardPartitioning partitioning,
                                       const std::vector<ObjectExtent>& extents) {
  const int k = std::max(1, num_shards);
  if (k == 1) return {domain};  // same K=1 contract as the blind overload
  if (partitioning != ShardPartitioning::kMedian || extents.empty()) {
    return PartitionDomain(domain, k, partitioning);
  }
  std::vector<uint32_t> ids(extents.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<geom::Box> boxes;
  boxes.reserve(static_cast<size_t>(k));
  MedianSplit(domain, k, extents, ids, &boxes);
  return boxes;
}

namespace {

/// Derives the per-object partitioning extents (see ObjectExtent) from the
/// stage-1 candidate lists, in id order — deterministic for a fixed
/// dataset, so the median cuts are too.
std::vector<ObjectExtent> PredictObjectExtents(
    const std::vector<uncertain::UncertainObject>& objects,
    const std::vector<std::vector<geom::Circle>>& cell_regions,
    const geom::Box& domain) {
  std::vector<ObjectExtent> extents;
  extents.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    const geom::Point c = objects[i].center();
    const double r = objects[i].region().radius;
    // The cell's reach toward cr-object j ends where j's UV-edge crosses
    // the inter-center segment, at (dist + r_i + r_j) / 2 from c_i; the
    // nearest constrainer gives the tightest such bound. Applied
    // symmetrically it is a heuristic (cells reach farther away from
    // their neighbors), which is fine: extents only weight the median
    // cuts, registration stays with UvCellMayOverlap.
    double reach = std::numeric_limits<double>::infinity();
    for (const geom::Circle& cr : cell_regions[i]) {
      const double dist = geom::Distance(c, cr.center);
      if (dist <= 0.0) continue;  // self or coincident center
      reach = std::min(reach, 0.5 * (dist + r + cr.radius));
    }
    if (!std::isfinite(reach)) {
      reach = std::max(domain.Width(), domain.Height());  // unconstrained cell
    }
    reach = std::max(reach, r);
    geom::Box bounds({c.x - reach, c.y - reach}, {c.x + reach, c.y + reach});
    bounds.lo.x = std::max(bounds.lo.x, domain.lo.x);
    bounds.lo.y = std::max(bounds.lo.y, domain.lo.y);
    bounds.hi.x = std::min(bounds.hi.x, domain.hi.x);
    bounds.hi.y = std::min(bounds.hi.y, domain.hi.y);
    extents.push_back({c, bounds});
  }
  return extents;
}

}  // namespace

Result<ShardedUVDiagram> ShardedUVDiagram::Build(
    std::vector<uncertain::UncertainObject> objects, const geom::Box& domain,
    const ShardedUVDiagramOptions& options, Stats* stats) {
  if (objects.empty()) {
    return Status::InvalidArgument("cannot build a UV-diagram over zero objects");
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].id() != static_cast<int>(i)) {
      return Status::InvalidArgument("objects must have ids 0..n-1 in order");
    }
    if (!domain.Contains(objects[i].center())) {
      return Status::InvalidArgument("object center outside the domain");
    }
  }

  Timer total_timer;
  ShardedUVDiagram d;
  d.objects_ = std::move(objects);
  d.domain_ = domain;
  d.options_ = options;
  d.options_.num_shards = std::max(1, options.num_shards);
  if (stats != nullptr) {
    d.stats_ = stats;
  } else {
    d.owned_stats_ = std::make_unique<Stats>();
    d.stats_ = d.owned_stats_.get();
  }
  const size_t n = d.objects_.size();

  // Global stage 1 against the full population: a scratch store + R-tree
  // drive Algorithm 2's pruning exactly as an unsharded build would, so
  // every object's cell description is the unsharded one. Both are
  // discarded afterwards — serving state is per-shard only.
  std::vector<std::vector<int>> index_ids;
  {
    storage::PageManager scratch_pm(d.options_.diagram.page_size, d.stats_);
    uncertain::ObjectStore scratch_store(&scratch_pm);
    std::vector<uncertain::ObjectPtr> scratch_ptrs;
    UVD_RETURN_NOT_OK(scratch_store.BulkLoad(d.objects_, &scratch_ptrs));
    UVD_ASSIGN_OR_RETURN(
        rtree::RTree tree,
        rtree::RTree::BulkLoad(d.objects_, scratch_ptrs, &scratch_pm,
                               d.options_.diagram.rtree, d.stats_));
    core::BuildPipelineOptions pipeline;
    pipeline.method = d.options_.diagram.method;
    pipeline.cr = d.options_.diagram.cr;
    pipeline.build_threads = d.options_.diagram.build_threads;
    UVD_RETURN_NOT_OK(core::ComputeStage1Candidates(d.objects_, tree, domain, pipeline,
                                                    &index_ids, &d.build_stats_,
                                                    d.stats_));
  }
  std::vector<std::vector<geom::Circle>> cell_regions(n);
  for (size_t i = 0; i < n; ++i) {
    cell_regions[i].reserve(index_ids[i].size());
    for (int id : index_ids[i]) {
      cell_regions[i].push_back(d.objects_[static_cast<size_t>(id)].region());
    }
    index_ids[i].clear();
    index_ids[i].shrink_to_fit();
  }
  // Partitioning extents ride the same stage-1 output (no extra pass) and
  // are retained for RebalanceAdvisor re-cut proposals.
  d.extents_ = PredictObjectExtents(d.objects_, cell_regions, domain);

  // Stage 2, K ways: register + bulk-load + insert + finalize one shard.
  // Shards share only the read-only dataset and stage-1 output; storage,
  // index and Stats are private per shard, so the builds are independent.
  const std::vector<geom::Box> boxes = PartitionDomain(
      domain, d.options_.num_shards, d.options_.partitioning, d.extents_);
  d.shards_.resize(boxes.size());
  std::vector<Status> shard_status(boxes.size());
  std::vector<double> shard_seconds(boxes.size(), 0.0);

  const int build_threads = d.options_.diagram.build_threads > 0
                                ? d.options_.diagram.build_threads
                                : ThreadPool::DefaultThreads();
  const int workers = std::min<int>(build_threads, static_cast<int>(boxes.size()));
  // Threads left over once every shard build has a worker go to each
  // shard's own partitioned stage 2 (K=2 shards on 8 build threads: 2
  // shard builds x 4 insertion workers each).
  const int stage2_threads = std::max(1, build_threads / std::max(1, workers));

  const auto build_shard = [&](size_t s) {
    ScopedTimer timer(&shard_seconds[s]);
    Shard& sh = d.shards_[s];
    sh.box = boxes[s];
    sh.stats = std::make_unique<Stats>();
    if (!d.options_.diagram.storage_path.empty()) {
      storage::FilePageManagerOptions file_options;
      file_options.buffer_pool_pages = d.options_.diagram.buffer_pool_pages;
      file_options.buffer_pool_protected_fraction =
          d.options_.diagram.buffer_pool_protected_fraction;
      auto fpm = storage::FilePageManager::Create(
          ShardFilePath(d.options_.diagram.storage_path, s),
          d.options_.diagram.page_size, file_options, sh.stats.get());
      if (!fpm.ok()) {
        shard_status[s] = fpm.status();
        return;
      }
      sh.fpm = fpm.value().get();
      sh.pm = std::move(fpm).value();
    } else {
      sh.pm = std::make_unique<storage::PageManager>(d.options_.diagram.page_size,
                                                     sh.stats.get());
    }
    sh.store = std::make_unique<uncertain::ObjectStore>(sh.pm.get());

    // Border replication: every object whose cell may reach this sub-box,
    // in global id order (insertion order therefore matches the unsharded
    // build's for the objects this shard holds).
    for (size_t i = 0; i < n; ++i) {
      if (core::UvCellMayOverlap(d.objects_[i].region(), cell_regions[i], sh.box,
                                 sh.stats.get())) {
        sh.object_ids.push_back(static_cast<int>(i));
      }
    }
    std::vector<uncertain::UncertainObject> subset;
    subset.reserve(sh.object_ids.size());
    for (int id : sh.object_ids) subset.push_back(d.objects_[static_cast<size_t>(id)]);
    shard_status[s] = sh.store->BulkLoad(subset, &sh.ptrs);
    if (!shard_status[s].ok()) return;

    core::UVIndexOptions index_options = d.options_.diagram.index;
    index_options.accept_border_objects = true;  // replicas may center elsewhere
    sh.index = std::make_unique<core::UVIndex>(sh.box, sh.pm.get(), index_options,
                                               sh.stats.get());
    if (stage2_threads > 1 &&
        d.options_.diagram.stage2 != core::Stage2Mode::kInOrder) {
      // Partitioned stage 2 within the shard: the leftover threads (K <
      // build_threads leaves workers idle once every shard has one) fan
      // the shard's own quad-tree insertion out per subtree. Identical
      // bytes to the serial loop below — the canonical-stitch contract of
      // InsertObjectsPartitioned — so sharded answers stay bitwise-equal
      // to the unsharded build either way.
      std::vector<core::UVIndex::BulkInsertItem> items(sh.object_ids.size());
      for (size_t k = 0; k < sh.object_ids.size(); ++k) {
        const size_t gid = static_cast<size_t>(sh.object_ids[k]);
        items[k].region = d.objects_[gid].region();
        items[k].id = sh.object_ids[k];
        items[k].ptr = sh.ptrs[k];
        items[k].cr_regions = cell_regions[gid];  // copy: shared across shards
      }
      core::UVIndex::PartitionedInsertOptions popts;
      popts.threads = stage2_threads;
      popts.max_depth = d.options_.diagram.stage2_max_depth;
      popts.target_subtrees = d.options_.diagram.stage2_target_subtrees;
      ThreadPool stage2_pool(stage2_threads);
      shard_status[s] =
          sh.index->InsertObjectsPartitioned(std::move(items), &stage2_pool, popts);
      if (!shard_status[s].ok()) return;
      shard_status[s] = sh.index->FinalizeWith(&stage2_pool, stage2_threads);
      return;
    }
    for (size_t k = 0; k < sh.object_ids.size(); ++k) {
      const size_t gid = static_cast<size_t>(sh.object_ids[k]);
      shard_status[s] = sh.index->InsertObject(d.objects_[gid].region(),
                                               sh.object_ids[k], sh.ptrs[k],
                                               cell_regions[gid]);
      if (!shard_status[s].ok()) return;
    }
    shard_status[s] = sh.index->Finalize();
  };

  if (workers <= 1) {
    for (size_t s = 0; s < boxes.size(); ++s) build_shard(s);
  } else {
    // Shared state across workers is exactly one atomic claim cursor; each
    // shard's storage/index is private to whichever worker claims it, so
    // there is no guarded state here for the thread-safety analysis — the
    // pool's own lock discipline is annotated at its source
    // (common/thread_pool.h; docs/STATIC_ANALYSIS.md).
    ThreadPool pool(workers);
    std::atomic<size_t> next{0};
    for (int w = 0; w < workers; ++w) {
      pool.Submit([&] {
        for (;;) {
          const size_t s = next.fetch_add(1, std::memory_order_relaxed);
          if (s >= boxes.size()) return;
          build_shard(s);
        }
      });
    }
    pool.Wait();
  }
  for (const Status& status : shard_status) UVD_RETURN_NOT_OK(status);

  for (double seconds : shard_seconds) d.build_stats_.indexing_seconds += seconds;
  d.build_stats_.total_seconds = total_timer.ElapsedSeconds();
  return d;
}

std::string ShardedUVDiagram::ShardFilePath(const std::string& path_prefix,
                                            size_t s) {
  return path_prefix + ".shard" + std::to_string(s);
}

Status ShardedUVDiagram::Checkpoint() {
  if (!persistent()) {
    return Status::InvalidArgument(
        "Checkpoint requires a sharded diagram built with "
        "options.diagram.storage_path");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = shards_[s];
    UVD_ASSIGN_OR_RETURN(core::SavedIndexHandle index_handle,
                         core::SaveUvIndex(*sh.index, sh.pm.get()));

    std::vector<uint8_t> manifest;
    storage::Encoder enc(&manifest);
    enc.PutU32(kShardManifestMagic);
    enc.PutU32(kShardManifestVersion);
    enc.PutU32(static_cast<uint32_t>(s));
    enc.PutU32(static_cast<uint32_t>(shards_.size()));
    enc.PutU32(static_cast<uint32_t>(objects_.size()));
    enc.PutDouble(domain_.lo.x);
    enc.PutDouble(domain_.lo.y);
    enc.PutDouble(domain_.hi.x);
    enc.PutDouble(domain_.hi.y);
    enc.PutDouble(sh.box.lo.x);
    enc.PutDouble(sh.box.lo.y);
    enc.PutDouble(sh.box.hi.x);
    enc.PutDouble(sh.box.hi.y);
    enc.PutU32(static_cast<uint32_t>(sh.object_ids.size()));
    for (int id : sh.object_ids) enc.PutI32(id);
    sh.store->EncodeState(&enc);
    enc.PutU32(index_handle.first_page);
    enc.PutU32(index_handle.page_count);
    UVD_ASSIGN_OR_RETURN(core::SavedIndexHandle manifest_handle,
                         core::WriteStreamToPages(manifest, sh.pm.get()));

    std::vector<uint8_t> bootstrap;
    storage::Encoder boot(&bootstrap);
    boot.PutU32(kShardBootstrapMagic);
    boot.PutU32(kShardBootstrapVersion);
    boot.PutU32(manifest_handle.first_page);
    boot.PutU32(manifest_handle.page_count);
    boot.PutU32(static_cast<uint32_t>(manifest.size()));
    UVD_RETURN_NOT_OK(sh.fpm->SetBootstrap(bootstrap));
    UVD_RETURN_NOT_OK(sh.fpm->Checkpoint());
  }
  return Status::OK();
}

Status ShardedUVDiagram::CloseStorage() {
  if (!persistent()) return Status::OK();
  UVD_RETURN_NOT_OK(Checkpoint());
  for (Shard& sh : shards_) {
    UVD_RETURN_NOT_OK(sh.fpm->Close());
  }
  return Status::OK();
}

Result<ShardedUVDiagram> ShardedUVDiagram::Open(
    const std::string& path_prefix, const ShardedUVDiagramOptions& options,
    Stats* stats) {
  ShardedUVDiagram d;
  d.options_ = options;
  d.options_.diagram.storage_path = path_prefix;
  if (stats != nullptr) {
    d.stats_ = stats;
  } else {
    d.owned_stats_ = std::make_unique<Stats>();
    d.stats_ = d.owned_stats_.get();
  }

  uint32_t num_shards = 0;
  uint32_t total_objects = 0;
  // objects_[gid] filled from whichever shard store holds gid first;
  // border replicas decode to identical records.
  std::vector<bool> have_object;
  std::vector<uncertain::UncertainObject> merged;

  for (size_t s = 0; num_shards == 0 || s < num_shards; ++s) {
    Shard sh;
    sh.stats = std::make_unique<Stats>();
    storage::FilePageManagerOptions file_options;
    file_options.buffer_pool_pages = options.diagram.buffer_pool_pages;
    file_options.buffer_pool_protected_fraction =
        options.diagram.buffer_pool_protected_fraction;
    auto fpm = storage::FilePageManager::Open(ShardFilePath(path_prefix, s),
                                              file_options, sh.stats.get());
    if (!fpm.ok()) return fpm.status();
    sh.fpm = fpm.value().get();
    sh.pm = std::move(fpm).value();

    const std::vector<uint8_t>& bootstrap = sh.fpm->bootstrap();
    if (bootstrap.size() < 20) {
      return Status::Corruption("shard file carries no shard bootstrap");
    }
    storage::Decoder boot(bootstrap);
    if (boot.GetU32() != kShardBootstrapMagic) {
      return Status::InvalidArgument("paged file is not a UV-diagram shard");
    }
    if (boot.GetU32() > kShardBootstrapVersion) {
      return Status::NotImplemented("shard bootstrap from a future version");
    }
    core::SavedIndexHandle manifest_handle;
    manifest_handle.first_page = boot.GetU32();
    manifest_handle.page_count = boot.GetU32();
    const uint32_t manifest_bytes = boot.GetU32();

    std::vector<uint8_t> manifest;
    UVD_RETURN_NOT_OK(
        core::ReadPagesToStream(*sh.pm, manifest_handle, &manifest));
    if (manifest.size() < manifest_bytes || manifest_bytes < 8) {
      return Status::Corruption("shard manifest truncated");
    }
    manifest.resize(manifest_bytes);
    storage::Decoder dec(manifest);
    if (dec.GetU32() != kShardManifestMagic) {
      return Status::Corruption("shard manifest has a bad magic");
    }
    if (dec.GetU32() > kShardManifestVersion) {
      return Status::NotImplemented("shard manifest from a future version");
    }
    const uint32_t shard_index = dec.GetU32();
    const uint32_t fleet_size = dec.GetU32();
    const uint32_t object_count = dec.GetU32();
    if (shard_index != s || fleet_size == 0) {
      return Status::Corruption("shard manifest names the wrong shard index");
    }
    geom::Box file_domain;
    file_domain.lo.x = dec.GetDouble();
    file_domain.lo.y = dec.GetDouble();
    file_domain.hi.x = dec.GetDouble();
    file_domain.hi.y = dec.GetDouble();
    if (s == 0) {
      num_shards = fleet_size;
      total_objects = object_count;
      d.domain_ = file_domain;
      d.shards_.reserve(num_shards);
      have_object.assign(total_objects, false);
      merged.reserve(total_objects);
    } else if (fleet_size != num_shards || object_count != total_objects) {
      return Status::Corruption(
          "shard files disagree about the fleet size (mixed checkpoints?)");
    }
    sh.box.lo.x = dec.GetDouble();
    sh.box.lo.y = dec.GetDouble();
    sh.box.hi.x = dec.GetDouble();
    sh.box.hi.y = dec.GetDouble();
    const uint32_t registered = dec.GetU32();
    sh.object_ids.reserve(registered);
    for (uint32_t i = 0; i < registered; ++i) {
      sh.object_ids.push_back(dec.GetI32());
    }

    sh.store = std::make_unique<uncertain::ObjectStore>(sh.pm.get());
    UVD_RETURN_NOT_OK(sh.store->RestoreState(&dec));
    std::vector<uncertain::UncertainObject> subset;
    UVD_RETURN_NOT_OK(sh.store->LoadAll(&subset, &sh.ptrs));
    if (subset.size() != sh.object_ids.size()) {
      return Status::Corruption(
          "shard store record count disagrees with its registered ids");
    }

    core::SavedIndexHandle index_handle;
    index_handle.first_page = dec.GetU32();
    index_handle.page_count = dec.GetU32();
    UVD_ASSIGN_OR_RETURN(
        core::UVIndex index,
        core::LoadUvIndex(sh.pm.get(), index_handle, sh.stats.get()));
    d.shards_.push_back(Shard{});
    Shard& placed = d.shards_.back();
    placed = std::move(sh);
    placed.index = std::make_unique<core::UVIndex>(std::move(index));

    for (size_t k = 0; k < subset.size(); ++k) {
      const int gid = placed.object_ids[k];
      if (gid < 0 || static_cast<uint32_t>(gid) >= total_objects) {
        return Status::Corruption("shard manifest holds an out-of-range id");
      }
      if (!have_object[static_cast<size_t>(gid)]) {
        have_object[static_cast<size_t>(gid)] = true;
        merged.push_back(std::move(subset[k]));
      }
    }
  }

  // Every object is registered with at least the shard owning its center,
  // so the merge must cover 0..n-1; sort back into id order.
  std::sort(merged.begin(), merged.end(),
            [](const uncertain::UncertainObject& a,
               const uncertain::UncertainObject& b) { return a.id() < b.id(); });
  if (merged.size() != total_objects) {
    return Status::Corruption("shard stores do not cover every object id");
  }
  d.objects_ = std::move(merged);
  d.options_.num_shards = static_cast<int>(num_shards);
  d.options_.diagram.page_size = d.shards_.front().pm->page_size();
  return d;
}

int ShardedUVDiagram::ShardIndexForPoint(const geom::Point& p) const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const geom::Box& box = shards_[s].box;
    if (OwnsAxis(p.x, box.lo.x, box.hi.x, domain_.hi.x) &&
        OwnsAxis(p.y, box.lo.y, box.hi.y, domain_.hi.y)) {
      return static_cast<int>(s);
    }
  }
  // Outside the closed domain: clamp to the nearest shard, whose index
  // rejects the probe with the InvalidArgument an unsharded query yields.
  size_t best = 0;
  double best_dist = shards_[0].box.MinDist(p);
  for (size_t s = 1; s < shards_.size(); ++s) {
    const double dist = shards_[s].box.MinDist(p);
    if (dist < best_dist) {
      best = s;
      best_dist = dist;
    }
  }
  return static_cast<int>(best);
}

std::vector<int> ShardedUVDiagram::ShardsForRange(const geom::Box& range) const {
  std::vector<int> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].box.Intersects(range)) out.push_back(static_cast<int>(s));
  }
  return out;
}

std::vector<int> ShardedUVDiagram::ShardsForObject(int object_id) const {
  std::vector<int> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<int>& ids = shards_[s].object_ids;
    if (std::binary_search(ids.begin(), ids.end(), object_id)) {
      out.push_back(static_cast<int>(s));
    }
  }
  return out;
}

query::DiagramView ShardedUVDiagram::ViewOfShard(size_t s) const {
  const Shard& sh = shards_[s];
  query::DiagramView view;
  view.index = sh.index.get();
  view.store = sh.store.get();
  view.qualification = options_.diagram.qualification;
  view.stats = sh.stats.get();
  return view;
}

Stats ShardedUVDiagram::AggregateStats() const {
  Stats out(*stats_);
  for (const Shard& sh : shards_) out.MergeFrom(*sh.stats);
  return out;
}

std::vector<ShardedUVDiagram::ShardBalance> ShardedUVDiagram::BalanceReport() const {
  // Registration multiplicity per object: an object registered with more
  // than one shard is a border replica in every shard that holds it.
  std::vector<uint8_t> multiplicity(objects_.size(), 0);
  for (const Shard& sh : shards_) {
    for (int id : sh.object_ids) {
      uint8_t& m = multiplicity[static_cast<size_t>(id)];
      if (m < 0xFF) ++m;
    }
  }
  std::vector<ShardBalance> report;
  report.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = shards_[s];
    ShardBalance b;
    b.shard = static_cast<int>(s);
    b.objects = sh.object_ids.size();
    for (int id : sh.object_ids) {
      if (multiplicity[static_cast<size_t>(id)] > 1) ++b.replicas;
    }
    b.leaves = sh.index->num_leaves();
    b.leaf_pages = sh.index->total_leaf_pages();
    b.height = sh.index->height();
    b.bytes_on_disk = sh.pm->bytes_on_disk();
    report.push_back(b);
  }
  return report;
}

std::string ShardedUVDiagram::BalanceReportString() const {
  const std::vector<ShardBalance> report = BalanceReport();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%6s %10s %10s %8s %8s %7s %12s\n", "shard",
                "objects", "replicas", "leaves", "pages", "height", "disk KiB");
  out += line;
  size_t min_objects = SIZE_MAX, max_objects = 0, total_objects = 0;
  for (const ShardBalance& b : report) {
    std::snprintf(line, sizeof(line), "%6d %10zu %10zu %8zu %8zu %7d %12.1f\n",
                  b.shard, b.objects, b.replicas, b.leaves, b.leaf_pages, b.height,
                  static_cast<double>(b.bytes_on_disk) / 1024.0);
    out += line;
    min_objects = std::min(min_objects, b.objects);
    max_objects = std::max(max_objects, b.objects);
    total_objects += b.objects;
  }
  const double mean =
      report.empty() ? 0.0
                     : static_cast<double>(total_objects) /
                           static_cast<double>(report.size());
  std::snprintf(line, sizeof(line),
                "objects min/max/mean = %zu / %zu / %.1f, imbalance (max/mean) = "
                "%.2f\n",
                min_objects == SIZE_MAX ? 0 : min_objects, max_objects, mean,
                mean > 0.0 ? static_cast<double>(max_objects) / mean : 0.0);
  out += line;
  return out;
}

}  // namespace shard
}  // namespace uvd
