// Shared infrastructure for the per-figure benchmark binaries.
//
// Every bench prints the series of the paper figure/table it reproduces.
// Dataset sizes scale with the environment variable UVD_BENCH_SCALE
// (default 0.2): the paper's |O| = 10K..80K sweep runs as 2K..16K by
// default so the whole bench suite finishes in minutes; set
// UVD_BENCH_SCALE=1 for paper-scale runs.
#ifndef UVD_BENCH_BENCH_COMMON_H_
#define UVD_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "datagen/workload.h"

namespace uvd {
namespace bench {

/// Scale factor from UVD_BENCH_SCALE (clamped to [0.01, 10]).
double Scale();

/// Simulated disk latency charged per page read when reporting query
/// times, from UVD_SIM_IO_MS (default 5 ms — a 2010-era SATA seek, the
/// paper's hardware). The storage layer itself is RAM-backed; wall-clock
/// CPU time plus this charge reproduces the paper's disk-bound T_q. Set
/// UVD_SIM_IO_MS=0 for pure CPU numbers.
double SimulatedIoMs();

/// Paper object count scaled down/up; at least 500.
size_t ScaledCount(size_t paper_count);

/// The |O| sweep of Fig. 6-7 (paper: 10K..80K), scaled.
std::vector<size_t> SizeSweep();

/// Number of PNN query points (paper Sec. VI-A: 50).
constexpr int kNumQueries = 50;

/// Flags shared by query benches so any of them can opt into the batched
/// engine without per-bench flag parsing:
///   --query_threads=N   QueryEngine worker count (<= 0: hardware)
///   --batch_size=N      queries per batch
///   --sim_io_us=N       blocking per-page-read latency for throughput
///                       benches (PageManager::SetSimulatedReadLatencyUs)
///   --smoke             tiny dataset + reduced sweep (CI smoke runs)
/// Unrecognized arguments are ignored.
struct QueryBenchFlags {
  int query_threads = 0;
  int batch_size = 2000;
  int sim_io_us = 500;
  bool smoke = false;
};

/// Parses the flags above from argv.
QueryBenchFlags ParseQueryBenchFlags(int argc, char** argv);

/// Prints the standard bench banner (title + scale + paper reference).
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// Parses a `--json <path>` / `--json=<path>` argument so benches can
/// persist machine-readable history next to the human tables. Returns the
/// empty string when the flag is absent.
std::string ParseJsonPath(int argc, char** argv);

/// Accumulates flat records and writes them as a JSON document:
///   {"bench": "...", "scale": S, "records": [{...}, ...]}
/// Values are numbers or strings; no nesting — bench history files are
/// meant to be diffed and plotted, not parsed by the library.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  /// Starts a new record; subsequent Add calls fill it.
  void BeginRecord();
  void Add(const std::string& key, double value);
  void Add(const std::string& key, int64_t value);
  void Add(const std::string& key, const std::string& value);
  /// Embeds an already-rendered JSON value verbatim (the one sanctioned
  /// nesting: a MetricsRegistry snapshot riding along with a record).
  void AddRaw(const std::string& key, const std::string& json_value);

  /// Writes the document to `path`; a no-op when `path` is empty.
  /// Returns false (after printing a warning) if the file can't be written.
  bool WriteTo(const std::string& path) const;

 private:
  std::string bench_name_;
  // Each record is a list of (key, pre-rendered JSON value) pairs.
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

/// Builds a UVDiagram over the given objects with external stats, aborting
/// on error (bench context).
core::UVDiagram BuildDiagram(std::vector<uncertain::UncertainObject> objects,
                             const geom::Box& domain, core::UVDiagramOptions options,
                             Stats* stats);

/// Result of running the PNN workload through both index paths. Reported
/// times include the simulated disk charge (SimulatedIoMs per page read);
/// the pure CPU component is available separately.
struct PnnWorkloadResult {
  double uv_ms = 0;            ///< mean ms/query via UV-index (CPU + sim I/O)
  double rtree_ms = 0;         ///< mean ms/query via R-tree baseline
  double uv_cpu_ms = 0;        ///< CPU-only portion
  double rtree_cpu_ms = 0;
  double uv_leaf_io = 0;       ///< mean index leaf pages read/query
  double rtree_leaf_io = 0;
  double uv_object_io = 0;     ///< mean object-pdf pages read/query
  double rtree_object_io = 0;
  double avg_answers = 0;      ///< mean answer objects/query
  rtree::PnnBreakdown uv_breakdown;     // totals over the workload
  rtree::PnnBreakdown rtree_breakdown;
};

/// Runs the fixed uniform query workload through both paths and gathers
/// timing + I/O (stats are reset around each phase).
PnnWorkloadResult MeasurePnn(const core::UVDiagram& diagram,
                             const std::vector<geom::Point>& queries);

}  // namespace bench
}  // namespace uvd

#endif  // UVD_BENCH_BENCH_COMMON_H_
