// Status: exception-free error propagation, in the spirit of
// arrow::Status / rocksdb::Status. Library code returns Status (or
// Result<T>, see result.h) instead of throwing; benchmarks and examples
// may abort on error via UVD_CHECK_OK.
#ifndef UVD_COMMON_STATUS_H_
#define UVD_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace uvd {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kIOError,
  /// Stored bytes fail validation (checksum mismatch, torn page, truncated
  /// file): the data reached the device but cannot be trusted. Distinct
  /// from kIOError (the device itself failed) so recovery paths can tell
  /// "retry elsewhere" from "this replica is damaged".
  kCorruption,
};

/// \brief Lightweight status object carrying an error code and message.
///
/// An OK status carries no allocation. Statuses are cheap to move and
/// are annotated nodiscard so silently dropped errors fail the build.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Returns the canonical name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

}  // namespace uvd

/// Propagates a non-OK status to the caller.
#define UVD_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::uvd::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Aborts the process if the status is not OK (tools / examples only).
#define UVD_CHECK_OK(expr)                                               \
  do {                                                                   \
    ::uvd::Status _st = (expr);                                          \
    if (!_st.ok()) {                                                     \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,      \
                   _st.ToString().c_str());                              \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // UVD_COMMON_STATUS_H_
