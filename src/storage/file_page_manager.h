// File-backed PageManager: the same page interface every index structure
// builds against, persisted in a checksummed PagedFile with an optional
// buffer pool in front. Point UVDiagramOptions::storage_path at a file
// and the whole stack — ObjectStore records, R-tree leaves, UV-index
// nodes — lands here instead of RAM; reopen the file later and serve the
// index cold (core/uv_diagram.h Open, docs/STORAGE.md).
#ifndef UVD_STORAGE_FILE_PAGE_MANAGER_H_
#define UVD_STORAGE_FILE_PAGE_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "obs/metrics_registry.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"
#include "storage/paged_file.h"

namespace uvd {
namespace storage {

struct FilePageManagerOptions {
  /// Buffer pool capacity in pages. 0 disables the pool entirely (every
  /// read goes to the file); nonzero bounds the resident set.
  size_t buffer_pool_pages = 0;
  /// Protected-segment fraction of the pool (see BufferPoolOptions).
  double buffer_pool_protected_fraction = 0.8;
};

/// \brief PageManager over a PagedFile, with an optional buffer pool.
///
/// Latency seam: unlike the in-RAM base class, Read here never sleeps —
/// it records MEASURED wall time (pool hit or file read, checksum
/// included) into the shared page-read histogram. The global
/// SetSimulatedReadLatencyUs knob is ignored by design; a file-backed
/// manager has a real device to time.
///
/// Accounting: kPageReads is billed only when the FILE is read (a pool
/// miss, or every read with the pool disabled) — pool hits bill
/// kBufferPoolHits instead, so "page reads" keeps meaning physical I/O.
/// Writes always reach the file (write-through) and bill kPageWrites.
///
/// Error model: Allocate/AllocateRun cannot return Status (interface
/// signature), so an allocation failure — a full disk, an injected crash —
/// parks a sticky error: the call returns kInvalidPageId and EVERY later
/// operation (Read/Write/Checkpoint/Close) fails with that status. Builds
/// running over a crashed file therefore surface a typed error through
/// their normal Status plumbing instead of writing garbage.
///
/// Thread safety: same contract as the base class (concurrent reads safe;
/// concurrent writes safe iff to distinct pages; Allocate/Checkpoint/Close
/// must not overlap anything). The pool is internally locked, file writes
/// go to disjoint offsets, and the sticky error has its own mutex.
class FilePageManager : public PageManager {
 public:
  /// Creates a fresh store at `path` (truncating any existing file).
  static Result<std::unique_ptr<FilePageManager>> Create(
      const std::string& path, size_t page_size,
      const FilePageManagerOptions& options = {}, Stats* stats = nullptr);

  /// Opens an existing store; page size comes from its metapage. Failure
  /// codes are PagedFile::Open's (distinct per defect class).
  static Result<std::unique_ptr<FilePageManager>> Open(
      const std::string& path, const FilePageManagerOptions& options = {},
      Stats* stats = nullptr);

  size_t num_pages() const override { return file_->page_count(); }
  /// Real file footprint: metapage block plus every page frame.
  uint64_t bytes_on_disk() const override {
    return kMetaBlockSize +
           static_cast<uint64_t>(file_->page_count()) *
               (kPageFrameHeaderSize + page_size());
  }

  PageId Allocate() override;
  PageId AllocateRun(size_t count) override;
  Status Read(PageId id, std::vector<uint8_t>* out) const override;
  Status Write(PageId id, const std::vector<uint8_t>& data) override;

  /// Durability point — see PagedFile::Checkpoint. Callers stash their
  /// root locator via SetBootstrap first.
  Status Checkpoint();
  /// Checkpoint + close the file. The manager is unusable afterwards.
  Status Close();

  Status SetBootstrap(const std::vector<uint8_t>& blob) {
    return file_->SetBootstrap(blob);
  }
  const std::vector<uint8_t>& bootstrap() const { return file_->bootstrap(); }

  /// First I/O failure parked by an Allocate that could not report it
  /// (OK if none). Sticky: cleared only by destroying the manager.
  Status io_status() const;

  /// The underlying file — crash harnesses install their WriteHook here.
  PagedFile* file() { return file_.get(); }
  /// The buffer pool, or nullptr when disabled.
  BufferPool* pool() { return pool_.get(); }
  const BufferPool* pool() const { return pool_.get(); }

  /// Registers this manager's observable state under `prefix`: the
  /// page-read latency histogram, pool occupancy gauge and hit/miss/
  /// eviction counters (pool ones only when a pool exists).
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

 private:
  FilePageManager(std::unique_ptr<PagedFile> file,
                  const FilePageManagerOptions& options, Stats* stats);

  /// Uncached read straight from the file, with kPageReads billing.
  Status FileRead(PageId id, std::vector<uint8_t>* out) const;
  void ParkError(const Status& st);

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BufferPool> pool_;  // null when disabled

  mutable Mutex io_mu_;
  Status io_status_ UVD_GUARDED_BY(io_mu_);
};

}  // namespace storage
}  // namespace uvd

#endif  // UVD_STORAGE_FILE_PAGE_MANAGER_H_
