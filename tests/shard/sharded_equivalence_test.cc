// Sharded-vs-unsharded equivalence: for random heterogeneous batches over
// uniform and trajectory workloads — including probes sampled exactly on
// shard cut lines and the domain boundary — the ShardRouter's PNN and
// answer-id results must be BITWISE-identical (ids and probability bits,
// compared by FNV hash and element-wise) to a single-index baseline, for
// every shard count, partitioning scheme, and thread configuration.
// UV-partition and cell-summary answers are index-structure reports, so
// cross-deployment equality is semantic (exact range coverage, disjoint
// per-shard leaf merges) rather than bitwise; within one deployment they
// too must be bitwise-deterministic across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/generators.h"
#include "datagen/workload.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"

namespace uvd {
namespace shard {
namespace {

datagen::DatasetOptions DataOptions(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  return opts;
}

core::UVDiagram BuildBaseline(size_t n, uint64_t seed) {
  const auto opts = DataOptions(n, seed);
  return core::UVDiagram::Build(datagen::GenerateUniform(opts),
                                datagen::DomainFor(opts))
      .ValueOrDie();
}

ShardedUVDiagram BuildSharded(size_t n, uint64_t seed, int num_shards,
                              ShardPartitioning partitioning) {
  const auto opts = DataOptions(n, seed);
  ShardedUVDiagramOptions options;
  options.num_shards = num_shards;
  options.partitioning = partitioning;
  return ShardedUVDiagram::Build(datagen::GenerateUniform(opts),
                                 datagen::DomainFor(opts), options)
      .ValueOrDie();
}

/// Point probes that stress border correctness: every interior cut
/// coordinate crossed with random offsets along the other axis, all shard
/// box corners, and the domain's own corners and max edges.
std::vector<geom::Point> CutLineProbes(const ShardedUVDiagram& diagram,
                                       uint64_t seed) {
  const geom::Box& domain = diagram.domain();
  Rng rng(seed);
  std::vector<geom::Point> probes;
  for (size_t s = 0; s < diagram.num_shards(); ++s) {
    const geom::Box& box = diagram.shard(s).box;
    for (const geom::Point& corner : box.Corners()) probes.push_back(corner);
    for (int k = 0; k < 4; ++k) {
      const double y = rng.Uniform(domain.lo.y, domain.hi.y);
      const double x = rng.Uniform(domain.lo.x, domain.hi.x);
      probes.push_back({box.lo.x, y});  // exactly on the vertical cut
      probes.push_back({box.hi.x, y});
      probes.push_back({x, box.lo.y});  // exactly on the horizontal cut
      probes.push_back({x, box.hi.y});
    }
  }
  probes.push_back({domain.hi.x, domain.hi.y});
  probes.push_back({domain.lo.x, domain.lo.y});
  return probes;
}

void ExpectPointAnswersIdentical(const std::vector<query::QueryResult>& sharded,
                                 const std::vector<query::QueryResult>& baseline) {
  ASSERT_EQ(sharded.size(), baseline.size());
  for (size_t i = 0; i < sharded.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ASSERT_EQ(sharded[i].status.ok(), baseline[i].status.ok());
    ASSERT_EQ(sharded[i].pnn.size(), baseline[i].pnn.size());
    for (size_t k = 0; k < sharded[i].pnn.size(); ++k) {
      EXPECT_EQ(sharded[i].pnn[k].id, baseline[i].pnn[k].id);
      EXPECT_EQ(sharded[i].pnn[k].probability, baseline[i].pnn[k].probability);
    }
    EXPECT_EQ(sharded[i].answer_ids, baseline[i].answer_ids);
  }
  EXPECT_EQ(query::DigestPointAnswers(sharded), query::DigestPointAnswers(baseline));
}

query::QueryBatch PointBatch(const std::vector<geom::Point>& points) {
  query::QueryBatch batch;
  batch.reserve(points.size() * 2);
  for (const auto& p : points) {
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return batch;
}

TEST(ShardedEquivalenceTest, PartitionDomainTilesExactly) {
  const geom::Box domain({0, 0}, {10000, 10000});
  for (const auto partitioning :
       {ShardPartitioning::kGrid, ShardPartitioning::kBisection}) {
    for (int k : {1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16}) {
      const auto boxes = PartitionDomain(domain, k, partitioning);
      ASSERT_EQ(boxes.size(), static_cast<size_t>(k));
      double area = 0;
      for (const auto& b : boxes) {
        EXPECT_TRUE(domain.ContainsBox(b));
        EXPECT_GT(b.Area(), 0);
        area += b.Area();
      }
      EXPECT_NEAR(area, domain.Area(), 1e-6 * domain.Area());
    }
  }
}

TEST(ShardedEquivalenceTest, EveryDomainPointOwnedByExactlyOneShard) {
  const auto diagram = BuildSharded(600, 3, 9, ShardPartitioning::kGrid);
  Rng rng(17);
  std::vector<geom::Point> probes = CutLineProbes(diagram, 19);
  for (int i = 0; i < 200; ++i) {
    probes.push_back({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
  }
  for (const auto& p : probes) {
    const int owner = diagram.ShardIndexForPoint(p);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, static_cast<int>(diagram.num_shards()));
    EXPECT_TRUE(diagram.shard(static_cast<size_t>(owner)).box.Contains(p))
        << "(" << p.x << ", " << p.y << ")";
    // Exclusive: no other shard owns it under the half-open convention;
    // interior points are claimed by exactly one OwnsPoint.
    int half_open_owners = 0;
    for (size_t s = 0; s < diagram.num_shards(); ++s) {
      half_open_owners += diagram.shard(s).index->OwnsPoint(p) ? 1 : 0;
    }
    EXPECT_LE(half_open_owners, 1);
    if (diagram.domain().ContainsHalfOpen(p)) {
      EXPECT_EQ(half_open_owners, 1);
    }
  }
}

TEST(ShardedEquivalenceTest, BorderObjectsReplicatedToEveryTouchedShard) {
  const auto diagram = BuildSharded(700, 5, 4, ShardPartitioning::kGrid);
  size_t replicated = 0;
  for (const auto& o : diagram.objects()) {
    const auto shards = diagram.ShardsForObject(o.id());
    ASSERT_FALSE(shards.empty()) << "object " << o.id() << " registered nowhere";
    // The uncertainty region is contained in the UV-cell, so any shard box
    // the circle reaches must have registered the object.
    for (size_t s = 0; s < diagram.num_shards(); ++s) {
      if (diagram.shard(s).box.MinDist(o.center()) <= o.radius()) {
        EXPECT_NE(std::find(shards.begin(), shards.end(), static_cast<int>(s)),
                  shards.end())
            << "object " << o.id() << " missing from touching shard " << s;
      }
    }
    if (shards.size() > 1) ++replicated;
  }
  // Cut lines cross real data: replication must actually occur.
  EXPECT_GT(replicated, 0u);
}

TEST(ShardedEquivalenceTest, PointAnswersBitwiseIdenticalIncludingCutLines) {
  const size_t n = 700;
  const uint64_t seed = 11;
  const core::UVDiagram baseline = BuildBaseline(n, seed);
  query::QueryEngine baseline_engine(baseline, [] {
    query::QueryEngineOptions o;
    o.threads = 1;
    return o;
  }());

  for (const auto partitioning :
       {ShardPartitioning::kGrid, ShardPartitioning::kBisection}) {
    for (int k : {1, 4, 5, 9}) {
      const auto sharded = BuildSharded(n, seed, k, partitioning);
      ShardRouter router(sharded);

      std::vector<geom::Point> points = CutLineProbes(sharded, 23);
      Rng rng(29);
      for (int i = 0; i < 60; ++i) {
        points.push_back({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
      }
      points.push_back({-50, 200});  // outside: InvalidArgument both ways

      const query::QueryBatch batch = PointBatch(points);
      SCOPED_TRACE("partitioning=" +
                   std::to_string(static_cast<int>(partitioning)) +
                   " shards=" + std::to_string(k));
      ExpectPointAnswersIdentical(router.ExecuteBatch(batch),
                                  baseline_engine.ExecuteBatch(batch));
    }
  }
}

TEST(ShardedEquivalenceTest, TrajectoryWorkloadHashMatchesBaseline) {
  const size_t n = 800;
  const uint64_t seed = 13;
  const core::UVDiagram baseline = BuildBaseline(n, seed);
  query::QueryEngine baseline_engine(baseline, {});
  const auto sharded = BuildSharded(n, seed, 6, ShardPartitioning::kGrid);
  ShardRouter router(sharded);

  const auto points =
      datagen::TrajectoryQueryPoints(400, baseline.domain(), 25.0, 31);
  const query::QueryBatch batch = PointBatch(points);
  const auto expected = baseline_engine.ExecuteBatch(batch);
  const auto got = router.ExecuteBatch(batch);
  EXPECT_EQ(query::DigestPointAnswers(got), query::DigestPointAnswers(expected));
  ExpectPointAnswersIdentical(got, expected);
}

TEST(ShardedEquivalenceTest, UvPartitionsCoverRangesExactly) {
  const size_t n = 900;
  const uint64_t seed = 7;
  const core::UVDiagram baseline = BuildBaseline(n, seed);
  const auto sharded = BuildSharded(n, seed, 6, ShardPartitioning::kGrid);
  ShardRouter router(sharded);

  const auto clipped_area = [](const std::vector<core::UvPartition>& parts,
                               const geom::Box& range) {
    double area = 0;
    for (const auto& p : parts) {
      const double w = std::min(p.region.hi.x, range.hi.x) -
                       std::max(p.region.lo.x, range.lo.x);
      const double h = std::min(p.region.hi.y, range.hi.y) -
                       std::max(p.region.lo.y, range.lo.y);
      if (w > 0 && h > 0) area += w * h;
    }
    return area;
  };

  Rng rng(37);
  for (int i = 0; i < 12; ++i) {
    const double side = rng.Uniform(100, 2500);
    const geom::Point lo{rng.Uniform(0, 10000 - side), rng.Uniform(0, 10000 - side)};
    const geom::Box range(lo, {lo.x + side, lo.y + side});
    query::QueryBatch batch = {query::Query::UvPartitions(range)};

    const auto sharded_parts = router.ExecuteBatch(batch)[0].partitions;
    const auto baseline_parts = baseline.QueryUvPartitions(range);
    SCOPED_TRACE("range " + std::to_string(i));
    ASSERT_FALSE(sharded_parts.empty());
    // Both deployments tile the queried range exactly once (leaves tile
    // each shard, shards tile the domain) — same covered area, even though
    // the leaf boundaries differ between index structures.
    EXPECT_NEAR(clipped_area(sharded_parts, range), range.Area(),
                1e-6 * range.Area());
    EXPECT_NEAR(clipped_area(baseline_parts, range), range.Area(),
                1e-6 * range.Area());
    // Every sharded partition is one shard's own leaf: positive counts
    // live inside exactly one shard box.
    for (const auto& p : sharded_parts) {
      int holders = 0;
      for (size_t s = 0; s < sharded.num_shards(); ++s) {
        if (sharded.shard(s).box.ContainsBox(p.region)) ++holders;
      }
      EXPECT_EQ(holders, 1);
    }
  }
}

TEST(ShardedEquivalenceTest, CellSummariesMergeShardLeavesExactly) {
  const size_t n = 700;
  const uint64_t seed = 19;
  const auto sharded = BuildSharded(n, seed, 4, ShardPartitioning::kGrid);
  ShardRouter router(sharded);

  query::QueryBatch batch;
  for (int id : {0, 17, 350, 699}) batch.push_back(query::Query::CellSummary(id));
  batch.push_back(query::Query::CellSummary(1 << 28));  // no such object
  const auto results = router.ExecuteBatch(batch);

  for (size_t i = 0; i + 1 < batch.size(); ++i) {
    SCOPED_TRACE("object " + std::to_string(batch[i].object_id));
    ASSERT_TRUE(results[i].status.ok());
    // The merge must equal the sum of the per-shard ground truth.
    double area = 0;
    size_t leaves = 0;
    for (int s : sharded.ShardsForObject(batch[i].object_id)) {
      const auto direct = core::RetrieveUvCellSummary(
          *sharded.shard(static_cast<size_t>(s)).index, batch[i].object_id);
      if (!direct.ok()) continue;  // registered but stored in no leaf
      area += direct.value().area;
      leaves += direct.value().num_leaves;
    }
    EXPECT_EQ(results[i].cell_summary.area, area);
    EXPECT_EQ(results[i].cell_summary.num_leaves, leaves);
    EXPECT_GT(results[i].cell_summary.num_leaves, 0u);
  }
  EXPECT_FALSE(results.back().status.ok());
}

TEST(ShardedEquivalenceTest, RouterDeterministicAcrossThreadConfigs) {
  const size_t n = 600;
  const uint64_t seed = 23;
  const auto sharded = BuildSharded(n, seed, 5, ShardPartitioning::kBisection);

  // A heterogeneous batch exercising all four kinds plus cut-line probes.
  Rng rng(41);
  query::QueryBatch batch;
  for (const auto& p : CutLineProbes(sharded, 43)) batch.push_back(query::Query::Pnn(p));
  for (int i = 0; i < 40; ++i) {
    const geom::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    batch.push_back(query::Query::AnswerIds(p));
    const double side = rng.Uniform(100, 800);
    batch.push_back(query::Query::UvPartitions(
        geom::Box({p.x / 2, p.y / 2}, {p.x / 2 + side, p.y / 2 + side})));
    batch.push_back(query::Query::CellSummary(static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1))));
  }

  std::vector<std::vector<query::QueryResult>> runs;
  for (const int router_threads : {1, 4}) {
    for (const int engine_threads : {1, 2}) {
      for (const bool cache : {false, true}) {
        ShardRouterOptions opts;
        opts.router_threads = router_threads;
        opts.engine.threads = engine_threads;
        opts.engine.enable_cache = cache;
        ShardRouter router(sharded, opts);
        runs.push_back(router.ExecuteBatch(batch));
      }
    }
  }
  const auto& reference = runs.front();
  for (size_t r = 1; r < runs.size(); ++r) {
    SCOPED_TRACE("run " + std::to_string(r));
    ASSERT_EQ(runs[r].size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      EXPECT_EQ(runs[r][i].status.ok(), reference[i].status.ok());
      ASSERT_EQ(runs[r][i].pnn.size(), reference[i].pnn.size());
      for (size_t k = 0; k < reference[i].pnn.size(); ++k) {
        EXPECT_EQ(runs[r][i].pnn[k].id, reference[i].pnn[k].id);
        EXPECT_EQ(runs[r][i].pnn[k].probability, reference[i].pnn[k].probability);
      }
      EXPECT_EQ(runs[r][i].answer_ids, reference[i].answer_ids);
      ASSERT_EQ(runs[r][i].partitions.size(), reference[i].partitions.size());
      for (size_t k = 0; k < reference[i].partitions.size(); ++k) {
        EXPECT_EQ(runs[r][i].partitions[k].object_count,
                  reference[i].partitions[k].object_count);
        EXPECT_EQ(runs[r][i].partitions[k].region.lo.x,
                  reference[i].partitions[k].region.lo.x);
        EXPECT_EQ(runs[r][i].partitions[k].region.hi.y,
                  reference[i].partitions[k].region.hi.y);
      }
      EXPECT_EQ(runs[r][i].cell_summary.area, reference[i].cell_summary.area);
      EXPECT_EQ(runs[r][i].cell_summary.num_leaves,
                reference[i].cell_summary.num_leaves);
    }
  }
}

TEST(ShardedEquivalenceTest, AggregateStatsMergeShardCounters) {
  const auto sharded = BuildSharded(600, 29, 4, ShardPartitioning::kGrid);
  ShardRouter router(sharded);
  const Stats before = sharded.AggregateStats();

  const auto points = datagen::TrajectoryQueryPoints(100, sharded.domain(), 30.0, 47);
  (void)router.ExecuteBatch(PointBatch(points));

  const Stats after = sharded.AggregateStats();
  // Query-side leaf I/O and cache lookups were billed to the shards'
  // private Stats and surface through the aggregate.
  EXPECT_GT(after.Get(Ticker::kUvIndexLeafReads), before.Get(Ticker::kUvIndexLeafReads));
  EXPECT_GT(after.Get(Ticker::kQueryCacheHits) + after.Get(Ticker::kQueryCacheMisses),
            0u);
}

}  // namespace
}  // namespace shard
}  // namespace uvd
