// Reopen equivalence (the persistence acceptance gate): a diagram built
// into a paged file, checkpointed, closed and reopened COLD in the same
// process must serve PNN and answer-id results bitwise-identical to the
// in-RAM build it mirrors — same ids, same probability bits, same digest —
// across build thread counts and shard counts, with and without a buffer
// pool smaller than the working set. Also pins the typed-error contract:
// opening a missing or non-diagram file yields a clean Status, never a
// garbage diagram.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "query/query_batch.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"
#include "storage/paged_file.h"

namespace uvd {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/uvd_reopen_" + name;
}

void RemoveShardFiles(const std::string& prefix, int num_shards) {
  for (int s = 0; s < num_shards; ++s) {
    std::remove(shard::ShardedUVDiagram::ShardFilePath(prefix, s).c_str());
  }
}

datagen::DatasetOptions DataOptions(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  return opts;
}

/// Probe points spread over the domain plus its corners and max edges.
std::vector<geom::Point> Probes(const geom::Box& domain, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> probes;
  probes.reserve(count + 4);
  for (size_t i = 0; i < count; ++i) {
    probes.push_back({rng.Uniform(domain.lo.x, domain.hi.x),
                      rng.Uniform(domain.lo.y, domain.hi.y)});
  }
  probes.push_back(domain.lo);
  probes.push_back(domain.hi);
  probes.push_back({domain.lo.x, domain.hi.y});
  probes.push_back({domain.hi.x, domain.lo.y});
  return probes;
}

query::QueryBatch PointBatch(const std::vector<geom::Point>& points) {
  query::QueryBatch batch;
  batch.reserve(points.size() * 2);
  for (const auto& p : points) {
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return batch;
}

uint64_t DigestDiagram(const core::UVDiagram& diagram,
                       const std::vector<geom::Point>& probes) {
  query::QueryEngine engine(diagram);
  return query::DigestPointAnswers(engine.ExecuteBatch(PointBatch(probes)));
}

uint64_t DigestSharded(const shard::ShardedUVDiagram& diagram,
                       const std::vector<geom::Point>& probes) {
  shard::ShardRouter router(diagram);
  return query::DigestPointAnswers(router.ExecuteBatch(PointBatch(probes)));
}

TEST(ReopenEquivalenceTest, UnshardedReopenServesIdenticalAnswers) {
  const size_t n = 500;
  for (int build_threads : {1, 8}) {
    SCOPED_TRACE("build_threads=" + std::to_string(build_threads));
    const auto data = DataOptions(n, 71);
    const geom::Box domain = datagen::DomainFor(data);
    const auto probes = Probes(domain, 160, 73);

    core::UVDiagramOptions ram_options;
    ram_options.build_threads = build_threads;
    const auto reference =
        core::UVDiagram::Build(datagen::GenerateUniform(data), domain,
                               ram_options)
            .ValueOrDie();
    const uint64_t want = DigestDiagram(reference, probes);

    const std::string path =
        TempPath("unsharded_t" + std::to_string(build_threads));
    std::remove(path.c_str());
    core::UVDiagramOptions file_options = ram_options;
    file_options.storage_path = path;
    {
      auto built = core::UVDiagram::Build(datagen::GenerateUniform(data),
                                          domain, file_options)
                       .ValueOrDie();
      ASSERT_TRUE(built.persistent());
      // The file-backed build must already serve identical bits.
      EXPECT_EQ(DigestDiagram(built, probes), want);
      UVD_CHECK_OK(built.CloseStorage());
    }

    // Cold reopen, once pool-less and once with a pool smaller than the
    // file, must both reproduce the digest bitwise.
    for (size_t pool_pages : {size_t{0}, size_t{8}}) {
      SCOPED_TRACE("pool_pages=" + std::to_string(pool_pages));
      core::UVDiagramOptions open_options;
      open_options.buffer_pool_pages = pool_pages;
      auto reopened = core::UVDiagram::Open(path, open_options).ValueOrDie();
      ASSERT_TRUE(reopened.persistent());
      ASSERT_EQ(reopened.objects().size(), n);
      EXPECT_EQ(DigestDiagram(reopened, probes), want);
      // The R-tree path is rebuilt lazily from the reloaded objects and
      // must agree with the UV-index path on a spot check.
      const auto via_rtree =
          reopened.QueryPnnWithRtree(probes.front()).ValueOrDie();
      const auto via_index = reopened.QueryPnn(probes.front()).ValueOrDie();
      ASSERT_EQ(via_rtree.size(), via_index.size());
      for (size_t k = 0; k < via_rtree.size(); ++k) {
        EXPECT_EQ(via_rtree[k].id, via_index[k].id);
      }
      UVD_CHECK_OK(reopened.CloseStorage());
    }
    std::remove(path.c_str());
  }
}

TEST(ReopenEquivalenceTest, ShardedReopenServesIdenticalAnswers) {
  const size_t n = 400;
  for (int num_shards : {1, 4}) {
    for (int build_threads : {1, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                   " build_threads=" + std::to_string(build_threads));
      const auto data = DataOptions(n, 77);
      const geom::Box domain = datagen::DomainFor(data);
      const auto probes = Probes(domain, 120, 79);

      shard::ShardedUVDiagramOptions options;
      options.num_shards = num_shards;
      options.diagram.build_threads = build_threads;
      const auto reference =
          shard::ShardedUVDiagram::Build(datagen::GenerateUniform(data),
                                         domain, options)
              .ValueOrDie();
      const uint64_t want = DigestSharded(reference, probes);

      const std::string prefix =
          TempPath("sharded_k" + std::to_string(num_shards) + "_t" +
                   std::to_string(build_threads));
      RemoveShardFiles(prefix, num_shards);
      shard::ShardedUVDiagramOptions file_options = options;
      file_options.diagram.storage_path = prefix;
      {
        auto built =
            shard::ShardedUVDiagram::Build(datagen::GenerateUniform(data),
                                           domain, file_options)
                .ValueOrDie();
        ASSERT_TRUE(built.persistent());
        EXPECT_EQ(DigestSharded(built, probes), want);
        UVD_CHECK_OK(built.CloseStorage());
      }

      shard::ShardedUVDiagramOptions open_options;
      open_options.diagram.buffer_pool_pages = 8;
      auto reopened =
          shard::ShardedUVDiagram::Open(prefix, open_options).ValueOrDie();
      ASSERT_TRUE(reopened.persistent());
      ASSERT_EQ(reopened.num_shards(), static_cast<size_t>(num_shards));
      ASSERT_EQ(reopened.objects().size(), n);
      for (size_t k = 0; k < n; ++k) {
        ASSERT_EQ(reopened.objects()[k].id(), static_cast<int>(k));
      }
      EXPECT_EQ(DigestSharded(reopened, probes), want);
      UVD_CHECK_OK(reopened.CloseStorage());
      RemoveShardFiles(prefix, num_shards);
    }
  }
}

TEST(ReopenEquivalenceTest, OpenRejectsMissingAndForeignFiles) {
  // Missing file: a typed error, not a crash.
  const auto missing = core::UVDiagram::Open(TempPath("does_not_exist"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);

  // A valid paged file that is not a diagram: InvalidArgument from the
  // bootstrap magic, not garbage answers.
  const std::string path = TempPath("foreign");
  std::remove(path.c_str());
  {
    auto file = storage::PagedFile::Create(path, 256).ValueOrDie();
    std::vector<uint8_t> bootstrap(24, 0xAB);
    UVD_CHECK_OK(file->SetBootstrap(bootstrap));
    UVD_CHECK_OK(file->Close());
  }
  const auto foreign = core::UVDiagram::Open(path);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uvd
