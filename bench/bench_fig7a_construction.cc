// Fig. 7(a): construction time T_c vs |O| for Basic / ICR / IC. Paper
// shape: Basic blows up (97 hours at 50K in the paper); ICR is far
// cheaper; IC is the cheapest. Basic is run only on the smallest sweep
// sizes here and skipped (with a note) beyond, exactly because of the
// behaviour this figure demonstrates.
#include "bench_common.h"

#include "common/timer.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(a): T_c vs |O| for Basic / ICR / IC",
                     "UV-index construction time, uniform data");

  const auto sweep = bench::SizeSweep();
  const size_t basic_cap = sweep[1];  // Basic only for the two smallest sizes
  std::printf("%10s %14s %14s %14s\n", "|O|", "Basic(s)", "ICR(s)", "IC(s)");
  for (size_t n : sweep) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = 42;
    double seconds[3] = {-1, -1, -1};
    const core::BuildMethod methods[3] = {core::BuildMethod::kBasic,
                                          core::BuildMethod::kICR,
                                          core::BuildMethod::kIC};
    for (int m = 0; m < 3; ++m) {
      if (methods[m] == core::BuildMethod::kBasic && n > basic_cap) continue;
      Stats stats;
      core::UVDiagramOptions options;
      options.method = methods[m];
      auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                         datagen::DomainFor(opts), options, &stats);
      seconds[m] = diagram.build_stats().total_seconds;
    }
    auto cell = [&](double s) {
      static char buf[32];
      if (s < 0) {
        std::snprintf(buf, sizeof(buf), "%14s", "(skipped)");
      } else {
        std::snprintf(buf, sizeof(buf), "%14.2f", s);
      }
      return buf;
    };
    std::printf("%10zu %s", n, cell(seconds[0]));
    std::printf(" %s", cell(seconds[1]));
    std::printf(" %s\n", cell(seconds[2]));
  }
  std::printf("\nBasic grows superlinearly (every object against all others);\n"
              "it is skipped beyond |O|=%zu — the paper reports 97 hours at 50K.\n",
              basic_cap);
  return 0;
}
