// Log-bucketed latency histogram in the spirit of HdrHistogram: fixed
// bucket layout (16 exact unit buckets, then 16 sub-buckets per power of
// two), so Record is one array increment and two histograms merge EXACTLY
// — the merged bucket counts, count, sum, min and max are the ones a
// single histogram fed both streams would hold. The paper's evaluation
// reports means (Fig. 6); serving at scale needs the distribution — the
// ROADMAP's streaming-serving item asks for p50/p99/p999 under open-loop
// load and this is the type every layer records into (query-kind
// latencies in QueryEngine, per-shard routed latency in ShardRouter, page
// read latency in PageManager).
//
// Concurrency model mirrors common/stats.h: buckets are relaxed atomics,
// so one histogram may be shared by concurrent recorders; totals are
// exact, cross-field snapshots taken mid-flight are not. Hot loops that
// want zero sharing use a per-worker shard merged via MergeFrom at the
// end — the query engine does exactly that. Like Stats, the type is
// deliberately mutex-free, so it carries no thread-safety annotations
// (docs/STATIC_ANALYSIS.md, "Atomics vs. guarded fields"); the other obs
// components (TraceRecorder, MetricsRegistry) do hold locks and are
// fully annotated.
#ifndef UVD_OBS_LATENCY_HISTOGRAM_H_
#define UVD_OBS_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace uvd {
namespace obs {

/// Process-wide metrics master switch (relaxed atomic, default on). When
/// off, every instrumented layer skips its clock reads and histogram
/// records — the knob the obs-off leg of the determinism digest test and
/// the overhead smoke flip. Purely observational either way: answers and
/// serialized indexes are bitwise-identical with metrics on or off.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonic microsecond clock for latency measurements (steady_clock
/// since process start; origin is arbitrary, differences are meaningful).
uint64_t NowMicros();

/// \brief Mergeable log-bucketed histogram of non-negative 64-bit values
/// (by convention: microseconds).
///
/// Bucket layout: values 0..15 get exact unit buckets; every power-of-two
/// octave [2^m, 2^(m+1)) above that is split into 16 equal sub-buckets,
/// bounding the relative quantization error by 1/16. Percentile queries
/// return the bucket's inclusive upper bound clamped to the recorded
/// [min, max] — a conservative (never understated) tail estimate.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr uint64_t kSubBucketCount = 1ull << kSubBucketBits;  // 16
  /// 16 unit buckets + 60 octaves (m = 4..63) x 16 sub-buckets.
  static constexpr uint32_t kNumBuckets =
      static_cast<uint32_t>(kSubBucketCount) +
      (64 - kSubBucketBits) * static_cast<uint32_t>(kSubBucketCount);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram& other) { CopyFrom(other); }
  LatencyHistogram& operator=(const LatencyHistogram& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Records one observation. Safe for concurrent callers.
  void Record(uint64_t value) { RecordMany(value, 1); }

  /// Records `count` observations of the same value.
  void RecordMany(uint64_t value, uint64_t count);

  /// Adds every bucket (and count/sum/min/max) of `other` into this
  /// instance. Exact: merging shards is indistinguishable from recording
  /// their streams into one histogram, and the operation is associative
  /// and commutative — the property the per-worker-shard story rests on.
  void MergeFrom(const LatencyHistogram& other);

  void Reset();

  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (exact, not bucket-quantized);
  /// 0 when empty.
  uint64_t MinValue() const;
  uint64_t MaxValue() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Value at the given percentile (0..100): the inclusive upper bound of
  /// the bucket holding that rank, clamped to [MinValue, MaxValue] so a
  /// single-valued stream reports that exact value at every percentile.
  /// 0 when empty.
  uint64_t ValueAtPercentile(double percentile) const;

  /// One coherent read-out (fields are snapshotted bucket-first, so a
  /// quiescent histogram snapshots exactly; one with recorders in flight
  /// is approximate like any Stats read).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0.0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;

    bool operator==(const Snapshot& o) const {
      return count == o.count && sum == o.sum && min == o.min && max == o.max &&
             mean == o.mean && p50 == o.p50 && p90 == o.p90 && p99 == o.p99 &&
             p999 == o.p999;
    }
  };
  Snapshot TakeSnapshot() const;

  /// Bucket mapping, exposed for the boundary tests.
  static uint32_t BucketIndex(uint64_t value);
  /// Smallest value mapping to `bucket`.
  static uint64_t BucketLowerBound(uint32_t bucket);
  /// Largest value mapping to `bucket` (inclusive).
  static uint64_t BucketUpperBound(uint32_t bucket);

 private:
  void CopyFrom(const LatencyHistogram& other);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};  // sentinel: empty
  std::atomic<uint64_t> max_{0};
};

}  // namespace obs
}  // namespace uvd

#endif  // UVD_OBS_LATENCY_HISTOGRAM_H_
