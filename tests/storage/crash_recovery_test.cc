// Crash-point harness (the durability acceptance gate): a deterministic
// append-then-checkpoint workload is first run clean to enumerate every
// physical write; then, for EVERY write index and both fault shapes (clean
// crash, torn write), a fresh run is killed at exactly that write and the
// file reopened. Recovery must be bitwise-exact: the reopened store equals
// the last completed checkpoint's snapshot — page count, every page's
// bytes, bootstrap — or Open fails with a typed Corruption (only a torn
// metapage can cause that). Never a silently wrong page. On top of the
// file-level loop, diagram-level tests prove a crashed (re)checkpoint
// leaves UVDiagram::Open serving the previous checkpoint's bitwise answer
// digest, and direct bit-flip injection proves at-rest damage in any frame
// region surfaces as Corruption at read time.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "query/query_batch.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "storage/paged_file.h"

namespace uvd {
namespace storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/uvd_crash_" + name;
}

std::vector<uint8_t> Pattern(size_t page_size, uint32_t page, uint32_t phase) {
  std::vector<uint8_t> data(page_size);
  for (size_t i = 0; i < page_size; ++i) {
    data[i] = static_cast<uint8_t>((page * 131 + phase * 17 + i * 7) & 0xff);
  }
  return data;
}

/// A durable state: what Open must recover after a crash.
struct Snapshot {
  uint32_t page_count = 0;
  std::vector<std::vector<uint8_t>> pages;
  std::vector<uint8_t> bootstrap;

  uint64_t Digest() const {
    uint64_t h = Fnv64(reinterpret_cast<const uint8_t*>(&page_count),
                       sizeof(page_count));
    for (const auto& p : pages) h = Fnv64(p.data(), p.size(), h);
    return Fnv64(bootstrap.data(), bootstrap.size(), h);
  }
};

Snapshot SnapshotOf(const PagedFile& file) {
  Snapshot snap;
  snap.page_count = file.durable_page_count();
  snap.bootstrap = file.bootstrap();
  snap.pages.resize(snap.page_count);
  for (uint32_t p = 0; p < snap.page_count; ++p) {
    UVD_CHECK_OK(file.ReadPage(p, &snap.pages[p]));
  }
  return snap;
}

/// The deterministic workload: three checkpointed phases, each allocating
/// fresh pages and writing only to them (the append-between-checkpoints
/// pattern the durability contract covers — see paged_file.h). `snaps` and
/// `durable_at` (write_count after each successful Checkpoint) are
/// recorded when non-null (the clean reference run).
Status RunWorkload(PagedFile* file, std::vector<Snapshot>* snaps,
                   std::vector<uint64_t>* durable_at) {
  const size_t page_size = file->page_size();
  uint32_t phase = 0;
  for (uint32_t count : {3u, 2u, 4u}) {
    ++phase;
    UVD_ASSIGN_OR_RETURN(uint32_t first, file->AllocatePages(count));
    for (uint32_t i = 0; i < count; ++i) {
      const auto data = Pattern(page_size, first + i, phase);
      UVD_RETURN_NOT_OK(file->WritePage(first + i, data.data(), data.size()));
    }
    std::vector<uint8_t> bootstrap(24 + phase, static_cast<uint8_t>(phase));
    UVD_RETURN_NOT_OK(file->SetBootstrap(bootstrap));
    UVD_RETURN_NOT_OK(file->Checkpoint());
    if (snaps != nullptr) snaps->push_back(SnapshotOf(*file));
    if (durable_at != nullptr) durable_at->push_back(file->write_count());
  }
  return Status::OK();
}

TEST(CrashRecoveryTest, EveryCrashPointRecoversLastCheckpointOrFailsTyped) {
  const size_t kPageSize = 128;

  // Clean reference run: enumerate the writes and the durable states.
  const std::string ref_path = TempPath("reference");
  std::remove(ref_path.c_str());
  std::vector<Snapshot> snaps;
  std::vector<uint64_t> durable_at;
  uint64_t total_writes = 0;
  {
    auto file = PagedFile::Create(ref_path, kPageSize).ValueOrDie();
    // Create's own empty checkpoint is durable state 0 (metapage write 0,
    // which happens before a hook can be installed).
    snaps.insert(snaps.begin(), SnapshotOf(*file));
    durable_at.insert(durable_at.begin(), file->write_count());
    UVD_CHECK_OK(RunWorkload(file.get(), &snaps, &durable_at));
    total_writes = file->write_count();
    UVD_CHECK_OK(file->Close());
  }
  std::remove(ref_path.c_str());
  ASSERT_EQ(snaps.size(), 4u);
  ASSERT_GT(total_writes, durable_at.front());

  // Metapage write indices: the final write of each checkpoint.
  std::set<uint64_t> metapage_writes;
  for (uint64_t after : durable_at) metapage_writes.insert(after - 1);

  const std::string path = TempPath("victim");
  for (const WriteFault fault : {WriteFault::kCrash, WriteFault::kTorn}) {
    for (uint64_t c = durable_at.front(); c < total_writes; ++c) {
      SCOPED_TRACE("fault=" + std::to_string(static_cast<int>(fault)) +
                   " crash_at=" + std::to_string(c));
      std::remove(path.c_str());
      auto file = PagedFile::Create(path, kPageSize).ValueOrDie();
      file->SetWriteHook([c, fault](uint64_t idx) {
        return idx == c ? fault : WriteFault::kNone;
      });
      const Status crashed = RunWorkload(file.get(), nullptr, nullptr);
      ASSERT_FALSE(crashed.ok());
      EXPECT_EQ(crashed.code(), StatusCode::kIOError);
      EXPECT_TRUE(file->dead());
      // Everything after the fault fails too — the handle is gone.
      EXPECT_EQ(file->Checkpoint().code(), StatusCode::kIOError);
      file.reset();  // the crash: drop the handle, no final checkpoint

      // The restart. Expected durable state: the last checkpoint whose
      // metapage write completed strictly before the fault.
      size_t expect = 0;
      for (size_t k = 0; k < durable_at.size(); ++k) {
        if (durable_at[k] - 1 < c) expect = k;
      }
      auto reopened = PagedFile::Open(path);
      if (!reopened.ok()) {
        // Only a torn metapage may make the file unopenable, and then the
        // failure is the typed Corruption — never a wrong recovery.
        EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
        EXPECT_EQ(fault, WriteFault::kTorn);
        EXPECT_TRUE(metapage_writes.count(c) != 0);
        continue;
      }
      const Snapshot recovered = SnapshotOf(*reopened.value());
      EXPECT_EQ(recovered.Digest(), snaps[expect].Digest());
      EXPECT_EQ(recovered.page_count, snaps[expect].page_count);
      UVD_CHECK_OK(reopened.value()->Close());
    }
  }
  std::remove(path.c_str());
}

TEST(CrashRecoveryTest, BitFlipInAnyRegionSurfacesAsTypedCorruption) {
  const size_t kPageSize = 128;
  const std::string path = TempPath("bitflip");
  std::remove(path.c_str());
  {
    auto file = PagedFile::Create(path, kPageSize).ValueOrDie();
    UVD_CHECK_OK(RunWorkload(file.get(), nullptr, nullptr));
    UVD_CHECK_OK(file->Close());
  }

  const auto flip = [&path](uint64_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x10;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  };

  const uint64_t frame_size = kPageFrameHeaderSize + kPageSize;
  // One flip per region of page 1's frame: stored checksum, stored page
  // id, payload head, payload tail.
  for (const uint64_t in_frame : {uint64_t{0}, uint64_t{8}, uint64_t{16},
                                  frame_size - 1}) {
    SCOPED_TRACE("in_frame_offset=" + std::to_string(in_frame));
    const uint64_t offset = kMetaBlockSize + frame_size + in_frame;
    flip(offset);
    auto file = PagedFile::Open(path).ValueOrDie();
    std::vector<uint8_t> out;
    EXPECT_EQ(file->ReadPage(1, &out).code(), StatusCode::kCorruption);
    // Undamaged neighbors still read clean.
    UVD_CHECK_OK(file->ReadPage(0, &out));
    UVD_CHECK_OK(file->ReadPage(2, &out));
    UVD_CHECK_OK(file->Close());
    flip(offset);  // restore
  }

  // Metapage damage rejects the whole file at Open.
  flip(12);  // inside the page-count field
  auto damaged = PagedFile::Open(path);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kCorruption);
  flip(12);
  UVD_CHECK_OK(PagedFile::Open(path).ValueOrDie()->Close());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Diagram-level crash points: the same discipline observed through the
// public UVDiagram persistence API.
// ---------------------------------------------------------------------------

query::QueryBatch ProbeBatch(const geom::Box& domain, uint64_t seed) {
  Rng rng(seed);
  query::QueryBatch batch;
  for (int i = 0; i < 60; ++i) {
    const geom::Point p{rng.Uniform(domain.lo.x, domain.hi.x),
                        rng.Uniform(domain.lo.y, domain.hi.y)};
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return batch;
}

uint64_t DigestDiagram(const core::UVDiagram& diagram,
                       const query::QueryBatch& batch) {
  query::QueryEngine engine(diagram);
  return query::DigestPointAnswers(engine.ExecuteBatch(batch));
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void Restore(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamoff>(bytes.size()));
}

TEST(CrashRecoveryTest, CrashedRecheckpointKeepsServingPreviousState) {
  datagen::DatasetOptions data;
  data.count = 120;
  data.seed = 41;
  const geom::Box domain = datagen::DomainFor(data);
  const auto batch = ProbeBatch(domain, 43);

  const std::string path = TempPath("diagram");
  std::remove(path.c_str());
  core::UVDiagramOptions options;
  options.storage_path = path;
  uint64_t want = 0;
  {
    auto built = core::UVDiagram::Build(datagen::GenerateUniform(data), domain,
                                        options)
                     .ValueOrDie();
    want = DigestDiagram(built, batch);
    UVD_CHECK_OK(built.CloseStorage());
  }
  const std::vector<char> pristine = Slurp(path);
  ASSERT_FALSE(pristine.empty());

  // Reference pass: count the writes one re-checkpoint issues.
  uint64_t checkpoint_writes = 0;
  {
    auto diagram = core::UVDiagram::Open(path).ValueOrDie();
    UVD_CHECK_OK(diagram.Checkpoint());
    checkpoint_writes = diagram.file_page_manager()->file()->write_count();
    // A re-checkpoint relocates the manifest but must not change answers.
    UVD_CHECK_OK(diagram.CloseStorage());
  }
  ASSERT_GT(checkpoint_writes, 1u);

  for (const WriteFault fault : {WriteFault::kCrash, WriteFault::kTorn}) {
    for (uint64_t c = 0; c < checkpoint_writes; ++c) {
      SCOPED_TRACE("fault=" + std::to_string(static_cast<int>(fault)) +
                   " crash_at=" + std::to_string(c));
      Restore(path, pristine);
      {
        auto diagram = core::UVDiagram::Open(path).ValueOrDie();
        EXPECT_EQ(DigestDiagram(diagram, batch), want);
        diagram.file_page_manager()->file()->SetWriteHook(
            [c, fault](uint64_t idx) {
              return idx == c ? fault : WriteFault::kNone;
            });
        const Status crashed = diagram.Checkpoint();
        ASSERT_FALSE(crashed.ok());
        EXPECT_EQ(crashed.code(), StatusCode::kIOError);
        // CloseStorage would checkpoint again; the dead handle stays dead.
        EXPECT_FALSE(diagram.CloseStorage().ok());
      }
      auto reopened = core::UVDiagram::Open(path);
      if (!reopened.ok()) {
        EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
        EXPECT_EQ(fault, WriteFault::kTorn);
        continue;
      }
      EXPECT_EQ(DigestDiagram(reopened.value(), batch), want);
      UVD_CHECK_OK(reopened.value().CloseStorage());
    }
  }
  std::remove(path.c_str());
}

TEST(CrashRecoveryTest, CrashBeforeFirstCheckpointNeverYieldsADiagram) {
  datagen::DatasetOptions data;
  data.count = 60;
  data.seed = 47;
  const geom::Box domain = datagen::DomainFor(data);

  const std::string path = TempPath("unborn");
  std::remove(path.c_str());
  core::UVDiagramOptions options;
  options.storage_path = path;
  // Build, then kill the very first write of the first Checkpoint: the
  // file exists (the build's data pages landed) but no diagram manifest
  // ever became durable, so Open must fail typed — not serve garbage.
  auto built = core::UVDiagram::Build(datagen::GenerateUniform(data), domain,
                                      options)
                   .ValueOrDie();
  const uint64_t already =
      built.file_page_manager()->file()->write_count();
  built.file_page_manager()->file()->SetWriteHook(
      [already](uint64_t idx) {
        return idx >= already ? WriteFault::kCrash : WriteFault::kNone;
      });
  ASSERT_FALSE(built.Checkpoint().ok());

  auto reopened = core::UVDiagram::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace uvd
