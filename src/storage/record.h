// Fixed-layout little-endian record encoding for simulated disk pages
// (index leaf tuples, R-tree leaf entries).
#ifndef UVD_STORAGE_RECORD_H_
#define UVD_STORAGE_RECORD_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace uvd {
namespace storage {

/// Appends primitive values to a byte buffer (little-endian).
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* buf) : buf_(buf) {}

  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  size_t size() const { return buf_->size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(p);
    buf_->insert(buf_->end(), bytes, bytes + n);
  }

  std::vector<uint8_t>* buf_;
};

/// Reads primitive values back from a byte buffer. Out-of-bounds reads are
/// programming errors and fail a UVD_CHECK.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  uint16_t GetU16() { return GetRaw<uint16_t>(); }
  uint32_t GetU32() { return GetRaw<uint32_t>(); }
  uint64_t GetU64() { return GetRaw<uint64_t>(); }
  int32_t GetI32() { return GetRaw<int32_t>(); }
  double GetDouble() { return GetRaw<double>(); }

  void Skip(size_t n) {
    UVD_CHECK_LE(pos_ + n, size_) << "decoder overrun";
    pos_ += n;
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  T GetRaw() {
    UVD_CHECK_LE(pos_ + sizeof(T), size_) << "decoder overrun";
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace storage
}  // namespace uvd

#endif  // UVD_STORAGE_RECORD_H_
