// Nearest-neighbor pattern analysis (paper Sec. V-C and the virus-spread
// motivation [8]): visualize how many objects can be the nearest neighbor
// across the space. Regions where many devices are plausible nearest
// neighbors are where a proximity-spreading process (e.g. a bluetooth
// virus) has the most routes.
//
// Builds a UV-diagram over a clustered device population, runs UV-partition
// queries over a sweep grid, and writes a PGM heat map plus a CSV table.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/uv_diagram.h"
#include "datagen/generators.h"

int main() {
  using namespace uvd;

  datagen::DatasetOptions opts;
  opts.count = 4000;
  opts.domain_size = 10000;
  opts.diameter = 120;  // bluetooth-ish reach
  opts.seed = 11;
  auto devices = datagen::GenerateGaussianCloud(opts, /*sigma=*/1800);
  const geom::Box domain = datagen::DomainFor(opts);
  auto diagram = core::UVDiagram::Build(std::move(devices), domain).ValueOrDie();

  // Sample NN-candidate density on a grid via UV-partition queries.
  const int kGrid = 64;
  const double cell = opts.domain_size / kGrid;
  std::vector<double> density(static_cast<size_t>(kGrid) * kGrid, 0.0);
  double max_density = 0.0;
  for (int gy = 0; gy < kGrid; ++gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      const geom::Box range({gx * cell, gy * cell}, {(gx + 1) * cell, (gy + 1) * cell});
      double acc = 0.0;
      for (const auto& p : diagram.QueryUvPartitions(range)) {
        // Weight each partition by its overlap with the grid cell.
        const geom::Box inter({std::max(p.region.lo.x, range.lo.x),
                               std::max(p.region.lo.y, range.lo.y)},
                              {std::min(p.region.hi.x, range.hi.x),
                               std::min(p.region.hi.y, range.hi.y)});
        if (!inter.IsEmpty()) acc += p.density * inter.Area();
      }
      acc /= range.Area();
      density[static_cast<size_t>(gy) * kGrid + gx] = acc;
      max_density = std::max(max_density, acc);
    }
  }

  // PGM heat map (bright = many possible nearest neighbors).
  const char* pgm_path = "nn_heatmap.pgm";
  if (FILE* f = std::fopen(pgm_path, "w")) {
    std::fprintf(f, "P2\n%d %d\n255\n", kGrid, kGrid);
    for (int gy = kGrid - 1; gy >= 0; --gy) {  // north up
      for (int gx = 0; gx < kGrid; ++gx) {
        const double v = density[static_cast<size_t>(gy) * kGrid + gx];
        std::fprintf(f, "%d ", static_cast<int>(255.0 * v / max_density));
      }
      std::fprintf(f, "\n");
    }
    std::fclose(f);
  }

  // CSV of the densest partitions inside the hot zone.
  const char* csv_path = "nn_hotspots.csv";
  const geom::Box hot({3500, 3500}, {6500, 6500});
  auto partitions = diagram.QueryUvPartitions(hot);
  std::sort(partitions.begin(), partitions.end(),
            [](const core::UvPartition& a, const core::UvPartition& b) {
              return a.density > b.density;
            });
  if (FILE* f = std::fopen(csv_path, "w")) {
    std::fprintf(f, "lo_x,lo_y,hi_x,hi_y,objects,density\n");
    for (size_t i = 0; i < std::min<size_t>(partitions.size(), 50); ++i) {
      const auto& p = partitions[i];
      std::fprintf(f, "%.0f,%.0f,%.0f,%.0f,%zu,%.8f\n", p.region.lo.x, p.region.lo.y,
                   p.region.hi.x, p.region.hi.y, p.object_count, p.density);
    }
    std::fclose(f);
  }

  std::printf("device population: 4000 (Gaussian cloud, sigma=1800)\n");
  std::printf("UV-index: %zu leaves over %d non-leaf nodes\n",
              diagram.index().num_leaves(), diagram.index().num_nonleaf());
  std::printf("peak NN-candidate density: %.3g objects per unit^2\n", max_density);
  std::printf("wrote %s (64x64 heat map) and %s (top partitions)\n", pgm_path,
              csv_path);
  std::printf("\ninterpretation: bright cells are where a proximity-based process\n"
              "(virus hop, service handoff) has the most possible next targets.\n");
  return 0;
}
