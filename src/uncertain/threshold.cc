#include "uncertain/threshold.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "uncertain/distance_dist.h"

namespace uvd {
namespace uncertain {

std::vector<ThresholdAnswer> QualificationBounds(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q,
    int verifier_steps) {
  std::vector<ThresholdAnswer> out;
  const auto objs = FilterByDMinMax(candidates, q);
  if (objs.empty()) return out;
  if (objs.size() == 1) {
    out.push_back({objs[0]->id(), 1.0, 1.0, false, 1.0});
    return out;
  }

  double lo = std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (const UncertainObject* o : objs) {
    lo = std::min(lo, o->DistMin(q));
    hi = std::min(hi, o->DistMax(q));
  }
  const int m = std::max(2, verifier_steps);
  const size_t c = objs.size();

  std::vector<DistanceDistribution> dists;
  dists.reserve(c);
  for (const UncertainObject* o : objs) dists.emplace_back(*o, q);
  std::vector<std::vector<double>> cdf(c, std::vector<double>(m + 1));
  for (size_t i = 0; i < c; ++i) {
    for (int k = 0; k <= m; ++k) {
      const double r = lo + (hi - lo) * static_cast<double>(k) / m;
      cdf[i][static_cast<size_t>(k)] = dists[i].Cdf(r);
    }
  }

  // P_i = sum_k Integral_{cell k} prod_{j != i} (1 - F_j(r)) dF_i(r).
  // All F_j are non-decreasing, so over cell k the survival product is
  // bracketed by its values at the two grid points: evaluating it at the
  // right (left) end under-(over-)estimates every cell contribution.
  out.reserve(c);
  for (size_t i = 0; i < c; ++i) {
    double lower = 0.0, upper = 0.0;
    for (int k = 0; k < m; ++k) {
      const double df =
          cdf[i][static_cast<size_t>(k) + 1] - cdf[i][static_cast<size_t>(k)];
      if (df <= 0.0) continue;
      double s_left = 1.0, s_right = 1.0;
      for (size_t j = 0; j < c; ++j) {
        if (j == i) continue;
        s_left *= (1.0 - cdf[j][static_cast<size_t>(k)]);
        s_right *= (1.0 - cdf[j][static_cast<size_t>(k) + 1]);
      }
      lower += df * s_right;
      upper += df * s_left;
    }
    ThresholdAnswer a;
    a.id = objs[i]->id();
    a.lower = std::clamp(lower, 0.0, 1.0);
    a.upper = std::clamp(upper, 0.0, 1.0);
    a.probability = 0.5 * (a.lower + a.upper);
    out.push_back(a);
  }
  return out;
}

std::vector<ThresholdAnswer> ThresholdQualification(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q,
    const ThresholdOptions& options, ThresholdStats* tstats, Stats* stats) {
  ThresholdStats local;
  auto bounds = QualificationBounds(candidates, q, options.verifier_steps);
  local.candidates = bounds.size();

  // Undecided candidates pay one joint full integration.
  std::vector<ThresholdAnswer> result;
  bool needs_refine = false;
  for (const ThresholdAnswer& a : bounds) {
    if (a.lower >= options.threshold) {
      ++local.accepted_by_bounds;
    } else if (a.upper < options.threshold) {
      ++local.rejected_by_bounds;
    } else {
      needs_refine = true;
    }
  }

  std::vector<PnnAnswer> exact;
  if (needs_refine) {
    exact = ComputeQualificationProbabilities(candidates, q, options.refine, stats);
  }
  auto exact_of = [&](int id) -> const PnnAnswer* {
    for (const PnnAnswer& e : exact) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };

  for (ThresholdAnswer a : bounds) {
    if (a.lower >= options.threshold) {
      result.push_back(a);
      continue;
    }
    if (a.upper < options.threshold) continue;  // certified below threshold
    ++local.refined;
    a.refined = true;
    const PnnAnswer* e = exact_of(a.id);
    a.probability = e != nullptr ? e->probability : 0.0;
    if (a.probability >= options.threshold) result.push_back(a);
  }

  std::sort(result.begin(), result.end(),
            [](const ThresholdAnswer& x, const ThresholdAnswer& y) {
              return x.probability > y.probability ||
                     (x.probability == y.probability && x.id < y.id);
            });
  if (tstats != nullptr) *tstats = local;
  return result;
}

}  // namespace uncertain
}  // namespace uvd
