// Ablation: the adaptive seed-widening refinement (DESIGN.md). Plain
// Sec. IV-B seed regions under-constrain a heavy tail of objects on dense
// data (near seeds have angularly narrow UV-edges), inflating |C_i| and
// construction time; widening with the already-fetched k-NN pool removes
// the tail at negligible cost.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Ablation: adaptive seed widening",
                     "plain Sec. IV-B seeds vs k-NN-pool widening (IC build)");
  std::printf("%10s %12s %14s %12s %14s\n", "|O|", "variant", "T_c(s)",
              "avg |C_i|", "pc(C)(%)");
  for (size_t n : {bench::ScaledCount(20000), bench::ScaledCount(60000)}) {
    for (bool widening : {false, true}) {
      datagen::DatasetOptions opts;
      opts.count = n;
      opts.seed = 42;
      Stats stats;
      core::UVDiagramOptions options;
      options.cr.adaptive_seed_widening = widening;
      auto d = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                   datagen::DomainFor(opts), options, &stats);
      std::printf("%10zu %12s %14.2f %12.1f %14.2f\n", n,
                  widening ? "widened" : "plain", d.build_stats().total_seconds,
                  d.build_stats().avg_cr_objects,
                  100.0 * d.build_stats().c_pruning_ratio);
    }
  }
  return 0;
}
