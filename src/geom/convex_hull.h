// Convex hull (Andrew monotone chain). C-pruning (paper Lemma 3) builds the
// hull of the possible region's boundary vertices.
#ifndef UVD_GEOM_CONVEX_HULL_H_
#define UVD_GEOM_CONVEX_HULL_H_

#include <vector>

#include "geom/point.h"

namespace uvd {
namespace geom {

/// Returns the convex hull of `points` in counter-clockwise order without
/// repeating the first vertex. Collinear points on hull edges are dropped.
/// Degenerate inputs (<= 2 distinct points) return the distinct points.
std::vector<Point> ConvexHull(std::vector<Point> points);

/// True iff p lies inside or on the boundary of the convex polygon `hull`
/// (counter-clockwise vertex order, as produced by ConvexHull).
bool ConvexContains(const std::vector<Point>& hull, const Point& p);

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_CONVEX_HULL_H_
