// Fig. 7(f): T_c vs uncertainty-region size (diameter 20..100) for IC and
// ICR. Paper shape: ICR rises sharply with region size (overlapping
// regions make exact r-object generation harder); IC is relatively
// insensitive.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(f): T_c vs uncertainty-region size",
                     "ICR sensitive to region size, IC insensitive");
  std::printf("%10s %12s %12s\n", "diameter", "ICR(s)", "IC(s)");
  for (double diameter : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    datagen::DatasetOptions opts;
    opts.count = bench::ScaledCount(30000);
    opts.diameter = diameter;
    opts.seed = 42;
    double icr = 0, ic = 0;
    {
      Stats stats;
      core::UVDiagramOptions options;
      options.method = core::BuildMethod::kICR;
      auto d = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                   datagen::DomainFor(opts), options, &stats);
      icr = d.build_stats().total_seconds;
    }
    {
      Stats stats;
      auto d = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                   datagen::DomainFor(opts), {}, &stats);
      ic = d.build_stats().total_seconds;
    }
    std::printf("%10.0f %12.2f %12.2f\n", diameter, icr, ic);
  }
  return 0;
}
