// Tests for the dataset and workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "datagen/real_like.h"
#include "datagen/workload.h"

namespace uvd {
namespace datagen {
namespace {

TEST(GeneratorsTest, UniformBasicProperties) {
  DatasetOptions opts;
  opts.count = 2000;
  opts.seed = 1;
  const auto objs = GenerateUniform(opts);
  ASSERT_EQ(objs.size(), 2000u);
  const geom::Box domain = DomainFor(opts);
  for (size_t i = 0; i < objs.size(); ++i) {
    EXPECT_EQ(objs[i].id(), static_cast<int>(i));
    EXPECT_TRUE(domain.Contains(objs[i].center()));
    EXPECT_DOUBLE_EQ(objs[i].radius(), 20.0);  // diameter 40
    EXPECT_EQ(objs[i].pdf().num_bars(), 20);
  }
}

TEST(GeneratorsTest, DeterministicAcrossCalls) {
  DatasetOptions opts;
  opts.count = 100;
  opts.seed = 7;
  const auto a = GenerateUniform(opts);
  const auto b = GenerateUniform(opts);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].center(), b[i].center());
  }
}

TEST(GeneratorsTest, SeedChangesData) {
  DatasetOptions a, b;
  a.count = b.count = 50;
  a.seed = 1;
  b.seed = 2;
  const auto objs_a = GenerateUniform(a);
  const auto objs_b = GenerateUniform(b);
  bool any_diff = false;
  for (size_t i = 0; i < objs_a.size(); ++i) {
    any_diff |= !(objs_a[i].center() == objs_b[i].center());
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, UniformCoversTheDomain) {
  DatasetOptions opts;
  opts.count = 10000;
  const auto objs = GenerateUniform(opts);
  // Mean should be near the domain center; quadrant counts balanced.
  double mx = 0, my = 0;
  int q1 = 0;
  for (const auto& o : objs) {
    mx += o.center().x;
    my += o.center().y;
    if (o.center().x < 5000 && o.center().y < 5000) ++q1;
  }
  mx /= objs.size();
  my /= objs.size();
  EXPECT_NEAR(mx, 5000, 100);
  EXPECT_NEAR(my, 5000, 100);
  EXPECT_NEAR(q1 / static_cast<double>(objs.size()), 0.25, 0.02);
}

TEST(GeneratorsTest, GaussianCloudIsSkewed) {
  DatasetOptions opts;
  opts.count = 5000;
  const auto tight = GenerateGaussianCloud(opts, 500);
  const auto loose = GenerateGaussianCloud(opts, 3000);
  auto spread = [](const std::vector<uncertain::UncertainObject>& objs) {
    double acc = 0;
    for (const auto& o : objs) {
      acc += geom::DistanceSquared(o.center(), {5000, 5000});
    }
    return std::sqrt(acc / objs.size());
  };
  EXPECT_LT(spread(tight), spread(loose));
  EXPECT_LT(spread(tight), 800.0);
}

TEST(RealLikeTest, PaperCardinalities) {
  EXPECT_EQ(RealDatasetDefaultCount(RealDataset::kUtility), 17000u);
  EXPECT_EQ(RealDatasetDefaultCount(RealDataset::kRoads), 30000u);
  EXPECT_EQ(RealDatasetDefaultCount(RealDataset::kRrlines), 36000u);
  EXPECT_STREQ(RealDatasetName(RealDataset::kUtility), "utility");
  EXPECT_STREQ(RealDatasetName(RealDataset::kRoads), "roads");
  EXPECT_STREQ(RealDatasetName(RealDataset::kRrlines), "rrlines");
}

TEST(RealLikeTest, GeneratesRequestedCount) {
  DatasetOptions opts;
  opts.count = 1234;
  for (RealDataset which :
       {RealDataset::kUtility, RealDataset::kRoads, RealDataset::kRrlines}) {
    const auto objs = GenerateRealLike(which, opts);
    ASSERT_EQ(objs.size(), 1234u) << RealDatasetName(which);
    const geom::Box domain = DomainFor(opts);
    for (const auto& o : objs) {
      EXPECT_TRUE(domain.Contains(o.center()));
    }
  }
}

TEST(RealLikeTest, DataIsNonUniform) {
  // Real-like data must be substantially more clumped than uniform: compare
  // occupancy of a coarse grid.
  DatasetOptions opts;
  opts.count = 8000;
  auto occupancy = [&](const std::vector<uncertain::UncertainObject>& objs) {
    const int g = 20;
    std::vector<int> cells(g * g, 0);
    for (const auto& o : objs) {
      const int cx = std::min(g - 1, static_cast<int>(o.center().x / 10000 * g));
      const int cy = std::min(g - 1, static_cast<int>(o.center().y / 10000 * g));
      cells[static_cast<size_t>(cy * g + cx)] = 1;
    }
    int occ = 0;
    for (int c : cells) occ += c;
    return occ;
  };
  const int uniform_occ = occupancy(GenerateUniform(opts));
  const int utility_occ = occupancy(GenerateRealLike(RealDataset::kUtility, opts));
  const int rrlines_occ = occupancy(GenerateRealLike(RealDataset::kRrlines, opts));
  EXPECT_LT(utility_occ, uniform_occ);
  EXPECT_LT(rrlines_occ, uniform_occ);
}

TEST(WorkloadTest, QueryPointsInsideDomain) {
  const geom::Box domain({0, 0}, {10000, 10000});
  const auto pts = UniformQueryPoints(50, domain, 3);
  ASSERT_EQ(pts.size(), 50u);
  for (const auto& p : pts) EXPECT_TRUE(domain.Contains(p));
}

TEST(WorkloadTest, QueryRegionsInsideDomain) {
  const geom::Box domain({0, 0}, {10000, 10000});
  for (double side : {100.0, 300.0, 500.0}) {
    const auto regions = SquareQueryRegions(20, domain, side, 5);
    ASSERT_EQ(regions.size(), 20u);
    for (const auto& r : regions) {
      EXPECT_TRUE(domain.ContainsBox(r));
      EXPECT_NEAR(r.Width(), side, 1e-9);
      EXPECT_NEAR(r.Height(), side, 1e-9);
    }
  }
}

TEST(WorkloadTest, TrajectoryStaysInDomainWithBoundedSteps) {
  const geom::Box domain({0, 0}, {10000, 10000});
  const double step = 25.0;
  const auto pts = TrajectoryQueryPoints(500, domain, step, 7);
  ASSERT_EQ(pts.size(), 500u);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(domain.Contains(pts[i]));
    if (i > 0) {
      const double dx = pts[i].x - pts[i - 1].x;
      const double dy = pts[i].y - pts[i - 1].y;
      EXPECT_LE(std::sqrt(dx * dx + dy * dy), step + 1e-9) << "i=" << i;
    }
  }
}

TEST(WorkloadTest, TrajectoryIsDeterministicPerSeedAndRoams) {
  const geom::Box domain({0, 0}, {10000, 10000});
  const auto a = TrajectoryQueryPoints(300, domain, 50.0, 11);
  const auto b = TrajectoryQueryPoints(300, domain, 50.0, 11);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
  // The walk should cover real distance, not sit at the start.
  geom::Box extent = geom::Box::Empty();
  for (const auto& p : a) extent.ExpandToInclude(p);
  EXPECT_GT(extent.Width() + extent.Height(), 1000.0);
}

}  // namespace
}  // namespace datagen
}  // namespace uvd
