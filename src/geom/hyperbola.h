// The UV-edge conic of paper Eq. 5: for uncertain objects O_i(c_i, r_i),
// O_j(c_j, r_j), the locus dist(p, c_i) - dist(p, c_j) = r_i + r_j is one
// branch of a hyperbola with foci c_i, c_j, rotated by the focal-axis angle.
// This class carries the explicit rotated-conic coefficients for rendering
// and for validating the radial-envelope machinery against the paper's
// formulation; dominance tests themselves use plain distance comparisons.
#ifndef UVD_GEOM_HYPERBOLA_H_
#define UVD_GEOM_HYPERBOLA_H_

#include <vector>

#include "common/result.h"
#include "geom/circle.h"
#include "geom/point.h"

namespace uvd {
namespace geom {

/// Rotated hyperbola in the paper's normal form
///   x_theta^2 / a^2 - y_theta^2 / b^2 = 1
/// where (x_theta, y_theta) are coordinates in the frame centered at the
/// focal midpoint (f_x, f_y) and rotated by theta (Eq. 5).
class Hyperbola {
 public:
  /// Builds the UV-edge E_i(j). Fails with InvalidArgument when the
  /// uncertainty regions overlap (dist(c_i, c_j) <= r_i + r_j; the paper
  /// then treats the outside region X_i(j) as empty) and when both radii
  /// are zero and the edge degenerates to the perpendicular bisector.
  static Result<Hyperbola> FromObjects(const Circle& oi, const Circle& oj);

  /// Semi-transverse axis a = (r_i + r_j) / 2.
  double a() const { return a_; }
  /// Semi-conjugate axis b = sqrt(c^2 - a^2).
  double b() const { return b_; }
  /// Linear eccentricity c = dist(c_i, c_j) / 2.
  double c() const { return c_; }
  /// Focal midpoint (f_x, f_y).
  Point focal_center() const { return focal_center_; }
  /// Rotation angle of the focal axis (anti-clockwise, radians).
  double theta() const { return theta_; }
  /// Cached cos(theta()) / sin(theta()), fixed at construction.
  double cos_theta() const { return cos_theta_; }
  double sin_theta() const { return sin_theta_; }
  /// Focus belonging to O_i (the pruned object).
  Point focus_i() const { return focus_i_; }
  /// Focus belonging to O_j (the dominating object).
  Point focus_j() const { return focus_j_; }

  /// Left-hand side of Eq. 5 minus 1; zero on the conic.
  double ImplicitValue(const Point& p) const;

  /// Coordinates of p in the rotated focal frame (x along c_i -> c_j).
  Point ToFocalFrame(const Point& p) const;

  /// True iff p lies strictly inside the outside region X_i(j), i.e. the
  /// convex interior of the branch around c_j where O_j always beats O_i.
  bool InOutsideRegion(const Point& p) const;

  /// Point on the UV-edge branch for the hyperbolic parameter t
  /// (x_theta = a*cosh(t), y_theta = b*sinh(t), mapped back to world frame).
  Point PointAt(double t) const;

  /// Polyline sampling of the edge for t in [-t_max, t_max].
  std::vector<Point> Sample(int num_points, double t_max) const;

 private:
  Hyperbola() = default;

  double a_ = 0, b_ = 0, c_ = 0, theta_ = 0;
  double cos_theta_ = 1, sin_theta_ = 0;
  Point focal_center_;
  Point focus_i_, focus_j_;
};

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_HYPERBOLA_H_
