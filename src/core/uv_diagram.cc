#include "core/uv_diagram.h"

namespace uvd {
namespace core {

Result<UVDiagram> UVDiagram::Build(std::vector<uncertain::UncertainObject> objects,
                                   const geom::Box& domain, const Options& options,
                                   Stats* stats) {
  if (objects.empty()) {
    return Status::InvalidArgument("cannot build a UV-diagram over zero objects");
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].id() != static_cast<int>(i)) {
      return Status::InvalidArgument("objects must have ids 0..n-1 in order");
    }
    if (!domain.Contains(objects[i].center())) {
      return Status::InvalidArgument("object center outside the domain");
    }
  }

  UVDiagram d;
  d.objects_ = std::move(objects);
  d.domain_ = domain;
  d.options_ = options;
  // One knob drives every construction kernel: the sub-option structs the
  // finder and index read are aligned here so callers only set kernel_mode.
  d.options_.cr.kernel_mode = options.kernel_mode;
  d.options_.index.kernel_mode = options.kernel_mode;
  if (stats != nullptr) {
    d.stats_ = stats;
  } else {
    d.owned_stats_ = std::make_unique<Stats>();
    d.stats_ = d.owned_stats_.get();
  }

  d.pm_ = std::make_unique<storage::PageManager>(options.page_size, d.stats_);
  d.store_ = std::make_unique<uncertain::ObjectStore>(d.pm_.get());
  UVD_RETURN_NOT_OK(d.store_->BulkLoad(d.objects_, &d.ptrs_));

  UVD_ASSIGN_OR_RETURN(
      rtree::RTree tree,
      rtree::RTree::BulkLoad(d.objects_, d.ptrs_, d.pm_.get(), options.rtree, d.stats_));
  d.rtree_ = std::make_unique<rtree::RTree>(std::move(tree));

  d.index_ = std::make_unique<UVIndex>(domain, d.pm_.get(), d.options_.index, d.stats_);
  BuildPipelineOptions pipeline;
  pipeline.method = options.method;
  pipeline.cr = d.options_.cr;
  pipeline.build_threads = options.build_threads;
  pipeline.stage2 = options.stage2;
  pipeline.stage2_max_depth = options.stage2_max_depth;
  pipeline.stage2_target_subtrees = options.stage2_target_subtrees;
  pipeline.kernel_mode = options.kernel_mode;
  pipeline.traversal_mode = options.traversal_mode;
  pipeline.traversal_tile_size = options.traversal_tile_size;
  pipeline.leaf_memo_capacity = options.leaf_memo_capacity;
  UVD_RETURN_NOT_OK(RunBuildPipeline(d.objects_, d.ptrs_, *d.rtree_, domain, pipeline,
                                     d.index_.get(), &d.build_stats_, d.stats_));
  return d;
}

void UVDiagram::RefreshRtreeIfStale() const {
  MutexLock lock(*rtree_mu_);
  if (!rtree_stale_) return;
  auto tree =
      rtree::RTree::BulkLoad(objects_, ptrs_, pm_.get(), options_.rtree, stats_);
  UVD_CHECK(tree.ok()) << tree.status().ToString();
  *rtree_ = std::move(tree).value();
  rtree_stale_ = false;
}

Status UVDiagram::InsertObject(uncertain::UncertainObject object) {
  if (object.id() != static_cast<int>(objects_.size())) {
    return Status::InvalidArgument("new object id must equal objects().size()");
  }
  if (!domain_.Contains(object.center())) {
    return Status::InvalidArgument("object center outside the domain");
  }
  // Persist the record and register the object.
  auto ptr = store_->Append(object);
  if (!ptr.ok()) return ptr.status();
  objects_.push_back(std::move(object));
  ptrs_.push_back(ptr.value());
  {
    MutexLock lock(*rtree_mu_);
    rtree_stale_ = true;
  }

  // Derive the new object's cr-objects against the full population (the
  // lazily rebuilt R-tree covers every earlier insert).
  RefreshRtreeIfStale();
  const CrObjectFinder finder(objects_, *rtree_, domain_, options_.cr, stats_);
  const CrResult cr = finder.Find(objects_.size() - 1);
  std::vector<geom::Circle> cr_regions;
  cr_regions.reserve(cr.cr_objects.size());
  for (int id : cr.cr_objects) {
    cr_regions.push_back(objects_[static_cast<size_t>(id)].region());
  }
  return index_->InsertObjectLive(objects_.back().region(), objects_.back().id(),
                                  ptrs_.back(), std::move(cr_regions));
}

Result<std::vector<uncertain::PnnAnswer>> UVDiagram::QueryPnn(
    const geom::Point& q, rtree::PnnBreakdown* breakdown) const {
  return EvaluatePnnWithUvIndex(*index_, *store_, q, options_.qualification, stats_,
                                breakdown);
}

Result<std::vector<uncertain::PnnAnswer>> UVDiagram::QueryPnnWithRtree(
    const geom::Point& q, rtree::PnnBreakdown* breakdown) const {
  RefreshRtreeIfStale();
  return rtree::EvaluatePnnWithRtree(*rtree_, *store_, q, options_.qualification,
                                     stats_, breakdown);
}

Result<std::vector<int>> UVDiagram::AnswerObjectIds(const geom::Point& q) const {
  return RetrievePnnAnswerIds(*index_, q, stats_);
}

std::vector<UvPartition> UVDiagram::QueryUvPartitions(const geom::Box& range) const {
  return RetrieveUvPartitions(*index_, range, stats_);
}

Result<UvCellSummary> UVDiagram::QueryUvCellSummary(int object_id) const {
  return RetrieveUvCellSummary(*index_, object_id, /*use_offline_lists=*/true, stats_);
}

}  // namespace core
}  // namespace uvd
