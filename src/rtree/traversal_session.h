// Shared-traversal layer for stage 1 (ISSUE 9): neighboring anchors issue
// k-NN and range queries against nearly identical regions of the R-tree,
// so per-anchor root restarts and leaf re-decodes are massively redundant
// (the divide-and-conquer-of-envelopes observation — spatially adjacent
// subproblems share their lower envelope structure). A TraversalSession is
// a per-worker object reused across a tile of Morton-adjacent anchors that
// keeps three pieces of state between queries:
//
//   * Frontier cut — a set of {node | leaf page} elements that exactly
//     covers the tree. Best-first search runs over the cut instead of the
//     root; expanding a node permanently replaces it with its children, so
//     later anchors skip the upper levels the tile already descended.
//   * Previous-anchor bound — dist_min is 1-Lipschitz in the query point,
//     so B = prev_kth_dist + |q - q_prev| upper-bounds the current k-th
//     distance and cut elements with MinDist(q) > B are skipped outright.
//   * Decoded-leaf memo — a segmented LRU (the admission policy of
//     query::QueryCache, single-threaded here) over DecodeLeafEntries
//     output, so each leaf page is decoded at most once per tile sweep
//     instead of once per anchor.
//   * Entry pool — a materialized superset ball: every entry whose
//     dist_min to pool_center_ is <= pool_radius_. While consecutive
//     anchors stay inside the ball (dist_min is 1-Lipschitz in the query
//     point, so needed_radius + |q - pool_center| <= pool_radius proves
//     coverage), both query kinds are answered by a flat scan of the pool
//     — no heap, no tree descent, no per-entry memo lookups. The pool is
//     rebuilt from the frontier cut when the walk exits the ball
//     (every ~pool_margin * radius of Morton travel).
//
// Determinism: KNearest returns the k canonically smallest entries by
// (dist_min, id) and CentersInRange an order-insensitive candidate set —
// both pure functions of the query, independent of session state, tile
// size and anchor order (traversal_session_test pins this against fresh
// RTree traversals). Only the traversal-effort tickers
// (kRtreeNodeVisits / kRtreeLeafReads) differ from the per-anchor oracle.
//
// Thread safety: none — one session per worker, by design.
#ifndef UVD_RTREE_TRAVERSAL_SESSION_H_
#define UVD_RTREE_TRAVERSAL_SESSION_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "geom/point.h"
#include "rtree/leaf_codec.h"
#include "rtree/rtree.h"

namespace uvd {
namespace rtree {

/// How stage 1 traverses the R-tree (core/build_pipeline.h wires it
/// through CrObjectFinder). Both modes produce bitwise-identical candidate
/// sets, serialized indexes and PNN digests; kPerAnchor restarts every
/// query from the root and is the determinism oracle.
enum class TraversalMode {
  kPerAnchor,  ///< Fresh root-to-leaf traversal per anchor (oracle).
  kShared,     ///< Tiled TraversalSession reuse (default).
};

const char* TraversalModeName(TraversalMode m);

struct TraversalSessionOptions {
  /// Decoded leaves the memo retains (segmented LRU). The default covers
  /// every leaf of a 25K-object tree; smaller values trade decode repeats
  /// for memory (one leaf ~ fanout * sizeof(LeafEntry) ~ 5.6 KB).
  size_t leaf_memo_capacity = 256;
  /// Fraction of the memo reserved for re-referenced leaves (see
  /// query::QueryCache). 0 disables the protected segment (plain LRU).
  double protected_fraction = 0.8;
  /// Slack factor on the entry pool's radius beyond the radius the
  /// triggering query needs. Larger values rebuild less often but make
  /// every per-anchor pool scan proportionally longer (pool area grows
  /// with (1 + margin)^2). Purely a work knob — results are identical
  /// for any value >= 0. The default trades a ~4x-area pool for a
  /// rebuild only once per k-NN-radius of Morton travel.
  double pool_margin = 1.0;
};

/// \brief Reusable k-NN / range traversal state over one immutable RTree.
class TraversalSession {
 public:
  explicit TraversalSession(const RTree& tree,
                            const TraversalSessionOptions& options = {},
                            Stats* stats = nullptr);

  /// The k entries with smallest (dist_min, id) — byte-identical to
  /// RTree::KNearestByDistMin for every session state. `out` is cleared.
  void KNearest(const geom::Point& q, int k, std::vector<LeafEntry>* out);

  /// Entries whose centers lie within Cir(center, radius) — the same SET
  /// RTree::CentersInRange returns (element order may differ; Algorithm 2
  /// sorts the ids it keeps, so the order is never observable downstream).
  /// `out` is cleared.
  void CentersInRange(const geom::Point& center, double radius,
                      std::vector<LeafEntry>* out);

  /// Drops the frontier cut back to {root} and forgets the previous-anchor
  /// bound. The leaf memo survives (capacity-bounded either way).
  void Reset();

  size_t memo_hits() const { return memo_hits_; }
  size_t memo_misses() const { return memo_misses_; }
  size_t memo_size() const { return memo_map_.size(); }
  /// Live (non-tombstoned) cut elements.
  size_t cut_size() const { return cut_.size() - cut_dead_; }
  /// Wall seconds spent decoding leaf pages (memo misses).
  double decode_seconds() const { return decode_seconds_; }
  /// Entries currently materialized in the pool (0 when invalid).
  size_t pool_size() const { return pool_radius_ < 0.0 ? 0 : pool_.size(); }
  /// Times the pool was (re)built from the frontier cut.
  size_t pool_rebuilds() const { return pool_rebuilds_; }
  /// Queries answered by a pool scan (vs heap traversal / cut sweep).
  size_t pool_serves() const { return pool_serves_; }

 private:
  enum : uint8_t { kNode = 0, kLeafPage = 1, kEntry = 2, kDead = 3 };

  struct CutElement {
    uint32_t index;
    uint8_t kind;  // kNode or kLeafPage (kDead = tombstone)
  };

  /// Compact frontier/heap element: entries reference the decoded leaf by
  /// (leaf index, position) instead of carrying the 36-byte tuple, so the
  /// per-anchor heap stays cache-resident.
  struct HeapItem {
    double key;
    uint32_t index;  // node / leaf index
    int32_t id;      // entry id (kind kEntry); -1 otherwise
    uint32_t pos;    // cut position (kNode) or entry position (kEntry)
    uint8_t kind;

    /// Canonical total order, matching rtree::KnnHeapItem: at equal keys
    /// containers pop before entries and entries tie-break by id, which
    /// makes the pop sequence of entries algorithm-independent.
    bool operator>(const HeapItem& o) const {
      if (key != o.key) return key > o.key;
      if (kind != o.kind) return kind > o.kind;
      if (kind == kEntry) return id > o.id;
      return index > o.index;
    }
  };

  struct MemoEntry {
    uint32_t leaf;
    std::vector<LeafEntry> entries;
  };
  struct MemoSlot {
    std::list<MemoEntry>::iterator it;
    bool is_protected;
  };

  /// Decoded entries of `leaf`, via the memo. The reference is valid until
  /// the next GetLeaf call (which may evict it).
  const std::vector<LeafEntry>& GetLeaf(uint32_t leaf);

  /// Tombstones cut_[pos] and appends the node's children to the cut.
  /// Returns the position of the first appended child.
  size_t ExpandCutNode(size_t pos);

  void CompactCut();

  /// True when every entry a query of `needed` radius around `q` can
  /// return provably lies in the pool (1-Lipschitz transfer bound, with a
  /// relative guard band absorbing floating-point triangle-inequality
  /// slop — conservative: may say no near the boundary, never wrongly yes).
  bool PoolCovers(const geom::Point& q, double needed) const;

  /// Re-centers the pool on `center` and re-collects every entry with
  /// dist_min(center) <= radius by sweeping (and refining) the cut.
  void RebuildPool(const geom::Point& center, double radius);

  /// Answers KNearest by flat pool scan: the k canonically smallest
  /// (dist_min, id) among pool entries. Pre-condition: PoolCovers(q, bound)
  /// with bound >= the true k-th distance. Returns false (out untouched
  /// beyond clear) if the pool unexpectedly holds fewer than k candidates;
  /// the caller falls back to the heap traversal.
  bool ServeFromPool(const geom::Point& q, int k, double bound,
                     std::vector<LeafEntry>* out);

  /// The original best-first traversal over the cut (the cold-start and
  /// fallback path; also the code the pool's output is defined against).
  void HeapKNearest(const geom::Point& q, int k, std::vector<LeafEntry>* out);

  const RTree& tree_;
  TraversalSessionOptions options_;
  Stats* stats_;

  std::vector<CutElement> cut_;
  size_t cut_dead_ = 0;
  std::vector<HeapItem> heap_;  // reused across KNearest calls

  // Entry pool (see the header comment). pool_radius_ < 0 marks it
  // invalid; last_window_ remembers the largest radius recently requested
  // so a rebuild triggered by the (smaller) k-NN bound already sizes the
  // ball for the range query that follows at the same anchor.
  std::vector<LeafEntry> pool_;
  geom::Point pool_center_;
  double pool_radius_ = -1.0;
  double last_window_ = 0.0;
  struct PoolCandidate {
    double key;
    int32_t id;
    uint32_t pos;  // index into pool_
  };
  std::vector<PoolCandidate> pool_cand_;  // reused across ServeFromPool calls
  size_t pool_rebuilds_ = 0;
  size_t pool_serves_ = 0;

  // Previous-anchor bound (valid only when the last KNearest returned a
  // full k entries).
  geom::Point prev_q_;
  double prev_kth_ = 0.0;
  int prev_k_ = 0;
  bool prev_valid_ = false;

  // Segmented-LRU decoded-leaf memo (query_cache.h's policy, lock-free
  // single-owner edition). Most-recently-used at the front of each list;
  // the map is never iterated (scripts/check_determinism.py).
  size_t protected_capacity_ = 0;
  std::list<MemoEntry> memo_probation_;
  std::list<MemoEntry> memo_protected_;
  std::unordered_map<uint32_t, MemoSlot> memo_map_;
  std::vector<LeafEntry> decode_buf_;
  size_t memo_hits_ = 0;
  size_t memo_misses_ = 0;
  double decode_seconds_ = 0.0;
};

}  // namespace rtree
}  // namespace uvd

#endif  // UVD_RTREE_TRAVERSAL_SESSION_H_
