// Parallel staged build pipeline: construction time vs worker count for
// Basic / ICR / IC on the Fig. 7(a) workload. Stage 1 (pruning +
// refinement) fans out across build_threads; stage 2 (ordered quad-tree
// insertion) is serialized for determinism, so the attainable speedup is
// bounded by the stage-2 fraction (Amdahl) — Basic and ICR, whose cost is
// dominated by stage 1, scale best.
#include "bench_common.h"

#include "common/thread_pool.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Parallel construction: T_c vs build_threads",
                     "staged pipeline over the Fig. 7(a) workload");
  std::printf("hardware concurrency: %d\n\n", ThreadPool::DefaultThreads());

  const int thread_sweep[] = {1, 2, 4, 8};
  const core::BuildMethod methods[] = {core::BuildMethod::kBasic,
                                       core::BuildMethod::kICR,
                                       core::BuildMethod::kIC};

  for (core::BuildMethod method : methods) {
    datagen::DatasetOptions opts;
    // Basic is O(n) envelope insertions per object; run it on a reduced
    // size, the pruned methods on the scaled Fig. 7(a) size.
    opts.count = method == core::BuildMethod::kBasic
                     ? bench::ScaledCount(2000)
                     : bench::ScaledCount(10000);
    opts.seed = 42;
    std::printf("%s (|O| = %zu)\n", core::BuildMethodName(method), opts.count);
    std::printf("%10s %14s %10s %16s\n", "threads", "T_c(s)", "speedup",
                "stage1 CPU (s)");
    double serial_seconds = 0.0;
    for (int threads : thread_sweep) {
      Stats stats;
      core::UVDiagramOptions options;
      options.method = method;
      options.build_threads = threads;
      auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                         datagen::DomainFor(opts), options, &stats);
      const core::BuildStats& bs = diagram.build_stats();
      if (threads == 1) serial_seconds = bs.total_seconds;
      const double stage1_cpu =
          bs.seed_seconds + bs.pruning_seconds + bs.robject_seconds;
      std::printf("%10d %14.2f %9.2fx %16.2f\n", threads, bs.total_seconds,
                  serial_seconds / bs.total_seconds, stage1_cpu);
    }
    std::printf("\n");
  }
  std::printf("Every row builds a byte-identical index (see\n"
              "core/build_pipeline.h for the determinism guarantee).\n");
  return 0;
}
