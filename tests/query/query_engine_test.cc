// Batch-vs-serial parity and determinism of the concurrent query engine:
// for random heterogeneous batches, QueryEngine answers must be
// element-wise bitwise-identical to looping the UVDiagram query methods,
// across thread counts {1, 2, 8} and cache on/off.
#include "query/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>

#include "common/random.h"
#include "datagen/generators.h"
#include "datagen/workload.h"

namespace uvd {
namespace query {
namespace {

core::UVDiagram BuildDiagram(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  auto objects = datagen::GenerateUniform(opts);
  return core::UVDiagram::Build(std::move(objects), datagen::DomainFor(opts))
      .ValueOrDie();
}

/// A mixed batch exercising all four query kinds.
QueryBatch MakeMixedBatch(const core::UVDiagram& diagram, int count, uint64_t seed) {
  Rng rng(seed);
  const geom::Box& domain = diagram.domain();
  QueryBatch batch;
  batch.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const geom::Point p{rng.Uniform(domain.lo.x, domain.hi.x),
                        rng.Uniform(domain.lo.y, domain.hi.y)};
    switch (rng.UniformInt(0, 3)) {
      case 0:
        batch.push_back(Query::Pnn(p));
        break;
      case 1:
        batch.push_back(Query::AnswerIds(p));
        break;
      case 2: {
        const double side = rng.Uniform(50, 400);
        const geom::Point lo{rng.Uniform(domain.lo.x, domain.hi.x - side),
                             rng.Uniform(domain.lo.y, domain.hi.y - side)};
        batch.push_back(Query::UvPartitions(
            geom::Box(lo, {lo.x + side, lo.y + side})));
        break;
      }
      default:
        batch.push_back(Query::CellSummary(static_cast<int>(
            rng.UniformInt(0, static_cast<int64_t>(diagram.objects().size()) - 1))));
        break;
    }
  }
  return batch;
}

/// Serial reference: the existing one-at-a-time UVDiagram methods.
std::vector<QueryResult> SerialReference(const core::UVDiagram& diagram,
                                         const QueryBatch& batch) {
  std::vector<QueryResult> results(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const Query& q = batch[i];
    QueryResult& r = results[i];
    switch (q.kind) {
      case QueryKind::kPnn: {
        auto a = diagram.QueryPnn(q.point);
        if (a.ok()) r.pnn = std::move(a).value();
        else r.status = a.status();
        break;
      }
      case QueryKind::kAnswerIds: {
        auto a = diagram.AnswerObjectIds(q.point);
        if (a.ok()) r.answer_ids = std::move(a).value();
        else r.status = a.status();
        break;
      }
      case QueryKind::kUvPartitions:
        r.partitions = diagram.QueryUvPartitions(q.range);
        break;
      case QueryKind::kCellSummary: {
        auto a = diagram.QueryUvCellSummary(q.object_id);
        if (a.ok()) r.cell_summary = a.value();
        else r.status = a.status();
        break;
      }
    }
  }
  return results;
}

/// Bitwise (exact ==) element-wise comparison of two result lists.
void ExpectIdentical(const std::vector<QueryResult>& actual,
                     const std::vector<QueryResult>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    const QueryResult& a = actual[i];
    const QueryResult& e = expected[i];
    ASSERT_EQ(a.status.ok(), e.status.ok()) << "query " << i;
    ASSERT_EQ(a.pnn.size(), e.pnn.size()) << "query " << i;
    for (size_t k = 0; k < a.pnn.size(); ++k) {
      EXPECT_EQ(a.pnn[k].id, e.pnn[k].id) << "query " << i;
      EXPECT_EQ(a.pnn[k].probability, e.pnn[k].probability) << "query " << i;
    }
    EXPECT_EQ(a.answer_ids, e.answer_ids) << "query " << i;
    ASSERT_EQ(a.partitions.size(), e.partitions.size()) << "query " << i;
    for (size_t k = 0; k < a.partitions.size(); ++k) {
      EXPECT_EQ(a.partitions[k].object_count, e.partitions[k].object_count);
      EXPECT_EQ(a.partitions[k].density, e.partitions[k].density);
      EXPECT_EQ(a.partitions[k].region.lo.x, e.partitions[k].region.lo.x);
      EXPECT_EQ(a.partitions[k].region.hi.y, e.partitions[k].region.hi.y);
    }
    EXPECT_EQ(a.cell_summary.area, e.cell_summary.area) << "query " << i;
    EXPECT_EQ(a.cell_summary.num_leaves, e.cell_summary.num_leaves) << "query " << i;
  }
}

TEST(QueryEngineTest, BatchMatchesSerialAcrossThreadsAndCache) {
  const core::UVDiagram diagram = BuildDiagram(900, 3);
  const QueryBatch batch = MakeMixedBatch(diagram, 120, 17);
  const auto expected = SerialReference(diagram, batch);
  for (const int threads : {1, 2, 8}) {
    for (const bool cache : {false, true}) {
      QueryEngineOptions opts;
      opts.threads = threads;
      opts.enable_cache = cache;
      QueryEngine engine(diagram, opts);
      const auto results = engine.ExecuteBatch(batch);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " cache=" + std::to_string(cache));
      ExpectIdentical(results, expected);
    }
  }
}

TEST(QueryEngineTest, PnnStreamParityOnTrajectory) {
  const core::UVDiagram diagram = BuildDiagram(700, 5);
  const auto points =
      datagen::TrajectoryQueryPoints(200, diagram.domain(), 30.0, 11);
  QueryBatch batch;
  for (const auto& p : points) batch.push_back(Query::Pnn(p));
  const auto expected = SerialReference(diagram, batch);
  for (const int threads : {2, 8}) {
    QueryEngineOptions opts;
    opts.threads = threads;
    QueryEngine engine(diagram, opts);
    ExpectIdentical(engine.ExecuteBatch(batch), expected);
  }
}

TEST(QueryEngineTest, PerQueryErrorsDoNotFailTheBatch) {
  const core::UVDiagram diagram = BuildDiagram(600, 7);
  QueryBatch batch;
  batch.push_back(Query::Pnn({5000, 5000}));
  batch.push_back(Query::Pnn({-1e9, 0}));  // outside the domain
  batch.push_back(Query::CellSummary(1 << 28));  // no such object
  batch.push_back(Query::AnswerIds({4000, 4000}));
  QueryEngine engine(diagram, {});
  const auto results = engine.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_FALSE(results[2].status.ok());
  EXPECT_TRUE(results[3].status.ok());
  EXPECT_FALSE(results[0].pnn.empty());
  EXPECT_FALSE(results[3].answer_ids.empty());
}

TEST(QueryEngineTest, CacheCutsLeafReadsOnTrajectoryWorkload) {
  const core::UVDiagram diagram = BuildDiagram(900, 13);
  const auto points =
      datagen::TrajectoryQueryPoints(300, diagram.domain(), 20.0, 19);
  QueryBatch batch;
  for (const auto& p : points) batch.push_back(Query::Pnn(p));

  QueryEngineOptions uncached;
  uncached.threads = 2;
  uncached.enable_cache = false;
  QueryEngine cold(diagram, uncached);
  diagram.stats().Reset();
  const auto expected = cold.ExecuteBatch(batch);
  const uint64_t cold_leaf_reads = diagram.stats().Get(Ticker::kUvIndexLeafReads);
  EXPECT_EQ(diagram.stats().Get(Ticker::kQueryCacheHits), 0u);

  QueryEngineOptions cached;
  cached.threads = 2;
  QueryEngine warm(diagram, cached);
  diagram.stats().Reset();
  const auto results = warm.ExecuteBatch(batch);
  const uint64_t warm_leaf_reads = diagram.stats().Get(Ticker::kUvIndexLeafReads);
  const uint64_t hits = diagram.stats().Get(Ticker::kQueryCacheHits);
  const uint64_t misses = diagram.stats().Get(Ticker::kQueryCacheMisses);

  // Co-located probes hit the cache and skip the page chain; answers stay
  // bitwise identical (the determinism guarantee).
  EXPECT_LT(warm_leaf_reads, cold_leaf_reads);
  EXPECT_GT(hits, misses);
  ExpectIdentical(results, expected);
}

TEST(QueryEngineTest, WorkerShardsMergeIntoDiagramStats) {
  const core::UVDiagram diagram = BuildDiagram(700, 23);
  QueryBatch batch = MakeMixedBatch(diagram, 64, 29);
  QueryEngineOptions opts;
  opts.threads = 4;
  QueryEngine engine(diagram, opts);
  diagram.stats().Reset();
  engine.ExecuteBatch(batch);

  ASSERT_EQ(engine.worker_stats().size(), 4u);
  uint64_t shard_total = 0;
  for (const Stats& shard : engine.worker_stats()) {
    shard_total += shard.Get(Ticker::kQueryCacheHits) +
                   shard.Get(Ticker::kQueryCacheMisses);
  }
  // Every cache lookup was billed to exactly one worker shard, and the
  // shards were merged into the diagram's Stats (the builder's story).
  EXPECT_EQ(shard_total, diagram.stats().Get(Ticker::kQueryCacheHits) +
                             diagram.stats().Get(Ticker::kQueryCacheMisses));
  EXPECT_GT(shard_total, 0u);
}

TEST(QueryEngineTest, ConcurrentExecuteBatchCallersAreSafeAndCorrect) {
  // Regression: ExecuteBatch used to reassign the shared worker_stats_
  // member from every call, so two threads batching on one engine raced
  // and corrupted the merged Stats. Shards are call-local now; this test
  // runs under the TSan CI job to keep it that way.
  const core::UVDiagram diagram = BuildDiagram(700, 37);
  const QueryBatch batch_a = MakeMixedBatch(diagram, 80, 41);
  const QueryBatch batch_b = MakeMixedBatch(diagram, 80, 43);
  const auto expected_a = SerialReference(diagram, batch_a);
  const auto expected_b = SerialReference(diagram, batch_b);

  QueryEngineOptions opts;
  opts.threads = 4;
  QueryEngine engine(diagram, opts);
  diagram.stats().Reset();

  std::vector<std::vector<QueryResult>> got(4);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      got[static_cast<size_t>(t)] =
          engine.ExecuteBatch(t % 2 == 0 ? batch_a : batch_b);
    });
  }
  for (auto& thread : callers) thread.join();

  for (int t = 0; t < 4; ++t) {
    SCOPED_TRACE("caller " + std::to_string(t));
    ExpectIdentical(got[static_cast<size_t>(t)],
                    t % 2 == 0 ? expected_a : expected_b);
  }
  // Every caller's shards were merged into the diagram's Stats: four
  // batches of lookups landed (a lost merge would undercount well below
  // one batch's worth of point queries).
  EXPECT_GE(diagram.stats().Get(Ticker::kQueryCacheHits) +
                diagram.stats().Get(Ticker::kQueryCacheMisses),
            batch_a.size());
}

TEST(QueryEngineTest, InvalidateCacheServesPostInsertState) {
  core::UVDiagram diagram = BuildDiagram(600, 31);
  QueryEngineOptions opts;
  opts.threads = 1;
  QueryEngine engine(diagram, opts);
  const geom::Point q{5000, 5000};
  QueryBatch batch = {Query::AnswerIds(q)};
  (void)engine.ExecuteBatch(batch);  // populate the cache

  // A new object right at q must show up after invalidation.
  const int new_id = static_cast<int>(diagram.objects().size());
  ASSERT_TRUE(diagram
                  .InsertObject(uncertain::UncertainObject::WithGaussianPdf(
                      new_id, {q, 30}))
                  .ok());
  engine.InvalidateCache();
  const auto results = engine.ExecuteBatch(batch);
  ASSERT_TRUE(results[0].status.ok());
  const auto& ids = results[0].answer_ids;
  EXPECT_NE(std::find(ids.begin(), ids.end(), new_id), ids.end());
}

}  // namespace
}  // namespace query
}  // namespace uvd
