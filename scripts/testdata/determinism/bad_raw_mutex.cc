// Self-test fixture: raw synchronization primitives. Every marked line
// must be flagged `raw-mutex` — lock-guarded state must use the annotated
// uvd::Mutex wrapper so the Clang thread-safety wall can check it. The
// unjustified suppression at the bottom must ALSO be flagged.
#include <mutex>  // BAD: include of <mutex> outside the wrapper header

namespace fixture {

class Bad {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);  // BAD: raw lock_guard
    ++hits_;
  }

 private:
  std::mutex mu_;  // BAD: raw mutex member — the analysis cannot see it
  std::condition_variable cv_;  // BAD: raw condition variable
  unsigned long hits_ = 0;
};

// BAD: a suppression with no justification is itself a finding.
// uvd-lint: allow(raw-mutex)
using Unjustified = std::shared_mutex;

}  // namespace fixture
