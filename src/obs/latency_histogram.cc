#include "obs/latency_histogram.h"

#include <chrono>

namespace uvd {
namespace obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

bool MetricsEnabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - ProcessEpoch())
                                   .count());
}

uint32_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<uint32_t>(value);
  const int msb = 63 - __builtin_clzll(value);
  const int octave = msb - kSubBucketBits;  // 0 for [16, 32), 1 for [32, 64)...
  const uint32_t sub = static_cast<uint32_t>((value >> octave) & (kSubBucketCount - 1));
  return static_cast<uint32_t>(kSubBucketCount) +
         static_cast<uint32_t>(octave) * static_cast<uint32_t>(kSubBucketCount) + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(uint32_t bucket) {
  if (bucket < kSubBucketCount) return bucket;
  const uint32_t octave = (bucket - static_cast<uint32_t>(kSubBucketCount)) /
                          static_cast<uint32_t>(kSubBucketCount);
  const uint32_t sub = (bucket - static_cast<uint32_t>(kSubBucketCount)) %
                       static_cast<uint32_t>(kSubBucketCount);
  return (kSubBucketCount + sub) << octave;
}

uint64_t LatencyHistogram::BucketUpperBound(uint32_t bucket) {
  if (bucket + 1 >= kNumBuckets) return ~0ull;
  return BucketLowerBound(bucket + 1) - 1;
}

void LatencyHistogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketIndex(value)].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(value * count, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const uint64_t omin = other.min_.load(std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (omin < cur &&
         !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
  const uint64_t omax = other.max_.load(std::memory_order_relaxed);
  cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::CopyFrom(const LatencyHistogram& other) {
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(other.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  min_.store(other.min_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

uint64_t LatencyHistogram::MinValue() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

double LatencyHistogram::Mean() const {
  const uint64_t n = TotalCount();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

uint64_t LatencyHistogram::ValueAtPercentile(double percentile) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0;
  if (percentile < 0.0) percentile = 0.0;
  if (percentile > 100.0) percentile = 100.0;
  // Rank of the requested percentile, at least 1 (p0 = first observation).
  uint64_t target = static_cast<uint64_t>(percentile / 100.0 *
                                          static_cast<double>(total) + 0.5);
  if (target == 0) target = 1;
  if (target > total) target = total;
  uint64_t cumulative = 0;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      uint64_t v = BucketUpperBound(b);
      const uint64_t lo = MinValue();
      const uint64_t hi = MaxValue();
      if (v < lo) v = lo;
      if (v > hi) v = hi;
      return v;
    }
  }
  return MaxValue();
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot s;
  s.count = TotalCount();
  s.sum = Sum();
  s.min = MinValue();
  s.max = MaxValue();
  s.mean = Mean();
  s.p50 = ValueAtPercentile(50.0);
  s.p90 = ValueAtPercentile(90.0);
  s.p99 = ValueAtPercentile(99.0);
  s.p999 = ValueAtPercentile(99.9);
  return s;
}

}  // namespace obs
}  // namespace uvd
