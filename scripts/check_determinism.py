#!/usr/bin/env python3
"""Determinism linter: statically rejects source patterns that can break
the repo's bitwise-determinism contract (docs/ARCHITECTURE.md,
"Determinism guarantees"; rule catalog in docs/STATIC_ANALYSIS.md).

The serving stack promises byte-identical serialized indexes and query
answers across thread counts, kernel modes and shard layouts. TSan and the
digest tests enforce that dynamically — but only for interleavings and
configurations a test happens to reach. This linter bans the *sources* of
nondeterminism at lint time, so a violation fails CI (and local ctest:
`determinism_lint`) before any test needs to catch it misbehaving.

Rules
-----
  unordered-iteration   Iterating a std::unordered_* container. Hash-map
                        iteration order is implementation- and
                        address-dependent; anything it feeds (serialization,
                        digests, exports, even ticker evolution) loses
                        determinism. Look-ups are fine; to iterate,
                        materialize sorted keys first.
  nondeterministic-rng  rand()/srand(), std::random_device, time()- or
                        clock-seeded RNG anywhere outside src/datagen/.
                        Library code must take explicit seeds
                        (common/random.h); datagen may roll workload seeds.
  address-keyed-map     std::map/set (or unordered) keyed on a pointer
                        type: iteration order then follows allocation
                        addresses, which vary run to run.
  fast-math             -ffast-math / -Ofast / -funsafe-math-optimizations /
                        -fassociative-math / -ffp-contract=fast in any
                        CMake file. The kernel layer's scalar-oracle
                        contract requires exact, ordered FP arithmetic.
  raw-mutex             std::mutex / std::shared_mutex /
                        std::condition_variable / std::lock_guard /
                        std::unique_lock (or including their headers)
                        outside common/thread_annotations.h. Lock-guarded
                        state must use the annotated Mutex wrapper so the
                        Clang thread-safety wall can check the discipline.

Suppression: append `// uvd-lint: allow(<rule>) <justification>` to the
flagged line (or the line directly above it). An empty justification is
itself an error — suppressions must say why.

Usage: check_determinism.py [--root REPO_ROOT] [--list-rules]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, NamedTuple


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULES = (
    "unordered-iteration",
    "nondeterministic-rng",
    "address-keyed-map",
    "fast-math",
    "raw-mutex",
)

_ALLOW_RE = re.compile(r"//\s*uvd-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

# Variable/member declarations of unordered containers, e.g.
#   std::unordered_map<uint32_t, Slot> map;
_UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*(?:;|=|\{|UVD_)"
)
# Range-for: captures the range expression.
_RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:()]*:\s*([^)]+)\)")
# Iterator-loop over x.begin() / x->begin().
_BEGIN_LOOP_RE = re.compile(r"\bfor\s*\([^;]*=\s*([\w.>\-]+?)(?:\.|->)begin\s*\(")

_RNG_TOKENS = (
    (re.compile(r"(?<!\w)(?:(?:std)?::)?s?rand\s*\("),
     "rand()/srand() is seeded process state"),
    (re.compile(r"\brandom_device\b"), "std::random_device is nondeterministic"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time()-seeded state"),
)
# A clock read feeding an RNG seed on the same line.
_CLOCK_SEED_RE = re.compile(r"(?:mt19937|minstd|seed)\S*.*::now\s*\(\s*\)|::now\s*\(\s*\).*(?:mt19937|minstd|seed)")

# map/set with a pointer-typed KEY (first template argument contains '*').
_PTR_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|multimap|set|multiset)\s*<\s*(?:const\s+)?[\w:<>]+\s*\*"
)

_FAST_MATH_RE = re.compile(
    r"-ffast-math|-Ofast\b|-funsafe-math-optimizations|-fassociative-math"
    r"|-ffp-contract=fast"
)

_RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)


def _strip_line_comment(line: str) -> str:
    """Removes // comments (string literals with // are rare enough in this
    codebase that the simple cut is acceptable for a linter)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def _allowance(lines: List[str], idx: int) -> tuple:
    """Returns (rule, justification) if line idx or the line above carries
    an allow marker, else (None, None)."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = _ALLOW_RE.search(lines[probe])
            if m:
                return m.group(1), m.group(2).strip()
    return None, None


def _emit(findings: List[Finding], lines: List[str], path: str, idx: int,
          rule: str, message: str) -> None:
    allowed_rule, justification = _allowance(lines, idx)
    if allowed_rule == rule:
        if justification:
            return  # suppressed with a reason
        findings.append(Finding(path, idx + 1, rule,
                                "suppression without justification: "
                                "`uvd-lint: allow(...)` must state why"))
        return
    findings.append(Finding(path, idx + 1, rule, message))


def lint_cc_source(path: str, text: str, *, allow_rng: bool = False,
                   allow_raw_mutex: bool = False) -> List[Finding]:
    """Lints one C++ source/header. `allow_rng` is set for src/datagen/;
    `allow_raw_mutex` for common/thread_annotations.h itself."""
    findings: List[Finding] = []
    lines = text.splitlines()

    unordered_names = set()
    for line in lines:
        for m in _UNORDERED_DECL_RE.finditer(_strip_line_comment(line)):
            unordered_names.add(m.group(1))

    for idx, raw_line in enumerate(lines):
        line = _strip_line_comment(raw_line)

        for m in _RANGE_FOR_RE.finditer(line):
            range_expr = m.group(1).strip()
            tail = re.split(r"\.|->", range_expr)[-1].strip().rstrip(")")
            if "unordered_" in range_expr or tail in unordered_names:
                _emit(findings, lines, path, idx, "unordered-iteration",
                      f"range-for over unordered container `{range_expr}`: "
                      "iteration order is nondeterministic; iterate a sorted "
                      "materialization instead")
        m = _BEGIN_LOOP_RE.search(line)
        if m:
            tail = re.split(r"\.|->", m.group(1))[-1]
            if tail in unordered_names:
                _emit(findings, lines, path, idx, "unordered-iteration",
                      f"iterator loop over unordered container `{m.group(1)}`")

        if not allow_rng:
            for pattern, why in _RNG_TOKENS:
                if pattern.search(line):
                    _emit(findings, lines, path, idx, "nondeterministic-rng",
                          f"{why}; take an explicit seed (common/random.h) — "
                          "only src/datagen/ may roll seeds")
            if _CLOCK_SEED_RE.search(line):
                _emit(findings, lines, path, idx, "nondeterministic-rng",
                      "clock-seeded RNG; take an explicit seed instead")

        if _PTR_KEY_RE.search(line):
            _emit(findings, lines, path, idx, "address-keyed-map",
                  "container keyed on a pointer: iteration order follows "
                  "allocation addresses; key on a stable id instead")

        if not allow_raw_mutex and _RAW_MUTEX_RE.search(line):
            _emit(findings, lines, path, idx, "raw-mutex",
                  "raw <mutex>/<condition_variable> primitive: use the "
                  "annotated uvd::Mutex/MutexLock/CondVar wrappers "
                  "(common/thread_annotations.h) so the Clang thread-safety "
                  "wall can check the lock discipline")

    return findings


def lint_cmake(path: str, text: str) -> List[Finding]:
    findings: List[Finding] = []
    lines = text.splitlines()
    for idx, raw_line in enumerate(lines):
        line = raw_line.split("#", 1)[0]
        m = _FAST_MATH_RE.search(line)
        if m:
            _emit(findings, lines, path, idx, "fast-math",
                  f"`{m.group(0)}` licenses FP reassociation/contraction; "
                  "it breaks the scalar-oracle bitwise contract "
                  "(src/geom/batch/)")
    return findings


def lint_tree(root: pathlib.Path) -> List[Finding]:
    findings: List[Finding] = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_cc_source(
            rel, path.read_text(encoding="utf-8"),
            allow_rng=rel.startswith("src/datagen/"),
            allow_raw_mutex=(rel == "src/common/thread_annotations.h")))
    cmake_files = [root / "CMakeLists.txt"]
    for sub in ("src", "tests", "bench", "examples", "cmake"):
        base = root / sub
        if base.exists():
            cmake_files.extend(base.rglob("CMakeLists.txt"))
            cmake_files.extend(base.rglob("*.cmake"))
    for path in sorted(set(cmake_files)):
        if path.exists():
            findings.extend(lint_cmake(path.relative_to(root).as_posix(),
                                       path.read_text(encoding="utf-8")))
    return findings


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of scripts/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    if not (args.root / "src").is_dir():
        print(f"error: {args.root} does not look like the repo root "
              "(no src/)", file=sys.stderr)
        return 2

    findings = lint_tree(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\ncheck_determinism: {len(findings)} finding(s). "
              "See docs/STATIC_ANALYSIS.md for the rule catalog and the "
              "suppression syntax.", file=sys.stderr)
        return 1
    print("check_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
