// Sharded serving throughput: queries/sec for a moving-NN PNN stream
// routed across K sub-domain UV-indexes (src/shard/), swept over the shard
// count. Each shard's engine runs single-threaded; parallelism comes from
// the router fanning sub-batches across shards, so queries/sec scaling
// with K is the sharding win itself, not intra-shard threading.
//
// Like bench_batched_queries, the system is put into the paper's
// disk-bound regime for real: PageManager::SetSimulatedReadLatencyUs makes
// every page read block, so shards demonstrably hide each other's I/O.
// Every configuration's PNN answers are checked bitwise-identical (FNV
// hash over ids + probability bits) against an unsharded baseline — the
// border-correctness guarantee under load, cut-line probes included.
//
// Flags (see bench_common.h): --query_threads=N (per-shard engine workers,
// default 1) --batch_size=N --sim_io_us=N --smoke, plus --json <path> to
// persist per-query latency percentiles through BOTH serving paths — the
// unsharded QueryEngine and the ShardRouter per shard count (exact
// cross-shard MergedKindLatency) — with the final configuration's full
// MetricsRegistry snapshot embedded. BENCH_query_latency.json at the repo
// root is this bench's committed output.
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "obs/metrics_registry.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"

namespace {

/// One percentile record from a latency histogram snapshot.
void AddLatencyFields(uvd::bench::JsonReport* report,
                      const uvd::obs::LatencyHistogram::Snapshot& snap) {
  report->Add("count", static_cast<int64_t>(snap.count));
  report->Add("mean_us", snap.mean);
  report->Add("p50_us", static_cast<int64_t>(snap.p50));
  report->Add("p90_us", static_cast<int64_t>(snap.p90));
  report->Add("p99_us", static_cast<int64_t>(snap.p99));
  report->Add("p999_us", static_cast<int64_t>(snap.p999));
  report->Add("max_us", static_cast<int64_t>(snap.max));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uvd;
  using namespace uvd::bench;

  const QueryBenchFlags flags = ParseQueryBenchFlags(argc, argv);

  PrintBanner("bench_sharded_queries — sharded UV-index serving",
              "ROADMAP sharded serving; divide-and-conquer Voronoi "
              "construction (arXiv:0906.2760), border regions per Ali et al.");

  datagen::DatasetOptions data;
  data.count = flags.smoke ? 600 : ScaledCount(10000);
  data.seed = 42;
  const geom::Box domain = datagen::DomainFor(data);
  const auto objects = datagen::GenerateUniform(data);

  // Several concurrent moving-NN clients, interleaved round-robin — the
  // serving workload sharding targets. One walker dwells in one shard at a
  // time; a population of them keeps every shard's sub-batch populated.
  const int batch_size = flags.smoke ? 200 : flags.batch_size;
  const int walkers = flags.smoke ? 2 : 8;
  const query::QueryBatch batch = [&] {
    std::vector<std::vector<geom::Point>> streams;
    const int per_walker = (batch_size + walkers - 1) / walkers;
    for (int w = 0; w < walkers; ++w) {
      streams.push_back(datagen::TrajectoryQueryPoints(
          per_walker, domain, /*step_length=*/domain.Width() / 400.0,
          /*seed=*/7 + static_cast<uint64_t>(w)));
    }
    query::QueryBatch b;
    b.reserve(static_cast<size_t>(per_walker * walkers));
    for (int i = 0; i < per_walker; ++i) {
      for (int w = 0; w < walkers; ++w) {
        b.push_back(query::Query::Pnn(streams[static_cast<size_t>(w)][
            static_cast<size_t>(i)]));
      }
    }
    return b;
  }();

  // Unsharded baseline: the reference answers and the 1-worker timing.
  Stats baseline_stats;
  core::UVDiagramOptions diagram_options;
  diagram_options.build_threads = ThreadPool::DefaultThreads();
  const core::UVDiagram baseline =
      BuildDiagram(objects, domain, diagram_options, &baseline_stats);
  query::QueryEngineOptions baseline_engine_options;
  baseline_engine_options.threads = 1;
  query::QueryEngine baseline_engine(baseline, baseline_engine_options);
  const uint64_t reference_hash =
      query::DigestPointAnswers(baseline_engine.ExecuteBatch(batch));

  const std::string json_path = ParseJsonPath(argc, argv);
  JsonReport report("bench_sharded_queries");
  if (!json_path.empty()) {
    // Unsharded QueryEngine latency record, measured under the same
    // simulated disk latency the sharded sweep runs with.
    baseline_engine.ResetMetrics();
    storage::PageManager::SetSimulatedReadLatencyUs(
        static_cast<uint32_t>(flags.sim_io_us));
    (void)baseline_engine.ExecuteBatch(batch);
    storage::PageManager::SetSimulatedReadLatencyUs(0);
    report.BeginRecord();
    report.Add("path", std::string("query_engine"));
    report.Add("kind", std::string("pnn"));
    AddLatencyFields(&report,
                     baseline_engine.kind_latency(query::QueryKind::kPnn)
                         .TakeSnapshot());
  }

  std::printf("|O| = %zu, batch = %zu PNN queries from %d interleaved "
              "trajectories, sim read latency = %d us, per-shard engine "
              "threads = %d\n\n",
              data.count, batch.size(), walkers, flags.sim_io_us,
              flags.query_threads > 0 ? flags.query_threads : 1);
  std::printf("%7s %9s %12s %14s %12s %10s\n", "shards", "build s", "queries/s",
              "leaf IO/query", "replicas", "identical");

  const std::vector<int> shard_sweep =
      flags.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  bool all_identical = true;
  double qps_1 = 0, qps_max = 0;
  for (const int k : shard_sweep) {
    shard::ShardedUVDiagramOptions options;
    options.num_shards = k;
    options.diagram.build_threads = ThreadPool::DefaultThreads();
    auto sharded =
        shard::ShardedUVDiagram::Build(objects, domain, options).ValueOrDie();

    size_t replicas = 0;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      replicas += sharded.shard(s).object_ids.size();
    }

    shard::ShardRouterOptions router_options;
    router_options.engine.threads = flags.query_threads > 0 ? flags.query_threads : 1;
    shard::ShardRouter router(sharded, router_options);

    storage::PageManager::SetSimulatedReadLatencyUs(
        static_cast<uint32_t>(flags.sim_io_us));
    Timer timer;
    const auto results = router.ExecuteBatch(batch);
    const double seconds = timer.ElapsedSeconds();
    storage::PageManager::SetSimulatedReadLatencyUs(0);

    const Stats stats = sharded.AggregateStats();
    const double n = static_cast<double>(batch.size());
    const double qps = n / seconds;
    const bool identical = query::DigestPointAnswers(results) == reference_hash;
    all_identical = all_identical && identical;
    if (k == shard_sweep.front()) qps_1 = qps;
    if (k == shard_sweep.back()) qps_max = qps;
    std::printf("%7d %9.2f %12.1f %14.2f %11.2fx %10s\n", k,
                sharded.build_stats().total_seconds, qps,
                static_cast<double>(stats.Get(Ticker::kUvIndexLeafReads)) / n,
                static_cast<double>(replicas) / static_cast<double>(data.count),
                identical ? "yes" : "NO");

    if (!json_path.empty()) {
      // Deployment-wide per-query PNN latency: exact merge of every shard
      // engine's histogram.
      report.BeginRecord();
      report.Add("path", std::string("shard_router"));
      report.Add("shards", static_cast<int64_t>(k));
      report.Add("qps", qps);
      AddLatencyFields(
          &report,
          router.MergedKindLatency(query::QueryKind::kPnn).TakeSnapshot());
      if (k == shard_sweep.back()) {
        // The largest deployment also embeds the full unified snapshot —
        // per-shard engines, routed latency, fan-out, imbalance, I/O.
        obs::MetricsRegistry registry;
        router.RegisterMetrics(&registry, "serving");
        report.BeginRecord();
        report.Add("record", std::string("metrics_snapshot"));
        report.Add("shards", static_cast<int64_t>(k));
        report.AddRaw("metrics", registry.TakeSnapshot().ToJson());
      }
    }
  }
  if (!json_path.empty()) report.WriteTo(json_path);

  std::printf("\nspeedup (%d shards vs %d) = %.2fx\n", shard_sweep.back(),
              shard_sweep.front(), qps_1 > 0 ? qps_max / qps_1 : 0.0);
  std::printf("answers bitwise-identical to the unsharded baseline: %s\n",
              all_identical ? "yes" : "NO — BORDER CORRECTNESS VIOLATION");
  UVD_CHECK(all_identical) << "sharded answers differ from the unsharded baseline";
  return 0;
}
