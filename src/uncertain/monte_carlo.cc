#include "uncertain/monte_carlo.h"

#include <algorithm>
#include <limits>

namespace uvd {
namespace uncertain {

geom::Point SamplePosition(const UncertainObject& obj, Rng* rng) {
  return obj.center() + obj.pdf().SampleOffset(rng);
}

std::vector<PnnAnswer> MonteCarloQualification(
    const std::vector<const UncertainObject*>& objects, const geom::Point& q,
    int trials, Rng* rng) {
  std::vector<int64_t> wins(objects.size(), 0);
  for (int t = 0; t < trials; ++t) {
    double best = std::numeric_limits<double>::infinity();
    size_t winner = 0;
    for (size_t i = 0; i < objects.size(); ++i) {
      const double d = geom::Distance(SamplePosition(*objects[i], rng), q);
      if (d < best) {
        best = d;
        winner = i;
      }
    }
    ++wins[winner];
  }
  std::vector<PnnAnswer> answers;
  for (size_t i = 0; i < objects.size(); ++i) {
    if (wins[i] > 0) {
      answers.push_back(
          {objects[i]->id(), static_cast<double>(wins[i]) / trials});
    }
  }
  std::sort(answers.begin(), answers.end(), [](const PnnAnswer& a, const PnnAnswer& b) {
    return a.probability > b.probability || (a.probability == b.probability && a.id < b.id);
  });
  return answers;
}

}  // namespace uncertain
}  // namespace uvd
