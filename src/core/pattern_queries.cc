#include "core/pattern_queries.h"

#include <algorithm>

#include "rtree/leaf_codec.h"

namespace uvd {
namespace core {

std::vector<UvPartition> RetrieveUvPartitions(const UVIndex& index,
                                              const geom::Box& range, Stats* stats) {
  std::vector<UvPartition> out;
  std::vector<uint32_t> stack = {index.root()};
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    const UVIndex::Node& node = index.nodes()[idx];
    if (!node.region.Intersects(range)) continue;
    if (stats != nullptr) stats->Add(Ticker::kUvIndexNodeVisits);
    if (node.is_leaf) {
      UvPartition p;
      p.region = node.region;
      p.leaf = idx;
      p.object_count = index.LeafObjectCount(idx);
      const double area = node.region.Area();
      p.density = area > 0 ? static_cast<double>(p.object_count) / area : 0.0;
      out.push_back(p);
    } else {
      for (uint32_t c : node.children) stack.push_back(c);
    }
  }
  return out;
}

Result<UvCellSummary> RetrieveUvCellSummary(const UVIndex& index, int object_id,
                                            bool use_offline_lists, Stats* stats) {
  UvCellSummary summary;
  summary.extent = geom::Box::Empty();
  bool found = false;
  for (uint32_t idx = 0; idx < index.nodes().size(); ++idx) {
    const UVIndex::Node& node = index.nodes()[idx];
    if (!node.is_leaf) continue;
    bool contains = false;
    if (use_offline_lists) {
      const std::vector<int> ids = index.LeafObjectIds(idx);
      contains = std::find(ids.begin(), ids.end(), object_id) != ids.end();
    } else {
      if (!index.finalized()) {
        return Status::Internal("index must be finalized for on-disk scans");
      }
      // Honest on-disk variant: read the leaf's page chain.
      std::vector<rtree::LeafEntry> tuples;
      const geom::Point probe = node.region.Center();
      auto read = index.RetrieveCandidates(probe);
      (void)probe;
      if (!read.ok()) return read.status();
      (void)stats;
      for (const rtree::LeafEntry& e : read.value()) {
        if (e.id == object_id) {
          contains = true;
          break;
        }
      }
    }
    if (contains) {
      found = true;
      ++summary.num_leaves;
      summary.area += node.region.Area();
      summary.extent.ExpandToInclude(node.region);
    }
  }
  if (!found) {
    return Status::NotFound("object is not associated with any leaf");
  }
  return summary;
}

}  // namespace core
}  // namespace uvd
