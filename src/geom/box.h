// Axis-aligned bounding boxes; the domain D of the UV-diagram, R-tree MBRs
// and quad-tree node regions are all Boxes.
#ifndef UVD_GEOM_BOX_H_
#define UVD_GEOM_BOX_H_

#include <algorithm>
#include <array>
#include <limits>

#include "geom/point.h"

namespace uvd {
namespace geom {

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Box {
  Point lo;
  Point hi;

  Box() = default;
  Box(Point low, Point high) : lo(low), hi(high) {}

  static Box FromCenterHalf(Point center, double half) {
    return Box({center.x - half, center.y - half}, {center.x + half, center.y + half});
  }

  /// An inverted box that is the identity for ExpandToInclude.
  static Box Empty() {
    const double inf = std::numeric_limits<double>::infinity();
    return Box({inf, inf}, {-inf, -inf});
  }

  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }
  double Area() const { return Width() * Height(); }
  Point Center() const { return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5}; }
  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  bool Contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Half-open membership [lo, hi) per axis: a point on a shared edge of
  /// two boxes tiling a larger region belongs to the upper/right box only,
  /// so tilings (sharded serving, quad-tree quarters) own every point
  /// exactly once. The max edge of the outermost box belongs to no box
  /// under this test — callers owning a global boundary must close it
  /// explicitly (see UVIndex::LocateLeafChecked).
  bool ContainsHalfOpen(const Point& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
  }

  bool ContainsBox(const Box& b) const {
    return b.lo.x >= lo.x && b.hi.x <= hi.x && b.lo.y >= lo.y && b.hi.y <= hi.y;
  }

  bool Intersects(const Box& b) const {
    return lo.x <= b.hi.x && b.lo.x <= hi.x && lo.y <= b.hi.y && b.lo.y <= hi.y;
  }

  /// Corners in counter-clockwise order starting at lo.
  std::array<Point, 4> Corners() const {
    return {Point{lo.x, lo.y}, Point{hi.x, lo.y}, Point{hi.x, hi.y}, Point{lo.x, hi.y}};
  }

  /// Quarter k of this box (0=SW, 1=SE, 2=NW, 3=NE), as used when a
  /// UV-index node splits into its four children.
  Box Quadrant(int k) const {
    const Point c = Center();
    switch (k) {
      case 0:
        return Box(lo, c);
      case 1:
        return Box({c.x, lo.y}, {hi.x, c.y});
      case 2:
        return Box({lo.x, c.y}, {c.x, hi.y});
      default:
        return Box(c, hi);
    }
  }

  void ExpandToInclude(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  void ExpandToInclude(const Box& b) {
    ExpandToInclude(b.lo);
    ExpandToInclude(b.hi);
  }

  /// MINDIST: the smallest distance from p to any point of the box
  /// (0 if p is inside). Standard R-tree pruning metric.
  double MinDist(const Point& p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// MAXDIST: the largest distance from p to any point of the box.
  double MaxDist(const Point& p) const {
    const double dx = std::max(std::abs(p.x - lo.x), std::abs(p.x - hi.x));
    const double dy = std::max(std::abs(p.y - lo.y), std::abs(p.y - hi.y));
    return std::sqrt(dx * dx + dy * dy);
  }
};

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_BOX_H_
