// Self-test fixture: iterating unordered containers. The linter must
// flag BOTH loops below as `unordered-iteration` — hash iteration order
// is address- and implementation-dependent, so anything it feeds
// (serialization, digests, merged results) varies run to run.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Summary {
  std::unordered_map<uint32_t, uint64_t> hits;

  // BAD: range-for over an unordered map inside a serialize-shaped path.
  std::string Serialize() const {
    std::string out;
    for (const auto& [key, count] : hits) {
      out += std::to_string(key) + ":" + std::to_string(count) + ",";
    }
    return out;
  }

  // BAD: iterator loop over the same container.
  uint64_t Total() const {
    uint64_t total = 0;
    for (auto it = hits.begin(); it != hits.end(); ++it) total += it->second;
    return total;
  }
};

}  // namespace fixture
