// Fig. 7(g): IC construction time vs the variance sigma of the object
// centers (Gaussian clouds, sigma = 1500..3500). Paper shape: T_c is
// higher for more skewed data (smaller sigma): dense areas mean heavily
// overlapping cells and more cr-objects.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(g): T_c vs center variance sigma",
                     "Gaussian-cloud skew, IC construction");
  std::printf("%10s %12s %12s\n", "sigma", "IC T_c(s)", "avg |C_i|");
  for (double sigma : {1500.0, 2000.0, 2500.0, 3000.0, 3500.0}) {
    datagen::DatasetOptions opts;
    opts.count = bench::ScaledCount(30000);
    opts.seed = 42;
    Stats stats;
    auto d = bench::BuildDiagram(datagen::GenerateGaussianCloud(opts, sigma),
                                 datagen::DomainFor(opts), {}, &stats);
    std::printf("%10.0f %12.2f %12.1f\n", sigma, d.build_stats().total_seconds,
                d.build_stats().avg_cr_objects);
  }
  return 0;
}
