// Tests for circles and the paper's dist_min / dist_max (Eq. 2-3).
#include "geom/circle.h"

#include <gtest/gtest.h>

namespace uvd {
namespace geom {
namespace {

TEST(CircleTest, ContainsIsClosed) {
  const Circle c({0, 0}, 2);
  EXPECT_TRUE(c.Contains({0, 0}));
  EXPECT_TRUE(c.Contains({2, 0}));
  EXPECT_TRUE(c.Contains({1.2, 1.2}));
  EXPECT_FALSE(c.Contains({2.001, 0}));
}

TEST(CircleTest, DistMinMatchesEq2) {
  const Circle c({0, 0}, 2);
  EXPECT_DOUBLE_EQ(c.DistMin({5, 0}), 3.0);   // outside: dist - r
  EXPECT_DOUBLE_EQ(c.DistMin({1, 0}), 0.0);   // inside: 0
  EXPECT_DOUBLE_EQ(c.DistMin({2, 0}), 0.0);   // boundary: 0
}

TEST(CircleTest, DistMaxMatchesEq3) {
  const Circle c({0, 0}, 2);
  EXPECT_DOUBLE_EQ(c.DistMax({5, 0}), 7.0);
  EXPECT_DOUBLE_EQ(c.DistMax({0, 0}), 2.0);  // center: radius
  EXPECT_DOUBLE_EQ(c.DistMax({1, 0}), 3.0);
}

TEST(CircleTest, DistMinLeDistMax) {
  const Circle c({3, -2}, 1.5);
  for (double x = -6; x <= 6; x += 0.9) {
    for (double y = -6; y <= 6; y += 0.7) {
      EXPECT_LE(c.DistMin({x, y}), c.DistMax({x, y}));
    }
  }
}

TEST(CircleTest, ZeroRadiusIsAPoint) {
  const Circle c({1, 1}, 0);
  EXPECT_DOUBLE_EQ(c.DistMin({4, 5}), 5.0);
  EXPECT_DOUBLE_EQ(c.DistMax({4, 5}), 5.0);
  EXPECT_TRUE(c.Contains({1, 1}));
  EXPECT_FALSE(c.Contains({1, 1.0001}));
}

TEST(CircleTest, Intersects) {
  const Circle a({0, 0}, 1), b({3, 0}, 1), c({1.5, 0}, 1), d({10, 0}, 1);
  EXPECT_FALSE(a.Intersects(b));  // gap of 1 between boundaries
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_TRUE(a.Intersects(c));   // overlapping disks
  EXPECT_EQ(a.Intersects(b), b.Intersects(a));
  EXPECT_EQ(a.Intersects(c), c.Intersects(a));
}

TEST(CircleTest, TangentCirclesIntersect) {
  const Circle a({0, 0}, 1), b({2, 0}, 1);
  EXPECT_TRUE(a.Intersects(b));
  const Circle c({2.0001, 0}, 1);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(CircleTest, MbrIsTight) {
  const Circle c({5, 7}, 3);
  const Box m = c.Mbr();
  EXPECT_EQ(m.lo, (Point{2, 4}));
  EXPECT_EQ(m.hi, (Point{8, 10}));
}

TEST(CircleTest, Area) {
  const Circle c({0, 0}, 2);
  EXPECT_NEAR(c.Area(), 4 * M_PI, 1e-12);
}

}  // namespace
}  // namespace geom
}  // namespace uvd
