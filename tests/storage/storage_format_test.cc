// Byte-pinned on-disk format test: tests/storage/testdata/golden_v1.uvpf
// is a checked-in v1 paged file (page_size 128, three patterned pages,
// a known bootstrap blob) whose every structural byte this test asserts at
// its FIXED offset — magic, version, page size, durable count, bootstrap,
// metapage checksum, per-frame checksums/ids/payloads and the total file
// size. If an innocent refactor shifts the layout, this test fails before
// any user's file does. The negative half mutates COPIES of the fixture
// and pins each defect to its distinct typed Status: bad magic ->
// InvalidArgument, future version -> NotImplemented, file shorter than a
// metapage -> IOError, truncated data -> Corruption, checksum damage ->
// Corruption. Regenerate the fixture only with a deliberate format-version
// bump (see docs/STORAGE.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "storage/paged_file.h"

namespace uvd {
namespace storage {
namespace {

constexpr size_t kGoldenPageSize = 128;
constexpr uint32_t kGoldenPages = 3;
constexpr size_t kFrameSize = kPageFrameHeaderSize + kGoldenPageSize;
constexpr char kGoldenBootstrap[] = "golden-bootstrap-v1";
// Offset of the metapage checksum: magic(4) + version(4) + page_size(4) +
// page_count(4) + bootstrap_len(4) + bootstrap capacity.
constexpr size_t kChecksumOffset = 20 + kBootstrapCapacity;

std::string GoldenPath() {
  return std::string(UVD_SOURCE_DIR) +
         "/tests/storage/testdata/golden_v1.uvpf";
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(f),
                              std::istreambuf_iterator<char>());
}

uint32_t U32At(const std::vector<uint8_t>& bytes, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + offset, 4);
  return v;
}

uint64_t U64At(const std::vector<uint8_t>& bytes, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, 8);
  return v;
}

std::vector<uint8_t> GoldenPayload(uint32_t page) {
  std::vector<uint8_t> data(kGoldenPageSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((page * 31 + i) & 0xff);
  }
  return data;
}

/// Writes a mutated copy of the fixture and returns its path.
std::string WriteCopy(const std::string& name,
                      const std::vector<uint8_t>& bytes) {
  const std::string path = ::testing::TempDir() + "/uvd_format_" + name;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamoff>(bytes.size()));
  return path;
}

TEST(StorageFormatTest, GoldenFileBytesArePinned) {
  const std::vector<uint8_t> bytes = ReadFile(GoldenPath());
  ASSERT_EQ(bytes.size(), kMetaBlockSize + kGoldenPages * kFrameSize);

  // Metapage fields at their frozen offsets.
  EXPECT_EQ(U32At(bytes, 0), kPagedFileMagic);  // "UVPF"
  EXPECT_EQ(U32At(bytes, 4), kPagedFileVersion);
  EXPECT_EQ(U32At(bytes, 8), kGoldenPageSize);
  EXPECT_EQ(U32At(bytes, 12), kGoldenPages);
  const size_t bootstrap_len = std::strlen(kGoldenBootstrap);
  EXPECT_EQ(U32At(bytes, 16), bootstrap_len);
  EXPECT_EQ(std::memcmp(bytes.data() + 20, kGoldenBootstrap, bootstrap_len),
            0);
  // Unused bootstrap capacity is zeroed (no uninitialized bytes on disk).
  for (size_t i = 20 + bootstrap_len; i < kChecksumOffset; ++i) {
    ASSERT_EQ(bytes[i], 0u) << "metapage byte " << i;
  }
  EXPECT_EQ(U64At(bytes, kChecksumOffset),
            Fnv64(bytes.data(), kChecksumOffset));
  // Metapage padding past the checksum is zeroed too.
  for (size_t i = kChecksumOffset + 8; i < kMetaBlockSize; ++i) {
    ASSERT_EQ(bytes[i], 0u) << "metapage byte " << i;
  }

  // Every data frame: checksum over (page id || payload), the id itself,
  // zeroed reserved bytes, then the payload.
  for (uint32_t p = 0; p < kGoldenPages; ++p) {
    SCOPED_TRACE("page " + std::to_string(p));
    const size_t frame = kMetaBlockSize + p * kFrameSize;
    const std::vector<uint8_t> payload = GoldenPayload(p);
    uint8_t id_le[4];
    std::memcpy(id_le, &p, 4);
    EXPECT_EQ(U64At(bytes, frame),
              Fnv64(payload.data(), payload.size(), Fnv64(id_le, 4)));
    EXPECT_EQ(U32At(bytes, frame + 8), p);
    EXPECT_EQ(U32At(bytes, frame + 12), 0u);  // reserved
    EXPECT_EQ(std::memcmp(bytes.data() + frame + kPageFrameHeaderSize,
                          payload.data(), payload.size()),
              0);
  }
}

TEST(StorageFormatTest, GoldenFileOpensAndServesItsPages) {
  // Open a copy (the checked-in fixture must never be written to).
  const std::string path = WriteCopy("pristine", ReadFile(GoldenPath()));
  auto file = PagedFile::Open(path).ValueOrDie();
  EXPECT_EQ(file->page_size(), kGoldenPageSize);
  EXPECT_EQ(file->page_count(), kGoldenPages);
  EXPECT_EQ(file->durable_page_count(), kGoldenPages);
  const std::string bootstrap(file->bootstrap().begin(),
                              file->bootstrap().end());
  EXPECT_EQ(bootstrap, kGoldenBootstrap);
  std::vector<uint8_t> out;
  for (uint32_t p = 0; p < kGoldenPages; ++p) {
    UVD_CHECK_OK(file->ReadPage(p, &out));
    EXPECT_EQ(out, GoldenPayload(p));
  }
  EXPECT_EQ(file->ReadPage(kGoldenPages, &out).code(), StatusCode::kNotFound);
  UVD_CHECK_OK(file->Close());
  std::remove(path.c_str());
}

TEST(StorageFormatTest, EachDefectGetsItsDistinctTypedStatus) {
  const std::vector<uint8_t> golden = ReadFile(GoldenPath());

  {  // Bad magic: not one of ours.
    auto bytes = golden;
    bytes[0] ^= 0xff;
    const std::string path = WriteCopy("bad_magic", bytes);
    const auto r = PagedFile::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    std::remove(path.c_str());
  }
  {  // Future format version: ours, but newer than this build understands.
     // (Version is checked before the checksum, so a valid-looking file
     // from a future build is refused by version, not misreported as
     // corrupt — no checksum fixup needed here.)
    auto bytes = golden;
    const uint32_t future = 99;
    std::memcpy(bytes.data() + 4, &future, 4);
    const std::string path = WriteCopy("future_version", bytes);
    const auto r = PagedFile::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
    std::remove(path.c_str());
  }
  {  // Shorter than a metapage: not a page store at all.
    auto bytes = golden;
    bytes.resize(100);
    const std::string path = WriteCopy("stub", bytes);
    const auto r = PagedFile::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIOError);
    std::remove(path.c_str());
  }
  {  // Valid metapage, data truncated below the durable count.
    auto bytes = golden;
    bytes.resize(kMetaBlockSize + kFrameSize);  // 1 of 3 pages survive
    const std::string path = WriteCopy("truncated", bytes);
    const auto r = PagedFile::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    std::remove(path.c_str());
  }
  {  // Metapage checksum mismatch (a flipped page-count bit).
    auto bytes = golden;
    bytes[12] ^= 0x01;
    const std::string path = WriteCopy("meta_flip", bytes);
    const auto r = PagedFile::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    std::remove(path.c_str());
  }
  {  // Data-frame damage: the file opens, the damaged page refuses to
     // read, its neighbors stay servable.
    auto bytes = golden;
    bytes[kMetaBlockSize + kFrameSize + kPageFrameHeaderSize + 5] ^= 0x80;
    const std::string path = WriteCopy("frame_flip", bytes);
    auto file = PagedFile::Open(path).ValueOrDie();
    std::vector<uint8_t> out;
    EXPECT_EQ(file->ReadPage(1, &out).code(), StatusCode::kCorruption);
    UVD_CHECK_OK(file->ReadPage(0, &out));
    UVD_CHECK_OK(file->ReadPage(2, &out));
    UVD_CHECK_OK(file->Close());
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace storage
}  // namespace uvd
