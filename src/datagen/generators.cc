#include "datagen/generators.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace uvd {
namespace datagen {

geom::Box DomainFor(const DatasetOptions& options) {
  return geom::Box({0.0, 0.0}, {options.domain_size, options.domain_size});
}

std::vector<uncertain::UncertainObject> ObjectsFromCenters(
    const std::vector<geom::Point>& centers, const DatasetOptions& options) {
  const double radius = options.diameter / 2.0;
  std::vector<uncertain::UncertainObject> objects;
  objects.reserve(centers.size());
  for (size_t i = 0; i < centers.size(); ++i) {
    uncertain::RadialHistogramPdf pdf =
        options.pdf == uncertain::PdfKind::kGaussian
            ? uncertain::RadialHistogramPdf::Gaussian(radius, options.num_bars)
            : uncertain::RadialHistogramPdf::Uniform(radius, options.num_bars);
    objects.emplace_back(static_cast<int>(i), geom::Circle(centers[i], radius),
                         std::move(pdf));
  }
  return objects;
}

std::vector<uncertain::UncertainObject> GenerateUniform(const DatasetOptions& options) {
  Rng rng(options.seed);
  std::vector<geom::Point> centers;
  centers.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    centers.push_back({rng.Uniform(0.0, options.domain_size),
                       rng.Uniform(0.0, options.domain_size)});
  }
  return ObjectsFromCenters(centers, options);
}

std::vector<uncertain::UncertainObject> GenerateGaussianCloud(
    const DatasetOptions& options, double sigma) {
  UVD_CHECK_GT(sigma, 0.0);
  Rng rng(options.seed);
  const double mid = options.domain_size / 2.0;
  std::vector<geom::Point> centers;
  centers.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    const double x = std::clamp(rng.Gaussian(mid, sigma), 0.0, options.domain_size);
    const double y = std::clamp(rng.Gaussian(mid, sigma), 0.0, options.domain_size);
    centers.push_back({x, y});
  }
  return ObjectsFromCenters(centers, options);
}

}  // namespace datagen
}  // namespace uvd
