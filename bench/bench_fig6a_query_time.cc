// Fig. 6(a): PNN query time T_q(ms) vs |O| for the UV-index and the
// R-tree baseline. Paper shape: both grow with |O|; the UV-diagram wins
// throughout (about half the R-tree's time at |O| = 60K).
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 6(a): T_q (ms) vs |O|",
                     "UV-diagram vs R-tree query time, uniform data");
  std::printf("%10s %14s %14s %10s\n", "|O|", "UV-diagram(ms)", "R-tree(ms)",
              "ratio");
  for (size_t n : bench::SizeSweep()) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = 42;
    Stats stats;
    auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                       datagen::DomainFor(opts), {}, &stats);
    const auto queries =
        datagen::UniformQueryPoints(bench::kNumQueries, diagram.domain(), 7);
    const auto r = bench::MeasurePnn(diagram, queries);
    std::printf("%10zu %14.3f %14.3f %9.2fx\n", n, r.uv_ms, r.rtree_ms,
                r.rtree_ms / r.uv_ms);
  }
  return 0;
}
