// Packed R*-tree over uncertain objects ([38] in the paper): leaf pages on
// simulated disk (4 KB, fanout 100), non-leaf levels in memory — exactly
// the comparator configuration of the paper's Sec. VI-A. Bulk loading uses
// Sort-Tile-Recursive packing. Queries: best-first k-NN by dist_min (seed
// selection), circular range (I-pruning), plus low-level access used by
// the branch-and-prune PNN baseline (pnn_baseline.h).
#ifndef UVD_RTREE_RTREE_H_
#define UVD_RTREE_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "geom/box.h"
#include "geom/circle.h"
#include "geom/point.h"
#include "rtree/leaf_codec.h"
#include "storage/page_manager.h"
#include "uncertain/object_store.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace rtree {

/// Construction parameters.
struct RTreeOptions {
  int fanout = 100;  ///< Max children per node and entries per leaf page.
};

/// One best-first frontier element. The comparator is a TOTAL order —
/// (key, kind, index-or-id) — so at equal keys container elements pop
/// before entries and tying entries pop in id order. That makes the k-NN
/// output a pure function of (q, k): the k canonically smallest entries by
/// (dist_min, id), independent of the traversal that produced them —
/// which is what lets rtree::TraversalSession resume from a refined
/// frontier and still match a fresh root-to-leaf search bit for bit.
struct KnnHeapItem {
  double key = 0.0;
  uint32_t index = 0;  ///< node or leaf-page index (kind 0 / 1)
  int32_t id = -1;     ///< entry id (kind 2)
  uint8_t kind = 0;    ///< 0 node, 1 leaf page, 2 entry
  LeafEntry entry;     ///< valid when kind == 2

  /// "Worse-than" for a std::greater min-heap on the canonical order.
  bool operator>(const KnnHeapItem& o) const {
    if (key != o.key) return key > o.key;
    if (kind != o.kind) return kind > o.kind;
    if (kind == 2) return id > o.id;
    return index > o.index;
  }
};

/// Caller-owned reusable buffers for the traversal paths, so a hot loop
/// (one k-NN + one range query per anchor in Algorithm 2) stops paying a
/// heap/page-buffer allocation per call.
struct TraversalScratch {
  std::vector<KnnHeapItem> heap;
  std::vector<LeafEntry> page_entries;
  std::vector<uint32_t> stack;
  /// Wall seconds spent decoding leaf pages through this scratch,
  /// accumulated across calls (the bench's leaf-decode phase).
  double decode_seconds = 0.0;
};

/// \brief Packed R-tree with disk-resident leaves.
///
/// Thread safety: the tree is immutable after BulkLoad — the const query
/// paths (KNearestByDistMin, CentersInRange, ReadLeaf) keep no mutable
/// caches and only touch nodes_/leaf_mbrs_/leaf_pages_, PageManager::Read
/// (safe for concurrent readers), and atomic Stats tickers. Any number of
/// threads may query one tree concurrently, provided nobody writes to the
/// underlying PageManager meanwhile; the build pipeline relies on this.
class RTree {
 public:
  /// In-memory non-leaf node. `children` index nodes() when
  /// `leaf_children` is false and leaf_pages()/leaf_mbrs() otherwise.
  struct Node {
    geom::Box mbr;
    bool leaf_children = false;
    std::vector<uint32_t> children;
  };

  /// Bulk loads the tree (STR packing); `ptrs[i]` is the disk pointer of
  /// `objects[i]` from ObjectStore::BulkLoad.
  static Result<RTree> BulkLoad(const std::vector<uncertain::UncertainObject>& objects,
                                const std::vector<uncertain::ObjectPtr>& ptrs,
                                storage::PageManager* pm,
                                const RTreeOptions& options = {},
                                Stats* stats = nullptr);

  /// The k objects with smallest dist_min(O, q), best-first. Used by seed
  /// selection (paper Sec. IV-B, k = 300). Output order is canonical:
  /// ascending (dist_min, id) — see KnnHeapItem.
  std::vector<LeafEntry> KNearestByDistMin(const geom::Point& q, int k) const;

  /// Allocation-free k-NN: reuses `scratch`'s heap and page buffer and
  /// appends nothing — `out` is cleared first. Identical output to the
  /// allocating overload.
  void KNearestByDistMin(const geom::Point& q, int k, TraversalScratch* scratch,
                         std::vector<LeafEntry>* out) const;

  /// Objects whose region centers lie within Cir(center, radius). Used by
  /// I-pruning (paper Lemma 2: radius 2d - r_i).
  std::vector<LeafEntry> CentersInRange(const geom::Point& center,
                                        double radius) const;

  /// Allocation-free range query; `out` is cleared first. Identical output
  /// to the allocating overload.
  void CentersInRange(const geom::Point& center, double radius,
                      TraversalScratch* scratch, std::vector<LeafEntry>* out) const;

  /// Reads one leaf page back into entries; bills one R-tree leaf I/O.
  Status ReadLeaf(storage::PageId page, std::vector<LeafEntry>* out) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  uint32_t root() const { return root_; }
  const std::vector<storage::PageId>& leaf_pages() const { return leaf_pages_; }
  const std::vector<geom::Box>& leaf_mbrs() const { return leaf_mbrs_; }

  size_t num_objects() const { return num_objects_; }
  size_t num_leaf_pages() const { return leaf_pages_.size(); }
  int height() const { return height_; }

  /// Bytes held in main memory (non-leaf levels), for the paper's memory
  /// comparison against the UV-index.
  size_t MemoryBytes() const;

 private:
  RTree() = default;

  storage::PageManager* pm_ = nullptr;
  Stats* stats_ = nullptr;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  std::vector<storage::PageId> leaf_pages_;
  std::vector<geom::Box> leaf_mbrs_;
  size_t num_objects_ = 0;
  int height_ = 0;
};

}  // namespace rtree
}  // namespace uvd

#endif  // UVD_RTREE_RTREE_H_
