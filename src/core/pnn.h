// PNN query evaluation through the UV-index (paper Sec. V-A): point
// location to the leaf containing q, read its page list, apply the
// d_minmax verification of [14] on the stored MBCs, fetch the surviving
// objects' pdfs and compute qualification probabilities.
#ifndef UVD_CORE_PNN_H_
#define UVD_CORE_PNN_H_

#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/uv_index.h"
#include "geom/point.h"
#include "rtree/pnn_baseline.h"
#include "uncertain/object_store.h"
#include "uncertain/qualification.h"

namespace uvd {
namespace core {

/// Full PNN through the UV-index. `breakdown`, if given, accumulates the
/// Fig. 6(c) components (index traversal / object retrieval / probability
/// computation). Page I/O failures propagate as error Status.
Result<std::vector<uncertain::PnnAnswer>> EvaluatePnnWithUvIndex(
    const UVIndex& index, const uncertain::ObjectStore& store, const geom::Point& q,
    const uncertain::QualificationOptions& options = {}, Stats* stats = nullptr,
    rtree::PnnBreakdown* breakdown = nullptr);

/// Verification + retrieval + probability phases over candidate tuples
/// already produced by the index phase (UVIndex::RetrieveCandidates or a
/// cached copy of its output). Split out so the query engine's cell cache
/// can sit in front of the index phase: identical tuples in, bitwise
/// identical answers out.
Result<std::vector<uncertain::PnnAnswer>> EvaluatePnnFromCandidates(
    std::vector<rtree::LeafEntry> tuples, const uncertain::ObjectStore& store,
    const geom::Point& q, const uncertain::QualificationOptions& options = {},
    Stats* stats = nullptr, rtree::PnnBreakdown* breakdown = nullptr);

/// Verification phase only over already-fetched candidate tuples: the
/// sorted ids of the answer objects (dist_min <= d_minmax).
std::vector<int> AnswerIdsFromCandidates(std::vector<rtree::LeafEntry> tuples,
                                         const geom::Point& q);

/// Index + verification phases only: the ids of the answer objects
/// (dist_min <= d_minmax), without probability computation. Useful for
/// set-level analyses and tests.
Result<std::vector<int>> RetrievePnnAnswerIds(const UVIndex& index,
                                              const geom::Point& q,
                                              Stats* stats = nullptr);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_PNN_H_
