// Disk-resident object records: each uncertain object's region and pdf is
// serialized into simulated disk pages. Both indexes store a `ptr` to the
// record in their leaf tuples (paper Sec. V-A) and fetch it during query
// processing — the "object retrieval" component of Fig. 6(c).
#ifndef UVD_UNCERTAIN_OBJECT_STORE_H_
#define UVD_UNCERTAIN_OBJECT_STORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "storage/page_manager.h"
#include "storage/record.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace uncertain {

/// Opaque disk pointer: page id in the high 32 bits, slot in the low 32.
using ObjectPtr = uint64_t;

/// \brief Packs object records into pages and fetches them by pointer.
class ObjectStore {
 public:
  explicit ObjectStore(storage::PageManager* pm) : pm_(pm) {}

  /// Serializes all objects (records packed into pages in id order) and
  /// returns ptrs[i] for objects[i].
  Status BulkLoad(const std::vector<UncertainObject>& objects,
                  std::vector<ObjectPtr>* ptrs);

  /// Appends one record (incremental updates), reusing free space on the
  /// tail page. The bar count must match the loaded records'.
  Result<ObjectPtr> Append(const UncertainObject& object);

  /// Reads one record; each call costs one page read (plus decoding).
  Result<UncertainObject> Fetch(ObjectPtr ptr) const;

  /// Serializes the store's transient layout state (record size, page
  /// list, tail occupancy) — everything a fresh ObjectStore over the SAME
  /// page manager needs to resume serving. Part of the diagram manifest
  /// (core/uv_diagram.cc Checkpoint).
  void EncodeState(storage::Encoder* enc) const;

  /// Restores state written by EncodeState. The pages themselves stay on
  /// the page manager; this only rebuilds the in-RAM directory.
  Status RestoreState(storage::Decoder* dec);

  /// Decodes every record back, in id order, with ptrs[i] for objects[i]
  /// — the reopen path's way to repopulate UVDiagram::objects().
  Status LoadAll(std::vector<UncertainObject>* objects,
                 std::vector<ObjectPtr>* ptrs) const;

  size_t num_pages() const { return data_pages_.size(); }

  static ObjectPtr MakePtr(storage::PageId page, uint32_t slot) {
    return (static_cast<uint64_t>(page) << 32) | slot;
  }
  static storage::PageId PtrPage(ObjectPtr p) {
    return static_cast<storage::PageId>(p >> 32);
  }
  static uint32_t PtrSlot(ObjectPtr p) { return static_cast<uint32_t>(p); }

 private:
  storage::PageManager* pm_;
  std::vector<storage::PageId> data_pages_;
  size_t record_size_ = 0;
  size_t records_per_page_ = 0;
  uint32_t tail_count_ = 0;  ///< records on the last data page
};

}  // namespace uncertain
}  // namespace uvd

#endif  // UVD_UNCERTAIN_OBJECT_STORE_H_
