#include "core/svg_export.h"

#include <cstdio>
#include <sstream>

namespace uvd {
namespace core {

namespace {

/// Maps domain coordinates to SVG pixels (y flipped: SVG grows downward).
class Mapper {
 public:
  Mapper(const geom::Box& domain, double canvas)
      : domain_(domain),
        scale_(canvas / std::max(domain.Width(), domain.Height())),
        canvas_(canvas) {}

  double X(double x) const { return (x - domain_.lo.x) * scale_; }
  double Y(double y) const { return canvas_ - (y - domain_.lo.y) * scale_; }
  double Len(double d) const { return d * scale_; }

 private:
  geom::Box domain_;
  double scale_;
  double canvas_;
};

const char* CellColor(size_t i) {
  static const char* kPalette[] = {"#e41a1c", "#377eb8", "#4daf4a", "#984ea3",
                                   "#ff7f00", "#a65628", "#f781bf", "#999999"};
  return kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

void AppendHeader(std::ostringstream& out, double canvas) {
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << canvas
      << "\" height=\"" << canvas << "\" viewBox=\"0 0 " << canvas << " " << canvas
      << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
}

void AppendGrid(std::ostringstream& out, const UVDiagram& diagram, const Mapper& m) {
  for (const UVIndex::Node& node : diagram.index().nodes()) {
    if (!node.is_leaf) continue;
    out << "<rect x=\"" << m.X(node.region.lo.x) << "\" y=\"" << m.Y(node.region.hi.y)
        << "\" width=\"" << m.Len(node.region.Width()) << "\" height=\""
        << m.Len(node.region.Height())
        << "\" fill=\"none\" stroke=\"#dddddd\" stroke-width=\"0.5\"/>\n";
  }
}

void AppendObjects(std::ostringstream& out,
                   const std::vector<uncertain::UncertainObject>& objects,
                   const Mapper& m) {
  for (const auto& o : objects) {
    out << "<circle cx=\"" << m.X(o.center().x) << "\" cy=\"" << m.Y(o.center().y)
        << "\" r=\"" << std::max(1.0, m.Len(o.radius()))
        << "\" fill=\"#bbbbbb\" fill-opacity=\"0.5\" stroke=\"#666666\" "
           "stroke-width=\"0.5\"/>\n";
  }
}

void AppendCells(std::ostringstream& out, const std::vector<UVCell>& cells,
                 const Mapper& m, int samples_per_arc) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto boundary = cells[i].Boundary(samples_per_arc);
    if (boundary.empty()) continue;
    out << "<polygon points=\"";
    for (const geom::Point& p : boundary) {
      out << m.X(p.x) << "," << m.Y(p.y) << " ";
    }
    out << "\" fill=\"" << CellColor(i) << "\" fill-opacity=\"0.15\" stroke=\""
        << CellColor(i) << "\" stroke-width=\"1.5\"/>\n";
    const geom::Point c = cells[i].anchor_region().center;
    out << "<circle cx=\"" << m.X(c.x) << "\" cy=\"" << m.Y(c.y)
        << "\" r=\"2\" fill=\"" << CellColor(i) << "\"/>\n";
  }
}

}  // namespace

std::string RenderSvg(const UVDiagram& diagram, const std::vector<UVCell>& cells,
                      const SvgOptions& options) {
  std::ostringstream out;
  const Mapper m(diagram.domain(), options.canvas_px);
  AppendHeader(out, options.canvas_px);
  if (options.draw_grid) AppendGrid(out, diagram, m);
  if (options.draw_objects) AppendObjects(out, diagram.objects(), m);
  AppendCells(out, cells, m, options.samples_per_arc);
  out << "</svg>\n";
  return out.str();
}

std::string RenderCellsSvg(const geom::Box& domain, const std::vector<UVCell>& cells,
                           const SvgOptions& options) {
  std::ostringstream out;
  const Mapper m(domain, options.canvas_px);
  AppendHeader(out, options.canvas_px);
  AppendCells(out, cells, m, options.samples_per_arc);
  out << "</svg>\n";
  return out.str();
}

Status WriteSvgFile(const std::string& path, const std::string& svg) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  const size_t written = std::fwrite(svg.data(), 1, svg.size(), f);
  std::fclose(f);
  if (written != svg.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace uvd
