// Probabilistic threshold PNN with verifier-style probability bounds
// (paper Sec. II cites probabilistic verifiers [15] as the way to avoid
// expensive integration). A coarse grid yields certified lower/upper
// bounds on each candidate's qualification probability; only candidates
// whose bounds straddle the threshold pay for full numerical integration.
#ifndef UVD_UNCERTAIN_THRESHOLD_H_
#define UVD_UNCERTAIN_THRESHOLD_H_

#include <vector>

#include "common/stats.h"
#include "geom/point.h"
#include "uncertain/qualification.h"

namespace uvd {
namespace uncertain {

/// Options for the threshold query.
struct ThresholdOptions {
  double threshold = 0.1;   ///< Report objects with P >= threshold.
  int verifier_steps = 16;  ///< Coarse grid for the bound computation.
  QualificationOptions refine;  ///< Used when bounds are inconclusive.
};

/// One threshold answer with its certified bounds.
struct ThresholdAnswer {
  int id = -1;
  double lower = 0.0;   ///< Certified lower bound on P.
  double upper = 0.0;   ///< Certified upper bound on P.
  bool refined = false; ///< True if full integration was needed.
  double probability = 0.0;  ///< Exact value when refined, else midpoint.
};

/// Diagnostics: how much integration the verifier avoided.
struct ThresholdStats {
  size_t candidates = 0;
  size_t accepted_by_bounds = 0;
  size_t rejected_by_bounds = 0;
  size_t refined = 0;
};

/// Certified probability bounds for every candidate (no pruning applied
/// beyond the d_minmax filter). For each object, lower <= P <= upper.
std::vector<ThresholdAnswer> QualificationBounds(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q,
    int verifier_steps = 16);

/// Threshold query: objects whose qualification probability is at least
/// options.threshold, decided by bounds where possible and by full
/// integration otherwise. Sorted by descending probability estimate.
std::vector<ThresholdAnswer> ThresholdQualification(
    const std::vector<const UncertainObject*>& candidates, const geom::Point& q,
    const ThresholdOptions& options = {}, ThresholdStats* tstats = nullptr,
    Stats* stats = nullptr);

}  // namespace uncertain
}  // namespace uvd

#endif  // UVD_UNCERTAIN_THRESHOLD_H_
