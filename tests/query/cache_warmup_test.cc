// Cache warm-up from UV-partition results: with
// warm_cache_from_partitions set, a kUvPartitions query pre-populates the
// QueryCache probationary segment with every leaf it enumerated, so the
// point probes that follow into the same region hit without leaf I/O.
// Answers must be bitwise-identical with warming on or off.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/random.h"
#include "datagen/generators.h"
#include "query/query_engine.h"
#include "query/result_digest.h"

namespace uvd {
namespace query {
namespace {

core::UVDiagram BuildDiagram(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  auto objects = datagen::GenerateUniform(opts);
  return core::UVDiagram::Build(std::move(objects), datagen::DomainFor(opts))
      .ValueOrDie();
}

geom::Box CenterRange(const core::UVDiagram& d, double fraction) {
  const geom::Box& domain = d.domain();
  const geom::Point c = (domain.lo + domain.hi) * 0.5;
  const geom::Vec2 half = (domain.hi - domain.lo) * (fraction * 0.5);
  return geom::Box(c - half, c + half);
}

TEST(CacheWarmupTest, PartitionsQuerySeedsProbationarySegment) {
  const auto diagram = BuildDiagram(400, 7);
  QueryEngineOptions options;
  options.threads = 1;
  options.warm_cache_from_partitions = true;
  QueryEngine engine(diagram, options);
  ASSERT_NE(engine.cache(), nullptr);
  EXPECT_EQ(engine.cache()->size(), 0u);

  const auto results =
      engine.ExecuteBatch({Query::UvPartitions(CenterRange(diagram, 0.5))});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok());
  ASSERT_FALSE(results[0].partitions.empty());

  // Every enumerated leaf is cached, all of it probationary — warming must
  // never promote (the leaf has not been re-referenced yet).
  EXPECT_EQ(engine.cache()->size(), results[0].partitions.size());
  EXPECT_EQ(engine.cache()->protected_size(), 0u);
  const auto shards = engine.worker_stats();
  uint64_t warm = 0;
  for (const Stats& s : shards) warm += s.Get(Ticker::kQueryCacheWarmInserts);
  EXPECT_EQ(warm, results[0].partitions.size());
}

TEST(CacheWarmupTest, WarmedLeavesServeFollowupProbesWithoutMisses) {
  const auto diagram = BuildDiagram(400, 7);
  const geom::Box range = CenterRange(diagram, 0.5);

  QueryEngineOptions options;
  options.threads = 1;
  options.warm_cache_from_partitions = true;
  QueryEngine engine(diagram, options);
  ASSERT_TRUE(engine.ExecuteBatch({Query::UvPartitions(range)})[0].status.ok());

  // Probe points inside the warmed range: every leaf lookup must hit.
  Rng rng(11);
  QueryBatch probes;
  for (int i = 0; i < 30; ++i) {
    const geom::Point p{rng.Uniform(range.lo.x, range.hi.x),
                        rng.Uniform(range.lo.y, range.hi.y)};
    probes.push_back(Query::Pnn(p));
  }
  const auto results = engine.ExecuteBatch(probes);
  for (const QueryResult& r : results) EXPECT_TRUE(r.status.ok());
  uint64_t hits = 0, misses = 0;
  for (const Stats& s : engine.worker_stats()) {
    hits += s.Get(Ticker::kQueryCacheHits);
    misses += s.Get(Ticker::kQueryCacheMisses);
  }
  EXPECT_EQ(hits, probes.size());
  EXPECT_EQ(misses, 0u);

  // Identical answers from a cold engine without warming.
  QueryEngineOptions cold_options;
  cold_options.threads = 1;
  QueryEngine cold(diagram, cold_options);
  EXPECT_EQ(DigestPointAnswers(results), DigestPointAnswers(cold.ExecuteBatch(probes)));
}

TEST(CacheWarmupTest, WarmingIsOffByDefaultAndNeverRefreshesExistingEntries) {
  const auto diagram = BuildDiagram(400, 7);
  const geom::Box range = CenterRange(diagram, 0.5);

  QueryEngineOptions options;
  options.threads = 1;
  QueryEngine engine(diagram, options);
  ASSERT_TRUE(engine.ExecuteBatch({Query::UvPartitions(range)})[0].status.ok());
  // Default: partition queries stay I/O-free and cache nothing.
  EXPECT_EQ(engine.cache()->size(), 0u);

  // With warming on, re-running the same partitions query is a no-op for
  // already-cached leaves: no second round of warm inserts.
  QueryEngineOptions warm_options;
  warm_options.threads = 1;
  warm_options.warm_cache_from_partitions = true;
  QueryEngine warm(diagram, warm_options);
  ASSERT_TRUE(warm.ExecuteBatch({Query::UvPartitions(range)})[0].status.ok());
  const size_t size_after_first = warm.cache()->size();
  ASSERT_TRUE(warm.ExecuteBatch({Query::UvPartitions(range)})[0].status.ok());
  EXPECT_EQ(warm.cache()->size(), size_after_first);
  uint64_t second_warm = 0;
  for (const Stats& s : warm.worker_stats()) {
    second_warm += s.Get(Ticker::kQueryCacheWarmInserts);
  }
  EXPECT_EQ(second_warm, 0u);
}

}  // namespace
}  // namespace query
}  // namespace uvd
