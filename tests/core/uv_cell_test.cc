// Tests for exact UV-cells (Algorithm 1): the defining membership property
// against brute force, r-object exactness, and the paper's degenerate and
// illustrative cases.
#include "core/uv_cell.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "datagen/generators.h"

namespace uvd {
namespace core {
namespace {

using uncertain::UncertainObject;

constexpr double kSize = 1000.0;
geom::Box Domain() { return geom::Box({0, 0}, {kSize, kSize}); }

std::vector<UncertainObject> RandomObjects(int n, uint64_t seed, double radius = 15) {
  datagen::DatasetOptions opts;
  opts.count = static_cast<size_t>(n);
  opts.domain_size = kSize;
  opts.diameter = 2 * radius;
  opts.seed = seed;
  return datagen::GenerateUniform(opts);
}

/// Definition 1 via brute force: O_i can be q's NN iff
/// dist_min(O_i, q) <= dist_max(O_j, q) for every j.
bool BruteInCell(const std::vector<UncertainObject>& objs, size_t i,
                 const geom::Point& q) {
  for (size_t j = 0; j < objs.size(); ++j) {
    if (j == i) continue;
    if (objs[i].DistMin(q) > objs[j].DistMax(q)) return false;
  }
  return true;
}

TEST(UvCellTest, SingleObjectCellIsWholeDomain) {
  const auto objs = RandomObjects(1, 7);
  const UVCell cell = BuildExactUvCell(objs, 0, Domain());
  EXPECT_NEAR(cell.Area(), Domain().Area(), 1e-6 * Domain().Area());
  EXPECT_TRUE(cell.RObjects().empty());
  EXPECT_TRUE(cell.Contains({0, 0}));
  EXPECT_TRUE(cell.Contains({kSize, kSize}));
}

TEST(UvCellTest, MembershipMatchesBruteForce) {
  Rng rng(99);
  for (uint64_t seed : {11u, 22u, 33u}) {
    const auto objs = RandomObjects(40, seed);
    for (size_t i : {size_t{0}, size_t{13}, size_t{39}}) {
      const UVCell cell = BuildExactUvCell(objs, i, Domain());
      for (int t = 0; t < 800; ++t) {
        const geom::Point q{rng.Uniform(0, kSize), rng.Uniform(0, kSize)};
        // Skip near-boundary points to avoid tie flakiness.
        const geom::Vec2 d = q - objs[i].center();
        const double rho = cell.envelope().RhoAt(d.Angle());
        if (std::isfinite(rho) && std::abs(d.Norm() - rho) < 1e-6) continue;
        EXPECT_EQ(cell.Contains(q), BruteInCell(objs, i, q))
            << "seed=" << seed << " i=" << i << " q=(" << q.x << "," << q.y << ")";
      }
    }
  }
}

TEST(UvCellTest, CellContainsOwnUncertaintyRegion) {
  // Any point inside O_i's region has dist_min = 0, so O_i can always be
  // its NN: the region is part of the cell.
  const auto objs = RandomObjects(60, 5);
  Rng rng(6);
  for (size_t i = 0; i < 10; ++i) {
    const UVCell cell = BuildExactUvCell(objs, i, Domain());
    for (int t = 0; t < 100; ++t) {
      const double ang = rng.Uniform(0, 2 * M_PI);
      const double rad = objs[i].radius() * std::sqrt(rng.Uniform(0, 1));
      const geom::Point p = objs[i].center() + geom::UnitVector(ang) * rad;
      if (!Domain().Contains(p)) continue;
      EXPECT_TRUE(cell.Contains(p)) << "i=" << i;
    }
  }
}

TEST(UvCellTest, RObjectsAreExactlyTheBindingObjects) {
  // Rebuilding the cell from its r-objects alone gives the same region;
  // every reported r-object actually owns boundary.
  const auto objs = RandomObjects(50, 77);
  for (size_t i : {size_t{3}, size_t{25}}) {
    const UVCell cell = BuildExactUvCell(objs, i, Domain());
    const std::vector<int> r_objects = cell.RObjects();
    const UVCell rebuilt = BuildUvCellFromCandidates(objs, i, r_objects, Domain());
    EXPECT_NEAR(cell.Area(), rebuilt.Area(), 1e-6 * Domain().Area());
    EXPECT_EQ(rebuilt.RObjects(), r_objects);
    // Dropping any single r-object must strictly grow the region.
    for (int drop : r_objects) {
      std::vector<int> reduced;
      for (int id : r_objects) {
        if (id != drop) reduced.push_back(id);
      }
      const UVCell weaker = BuildUvCellFromCandidates(objs, i, reduced, Domain());
      EXPECT_GT(weaker.Area(), cell.Area() - 1e-9) << "drop=" << drop;
    }
  }
}

TEST(UvCellTest, ThreeObjectFigureTwoScenario) {
  // Fig. 2 of the paper: three separated objects; every point of the
  // domain lies in at least one UV-cell, and near each object only its own
  // cell applies.
  std::vector<UncertainObject> objs;
  objs.push_back(UncertainObject::WithGaussianPdf(0, {{250, 300}, 40}));
  objs.push_back(UncertainObject::WithGaussianPdf(1, {{700, 350}, 40}));
  objs.push_back(UncertainObject::WithGaussianPdf(2, {{450, 750}, 40}));
  std::vector<UVCell> cells;
  for (size_t i = 0; i < 3; ++i) cells.push_back(BuildExactUvCell(objs, i, Domain()));

  Rng rng(123);
  for (int t = 0; t < 3000; ++t) {
    const geom::Point q{rng.Uniform(0, kSize), rng.Uniform(0, kSize)};
    int covered = 0;
    for (const UVCell& c : cells) covered += c.Contains(q) ? 1 : 0;
    EXPECT_GE(covered, 1) << "every point has at least one possible NN";
  }
  // Near each center, only that object's cell contains the point.
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(cells[j].Contains(objs[i].center()), i == j);
    }
  }
  // Each pair constrains each cell: r-objects are the other two objects.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cells[i].RObjects().size(), 2u);
  }
}

TEST(UvCellTest, ZeroRadiusMatchesClassicVoronoi) {
  // The UV-diagram of points is the Voronoi diagram (paper Sec. I).
  const auto objs = RandomObjects(30, 2024, /*radius=*/0);
  Rng rng(55);
  for (size_t i : {size_t{0}, size_t{15}}) {
    const UVCell cell = BuildExactUvCell(objs, i, Domain());
    for (int t = 0; t < 1000; ++t) {
      const geom::Point q{rng.Uniform(0, kSize), rng.Uniform(0, kSize)};
      double best = std::numeric_limits<double>::infinity();
      for (const auto& o : objs) best = std::min(best, geom::Distance(o.center(), q));
      const double mine = geom::Distance(objs[i].center(), q);
      if (std::abs(mine - best) < 1e-6) continue;  // tie boundary
      EXPECT_EQ(cell.Contains(q), mine <= best);
    }
  }
}

TEST(UvCellTest, OverlappingObjectsDoNotConstrain) {
  std::vector<UncertainObject> objs;
  objs.push_back(UncertainObject::WithGaussianPdf(0, {{500, 500}, 50}));
  objs.push_back(UncertainObject::WithGaussianPdf(1, {{540, 500}, 50}));  // overlaps
  const UVCell cell = BuildExactUvCell(objs, 0, Domain());
  // The overlapping neighbor imposes no outside region: cell = domain.
  EXPECT_NEAR(cell.Area(), Domain().Area(), 1e-6 * Domain().Area());
  EXPECT_TRUE(cell.RObjects().empty());
}

TEST(UvCellTest, SubtractReportsChange) {
  std::vector<UncertainObject> objs;
  objs.push_back(UncertainObject::WithGaussianPdf(0, {{200, 500}, 20}));
  objs.push_back(UncertainObject::WithGaussianPdf(1, {{500, 500}, 20}));
  objs.push_back(UncertainObject::WithGaussianPdf(2, {{900, 500}, 20}));
  UVCell cell(objs[0].region(), 0, Domain());
  EXPECT_TRUE(cell.SubtractOutsideRegion(objs[1].region(), 1));
  // Object 2 is occluded by object 1 from object 0's viewpoint.
  EXPECT_FALSE(cell.SubtractOutsideRegion(objs[2].region(), 2));
}

TEST(UvCellTest, MaxDistanceBoundsVertices) {
  const auto objs = RandomObjects(25, 31);
  const UVCell cell = BuildExactUvCell(objs, 0, Domain());
  const double d = cell.MaxDistanceFromCenter();
  for (const geom::Point& v : cell.Vertices()) {
    EXPECT_LE(geom::Distance(v, objs[0].center()), d + 1e-9);
  }
}

}  // namespace
}  // namespace core
}  // namespace uvd
