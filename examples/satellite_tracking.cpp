// Satellite-image object tracking (the paper's opening motivation):
// vehicle positions extracted from noisy satellite imagery carry
// per-detection uncertainty. Dispatchers repeatedly ask "which vehicles
// could be closest to this incident?" — a PNN query per incident.
//
// This example builds a UV-diagram over a synthetic vehicle fleet, runs a
// stream of incident queries through both the UV-index and the R-tree
// baseline, and reports answer quality and I/O.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/uv_diagram.h"
#include "datagen/workload.h"

int main() {
  using namespace uvd;

  // 25 km x 25 km theatre, 5000 vehicles. Measurement error grows with
  // image obliqueness: uncertainty radii between 30 and 120 m.
  const double kSide = 25000.0;
  const geom::Box domain({0, 0}, {kSide, kSide});
  Rng rng(2026);
  std::vector<uncertain::UncertainObject> fleet;
  for (int i = 0; i < 5000; ++i) {
    const geom::Point pos{rng.Uniform(0, kSide), rng.Uniform(0, kSide)};
    const double radius = rng.Uniform(30, 120);
    fleet.push_back(uncertain::UncertainObject::WithGaussianPdf(i, {pos, radius}));
  }

  Timer build_timer;
  auto diagram = core::UVDiagram::Build(std::move(fleet), domain).ValueOrDie();
  std::printf("indexed 5000 vehicles in %.2f s (IC construction)\n",
              build_timer.ElapsedSeconds());

  // 200 incident sites; measure both query paths.
  const auto incidents = datagen::UniformQueryPoints(200, domain, 7);
  rtree::PnnBreakdown uv_bd, rt_bd;
  size_t answers_total = 0;

  diagram.stats().Reset();
  Timer uv_timer;
  for (const auto& q : incidents) {
    answers_total += diagram.QueryPnn(q, &uv_bd).ValueOrDie().size();
  }
  const double uv_ms = uv_timer.ElapsedMillis() / incidents.size();
  const uint64_t uv_io = diagram.stats().Get(Ticker::kUvIndexLeafReads);

  diagram.stats().Reset();
  Timer rt_timer;
  for (const auto& q : incidents) {
    UVD_CHECK(diagram.QueryPnnWithRtree(q, &rt_bd).ok());
  }
  const double rt_ms = rt_timer.ElapsedMillis() / incidents.size();
  const uint64_t rt_io = diagram.stats().Get(Ticker::kRtreeLeafReads);

  std::printf("\nper-incident PNN latency and index I/O (200 incidents):\n");
  std::printf("  UV-index : %7.3f ms   %.2f leaf reads/query\n", uv_ms,
              static_cast<double>(uv_io) / incidents.size());
  std::printf("  R-tree   : %7.3f ms   %.2f leaf reads/query\n", rt_ms,
              static_cast<double>(rt_io) / incidents.size());
  std::printf("  avg candidate vehicles per incident: %.2f\n",
              static_cast<double>(answers_total) / incidents.size());

  // A concrete incident: rank the possible closest vehicles.
  const geom::Point incident{kSide / 2, kSide / 2};
  std::printf("\nincident at (%.0f, %.0f) — possible nearest vehicles:\n",
              incident.x, incident.y);
  auto answers = diagram.QueryPnn(incident).ValueOrDie();
  for (size_t i = 0; i < std::min<size_t>(answers.size(), 5); ++i) {
    std::printf("  vehicle %-5d  P(closest) = %.4f\n", answers[i].id,
                answers[i].probability);
  }
  return 0;
}
