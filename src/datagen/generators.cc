#include "datagen/generators.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/random.h"

namespace uvd {
namespace datagen {

geom::Box DomainFor(const DatasetOptions& options) {
  return geom::Box({0.0, 0.0}, {options.domain_size, options.domain_size});
}

std::vector<uncertain::UncertainObject> ObjectsFromCenters(
    const std::vector<geom::Point>& centers, const DatasetOptions& options) {
  const double radius = options.diameter / 2.0;
  std::vector<uncertain::UncertainObject> objects;
  objects.reserve(centers.size());
  for (size_t i = 0; i < centers.size(); ++i) {
    uncertain::RadialHistogramPdf pdf =
        options.pdf == uncertain::PdfKind::kGaussian
            ? uncertain::RadialHistogramPdf::Gaussian(radius, options.num_bars)
            : uncertain::RadialHistogramPdf::Uniform(radius, options.num_bars);
    objects.emplace_back(static_cast<int>(i), geom::Circle(centers[i], radius),
                         std::move(pdf));
  }
  return objects;
}

std::vector<uncertain::UncertainObject> GenerateUniform(const DatasetOptions& options) {
  Rng rng(options.seed);
  std::vector<geom::Point> centers;
  centers.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    centers.push_back({rng.Uniform(0.0, options.domain_size),
                       rng.Uniform(0.0, options.domain_size)});
  }
  return ObjectsFromCenters(centers, options);
}

std::vector<uncertain::UncertainObject> GenerateGaussianCloud(
    const DatasetOptions& options, double sigma) {
  UVD_CHECK_GT(sigma, 0.0);
  Rng rng(options.seed);
  const double mid = options.domain_size / 2.0;
  std::vector<geom::Point> centers;
  centers.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    const double x = std::clamp(rng.Gaussian(mid, sigma), 0.0, options.domain_size);
    const double y = std::clamp(rng.Gaussian(mid, sigma), 0.0, options.domain_size);
    centers.push_back({x, y});
  }
  return ObjectsFromCenters(centers, options);
}

std::vector<uncertain::UncertainObject> GenerateClusters(
    const DatasetOptions& options, const std::vector<ClusterSpec>& clusters) {
  UVD_CHECK(!clusters.empty());
  double total_weight = 0.0;
  for (const ClusterSpec& c : clusters) {
    UVD_CHECK_GT(c.sigma, 0.0);
    UVD_CHECK_GT(c.weight, 0.0);
    total_weight += c.weight;
  }

  // Largest-remainder apportionment: floor every proportional share, then
  // hand the leftover objects to the clusters with the biggest fractional
  // parts (ties to the earlier cluster) — deterministic for a fixed spec.
  std::vector<size_t> counts(clusters.size(), 0);
  std::vector<std::pair<double, size_t>> remainders;  // (-fraction, index)
  size_t assigned = 0;
  for (size_t c = 0; c < clusters.size(); ++c) {
    const double share =
        static_cast<double>(options.count) * clusters[c].weight / total_weight;
    counts[c] = static_cast<size_t>(share);
    assigned += counts[c];
    remainders.emplace_back(-(share - static_cast<double>(counts[c])), c);
  }
  std::sort(remainders.begin(), remainders.end());
  for (size_t k = 0; assigned < options.count; ++k, ++assigned) {
    ++counts[remainders[k % remainders.size()].second];
  }

  Rng rng(options.seed);
  std::vector<geom::Point> centers;
  centers.reserve(options.count);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t i = 0; i < counts[c]; ++i) {
      const double x = std::clamp(rng.Gaussian(clusters[c].center.x, clusters[c].sigma),
                                  0.0, options.domain_size);
      const double y = std::clamp(rng.Gaussian(clusters[c].center.y, clusters[c].sigma),
                                  0.0, options.domain_size);
      centers.push_back({x, y});
    }
  }
  return ObjectsFromCenters(centers, options);
}

}  // namespace datagen
}  // namespace uvd
