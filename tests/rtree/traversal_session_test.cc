// Tests for the shared-traversal session (rtree/traversal_session.h): the
// session's KNearest must be byte-identical to RTree::KNearestByDistMin
// and its CentersInRange must return the same SET RTree::CentersInRange
// returns, for every interleaving of queries across a Morton-like sweep —
// plus leaf-memo and entry-pool accounting, eviction under tiny
// capacities, and Reset semantics.
#include "rtree/traversal_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "uncertain/object_store.h"

namespace uvd {
namespace rtree {
namespace {

struct Fixture {
  Stats stats;
  storage::PageManager pm{4096, &stats};
  uncertain::ObjectStore store{&pm};
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<RTree> tree;

  void Build(int n, uint64_t seed = 3, int fanout = 32) {
    Rng rng(seed);
    objects.clear();
    for (int i = 0; i < n; ++i) {
      objects.push_back(uncertain::UncertainObject::WithGaussianPdf(
          i, geom::Circle({rng.Uniform(0, 10000), rng.Uniform(0, 10000)},
                          rng.Uniform(0.5, 25.0))));
    }
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    auto t = RTree::BulkLoad(objects, ptrs, &pm, {fanout}, &stats);
    UVD_CHECK(t.ok()) << t.status().ToString();
    tree.emplace(std::move(t).value());
  }
};

std::vector<int> SortedIds(const std::vector<LeafEntry>& entries) {
  std::vector<int> ids;
  ids.reserve(entries.size());
  for (const LeafEntry& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Query points sweeping the domain diagonally — adjacent queries are
// spatially close (the workload the session is built for), with one long
// jump in the middle to force a pool rebuild mid-sweep.
std::vector<geom::Point> SweepPoints(int count) {
  std::vector<geom::Point> pts;
  pts.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / std::max(1, count - 1);
    const double jump = (i == count / 2) ? 4000.0 : 0.0;
    pts.push_back({500.0 + 9000.0 * t,
                   std::min(9800.0, 700.0 + 8600.0 * t + jump)});
  }
  return pts;
}

TEST(TraversalSessionTest, KNearestMatchesFreshTreeTraversals) {
  Fixture f;
  f.Build(900, 7);
  for (int tile : {1, 7, 64}) {
    TraversalSession session(*f.tree);
    int since_reset = 0;
    for (const geom::Point& q : SweepPoints(60)) {
      if (since_reset++ == tile) {
        session.Reset();  // tile boundary: new sweep, same session object
        since_reset = 1;
      }
      for (int k : {1, 10, 50}) {
        std::vector<LeafEntry> got;
        session.KNearest(q, k, &got);
        const std::vector<LeafEntry> want = f.tree->KNearestByDistMin(q, k);
        ASSERT_EQ(want.size(), got.size()) << "tile=" << tile << " k=" << k;
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(want[i].id, got[i].id) << "tile=" << tile << " k=" << k
                                           << " rank=" << i;
          EXPECT_EQ(want[i].mbc.center.x, got[i].mbc.center.x);
          EXPECT_EQ(want[i].mbc.center.y, got[i].mbc.center.y);
          EXPECT_EQ(want[i].mbc.radius, got[i].mbc.radius);
        }
      }
    }
  }
}

TEST(TraversalSessionTest, CentersInRangeMatchesFreshTreeSet) {
  Fixture f;
  f.Build(900, 11);
  TraversalSession session(*f.tree);
  for (const geom::Point& q : SweepPoints(60)) {
    // Interleave with k-NN the way BuildSeedRegion + Find do per anchor.
    std::vector<LeafEntry> knn;
    session.KNearest(q, 20, &knn);
    for (double radius : {30.0, 250.0, 1200.0}) {
      std::vector<LeafEntry> got;
      session.CentersInRange(q, radius, &got);
      EXPECT_EQ(SortedIds(f.tree->CentersInRange(q, radius)), SortedIds(got))
          << "radius=" << radius;
    }
  }
}

TEST(TraversalSessionTest, PoolAccountingAndLocalityPayoff) {
  Fixture f;
  f.Build(900, 13);
  TraversalSession session(*f.tree);
  for (const geom::Point& q : SweepPoints(80)) {
    std::vector<LeafEntry> out;
    session.KNearest(q, 30, &out);
    session.CentersInRange(q, 120.0, &out);
  }
  // The sweep is local, so the pool must serve nearly every query and
  // rebuild far less often than once per anchor.
  EXPECT_GT(session.pool_serves(), 100u);   // 160 queries issued
  EXPECT_LT(session.pool_rebuilds(), 40u);  // vs 160 worst case
  EXPECT_GT(session.pool_size(), 0u);
  EXPECT_GT(session.memo_hits() + session.memo_misses(), 0u);
}

TEST(TraversalSessionTest, TinyMemoEvictsButStaysExact) {
  Fixture f;
  f.Build(900, 17, /*fanout=*/16);  // many leaves, 2-slot memo
  TraversalSessionOptions options;
  options.leaf_memo_capacity = 2;
  TraversalSession session(*f.tree, options);
  for (const geom::Point& q : SweepPoints(40)) {
    std::vector<LeafEntry> got;
    session.KNearest(q, 25, &got);
    const std::vector<LeafEntry> want = f.tree->KNearestByDistMin(q, 25);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i].id, got[i].id);
  }
  EXPECT_LE(session.memo_size(), 2u);
  EXPECT_GT(session.memo_misses(), 2u);  // eviction happened
}

TEST(TraversalSessionTest, ResetDropsPoolAndBound) {
  Fixture f;
  f.Build(400, 19);
  TraversalSession session(*f.tree);
  std::vector<LeafEntry> out;
  session.KNearest({5000.0, 5000.0}, 10, &out);
  session.Reset();
  EXPECT_EQ(session.pool_size(), 0u);
  // Still exact after the reset.
  session.KNearest({8000.0, 2000.0}, 10, &out);
  const std::vector<LeafEntry> want =
      f.tree->KNearestByDistMin({8000.0, 2000.0}, 10);
  ASSERT_EQ(want.size(), out.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i].id, out[i].id);
}

TEST(TraversalSessionTest, DegenerateQueries) {
  Fixture f;
  f.Build(50, 23);
  TraversalSession session(*f.tree);
  std::vector<LeafEntry> out;
  session.KNearest({5000.0, 5000.0}, 0, &out);
  EXPECT_TRUE(out.empty());
  session.KNearest({5000.0, 5000.0}, 500, &out);  // k > n clamps to n
  EXPECT_EQ(out.size(), 50u);
  session.CentersInRange({5000.0, 5000.0}, 0.0, &out);
  EXPECT_EQ(SortedIds(f.tree->CentersInRange({5000.0, 5000.0}, 0.0)),
            SortedIds(out));
}

}  // namespace
}  // namespace rtree
}  // namespace uvd
