// Privacy-preserving location services (paper Sec. I, [9][10][16]): user
// positions are deliberately "cloaked" into larger regions before being
// released. The service still wants to answer "which user could be nearest
// to this point of interest?" — and the cloaked regions are exactly
// attribute uncertainty.
//
// This example cloaks polygonal home zones into minimal bounding circles
// (the paper's Sec. III-C conversion), builds the UV-diagram, and shows
// how enlarging the cloaking radius spreads nearest-neighbor probability
// over more users (better privacy, vaguer answers).
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/uv_diagram.h"

namespace {

// A jittered polygon around a home position: the cloaking region handed to
// the service instead of the exact location.
std::vector<uvd::geom::Point> CloakPolygon(uvd::geom::Point home, double spread,
                                           uvd::Rng* rng) {
  std::vector<uvd::geom::Point> poly;
  const int corners = 5 + static_cast<int>(rng->UniformInt(0, 3));
  for (int c = 0; c < corners; ++c) {
    const double ang = 2.0 * M_PI * c / corners + rng->Uniform(-0.2, 0.2);
    const double rad = spread * rng->Uniform(0.6, 1.0);
    poly.push_back(home + uvd::geom::UnitVector(ang) * rad);
  }
  return poly;
}

double EntropyOfAnswers(const std::vector<uvd::uncertain::PnnAnswer>& answers) {
  double h = 0;
  for (const auto& a : answers) {
    if (a.probability > 0) h -= a.probability * std::log2(a.probability);
  }
  return h;
}

}  // namespace

int main() {
  using namespace uvd;

  const double kSide = 8000.0;
  const geom::Box domain({0, 0}, {kSide, kSide});
  Rng rng(99);

  // 2000 users with home positions; the same population cloaked at two
  // different radii.
  std::vector<geom::Point> homes;
  for (int i = 0; i < 2000; ++i) {
    homes.push_back({rng.Uniform(200, kSide - 200), rng.Uniform(200, kSide - 200)});
  }

  for (const double spread : {60.0, 240.0}) {
    Rng poly_rng(7);
    std::vector<uncertain::UncertainObject> users;
    for (size_t i = 0; i < homes.size(); ++i) {
      // Polygonal cloak -> minimal bounding circle (Sec. III-C): the
      // UV-diagram built on the MBCs answers a superset of the exact
      // polygon answers, so no user is ever wrongly excluded.
      users.push_back(uncertain::UncertainObject::FromPolygonRegion(
          static_cast<int>(i), CloakPolygon(homes[i], spread, &poly_rng)));
    }
    auto diagram = core::UVDiagram::Build(std::move(users), domain).ValueOrDie();

    // Average number of plausible nearest users and answer entropy over a
    // fixed panel of points of interest.
    Rng poi_rng(5);
    double avg_candidates = 0, avg_entropy = 0;
    const int kPois = 100;
    for (int p = 0; p < kPois; ++p) {
      const geom::Point poi{poi_rng.Uniform(0, kSide), poi_rng.Uniform(0, kSide)};
      const auto answers = diagram.QueryPnn(poi).ValueOrDie();
      avg_candidates += static_cast<double>(answers.size());
      avg_entropy += EntropyOfAnswers(answers);
    }
    avg_candidates /= kPois;
    avg_entropy /= kPois;
    std::printf(
        "cloak spread %5.0f m: avg %.2f plausible nearest users/POI, "
        "answer entropy %.3f bits\n",
        spread, avg_candidates, avg_entropy);
  }

  std::printf(
      "\nlarger cloaks spread NN probability across more users: stronger\n"
      "location privacy, less precise service answers — quantified above.\n");
  return 0;
}
