#include "uncertain/uncertain_object.h"

namespace uvd {
namespace uncertain {

UncertainObject UncertainObject::FromPolygonRegion(
    int id, const std::vector<geom::Point>& polygon, PdfKind kind, int num_bars) {
  const geom::Circle mbc = geom::MinimalEnclosingCircle(polygon);
  RadialHistogramPdf pdf = (kind == PdfKind::kGaussian)
                               ? RadialHistogramPdf::Gaussian(mbc.radius, num_bars)
                               : RadialHistogramPdf::Uniform(mbc.radius, num_bars);
  return UncertainObject(id, mbc, std::move(pdf));
}

}  // namespace uncertain
}  // namespace uvd
