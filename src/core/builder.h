// Compatibility entry point for UV-index construction. The staged
// implementation — stage decomposition, worker fan-out, in-order
// insertion — lives in core/build_pipeline.h; BuildMethod and BuildStats
// are defined there and re-exported through this header.
#ifndef UVD_CORE_BUILDER_H_
#define UVD_CORE_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "core/build_pipeline.h"
#include "core/cr_finder.h"
#include "core/uv_index.h"
#include "rtree/rtree.h"
#include "uncertain/object_store.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace core {

/// Builds the UV-index for the dataset with the chosen method. `tree` is
/// the R-tree over the same objects (used by Algorithm 2's k-NN and range
/// queries); `ptrs` are the ObjectStore pointers stored in leaf tuples.
/// Finalizes the index. Objects must be in id order (objects[i].id() == i).
///
/// `build_threads` follows BuildPipelineOptions: 1 (the default here, for
/// historical callers) is the serial legacy loop, <= 0 means hardware
/// concurrency; every setting produces a byte-identical index.
Status BuildUvIndex(const std::vector<uncertain::UncertainObject>& objects,
                    const std::vector<uncertain::ObjectPtr>& ptrs,
                    const rtree::RTree& tree, const geom::Box& domain,
                    BuildMethod method, const CrFinderOptions& cr_options,
                    UVIndex* index, BuildStats* build_stats = nullptr,
                    Stats* stats = nullptr, int build_threads = 1);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_BUILDER_H_
