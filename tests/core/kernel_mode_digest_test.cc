// Determinism contract of the batch kernel layer (geom/batch/): for every
// build method, dataset shape and thread count, KernelMode::kBatch must
// produce a serialized UV-index BITWISE-identical to KernelMode::kScalar
// (the oracle), and PNN / answer-id digests must match. SIMD on/off
// equality follows transitively: the scalar path is identical in both
// builds, batch is asserted equal to scalar within each build, and CI runs
// this test in a UVD_ENABLE_SIMD=OFF leg.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/build_pipeline.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"
#include "geom/batch/kernels.h"
#include "query/query_engine.h"
#include "query/result_digest.h"

namespace uvd {
namespace core {
namespace {

enum class Shape { kUniform, kClustered };

std::vector<uncertain::UncertainObject> MakeObjects(Shape shape, size_t n,
                                                    uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  if (shape == Shape::kUniform) return datagen::GenerateUniform(opts);
  return datagen::GenerateGaussianCloud(opts, 700.0);
}

geom::Box Domain(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  return datagen::DomainFor(opts);
}

UVDiagram BuildWith(Shape shape, size_t n, uint64_t seed,
                    const UVDiagramOptions& options, Stats* stats = nullptr) {
  auto diagram =
      UVDiagram::Build(MakeObjects(shape, n, seed), Domain(n, seed), options, stats);
  UVD_CHECK(diagram.ok()) << diagram.status().ToString();
  return std::move(diagram).ValueOrDie();
}

std::vector<uint8_t> Serialized(const UVDiagram& d) {
  std::vector<uint8_t> bytes;
  UVD_CHECK_OK(d.index().SerializeStructure(&bytes));
  return bytes;
}

uint64_t PnnDigest(const UVDiagram& d, uint64_t seed) {
  query::QueryEngine engine(d, {});
  Rng rng(seed);
  query::QueryBatch batch;
  for (int t = 0; t < 40; ++t) {
    const geom::Point p{rng.Uniform(d.domain().lo.x, d.domain().hi.x),
                        rng.Uniform(d.domain().lo.y, d.domain().hi.y)};
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return query::DigestPointAnswers(engine.ExecuteBatch(batch));
}

struct ModeCase {
  Shape shape;
  BuildMethod method;
  const char* name;
};

class KernelModeDigestTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(KernelModeDigestTest, BatchMatchesScalarAcrossThreads) {
  const ModeCase mc = GetParam();
  const size_t n = 600;
  const uint64_t seed = 97;

  UVDiagramOptions scalar_options;
  scalar_options.method = mc.method;
  scalar_options.build_threads = 1;
  scalar_options.kernel_mode = geom::KernelMode::kScalar;
  const UVDiagram oracle = BuildWith(mc.shape, n, seed, scalar_options);
  const std::vector<uint8_t> oracle_bytes = Serialized(oracle);
  const uint64_t oracle_digest = PnnDigest(oracle, 11);

  for (int threads : {1, 8}) {
    for (geom::KernelMode mode :
         {geom::KernelMode::kScalar, geom::KernelMode::kBatch}) {
      SCOPED_TRACE(std::string("threads=") + std::to_string(threads) +
                   " kernel=" + geom::KernelModeName(mode));
      UVDiagramOptions options;
      options.method = mc.method;
      options.build_threads = threads;
      options.kernel_mode = mode;
      const UVDiagram built = BuildWith(mc.shape, n, seed, options);
      EXPECT_EQ(oracle_bytes, Serialized(built));
      EXPECT_EQ(oracle_digest, PnnDigest(built, 11));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndShapes, KernelModeDigestTest,
    ::testing::Values(ModeCase{Shape::kUniform, BuildMethod::kIC, "UniformIC"},
                      ModeCase{Shape::kClustered, BuildMethod::kIC, "ClusteredIC"},
                      ModeCase{Shape::kUniform, BuildMethod::kICR, "UniformICR"},
                      ModeCase{Shape::kClustered, BuildMethod::kICR,
                               "ClusteredICR"}),
    [](const ::testing::TestParamInfo<ModeCase>& info) { return info.param.name; });

TEST(KernelModeDigestTest, BasicMethodMatchesToo) {
  // Basic is O(n^2) envelope insertions — keep it small. This is the path
  // where the batch envelope prefilter skips the most work, so it is the
  // most important bitwise check.
  const size_t n = 220;
  UVDiagramOptions scalar_options;
  scalar_options.method = BuildMethod::kBasic;
  scalar_options.build_threads = 1;
  scalar_options.kernel_mode = geom::KernelMode::kScalar;
  const UVDiagram oracle = BuildWith(Shape::kUniform, n, 13, scalar_options);
  UVDiagramOptions options = scalar_options;
  options.kernel_mode = geom::KernelMode::kBatch;
  options.build_threads = 8;
  const UVDiagram batch = BuildWith(Shape::kUniform, n, 13, options);
  EXPECT_EQ(Serialized(oracle), Serialized(batch));
  EXPECT_EQ(PnnDigest(oracle, 3), PnnDigest(batch, 3));
}

TEST(KernelModeDigestTest, DecisionTickersMatchScanTickersMayNot) {
  // The batch path must perform the same number of overlap checks and
  // page writes — only the scan-length tickers (kHyperbolaTests,
  // kFourPointTests) and the prefilter-skipped kEnvelopeInsertions may
  // legitimately differ.
  const size_t n = 500;
  Stats scalar_stats, batch_stats;
  UVDiagramOptions options;
  options.build_threads = 1;
  options.kernel_mode = geom::KernelMode::kScalar;
  BuildWith(Shape::kUniform, n, 29, options, &scalar_stats);
  options.kernel_mode = geom::KernelMode::kBatch;
  BuildWith(Shape::kUniform, n, 29, options, &batch_stats);
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); ++i) {
    const Ticker t = static_cast<Ticker>(i);
    if (t == Ticker::kHyperbolaTests || t == Ticker::kFourPointTests ||
        t == Ticker::kEnvelopeInsertions) {
      continue;  // mode-dependent scan lengths; see geom/batch/kernels.h
    }
    EXPECT_EQ(scalar_stats.Get(t), batch_stats.Get(t)) << TickerName(t);
  }
  // The prefilter must actually skip something on this workload, or the
  // batch path has silently degraded to scalar billing.
  EXPECT_LE(batch_stats.Get(Ticker::kEnvelopeInsertions),
            scalar_stats.Get(Ticker::kEnvelopeInsertions));
}

TEST(KernelModeDigestTest, ComputeStage1CandidatesMatches) {
  // The materialized stage-1 entry point (sharded builds) honors the knob
  // the same way: identical candidate lists for both modes.
  const size_t n = 400;
  const auto objects = MakeObjects(Shape::kClustered, n, 41);
  const geom::Box domain = Domain(n, 41);
  storage::PageManager pm(4096);
  uncertain::ObjectStore store(&pm);
  std::vector<uncertain::ObjectPtr> ptrs;
  UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
  auto tree = rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, nullptr).ValueOrDie();

  std::vector<std::vector<int>> scalar_ids, batch_ids;
  BuildPipelineOptions options;
  options.build_threads = 4;
  options.kernel_mode = geom::KernelMode::kScalar;
  UVD_CHECK_OK(ComputeStage1Candidates(objects, tree, domain, options, &scalar_ids));
  options.kernel_mode = geom::KernelMode::kBatch;
  UVD_CHECK_OK(ComputeStage1Candidates(objects, tree, domain, options, &batch_ids));
  EXPECT_EQ(scalar_ids, batch_ids);
}

}  // namespace
}  // namespace core
}  // namespace uvd
