// Tests for the simulated disk: page manager I/O accounting, buffer pool
// LRU behaviour, record encode/decode round-trips.
#include <gtest/gtest.h>

#include "storage/page_manager.h"
#include "storage/record.h"

namespace uvd {
namespace storage {
namespace {

TEST(PageManagerTest, AllocateAndRoundTrip) {
  Stats stats;
  PageManager pm(4096, &stats);
  const PageId a = pm.Allocate();
  const PageId b = pm.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pm.num_pages(), 2u);
  EXPECT_EQ(pm.bytes_on_disk(), 2u * 4096u);

  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(pm.Write(a, data).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(pm.Read(a, &out).ok());
  ASSERT_EQ(out.size(), 4096u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[4], 5);
  EXPECT_EQ(out[5], 0);  // zero-padded
}

TEST(PageManagerTest, IoCounting) {
  Stats stats;
  PageManager pm(512, &stats);
  const PageId p = pm.Allocate();
  std::vector<uint8_t> buf(10, 7);
  ASSERT_TRUE(pm.Write(p, buf).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(pm.Read(p, &out).ok());
  ASSERT_TRUE(pm.Read(p, &out).ok());
  EXPECT_EQ(stats.Get(Ticker::kPageWrites), 1u);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 2u);
}

TEST(PageManagerTest, ErrorsOnBadPage) {
  PageManager pm(256);
  std::vector<uint8_t> out;
  EXPECT_EQ(pm.Read(42, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(pm.Write(42, out).code(), StatusCode::kNotFound);
}

TEST(PageManagerTest, RejectsOversizeWrite) {
  PageManager pm(16);
  const PageId p = pm.Allocate();
  std::vector<uint8_t> big(17, 1);
  EXPECT_EQ(pm.Write(p, big).code(), StatusCode::kInvalidArgument);
}

TEST(PageManagerTest, OverwriteClearsOldData) {
  PageManager pm(64);
  const PageId p = pm.Allocate();
  ASSERT_TRUE(pm.Write(p, std::vector<uint8_t>(64, 0xAB)).ok());
  ASSERT_TRUE(pm.Write(p, std::vector<uint8_t>{1}).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(pm.Read(p, &out).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[63], 0);
}

TEST(BufferPoolTest, HitsAndMisses) {
  Stats stats;
  PageManager pm(128, &stats);
  const PageId a = pm.Allocate();
  const PageId b = pm.Allocate();
  ASSERT_TRUE(pm.Write(a, {1}).ok());
  ASSERT_TRUE(pm.Write(b, {2}).ok());
  stats.Reset();

  BufferPool pool(&pm, 2, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Read(a, &out).ok());  // miss
  ASSERT_TRUE(pool.Read(a, &out).ok());  // hit
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolMisses), 1u);
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolHits), 1u);
  EXPECT_EQ(stats.Get(Ticker::kPageReads), 1u);  // only the miss hit disk
}

TEST(BufferPoolTest, LruEviction) {
  Stats stats;
  PageManager pm(64, &stats);
  const PageId a = pm.Allocate();
  const PageId b = pm.Allocate();
  const PageId c = pm.Allocate();
  BufferPool pool(&pm, 2, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Read(a, &out).ok());
  ASSERT_TRUE(pool.Read(b, &out).ok());
  ASSERT_TRUE(pool.Read(a, &out).ok());  // a becomes most recent
  ASSERT_TRUE(pool.Read(c, &out).ok());  // evicts b
  EXPECT_EQ(pool.size(), 2u);
  stats.Reset();
  ASSERT_TRUE(pool.Read(a, &out).ok());  // still cached
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolHits), 1u);
  ASSERT_TRUE(pool.Read(b, &out).ok());  // was evicted -> miss
  EXPECT_EQ(stats.Get(Ticker::kBufferPoolMisses), 1u);
}

TEST(BufferPoolTest, InvalidateForcesReread) {
  Stats stats;
  PageManager pm(64, &stats);
  const PageId a = pm.Allocate();
  BufferPool pool(&pm, 4, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Read(a, &out).ok());
  ASSERT_TRUE(pm.Write(a, {9}).ok());
  pool.Invalidate(a);
  ASSERT_TRUE(pool.Read(a, &out).ok());
  EXPECT_EQ(out[0], 9);
}

TEST(RecordTest, RoundTripPrimitives) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI32(-42);
  enc.PutDouble(3.14159);

  Decoder dec(buf);
  EXPECT_EQ(dec.GetU16(), 0xBEEF);
  EXPECT_EQ(dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetI32(), -42);
  EXPECT_DOUBLE_EQ(dec.GetDouble(), 3.14159);
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(RecordTest, SkipAndPosition) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU32(1);
  enc.PutU32(2);
  Decoder dec(buf);
  dec.Skip(4);
  EXPECT_EQ(dec.position(), 4u);
  EXPECT_EQ(dec.GetU32(), 2u);
}

}  // namespace
}  // namespace storage
}  // namespace uvd
