#include "bench_common.h"

#include <algorithm>
#include <cstdlib>

#include "common/timer.h"

namespace uvd {
namespace bench {

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("UVD_BENCH_SCALE");
    if (env == nullptr) return 0.2;
    const double v = std::atof(env);
    return std::clamp(v > 0 ? v : 0.2, 0.01, 10.0);
  }();
  return scale;
}

size_t ScaledCount(size_t paper_count) {
  return std::max<size_t>(500, static_cast<size_t>(paper_count * Scale()));
}

double SimulatedIoMs() {
  static const double latency = [] {
    const char* env = std::getenv("UVD_SIM_IO_MS");
    if (env == nullptr) return 5.0;
    const double v = std::atof(env);
    return std::clamp(v, 0.0, 100.0);
  }();
  return latency;
}

std::vector<size_t> SizeSweep() {
  std::vector<size_t> sizes;
  for (size_t paper_n = 10000; paper_n <= 80000; paper_n += 10000) {
    sizes.push_back(ScaledCount(paper_n));
  }
  return sizes;
}

QueryBenchFlags ParseQueryBenchFlags(int argc, char** argv) {
  QueryBenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_value = [&arg](const char* prefix, int* out) {
      const size_t len = std::string(prefix).size();
      if (arg.compare(0, len, prefix) != 0) return false;
      *out = std::atoi(arg.c_str() + len);
      return true;
    };
    if (int_value("--query_threads=", &flags.query_threads)) continue;
    if (int_value("--batch_size=", &flags.batch_size)) continue;
    if (int_value("--sim_io_us=", &flags.sim_io_us)) continue;
    if (arg == "--smoke") flags.smoke = true;
  }
  flags.batch_size = std::max(1, flags.batch_size);
  flags.sim_io_us = std::max(0, flags.sim_io_us);
  return flags;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("UVD_BENCH_SCALE=%.2f (paper |O| scaled by this factor)\n", Scale());
  std::printf("UVD_SIM_IO_MS=%.1f (simulated disk latency charged per page read)\n",
              SimulatedIoMs());
  std::printf("==============================================================\n");
}

std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, 7, "--json=") == 0) return arg.substr(7);
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

JsonReport::JsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void JsonReport::BeginRecord() { records_.emplace_back(); }

void JsonReport::Add(const std::string& key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  records_.back().emplace_back(key, buf);
}

void JsonReport::Add(const std::string& key, int64_t value) {
  records_.back().emplace_back(key, std::to_string(value));
}

void JsonReport::Add(const std::string& key, const std::string& value) {
  records_.back().emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void JsonReport::AddRaw(const std::string& key, const std::string& json_value) {
  records_.back().emplace_back(key, json_value);
}

bool JsonReport::WriteTo(const std::string& path) const {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write JSON report to %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %.6g,\n  \"records\": [",
               JsonEscape(bench_name_).c_str(), Scale());
  for (size_t r = 0; r < records_.size(); ++r) {
    std::fprintf(f, "%s\n    {", r == 0 ? "" : ",");
    for (size_t k = 0; k < records_[r].size(); ++k) {
      std::fprintf(f, "%s\"%s\": %s", k == 0 ? "" : ", ",
                   JsonEscape(records_[r][k].first).c_str(),
                   records_[r][k].second.c_str());
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("JSON report written to %s\n", path.c_str());
  return true;
}

core::UVDiagram BuildDiagram(std::vector<uncertain::UncertainObject> objects,
                             const geom::Box& domain, core::UVDiagramOptions options,
                             Stats* stats) {
  // The paper's evaluation is single-threaded: figure benches that leave
  // build_threads at its default (hardware concurrency) get the serial
  // build so T_c and the stage breakdowns keep the paper's semantics.
  // Benches measuring the parallel pipeline pass an explicit count.
  if (options.build_threads <= 0) options.build_threads = 1;
  return core::UVDiagram::Build(std::move(objects), domain, options, stats)
      .ValueOrDie();
}

PnnWorkloadResult MeasurePnn(const core::UVDiagram& diagram,
                             const std::vector<geom::Point>& queries) {
  PnnWorkloadResult r;
  Stats& stats = diagram.stats();
  const double n = static_cast<double>(queries.size());

  stats.Reset();
  size_t answers = 0;
  Timer uv_timer;
  for (const geom::Point& q : queries) {
    answers += diagram.QueryPnn(q, &r.uv_breakdown).ValueOrDie().size();
  }
  r.uv_cpu_ms = uv_timer.ElapsedMillis() / n;
  r.uv_leaf_io = static_cast<double>(stats.Get(Ticker::kUvIndexLeafReads)) / n;
  r.uv_object_io = static_cast<double>(stats.Get(Ticker::kPageReads) -
                                       stats.Get(Ticker::kUvIndexLeafReads)) /
                   n;
  r.avg_answers = static_cast<double>(answers) / n;

  stats.Reset();
  Timer rt_timer;
  for (const geom::Point& q : queries) {
    UVD_CHECK(diagram.QueryPnnWithRtree(q, &r.rtree_breakdown).ok());
  }
  r.rtree_cpu_ms = rt_timer.ElapsedMillis() / n;
  r.rtree_leaf_io = static_cast<double>(stats.Get(Ticker::kRtreeLeafReads)) / n;
  r.rtree_object_io = static_cast<double>(stats.Get(Ticker::kPageReads) -
                                          stats.Get(Ticker::kRtreeLeafReads)) /
                      n;

  // Charge simulated disk latency: leaf reads belong to the index phase,
  // object-record reads to the retrieval phase (Fig. 6(c) components).
  const double lat_s = SimulatedIoMs() * 1e-3;
  r.uv_ms = r.uv_cpu_ms + (r.uv_leaf_io + r.uv_object_io) * SimulatedIoMs();
  r.rtree_ms =
      r.rtree_cpu_ms + (r.rtree_leaf_io + r.rtree_object_io) * SimulatedIoMs();
  r.uv_breakdown.index_seconds += r.uv_leaf_io * n * lat_s;
  r.uv_breakdown.retrieval_seconds += r.uv_object_io * n * lat_s;
  r.rtree_breakdown.index_seconds += r.rtree_leaf_io * n * lat_s;
  r.rtree_breakdown.retrieval_seconds += r.rtree_object_io * n * lat_s;
  return r;
}

}  // namespace bench
}  // namespace uvd
