// Tests for the distance CDF used by the probability integration.
#include "uncertain/distance_dist.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "uncertain/monte_carlo.h"

namespace uvd {
namespace uncertain {
namespace {

UncertainObject MakeObj(int id, geom::Point c, double r,
                        PdfKind kind = PdfKind::kGaussian) {
  if (kind == PdfKind::kGaussian) {
    return UncertainObject(id, geom::Circle(c, r), RadialHistogramPdf::Gaussian(r));
  }
  return UncertainObject(id, geom::Circle(c, r), RadialHistogramPdf::Uniform(r));
}

TEST(DistanceDistTest, SupportBounds) {
  const auto obj = MakeObj(0, {10, 0}, 3);
  DistanceDistribution dist(obj, {0, 0});
  EXPECT_DOUBLE_EQ(dist.lower(), 7.0);
  EXPECT_DOUBLE_EQ(dist.upper(), 13.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(6.9), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(13.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(20.0), 1.0);
}

TEST(DistanceDistTest, MonotoneNondecreasing) {
  const auto obj = MakeObj(0, {5, 5}, 4);
  for (const geom::Point q : {geom::Point{0, 0}, geom::Point{5, 5}, geom::Point{6, 4}}) {
    DistanceDistribution dist(obj, q);
    double prev = 0.0;
    for (double d = 0.0; d <= dist.upper() + 1.0; d += 0.05) {
      const double c = dist.Cdf(d);
      EXPECT_GE(c, prev - 1e-12) << "q=(" << q.x << "," << q.y << ") d=" << d;
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
  }
}

TEST(DistanceDistTest, QueryInsideRegion) {
  // Query at the region center: distance distribution equals the radial CDF.
  const auto obj = MakeObj(0, {0, 0}, 10, PdfKind::kUniform);
  DistanceDistribution dist(obj, {0, 0});
  EXPECT_DOUBLE_EQ(dist.lower(), 0.0);
  for (double d = 1.0; d < 10.0; d += 1.0) {
    EXPECT_NEAR(dist.Cdf(d), (d * d) / 100.0, 1e-9) << d;
  }
}

TEST(DistanceDistTest, PointObjectIsStep) {
  const auto obj = MakeObj(0, {3, 4}, 0);
  DistanceDistribution dist(obj, {0, 0});
  EXPECT_DOUBLE_EQ(dist.lower(), 5.0);
  EXPECT_DOUBLE_EQ(dist.upper(), 5.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(4.999), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(5.0), 1.0);
}

TEST(DistanceDistTest, MatchesMonteCarloGaussian) {
  Rng rng(99);
  const auto obj = MakeObj(0, {20, 0}, 8);
  const geom::Point q{0, 0};
  DistanceDistribution dist(obj, q);
  const int n = 200000;
  for (double d : {14.0, 18.0, 20.0, 22.0, 26.0}) {
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      if (geom::Distance(SamplePosition(obj, &rng), q) <= d) ++hits;
    }
    EXPECT_NEAR(dist.Cdf(d), static_cast<double>(hits) / n, 0.01) << "d=" << d;
  }
}

TEST(DistanceDistTest, MatchesMonteCarloQueryInsideUniform) {
  Rng rng(123);
  const auto obj = MakeObj(0, {0, 0}, 6, PdfKind::kUniform);
  const geom::Point q{2, 1};  // inside the region
  DistanceDistribution dist(obj, q);
  const int n = 200000;
  for (double d : {1.0, 2.5, 4.0, 6.0, 8.0}) {
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      if (geom::Distance(SamplePosition(obj, &rng), q) <= d) ++hits;
    }
    EXPECT_NEAR(dist.Cdf(d), static_cast<double>(hits) / n, 0.01) << "d=" << d;
  }
}

}  // namespace
}  // namespace uncertain
}  // namespace uvd
