#!/usr/bin/env python3
"""Markdown link checker for the docs-lint CI step.

Checks every inline link and image target in the given markdown files:

  * relative file targets (optionally with a #fragment) must exist on disk,
    resolved against the linking file's directory;
  * intra-file ``#fragment`` targets must match a heading in that file
    (GitHub slug rules: lowercase, punctuation stripped, spaces to hyphens);
  * ``http(s)``/``mailto`` targets are accepted without fetching (CI stays
    hermetic) — only an empty target is an error.

Fenced code blocks and inline code spans are ignored, so ASCII diagrams and
``foo[i](x)``-style snippets do not produce false positives.

Usage: check_markdown_links.py FILE.md [FILE.md ...]
Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def strip_code(text: str) -> str:
    """Blanks out fenced code blocks and inline code spans."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def github_slug(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    slugs = set()
    for line in strip_code(path.read_text(encoding="utf-8")).splitlines():
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def check_file(path: Path) -> list:
    errors = []
    text = strip_code(path.read_text(encoding="utf-8"))
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not target or target == "#":
            errors.append(f"{path}: empty link target")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = path if not file_part else (path.parent / file_part)
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(resolved):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for e in errors:
        print(e)
    print(f"checked {len(argv) - 1} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
