// Branch-and-prune PNN evaluation on the R-tree — the baseline of [14]
// that the paper compares the UV-index against (Sec. I, Sec. VI). The
// search maintains d_minmax (the smallest max-distance seen so far) and
// prunes subtrees whose MINDIST exceeds it; all surviving leaf pages are
// read, which is exactly the I/O cost the paper attributes to the R-tree.
#ifndef UVD_RTREE_PNN_BASELINE_H_
#define UVD_RTREE_PNN_BASELINE_H_

#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "geom/point.h"
#include "rtree/rtree.h"
#include "uncertain/object_store.h"
#include "uncertain/qualification.h"

namespace uvd {
namespace rtree {

/// Result of the index phase: candidate tuples and the verification bound.
struct PnnRetrieval {
  std::vector<LeafEntry> candidates;  ///< dist_min <= d_minmax
  double d_minmax = 0.0;
};

/// Traversal strategies for the R-tree baseline.
enum class BaselineTraversal {
  /// Faithful to [14] as characterized by the paper ("multiple traversals
  /// over the R-tree, resulting in a high I/O cost"): a first traversal
  /// establishes d_minmax from object MBCs, a second collects every object
  /// with dist_min <= d_minmax.
  kTwoPhase,
  /// Single best-first pass; d_minmax tightened at leaf entries only.
  kBestFirst,
  /// Best-first pass additionally tightening d_minmax with node-level
  /// MAXDIST before descending (modern improvement; ablation).
  kBestFirstNodeTightened,
};

/// Baseline variants (ablation bench: bench_ablation_baseline).
struct PnnBaselineOptions {
  BaselineTraversal traversal = BaselineTraversal::kTwoPhase;
};

/// Wall-time decomposition of one PNN evaluation (Fig. 6(c)):
/// index traversal / object (pdf) retrieval / probability computation.
struct PnnBreakdown {
  double index_seconds = 0.0;
  double retrieval_seconds = 0.0;
  double computation_seconds = 0.0;

  double Total() const {
    return index_seconds + retrieval_seconds + computation_seconds;
  }
  void Accumulate(const PnnBreakdown& o) {
    index_seconds += o.index_seconds;
    retrieval_seconds += o.retrieval_seconds;
    computation_seconds += o.computation_seconds;
  }
};

/// Index phase only: retrieve all answer-object candidates via
/// branch-and-prune. Page I/O failures propagate as error Status.
Result<PnnRetrieval> RetrievePnnCandidates(const RTree& tree, const geom::Point& q,
                                           Stats* stats = nullptr,
                                           const PnnBaselineOptions& options = {});

/// Full PNN: retrieval + object fetch + numerical integration. Any page
/// I/O failure propagates (a dropped candidate would silently corrupt
/// the probabilities).
Result<std::vector<uncertain::PnnAnswer>> EvaluatePnnWithRtree(
    const RTree& tree, const uncertain::ObjectStore& store, const geom::Point& q,
    const uncertain::QualificationOptions& options = {}, Stats* stats = nullptr,
    PnnBreakdown* breakdown = nullptr, const PnnBaselineOptions& baseline = {});

}  // namespace rtree
}  // namespace uvd

#endif  // UVD_RTREE_PNN_BASELINE_H_
