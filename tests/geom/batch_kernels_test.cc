// Unit tests for the SIMD batch kernels (geom/batch/): every kernel is
// checked bitwise against a straight scalar re-implementation of the loop
// it replaces, across block boundaries (empty input, exactly one block,
// tail lanes) and degenerate inputs (empty hull, vacuous constraints).
#include "geom/batch/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/uv_edge.h"
#include "geom/batch/hyperbola_batch.h"
#include "geom/box.h"
#include "geom/envelope.h"
#include "geom/hyperbola.h"

namespace uvd {
namespace geom {
namespace batch {
namespace {

std::vector<Circle> RandomCircles(Rng* rng, size_t n, double span,
                                  double max_radius) {
  std::vector<Circle> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({{rng->Uniform(0.0, span), rng->Uniform(0.0, span)},
                   rng->Uniform(0.0, max_radius)});
  }
  return out;
}

TEST(CircleSoATest, AssignMirrorsInput) {
  Rng rng(1);
  const auto circles = RandomCircles(&rng, 13, 100.0, 3.0);
  CircleSoA soa;
  soa.Assign(circles);
  ASSERT_EQ(soa.size(), circles.size());
  for (size_t i = 0; i < circles.size(); ++i) {
    EXPECT_EQ(soa.xs[i], circles[i].center.x);
    EXPECT_EQ(soa.ys[i], circles[i].center.y);
    EXPECT_EQ(soa.rs[i], circles[i].radius);
  }
  soa.Clear();
  EXPECT_TRUE(soa.empty());
}

TEST(AnyHullCircleContainsTest, MatchesScalarAcrossSizes) {
  Rng rng(7);
  // Cover the empty block, sub-block tails, exact block multiples and
  // several full blocks with a tail.
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 16u, 19u, 64u, 101u}) {
    for (size_t hull_size : {1u, 2u, 5u}) {
      std::vector<double> xs(n), ys(n);
      for (size_t i = 0; i < n; ++i) {
        xs[i] = rng.Uniform(0.0, 100.0);
        ys[i] = rng.Uniform(0.0, 100.0);
      }
      std::vector<Point> hull(hull_size);
      std::vector<double> hull_dist2(hull_size);
      for (size_t m = 0; m < hull_size; ++m) {
        hull[m] = {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
        const double d = rng.Uniform(5.0, 40.0);
        hull_dist2[m] = d * d;
      }
      std::vector<uint8_t> keep(n, 2);  // poison: kernel must write all n
      AnyHullCircleContains(xs.data(), ys.data(), n, hull.data(),
                            hull_dist2.data(), hull_size, keep.data());
      for (size_t i = 0; i < n; ++i) {
        uint8_t expected = 0;
        for (size_t m = 0; m < hull_size; ++m) {
          const double dx = xs[i] - hull[m].x;
          const double dy = ys[i] - hull[m].y;
          if (dx * dx + dy * dy <= hull_dist2[m]) expected = 1;
        }
        ASSERT_EQ(keep[i], expected) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(AnyHullCircleContainsTest, DegenerateHullKeepsNothing) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  std::vector<double> ys = {1.0, 2.0, 3.0};
  std::vector<uint8_t> keep(3, 1);
  AnyHullCircleContains(xs.data(), ys.data(), 3, nullptr, nullptr, 0,
                        keep.data());
  for (uint8_t k : keep) EXPECT_EQ(k, 0);
}

TEST(FindContainingOutsideRegionTest, MatchesScalarEdgeScan) {
  Rng rng(23);
  const Circle anchor{{50.0, 50.0}, 1.0};
  for (size_t n : {0u, 1u, 5u, 8u, 9u, 24u, 40u, 77u}) {
    const auto candidates = RandomCircles(&rng, n, 100.0, 2.0);
    CircleSoA soa;
    soa.Assign(candidates);
    // Small boxes near the anchor are plausibly contained in some outside
    // region; large ones are not — exercise both.
    for (double half : {0.5, 4.0, 30.0}) {
      const Point c{rng.Uniform(10.0, 90.0), rng.Uniform(10.0, 90.0)};
      const Box box({c.x - half, c.y - half}, {c.x + half, c.y + half});
      const auto corners = box.Corners();
      double cx[4], cy[4], cdmin[4];
      for (int k = 0; k < 4; ++k) {
        cx[k] = corners[static_cast<size_t>(k)].x;
        cy[k] = corners[static_cast<size_t>(k)].y;
        cdmin[k] = anchor.DistMin(corners[static_cast<size_t>(k)]);
      }
      size_t evaluated = 0;
      const ptrdiff_t got =
          FindContainingOutsideRegion(soa, cx, cy, cdmin, &evaluated);

      // Scalar oracle: the first candidate whose outside region contains
      // the box, via the exact UVEdge 4-point test.
      ptrdiff_t expected = -1;
      for (size_t j = 0; j < n; ++j) {
        const core::UVEdge edge(anchor, candidates[j], static_cast<int>(j));
        if (edge.RegionInOutside(box)) {
          expected = static_cast<ptrdiff_t>(j);
          break;
        }
      }
      ASSERT_EQ(got, expected) << "n=" << n << " half=" << half;
      if (got >= 0) {
        EXPECT_GE(evaluated, static_cast<size_t>(got) + 1);
      } else {
        EXPECT_EQ(evaluated, n);
      }
      EXPECT_LE(evaluated, n);
    }
  }
}

TEST(ConstraintPrefilterTest, MinRhoIsALowerBoundAndVacuousMatches) {
  Rng rng(31);
  const Circle anchor{{500.0, 500.0}, rng.Uniform(0.0, 5.0)};
  const auto others = RandomCircles(&rng, 64, 1000.0, 8.0);
  ConstraintPrefilter pre;
  BuildConstraintPrefilter(anchor, others.data(), others.size(), &pre);
  ASSERT_EQ(pre.size(), others.size());
  for (size_t j = 0; j < others.size(); ++j) {
    const RadialConstraint c =
        RadialConstraint::ForObjects(anchor, others[j], static_cast<int>(j));
    EXPECT_EQ(pre.vacuous[j] != 0, c.IsVacuous()) << j;
    if (c.IsVacuous()) continue;
    // min_rho must lower-bound rho over a dense angle sweep, with at most
    // a few-ulp violation (the 1e-9 slack covers far more).
    double min_seen = std::numeric_limits<double>::infinity();
    for (int k = 0; k < 4096; ++k) {
      const double theta = 2.0 * M_PI * k / 4096.0;
      min_seen = std::min(min_seen, c.RhoAtAngle(theta));
    }
    EXPECT_GE(min_seen, pre.min_rho[j] * (1.0 - 1e-12)) << j;
  }
}

TEST(ConstraintPrefilterTest, SkippedInsertionsAreProvablyNoOps) {
  // Build an envelope from near constraints, then verify every constraint
  // the prefilter would skip is indeed rejected by RadialEnvelope::Insert.
  Rng rng(47);
  const Box domain({0.0, 0.0}, {1000.0, 1000.0});
  const Circle anchor{{480.0, 520.0}, 2.0};
  RadialEnvelope env(anchor.center, domain);
  const auto near = RandomCircles(&rng, 24, 200.0, 3.0);
  for (size_t j = 0; j < near.size(); ++j) {
    Circle o = near[j];
    o.center += Vec2{400.0, 400.0};  // ring around the anchor
    env.Insert(RadialConstraint::ForObjects(anchor, o, static_cast<int>(j)));
  }
  const double max_d = env.MaxVertexDistance();
  ASSERT_TRUE(std::isfinite(max_d));
  const auto far = RandomCircles(&rng, 64, 1000.0, 3.0);
  ConstraintPrefilter pre;
  BuildConstraintPrefilter(anchor, far.data(), far.size(), &pre);
  for (size_t j = 0; j < far.size(); ++j) {
    if (pre.vacuous[j] || !PrefilterSkips(pre.min_rho[j], max_d)) continue;
    RadialEnvelope copy = env;
    EXPECT_FALSE(copy.Insert(RadialConstraint::ForObjects(
        anchor, far[j], 1000 + static_cast<int>(j))))
        << j;
  }
}

TEST(HyperbolaBatchTest, MatchesScalarHyperbolaBitwise) {
  Rng rng(91);
  HyperbolaBatch hb;
  std::vector<Hyperbola> scalar;
  // Build a batch of valid (non-overlapping) conic pairs.
  while (scalar.size() < 17) {
    const Circle oi{{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                    rng.Uniform(0.1, 2.0)};
    const Circle oj{{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                    rng.Uniform(0.1, 2.0)};
    auto h = Hyperbola::FromObjects(oi, oj);
    if (!h.ok()) continue;
    scalar.push_back(std::move(h).ValueOrDie());
    hb.Add(scalar.back());
  }
  ASSERT_EQ(hb.size(), scalar.size());

  std::vector<double> xs, ys;
  for (int k = 0; k < 100; ++k) {
    xs.push_back(rng.Uniform(-50.0, 150.0));
    ys.push_back(rng.Uniform(-50.0, 150.0));
  }
  // One point vs all conics.
  std::vector<uint8_t> mask(hb.size());
  for (size_t p = 0; p < xs.size(); ++p) {
    const Point pt{xs[p], ys[p]};
    hb.InOutsideRegionAll(pt, mask.data());
    for (size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(mask[i] != 0, scalar[i].InOutsideRegion(pt)) << p << "," << i;
    }
  }
  // One conic vs many points.
  std::vector<uint8_t> out(xs.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    hb.InOutsideRegionMany(i, xs.data(), ys.data(), xs.size(), out.data());
    for (size_t p = 0; p < xs.size(); ++p) {
      ASSERT_EQ(out[p] != 0, scalar[i].InOutsideRegion({xs[p], ys[p]}))
          << i << "," << p;
    }
  }
}

TEST(KernelModeTest, NamesAndSimdReporting) {
  EXPECT_STREQ(KernelModeName(KernelMode::kScalar), "scalar");
  EXPECT_STREQ(KernelModeName(KernelMode::kBatch), "batch");
  // SimdIsa always returns a non-empty tag; consistency with SimdEnabled.
  const char* isa = SimdIsa();
  ASSERT_NE(isa, nullptr);
  if (SimdEnabled()) {
    EXPECT_STRNE(isa, "blocks");
  } else {
    EXPECT_STREQ(isa, "blocks");
  }
}

}  // namespace
}  // namespace batch
}  // namespace geom
}  // namespace uvd
