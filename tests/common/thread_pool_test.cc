// ThreadPool: task execution, Wait semantics, reuse, and concurrent
// Stats shard merging (the pattern the build pipeline relies on).
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/stats.h"

namespace uvd {
namespace {

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, NonPositiveThreadCountFallsBackToDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreads());
}

TEST(ThreadPoolTest, PerWorkerStatsShardsMergeExactly) {
  constexpr int kWorkers = 4;
  constexpr int kAddsPerWorker = 1000;
  ThreadPool pool(kWorkers);
  std::vector<Stats> shards(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&shards, w] {
      for (int i = 0; i < kAddsPerWorker; ++i) {
        shards[w].Add(Ticker::kHyperbolaTests);
        shards[w].Add(Ticker::kPageReads, 2);
      }
    });
  }
  pool.Wait();
  Stats total;
  for (const Stats& shard : shards) total.MergeFrom(shard);
  EXPECT_EQ(total.Get(Ticker::kHyperbolaTests), kWorkers * kAddsPerWorker);
  EXPECT_EQ(total.Get(Ticker::kPageReads), 2u * kWorkers * kAddsPerWorker);
}

TEST(ThreadPoolTest, SharedStatsConcurrentAddIsExact) {
  // Tickers are relaxed atomics: hammering one Stats from every worker
  // must lose no increments.
  constexpr int kWorkers = 8;
  constexpr int kAddsPerWorker = 5000;
  Stats shared;
  {
    ThreadPool pool(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.Submit([&shared] {
        for (int i = 0; i < kAddsPerWorker; ++i) {
          shared.Add(Ticker::kRtreeLeafReads);
        }
      });
    }
  }
  EXPECT_EQ(shared.Get(Ticker::kRtreeLeafReads),
            static_cast<uint64_t>(kWorkers) * kAddsPerWorker);
}

}  // namespace
}  // namespace uvd
