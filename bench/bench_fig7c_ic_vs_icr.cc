// Fig. 7(c): construction time of IC vs ICR across |O|. Paper shape: IC
// far cheaper (about 10% of ICR at 70K) because it skips exact r-object
// generation.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(c): T_c of IC vs ICR", "r-object refinement cost");
  std::printf("%10s %12s %12s %12s\n", "|O|", "ICR(s)", "IC(s)", "IC/ICR(%)");
  for (size_t n : bench::SizeSweep()) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = 42;
    double icr = 0, ic = 0;
    {
      Stats stats;
      core::UVDiagramOptions options;
      options.method = core::BuildMethod::kICR;
      auto d = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                   datagen::DomainFor(opts), options, &stats);
      icr = d.build_stats().total_seconds;
    }
    {
      Stats stats;
      core::UVDiagramOptions options;
      options.method = core::BuildMethod::kIC;
      auto d = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                   datagen::DomainFor(opts), options, &stats);
      ic = d.build_stats().total_seconds;
    }
    std::printf("%10zu %12.2f %12.2f %12.1f\n", n, icr, ic, 100.0 * ic / icr);
  }
  return 0;
}
