// Fig. 7(h): UV-partition query time vs query-region size (100..500).
// Paper shape: T_q grows with the region (more partitions retrieved) and
// stays small in absolute terms.
#include "bench_common.h"

#include "common/timer.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(h): UV-partition query T_q vs region size",
                     "pattern-analysis range query over the adaptive grid");
  datagen::DatasetOptions opts;
  opts.count = bench::ScaledCount(30000);
  opts.seed = 42;
  Stats stats;
  auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                     datagen::DomainFor(opts), {}, &stats);
  std::printf("%12s %12s %16s\n", "region size", "T_q(ms)", "avg partitions");
  for (double side : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    const auto regions =
        datagen::SquareQueryRegions(bench::kNumQueries, diagram.domain(), side, 7);
    size_t partitions = 0;
    Timer t;
    for (const auto& r : regions) {
      partitions += diagram.QueryUvPartitions(r).size();
    }
    std::printf("%12.0f %12.4f %16.2f\n", side, t.ElapsedMillis() / regions.size(),
                static_cast<double>(partitions) / regions.size());
  }
  return 0;
}
