#include "storage/page_manager.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace uvd {
namespace storage {

namespace {
std::atomic<uint32_t> g_simulated_read_latency_us{0};
}  // namespace

void PageManager::SetSimulatedReadLatencyUs(uint32_t us) {
  g_simulated_read_latency_us.store(us, std::memory_order_relaxed);
}

uint32_t PageManager::SimulatedReadLatencyUs() {
  return g_simulated_read_latency_us.load(std::memory_order_relaxed);
}

PageId PageManager::Allocate() {
  pages_.emplace_back(page_size_, 0);
  return static_cast<PageId>(pages_.size() - 1);
}

PageId PageManager::AllocateRun(size_t count) {
  const PageId first = static_cast<PageId>(pages_.size());
  pages_.resize(pages_.size() + count, std::vector<uint8_t>(page_size_, 0));
  return first;
}

Status PageManager::Read(PageId id, std::vector<uint8_t>* out) const {
  if (id >= pages_.size()) {
    return Status::NotFound("page id out of range");
  }
  if (stats_ != nullptr) stats_->Add(Ticker::kPageReads);
  const bool timed = obs::MetricsEnabled();
  const uint64_t start_us = timed ? obs::NowMicros() : 0;
  const uint32_t latency_us = SimulatedReadLatencyUs();
  if (latency_us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  *out = pages_[id];
  if (timed) {
    // Histogram recording is a relaxed atomic increment; Read stays safe
    // for concurrent callers. Purely observational — the returned bytes
    // and every ticker are identical with metrics off.
    read_latency_us_.Record(obs::NowMicros() - start_us);
  }
  return Status::OK();
}

Status PageManager::Write(PageId id, const std::vector<uint8_t>& data) {
  if (id >= pages_.size()) {
    return Status::NotFound("page id out of range");
  }
  if (data.size() > page_size_) {
    return Status::InvalidArgument("record larger than page size");
  }
  if (stats_ != nullptr) stats_->Add(Ticker::kPageWrites);
  std::vector<uint8_t>& page = pages_[id];
  std::copy(data.begin(), data.end(), page.begin());
  std::fill(page.begin() + static_cast<long>(data.size()), page.end(), 0);
  return Status::OK();
}

}  // namespace storage
}  // namespace uvd
