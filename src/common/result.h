// Result<T>: value-or-Status, in the spirit of arrow::Result.
#ifndef UVD_COMMON_RESULT_H_
#define UVD_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace uvd {

/// \brief Holds either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<int> ParsePort(std::string_view s);
///   UVD_ASSIGN_OR_RETURN(int port, ParsePort(arg));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    UVD_DCHECK(!status_.ok()) << "Result constructed from OK status without value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; undefined if !ok() (checked in debug).
  const T& value() const& {
    UVD_DCHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    UVD_DCHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    UVD_DCHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the value or aborts with the error (tools / examples only).
  T ValueOrDie() && {
    if (!ok()) {
      UVD_CHECK(false) << status_.ToString();
    }
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace uvd

#define UVD_CONCAT_IMPL(a, b) a##b
#define UVD_CONCAT(a, b) UVD_CONCAT_IMPL(a, b)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// binds the value to `lhs`.
#define UVD_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto UVD_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!UVD_CONCAT(_res_, __LINE__).ok())                        \
    return UVD_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(UVD_CONCAT(_res_, __LINE__)).value()

#endif  // UVD_COMMON_RESULT_H_
