// Tests for the pattern-analysis queries of Sec. V-C.
#include "core/pattern_queries.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/uv_cell.h"
#include "core/uv_diagram.h"
#include "datagen/generators.h"

namespace uvd {
namespace core {
namespace {

UVDiagram BuildDiagram(size_t n, uint64_t seed) {
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  auto objects = datagen::GenerateUniform(opts);
  return UVDiagram::Build(std::move(objects), datagen::DomainFor(opts)).ValueOrDie();
}

TEST(PatternQueriesTest, PartitionsIntersectRange) {
  const UVDiagram d = BuildDiagram(2000, 3);
  const geom::Box range({4000, 4000}, {4500, 4500});
  const auto partitions = d.QueryUvPartitions(range);
  ASSERT_FALSE(partitions.empty());
  for (const auto& p : partitions) {
    EXPECT_TRUE(p.region.Intersects(range));
    EXPECT_GE(p.density, 0.0);
    if (p.region.Area() > 0) {
      EXPECT_NEAR(p.density, p.object_count / p.region.Area(), 1e-12);
    }
  }
}

TEST(PatternQueriesTest, PartitionsTileWithoutOverlap) {
  const UVDiagram d = BuildDiagram(2000, 5);
  const geom::Box range({1000, 1000}, {2000, 2000});
  const auto partitions = d.QueryUvPartitions(range);
  // Quad-tree leaves are interior-disjoint; their clipped areas must sum to
  // at most slightly more than the range area (boundary leaves overhang).
  double clipped = 0;
  for (const auto& p : partitions) {
    const geom::Box inter({std::max(p.region.lo.x, range.lo.x),
                           std::max(p.region.lo.y, range.lo.y)},
                          {std::min(p.region.hi.x, range.hi.x),
                           std::min(p.region.hi.y, range.hi.y)});
    if (!inter.IsEmpty()) clipped += inter.Area();
  }
  EXPECT_NEAR(clipped, range.Area(), 1e-6 * range.Area());
}

TEST(PatternQueriesTest, LargerRangeMorePartitions) {
  const UVDiagram d = BuildDiagram(3000, 7);
  size_t prev = 0;
  for (double side : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    const geom::Box range({5000 - side / 2, 5000 - side / 2},
                          {5000 + side / 2, 5000 + side / 2});
    const size_t count = d.QueryUvPartitions(range).size();
    EXPECT_GE(count, prev) << "side=" << side;
    prev = count;
  }
}

TEST(PatternQueriesTest, CellSummaryCoversExactCell) {
  // The union of associated leaves must cover the exact UV-cell (no false
  // exclusion), so the approximate area is an upper bound.
  datagen::DatasetOptions opts;
  opts.count = 500;
  opts.seed = 9;
  auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);
  const UVDiagram d = UVDiagram::Build(objects, domain).ValueOrDie();
  for (int id : {0, 100, 499}) {
    const auto summary = d.QueryUvCellSummary(id);
    ASSERT_TRUE(summary.ok());
    const UVCell exact = BuildExactUvCell(objects, static_cast<size_t>(id), domain);
    EXPECT_GE(summary.value().area, exact.Area() * (1 - 1e-9)) << "id=" << id;
    EXPECT_GE(summary.value().num_leaves, 1u);
    // Extent covers the exact cell's bounding box.
    const geom::Box bb = exact.BoundingBox();
    EXPECT_LE(summary.value().extent.lo.x, bb.lo.x + 1e-6);
    EXPECT_GE(summary.value().extent.hi.x, bb.hi.x - 1e-6);
  }
}

TEST(PatternQueriesTest, UnknownObjectNotFound) {
  const UVDiagram d = BuildDiagram(100, 11);
  const auto summary = d.QueryUvCellSummary(123456);
  EXPECT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNotFound);
}

TEST(PatternQueriesTest, OnDiskScanMatchesOfflineLists) {
  const UVDiagram d = BuildDiagram(400, 13);
  for (int id : {0, 200}) {
    const auto offline = RetrieveUvCellSummary(d.index(), id, true);
    const auto on_disk = RetrieveUvCellSummary(d.index(), id, false);
    ASSERT_TRUE(offline.ok());
    ASSERT_TRUE(on_disk.ok());
    EXPECT_EQ(offline.value().num_leaves, on_disk.value().num_leaves);
    EXPECT_DOUBLE_EQ(offline.value().area, on_disk.value().area);
  }
}

TEST(PatternQueriesTest, DenseAreaHasHigherDensity) {
  // Clustered data: partitions near the cluster carry more answer objects
  // per unit area than remote ones.
  datagen::DatasetOptions opts;
  opts.count = 3000;
  opts.seed = 17;
  auto objects = datagen::GenerateGaussianCloud(opts, /*sigma=*/800);
  const geom::Box domain = datagen::DomainFor(opts);
  const UVDiagram d = UVDiagram::Build(std::move(objects), domain).ValueOrDie();
  auto density_at = [&](geom::Point c) {
    const geom::Box range({c.x - 200, c.y - 200}, {c.x + 200, c.y + 200});
    double total = 0;
    for (const auto& p : d.QueryUvPartitions(range)) total += p.density;
    return total;
  };
  EXPECT_GT(density_at({5000, 5000}), density_at({500, 500}));
}

}  // namespace
}  // namespace core
}  // namespace uvd
