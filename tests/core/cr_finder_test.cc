// Tests for Algorithm 2: cr-object safety (C_i is always a superset of the
// exact r-objects F_i), seed selection, and pruning effectiveness.
#include "core/cr_finder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common/random.h"
#include "core/uv_cell.h"
#include "datagen/generators.h"

namespace uvd {
namespace core {
namespace {

struct Fixture {
  Stats stats;
  storage::PageManager pm{4096, &stats};
  uncertain::ObjectStore store{&pm};
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<rtree::RTree> tree;
  geom::Box domain;

  void Build(size_t n, uint64_t seed, double diameter = 30,
             double domain_size = 10000) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = seed;
    opts.diameter = diameter;
    opts.domain_size = domain_size;
    objects = datagen::GenerateUniform(opts);
    domain = datagen::DomainFor(opts);
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    tree.emplace(rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie());
  }
};

TEST(CrFinderTest, SeedsBoundedBySectors) {
  Fixture f;
  f.Build(500, 3);
  const CrObjectFinder finder(f.objects, *f.tree, f.domain, {}, &f.stats);
  for (size_t i = 0; i < 20; ++i) {
    std::vector<int> seeds;
    finder.BuildSeedRegion(i, &seeds);
    EXPECT_LE(seeds.size(), 8u);
    EXPECT_GE(seeds.size(), 1u);  // dense uniform data: sectors non-empty
    // No seed is the anchor itself.
    EXPECT_TRUE(std::find(seeds.begin(), seeds.end(), f.objects[i].id()) ==
                seeds.end());
  }
}

TEST(CrFinderTest, CrObjectsSupersetOfExactRObjects) {
  // The safety contract of the whole Section IV machinery.
  for (uint64_t seed : {1u, 2u, 3u}) {
    Fixture f;
    f.Build(400, seed);
    const CrObjectFinder finder(f.objects, *f.tree, f.domain, {}, &f.stats);
    for (size_t i = 0; i < f.objects.size(); i += 37) {
      const CrResult cr = finder.Find(i);
      const UVCell exact = BuildExactUvCell(f.objects, i, f.domain);
      for (int r : exact.RObjects()) {
        EXPECT_TRUE(std::binary_search(cr.cr_objects.begin(), cr.cr_objects.end(), r))
            << "seed=" << seed << " object=" << i << " lost r-object " << r;
      }
    }
  }
}

TEST(CrFinderTest, CellFromCrObjectsEqualsExactCell) {
  // Because C_i >= F_i, refining with just C_i reproduces the exact cell.
  Fixture f;
  f.Build(300, 17);
  const CrObjectFinder finder(f.objects, *f.tree, f.domain, {}, &f.stats);
  Rng rng(5);
  for (size_t i = 0; i < f.objects.size(); i += 59) {
    const CrResult cr = finder.Find(i);
    const UVCell exact = BuildExactUvCell(f.objects, i, f.domain);
    const UVCell from_cr =
        BuildUvCellFromCandidates(f.objects, i, cr.cr_objects, f.domain);
    EXPECT_NEAR(exact.Area(), from_cr.Area(), 1e-6 * f.domain.Area());
    EXPECT_EQ(exact.RObjects(), from_cr.RObjects());
  }
}

TEST(CrFinderTest, PruningIsEffectiveOnLargeSets) {
  Fixture f;
  f.Build(5000, 23);
  const CrObjectFinder finder(f.objects, *f.tree, f.domain, {}, &f.stats);
  double i_ratio = 0, c_ratio = 0;
  const int samples = 50;
  for (int s = 0; s < samples; ++s) {
    const size_t i = static_cast<size_t>(s) * 97 % f.objects.size();
    const CrResult cr = finder.Find(i);
    i_ratio += 1.0 - static_cast<double>(cr.after_i_pruning) / cr.considered;
    c_ratio += 1.0 - static_cast<double>(cr.cr_objects.size()) / cr.considered;
  }
  i_ratio /= samples;
  c_ratio /= samples;
  // Paper Fig. 7(b): ~90% both, C-pruning strictly stronger.
  EXPECT_GT(i_ratio, 0.8);
  EXPECT_GT(c_ratio, i_ratio);
  EXPECT_GT(c_ratio, 0.85);
}

TEST(CrFinderTest, CPruningSubsetOfIPruning) {
  Fixture f;
  f.Build(1000, 29);
  const CrObjectFinder finder(f.objects, *f.tree, f.domain, {}, &f.stats);
  for (size_t i = 0; i < 20; ++i) {
    const CrResult cr = finder.Find(i);
    EXPECT_LE(cr.cr_objects.size(), cr.after_i_pruning);
    EXPECT_LE(cr.after_i_pruning, cr.considered);
  }
}

TEST(CrFinderTest, SingleObjectDataset) {
  Fixture f;
  f.Build(1, 31);
  const CrObjectFinder finder(f.objects, *f.tree, f.domain, {}, &f.stats);
  const CrResult cr = finder.Find(0);
  EXPECT_TRUE(cr.seeds.empty());
  EXPECT_TRUE(cr.cr_objects.empty());
  EXPECT_EQ(cr.considered, 0u);
}

TEST(CrFinderTest, SeedRegionShrinksWithSeeds) {
  Fixture f;
  f.Build(2000, 41);
  const CrObjectFinder finder(f.objects, *f.tree, f.domain, {}, &f.stats);
  const UVCell seeded = finder.BuildSeedRegion(0);
  EXPECT_LT(seeded.Area(), f.domain.Area() * 0.5)
      << "eight seeds should bound the region well below the domain";
  // Lemma 2's d from the seed region bounds the exact cell's reach.
  const UVCell exact = BuildExactUvCell(f.objects, 0, f.domain);
  EXPECT_LE(exact.MaxDistanceFromCenter(),
            seeded.MaxDistanceFromCenter() + 1e-9);
}

TEST(CrFinderTest, FewerSectorsGiveLargerRegions) {
  Fixture f;
  f.Build(2000, 47);
  CrFinderOptions four;
  four.num_sectors = 4;
  CrFinderOptions eight;
  eight.num_sectors = 8;
  const CrObjectFinder f4(f.objects, *f.tree, f.domain, four, &f.stats);
  const CrObjectFinder f8(f.objects, *f.tree, f.domain, eight, &f.stats);
  double area4 = 0, area8 = 0;
  for (size_t i = 0; i < 10; ++i) {
    area4 += f4.BuildSeedRegion(i).Area();
    area8 += f8.BuildSeedRegion(i).Area();
  }
  // More sectors constrain more directions; allow slack for randomness.
  EXPECT_LE(area8, area4 * 1.5);
}

}  // namespace
}  // namespace core
}  // namespace uvd
