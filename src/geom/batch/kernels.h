// SIMD batch kernels for the stage-1 hot path (ROADMAP "Raw-speed hot
// path"). Stage-1 cost concentrates in three per-candidate scalar tests —
// the C-pruning distance bound (Lemma 3), the 4-point corner test against
// outside regions (Algorithm 5), and the envelope insertions of Algorithm 1
// — all embarrassingly lane-parallel across candidates. This layer
// restructures candidate sets struct-of-arrays and evaluates them in
// blocks: plain -O3-autovectorizable loops everywhere, with an explicit
// AVX2/NEON intrinsics path behind the UVD_ENABLE_SIMD build option for the
// two hottest masks.
//
// Determinism contract: every kernel performs the SAME per-lane
// floating-point operations, in the same per-lane order, as the scalar code
// it replaces (sub/mul/add/sqrt are individually correctly rounded, and no
// FMA contraction is enabled), so per-candidate DECISIONS are bitwise
// identical to the scalar path — serialized indexes and PNN/answer-id
// digests match across KernelMode and SIMD on/off, asserted by
// tests/core/kernel_mode_digest_test.cc. Only the scan-length tickers
// (kHyperbolaTests / kFourPointTests / kEnvelopeInsertions) may differ
// between modes, because block evaluation rounds early exits up to a block
// and the prefilter skips provably no-op insertions.
#ifndef UVD_GEOM_BATCH_KERNELS_H_
#define UVD_GEOM_BATCH_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/circle.h"
#include "geom/point.h"

namespace uvd {
namespace geom {

/// Which implementation of the stage-1 candidate kernels runs. The scalar
/// path is the determinism oracle; the batch path must produce bitwise-
/// identical decisions (and therefore indexes and query answers).
enum class KernelMode {
  kScalar,  ///< Original per-candidate loops.
  kBatch,   ///< Struct-of-arrays block kernels (this layer). Default.
};

const char* KernelModeName(KernelMode m);

namespace batch {

/// True when the explicit intrinsics path was compiled in
/// (UVD_ENABLE_SIMD build option and a supported ISA).
bool SimdEnabled();

/// "avx2", "neon", or "blocks" (autovectorized fallback).
const char* SimdIsa();

/// Lane-block width: kernels evaluate candidates in blocks of this many
/// lanes, which is also the early-exit granularity of the mask kernels.
constexpr size_t kLanes = 8;

/// Struct-of-arrays circle set (candidate centers + radii).
struct CircleSoA {
  std::vector<double> xs, ys, rs;

  size_t size() const { return xs.size(); }
  bool empty() const { return xs.empty(); }
  void Clear();
  void Assign(const Circle* circles, size_t n);
  void Assign(const std::vector<Circle>& circles) {
    Assign(circles.data(), circles.size());
  }
};

/// C-pruning mask kernel (Lemma 3): keep[i] = 1 iff candidate center i lies
/// inside some d-bound circle Cir(hull[m], sqrt(hull_dist2[m])), i.e.
/// (xs[i]-hull[m].x)^2 + (ys[i]-hull[m].y)^2 <= hull_dist2[m] for some m.
/// With hull_size == 0 every keep[i] is 0 (degenerate region: the caller
/// decides — CrObjectFinder keeps everything). keep must hold n bytes.
void AnyHullCircleContains(const double* xs, const double* ys, size_t n,
                           const Point* hull, const double* hull_dist2,
                           size_t hull_size, uint8_t* keep);

/// Batched 4-point test (Algorithm 5): finds the first candidate k whose
/// outside region contains the whole box, i.e. for every corner c
///   corner_dmin[c] > sqrt((corner_x[c]-xs[k])^2 + (corner_y[c]-ys[k])^2) + rs[k]
/// where corner_dmin[c] = dist_min(anchor, corner c) is precomputed by the
/// caller (it does not depend on the candidate). Returns -1 when no
/// candidate contains the box. `evaluated`, if non-null, receives the
/// number of candidates actually evaluated (rounded up to whole blocks by
/// the early exit; ticker billing only — the answer never depends on it).
/// The per-lane comparison is exactly UVEdge::InOutsideRegion's
/// dist_min(O_i, p) > dist_max(O_j, p).
ptrdiff_t FindContainingOutsideRegion(const CircleSoA& candidates,
                                      const double* corner_x,
                                      const double* corner_y,
                                      const double* corner_dmin,
                                      size_t* evaluated);

/// Envelope-insertion prefilter for Algorithm 1 (UVCell batch subtraction).
/// For the constraint of O_j on the UV-cell of the anchor put
/// w = c_j - c_i, s = r_i + r_j; along any direction the UV-edge distance
/// satisfies rho_j(u) >= (|w| + s) / 2 (attained on the focal axis), so a
/// constraint whose min_rho exceeds the envelope's current maximum vertex
/// distance can never win a boundary arc and its insertion is a provable
/// no-op. vacuous[j] = 1 marks overlapping regions (X_i(j) empty).
struct ConstraintPrefilter {
  std::vector<double> min_rho;
  std::vector<uint8_t> vacuous;

  size_t size() const { return min_rho.size(); }
};

void BuildConstraintPrefilter(const Circle& anchor, const Circle* others,
                              size_t n, ConstraintPrefilter* out);

/// Conservative slack for comparing the prefilter's min_rho bound against
/// an envelope distance: both sides are computed with a handful of
/// correctly-rounded operations (relative error ~1e-15), so a 1e-9 margin
/// makes the skip decision safe while rejecting essentially nothing.
constexpr double kPrefilterSlack = 1e-9;

/// True iff the constraint with the given min_rho bound provably cannot
/// shrink an envelope whose maximum vertex distance is max_vertex_distance
/// (RadialEnvelope::Insert would return false and leave the envelope
/// bitwise unchanged).
inline bool PrefilterSkips(double min_rho, double max_vertex_distance) {
  return min_rho > max_vertex_distance * (1.0 + kPrefilterSlack);
}

}  // namespace batch
}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_BATCH_KERNELS_H_
