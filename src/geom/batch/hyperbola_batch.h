// Struct-of-arrays batch of UV-edge conics (Eq. 5) for block-evaluating
// Hyperbola::InOutsideRegion over many points or many conics at once.
// Per-lane arithmetic mirrors Hyperbola::ToFocalFrame / ImplicitValue
// operation-for-operation (see kernels.h for the determinism contract),
// using the cos/sin(theta) values the scalar class caches at construction.
#ifndef UVD_GEOM_BATCH_HYPERBOLA_BATCH_H_
#define UVD_GEOM_BATCH_HYPERBOLA_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/hyperbola.h"
#include "geom/point.h"

namespace uvd {
namespace geom {
namespace batch {

/// SoA view of N hyperbolas: focal center, rotation, squared semi-axes.
class HyperbolaBatch {
 public:
  void Clear();
  void Reserve(size_t n);
  /// Appends one conic; returns its lane index.
  size_t Add(const Hyperbola& h);

  size_t size() const { return fcx_.size(); }
  bool empty() const { return fcx_.empty(); }

  /// mask[i] = 1 iff conic i's outside region strictly contains p
  /// (Hyperbola::InOutsideRegion, bitwise). mask must hold size() bytes.
  void InOutsideRegionAll(const Point& p, uint8_t* mask) const;

  /// out_mask[k] = 1 iff conic `lane`'s outside region strictly contains
  /// (xs[k], ys[k]). out_mask must hold n bytes.
  void InOutsideRegionMany(size_t lane, const double* xs, const double* ys,
                           size_t n, uint8_t* out_mask) const;

 private:
  std::vector<double> fcx_, fcy_;      // focal centers
  std::vector<double> cos_t_, sin_t_;  // cached rotation
  std::vector<double> a2_, b2_;        // squared semi-axes
};

}  // namespace batch
}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_BATCH_HYPERBOLA_BATCH_H_
