// Runtime semantics of the annotated Mutex / MutexLock / CondVar wrappers
// (common/thread_annotations.h). The compile-time side — violations being
// rejected — is covered by tests/common/thread_annotations_compile_fail/;
// this suite proves the wrappers behave exactly like the <mutex> and
// <condition_variable> primitives they wrap, on every toolchain.
#include "common/thread_annotations.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace uvd {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int value = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++value;  // non-atomic: only mutual exclusion keeps this exact
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.TryLock());  // held by the main thread
  });
  other.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = true;  // must hold mu again here
  });

  // If Wait failed to release the mutex, this Lock would deadlock.
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace uvd
