#include "geom/convex_hull.h"

#include <algorithm>

namespace uvd {
namespace geom {

namespace {

double CrossOrientation(const Point& o, const Point& a, const Point& b) {
  return (a - o).Cross(b - o);
}

}  // namespace

std::vector<Point> ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && CrossOrientation(hull[k - 2], hull[k - 1], points[i]) <= 0) --k;
    hull[k++] = points[i];
  }
  // Upper hull.
  const size_t lower_size = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && CrossOrientation(hull[k - 2], hull[k - 1], points[i]) <= 0)
      --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

bool ConvexContains(const std::vector<Point>& hull, const Point& p) {
  const size_t n = hull.size();
  if (n == 0) return false;
  if (n == 1) return hull[0].x == p.x && hull[0].y == p.y;
  if (n == 2) {
    // Point-on-segment test with a small tolerance.
    const Vec2 d = hull[1] - hull[0];
    const double cross = d.Cross(p - hull[0]);
    if (std::abs(cross) > 1e-9 * (1.0 + d.Norm())) return false;
    const double t = d.Dot(p - hull[0]) / d.Norm2();
    return t >= -1e-12 && t <= 1.0 + 1e-12;
  }
  for (size_t i = 0; i < n; ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % n];
    if ((b - a).Cross(p - a) < -1e-9) return false;
  }
  return true;
}

}  // namespace geom
}  // namespace uvd
