// Algorithm 2 (paper Sec. IV): derive the candidate reference objects C_i
// of each object without computing its exact UV-cell.
//
//   Step 1  initPossibleRegion — k-NN seeds (k = 300), one per 45-degree
//           sector (k_s = 8), build the initial possible region P_i.
//   Step 2  indexPrune (I-pruning, Lemma 2) — circular range query of
//           radius 2d - r_i around c_i on the R-tree, where d is the
//           maximum distance of P_i from c_i.
//   Step 3  compPrune (C-pruning, Lemma 3) — keep O_j only if its center
//           falls inside some d-bound Cir(v_m, dist(v_m, c_i)) at a convex
//           hull vertex v_m of P_i.
//
// The result C_i is a superset of the true r-objects F_i.
#ifndef UVD_CORE_CR_FINDER_H_
#define UVD_CORE_CR_FINDER_H_

#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/uv_cell.h"
#include "geom/box.h"
#include "rtree/rtree.h"
#include "rtree/traversal_session.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace core {

/// Tuning parameters with the paper's experimental defaults (Sec. VI).
struct CrFinderOptions {
  int knn_k = 300;      ///< k of the seed-selection k-NN query.
  int num_sectors = 8;  ///< k_s: domain sectors around c_i.
  /// When the seed region reaches beyond the k-NN ball, refine it with the
  /// whole (already fetched) k-NN pool. Strictly shrinks P_i, so Lemmas
  /// 2-3 stay valid; see DESIGN.md. Disable to reproduce plain Sec. IV-B
  /// behaviour (ablation: bench_ablation_seeds).
  bool adaptive_seed_widening = true;
  /// Candidate-kernel implementation for C-pruning and the widening
  /// subtraction loop (geom/batch/kernels.h). Both modes produce identical
  /// C_i sets; kScalar is the determinism oracle.
  geom::KernelMode kernel_mode = geom::KernelMode::kBatch;
};

/// Output of Algorithm 2 for one object, plus pruning diagnostics used by
/// Fig. 7(b)/(d)/(e).
struct CrResult {
  std::vector<int> seeds;          ///< Seed object ids (<= num_sectors).
  std::vector<int> cr_objects;     ///< C_i, sorted ascending.
  double max_dist = 0.0;           ///< d of Lemma 2 (from the seed region).
  size_t after_i_pruning = 0;      ///< |I| (survivors of Step 2).
  size_t considered = 0;           ///< n - 1.
  double seed_seconds = 0.0;       ///< Step 1 wall time.
  double prune_seconds = 0.0;      ///< Steps 2-3 wall time.
  // Orthogonal phase split of the same wall time (bench traversal-phase
  // breakdown): where inside Steps 1-3 the cycles actually went.
  double traversal_seconds = 0.0;  ///< R-tree k-NN + range-query wall.
  double decode_seconds = 0.0;     ///< Leaf-decode share of traversal_seconds.
  double kernel_seconds = 0.0;     ///< C-pruning + widening kernel wall.
};

/// Per-worker reusable state for the Algorithm 2 hot loop. A null/default
/// workspace reproduces the historical behaviour exactly; passing one
/// across calls removes the per-anchor heap and output allocations
/// (scratch + buffers), and installing a TraversalSession additionally
/// switches both R-tree queries to the shared-frontier traversal
/// (rtree/traversal_session.h). Candidate sets are bitwise identical
/// either way. Not thread-safe: one workspace per worker.
struct CrFinderWorkspace {
  rtree::TraversalScratch scratch;  ///< Per-anchor (oracle) traversal buffers.
  /// Non-null = TraversalMode::kShared: reuse the frontier across anchors.
  std::unique_ptr<rtree::TraversalSession> session;
  std::vector<rtree::LeafEntry> knn;         ///< k-NN output buffer.
  std::vector<rtree::LeafEntry> candidates;  ///< Range-query output buffer.
  // Phase-time accumulators (CrResult reports per-call deltas).
  double traversal_seconds = 0.0;
  double kernel_seconds = 0.0;
};

/// \brief Runs Algorithm 2 against a dataset indexed by an R-tree.
///
/// Objects must be stored in id order (objects[i].id() == i), which all
/// dataset generators guarantee.
///
/// Thread safety: Find() and BuildSeedRegion() are const and mutate nothing
/// but the Stats tickers, which are relaxed atomics — so one finder may be
/// shared by concurrent callers. The parallel build pipeline still gives
/// each worker its own finder with a private Stats shard to keep the hot
/// envelope/hyperbola tickers contention-free (see core/build_pipeline.h).
class CrObjectFinder {
 public:
  CrObjectFinder(const std::vector<uncertain::UncertainObject>& objects,
                 const rtree::RTree& tree, const geom::Box& domain,
                 const CrFinderOptions& options = {}, Stats* stats = nullptr);

  /// Derives C_i for objects[index]. `ws` (optional) supplies reusable
  /// buffers and, when it carries a session, the shared traversal.
  CrResult Find(size_t index, CrFinderWorkspace* ws = nullptr) const;

  /// Step 1 only: the seed-based initial possible region P_i (exposed for
  /// tests and for ICR's refinement).
  UVCell BuildSeedRegion(size_t index, std::vector<int>* seed_ids = nullptr,
                         CrFinderWorkspace* ws = nullptr) const;

 private:
  std::vector<int> SelectSeeds(size_t index,
                               const std::vector<rtree::LeafEntry>& knn) const;

  const std::vector<uncertain::UncertainObject>& objects_;
  const rtree::RTree& tree_;
  geom::Box domain_;
  CrFinderOptions options_;
  Stats* stats_;
};

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_CR_FINDER_H_
