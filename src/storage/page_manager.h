// Simulated disk: fixed-size pages with read/write I/O accounting. The
// paper's evaluation (Sec. VI) stores index leaf levels and object pdfs on
// disk and reports page I/O counts (Fig. 6(b)); this module is the unit of
// that accounting. A small LRU buffer pool is provided for completeness
// (benchmarks run with it disabled, matching the paper's cold reads).
#ifndef UVD_STORAGE_PAGE_MANAGER_H_
#define UVD_STORAGE_PAGE_MANAGER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "obs/latency_histogram.h"

namespace uvd {
namespace storage {

using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Default page size used throughout the paper's setup (4 KB pages).
constexpr size_t kDefaultPageSize = 4096;

/// \brief Page-granular storage with I/O tickers.
///
/// Pages live in memory but every Read/Write increments
/// Ticker::kPageReads / kPageWrites, which benchmarks report as I/O counts.
///
/// Thread safety: concurrent Read calls are safe (Stats tickers are
/// atomic). Allocate mutates the page table (it can reallocate the backing
/// vector) and must not run while ANY other thread reads or writes.
/// Concurrent Write calls are safe iff they target DISTINCT, already
/// allocated pages and no Allocate runs meanwhile — each write then touches
/// only its own page's buffer. The parallel build pipeline relies on
/// exactly that: UVIndex::FinalizeWith allocates every leaf page up front
/// in one AllocateRun, then fans the page writes out across workers.
///
/// This phase discipline (allocate-then-share) is intentionally mutex-free
/// — there is no interleaving to guard, so there is nothing here for the
/// thread-safety analysis (common/thread_annotations.h) to annotate; the
/// contract lives in this comment and in the TSan CI job instead
/// (docs/STATIC_ANALYSIS.md, "Phase-disciplined structures"). A future
/// file-backed PageManager with a buffer pool WILL need guarded state and
/// must adopt the annotated Mutex wrapper.
class PageManager {
 public:
  explicit PageManager(size_t page_size = kDefaultPageSize, Stats* stats = nullptr)
      : page_size_(page_size), stats_(stats) {}
  virtual ~PageManager() = default;

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return pages_.size(); }
  uint64_t bytes_on_disk() const { return pages_.size() * page_size_; }

  /// Allocates a zero-filled page and returns its id.
  PageId Allocate();

  /// Allocates `count` zero-filled pages with consecutive ids and returns
  /// the first id — the same ids `count` Allocate() calls would hand out,
  /// minus the per-call reallocation, and the arena under parallel
  /// finalization: once the run is reserved, workers may Write its pages
  /// concurrently. Returns the would-be next id when count == 0.
  PageId AllocateRun(size_t count);

  /// Copies the page contents into *out (resized to page_size()).
  /// Virtual so tests can inject I/O faults (FaultInjectionPageManager).
  virtual Status Read(PageId id, std::vector<uint8_t>* out) const;

  /// Writes data (at most page_size() bytes; shorter data is zero-padded).
  virtual Status Write(PageId id, const std::vector<uint8_t>& data);

  /// Simulated per-read disk latency: every Read blocks for this many
  /// microseconds before returning. 0 (the default — tests and figure
  /// benches are unaffected) disables the sleep. Process-global so
  /// throughput benches can put the system into the paper's disk-bound
  /// regime (Sec. VI: leaf pages and pdfs live on disk) without plumbing
  /// a knob through every layer; concurrency features then demonstrably
  /// hide this latency instead of merely charging it post hoc.
  static void SetSimulatedReadLatencyUs(uint32_t us);
  static uint32_t SimulatedReadLatencyUs();

  /// Per-manager page-read latency distribution in microseconds, simulated
  /// disk latency included — the I/O histogram the metrics registry
  /// unifies (register it as e.g. "shard0.storage.page.read.latency.us").
  /// Recording is skipped while obs::MetricsEnabled() is off.
  const obs::LatencyHistogram& read_latency_histogram() const {
    return read_latency_us_;
  }

 private:
  size_t page_size_;
  Stats* stats_;
  mutable obs::LatencyHistogram read_latency_us_;  // recorded in const Read
  std::vector<std::vector<uint8_t>> pages_;
};

/// \brief LRU page cache in front of a PageManager.
///
/// Reads served from the pool increment kBufferPoolHits and perform no disk
/// I/O; misses increment kBufferPoolMisses and read through.
class BufferPool {
 public:
  BufferPool(PageManager* pm, size_t capacity_pages, Stats* stats = nullptr)
      : pm_(pm), capacity_(capacity_pages), stats_(stats) {}

  Status Read(PageId id, std::vector<uint8_t>* out);

  /// Drops a page from the pool (call after writing through PageManager).
  void Invalidate(PageId id);

  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }

 private:
  struct Entry {
    PageId id;
    std::vector<uint8_t> data;
  };

  PageManager* pm_;
  size_t capacity_;
  Stats* stats_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<Entry>::iterator> map_;
};

}  // namespace storage
}  // namespace uvd

#endif  // UVD_STORAGE_PAGE_MANAGER_H_
