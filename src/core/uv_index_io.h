// Persistence for the UV-index: the in-memory non-leaf structure is
// serialized into the same simulated disk that already holds the leaf
// tuple pages, so a built index can be closed and reopened without
// reconstruction (leaf pages are shared, not copied). Loading restores
// full query capability, pattern analysis and live insertion.
#ifndef UVD_CORE_UV_INDEX_IO_H_
#define UVD_CORE_UV_INDEX_IO_H_

#include "common/result.h"
#include "core/uv_index.h"
#include "storage/page_manager.h"

namespace uvd {
namespace core {

/// Locator of a saved index: a contiguous page chain on the page manager.
struct SavedIndexHandle {
  storage::PageId first_page = storage::kInvalidPageId;
  uint32_t page_count = 0;
};

/// Chunks an arbitrary byte stream into freshly allocated pages and
/// returns its locator (the last page is zero-padded). Shared by the
/// index saver below and the diagram manifest (core/uv_diagram.cc).
Result<SavedIndexHandle> WriteStreamToPages(const std::vector<uint8_t>& stream,
                                            storage::PageManager* pm);

/// Reads a page chain back into *stream (INCLUDING the final page's zero
/// padding — callers that need the exact byte length record it beside the
/// handle).
Status ReadPagesToStream(const storage::PageManager& pm,
                         const SavedIndexHandle& handle,
                         std::vector<uint8_t>* stream);

/// Serializes a finalized index's structure (domain, options, quad-tree
/// nodes, leaf page ids) into freshly allocated pages.
Result<SavedIndexHandle> SaveUvIndex(const UVIndex& index,
                                     storage::PageManager* pm);

/// Rebuilds an index from a saved handle. Leaf tuple pages are re-read to
/// restore the per-leaf object lists used by pattern queries and live
/// insertion. The result is finalized and immediately queryable.
Result<UVIndex> LoadUvIndex(storage::PageManager* pm, const SavedIndexHandle& handle,
                            Stats* stats = nullptr);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_UV_INDEX_IO_H_
