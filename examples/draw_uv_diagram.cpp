// Reproduces the paper's Fig. 2 visually: three uncertain objects, their
// exact UV-cells (hyperbolic-arc boundaries) and the adaptive grid, written
// as an SVG. A second rendering shows a larger population.
#include <cstdio>

#include "core/svg_export.h"
#include "datagen/generators.h"

int main() {
  using namespace uvd;

  // Fig. 2 setup: three objects, overlapping UV-cells, seven UV-partitions.
  {
    const geom::Box domain({0, 0}, {1000, 1000});
    std::vector<uncertain::UncertainObject> objects;
    objects.push_back(uncertain::UncertainObject::WithGaussianPdf(0, {{300, 420}, 60}));
    objects.push_back(uncertain::UncertainObject::WithGaussianPdf(1, {{640, 330}, 60}));
    objects.push_back(uncertain::UncertainObject::WithGaussianPdf(2, {{480, 700}, 60}));
    auto diagram = core::UVDiagram::Build(objects, domain).ValueOrDie();
    std::vector<core::UVCell> cells;
    for (size_t i = 0; i < objects.size(); ++i) {
      cells.push_back(core::BuildExactUvCell(objects, i, domain));
    }
    UVD_CHECK_OK(core::WriteSvgFile("uv_diagram_fig2.svg",
                                    core::RenderSvg(diagram, cells)));
    std::printf("wrote uv_diagram_fig2.svg (3 objects, paper Fig. 2 layout)\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("  UV-cell of O%zu: area %.0f, %zu r-objects\n", i + 1,
                  cells[i].Area(), cells[i].RObjects().size());
    }
  }

  // A richer scene: 60 objects with the adaptive grid visible.
  {
    datagen::DatasetOptions opts;
    opts.count = 60;
    opts.domain_size = 1000;
    opts.diameter = 50;
    opts.seed = 8;
    auto objects = datagen::GenerateUniform(opts);
    const geom::Box domain = datagen::DomainFor(opts);
    auto diagram = core::UVDiagram::Build(objects, domain).ValueOrDie();
    std::vector<core::UVCell> cells;
    for (size_t i = 0; i < 6; ++i) {
      cells.push_back(core::BuildExactUvCell(objects, i * 10, domain));
    }
    UVD_CHECK_OK(core::WriteSvgFile("uv_diagram_population.svg",
                                    core::RenderSvg(diagram, cells)));
    std::printf("wrote uv_diagram_population.svg (60 objects, 6 cells, grid)\n");
  }
  return 0;
}
