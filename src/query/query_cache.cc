#include "query/query_cache.h"

#include <algorithm>
#include <iterator>

namespace uvd {
namespace query {

QueryCache::QueryCache(const QueryCacheOptions& options) {
  capacity_ = std::max<size_t>(1, options.capacity);
  const size_t shards =
      std::min<size_t>(std::max(1, options.shards), capacity_);
  shard_capacity_ = std::max<size_t>(1, capacity_ / shards);
  const double fraction =
      std::min(1.0, std::max(0.0, options.protected_fraction));
  // At least one probationary slot must survive: with the protected
  // segment covering the whole shard, every miss would insert and
  // immediately evict ITSELF, freezing the cache on its first promoted
  // working set forever.
  protected_capacity_ = std::min(
      shard_capacity_ - 1,
      static_cast<size_t>(fraction * static_cast<double>(shard_capacity_)));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Result<std::vector<rtree::LeafEntry>> QueryCache::GetOrLoad(uint32_t leaf,
                                                            const Loader& loader,
                                                            Stats* stats) {
  Shard& shard = ShardFor(leaf);
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(leaf);
    if (it != shard.map.end()) {
      if (stats != nullptr) stats->Add(Ticker::kQueryCacheHits);
      Slot& slot = it->second;
      if (slot.is_protected) {
        shard.protected_.splice(shard.protected_.begin(), shard.protected_,
                                slot.it);
      } else if (protected_capacity_ > 0) {
        // First re-reference: promote into the protected segment. If the
        // segment is full its LRU tail goes back to the probationary front
        // (one more chance before the scan tail can reach it).
        if (stats != nullptr) stats->Add(Ticker::kQueryCachePromotions);
        shard.protected_.splice(shard.protected_.begin(), shard.probationary,
                                slot.it);
        slot.is_protected = true;
        if (shard.protected_.size() > protected_capacity_) {
          if (stats != nullptr) stats->Add(Ticker::kQueryCacheDemotions);
          auto demoted = std::prev(shard.protected_.end());
          shard.probationary.splice(shard.probationary.begin(),
                                    shard.protected_, demoted);
          shard.map[demoted->leaf].is_protected = false;
        }
      } else {
        shard.probationary.splice(shard.probationary.begin(),
                                  shard.probationary, slot.it);
      }
      return slot.it->tuples;  // copy: the caller consumes it
    }
  }

  if (stats != nullptr) stats->Add(Ticker::kQueryCacheMisses);
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();
  std::vector<rtree::LeafEntry> tuples = std::move(loaded).value();

  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(leaf);
    if (it == shard.map.end()) {  // a concurrent miss may have won the race
      shard.probationary.push_front(Entry{leaf, tuples});
      shard.map[leaf] = Slot{shard.probationary.begin(), false};
      if (shard.map.size() > shard_capacity_) {
        // Evict the probationary LRU tail; the probationary list is
        // non-empty (the incoming entry just joined it), so scan traffic
        // never reaches the protected segment.
        shard.map.erase(shard.probationary.back().leaf);
        shard.probationary.pop_back();
      }
    }
  }
  return tuples;
}

Status QueryCache::WarmInsert(uint32_t leaf, const Loader& loader, Stats* stats) {
  Shard& shard = ShardFor(leaf);
  {
    MutexLock lock(shard.mu);
    if (shard.map.find(leaf) != shard.map.end()) return Status::OK();
  }
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();
  std::vector<rtree::LeafEntry> tuples = std::move(loaded).value();
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(leaf);
    if (it != shard.map.end()) return Status::OK();  // lost the race: keep theirs
    if (stats != nullptr) stats->Add(Ticker::kQueryCacheWarmInserts);
    shard.probationary.push_front(Entry{leaf, std::move(tuples)});
    shard.map[leaf] = Slot{shard.probationary.begin(), false};
    if (shard.map.size() > shard_capacity_) {
      shard.map.erase(shard.probationary.back().leaf);
      shard.probationary.pop_back();
    }
  }
  return Status::OK();
}

void QueryCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->probationary.clear();
    shard->protected_.clear();
    shard->map.clear();
  }
}

size_t QueryCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

size_t QueryCache::protected_size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    n += shard->protected_.size();
  }
  return n;
}

}  // namespace query
}  // namespace uvd
