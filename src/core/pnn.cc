#include "core/pnn.h"

#include <algorithm>
#include <limits>

#include "common/timer.h"

namespace uvd {
namespace core {

namespace {

/// Verification of [14] over leaf tuples: keep entries with
/// dist_min <= d_minmax = min over entries of dist_max.
std::vector<rtree::LeafEntry> VerifyCandidates(std::vector<rtree::LeafEntry> tuples,
                                               const geom::Point& q) {
  double d_minmax = std::numeric_limits<double>::infinity();
  for (const rtree::LeafEntry& e : tuples) {
    d_minmax = std::min(d_minmax, e.mbc.DistMax(q));
  }
  tuples.erase(std::remove_if(tuples.begin(), tuples.end(),
                              [&](const rtree::LeafEntry& e) {
                                return e.mbc.DistMin(q) > d_minmax;
                              }),
               tuples.end());
  return tuples;
}

}  // namespace

Result<std::vector<uncertain::PnnAnswer>> EvaluatePnnWithUvIndex(
    const UVIndex& index, const uncertain::ObjectStore& store, const geom::Point& q,
    const uncertain::QualificationOptions& options, Stats* stats,
    rtree::PnnBreakdown* breakdown) {
  std::vector<rtree::LeafEntry> tuples;
  {
    double index_seconds = 0.0;
    {
      ScopedTimer t(&index_seconds);
      auto retrieved = index.RetrieveCandidates(q);
      if (!retrieved.ok()) return retrieved.status();
      tuples = std::move(retrieved).value();
    }
    if (breakdown != nullptr) breakdown->index_seconds += index_seconds;
  }
  return EvaluatePnnFromCandidates(std::move(tuples), store, q, options, stats,
                                   breakdown);
}

Result<std::vector<uncertain::PnnAnswer>> EvaluatePnnFromCandidates(
    std::vector<rtree::LeafEntry> tuples, const uncertain::ObjectStore& store,
    const geom::Point& q, const uncertain::QualificationOptions& options,
    Stats* stats, rtree::PnnBreakdown* breakdown) {
  rtree::PnnBreakdown local;
  std::vector<rtree::LeafEntry> verified;
  {
    ScopedTimer t(&local.index_seconds);
    verified = VerifyCandidates(std::move(tuples), q);
  }

  std::vector<uncertain::UncertainObject> objects;
  {
    ScopedTimer t(&local.retrieval_seconds);
    objects.reserve(verified.size());
    for (const rtree::LeafEntry& e : verified) {
      auto obj = store.Fetch(e.ptr);
      if (!obj.ok()) return obj.status();
      objects.push_back(std::move(obj).value());
    }
  }

  std::vector<uncertain::PnnAnswer> answers;
  {
    ScopedTimer t(&local.computation_seconds);
    std::vector<const uncertain::UncertainObject*> refs;
    refs.reserve(objects.size());
    for (const auto& o : objects) refs.push_back(&o);
    answers = uncertain::ComputeQualificationProbabilities(refs, q, options, stats);
  }
  if (breakdown != nullptr) breakdown->Accumulate(local);
  return answers;
}

std::vector<int> AnswerIdsFromCandidates(std::vector<rtree::LeafEntry> tuples,
                                         const geom::Point& q) {
  std::vector<int> ids;
  for (const rtree::LeafEntry& e : VerifyCandidates(std::move(tuples), q)) {
    ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<std::vector<int>> RetrievePnnAnswerIds(const UVIndex& index,
                                              const geom::Point& q, Stats* stats) {
  (void)stats;  // node visits and leaf reads are billed inside the index
  auto tuples = index.RetrieveCandidates(q);
  if (!tuples.ok()) return tuples.status();
  return AnswerIdsFromCandidates(std::move(tuples).value(), q);
}

}  // namespace core
}  // namespace uvd
