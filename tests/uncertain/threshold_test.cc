// Tests for the verifier-style threshold PNN ([15]-flavoured bounds).
#include "uncertain/threshold.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace uvd {
namespace uncertain {
namespace {

UncertainObject Gauss(int id, geom::Point c, double r) {
  return UncertainObject(id, geom::Circle(c, r), RadialHistogramPdf::Gaussian(r));
}

std::vector<const UncertainObject*> Refs(const std::vector<UncertainObject>& objs) {
  std::vector<const UncertainObject*> refs;
  for (const auto& o : objs) refs.push_back(&o);
  return refs;
}

TEST(ThresholdTest, BoundsBracketExactProbabilities) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<UncertainObject> objs;
    const int n = 2 + static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < n; ++i) {
      objs.push_back(Gauss(i, {rng.Uniform(-40, 40), rng.Uniform(-40, 40)},
                           rng.Uniform(2, 15)));
    }
    const auto bounds = QualificationBounds(Refs(objs), {0, 0}, 16);
    const auto exact = ComputeQualificationProbabilities(Refs(objs), {0, 0});
    for (const auto& b : bounds) {
      EXPECT_LE(b.lower, b.upper + 1e-12);
      double p = 0;
      for (const auto& e : exact) {
        if (e.id == b.id) p = e.probability;
      }
      EXPECT_LE(b.lower, p + 2e-3) << "trial " << trial << " id " << b.id;
      EXPECT_GE(b.upper, p - 2e-3) << "trial " << trial << " id " << b.id;
    }
  }
}

TEST(ThresholdTest, FinerGridTightensBounds) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {6, 0}, 5));
  objs.push_back(Gauss(1, {9, 2}, 5));
  objs.push_back(Gauss(2, {-8, 1}, 6));
  double prev_gap = 10.0;
  for (int steps : {4, 16, 64}) {
    const auto bounds = QualificationBounds(Refs(objs), {0, 0}, steps);
    double gap = 0;
    for (const auto& b : bounds) gap = std::max(gap, b.upper - b.lower);
    EXPECT_LT(gap, prev_gap + 1e-12) << "steps=" << steps;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.05);
}

TEST(ThresholdTest, DecisionsMatchFullIntegration) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<UncertainObject> objs;
    const int n = 3 + static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < n; ++i) {
      objs.push_back(Gauss(i, {rng.Uniform(-40, 40), rng.Uniform(-40, 40)},
                           rng.Uniform(2, 15)));
    }
    const double tau = 0.15;
    ThresholdOptions options;
    options.threshold = tau;
    const auto got = ThresholdQualification(Refs(objs), {0, 0}, options);
    const auto exact = ComputeQualificationProbabilities(Refs(objs), {0, 0});
    std::vector<int> want;
    for (const auto& e : exact) {
      if (e.probability >= tau) want.push_back(e.id);
    }
    std::sort(want.begin(), want.end());
    std::vector<int> got_ids;
    for (const auto& a : got) got_ids.push_back(a.id);
    std::sort(got_ids.begin(), got_ids.end());
    // Bound-accepted answers are certified >= tau; refined ones match the
    // integrator exactly. The only legitimate divergence is an exact-value
    // sitting within the verifier tolerance of tau; rule that out by
    // checking each difference.
    for (int id : got_ids) {
      double p = 0;
      for (const auto& e : exact) {
        if (e.id == id) p = e.probability;
      }
      EXPECT_GE(p, tau - 5e-3) << "trial " << trial;
    }
    for (int id : want) {
      EXPECT_TRUE(std::find(got_ids.begin(), got_ids.end(), id) != got_ids.end())
          << "trial " << trial << " lost id " << id;
    }
  }
}

TEST(ThresholdTest, VerifierAvoidsRefinementForClearCases) {
  // One dominant object and one marginal one: a tau well below the
  // dominant probability should be decided by bounds alone.
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {5, 0}, 3));
  objs.push_back(Gauss(1, {10.5, 0}, 3));
  ThresholdOptions options;
  options.threshold = 0.05;
  ThresholdStats tstats;
  const auto got = ThresholdQualification(Refs(objs), {0, 0}, options, &tstats);
  EXPECT_EQ(tstats.candidates, 2u);
  EXPECT_GT(tstats.accepted_by_bounds + tstats.rejected_by_bounds, 0u);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].id, 0);
}

TEST(ThresholdTest, SingleCandidateShortCircuit) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {5, 0}, 2));
  const auto bounds = QualificationBounds(Refs(objs), {0, 0});
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(bounds[0].lower, 1.0);
  EXPECT_DOUBLE_EQ(bounds[0].upper, 1.0);
}

TEST(ThresholdTest, HighThresholdYieldsFewAnswers) {
  Rng rng(29);
  std::vector<UncertainObject> objs;
  for (int i = 0; i < 8; ++i) {
    objs.push_back(Gauss(i, {rng.Uniform(-20, 20), rng.Uniform(-20, 20)}, 10));
  }
  ThresholdOptions low, high;
  low.threshold = 0.01;
  high.threshold = 0.5;
  const auto many = ThresholdQualification(Refs(objs), {0, 0}, low);
  const auto few = ThresholdQualification(Refs(objs), {0, 0}, high);
  EXPECT_GE(many.size(), few.size());
}

}  // namespace
}  // namespace uncertain
}  // namespace uvd
