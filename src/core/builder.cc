#include "core/builder.h"

#include "common/logging.h"
#include "common/timer.h"
#include "core/uv_cell.h"

namespace uvd {
namespace core {

const char* BuildMethodName(BuildMethod m) {
  switch (m) {
    case BuildMethod::kBasic:
      return "Basic";
    case BuildMethod::kICR:
      return "ICR";
    case BuildMethod::kIC:
      return "IC";
  }
  return "unknown";
}

namespace {

std::vector<geom::Circle> RegionsOf(const std::vector<uncertain::UncertainObject>& objects,
                                    const std::vector<int>& ids) {
  std::vector<geom::Circle> regions;
  regions.reserve(ids.size());
  for (int id : ids) {
    regions.push_back(objects[static_cast<size_t>(id)].region());
  }
  return regions;
}

}  // namespace

Status BuildUvIndex(const std::vector<uncertain::UncertainObject>& objects,
                    const std::vector<uncertain::ObjectPtr>& ptrs,
                    const rtree::RTree& tree, const geom::Box& domain,
                    BuildMethod method, const CrFinderOptions& cr_options,
                    UVIndex* index, BuildStats* build_stats, Stats* stats) {
  if (objects.size() != ptrs.size()) {
    return Status::InvalidArgument("objects/ptrs size mismatch");
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].id() != static_cast<int>(i)) {
      return Status::InvalidArgument("objects must be stored in id order");
    }
  }

  BuildStats local;
  Timer total_timer;
  const CrObjectFinder finder(objects, tree, domain, cr_options, stats);
  const size_t n = objects.size();
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;

  for (size_t i = 0; i < n; ++i) {
    std::vector<int> index_ids;  // ids whose outside regions describe U_i
    switch (method) {
      case BuildMethod::kBasic: {
        ScopedTimer t(&local.robject_seconds);
        const UVCell cell = BuildExactUvCell(objects, i, domain, stats);
        index_ids = cell.RObjects();
        local.avg_r_objects += static_cast<double>(index_ids.size());
        break;
      }
      case BuildMethod::kICR: {
        const CrResult cr = finder.Find(i);
        local.seed_seconds += cr.seed_seconds;
        local.pruning_seconds += cr.seed_seconds + cr.prune_seconds;
        local.i_pruning_ratio += 1.0 - static_cast<double>(cr.after_i_pruning) / denom;
        local.c_pruning_ratio += 1.0 - static_cast<double>(cr.cr_objects.size()) / denom;
        local.avg_cr_objects += static_cast<double>(cr.cr_objects.size());
        {
          // Refinement: exact r-objects from the candidates.
          ScopedTimer t(&local.robject_seconds);
          const UVCell cell =
              BuildUvCellFromCandidates(objects, i, cr.cr_objects, domain, stats);
          index_ids = cell.RObjects();
        }
        local.avg_r_objects += static_cast<double>(index_ids.size());
        break;
      }
      case BuildMethod::kIC: {
        const CrResult cr = finder.Find(i);
        local.seed_seconds += cr.seed_seconds;
        local.pruning_seconds += cr.seed_seconds + cr.prune_seconds;
        local.i_pruning_ratio += 1.0 - static_cast<double>(cr.after_i_pruning) / denom;
        local.c_pruning_ratio += 1.0 - static_cast<double>(cr.cr_objects.size()) / denom;
        local.avg_cr_objects += static_cast<double>(cr.cr_objects.size());
        index_ids = cr.cr_objects;
        break;
      }
    }
    {
      ScopedTimer t(&local.indexing_seconds);
      UVD_RETURN_NOT_OK(index->InsertObject(objects[i].region(), objects[i].id(),
                                            ptrs[i], RegionsOf(objects, index_ids)));
    }
  }
  {
    ScopedTimer t(&local.indexing_seconds);
    UVD_RETURN_NOT_OK(index->Finalize());
  }

  local.total_seconds = total_timer.ElapsedSeconds();
  if (n > 0) {
    local.i_pruning_ratio /= static_cast<double>(n);
    local.c_pruning_ratio /= static_cast<double>(n);
    local.avg_cr_objects /= static_cast<double>(n);
    local.avg_r_objects /= static_cast<double>(n);
  }
  if (build_stats != nullptr) *build_stats = local;
  return Status::OK();
}

}  // namespace core
}  // namespace uvd
