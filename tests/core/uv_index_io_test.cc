// Tests for UV-index persistence: save to pages, load, and verify that the
// reloaded index is indistinguishable from the original.
#include "core/uv_index_io.h"

#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "core/builder.h"
#include "core/pattern_queries.h"
#include "core/pnn.h"
#include "datagen/generators.h"
#include "datagen/workload.h"

namespace uvd {
namespace core {
namespace {

struct Fixture {
  Stats stats;
  storage::PageManager pm{4096, &stats};
  uncertain::ObjectStore store{&pm};
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<rtree::RTree> tree;
  std::optional<UVIndex> index;
  geom::Box domain;

  void Build(size_t n, uint64_t seed = 3) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = seed;
    objects = datagen::GenerateUniform(opts);
    domain = datagen::DomainFor(opts);
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    tree.emplace(rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie());
    index.emplace(domain, &pm, UVIndexOptions{}, &stats);
    UVD_CHECK_OK(BuildUvIndex(objects, ptrs, *tree, domain, BuildMethod::kIC,
                              {}, &*index, nullptr, &stats));
  }
};

TEST(UvIndexIoTest, SaveLoadRoundTripAnswers) {
  Fixture f;
  f.Build(1000);
  auto handle = SaveUvIndex(*f.index, &f.pm);
  ASSERT_TRUE(handle.ok());
  EXPECT_GT(handle.value().page_count, 0u);

  auto loaded = LoadUvIndex(&f.pm, handle.value(), &f.stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const UVIndex& reloaded = loaded.value();
  EXPECT_TRUE(reloaded.finalized());
  EXPECT_EQ(reloaded.num_leaves(), f.index->num_leaves());
  EXPECT_EQ(reloaded.num_nonleaf(), f.index->num_nonleaf());
  EXPECT_EQ(reloaded.height(), f.index->height());

  for (const auto& q : datagen::UniformQueryPoints(40, f.domain, 7)) {
    EXPECT_EQ(RetrievePnnAnswerIds(reloaded, q).ValueOrDie(),
              RetrievePnnAnswerIds(*f.index, q).ValueOrDie());
  }
}

TEST(UvIndexIoTest, PatternQueriesSurviveReload) {
  Fixture f;
  f.Build(600, 11);
  auto handle = SaveUvIndex(*f.index, &f.pm).ValueOrDie();
  auto reloaded = LoadUvIndex(&f.pm, handle, &f.stats).ValueOrDie();

  const geom::Box range({3000, 3000}, {4000, 4000});
  const auto before = RetrieveUvPartitions(*f.index, range);
  const auto after = RetrieveUvPartitions(reloaded, range);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].object_count, after[i].object_count);
    EXPECT_DOUBLE_EQ(before[i].density, after[i].density);
  }
  const auto summary = RetrieveUvCellSummary(reloaded, 42);
  EXPECT_TRUE(summary.ok());
}

TEST(UvIndexIoTest, LiveInsertWorksAfterReload) {
  Fixture f;
  f.Build(400, 13);
  auto handle = SaveUvIndex(*f.index, &f.pm).ValueOrDie();
  auto reloaded = LoadUvIndex(&f.pm, handle, &f.stats).ValueOrDie();

  // Insert a new object into the reloaded index (empty cr set: its cell is
  // conservatively the whole domain — correct, just unpruned).
  const geom::Circle region({5000, 5000}, 20);
  ASSERT_TRUE(reloaded.InsertObjectLive(region, 400, 0, {}).ok());
  auto tuples = reloaded.RetrieveCandidates({5000, 5000});
  ASSERT_TRUE(tuples.ok());
  bool found = false;
  for (const auto& e : tuples.value()) found |= (e.id == 400);
  EXPECT_TRUE(found);
}

TEST(UvIndexIoTest, RejectsUnfinalizedIndex) {
  storage::PageManager pm(4096);
  UVIndex index(geom::Box({0, 0}, {100, 100}), &pm, {}, nullptr);
  EXPECT_FALSE(SaveUvIndex(index, &pm).ok());
}

TEST(UvIndexIoTest, RejectsGarbage) {
  storage::PageManager pm(4096);
  const storage::PageId page = pm.Allocate();
  ASSERT_TRUE(pm.Write(page, std::vector<uint8_t>(64, 0xAB)).ok());
  auto loaded = LoadUvIndex(&pm, {page, 1}, nullptr);
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(LoadUvIndex(&pm, {}, nullptr).ok());
}

TEST(UvIndexIoTest, LeafPagesAreSharedNotCopied) {
  Fixture f;
  f.Build(500, 17);
  const size_t pages_before = f.pm.num_pages();
  auto handle = SaveUvIndex(*f.index, &f.pm).ValueOrDie();
  // Only the structure pages were added, far fewer than the leaf pages.
  EXPECT_EQ(f.pm.num_pages(), pages_before + handle.page_count);
  EXPECT_LT(handle.page_count, f.index->total_leaf_pages());
}

}  // namespace
}  // namespace core
}  // namespace uvd
