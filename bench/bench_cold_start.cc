// Cold-start serving bench (tentpole PR: persistent page store): builds a
// file-backed diagram, checkpoints and closes it, then reopens COLD with a
// buffer pool deliberately smaller than the file and serves a PNN workload
// from disk. Reports the build/checkpoint/reopen wall times, the file
// footprint, and the pool's hit/miss/eviction tickers plus the measured
// page-read latency histogram (MetricsRegistry export riding in the
// --json record). Asserts — in --smoke mode on every ctest run — that the
// cold-served answers are bitwise-identical to the in-RAM build's.
//
// Flags: --smoke (tiny dataset, CI), --pool_pages=N (default: 1/8 of the
// file), --json <path>.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/workload.h"
#include "obs/latency_histogram.h"
#include "obs/metrics_registry.h"
#include "query/query_batch.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "storage/file_page_manager.h"

namespace uvd {
namespace bench {
namespace {

query::QueryBatch MakeBatch(const geom::Box& domain, int count) {
  query::QueryBatch batch;
  const auto points = datagen::TrajectoryQueryPoints(
      count, domain, /*step_length=*/domain.Width() / 400.0, /*seed=*/11);
  batch.reserve(points.size() * 2);
  for (const auto& p : points) {
    batch.push_back(query::Query::Pnn(p));
    batch.push_back(query::Query::AnswerIds(p));
  }
  return batch;
}

uint64_t Serve(const core::UVDiagram& diagram, const query::QueryBatch& batch,
               double* seconds) {
  query::QueryEngine engine(diagram);
  Timer timer;
  const auto results = engine.ExecuteBatch(batch);
  *seconds = timer.ElapsedSeconds();
  return query::DigestPointAnswers(results);
}

int Run(int argc, char** argv) {
  const QueryBenchFlags flags = ParseQueryBenchFlags(argc, argv);
  const std::string json_path = ParseJsonPath(argc, argv);
  size_t pool_flag = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pool_pages=", 13) == 0) {
      pool_flag = static_cast<size_t>(std::atoll(argv[i] + 13));
    }
  }

  PrintBanner("bench_cold_start — persistent store: build, reopen, serve",
              "persistence extension (ROADMAP): durable UV-index serving, "
              "docs/STORAGE.md");

  datagen::DatasetOptions data;
  data.count = flags.smoke ? 500 : ScaledCount(10000);
  data.seed = 23;
  const geom::Box domain = datagen::DomainFor(data);
  const query::QueryBatch batch = MakeBatch(domain, flags.smoke ? 150 : 1000);
  const std::string path = "/tmp/uvd_bench_cold_start.uvpf";
  std::remove(path.c_str());

  // Reference: the in-RAM build every persistent answer must match.
  Stats ram_stats;
  core::UVDiagramOptions options;
  options.build_threads = ThreadPool::DefaultThreads();
  double ram_serve_s = 0;
  uint64_t want = 0;
  {
    const core::UVDiagram ram = BuildDiagram(datagen::GenerateUniform(data),
                                             domain, options, &ram_stats);
    want = Serve(ram, batch, &ram_serve_s);
  }

  // Phase 1: build straight into the paged file, checkpoint, close.
  Timer build_timer;
  core::UVDiagramOptions file_options = options;
  file_options.storage_path = path;
  Stats build_stats;
  uint64_t file_pages = 0, file_bytes = 0;
  double build_s = 0, close_s = 0;
  {
    core::UVDiagram built = BuildDiagram(datagen::GenerateUniform(data),
                                         domain, file_options, &build_stats);
    build_s = build_timer.ElapsedSeconds();
    file_pages = built.page_manager().num_pages();
    file_bytes = built.page_manager().bytes_on_disk();
    Timer close_timer;
    UVD_CHECK_OK(built.CloseStorage());
    close_s = close_timer.ElapsedSeconds();
  }

  // Phase 2: cold reopen with a pool smaller than the file.
  const size_t pool_pages =
      pool_flag != 0 ? pool_flag
                     : std::max<size_t>(8, static_cast<size_t>(file_pages) / 8);
  UVD_CHECK(pool_pages < file_pages)
      << "cold-start bench needs a pool smaller than the file";
  core::UVDiagramOptions open_options;
  open_options.buffer_pool_pages = pool_pages;
  obs::SetMetricsEnabled(true);  // measured page-read latency histogram
  Timer open_timer;
  auto reopened = core::UVDiagram::Open(path, open_options).ValueOrDie();
  const double open_s = open_timer.ElapsedSeconds();

  obs::MetricsRegistry registry;
  reopened.file_page_manager()->RegisterMetrics(&registry, "cold");
  registry.RegisterStats("cold.stats", &reopened.stats());

  // Phase 3: serve the larger-than-pool workload cold.
  double cold_serve_s = 0;
  const uint64_t got = Serve(reopened, batch, &cold_serve_s);
  obs::SetMetricsEnabled(false);

  const auto* pool = reopened.file_page_manager()->pool();
  UVD_CHECK(pool != nullptr);
  const uint64_t hits = pool->hits(), misses = pool->misses(),
                 evictions = pool->evictions();

  std::printf("|O| = %zu, %zu queries; file: %llu pages (%.1f MiB), pool: %zu "
              "pages\n\n",
              data.count, batch.size(),
              static_cast<unsigned long long>(file_pages),
              static_cast<double>(file_bytes) / (1024.0 * 1024.0), pool_pages);
  std::printf("%-28s %10s\n", "phase", "seconds");
  std::printf("%-28s %10.3f\n", "build+write (file-backed)", build_s);
  std::printf("%-28s %10.3f\n", "checkpoint+close", close_s);
  std::printf("%-28s %10.3f\n", "cold reopen", open_s);
  std::printf("%-28s %10.3f\n", "serve cold (through pool)", cold_serve_s);
  std::printf("%-28s %10.3f\n", "serve hot (in-RAM build)", ram_serve_s);
  std::printf("\npool: %llu hits, %llu misses, %llu evictions (hit rate "
              "%.1f%%)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              static_cast<unsigned long long>(evictions),
              hits + misses > 0
                  ? 100.0 * static_cast<double>(hits) /
                        static_cast<double>(hits + misses)
                  : 0.0);
  std::printf("answers bitwise-identical to in-RAM build: %s\n",
              got == want ? "yes" : "NO — PERSISTENCE VIOLATION");
  UVD_CHECK(got == want) << "cold-served answers diverged from the in-RAM "
                            "build (digest mismatch)";
  UVD_CHECK(misses > pool_pages)
      << "workload did not exceed the pool (not a cold-start measurement)";

  if (!json_path.empty()) {
    JsonReport report("bench_cold_start");
    report.BeginRecord();
    report.Add("objects", static_cast<int64_t>(data.count));
    report.Add("queries", static_cast<int64_t>(batch.size()));
    report.Add("file_pages", static_cast<int64_t>(file_pages));
    report.Add("file_bytes", static_cast<int64_t>(file_bytes));
    report.Add("pool_pages", static_cast<int64_t>(pool_pages));
    report.Add("build_seconds", build_s);
    report.Add("checkpoint_close_seconds", close_s);
    report.Add("cold_open_seconds", open_s);
    report.Add("cold_serve_seconds", cold_serve_s);
    report.Add("ram_serve_seconds", ram_serve_s);
    report.Add("pool_hits", static_cast<int64_t>(hits));
    report.Add("pool_misses", static_cast<int64_t>(misses));
    report.Add("pool_evictions", static_cast<int64_t>(evictions));
    report.Add("digest_matches_ram", got == want ? "yes" : "no");
    report.AddRaw("metrics", registry.TakeSnapshot().ToJson());
    report.WriteTo(json_path);
  }

  UVD_CHECK_OK(reopened.CloseStorage());
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uvd

int main(int argc, char** argv) { return uvd::bench::Run(argc, argv); }
