// Fig. 7(d): ICR construction time decomposition: I+C pruning, r-object
// generation (exact cell refinement), indexing. Paper shape: r-object
// generation dominates for most sizes.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(d): components of ICR's T_c (%)",
                     "pruning / r-object generation / indexing");
  std::printf("%10s %14s %16s %12s\n", "|O|", "I+C prune(%)", "gen r-object(%)",
              "indexing(%)");
  for (size_t n : bench::SizeSweep()) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = 42;
    Stats stats;
    core::UVDiagramOptions options;
    options.method = core::BuildMethod::kICR;
    auto d = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                 datagen::DomainFor(opts), options, &stats);
    const auto& bs = d.build_stats();
    // Step-1 seed time belongs to Algorithm 2, so it is charged to the
    // pruning component (BuildStats keeps it separate since the
    // double-count fix).
    const double prune = bs.seed_seconds + bs.pruning_seconds;
    const double total = prune + bs.robject_seconds + bs.indexing_seconds;
    std::printf("%10zu %14.1f %16.1f %12.1f\n", n, 100.0 * prune / total,
                100.0 * bs.robject_seconds / total,
                100.0 * bs.indexing_seconds / total);
  }
  return 0;
}
