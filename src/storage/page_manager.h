// Page-granular storage interface plus the in-RAM simulated disk that
// implements it. The paper's evaluation (Sec. VI) stores index leaf levels
// and object pdfs on disk and reports page I/O counts (Fig. 6(b)); this
// module is the unit of that accounting. The file-backed implementation
// (storage/file_page_manager.h) persists the same pages in a checksummed
// single-file store behind this interface, so every index structure can be
// pointed at either backend without change.
#ifndef UVD_STORAGE_PAGE_MANAGER_H_
#define UVD_STORAGE_PAGE_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "obs/latency_histogram.h"

namespace uvd {
namespace storage {

using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Default page size used throughout the paper's setup (4 KB pages).
constexpr size_t kDefaultPageSize = 4096;

/// \brief Page-granular storage with I/O tickers.
///
/// The base class IS the in-RAM simulated disk (pages live in a vector;
/// reads optionally block for SetSimulatedReadLatencyUs to model a device).
/// Every accessor that touches the page table is virtual, so subclasses can
/// replace the backing store wholesale: FaultInjectionPageManager
/// (storage/fault_injection.h) wraps the in-RAM table with injected
/// errors, FilePageManager (storage/file_page_manager.h) stores pages in a
/// checksummed paged file with an optional buffer pool and reports REAL
/// I/O time instead of the simulation.
///
/// Latency seam: simulated device latency belongs to the in-RAM store
/// only. Read() here sleeps per the global knob and records the padded
/// time into the page-read histogram; FilePageManager::Read never sleeps
/// and records measured file/pool time into the same histogram. Benches
/// choose the regime explicitly by choosing the backend (plus the knob for
/// the simulated one) — see docs/TUNING.md "Storage backends".
///
/// Thread safety: concurrent Read calls are safe (Stats tickers are
/// atomic). Allocate mutates the page table (it can reallocate the backing
/// vector) and must not run while ANY other thread reads or writes.
/// Concurrent Write calls are safe iff they target DISTINCT, already
/// allocated pages and no Allocate runs meanwhile — each write then touches
/// only its own page's buffer. The parallel build pipeline relies on
/// exactly that: UVIndex::FinalizeWith allocates every leaf page up front
/// in one AllocateRun, then fans the page writes out across workers.
/// Subclasses must honor the same contract (FilePageManager does: its
/// buffer pool is internally locked and file writes go to disjoint
/// offsets).
///
/// This phase discipline (allocate-then-share) is intentionally mutex-free
/// — there is no interleaving to guard, so there is nothing here for the
/// thread-safety analysis (common/thread_annotations.h) to annotate; the
/// contract lives in this comment and in the TSan CI job instead
/// (docs/STATIC_ANALYSIS.md, "Phase-disciplined structures").
class PageManager {
 public:
  explicit PageManager(size_t page_size = kDefaultPageSize, Stats* stats = nullptr)
      : page_size_(page_size), stats_(stats) {}
  virtual ~PageManager() = default;

  size_t page_size() const { return page_size_; }
  virtual size_t num_pages() const { return pages_.size(); }
  virtual uint64_t bytes_on_disk() const { return pages_.size() * page_size_; }

  /// Allocates a zero-filled page and returns its id.
  virtual PageId Allocate();

  /// Allocates `count` zero-filled pages with consecutive ids and returns
  /// the first id — the same ids `count` Allocate() calls would hand out,
  /// minus the per-call reallocation, and the arena under parallel
  /// finalization: once the run is reserved, workers may Write its pages
  /// concurrently. Returns the would-be next id when count == 0.
  virtual PageId AllocateRun(size_t count);

  /// Copies the page contents into *out (resized to page_size()).
  /// Virtual so backends can swap the store (FilePageManager) or inject
  /// I/O faults (FaultInjectionPageManager).
  virtual Status Read(PageId id, std::vector<uint8_t>* out) const;

  /// Writes data (at most page_size() bytes; shorter data is zero-padded).
  virtual Status Write(PageId id, const std::vector<uint8_t>& data);

  /// Simulated per-read disk latency FOR THE IN-RAM BACKEND: every base
  /// Read blocks for this many microseconds before returning. 0 (the
  /// default — tests and figure benches are unaffected) disables the
  /// sleep. Process-global so throughput benches can put the system into
  /// the paper's disk-bound regime (Sec. VI: leaf pages and pdfs live on
  /// disk) without plumbing a knob through every layer. File-backed
  /// managers ignore it — they have a real device to measure.
  static void SetSimulatedReadLatencyUs(uint32_t us);
  static uint32_t SimulatedReadLatencyUs();

  /// Per-manager page-read latency distribution in microseconds — the I/O
  /// histogram the metrics registry unifies (register it as e.g.
  /// "shard0.storage.page.read.latency.us"). For the in-RAM backend the
  /// simulated latency is included; for FilePageManager it is measured
  /// file/pool time. Recording is skipped while obs::MetricsEnabled() is
  /// off.
  const obs::LatencyHistogram& read_latency_histogram() const {
    return read_latency_us_;
  }

 protected:
  /// Billing helpers for subclasses that replace the backing store.
  Stats* stats() const { return stats_; }
  void RecordReadLatencyUs(uint64_t us) const { read_latency_us_.Record(us); }

 private:
  size_t page_size_;
  Stats* stats_;
  mutable obs::LatencyHistogram read_latency_us_;  // recorded in const Read
  std::vector<std::vector<uint8_t>> pages_;
};

}  // namespace storage
}  // namespace uvd

#endif  // UVD_STORAGE_PAGE_MANAGER_H_
