// Tests for the minimal enclosing circle (non-circular region conversion,
// paper Sec. III-C).
#include "geom/mec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace uvd {
namespace geom {
namespace {

TEST(MecTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(MinimalEnclosingCircle({}).radius, 0.0);
  const Circle one = MinimalEnclosingCircle({{3, 4}});
  EXPECT_EQ(one.center, (Point{3, 4}));
  EXPECT_DOUBLE_EQ(one.radius, 0.0);
}

TEST(MecTest, TwoPoints) {
  const Circle c = MinimalEnclosingCircle({{0, 0}, {4, 0}});
  EXPECT_NEAR(c.center.x, 2.0, 1e-9);
  EXPECT_NEAR(c.center.y, 0.0, 1e-9);
  EXPECT_NEAR(c.radius, 2.0, 1e-9);
}

TEST(MecTest, EquilateralTriangle) {
  const double h = std::sqrt(3.0);
  const Circle c = MinimalEnclosingCircle({{0, 0}, {2, 0}, {1, h}});
  EXPECT_NEAR(c.center.x, 1.0, 1e-9);
  EXPECT_NEAR(c.center.y, h / 3.0, 1e-9);
  EXPECT_NEAR(c.radius, 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(MecTest, CollinearPoints) {
  const Circle c = MinimalEnclosingCircle({{0, 0}, {1, 0}, {2, 0}, {5, 0}});
  EXPECT_NEAR(c.center.x, 2.5, 1e-9);
  EXPECT_NEAR(c.radius, 2.5, 1e-9);
}

TEST(MecTest, EnclosesAllPointsRandom) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point> pts;
    const int n = 3 + static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.Uniform(-100, 100), rng.Uniform(-100, 100)});
    }
    const Circle c = MinimalEnclosingCircle(pts);
    for (const Point& p : pts) {
      EXPECT_LE(Distance(c.center, p), c.radius + 1e-7) << "trial " << trial;
    }
  }
}

TEST(MecTest, IsMinimalOnSquare) {
  const Circle c = MinimalEnclosingCircle({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_NEAR(c.radius, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(c.center.x, 1.0, 1e-9);
  EXPECT_NEAR(c.center.y, 1.0, 1e-9);
}

TEST(MecTest, RobustToDuplicates) {
  const Circle c = MinimalEnclosingCircle({{1, 1}, {1, 1}, {3, 1}, {3, 1}});
  EXPECT_NEAR(c.radius, 1.0, 1e-9);
}

}  // namespace
}  // namespace geom
}  // namespace uvd
