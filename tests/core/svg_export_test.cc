// Tests for the SVG rendering of UV-diagrams.
#include "core/svg_export.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/generators.h"

namespace uvd {
namespace core {
namespace {

TEST(SvgExportTest, RendersWellFormedDocument) {
  datagen::DatasetOptions opts;
  opts.count = 30;
  opts.seed = 4;
  auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);
  auto diagram = UVDiagram::Build(objects, domain).ValueOrDie();
  std::vector<UVCell> cells;
  for (size_t i = 0; i < 3; ++i) {
    cells.push_back(BuildExactUvCell(objects, i, domain));
  }
  const std::string svg = RenderSvg(diagram, cells);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One polygon per cell, one circle per object plus cell centers.
  size_t polygons = 0, pos = 0;
  while ((pos = svg.find("<polygon", pos)) != std::string::npos) {
    ++polygons;
    ++pos;
  }
  EXPECT_EQ(polygons, 3u);
  EXPECT_NE(svg.find("<rect"), std::string::npos);  // grid leaves present
}

TEST(SvgExportTest, OptionsControlLayers) {
  datagen::DatasetOptions opts;
  opts.count = 10;
  auto objects = datagen::GenerateUniform(opts);
  auto diagram =
      UVDiagram::Build(objects, datagen::DomainFor(opts)).ValueOrDie();
  SvgOptions options;
  options.draw_grid = false;
  options.draw_objects = false;
  const std::string svg = RenderSvg(diagram, {}, options);
  EXPECT_EQ(svg.find("stroke=\"#dddddd\""), std::string::npos);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
}

TEST(SvgExportTest, StandaloneCells) {
  datagen::DatasetOptions opts;
  opts.count = 5;
  auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);
  std::vector<UVCell> cells;
  cells.push_back(BuildExactUvCell(objects, 0, domain));
  const std::string svg = RenderCellsSvg(domain, cells);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
}

TEST(SvgExportTest, WriteFileRoundTrip) {
  const std::string path = "/tmp/uvd_svg_test.svg";
  ASSERT_TRUE(WriteSvgFile(path, "<svg></svg>\n").ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[32] = {0};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf), "<svg></svg>\n");
  std::remove(path.c_str());
}

TEST(SvgExportTest, WriteFileBadPath) {
  EXPECT_EQ(WriteSvgFile("/nonexistent_dir/x.svg", "x").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace core
}  // namespace uvd
