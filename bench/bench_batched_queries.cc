// Throughput of the batched query engine (src/query/): queries/sec for a
// moving-NN style PNN stream, swept over worker threads x cache on/off.
//
// Unlike the per-figure benches (which charge UVD_SIM_IO_MS per page read
// post hoc), this bench puts the system into the paper's disk-bound regime
// for real: PageManager::SetSimulatedReadLatencyUs makes every page read
// block, so worker threads demonstrably hide I/O latency instead of just
// being billed for it. The engine's answers are checked bitwise-identical
// across every configuration (thread count and cache setting).
//
// Flags (see bench_common.h): --query_threads=N --batch_size=N --smoke
// plus --sim_io_us=N (default 500) for the simulated per-read latency.
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "query/query_engine.h"
#include "query/result_digest.h"

namespace uvd {
namespace bench {
namespace {

struct RunResult {
  double qps = 0;
  double leaf_io_per_query = 0;
  double hit_rate = 0;
  uint64_t hash = 0;
};

RunResult RunBatch(const core::UVDiagram& diagram, const query::QueryBatch& batch,
                   int threads, bool cache) {
  query::QueryEngineOptions opts;
  opts.threads = threads;
  opts.enable_cache = cache;
  query::QueryEngine engine(diagram, opts);

  diagram.stats().Reset();
  Timer timer;
  const auto results = engine.ExecuteBatch(batch);
  const double seconds = timer.ElapsedSeconds();

  RunResult r;
  const double n = static_cast<double>(batch.size());
  r.qps = n / seconds;
  r.leaf_io_per_query =
      static_cast<double>(diagram.stats().Get(Ticker::kUvIndexLeafReads)) / n;
  const double hits = static_cast<double>(diagram.stats().Get(Ticker::kQueryCacheHits));
  const double misses =
      static_cast<double>(diagram.stats().Get(Ticker::kQueryCacheMisses));
  r.hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
  r.hash = query::DigestPointAnswers(results);
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace uvd

int main(int argc, char** argv) {
  using namespace uvd;
  using namespace uvd::bench;

  const QueryBenchFlags flags = ParseQueryBenchFlags(argc, argv);

  PrintBanner("bench_batched_queries — concurrent batched query engine",
              "throughput extension (ROADMAP): moving-NN PNN streams, "
              "cf. Ali et al. probabilistic moving NN queries");

  datagen::DatasetOptions data;
  data.count = flags.smoke ? 600 : ScaledCount(10000);
  data.seed = 42;
  const geom::Box domain = datagen::DomainFor(data);
  auto objects = datagen::GenerateUniform(data);

  Stats stats;
  core::UVDiagramOptions options;
  options.build_threads = ThreadPool::DefaultThreads();
  const core::UVDiagram diagram =
      BuildDiagram(std::move(objects), domain, options, &stats);

  const int batch_size = flags.smoke ? 200 : flags.batch_size;
  const query::QueryBatch batch = [&] {
    query::QueryBatch b;
    const auto points = datagen::TrajectoryQueryPoints(
        batch_size, domain, /*step_length=*/domain.Width() / 400.0, /*seed=*/7);
    b.reserve(points.size());
    for (const auto& p : points) b.push_back(query::Query::Pnn(p));
    return b;
  }();

  std::printf("|O| = %zu, batch = %d trajectory PNN queries, sim read latency "
              "= %d us\n\n",
              data.count, batch_size, flags.sim_io_us);
  storage::PageManager::SetSimulatedReadLatencyUs(
      static_cast<uint32_t>(flags.sim_io_us));

  std::vector<int> thread_sweep =
      flags.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  if (flags.query_threads > 0) thread_sweep = {1, flags.query_threads};

  std::printf("%8s %7s %12s %14s %10s\n", "threads", "cache", "queries/s",
              "leaf IO/query", "hit rate");
  uint64_t reference_hash = 0;
  bool first = true;
  bool all_identical = true;
  double qps_1t = 0, qps_max_t = 0;
  for (const bool cache : {false, true}) {
    for (const int threads : thread_sweep) {
      const RunResult r = RunBatch(diagram, batch, threads, cache);
      std::printf("%8d %7s %12.1f %14.2f %9.1f%%\n", threads,
                  cache ? "on" : "off", r.qps, r.leaf_io_per_query,
                  100.0 * r.hit_rate);
      if (first) {
        reference_hash = r.hash;
        first = false;
      } else if (r.hash != reference_hash) {
        all_identical = false;
      }
      if (!cache) {
        if (threads == 1) qps_1t = r.qps;
        if (threads == thread_sweep.back()) qps_max_t = r.qps;
      }
    }
  }
  storage::PageManager::SetSimulatedReadLatencyUs(0);

  std::printf("\nspeedup (%d threads vs 1, cache off) = %.2fx (target > 2.0)\n",
              thread_sweep.back(), qps_1t > 0 ? qps_max_t / qps_1t : 0.0);
  std::printf("answers bitwise-identical across configs: %s\n",
              all_identical ? "yes" : "NO — DETERMINISM VIOLATION");
  UVD_CHECK(all_identical) << "batch answers differ across thread/cache configs";
  return 0;
}
