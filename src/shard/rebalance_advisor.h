// RebalanceAdvisor: turns ShardedUVDiagram::BalanceReport() measurements
// into an actionable re-partitioning proposal (ROADMAP "data-adaptive
// shard boundaries", the PR-4 balance report's consumer).
//
// A deployment built with count-blind grid/bisection cuts over a skewed
// dataset (the Fig. 7(g) Gaussian clouds) carries hot shards; the balance
// report makes them measurable, and the advisor closes the loop:
//
//   1. Advise() reads the current per-shard object counts, computes the
//      extent-weighted median cuts kMedian would choose for the SAME
//      dataset (ShardedUVDiagram keeps its stage-1-derived ObjectExtents,
//      so no stage-1 re-run is needed to propose), and predicts each
//      proposed shard's registration count from those extents.
//   2. The advice compares current vs predicted max/mean imbalance and
//      recommends a rebalance only when the current imbalance exceeds the
//      threshold AND the prediction improves on it by the configured
//      relative margin.
//   3. ApplyRebalance() — the opt-in "do it" path, typically gated behind
//      an operator flag — rebuilds the deployment with
//      ShardPartitioning::kMedian. A rebuild re-runs stage 1, so applied
//      cuts are computed from fresh extents; by the partitioning-agnostic
//      border-replication and ownership rules, the rebuilt deployment's
//      PNN/answer-id results remain bitwise-identical to the unsharded
//      baseline (and hence to the pre-rebalance deployment's).
//
// Predictions are heuristic (extent-box intersection approximates the
// conservative UvCellMayOverlap registration test); the post-rebuild
// BalanceReport() is the ground truth. See docs/ARCHITECTURE.md.
#ifndef UVD_SHARD_REBALANCE_ADVISOR_H_
#define UVD_SHARD_REBALANCE_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "geom/box.h"
#include "shard/sharded_uv_diagram.h"

namespace uvd {
namespace shard {

struct RebalanceAdvisorOptions {
  /// Current max/mean object imbalance at or below this is considered
  /// healthy: no recommendation, whatever the prediction says.
  double imbalance_threshold = 1.25;
  /// Required relative improvement: recommend only when the predicted
  /// imbalance is below current * (1 - min_relative_gain), so a rebuild
  /// is never advised for noise-level gains.
  double min_relative_gain = 0.05;
  /// Blend factor for the query-aware Advise overload: 0 keeps the pure
  /// object-count objective (unit weights), 1 weights each object fully by
  /// the relative query pressure (query share / object share) of the shard
  /// that currently owns it. Values in between interpolate linearly.
  double query_weight_lambda = 0.5;
};

/// The advisor's verdict: measured load, proposed cuts, predicted load.
struct RebalanceAdvice {
  double current_imbalance = 1.0;    ///< Measured max/mean shard objects.
  double predicted_imbalance = 1.0;  ///< Predicted under `proposed_boxes`.
  /// The extent-weighted median cuts for the current dataset (same shard
  /// count as the deployment).
  std::vector<geom::Box> proposed_boxes;
  /// Predicted registrations per proposed box (border replicas included).
  std::vector<size_t> predicted_objects;
  bool rebalance_recommended = false;

  /// Human-readable summary for benches, examples and ops tooling.
  std::string ToString() const;
};

class RebalanceAdvisor {
 public:
  /// Measures the deployment, proposes median cuts, predicts their load.
  /// Pure read: never mutates or rebuilds.
  static RebalanceAdvice Advise(const ShardedUVDiagram& diagram,
                                const RebalanceAdvisorOptions& options = {});

  /// Query-aware variant: `routed_queries` is the observed per-shard query
  /// count (ShardRouter::routed_queries, one entry per shard). Each object
  /// is weighted by (1 - lambda) + lambda * (Q_s/sum Q) / (N_s/sum N) of
  /// the shard owning its extent center, so the proposed median cuts
  /// balance observed query load instead of raw object counts; imbalances
  /// are reported in the same query-weighted currency. Falls back to the
  /// count-based overload when lambda <= 0, no queries were observed, or
  /// the vector's size does not match the shard count.
  static RebalanceAdvice Advise(const ShardedUVDiagram& diagram,
                                const std::vector<uint64_t>& routed_queries,
                                const RebalanceAdvisorOptions& options = {});

  /// Rebuilds the deployment with ShardPartitioning::kMedian (same shard
  /// count and diagram options). Full rebuild including stage 1 — callers
  /// gate this behind their own flag and usually behind
  /// Advise().rebalance_recommended.
  static Result<ShardedUVDiagram> ApplyRebalance(
      const ShardedUVDiagram& diagram, Stats* stats = nullptr);
};

}  // namespace shard
}  // namespace uvd

#endif  // UVD_SHARD_REBALANCE_ADVISOR_H_
