// Public facade of the library: owns the dataset, the simulated disk, the
// object store, the R-tree (pruning driver and PNN baseline) and the
// UV-index, and exposes the paper's queries.
//
// Quickstart:
//   auto diagram = core::UVDiagram::Build(objects, domain).ValueOrDie();
//   auto answers = diagram.QueryPnn({x, y});
//   for (const auto& a : answers) use(a.id, a.probability);
#ifndef UVD_CORE_UV_DIAGRAM_H_
#define UVD_CORE_UV_DIAGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "core/builder.h"
#include "core/pattern_queries.h"
#include "core/pnn.h"
#include "core/uv_index.h"
#include "geom/box.h"
#include "rtree/pnn_baseline.h"
#include "rtree/rtree.h"
#include "storage/file_page_manager.h"
#include "storage/page_manager.h"
#include "uncertain/object_store.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace core {

/// Build configuration for a UVDiagram (paper defaults throughout).
struct UVDiagramOptions {
  BuildMethod method = BuildMethod::kIC;
  CrFinderOptions cr;
  UVIndexOptions index;
  rtree::RTreeOptions rtree;
  uncertain::QualificationOptions qualification;
  size_t page_size = storage::kDefaultPageSize;
  /// Construction worker count (see core/build_pipeline.h). <= 0: hardware
  /// concurrency (the default); 1: the serial legacy loop. The resulting
  /// index is byte-identical for every setting.
  int build_threads = 0;
  /// Stage-2 strategy and partition shape (see core/build_pipeline.h).
  /// kAuto runs the domain-partitioned parallel stage 2 whenever more than
  /// one worker builds; every mode serializes to identical bytes.
  Stage2Mode stage2 = Stage2Mode::kAuto;
  int stage2_max_depth = 2;
  int stage2_target_subtrees = 0;
  /// Construction kernel implementation for both stages (see
  /// core/build_pipeline.h and geom/batch/kernels.h). Applied to cr,
  /// index and the pipeline; the index is byte-identical either way.
  geom::KernelMode kernel_mode = geom::KernelMode::kBatch;
  /// Stage-1 R-tree traversal strategy and its tuning (see
  /// core/build_pipeline.h and rtree/traversal_session.h). The index is
  /// byte-identical across modes, tile sizes and memo capacities.
  rtree::TraversalMode traversal_mode = rtree::TraversalMode::kShared;
  int traversal_tile_size = 64;
  int leaf_memo_capacity = 256;
  /// Persistent storage. Empty (the default): pages live in the in-RAM
  /// simulated disk and the diagram dies with the process. Non-empty: the
  /// whole stack — object records, R-tree leaves, UV-index pages — lands
  /// in a checksummed paged file at this path; Checkpoint() makes the
  /// built index durable and Open() serves it cold in a later process
  /// (docs/STORAGE.md).
  std::string storage_path;
  /// Buffer pool capacity in pages for the file-backed store (ignored
  /// without storage_path). 0 disables the pool: every read hits the file.
  size_t buffer_pool_pages = 0;
  /// Protected-segment fraction of the pool (see BufferPoolOptions).
  double buffer_pool_protected_fraction = 0.8;
};

/// \brief An indexed UV-diagram over a set of uncertain objects.
class UVDiagram {
 public:
  using Options = UVDiagramOptions;

  /// Builds everything: object store, R-tree, UV-index. Objects must have
  /// ids 0..n-1 in order and centers inside `domain`. If `stats` is null an
  /// internal Stats is used.
  static Result<UVDiagram> Build(std::vector<uncertain::UncertainObject> objects,
                                 const geom::Box& domain, const Options& options = {},
                                 Stats* stats = nullptr);

  /// Reopens a diagram checkpointed at `path` and serves it cold: objects
  /// and store directory come back from the file's manifest, the UV-index
  /// is deserialized, and page reads flow through the (optional) buffer
  /// pool. `options.page_size` is ignored — the file's metapage rules.
  /// The R-tree is NOT rebuilt eagerly; the first R-tree-path call
  /// (QueryPnnWithRtree / rtree()) reconstructs it from the reloaded
  /// objects. Failure codes are the storage layer's typed ones: a damaged
  /// file yields Corruption (etc.), never a silently wrong diagram.
  static Result<UVDiagram> Open(const std::string& path,
                                const Options& options = {},
                                Stats* stats = nullptr);

  /// Durability point for a file-backed diagram (InvalidArgument without
  /// storage_path): saves the UV-index structure and the store/domain
  /// manifest into pages, points the file's bootstrap at them, and
  /// checkpoints the file. Open() recovers exactly this state.
  Status Checkpoint();

  /// Checkpoint + close the backing file. The diagram must not be used
  /// afterwards; reopen with Open(). No-op for in-RAM diagrams.
  Status CloseStorage();

  /// True when this diagram is backed by a paged file.
  bool persistent() const { return fpm_ != nullptr; }
  /// The file-backed manager, or nullptr for in-RAM diagrams (metrics
  /// registration, crash harnesses).
  storage::FilePageManager* file_page_manager() { return fpm_; }

  /// Incremental insertion (paper Sec. VII future work): derives the new
  /// object's cr-objects against the current population and appends it to
  /// the frozen grid (UVIndex::InsertObjectLive). The object id must be
  /// objects().size(). The R-tree is rebuilt lazily before its next use,
  /// so both query paths stay consistent. Suitable for modest insert
  /// rates; rebuild the diagram when leaf chains degrade.
  Status InsertObject(uncertain::UncertainObject object);

  /// PNN through the UV-index (paper Sec. V-A). Errors (I/O failures,
  /// query outside the domain) propagate as Status.
  Result<std::vector<uncertain::PnnAnswer>> QueryPnn(
      const geom::Point& q, rtree::PnnBreakdown* breakdown = nullptr) const;

  /// PNN through the R-tree baseline of [14] (the paper's comparator).
  Result<std::vector<uncertain::PnnAnswer>> QueryPnnWithRtree(
      const geom::Point& q, rtree::PnnBreakdown* breakdown = nullptr) const;

  /// Answer-object ids only (no probability computation).
  Result<std::vector<int>> AnswerObjectIds(const geom::Point& q) const;

  /// Pattern queries (paper Sec. V-C).
  std::vector<UvPartition> QueryUvPartitions(const geom::Box& range) const;
  Result<UvCellSummary> QueryUvCellSummary(int object_id) const;

  const std::vector<uncertain::UncertainObject>& objects() const { return objects_; }
  const geom::Box& domain() const { return domain_; }
  const UVIndex& index() const { return *index_; }
  const rtree::RTree& rtree() const {
    RefreshRtreeIfStale();
    return *rtree_;
  }
  const uncertain::ObjectStore& store() const { return *store_; }
  const BuildStats& build_stats() const { return build_stats_; }
  Stats& stats() const { return *stats_; }
  const Options& options() const { return options_; }
  /// The diagram's backing store — exposed so observability surfaces can
  /// register its page-read latency histogram.
  const storage::PageManager& page_manager() const { return *pm_; }

 private:
  UVDiagram() = default;

  /// Rebuilds the R-tree if live inserts made it stale. The staleness
  /// check and the rebuild run under rtree_mu_, so concurrent R-tree-path
  /// callers (QueryPnnWithRtree, rtree()) cannot both rebuild or observe
  /// a half-built tree (the lazy mutation under `const` used to race).
  /// Note a rebuild allocates pages in the shared PageManager, which must
  /// not overlap ANY other reader (see page_manager.h); today that holds
  /// because rebuilds only actually fire inside InsertObject — a mutation,
  /// which callers already must not overlap with queries.
  void RefreshRtreeIfStale() const;

  std::vector<uncertain::UncertainObject> objects_;
  geom::Box domain_;
  Options options_;
  Stats* stats_ = nullptr;                 // external or owned_stats_.get()
  std::unique_ptr<Stats> owned_stats_;
  std::unique_ptr<storage::PageManager> pm_;
  /// pm_ downcast when storage_path is configured; null for in-RAM.
  storage::FilePageManager* fpm_ = nullptr;
  std::unique_ptr<uncertain::ObjectStore> store_;
  std::vector<uncertain::ObjectPtr> ptrs_;
  mutable std::unique_ptr<rtree::RTree> rtree_;
  /// Guards rtree_stale_ and the lazy rebuild of *rtree_. A unique_ptr so
  /// UVDiagram stays movable (Result<UVDiagram> returns by value); the
  /// analysis tracks the capability through the dereference
  /// (UVD_GUARDED_BY(*rtree_mu_)). The rebuilt R-tree VALUE is read
  /// lock-free on query paths — that is safe because rebuilds only fire
  /// inside InsertObject, which callers must not overlap with queries
  /// (see RefreshRtreeIfStale below), so only the staleness flag carries
  /// the annotation.
  mutable std::unique_ptr<Mutex> rtree_mu_ = std::make_unique<Mutex>();
  mutable bool rtree_stale_ UVD_GUARDED_BY(*rtree_mu_) = false;
  std::unique_ptr<UVIndex> index_;
  BuildStats build_stats_;
};

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_UV_DIAGRAM_H_
