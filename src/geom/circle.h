// Circles: the uncertainty regions of the paper (Cir(c_i, r_i)) and the
// minimum bounding circles (MBC) stored in index leaf tuples.
#ifndef UVD_GEOM_CIRCLE_H_
#define UVD_GEOM_CIRCLE_H_

#include <algorithm>
#include <cmath>

#include "geom/box.h"
#include "geom/point.h"

namespace uvd {
namespace geom {

/// Closed disk with the given center and radius (radius may be 0, in which
/// case the circle is a point and the UV-diagram degenerates to the
/// classic Voronoi diagram; see paper Section I).
struct Circle {
  Point center;
  double radius = 0.0;

  Circle() = default;
  Circle(Point c, double r) : center(c), radius(r) {}

  double Area() const { return M_PI * radius * radius; }

  bool Contains(const Point& p) const {
    return DistanceSquared(center, p) <= radius * radius;
  }

  /// dist_min(O, p) of paper Eq. 2: 0 if p inside, else distance to boundary.
  double DistMin(const Point& p) const {
    return std::max(0.0, Distance(center, p) - radius);
  }

  /// dist_max(O, p) of paper Eq. 3.
  double DistMax(const Point& p) const { return Distance(center, p) + radius; }

  /// True iff the two closed disks share at least one point.
  bool Intersects(const Circle& o) const {
    const double rs = radius + o.radius;
    return DistanceSquared(center, o.center) <= rs * rs;
  }

  /// Tight axis-aligned bounding box.
  Box Mbr() const {
    return Box({center.x - radius, center.y - radius},
               {center.x + radius, center.y + radius});
  }
};

}  // namespace geom
}  // namespace uvd

#endif  // UVD_GEOM_CIRCLE_H_
