// Clang Thread-Safety-Analysis annotations plus the annotated Mutex /
// MutexLock / CondVar wrappers every lock-guarded structure in src/ must
// use (scripts/check_determinism.py rejects raw std::mutex declarations).
//
// Under Clang the whole tree compiles with -Wthread-safety
// -Werror=thread-safety (CMakeLists.txt), so a field read outside its
// mutex, a lock-scope escape, or a call missing its UVD_REQUIRES
// capability is a COMPILE error — the lock discipline holds for
// interleavings no TSan run reaches. Under GCC (which has no such
// analysis) every macro expands to nothing and the wrappers are
// zero-overhead shims over <mutex>/<condition_variable>, so the tier-1
// build is unchanged. docs/STATIC_ANALYSIS.md is the discipline guide;
// tests/common/thread_annotations_compile_fail/ proves violations really
// fail to compile.
#ifndef UVD_COMMON_THREAD_ANNOTATIONS_H_
#define UVD_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define UVD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define UVD_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (applied to Mutex below).
#define UVD_CAPABILITY(x) UVD_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (applied to MutexLock below).
#define UVD_SCOPED_CAPABILITY UVD_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define UVD_GUARDED_BY(x) UVD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define UVD_PT_GUARDED_BY(x) UVD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held ON ENTRY and does
/// not release them.
#define UVD_REQUIRES(...) UVD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define UVD_ACQUIRE(...) UVD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability acquired earlier.
#define UVD_RELEASE(...) UVD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire; holds the capability iff it returned `b`.
#define UVD_TRY_ACQUIRE(...) UVD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define UVD_EXCLUDES(...) UVD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define UVD_RETURN_CAPABILITY(x) UVD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the discipline cannot be expressed
/// (docs/STATIC_ANALYSIS.md "Suppressing with justification").
#define UVD_NO_THREAD_SAFETY_ANALYSIS \
  UVD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace uvd {

/// \brief std::mutex wrapped as an annotated capability.
///
/// Same cost, same semantics — the wrapper exists so GUARDED_BY fields and
/// REQUIRES contracts are checkable at compile time. Prefer MutexLock over
/// manual Lock/Unlock pairs; condition waits go through CondVar.
class UVD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UVD_ACQUIRE() { mu_.lock(); }
  void Unlock() UVD_RELEASE() { mu_.unlock(); }
  bool TryLock() UVD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex (the std::lock_guard of the wrapper
/// world, visible to the analysis as a scoped capability).
class UVD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) UVD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() UVD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with Mutex.
///
/// Wait requires the mutex to be HELD on entry and holds it again on
/// return (it is released only while blocked, like std::condition_variable
/// — the analysis sees an uninterrupted critical section, which is exactly
/// the guarantee the caller's predicate re-check relies on). Write waits
/// as explicit loops —
///     while (!predicate) cv.Wait(mu);
/// — rather than passing a predicate lambda: lambda bodies are analyzed as
/// unannotated functions, so guarded reads inside them would defeat the
/// analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; always re-check the predicate in a loop.
  void Wait(Mutex& mu) UVD_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() afterwards keeps it held for the caller, matching the
    // REQUIRES contract (held on entry, held on return).
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace uvd

#endif  // UVD_COMMON_THREAD_ANNOTATIONS_H_
