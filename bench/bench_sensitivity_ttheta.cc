// Sec. VI-B.1 sensitivity test: split threshold T_theta. Paper finding: a
// wide range of T_theta gives nearly identical indexes; very small values
// stop the grid from splitting and degrade it into long page lists.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Sensitivity: split threshold T_theta",
                     "Sec. VI-B.1 (paper default T_theta = 1)");
  std::printf("%8s %10s %10s %12s %12s %12s\n", "T_theta", "leaves", "non-leaf",
              "leaf pages", "T_q(ms)", "leaf I/O");
  for (double t_theta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    datagen::DatasetOptions opts;
    opts.count = bench::ScaledCount(30000);
    opts.seed = 42;
    Stats stats;
    core::UVDiagramOptions options;
    options.index.split_threshold = t_theta;
    auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                       datagen::DomainFor(opts), options, &stats);
    const auto queries =
        datagen::UniformQueryPoints(bench::kNumQueries, diagram.domain(), 7);
    const auto r = bench::MeasurePnn(diagram, queries);
    std::printf("%8.1f %10zu %10d %12zu %12.3f %12.2f\n", t_theta,
                diagram.index().num_leaves(), diagram.index().num_nonleaf(),
                diagram.index().total_leaf_pages(), r.uv_ms, r.uv_leaf_io);
  }
  std::printf("\nsmall T_theta suppresses splitting: the root degrades into one\n"
              "long page list and query I/O explodes (the paper's observation).\n");
  return 0;
}
