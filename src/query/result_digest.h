// Order-sensitive FNV-1a digest of point-query answers: two result lists
// digest equal iff their statuses, PNN answers (ids AND probability bits)
// and answer-id lists are element-wise bitwise-identical. This is the one
// mix every bitwise-identity assertion shares — the query-engine and
// sharded-serving benches and the shard equivalence tests all compare
// digests from this function, so a drift in the mix cannot make one
// harness pass a divergence another would catch.
#ifndef UVD_QUERY_RESULT_DIGEST_H_
#define UVD_QUERY_RESULT_DIGEST_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "query/query_batch.h"

namespace uvd {
namespace query {

inline uint64_t DigestPointAnswers(const std::vector<QueryResult>& results) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const QueryResult& r : results) {
    mix(r.status.ok() ? 1 : 0);
    for (const uncertain::PnnAnswer& a : r.pnn) {
      uint64_t bits = 0;
      std::memcpy(&bits, &a.probability, sizeof(bits));
      mix(static_cast<uint64_t>(a.id));
      mix(bits);
    }
    for (int id : r.answer_ids) mix(static_cast<uint64_t>(id));
  }
  return h;
}

}  // namespace query
}  // namespace uvd

#endif  // UVD_QUERY_RESULT_DIGEST_H_
