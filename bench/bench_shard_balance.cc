// Shard load balance across partitioning modes: {grid, bisection, median}
// x {uniform, clustered 10:1} at a fixed shard count, reporting per-shard
// object / replica / leaf imbalance plus routed throughput under blocking
// page reads and the per-shard query-share imbalance — the hot-shard
// diagnosis bench for ROADMAP "data-adaptive shard boundaries". The query
// stream is data-following (probes cluster around object centers, the
// moving-NN skew of Ali et al.), so a hot shard shows up as both an object
// and a query-share outlier. Prints the RebalanceAdvisor verdict for every
// deployment; every configuration's PNN answers are digest-checked
// bitwise-identical to the unsharded baseline (UVD_CHECK) — partitioning
// must never change answers.
//
// Flags (see bench_common.h): --query_threads=N (per-shard engine workers,
// default 1) --batch_size=N --sim_io_us=N --smoke
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "query/query_engine.h"
#include "query/result_digest.h"
#include "shard/rebalance_advisor.h"
#include "shard/shard_router.h"
#include "shard/sharded_uv_diagram.h"

namespace {

using namespace uvd;

const char* ModeName(shard::ShardPartitioning p) {
  switch (p) {
    case shard::ShardPartitioning::kGrid:
      return "grid";
    case shard::ShardPartitioning::kBisection:
      return "bisection";
    case shard::ShardPartitioning::kMedian:
      return "median";
  }
  return "?";
}

double Imbalance(const std::vector<size_t>& counts) {
  size_t total = 0, max_count = 0;
  for (const size_t c : counts) {
    total += c;
    max_count = std::max(max_count, c);
  }
  const double mean =
      counts.empty() ? 0.0
                     : static_cast<double>(total) / static_cast<double>(counts.size());
  return mean > 0.0 ? static_cast<double>(max_count) / mean : 0.0;
}

/// Data-following PNN stream: each probe is a Gaussian step off a random
/// object's center, clamped to the domain — query traffic goes where the
/// data is, so data skew becomes query skew.
query::QueryBatch DataFollowingBatch(
    const std::vector<uncertain::UncertainObject>& objects,
    const geom::Box& domain, int count, uint64_t seed) {
  Rng rng(seed);
  query::QueryBatch batch;
  batch.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const geom::Point& c =
        objects[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(objects.size()) - 1))]
            .center();
    batch.push_back(query::Query::Pnn(
        {std::clamp(rng.Gaussian(c.x, 100.0), domain.lo.x, domain.hi.x),
         std::clamp(rng.Gaussian(c.y, 100.0), domain.lo.y, domain.hi.y)}));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uvd::bench;

  const QueryBenchFlags flags = ParseQueryBenchFlags(argc, argv);

  PrintBanner("bench_shard_balance — partitioning modes vs data skew",
              "ROADMAP data-adaptive shard boundaries; Fig. 7(g) skew, "
              "border regions per Ali et al.");

  const int num_shards = flags.smoke ? 4 : 8;
  datagen::DatasetOptions data;
  data.count = flags.smoke ? 500 : ScaledCount(8000);
  data.seed = 42;
  const geom::Box domain = datagen::DomainFor(data);
  const int batch_size = flags.smoke ? 300 : flags.batch_size;

  std::printf("|O| = %zu, K = %d shards, batch = %d data-following PNN "
              "probes, sim read latency = %d us\n\n",
              data.count, num_shards, batch_size, flags.sim_io_us);
  std::printf("%10s %10s %8s %8s %9s %8s %10s %8s %10s\n", "dataset", "mode",
              "build s", "obj imb", "replicas", "leaf imb", "queries/s",
              "qsh imb", "identical");

  bool all_identical = true;
  for (const bool clustered : {false, true}) {
    const auto objects =
        clustered ? datagen::GenerateClusters(
                        data, {{{2500.0, 2500.0}, 600.0, 10.0},
                               {{7500.0, 7500.0}, 600.0, 1.0}})
                  : datagen::GenerateUniform(data);
    const query::QueryBatch batch =
        DataFollowingBatch(objects, domain, batch_size, clustered ? 9 : 7);

    Stats baseline_stats;
    core::UVDiagramOptions diagram_options;
    diagram_options.build_threads = ThreadPool::DefaultThreads();
    const core::UVDiagram baseline =
        BuildDiagram(objects, domain, diagram_options, &baseline_stats);
    query::QueryEngine baseline_engine(baseline, [] {
      query::QueryEngineOptions o;
      o.threads = 1;
      return o;
    }());
    const uint64_t reference_hash =
        query::DigestPointAnswers(baseline_engine.ExecuteBatch(batch));

    std::string advisor_lines;
    for (const auto mode :
         {shard::ShardPartitioning::kGrid, shard::ShardPartitioning::kBisection,
          shard::ShardPartitioning::kMedian}) {
      shard::ShardedUVDiagramOptions options;
      options.num_shards = num_shards;
      options.partitioning = mode;
      options.diagram.build_threads = ThreadPool::DefaultThreads();
      auto sharded =
          shard::ShardedUVDiagram::Build(objects, domain, options).ValueOrDie();

      std::vector<size_t> shard_objects, shard_leaves;
      size_t registrations = 0;  // the "replicas" column: registrations / |O|
      for (const auto& b : sharded.BalanceReport()) {
        shard_objects.push_back(b.objects);
        shard_leaves.push_back(b.leaves);
        registrations += b.objects;
      }

      // Query-share skew: how unevenly the batch's point probes land on
      // the shards under half-open ownership.
      std::vector<size_t> shard_queries(sharded.num_shards(), 0);
      for (const auto& q : batch) {
        ++shard_queries[static_cast<size_t>(sharded.ShardIndexForPoint(q.point))];
      }

      shard::ShardRouterOptions router_options;
      router_options.engine.threads =
          flags.query_threads > 0 ? flags.query_threads : 1;
      shard::ShardRouter router(sharded, router_options);
      storage::PageManager::SetSimulatedReadLatencyUs(
          static_cast<uint32_t>(flags.sim_io_us));
      Timer timer;
      const auto results = router.ExecuteBatch(batch);
      const double seconds = timer.ElapsedSeconds();
      storage::PageManager::SetSimulatedReadLatencyUs(0);

      const bool identical =
          query::DigestPointAnswers(results) == reference_hash;
      all_identical = all_identical && identical;
      std::printf("%10s %10s %8.2f %8.2f %8.2fx %8.2f %10.1f %8.2f %10s\n",
                  clustered ? "clustered" : "uniform", ModeName(mode),
                  sharded.build_stats().total_seconds, Imbalance(shard_objects),
                  static_cast<double>(registrations) /
                      static_cast<double>(data.count),
                  Imbalance(shard_leaves),
                  static_cast<double>(batch.size()) / seconds,
                  Imbalance(shard_queries), identical ? "yes" : "NO");

      const shard::RebalanceAdvice advice = shard::RebalanceAdvisor::Advise(sharded);
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  advisor[%s/%s]: current %.2f, predicted %.2f, "
                    "rebalance %s\n",
                    clustered ? "clustered" : "uniform", ModeName(mode),
                    advice.current_imbalance, advice.predicted_imbalance,
                    advice.rebalance_recommended ? "recommended" : "not needed");
      advisor_lines += line;
    }
    std::printf("%s", advisor_lines.c_str());
  }

  std::printf("\nanswers bitwise-identical to the unsharded baseline for every "
              "mode and dataset: %s\n",
              all_identical ? "yes" : "NO — PARTITIONING CHANGED ANSWERS");
  UVD_CHECK(all_identical) << "partitioning mode changed query answers";
  return 0;
}
