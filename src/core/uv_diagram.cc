#include "core/uv_diagram.h"

#include "core/uv_index_io.h"
#include "storage/record.h"

namespace uvd {
namespace core {

namespace {

// Bootstrap blob in the paged file's metapage: points at the manifest
// page chain. The manifest itself (a normal page stream) carries the
// domain, the object-store directory and the saved-index handle.
constexpr uint32_t kDiagramBootstrapMagic = 0x55564442;  // "UVDB"
constexpr uint32_t kDiagramBootstrapVersion = 1;
constexpr uint32_t kDiagramManifestMagic = 0x5556444D;  // "UVDM"
constexpr uint32_t kDiagramManifestVersion = 1;

}  // namespace

Result<UVDiagram> UVDiagram::Build(std::vector<uncertain::UncertainObject> objects,
                                   const geom::Box& domain, const Options& options,
                                   Stats* stats) {
  if (objects.empty()) {
    return Status::InvalidArgument("cannot build a UV-diagram over zero objects");
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].id() != static_cast<int>(i)) {
      return Status::InvalidArgument("objects must have ids 0..n-1 in order");
    }
    if (!domain.Contains(objects[i].center())) {
      return Status::InvalidArgument("object center outside the domain");
    }
  }

  UVDiagram d;
  d.objects_ = std::move(objects);
  d.domain_ = domain;
  d.options_ = options;
  // One knob drives every construction kernel: the sub-option structs the
  // finder and index read are aligned here so callers only set kernel_mode.
  d.options_.cr.kernel_mode = options.kernel_mode;
  d.options_.index.kernel_mode = options.kernel_mode;
  if (stats != nullptr) {
    d.stats_ = stats;
  } else {
    d.owned_stats_ = std::make_unique<Stats>();
    d.stats_ = d.owned_stats_.get();
  }

  if (!options.storage_path.empty()) {
    storage::FilePageManagerOptions file_options;
    file_options.buffer_pool_pages = options.buffer_pool_pages;
    file_options.buffer_pool_protected_fraction =
        options.buffer_pool_protected_fraction;
    auto fpm = storage::FilePageManager::Create(
        options.storage_path, options.page_size, file_options, d.stats_);
    if (!fpm.ok()) return fpm.status();
    d.fpm_ = fpm.value().get();
    d.pm_ = std::move(fpm).value();
  } else {
    d.pm_ = std::make_unique<storage::PageManager>(options.page_size, d.stats_);
  }
  d.store_ = std::make_unique<uncertain::ObjectStore>(d.pm_.get());
  UVD_RETURN_NOT_OK(d.store_->BulkLoad(d.objects_, &d.ptrs_));

  UVD_ASSIGN_OR_RETURN(
      rtree::RTree tree,
      rtree::RTree::BulkLoad(d.objects_, d.ptrs_, d.pm_.get(), options.rtree, d.stats_));
  d.rtree_ = std::make_unique<rtree::RTree>(std::move(tree));

  d.index_ = std::make_unique<UVIndex>(domain, d.pm_.get(), d.options_.index, d.stats_);
  BuildPipelineOptions pipeline;
  pipeline.method = options.method;
  pipeline.cr = d.options_.cr;
  pipeline.build_threads = options.build_threads;
  pipeline.stage2 = options.stage2;
  pipeline.stage2_max_depth = options.stage2_max_depth;
  pipeline.stage2_target_subtrees = options.stage2_target_subtrees;
  pipeline.kernel_mode = options.kernel_mode;
  pipeline.traversal_mode = options.traversal_mode;
  pipeline.traversal_tile_size = options.traversal_tile_size;
  pipeline.leaf_memo_capacity = options.leaf_memo_capacity;
  UVD_RETURN_NOT_OK(RunBuildPipeline(d.objects_, d.ptrs_, *d.rtree_, domain, pipeline,
                                     d.index_.get(), &d.build_stats_, d.stats_));
  return d;
}

Status UVDiagram::Checkpoint() {
  if (fpm_ == nullptr) {
    return Status::InvalidArgument(
        "Checkpoint requires a diagram built with options.storage_path");
  }
  UVD_ASSIGN_OR_RETURN(SavedIndexHandle index_handle,
                       SaveUvIndex(*index_, pm_.get()));

  std::vector<uint8_t> manifest;
  storage::Encoder enc(&manifest);
  enc.PutU32(kDiagramManifestMagic);
  enc.PutU32(kDiagramManifestVersion);
  enc.PutDouble(domain_.lo.x);
  enc.PutDouble(domain_.lo.y);
  enc.PutDouble(domain_.hi.x);
  enc.PutDouble(domain_.hi.y);
  store_->EncodeState(&enc);
  enc.PutU32(index_handle.first_page);
  enc.PutU32(index_handle.page_count);
  UVD_ASSIGN_OR_RETURN(SavedIndexHandle manifest_handle,
                       WriteStreamToPages(manifest, pm_.get()));

  std::vector<uint8_t> bootstrap;
  storage::Encoder boot(&bootstrap);
  boot.PutU32(kDiagramBootstrapMagic);
  boot.PutU32(kDiagramBootstrapVersion);
  boot.PutU32(manifest_handle.first_page);
  boot.PutU32(manifest_handle.page_count);
  boot.PutU32(static_cast<uint32_t>(manifest.size()));
  UVD_RETURN_NOT_OK(fpm_->SetBootstrap(bootstrap));
  return fpm_->Checkpoint();
}

Status UVDiagram::CloseStorage() {
  if (fpm_ == nullptr) return Status::OK();
  UVD_RETURN_NOT_OK(Checkpoint());
  return fpm_->Close();
}

Result<UVDiagram> UVDiagram::Open(const std::string& path, const Options& options,
                                  Stats* stats) {
  UVDiagram d;
  d.options_ = options;
  d.options_.storage_path = path;
  d.options_.cr.kernel_mode = options.kernel_mode;
  d.options_.index.kernel_mode = options.kernel_mode;
  if (stats != nullptr) {
    d.stats_ = stats;
  } else {
    d.owned_stats_ = std::make_unique<Stats>();
    d.stats_ = d.owned_stats_.get();
  }

  storage::FilePageManagerOptions file_options;
  file_options.buffer_pool_pages = options.buffer_pool_pages;
  file_options.buffer_pool_protected_fraction =
      options.buffer_pool_protected_fraction;
  auto fpm = storage::FilePageManager::Open(path, file_options, d.stats_);
  if (!fpm.ok()) return fpm.status();
  d.fpm_ = fpm.value().get();
  d.pm_ = std::move(fpm).value();
  d.options_.page_size = d.pm_->page_size();

  const std::vector<uint8_t>& bootstrap = d.fpm_->bootstrap();
  if (bootstrap.size() < 20) {
    return Status::Corruption("paged file carries no diagram bootstrap");
  }
  storage::Decoder boot(bootstrap);
  if (boot.GetU32() != kDiagramBootstrapMagic) {
    return Status::InvalidArgument("paged file is not a UV-diagram store");
  }
  if (boot.GetU32() > kDiagramBootstrapVersion) {
    return Status::NotImplemented("diagram bootstrap from a future version");
  }
  SavedIndexHandle manifest_handle;
  manifest_handle.first_page = boot.GetU32();
  manifest_handle.page_count = boot.GetU32();
  const uint32_t manifest_bytes = boot.GetU32();

  std::vector<uint8_t> manifest;
  UVD_RETURN_NOT_OK(ReadPagesToStream(*d.pm_, manifest_handle, &manifest));
  if (manifest.size() < manifest_bytes) {
    return Status::Corruption("diagram manifest shorter than its declared size");
  }
  manifest.resize(manifest_bytes);
  if (manifest_bytes < 8) {
    return Status::Corruption("diagram manifest truncated");
  }
  storage::Decoder dec(manifest);
  if (dec.GetU32() != kDiagramManifestMagic) {
    return Status::Corruption("diagram manifest has a bad magic");
  }
  if (dec.GetU32() > kDiagramManifestVersion) {
    return Status::NotImplemented("diagram manifest from a future version");
  }
  d.domain_.lo.x = dec.GetDouble();
  d.domain_.lo.y = dec.GetDouble();
  d.domain_.hi.x = dec.GetDouble();
  d.domain_.hi.y = dec.GetDouble();

  d.store_ = std::make_unique<uncertain::ObjectStore>(d.pm_.get());
  UVD_RETURN_NOT_OK(d.store_->RestoreState(&dec));
  UVD_RETURN_NOT_OK(d.store_->LoadAll(&d.objects_, &d.ptrs_));

  SavedIndexHandle index_handle;
  index_handle.first_page = dec.GetU32();
  index_handle.page_count = dec.GetU32();
  UVD_ASSIGN_OR_RETURN(UVIndex index,
                       LoadUvIndex(d.pm_.get(), index_handle, d.stats_));
  d.index_ = std::make_unique<UVIndex>(std::move(index));

  // The R-tree is not persisted (it is derivable): leave it unbuilt and
  // let the first R-tree-path caller reconstruct it from the reloaded
  // objects. UV-index serving needs none of it.
  {
    MutexLock lock(*d.rtree_mu_);
    d.rtree_stale_ = true;
  }
  return d;
}

void UVDiagram::RefreshRtreeIfStale() const {
  MutexLock lock(*rtree_mu_);
  if (!rtree_stale_) return;
  auto tree =
      rtree::RTree::BulkLoad(objects_, ptrs_, pm_.get(), options_.rtree, stats_);
  UVD_CHECK(tree.ok()) << tree.status().ToString();
  if (rtree_ == nullptr) {
    // Reopened diagrams start without an R-tree (it is derivable, not
    // persisted); materialize it on first use.
    rtree_ = std::make_unique<rtree::RTree>(std::move(tree).value());
  } else {
    *rtree_ = std::move(tree).value();
  }
  rtree_stale_ = false;
}

Status UVDiagram::InsertObject(uncertain::UncertainObject object) {
  if (object.id() != static_cast<int>(objects_.size())) {
    return Status::InvalidArgument("new object id must equal objects().size()");
  }
  if (!domain_.Contains(object.center())) {
    return Status::InvalidArgument("object center outside the domain");
  }
  // Persist the record and register the object.
  auto ptr = store_->Append(object);
  if (!ptr.ok()) return ptr.status();
  objects_.push_back(std::move(object));
  ptrs_.push_back(ptr.value());
  {
    MutexLock lock(*rtree_mu_);
    rtree_stale_ = true;
  }

  // Derive the new object's cr-objects against the full population (the
  // lazily rebuilt R-tree covers every earlier insert).
  RefreshRtreeIfStale();
  const CrObjectFinder finder(objects_, *rtree_, domain_, options_.cr, stats_);
  const CrResult cr = finder.Find(objects_.size() - 1);
  std::vector<geom::Circle> cr_regions;
  cr_regions.reserve(cr.cr_objects.size());
  for (int id : cr.cr_objects) {
    cr_regions.push_back(objects_[static_cast<size_t>(id)].region());
  }
  return index_->InsertObjectLive(objects_.back().region(), objects_.back().id(),
                                  ptrs_.back(), std::move(cr_regions));
}

Result<std::vector<uncertain::PnnAnswer>> UVDiagram::QueryPnn(
    const geom::Point& q, rtree::PnnBreakdown* breakdown) const {
  return EvaluatePnnWithUvIndex(*index_, *store_, q, options_.qualification, stats_,
                                breakdown);
}

Result<std::vector<uncertain::PnnAnswer>> UVDiagram::QueryPnnWithRtree(
    const geom::Point& q, rtree::PnnBreakdown* breakdown) const {
  RefreshRtreeIfStale();
  return rtree::EvaluatePnnWithRtree(*rtree_, *store_, q, options_.qualification,
                                     stats_, breakdown);
}

Result<std::vector<int>> UVDiagram::AnswerObjectIds(const geom::Point& q) const {
  return RetrievePnnAnswerIds(*index_, q, stats_);
}

std::vector<UvPartition> UVDiagram::QueryUvPartitions(const geom::Box& range) const {
  return RetrieveUvPartitions(*index_, range, stats_);
}

Result<UvCellSummary> UVDiagram::QueryUvCellSummary(int object_id) const {
  return RetrieveUvCellSummary(*index_, object_id, /*use_offline_lists=*/true, stats_);
}

}  // namespace core
}  // namespace uvd
