#include "uncertain/distance_dist.h"

#include <algorithm>
#include <cmath>

#include "geom/circle_ops.h"

namespace uvd {
namespace uncertain {

DistanceDistribution::DistanceDistribution(const UncertainObject& obj, geom::Point q)
    : obj_(obj),
      q_(q),
      center_dist_(geom::Distance(obj.center(), q)),
      lower_(obj.DistMin(q)),
      upper_(obj.DistMax(q)) {}

double DistanceDistribution::Cdf(double d) const {
  if (d <= lower_) return d == upper_ ? 1.0 : 0.0;  // point object: step
  if (d >= upper_) return 1.0;
  const RadialHistogramPdf& pdf = obj_.pdf();
  if (obj_.radius() <= 0.0) {
    return d >= center_dist_ ? 1.0 : 0.0;
  }
  double acc = 0.0;
  for (int b = 0; b < pdf.num_bars(); ++b) {
    const double mass = pdf.bars()[static_cast<size_t>(b)];
    if (mass == 0.0) continue;
    const double r_in = pdf.RingInner(b);
    const double r_out = pdf.RingOuter(b);
    // Fast paths: ring entirely within / beyond distance d from q.
    if (center_dist_ + r_out <= d) {
      acc += mass;
      continue;
    }
    const double nearest = std::max(
        0.0, std::max(center_dist_ - r_out, r_in - center_dist_));
    if (nearest >= d) continue;
    const double ring_area = M_PI * (r_out * r_out - r_in * r_in);
    if (ring_area <= 0.0) {
      // Degenerate ring (zero width): treat as circle boundary mass.
      if (center_dist_ <= d) acc += mass;
      continue;
    }
    const double inter = geom::AnnulusCircleIntersectionArea(
        q_, d, obj_.center(), r_in, r_out);
    acc += mass * (inter / ring_area);
  }
  return std::clamp(acc, 0.0, 1.0);
}

}  // namespace uncertain
}  // namespace uvd
