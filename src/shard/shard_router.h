// Border-correct query routing over a ShardedUVDiagram: one QueryEngine
// per shard, one front door.
//
//              QueryBatch (heterogeneous, submission-ordered)
//                               |
//                          ShardRouter
//           .-------------------+-------------------.
//           | point: owning     | range: every      | id: every shard
//           | shard only        | intersecting      | the object is
//           | (half-open cut-   | shard             | registered with
//           |  line ownership)  |                   |
//           v                   v                   v
//       QueryEngine[s0]    QueryEngine[s1]  ...  QueryEngine[sK-1]
//           |                   |                   |
//           '---- results reassembled positionally; multi-shard ---'
//                 answers merged in ascending shard order
//
// Routing and merge rules per query kind:
//   * kPnn / kAnswerIds — routed to the single shard owning the point
//     (ShardedUVDiagram::ShardIndexForPoint; cut-line points go to the
//     upper/right shard, domain-max-edge points clamp to the edge shard).
//     Border replication guarantees the owning shard alone answers
//     bitwise-identically to an unsharded diagram, so no cross-shard merge
//     is needed — the border handling lives in construction, not here.
//   * kUvPartitions — fanned to every shard whose box intersects the
//     range; per-shard partition lists are concatenated in ascending shard
//     order. Partitions report each shard's own leaf geometry: the union
//     covers range-within-domain exactly once (shards tile the domain and
//     leaves tile each shard), but leaf boundaries naturally differ from a
//     single index's, so this kind is deterministic per deployment rather
//     than bitwise-equal across deployments.
//   * kCellSummary — fanned to every shard the object is registered with;
//     found summaries merge (areas and leaf counts add — shard leaves are
//     disjoint — extents union). All-shards-NotFound merges to NotFound.
//
// Stats: each shard's engine bills that shard's Stats
// (ShardedUVDiagram::ViewOfShard) with per-worker shards merged via
// Stats::MergeFrom, extending the per-worker story to per-index-shard.
// ExecuteBatch is safe for concurrent callers (engines are; router state
// is call-local), and results are bitwise-identical across router/engine
// thread counts and cache settings.
#ifndef UVD_SHARD_SHARD_ROUTER_H_
#define UVD_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/latency_histogram.h"
#include "obs/metrics_registry.h"
#include "query/query_batch.h"
#include "query/query_engine.h"
#include "shard/sharded_uv_diagram.h"

namespace uvd {
namespace shard {

struct ShardRouterOptions {
  /// Per-shard engine configuration. Default: 1 worker per shard — batch
  /// parallelism comes from fanning across shards (router_threads); raise
  /// `engine.threads` to also parallelize within hot shards.
  query::QueryEngineOptions engine{/*threads=*/1, /*enable_cache=*/true,
                                   /*warm_cache_from_partitions=*/false, {}};
  /// Concurrent per-shard sub-batch execution. <= 0: one slot per shard
  /// (not capped at hardware concurrency — disk-bound shards block rather
  /// than compute, so full fan-out is what hides the I/O latency);
  /// 1: serial shard loop on the calling thread.
  int router_threads = 0;
};

/// \brief Routes query batches to per-shard engines and merges answers.
class ShardRouter {
 public:
  explicit ShardRouter(const ShardedUVDiagram& diagram,
                       const ShardRouterOptions& options = {});

  /// Answers every query in the batch; results[i] corresponds to batch[i]
  /// for every shard count and thread configuration. Per-query errors land
  /// in results[i].status without failing the batch.
  std::vector<query::QueryResult> ExecuteBatch(const query::QueryBatch& batch);

  /// The per-shard engine (e.g. to inspect worker_stats() or the cache).
  query::QueryEngine* engine(size_t s) { return engines_[s].get(); }

  /// Drops every shard engine's leaf cache.
  void InvalidateCaches();

  size_t num_shards() const { return engines_.size(); }
  const ShardRouterOptions& options() const { return options_; }

  /// Router-side latency distribution of shard `s`'s routed sub-batches in
  /// microseconds (queueing behind the router pool included — the number a
  /// front-end actually waits on, as opposed to the engine's own per-query
  /// kind_latency()). Empty while obs::MetricsEnabled() is off.
  const obs::LatencyHistogram& shard_latency(size_t s) const {
    return shard_obs_[s]->routed_latency_us;
  }

  /// Queries routed to shard `s` so far (multi-shard kinds count once per
  /// target shard).
  uint64_t routed_queries(size_t s) const {
    return shard_obs_[s]->routed_queries.load(std::memory_order_relaxed);
  }

  /// Exact cross-shard merge of every engine's per-kind latency histogram
  /// — the deployment-wide per-query distribution for `kind` (MergeFrom is
  /// exact, so this equals one histogram fed every shard's stream).
  obs::LatencyHistogram MergedKindLatency(query::QueryKind kind) const;

  /// Zeroes the router's histograms/counters and every engine's metrics.
  void ResetMetrics();

  /// Registers the full sharded-serving surface on `registry`:
  ///   "<prefix>.shard<s>.*"                per-engine metrics
  ///                                        (QueryEngine::RegisterMetrics)
  ///   "<prefix>.shard<s>.routed.latency.us" routed sub-batch latency
  ///   "<prefix>.shard<s>.routed.queries"   routed query counter
  ///   "<prefix>.router.fanout.total"       query->shard routing slots
  ///   "<prefix>.router.multi_shard_queries" queries fanned to >1 shard
  ///   "<prefix>.router.shard_imbalance"    object-count max/mean gauge
  ///                                        (BalanceReport)
  /// The router must outlive the registry's last snapshot.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

 private:
  /// Histograms and atomics are non-movable; unique_ptr keeps the vector
  /// regular while workers record through stable addresses.
  ///
  /// The router holds no mutex of its own: engines_/shard_obs_ are built
  /// in the constructor and immutable afterwards, per-worker accumulation
  /// is relaxed-atomic, and per-call completion uses WaitGroup (whose
  /// internal lock discipline is compile-time checked via
  /// common/thread_annotations.h). Any future mutable router state — e.g.
  /// the streaming merge or admission queues on the ROADMAP — must be
  /// UVD_GUARDED_BY an annotated Mutex (docs/STATIC_ANALYSIS.md).
  struct ShardObs {
    obs::LatencyHistogram routed_latency_us;
    std::atomic<uint64_t> routed_queries{0};
  };

  const ShardedUVDiagram& diagram_;
  ShardRouterOptions options_;
  std::vector<std::unique_ptr<query::QueryEngine>> engines_;
  std::vector<std::unique_ptr<ShardObs>> shard_obs_;  // parallel to engines_
  std::atomic<uint64_t> fanout_total_{0};
  std::atomic<uint64_t> multi_shard_queries_{0};
  std::unique_ptr<ThreadPool> pool_;  // null when router_threads == 1
};

}  // namespace shard
}  // namespace uvd

#endif  // UVD_SHARD_SHARD_ROUTER_H_
