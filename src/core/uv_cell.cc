#include "core/uv_cell.h"

#include <cmath>

#include "common/logging.h"

namespace uvd {
namespace core {

void UVCell::SubtractOutsideRegions(const geom::Circle* others, const int* ids,
                                    size_t n) {
  geom::batch::ConstraintPrefilter pre;
  geom::batch::BuildConstraintPrefilter(anchor_, others, n, &pre);
  // The envelope's max vertex distance only shrinks under insertion, so the
  // cached bound stays valid between refreshes; refresh after every
  // successful insert (the envelope may have tightened a lot).
  double max_d = envelope_.MaxVertexDistance();
  for (size_t j = 0; j < n; ++j) {
    // Vacuous constraints (overlapping regions, Sec. III-C) never touch the
    // envelope; neither can a constraint whose minimum distance exceeds the
    // current envelope everywhere.
    if (pre.vacuous[j]) continue;
    if (std::isfinite(max_d) &&
        geom::batch::PrefilterSkips(pre.min_rho[j], max_d)) {
      continue;
    }
    if (SubtractOutsideRegion(others[j], ids[j])) {
      max_d = envelope_.MaxVertexDistance();
    }
  }
}

namespace {

/// Gathers the contiguous region/id arrays the batch subtraction needs.
struct CandidateGather {
  std::vector<geom::Circle> regions;
  std::vector<int> ids;

  void Reserve(size_t n) {
    regions.reserve(n);
    ids.reserve(n);
  }
  void Add(const uncertain::UncertainObject& o) {
    regions.push_back(o.region());
    ids.push_back(o.id());
  }
};

}  // namespace

UVCell BuildExactUvCell(const std::vector<uncertain::UncertainObject>& objects,
                        size_t index, const geom::Box& domain, Stats* stats,
                        geom::KernelMode kernel_mode) {
  UVD_CHECK_LT(index, objects.size());
  const uncertain::UncertainObject& anchor = objects[index];
  UVCell cell(anchor.region(), anchor.id(), domain, stats);
  if (kernel_mode == geom::KernelMode::kBatch) {
    CandidateGather g;
    g.Reserve(objects.size() - 1);
    for (size_t j = 0; j < objects.size(); ++j) {
      if (j == index) continue;
      g.Add(objects[j]);
    }
    cell.SubtractOutsideRegions(g.regions.data(), g.ids.data(), g.regions.size());
    return cell;
  }
  for (size_t j = 0; j < objects.size(); ++j) {
    if (j == index) continue;
    cell.SubtractOutsideRegion(objects[j].region(), objects[j].id());
  }
  return cell;
}

UVCell BuildUvCellFromCandidates(const std::vector<uncertain::UncertainObject>& objects,
                                 size_t index, const std::vector<int>& candidate_ids,
                                 const geom::Box& domain, Stats* stats,
                                 geom::KernelMode kernel_mode) {
  UVD_CHECK_LT(index, objects.size());
  const uncertain::UncertainObject& anchor = objects[index];
  UVCell cell(anchor.region(), anchor.id(), domain, stats);
  if (kernel_mode == geom::KernelMode::kBatch) {
    CandidateGather g;
    g.Reserve(candidate_ids.size());
    for (int id : candidate_ids) {
      if (id == anchor.id()) continue;
      UVD_DCHECK_GE(id, 0);
      UVD_DCHECK_LT(static_cast<size_t>(id), objects.size());
      const uncertain::UncertainObject& other = objects[static_cast<size_t>(id)];
      UVD_DCHECK_EQ(other.id(), id) << "objects must be stored in id order";
      g.Add(other);
    }
    cell.SubtractOutsideRegions(g.regions.data(), g.ids.data(), g.regions.size());
    return cell;
  }
  for (int id : candidate_ids) {
    if (id == anchor.id()) continue;
    UVD_DCHECK_GE(id, 0);
    UVD_DCHECK_LT(static_cast<size_t>(id), objects.size());
    const uncertain::UncertainObject& other = objects[static_cast<size_t>(id)];
    UVD_DCHECK_EQ(other.id(), id) << "objects must be stored in id order";
    cell.SubtractOutsideRegion(other.region(), other.id());
  }
  return cell;
}

}  // namespace core
}  // namespace uvd
